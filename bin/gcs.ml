(* gcs: command-line driver for the partitionable group communication
   reproduction.

     gcs bounds  — print the Section 8 analytical bounds for a configuration
     gcs run     — simulate the end-to-end TO service under a scenario
     gcs spec    — random executions of the spec machines with invariant,
                   trace and simulation checking
     gcs nemesis — run the fault-injection harness: a named scenario or a
                   seed-reproducible random schedule, checked end to end
     gcs fuzz    — coverage-guided schedule fuzzing with counterexample
                   shrinking (and planted-bug mutants to validate it)
     gcs soak    — a batch of random nemesis schedules on a domain pool
     gcs metrics — run one schedule and print its metrics registry
     gcs timeline— ASCII timeline of a schedule: statuses, views, traffic
     gcs bus     — serve a replicated app over the real multi-domain bus
                   transport and check replica consistency
     gcs load    — open-loop load generator: fixed-rate submissions on
                   either backend, reporting wall-clock client throughput
     gcs diff    — differential transport check: identical workloads on
                   sim and bus must deliver in identical orders *)

open Cmdliner
open Gcs_core
open Gcs_impl

let n_arg =
  Arg.(value & opt int 5 & info [ "n" ] ~docv:"N" ~doc:"Number of processors.")

let delta_arg =
  Arg.(
    value & opt float 1.0
    & info [ "delta" ] ~docv:"D" ~doc:"Good-link delay bound δ.")

let pi_arg =
  Arg.(
    value & opt float 8.0
    & info [ "pi" ] ~docv:"PI" ~doc:"Token creation spacing π (must exceed nδ).")

let mu_arg =
  Arg.(
    value & opt float 10.0
    & info [ "mu" ] ~docv:"MU" ~doc:"Discovery-probe spacing μ.")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for independent runs (0: the GCS_JOBS environment \
           variable, default 1). Results are bit-identical at any job count.")

let resolve_jobs jobs = if jobs > 0 then jobs else Gcs_stdx.Pool.default_jobs ()

let until_arg =
  Arg.(
    value & opt float 500.0
    & info [ "until" ] ~docv:"T" ~doc:"Simulated time horizon.")

let mk_config n delta pi mu =
  let procs = Proc.all ~n in
  { Vs_node.procs; p0 = procs; pi; mu; delta }

(* ------------------------------ bounds ------------------------------ *)

let bounds_cmd =
  let run n delta pi mu =
    let config = mk_config n delta pi mu in
    Printf.printf "configuration: n=%d delta=%.2f pi=%.2f mu=%.2f\n" n delta pi
      mu;
    Printf.printf "paper b  = 9δ + max(π + (n+3)δ, μ)   = %.2f\n"
      (Vs_node.paper_b config);
    Printf.printf "paper d  = 2π + nδ                    = %.2f\n"
      (Vs_node.paper_d config);
    Printf.printf "impl  b' (this variant, conservative) = %.2f\n"
      (Vs_node.impl_b config);
    Printf.printf "impl  d' (this variant, conservative) = %.2f\n"
      (Vs_node.impl_d config);
    Printf.printf "token timeout                         = %.2f\n"
      (Vs_node.token_timeout config)
  in
  Cmd.v
    (Cmd.info "bounds" ~doc:"Print the Section 8 analytical bounds.")
    Term.(const run $ n_arg $ delta_arg $ pi_arg $ mu_arg)

(* ------------------------------- run -------------------------------- *)

let parse_partition spec n =
  (* "0,1,2/3,4" -> [[0;1;2];[3;4]] *)
  match spec with
  | "" -> Ok None
  | spec -> (
      try
        let parts =
          List.map
            (fun part ->
              List.map int_of_string (String.split_on_char ',' part))
            (String.split_on_char '/' spec)
        in
        if List.for_all (List.for_all (fun p -> p >= 0 && p < n)) parts then
          Ok (Some parts)
        else Error "partition mentions a processor outside 0..n-1"
      with Failure _ -> Error "malformed partition spec")

let run_cmd =
  let partition_arg =
    Arg.(
      value & opt string ""
      & info [ "partition" ] ~docv:"SPEC"
          ~doc:"Partition specification, e.g. 0,1,2/3,4 (empty: none).")
  in
  let split_arg =
    Arg.(
      value & opt float 100.0
      & info [ "split-at" ] ~docv:"T" ~doc:"Time of the partition.")
  in
  let heal_arg =
    Arg.(
      value & opt float 300.0
      & info [ "heal-at" ] ~docv:"T"
          ~doc:"Time of the heal (negative: never heal).")
  in
  let messages_arg =
    Arg.(
      value & opt int 5
      & info [ "messages" ] ~docv:"K" ~doc:"Client values per processor.")
  in
  let timeline_arg =
    Arg.(
      value & flag
      & info [ "timeline" ] ~doc:"Draw an ASCII timeline of the run.")
  in
  let dump_arg =
    Arg.(
      value & opt string ""
      & info [ "dump" ] ~docv:"PREFIX"
          ~doc:
            "Write the run's timed traces to PREFIX.to and PREFIX.vs (see \
             gcs check).")
  in
  let run n delta pi mu seed until partition split_at heal_at messages timeline
      dump =
    let vs_config = mk_config n delta pi mu in
    let config = To_service.make_config vs_config in
    let procs = vs_config.Vs_node.procs in
    match parse_partition partition n with
    | Error e ->
        Printf.eprintf "error: %s\n" e;
        exit 2
    | Ok parts ->
        let failures =
          match parts with
          | None -> []
          | Some parts ->
              List.map
                (fun e -> (split_at, e))
                (Fstatus.partition_events ~parts)
              @
              if heal_at >= 0.0 then
                List.map (fun e -> (heal_at, e)) (Fstatus.heal_events ~procs)
              else []
        in
        let workload =
          List.concat_map
            (fun p ->
              List.init messages (fun k ->
                  ( 10.0 +. (float_of_int k *. 30.0) +. float_of_int p,
                    p,
                    Printf.sprintf "v%d.%d" p k )))
            procs
        in
        let run = To_service.run config ~workload ~failures ~until ~seed in
        Printf.printf "simulated until t=%.1f: %d events, %d packets (%d dropped)\n"
          until run.To_service.events_processed run.To_service.packets_sent
          run.To_service.packets_dropped;
        Printf.printf "client deliveries: %d\n" (To_service.deliveries run);
        List.iter
          (fun (t, a) ->
            match a with
            | Vs_action.Newview { proc; view } ->
                Printf.printf "  t=%7.1f newview %s at %d\n" t
                  (Format.asprintf "%a" View.pp view)
                  proc
            | _ -> ())
          (Timed.actions (To_service.vs_trace run));
        if timeline then
          print_string
            (Gcs_apps.Timeline.of_to_service_run ~procs ~width:100 ~until run);
        (match To_service.to_conforms config run with
        | Ok () -> Printf.printf "TO-machine conformance: OK\n"
        | Error e ->
            Printf.printf "TO-machine conformance: FAILED (%s)\n"
              (Format.asprintf "%a" To_trace_checker.pp_error e));
        (match To_service.vs_conforms config run with
        | Ok () -> Printf.printf "VS-machine conformance: OK\n"
        | Error e ->
            Printf.printf "VS-machine conformance: FAILED (%s)\n"
              (Format.asprintf "%a" Vs_trace_checker.pp_error e));
        if dump <> "" then begin
          let write path contents =
            let oc = open_out path in
            output_string oc contents;
            output_string oc "\n";
            close_out oc;
            Printf.printf "wrote %s\n" path
          in
          write (dump ^ ".to")
            (Trace_io.to_to_string (To_service.client_trace run));
          let vs_as_strings =
            Timed.map
              (fun a ->
                Some
                  (match a with
                  | Vs_action.Gpsnd { sender; msg } ->
                      Vs_action.Gpsnd
                        { sender; msg = Format.asprintf "%a" Msg.pp msg }
                  | Vs_action.Gprcv { src; dst; msg } ->
                      Vs_action.Gprcv
                        { src; dst; msg = Format.asprintf "%a" Msg.pp msg }
                  | Vs_action.Safe { src; dst; msg } ->
                      Vs_action.Safe
                        { src; dst; msg = Format.asprintf "%a" Msg.pp msg }
                  | Vs_action.Newview nv -> Vs_action.Newview nv
                  | Vs_action.Createview v -> Vs_action.Createview v
                  | Vs_action.Vs_order { msg; sender; viewid } ->
                      Vs_action.Vs_order
                        {
                          msg = Format.asprintf "%a" Msg.pp msg;
                          sender;
                          viewid;
                        }))
              (To_service.vs_trace run)
          in
          write (dump ^ ".vs") (Trace_io.vs_to_string vs_as_strings)
        end
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Simulate the end-to-end TO service under a failure scenario.")
    Term.(
      const run $ n_arg $ delta_arg $ pi_arg $ mu_arg $ seed_arg $ until_arg
      $ partition_arg $ split_arg $ heal_arg $ messages_arg $ timeline_arg
      $ dump_arg)

(* Shared by nemesis / metrics / timeline: an optional built-in scenario
   name, falling back to the seed-generated random schedule. *)
let scenario_pos_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"SCENARIO"
        ~doc:
          "Built-in scenario name (see gcs nemesis --list). Omit to run a \
           random schedule generated from --seed.")

let events_arg =
  Arg.(
    value & opt int 12
    & info [ "events" ] ~docv:"K"
        ~doc:"Fault injections in a random schedule.")

let until_opt_arg =
  Arg.(
    value & opt float (-1.0)
    & info [ "until" ] ~docv:"T"
        ~doc:
          "Simulated time horizon (negative: stabilization + b' + d' + \
           slack, the shortest horizon at which the delivery bound is \
           enforceable).")

let resolve_scenario ~procs ~events ~seed = function
  | None -> Gcs_nemesis.Gen.scenario ~procs ~events ~seed ()
  | Some name -> (
      match Gcs_nemesis.Scenario.find_builtin ~procs name with
      | Some s -> s
      | None ->
          Printf.eprintf
            "error: unknown scenario %s (try gcs nemesis --list)\n" name;
          exit 2)

(* ------------------------------ nemesis ----------------------------- *)

let nemesis_cmd =
  let list_arg =
    Arg.(value & flag & info [ "list" ] ~doc:"List built-in scenarios.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the outcome as a single JSON object.")
  in
  let metrics_arg =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Include the run's metrics registry: as a \"metrics\" member \
             with --json, as a table otherwise.")
  in
  let count_arg =
    Arg.(
      value & opt int 1
      & info [ "count" ] ~docv:"K"
          ~doc:
            "Run K schedules at seeds SEED..SEED+K-1 (fanned out over \
             --jobs domains). With a named scenario, the same scenario is \
             rerun under each seed.")
  in
  let run n delta pi mu seed scenario list json metrics events until count jobs
      =
    let vs_config = mk_config n delta pi mu in
    let config = To_service.make_config vs_config in
    let procs = vs_config.Vs_node.procs in
    if list then
      List.iter
        (fun (name, scenario) ->
          Printf.printf "%-20s %2d steps, stabilizes at t=%.1f\n" name
            (List.length scenario.Gcs_nemesis.Scenario.steps)
            (Gcs_nemesis.Scenario.stabilization_time scenario))
        (Gcs_nemesis.Scenario.builtins ~procs)
    else begin
      let until = if until < 0.0 then None else Some until in
      let builtin =
        Option.map
          (fun name -> resolve_scenario ~procs ~events ~seed (Some name))
          scenario
      in
      if count <= 1 then begin
        let scenario =
          match builtin with
          | Some s -> s
          | None -> Gcs_nemesis.Gen.scenario ~procs ~events ~seed ()
        in
        let outcome = Gcs_nemesis.Harness.run ~config ?until ~seed scenario in
        if json then
          print_endline
            (if metrics then Gcs_nemesis.Harness.to_json_with_metrics outcome
             else Gcs_nemesis.Harness.to_json outcome)
        else begin
          Format.printf "%a@." Gcs_nemesis.Scenario.pp scenario;
          Format.printf "%a@." Gcs_nemesis.Harness.pp outcome;
          if metrics then
            Format.printf "%a@." Gcs_stdx.Metrics.pp
              outcome.Gcs_nemesis.Harness.metrics;
          Printf.printf "reproduce with: gcs nemesis%s --seed %d -n %d\n"
            (match scenario.Gcs_nemesis.Scenario.name with
            | name
              when Option.is_some
                     (Gcs_nemesis.Scenario.find_builtin ~procs name) ->
                " " ^ name
            | _ -> "")
            seed n
        end;
        if not (Gcs_nemesis.Harness.passed outcome) then exit 1
      end
      else begin
        let jobs = resolve_jobs jobs in
        let seeds = List.init count (fun i -> seed + i) in
        let outcomes =
          match builtin with
          | Some s ->
              Gcs_stdx.Pool.map ~jobs
                (fun seed -> Gcs_nemesis.Harness.run ~config ?until ~seed s)
                seeds
          | None ->
              Gcs_nemesis.Harness.run_batch ~jobs ~config ?until ~events ~seeds
                ()
        in
        let failed =
          List.filter (fun o -> not (Gcs_nemesis.Harness.passed o)) outcomes
        in
        if json then
          List.iter
            (fun o ->
              print_endline
                (if metrics then Gcs_nemesis.Harness.to_json_with_metrics o
                 else Gcs_nemesis.Harness.to_json o))
            outcomes
        else begin
          List.iter
            (fun o ->
              Printf.printf "seed %6d  %-20s %5d deliveries  %s\n"
                o.Gcs_nemesis.Harness.seed
                o.Gcs_nemesis.Harness.scenario.Gcs_nemesis.Scenario.name
                o.Gcs_nemesis.Harness.deliveries
                (if Gcs_nemesis.Harness.passed o then "PASS" else "FAIL"))
            outcomes;
          List.iter
            (fun o ->
              Format.printf "%a@." Gcs_nemesis.Harness.pp o;
              Printf.printf "FAILING SEED %d metrics: %s\n"
                o.Gcs_nemesis.Harness.seed
                (Gcs_stdx.Metrics.to_json o.Gcs_nemesis.Harness.metrics))
            failed;
          Printf.printf "%d/%d schedules passed (jobs=%d)\n"
            (List.length outcomes - List.length failed)
            (List.length outcomes) jobs
        end;
        if failed <> [] then exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "nemesis"
       ~doc:
         "Run the fault-injection harness: a built-in scenario or a \
          seed-reproducible random schedule through the end-to-end TO \
          service, checked against both trace checkers and the \
          post-stabilization delivery bound (Theorem 7.2).")
    Term.(
      const run $ n_arg $ delta_arg $ pi_arg $ mu_arg $ seed_arg
      $ scenario_pos_arg $ list_arg $ json_arg $ metrics_arg $ events_arg
      $ until_opt_arg $ count_arg $ jobs_arg)

(* ------------------------------- soak ------------------------------- *)

let soak_cmd =
  let iters_arg =
    Arg.(
      value & opt int 20
      & info [ "iters" ] ~docv:"K" ~doc:"Number of random schedules.")
  in
  let soak_events_arg =
    Arg.(
      value & opt int 0
      & info [ "events" ] ~docv:"E"
          ~doc:
            "Fault injections per schedule (0: vary 8..12 across the batch, \
             mirroring the soak test suite).")
  in
  let run n delta pi mu seed iters events jobs =
    let vs_config = mk_config n delta pi mu in
    let config = To_service.make_config vs_config in
    let procs = vs_config.Vs_node.procs in
    let jobs = resolve_jobs jobs in
    (* Wall clock measures pool throughput only; the simulation itself
       runs on virtual time and is untouched by it. *)
    let t0 = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () in
    let outcomes =
      Gcs_stdx.Pool.map ~jobs
        (fun i ->
          let seed = seed + (i * 97) in
          let events = if events > 0 then events else 8 + (i mod 5) in
          let scenario = Gcs_nemesis.Gen.scenario ~procs ~events ~seed () in
          Gcs_nemesis.Harness.run ~config ~seed scenario)
        (List.init iters (fun i -> i))
    in
    let wall = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () -. t0 in
    let failed =
      List.filter (fun o -> not (Gcs_nemesis.Harness.passed o)) outcomes
    in
    List.iter
      (fun o ->
        Printf.printf "seed %6d  %-20s %5d deliveries  %s\n"
          o.Gcs_nemesis.Harness.seed
          o.Gcs_nemesis.Harness.scenario.Gcs_nemesis.Scenario.name
          o.Gcs_nemesis.Harness.deliveries
          (if Gcs_nemesis.Harness.passed o then "PASS" else "FAIL"))
      outcomes;
    List.iter
      (fun o ->
        Format.printf "%a@." Gcs_nemesis.Harness.pp o;
        Printf.printf "FAILING SEED %d metrics: %s\n"
          o.Gcs_nemesis.Harness.seed
          (Gcs_stdx.Metrics.to_json o.Gcs_nemesis.Harness.metrics))
      failed;
    Printf.printf "%d/%d schedules passed in %.2fs (jobs=%d)\n"
      (iters - List.length failed)
      iters wall jobs;
    if failed <> [] then exit 1
  in
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Soak the end-to-end TO service: a batch of seed-reproducible random \
          nemesis schedules fanned out over a pool of worker domains, each \
          checked against both trace checkers and the Theorem 7.2 delivery \
          bound. Exits 1 if any schedule fails.")
    Term.(
      const run $ n_arg $ delta_arg $ pi_arg $ mu_arg $ seed_arg $ iters_arg
      $ soak_events_arg $ jobs_arg)

(* ------------------------------ metrics ----------------------------- *)

let metrics_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the registry as a single JSON object.")
  in
  let run n delta pi mu seed scenario events until json =
    let vs_config = mk_config n delta pi mu in
    let config = To_service.make_config vs_config in
    let procs = vs_config.Vs_node.procs in
    let until = if until < 0.0 then None else Some until in
    let scenario = resolve_scenario ~procs ~events ~seed scenario in
    let outcome = Gcs_nemesis.Harness.run ~config ?until ~seed scenario in
    if json then
      print_endline
        (Gcs_stdx.Metrics.to_json outcome.Gcs_nemesis.Harness.metrics)
    else begin
      Printf.printf "scenario %s (seed %d), simulated until t=%.1f\n"
        outcome.Gcs_nemesis.Harness.scenario.Gcs_nemesis.Scenario.name seed
        outcome.Gcs_nemesis.Harness.until;
      Format.printf "%a@." Gcs_stdx.Metrics.pp
        outcome.Gcs_nemesis.Harness.metrics
    end
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Run one nemesis schedule (built-in or seed-generated) through the \
          end-to-end TO service and print its metrics registry: engine \
          packet/event counters per link status, VS views/tokens/membership \
          rounds, TO bcast-to-brcv latency histogram, and the harness's \
          pre/post-stabilization workload split.")
    Term.(
      const run $ n_arg $ delta_arg $ pi_arg $ mu_arg $ seed_arg
      $ scenario_pos_arg $ events_arg $ until_opt_arg $ json_arg)

(* ------------------------------ timeline ---------------------------- *)

let timeline_cmd =
  let width_arg =
    Arg.(
      value & opt int 100
      & info [ "width" ] ~docv:"COLS" ~doc:"Timeline width in characters.")
  in
  let run n delta pi mu seed scenario events until width =
    let vs_config = mk_config n delta pi mu in
    let config = To_service.make_config vs_config in
    let procs = vs_config.Vs_node.procs in
    let scenario = resolve_scenario ~procs ~events ~seed scenario in
    let until =
      if until < 0.0 then Gcs_nemesis.Harness.default_until ~config scenario
      else until
    in
    let workload = Gcs_nemesis.Harness.default_workload ~procs () in
    let failures = Gcs_nemesis.Scenario.compile ~procs scenario in
    let run = To_service.run config ~workload ~failures ~until ~seed in
    Format.printf "%a@." Gcs_nemesis.Scenario.pp scenario;
    print_string (Gcs_apps.Timeline.of_to_service_run ~procs ~width ~until run);
    Printf.printf
      "legend: s bcast, + delivery, V newview; ! on the net row marks a \
       failure-status change; stabilization l=%.1f\n"
      (Gcs_nemesis.Scenario.stabilization_time scenario)
  in
  Cmd.v
    (Cmd.info "timeline"
       ~doc:
         "Draw an ASCII timeline of one nemesis schedule (built-in or \
          seed-generated): one row per processor with submissions, \
          deliveries and view installations, plus a net row of \
          failure-status changes.")
    Term.(
      const run $ n_arg $ delta_arg $ pi_arg $ mu_arg $ seed_arg
      $ scenario_pos_arg $ events_arg $ until_opt_arg $ width_arg)

(* ------------------------------- fuzz ------------------------------- *)

let fuzz_cmd =
  let execs_arg =
    Arg.(
      value & opt int 500
      & info [ "execs" ] ~docv:"K"
          ~doc:"Execution budget (the fuzzer stops early on a failure).")
  in
  let batch_arg =
    Arg.(
      value & opt int 8
      & info [ "batch" ] ~docv:"K"
          ~doc:
            "Candidates generated per round. Fixed independently of --jobs, \
             so results are bit-identical at any job count.")
  in
  let corpus_arg =
    Arg.(
      value & opt string ""
      & info [ "corpus-out"; "corpus" ] ~docv:"DIR"
          ~doc:
            "Write the final corpus to DIR (one .sched file per entry, \
             written atomically; stale entries from a previous save are \
             removed).")
  in
  let corpus_in_arg =
    Arg.(
      value & opt string ""
      & info [ "corpus-in" ] ~docv:"DIR"
          ~doc:
            "Replay a saved corpus as extra seed schedules. Entries are \
             loaded in name order, truncated or unparsable files are \
             skipped with a warning, and admission minimizes the corpus \
             deterministically (an entry survives only if it still adds \
             coverage).")
  in
  let diff_arg =
    Arg.(
      value & opt string ""
      & info [ "diff" ] ~docv:"PAIR"
          ~doc:
            "Differential mode: run every schedule on two backends and \
             treat any disagreement in per-node delivered orders as \
             crash-grade. PAIR is one of $(b,sim-bus), $(b,skeen-bus), \
             $(b,vstoto-skeen), $(b,vstoto-sequencer). Faults are \
             stripped; mutation works the submission sequence and seed.")
  in
  let soak_arg =
    Arg.(
      value & flag
      & info [ "soak" ]
          ~doc:
            "Long-horizon mode: keep fuzzing past failures (each failing \
             input re-enters the corpus with boosted energy); report \
             every failure at the end, shrink the first.")
  in
  let max_minutes_arg =
    Arg.(
      value & opt float 0.0
      & info [ "max-minutes" ] ~docv:"M"
          ~doc:
            "Wall-clock budget: stop at the end of the round running at \
             M minutes (0: unlimited, the --execs budget governs).")
  in
  let snapshot_arg =
    Arg.(
      value & opt string ""
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:
            "Write a one-object JSON progress snapshot to FILE \
             (atomically) every --snapshot-every rounds.")
  in
  let snapshot_every_arg =
    Arg.(
      value & opt int 50
      & info [ "snapshot-every" ] ~docv:"K"
          ~doc:"Rounds between --snapshot writes (default 50).")
  in
  let mutant_arg =
    Arg.(
      value & opt string ""
      & info [ "mutant" ] ~docv:"NAME"
          ~doc:
            "Fuzz against a planted bug (see --list-mutants and \
             --list-diff-mutants). A differential mutant implies its \
             pair's --diff mode.")
  in
  let list_mutants_arg =
    Arg.(
      value & flag
      & info [ "list-mutants" ] ~doc:"List the planted-bug mutants.")
  in
  let list_diff_mutants_arg =
    Arg.(
      value & flag
      & info [ "list-diff-mutants" ]
          ~doc:
            "List the planted divergence-only mutants (found only by \
             --diff mode).")
  in
  let service_arg =
    Arg.(
      value
      & opt (enum [ ("vstoto", `Vstoto); ("skeen", `Skeen) ]) `Vstoto
      & info [ "service" ] ~docv:"S"
          ~doc:
            "System under test: $(b,vstoto) (the full VStoTO stack, default) \
             or $(b,skeen) (the Skeen timestamp total-order backend with its \
             own oracle chain). A Skeen mutant name in $(b,--mutant) implies \
             $(b,skeen).")
  in
  let expect_arg =
    Arg.(
      value & flag
      & info [ "expect-failure" ]
          ~doc:
            "Invert the exit status: succeed iff a failure was found \
             (canary mode — CI runs the planted mutants this way).")
  in
  let repro_arg =
    Arg.(
      value & opt string ""
      & info [ "repro" ] ~docv:"FILE"
          ~doc:
            "Write the shrunk reproducer schedule to FILE and its replayed \
             client trace to FILE.trace (replayable with gcs fuzz --replay \
             FILE / gcs check to FILE.trace).")
  in
  let replay_arg =
    Arg.(
      value & opt string ""
      & info [ "replay" ] ~docv:"FILE"
          ~doc:
            "Execute one schedule file and report its verdict instead of \
             fuzzing.")
  in
  let shrink_arg =
    Arg.(
      value & opt int 600
      & info [ "shrink-budget" ] ~docv:"K"
          ~doc:"Oracle executions the shrinker may spend.")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the run statistics as one JSON object.")
  in
  let write_file path contents =
    Gcs_stdx.Fileio.write_atomic ~path contents
  in
  let run n delta pi mu seed jobs execs batch corpus corpus_in diff soak
      max_minutes snapshot snapshot_every mutant list_mutants list_diff_mutants
      service expect repro replay shrink_budget json =
    if list_mutants then begin
      List.iter
        (fun m ->
          Printf.printf "%-24s %s (flagged by: %s)\n" m.Gcs_fuzz.Mutant.name
            m.Gcs_fuzz.Mutant.doc
            (String.concat ", " m.Gcs_fuzz.Mutant.expected_checks))
        Gcs_fuzz.Mutant.all;
      List.iter
        (fun m ->
          Printf.printf "%-24s %s (flagged by: %s)\n"
            m.Gcs_fuzz.Skeen_mutant.name m.Gcs_fuzz.Skeen_mutant.doc
            (String.concat ", " m.Gcs_fuzz.Skeen_mutant.expected_checks))
        Gcs_fuzz.Skeen_mutant.all
    end
    else if list_diff_mutants then
      List.iter
        (fun m ->
          Printf.printf "%-24s %s (pair: %s)\n" m.Gcs_fuzz.Diff_mutant.name
            m.Gcs_fuzz.Diff_mutant.doc
            (Gcs_fuzz.Differential.name m.Gcs_fuzz.Diff_mutant.pair))
        Gcs_fuzz.Diff_mutant.all
    else begin
      let vs_config = mk_config n delta pi mu in
      let config = To_service.make_config vs_config in
      let mutant, skeen_mutant, tamper, mutant_pair =
        match mutant with
        | "" -> (None, None, None, None)
        | name -> (
            match Gcs_fuzz.Mutant.find name with
            | Some m -> (Some m, None, None, None)
            | None -> (
                match Gcs_fuzz.Skeen_mutant.find name with
                | Some m -> (None, Some m, None, None)
                | None -> (
                    match Gcs_fuzz.Diff_mutant.find name with
                    | Some m ->
                        ( m.Gcs_fuzz.Diff_mutant.vs,
                          m.Gcs_fuzz.Diff_mutant.skeen,
                          m.Gcs_fuzz.Diff_mutant.tamper,
                          Some m.Gcs_fuzz.Diff_mutant.pair )
                    | None ->
                        Printf.eprintf
                          "error: unknown mutant %s (try --list-mutants, \
                           --list-diff-mutants)\n"
                          name;
                        exit 2)))
      in
      let pair =
        match (diff, mutant_pair) with
        | "", p -> p
        | s, _ -> (
            match Gcs_fuzz.Differential.of_name s with
            | None ->
                Printf.eprintf
                  "error: unknown pair %s (one of: %s)\n" s
                  (String.concat ", "
                     (List.map Gcs_fuzz.Differential.name
                        Gcs_fuzz.Differential.all));
                exit 2
            | Some p -> (
                match mutant_pair with
                | Some mp when mp <> p ->
                    Printf.eprintf
                      "error: mutant targets pair %s, not %s\n"
                      (Gcs_fuzz.Differential.name mp)
                      (Gcs_fuzz.Differential.name p);
                    exit 2
                | _ -> Some p))
      in
      let service =
        if Option.is_some skeen_mutant then Gcs_fuzz.Fuzz.Skeen_backend
        else
          match service with
          | `Skeen -> Gcs_fuzz.Fuzz.Skeen_backend
          | `Vstoto -> Gcs_fuzz.Fuzz.Vstoto_stack
      in
      let skeen_config =
        Gcs_skeen.Skeen.make_config ~procs:vs_config.Vs_node.procs
      in
      if replay <> "" then begin
        let contents =
          let ic = open_in replay in
          let len = in_channel_length ic in
          let s = really_input_string ic len in
          close_in ic;
          s
        in
        match Gcs_fuzz.Input.of_string contents with
        | Error e ->
            Printf.eprintf "error: %s\n" e;
            exit 2
        | Ok input -> (
            let obs =
              match pair with
              | Some p ->
                  Gcs_fuzz.Differential.execute ?tamper ?vs_mutant:mutant
                    ?skeen_mutant ~config p input
              | None -> (
                  match service with
                  | Gcs_fuzz.Fuzz.Vstoto_stack ->
                      Gcs_fuzz.Runner.execute ?mutant ~config input
                  | Gcs_fuzz.Fuzz.Skeen_backend ->
                      Gcs_fuzz.Runner.execute_skeen ?mutant:skeen_mutant ~delta
                        ~config:skeen_config input)
            in
            match obs.Gcs_fuzz.Runner.verdict with
            | None ->
                Printf.printf "replay %s: PASS (%d deliveries, %d features)\n"
                  replay obs.Gcs_fuzz.Runner.deliveries
                  (Gcs_fuzz.Coverage.cardinal obs.Gcs_fuzz.Runner.coverage)
            | Some f ->
                Printf.printf "replay %s: FAIL [%s]\n%s\n" replay
                  f.Gcs_fuzz.Runner.check f.Gcs_fuzz.Runner.detail;
                exit 1)
      end
      else begin
        let jobs = resolve_jobs jobs in
        let seeds =
          if corpus_in = "" then []
          else begin
            let inputs, warnings = Gcs_fuzz.Corpus.load ~dir:corpus_in in
            List.iter
              (fun w -> Printf.eprintf "corpus-in: warning: %s\n%!" w)
              warnings;
            if not json then
              Printf.printf "corpus-in: replaying %d entries from %s\n"
                (List.length inputs) corpus_in;
            inputs
          end
        in
        (* The soak wall budget and snapshot timestamps are operator
           telemetry about real elapsed time, not simulation state — the
           same sanctioned sink as the bench harness's wall clocks. *)
        let wall_now () = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () in
        let started = wall_now () in
        let should_stop =
          if max_minutes <= 0.0 then None
          else Some (fun () -> wall_now () -. started >= max_minutes *. 60.0)
        in
        let progress =
          let console s =
            if (not json) && s.Gcs_fuzz.Fuzz.rounds mod 50 = 0 then
              Printf.printf "  execs %5d  corpus %3d  features %4d\n%!"
                s.Gcs_fuzz.Fuzz.execs s.Gcs_fuzz.Fuzz.corpus_size
                s.Gcs_fuzz.Fuzz.features
          in
          let snap s =
            if
              snapshot <> ""
              && s.Gcs_fuzz.Fuzz.rounds mod max 1 snapshot_every = 0
            then
              Gcs_stdx.Fileio.write_atomic ~path:snapshot
                (Printf.sprintf
                   {|{"execs":%d,"rounds":%d,"corpus":%d,"features":%d,"wall_s":%.1f}|}
                   s.Gcs_fuzz.Fuzz.execs s.Gcs_fuzz.Fuzz.rounds
                   s.Gcs_fuzz.Fuzz.corpus_size s.Gcs_fuzz.Fuzz.features
                   (wall_now () -. started))
          in
          Some
            (fun s ->
              console s;
              snap s)
        in
        let outcome =
          Gcs_fuzz.Fuzz.run ?mutant ?skeen_mutant ?tamper ?pair ~service
            ~seeds ~jobs ~batch ~shrink_budget ~stop_on_failure:(not soak)
            ?should_stop ?progress ~config ~seed ~execs ()
        in
        if json then print_endline (Gcs_fuzz.Fuzz.stats_to_json outcome)
        else begin
          Printf.printf
            "fuzz: %d execs in %d rounds, corpus %d, %d features (seed %d, \
             jobs %d)\n"
            outcome.Gcs_fuzz.Fuzz.stats.Gcs_fuzz.Fuzz.execs
            outcome.Gcs_fuzz.Fuzz.stats.Gcs_fuzz.Fuzz.rounds
            outcome.Gcs_fuzz.Fuzz.stats.Gcs_fuzz.Fuzz.corpus_size
            outcome.Gcs_fuzz.Fuzz.stats.Gcs_fuzz.Fuzz.features seed jobs;
          (if soak then
             let tally = Hashtbl.create 8 in
             List.iter
               (fun (_, f) ->
                 let c = f.Gcs_fuzz.Runner.check in
                 Hashtbl.replace tally c
                   (1 + Option.value ~default:0 (Hashtbl.find_opt tally c)))
               outcome.Gcs_fuzz.Fuzz.failures;
             Printf.printf "soak: %d failures%s\n"
               (List.length outcome.Gcs_fuzz.Fuzz.failures)
               (if Hashtbl.length tally = 0 then ""
                else
                  Printf.sprintf " (%s)"
                    (String.concat ", "
                       (List.map
                          (fun (c, k) -> Printf.sprintf "%s: %d" c k)
                          (List.sort compare
                             (Hashtbl.fold
                                (fun c k acc -> (c, k) :: acc)
                                tally []))))));
          match outcome.Gcs_fuzz.Fuzz.failure with
          | None -> Printf.printf "no failures found\n"
          | Some (input, f) -> (
              Printf.printf "FAILURE [%s] on a %d-event schedule:\n%s\n"
                f.Gcs_fuzz.Runner.check
                (Gcs_fuzz.Input.events input)
                f.Gcs_fuzz.Runner.detail;
              match outcome.Gcs_fuzz.Fuzz.shrunk with
              | None -> ()
              | Some s ->
                  Printf.printf "shrunk to %d events in %d oracle execs:\n"
                    (Gcs_fuzz.Input.events s.Gcs_fuzz.Shrink.input)
                    s.Gcs_fuzz.Shrink.execs;
                  List.iter
                    (fun line -> Printf.printf "  %s\n" line)
                    s.Gcs_fuzz.Shrink.log;
                  print_string
                    (Gcs_fuzz.Input.to_string s.Gcs_fuzz.Shrink.input))
        end;
        if corpus <> "" then begin
          Gcs_fuzz.Corpus.save ~dir:corpus
            (List.map
               (fun e -> e.Gcs_fuzz.Fuzz.input)
               outcome.Gcs_fuzz.Fuzz.corpus);
          if not json then
            Printf.printf "wrote %d corpus entries to %s\n"
              (List.length outcome.Gcs_fuzz.Fuzz.corpus)
              corpus
        end;
        (match (outcome.Gcs_fuzz.Fuzz.shrunk, repro) with
        | Some s, file when file <> "" -> (
            let input = s.Gcs_fuzz.Shrink.input in
            write_file file (Gcs_fuzz.Input.to_string input);
            match pair with
            | Some _ ->
                (* A differential reproducer has two traces, not one;
                   the schedule alone replays with gcs fuzz --diff
                   --replay. *)
                if not json then Printf.printf "wrote %s\n" file
            | None ->
                let trace, _ =
                  match service with
                  | Gcs_fuzz.Fuzz.Vstoto_stack ->
                      Gcs_fuzz.Runner.replay ?mutant ~config input
                  | Gcs_fuzz.Fuzz.Skeen_backend ->
                      Gcs_fuzz.Runner.replay_skeen ?mutant:skeen_mutant ~delta
                        ~config:skeen_config input
                in
                write_file (file ^ ".trace")
                  (Trace_io.to_to_string trace ^ "\n");
                if not json then
                  Printf.printf "wrote %s and %s.trace\n" file file)
        | _ -> ());
        let found = Option.is_some outcome.Gcs_fuzz.Fuzz.failure in
        if expect <> found then exit 1
      end
    end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Coverage-guided schedule fuzzing of the end-to-end TO service: \
          mutate nemesis schedules + workloads + engine seeds under an \
          abstract-state coverage power schedule, execute candidate batches \
          on a domain pool, check every oracle (trace conformance, the \
          Theorem 7.2 delivery bound, node-local invariants), and \
          delta-debug the first failing schedule to a locally minimal \
          reproducer. Deterministic for a given --seed at any --jobs. \
          With --diff, every backend becomes an oracle: each schedule \
          runs on two backends and any divergence in per-node delivered \
          orders is crash-grade; --soak with --corpus-in/--corpus-out \
          turns the mode into a resumable long-horizon campaign.")
    Term.(
      const run $ n_arg $ delta_arg $ pi_arg $ mu_arg $ seed_arg $ jobs_arg
      $ execs_arg $ batch_arg $ corpus_arg $ corpus_in_arg $ diff_arg
      $ soak_arg $ max_minutes_arg $ snapshot_arg $ snapshot_every_arg
      $ mutant_arg $ list_mutants_arg $ list_diff_mutants_arg $ service_arg
      $ expect_arg $ repro_arg $ replay_arg $ shrink_arg $ json_arg)

(* ------------------------------- lint ------------------------------- *)

let lint_cmd =
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Print the report as a single JSON object ({findings, \
             suppressed, files}).")
  in
  let root_arg =
    Arg.(
      value & opt string ""
      & info [ "root" ] ~docv:"DIR"
          ~doc:
            "Repository root to scan (default: the nearest ancestor of the \
             working directory containing dune-project).")
  in
  let rules_arg =
    Arg.(
      value & flag
      & info [ "rules" ] ~doc:"List the rules and their one-line rationale.")
  in
  let run json root rules =
    if rules then
      List.iter
        (fun (id, description) -> Printf.printf "%-4s %s\n" id description)
        Gcs_lint.Lint.rules
    else begin
      let root =
        match (root, Gcs_lint.Driver.find_root ()) with
        | "", Some r -> r
        | "", None ->
            Printf.eprintf
              "error: no dune-project above the working directory; pass \
               --root\n";
            exit 2
        | r, _ -> r
      in
      let report =
        try Gcs_lint.Driver.run ~root
        with Sys_error msg ->
          Printf.eprintf "error: %s (is --root a repository root?)\n" msg;
          exit 2
      in
      if json then
        print_endline (Gcs_stdx.Jsonx.encode (Gcs_lint.Driver.to_json report))
      else Format.printf "%a" Gcs_lint.Driver.pp report;
      if not (Gcs_lint.Driver.clean report) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Determinism, totality & domain-safety static analysis over lib/, \
          bin/, bench/ and test/: unordered Hashtbl iteration (D1), entropy \
          and wall-clock sources (D2), polymorphic structural ops in the \
          proof-critical layers (D3), partial stdlib functions (P1), \
          swallowed exceptions (P2), cross-domain closure writes (C1), \
          exception-unsafe Mutex sections (C2), atomic read-modify-writes \
          (C3), blocking under a held lock and static lock-order cycles \
          (C4), stale suppressions (A1) and missing interfaces (M1). Sites \
          carrying [@gcs.lint.allow \"RULE\"] are reported separately and \
          do not fail the run. Exits 1 on any non-suppressed finding.")
    Term.(const run $ json_arg $ root_arg $ rules_arg)

(* ----------------------------- lockcheck ---------------------------- *)

let lockcheck_cmd =
  let out_arg =
    Arg.(
      value & opt string ""
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the observed lock graph (locks, edges, cycles, \
             contention) as JSON to $(docv).")
  in
  let run n seed out =
    let module Lock = Gcs_stdx.Lock in
    let module Suite = Gcs_conformance.Suite in
    let metrics = Gcs_stdx.Metrics.create () in
    let registry = Lock.registry ~metrics () in
    (* The same conformance workload the transport gate runs, on a bus
       whose every lock (status matrix, trace, delay wheel, observe
       serializer, one per mailbox) records into [registry]. *)
    let backend = Gcs_transport.Bus.backend ~lock_registry:registry () in
    let profile = { (Suite.bus_profile ~n ()) with Suite.backend } in
    let outcomes = Suite.run_all profile ~seed in
    List.iter (Format.printf "%a@." Suite.pp_outcome) outcomes;
    let graph = Lock.graph registry in
    Format.printf "%a" Lock.pp_graph graph;
    if not (String.equal out "") then begin
      let oc = open_out out in
      output_string oc (Gcs_stdx.Jsonx.encode (Lock.graph_to_json graph));
      output_char oc '\n';
      close_out oc;
      Printf.printf "lock graph written to %s\n" out
    end;
    let failed_cases = List.filter (fun o -> not (Suite.passed o)) outcomes in
    let inverted = not (List.is_empty graph.Lock.cycles) in
    if inverted then
      Printf.printf
        "lockcheck: FAIL — observed lock-order cycle(s); two domains \
         acquire these locks in conflicting orders\n"
    else if not (List.is_empty failed_cases) then
      Printf.printf "lockcheck: FAIL — %d conformance case(s) failed under \
                     instrumentation\n"
        (List.length failed_cases)
    else
      Printf.printf
        "lockcheck: OK — %d locks, %d distinct edges, no order inversion\n"
        (List.length graph.Lock.locks)
        (List.length graph.Lock.edges);
    if inverted || not (List.is_empty failed_cases) then exit 1
  in
  Cmd.v
    (Cmd.info "lockcheck"
       ~doc:
         "Dynamic lock-order gate: run the bus conformance workload with \
          every bus lock enrolled in a Gcs_stdx.Lock registry, record \
          which locks each domain acquires while holding which others, \
          and fail on any cycle in the observed acquisition graph (a \
          deadlock under the right interleaving) or any conformance \
          failure under instrumentation. The observed graph \
          cross-validates the static C4 lock-order analysis of gcs lint; \
          --out saves it as a JSON artifact.")
    Term.(const run $ n_arg $ seed_arg $ out_arg)

(* ------------------------------- spec ------------------------------- *)

let spec_cmd =
  let steps_arg =
    Arg.(
      value & opt int 300
      & info [ "steps" ] ~docv:"K" ~doc:"Steps per execution.")
  in
  let runs_arg =
    Arg.(
      value & opt int 20
      & info [ "runs" ] ~docv:"K" ~doc:"Number of random executions.")
  in
  let run n steps runs seed =
    let open Gcs_automata in
    let procs = Proc.all ~n in
    let params =
      Vstoto_system.make_params ~procs ~p0:procs
        ~quorums:(Quorum.majorities ~n) ()
    in
    let automaton = Vstoto_system.automaton params in
    let values = List.init 6 (fun i -> Printf.sprintf "x%d" i) in
    let scheduler =
      Scheduler.weighted automaton
        ~inject:(Vstoto_system.inject params ~values)
        ~inject_weight:0.3
    in
    let failures = ref 0 in
    for i = 0 to runs - 1 do
      let prng = Gcs_stdx.Prng.create (seed + i) in
      let e = Exec.run automaton ~scheduler ~steps ~prng in
      (match Invariant.first_violation (Vstoto_invariants.all params) e with
      | None -> ()
      | Some v ->
          incr failures;
          Printf.printf "seed %d: invariant %s violated at step %d: %s\n"
            (seed + i) v.Invariant.invariant v.Invariant.step_index
            v.Invariant.detail);
      match To_simulation.check_execution params e with
      | Ok () -> ()
      | Error msg ->
          incr failures;
          Printf.printf "seed %d: simulation failure: %s\n" (seed + i) msg
    done;
    if !failures = 0 then
      Printf.printf
        "%d executions x %d steps: all Section 6 invariants hold and the \
         forward simulation to TO-machine checks.\n"
        runs steps
    else Printf.printf "%d failures.\n" !failures
  in
  Cmd.v
    (Cmd.info "spec"
       ~doc:
         "Randomly execute VStoTO over the VS-machine specification, checking \
          the Section 6 invariants and the forward simulation.")
    Term.(const run $ n_arg $ steps_arg $ runs_arg $ seed_arg)

(* ------------------------------- check ------------------------------ *)

let check_cmd =
  let layer_arg =
    Arg.(
      required
      & pos 0 (some (enum [ ("to", `To); ("vs", `Vs) ])) None
      & info [] ~docv:"LAYER" ~doc:"Which specification to check: to or vs.")
  in
  let file_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"FILE" ~doc:"Trace file (see gcs run --dump).")
  in
  let p0_arg =
    Arg.(
      value & opt int (-1)
      & info [ "p0" ] ~docv:"K"
          ~doc:"Size of the initial membership P0 (default: all).")
  in
  let run layer file n p0 =
    let contents =
      let ic = open_in file in
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    in
    let procs = Proc.all ~n in
    let p0 = if p0 < 0 then procs else Proc.all ~n:p0 in
    match layer with
    | `To -> (
        match Trace_io.to_of_string contents with
        | Error e ->
            Printf.printf "parse error: %s\n" e;
            exit 2
        | Ok trace -> (
            let params = { To_machine.procs; equal_value = Value.equal } in
            match
              To_trace_checker.check params
                (List.map snd (Timed.actions trace))
            with
            | Ok () ->
                Printf.printf
                  "%s: %d events, TO-machine conformance OK\n" file
                  (List.length trace)
            | Error err ->
                Printf.printf "%s: REJECTED (%s)\n" file
                  (Format.asprintf "%a" To_trace_checker.pp_error err);
                exit 1))
    | `Vs -> (
        match Trace_io.vs_of_string contents with
        | Error e ->
            Printf.printf "parse error: %s\n" e;
            exit 2
        | Ok trace -> (
            let params =
              {
                Vs_machine.procs;
                p0;
                equal_msg = String.equal;
                weak = false;
              }
            in
            match
              Vs_trace_checker.check params
                (List.map snd (Timed.actions trace))
            with
            | Ok () ->
                Printf.printf
                  "%s: %d events, VS-machine conformance OK\n" file
                  (List.length trace)
            | Error err ->
                Printf.printf "%s: REJECTED (%s)\n" file
                  (Format.asprintf "%a" Vs_trace_checker.pp_error err);
                exit 1))
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Conformance-check a dumped (or externally produced) trace against \
          TO-machine or VS-machine.")
    Term.(const run $ layer_arg $ file_arg $ n_arg $ p0_arg)

(* ------------------------------- bus -------------------------------- *)

(* Run a replicated application over the real multi-domain bus transport:
   every processor is an OCaml domain, packets are wire-serialized, time
   is the wall clock. The timing profile is the differential suite's
   anchored one (δ = 5 s, π = 0.15 s, μ huge): the whole workload is
   preloaded at time zero, the token orders it, and the run stops as soon
   as every replica has reported everything. *)

let bus_cmd =
  let module Kv_rsm = Gcs_apps.Rsm.Make (Gcs_apps.Kv_store) in
  let module Book_rsm = Gcs_apps.Rsm.Make (Gcs_apps.Order_book) in
  let run n seed ops app =
    let procs = Proc.all ~n in
    let config =
      To_service.make_config
        { Vs_node.procs; p0 = procs; pi = 0.15; mu = 1.0e6; delta = 5.0 }
    in
    let prng = Gcs_stdx.Prng.create seed in
    let workload =
      List.init ops (fun i ->
          let origin = i mod n in
          match app with
          | `Kv ->
              let key = Printf.sprintf "k%d" (Gcs_stdx.Prng.int prng 8) in
              let op =
                if Gcs_stdx.Prng.int prng 10 = 0 then Gcs_apps.Kv_store.Del key
                else Gcs_apps.Kv_store.Put (key, Printf.sprintf "v%d" i)
              in
              Kv_rsm.submit origin op 0.0
          | `Book ->
              let side =
                if Gcs_stdx.Prng.int prng 2 = 0 then Gcs_apps.Order_book.Buy
                else Gcs_apps.Order_book.Sell
              in
              let order =
                {
                  Gcs_apps.Order_book.id = i;
                  side;
                  price = 95 + Gcs_stdx.Prng.int prng 11;
                  qty = 1 + Gcs_stdx.Prng.int prng 9;
                }
              in
              Book_rsm.submit origin (Gcs_apps.Order_book.Submit order) 0.0)
    in
    let progress = Array.init n (fun _ -> Atomic.make 0) in
    let observe p _pre post =
      let st = To_service.node_app post in
      let reported = st.Vstoto.nextreport - 1 in
      Gcs_stdx.Atomicx.store_max progress.(p) reported
    in
    let stop ~now:_ ~outputs:_ =
      Array.for_all (fun a -> Atomic.get a >= ops) progress
    in
    let t0 = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () in
    let run =
      To_service.run_on ~observe ~stop
        ~backend:(Gcs_transport.Bus.backend ())
        config ~workload ~failures:[] ~until:120.0 ~seed
    in
    let wall = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () -. t0 in
    let actions = List.map snd (Timed.actions (To_service.client_trace run)) in
    let deliveries = To_service.deliveries run in
    Printf.printf
      "bus run: n=%d seed=%d app=%s  %d ops submitted, %d deliveries\n" n seed
      (match app with `Kv -> "kv" | `Book -> "book")
      ops deliveries;
    Printf.printf
      "         %.2f wall s, %d packets  ->  %.0f client msgs/sec, %.0f \
       packets/sec\n"
      wall run.To_service.packets_sent
      (float_of_int deliveries /. wall)
      (float_of_int run.To_service.packets_sent /. wall);
    let describe_replicas pp_state states consistent =
      List.iter
        (fun (p, state, applied) ->
          Printf.printf "  replica %d: %d ops applied, %s\n" p applied
            (pp_state state))
        states;
      if consistent then begin
        Printf.printf "replicas CONSISTENT\n";
        `Ok ()
      end
      else `Error (false, "replicas inconsistent: divergent states")
    in
    match app with
    | `Kv -> (
        match Kv_rsm.replica_states procs actions with
        | Error e -> `Error (false, "undecodable operation: " ^ e)
        | Ok states ->
            describe_replicas
              (fun s ->
                Printf.sprintf "%d keys" (List.length (Gcs_apps.Kv_store.bindings s)))
              states
              (Kv_rsm.consistent procs actions))
    | `Book -> (
        match Book_rsm.replica_states procs actions with
        | Error e -> `Error (false, "undecodable operation: " ^ e)
        | Ok states ->
            describe_replicas
              (fun (s : Gcs_apps.Order_book.t) ->
                Printf.sprintf "best bid %s / ask %s, %d trades"
                  (match Gcs_apps.Order_book.best_bid s with
                  | Some p -> string_of_int p
                  | None -> "-")
                  (match Gcs_apps.Order_book.best_ask s with
                  | Some p -> string_of_int p
                  | None -> "-")
                  (Gcs_apps.Order_book.trade_count s))
              states
              (Book_rsm.consistent procs actions))
  in
  let ops_arg =
    Arg.(
      value & opt int 60
      & info [ "ops" ] ~docv:"K" ~doc:"Client operations to submit.")
  in
  let app_arg =
    Arg.(
      value
      & opt (enum [ ("kv", `Kv); ("book", `Book) ]) `Kv
      & info [ "app" ] ~docv:"APP"
          ~doc:"Replicated application: $(b,kv) store or order $(b,book).")
  in
  Cmd.v
    (Cmd.info "bus"
       ~doc:
         "Serve a replicated application over the real multi-domain bus \
          transport (one OCaml domain per processor, wire-serialized \
          packets, wall-clock time) and check replica consistency.")
    Term.(ret (const run $ n_arg $ seed_arg $ ops_arg $ app_arg))

(* ------------------------------- load ------------------------------- *)

(* Open-loop load generator. Submission times are fixed up front at a
   constant per-processor rate (or all preloaded at t=0 with --rate 0)
   and never wait for deliveries, so the offered load is independent of
   how the service keeps up — the classic open-loop discipline. The
   batch window coalesces whatever queues between flushes into a single
   Msg.Batch gpsnd; the report shows wall-clock client throughput and
   the realized batch-size distribution, the same numbers bench section
   X20 records and gates. *)
let load_cmd =
  (* The Skeen backend has no batching layer: every submission is its own
     propose/commit exchange addressed to the full group, so --window is
     ignored and the report's batch columns are structurally zero. *)
  let run_skeen backend n count rate seed json =
    let procs = Proc.all ~n in
    let config = Gcs_skeen.Skeen.make_config ~procs in
    let workload =
      List.concat_map
        (fun p ->
          List.init count (fun k ->
              let at = if rate <= 0.0 then 0.0 else float_of_int k /. rate in
              ( at,
                p,
                {
                  Gcs_skeen.Skeen.value = Printf.sprintf "v%d.%d" p k;
                  dests = [];
                } )))
        procs
    in
    let total = n * count in
    let expected = n * total in
    let offered = if rate <= 0.0 then 0.0 else float_of_int count /. rate in
    let delta = match backend with `Skeen_sim -> 1.0 | `Skeen_bus -> 5.0 in
    let until =
      match backend with
      | `Skeen_sim -> offered +. 500.0
      | `Skeen_bus -> offered +. 60.0
    in
    let backend_impl, backend_name =
      match backend with
      | `Skeen_sim ->
          ( Gcs_sim.Backend.of_config
              {
                (Gcs_sim.Engine.default_config ~delta) with
                Gcs_sim.Engine.fifo = true;
              },
            "skeen" )
      | `Skeen_bus -> (Gcs_transport.Bus.backend (), "skeen-bus")
    in
    (* Each submission records one Bcast and n Brcv outputs. *)
    let stop ~now:_ ~outputs = outputs >= total + expected in
    let t0 = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () in
    let run =
      Gcs_skeen.Skeen.run_on ~stop ~backend:backend_impl config ~workload
        ~failures:[] ~until ~seed
    in
    let wall = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () -. t0 in
    let deliveries = Gcs_skeen.Skeen.deliveries run in
    let client_rate = float_of_int deliveries /. wall in
    if json then
      Printf.printf
        "{\"backend\":\"%s\",\"n\":%d,\"count_per_proc\":%d,\"rate_per_proc\":%g,\"batch_window\":null,\"submitted\":%d,\"client_deliveries\":%d,\"expected_deliveries\":%d,\"wall_s\":%.6f,\"client_msgs_per_s\":%.1f,\"packets_sent\":%d,\"gpsnd_batches\":0,\"batch_mean\":0.00,\"batch_max\":0}\n"
        backend_name n count rate total deliveries expected wall client_rate
        run.Gcs_skeen.Skeen.packets_sent
    else begin
      Printf.printf "load: backend=%s n=%d count=%d/proc rate=%s/proc\n"
        backend_name n count
        (if rate <= 0.0 then "preload" else Printf.sprintf "%g" rate);
      Printf.printf
        "  %d submitted, %d/%d deliveries in %.2f wall s  ->  %.0f client \
         msgs/sec\n"
        total deliveries expected wall client_rate;
      Printf.printf "  %d packets\n" run.Gcs_skeen.Skeen.packets_sent
    end;
    if deliveries < expected then
      `Error
        ( false,
          Printf.sprintf "incomplete: %d of %d deliveries before the horizon"
            deliveries expected )
    else `Ok ()
  in
  let run backend n count rate window seed json =
    match backend with
    | (`Skeen_sim | `Skeen_bus) as b -> run_skeen b n count rate seed json
    | (`Sim | `Bus) as backend ->
    let procs = Proc.all ~n in
    let vs_config =
      match backend with
      | `Sim -> { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }
      | `Bus -> { Vs_node.procs; p0 = procs; pi = 0.15; mu = 1.0e6; delta = 5.0 }
    in
    let batch_window =
      if window < 0.0 then
        Some (match backend with `Sim -> 2.0 | `Bus -> 0.02)
      else if window = 0.0 then None
      else Some window
    in
    let config = To_service.make_config ?batch_window vs_config in
    let workload =
      List.concat_map
        (fun p ->
          List.init count (fun k ->
              let at = if rate <= 0.0 then 0.0 else float_of_int k /. rate in
              (at, p, Printf.sprintf "v%d.%d" p k)))
        procs
    in
    let total = n * count in
    let progress = Array.init n (fun _ -> Atomic.make 0) in
    let observe p _pre post =
      let st = To_service.node_app post in
      let r = st.Vstoto.nextreport - 1 in
      Gcs_stdx.Atomicx.store_max progress.(p) r
    in
    let stop ~now:_ ~outputs:_ =
      Array.for_all (fun a -> Atomic.get a >= total) progress
    in
    let offered = if rate <= 0.0 then 0.0 else float_of_int count /. rate in
    let until =
      match backend with `Sim -> offered +. 500.0 | `Bus -> offered +. 60.0
    in
    let backend_impl, backend_name =
      match backend with
      | `Sim ->
          ( Gcs_sim.Backend.of_config
              (Gcs_sim.Engine.default_config ~delta:vs_config.Vs_node.delta),
            "sim" )
      | `Bus -> (Gcs_transport.Bus.backend (), "bus")
    in
    let t0 = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () in
    let run =
      To_service.run_on ~observe ~stop ~backend:backend_impl config ~workload
        ~failures:[] ~until ~seed
    in
    let wall = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () -. t0 in
    let deliveries = To_service.deliveries run in
    let client_rate = float_of_int deliveries /. wall in
    let batches, batch_mean, batch_max =
      match
        Gcs_stdx.Metrics.histogram run.To_service.metrics "to.batch_size"
      with
      | Some (_, c, sum, max_v) when c > 0 ->
          (c, sum /. float_of_int c, max_v)
      | _ -> (0, 0.0, 0.0)
    in
    if json then
      Printf.printf
        "{\"backend\":\"%s\",\"n\":%d,\"count_per_proc\":%d,\"rate_per_proc\":%g,\"batch_window\":%s,\"submitted\":%d,\"client_deliveries\":%d,\"expected_deliveries\":%d,\"wall_s\":%.6f,\"client_msgs_per_s\":%.1f,\"packets_sent\":%d,\"gpsnd_batches\":%d,\"batch_mean\":%.2f,\"batch_max\":%.0f}\n"
        backend_name n count rate
        (match batch_window with
        | None -> "null"
        | Some w -> Printf.sprintf "%g" w)
        total deliveries (n * total) wall client_rate
        run.To_service.packets_sent batches batch_mean batch_max
    else begin
      Printf.printf
        "load: backend=%s n=%d count=%d/proc rate=%s/proc window=%s\n"
        backend_name n count
        (if rate <= 0.0 then "preload" else Printf.sprintf "%g" rate)
        (match batch_window with
        | None -> "off"
        | Some w -> Printf.sprintf "%g" w);
      Printf.printf
        "  %d submitted, %d/%d deliveries in %.2f wall s  ->  %.0f client \
         msgs/sec\n"
        total deliveries (n * total) wall client_rate;
      Printf.printf "  %d packets, %d gpsnd batches (mean %.1f, max %.0f)\n"
        run.To_service.packets_sent batches batch_mean batch_max
    end;
    if deliveries < n * total then
      `Error
        ( false,
          Printf.sprintf "incomplete: %d of %d deliveries before the horizon"
            deliveries (n * total) )
    else `Ok ()
  in
  let backend_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("sim", `Sim);
               ("bus", `Bus);
               ("skeen", `Skeen_sim);
               ("skeen-bus", `Skeen_bus);
             ])
          `Sim
      & info [ "backend" ] ~docv:"B"
          ~doc:
            "Total-order backend and transport: $(b,sim)/$(b,bus) drive the \
             VStoTO stack (virtual time vs real domains); $(b,skeen) and \
             $(b,skeen-bus) drive the Skeen timestamp backend on the same \
             two transports ($(b,--window) does not apply — Skeen has no \
             batching layer).")
  in
  let count_arg =
    Arg.(
      value & opt int 200
      & info [ "count" ] ~docv:"K"
          ~doc:"Client values submitted per processor.")
  in
  let rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "rate" ] ~docv:"R"
          ~doc:
            "Open-loop submission rate per processor (values per second of \
             model time; 0: preload everything at t=0).")
  in
  let window_arg =
    Arg.(
      value & opt float (-1.0)
      & info [ "window" ] ~docv:"W"
          ~doc:
            "Batch window: queued values coalesce into one gpsnd per flush \
             (negative: backend default, 0: batching off).")
  in
  let json_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Print one JSON object instead.")
  in
  Cmd.v
    (Cmd.info "load"
       ~doc:
         "Open-loop load generator: fixed-rate client submissions through \
          the full VStoTO stack on the sim or bus backend, reporting \
          wall-clock client throughput and batch sizes.")
    Term.(
      ret
        (const run $ backend_arg $ n_arg $ count_arg $ rate_arg $ window_arg
       $ seed_arg $ json_arg))

(* ------------------------------- diff ------------------------------- *)

let diff_cmd =
  let run pairs seed out_dir =
    let t0 = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () in
    let failures = ref 0 in
    for i = 0 to pairs - 1 do
      let seed = seed + (i * 131) in
      let r = Gcs_conformance.Differential.run_pair ~seed () in
      Printf.printf "%s\n%!"
        (Format.asprintf "%a" Gcs_conformance.Differential.pp_report r);
      if not (Gcs_conformance.Differential.passed r) then begin
        incr failures;
        let file =
          Filename.concat out_dir (Printf.sprintf "divergence-seed-%d.json" seed)
        in
        let oc = open_out file in
        output_string oc (Gcs_conformance.Differential.dump r);
        output_string oc "\n";
        close_out oc;
        Printf.printf "  -> artifact %s\n%!" file
      end
    done;
    let wall = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () -. t0 in
    Printf.printf "%d pairs in %.1f s, %d failure(s)\n" pairs wall !failures;
    if !failures > 0 then exit 1
  in
  let pairs_arg =
    Arg.(
      value & opt int 20
      & info [ "pairs" ] ~docv:"K"
          ~doc:"Seeded sim/bus workload pairs to compare.")
  in
  let out_arg =
    Arg.(
      value & opt string "."
      & info [ "out" ] ~docv:"DIR"
          ~doc:"Directory for divergence artifacts (JSON, one per failure).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Differential transport check: run seeded client workloads through \
          both the simulator and the bus and fail on any difference in \
          per-node delivered orders, dumping both orders as a JSON artifact.")
    Term.(const run $ pairs_arg $ seed_arg $ out_arg)

let () =
  let doc = "Partitionable group communication service reproduction" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "gcs" ~doc)
          [
            bounds_cmd;
            run_cmd;
            spec_cmd;
            check_cmd;
            nemesis_cmd;
            fuzz_cmd;
            soak_cmd;
            metrics_cmd;
            timeline_cmd;
            lint_cmd;
            lockcheck_cmd;
            bus_cmd;
            load_cmd;
            diff_cmd;
          ]))
