(* Benchmark and experiment harness.

   The paper has no empirical tables (it is a specification paper); the
   quantitative claims it makes are the Section 8 analytical bounds and
   the conditional properties of Sections 3/4/7. Each X-section below
   regenerates one of those claims as a paper-vs-measured series (see
   DESIGN.md for the experiment index and EXPERIMENTS.md for recorded
   results); the M-section holds bechamel micro-benchmarks of the core
   machinery.

   Every sweep fans its independent (parameter, seed) runs out over a
   Gcs_stdx.Pool of domains — each run owns its own PRNG, so results are
   bit-identical to the sequential run at any job count; rows are printed
   (and recorded) in deterministic input order.

   Run with: dune exec bench/main.exe                 (full run)
             dune exec bench/main.exe -- --quick      (skip micro-benchmarks)
             dune exec bench/main.exe -- --jobs 4     (parallel sweeps)
             dune exec bench/main.exe -- --json FILE  (machine-readable results)
             dune exec bench/main.exe -- --only X19      (a single section)
             dune exec bench/main.exe -- --only X19,X20  (a comma-set of them) *)

open Gcs_core
open Gcs_impl

let delta = 1.0
let jobs = ref 1

let pmap f xs = Gcs_stdx.Pool.map ~jobs:!jobs f xs

let mk_vs_config ?(pi = 8.0) ?(mu = 10.0) n =
  let procs = Proc.all ~n in
  { Vs_node.procs; p0 = procs; pi; mu; delta }

let workload ~senders ~from_time ~spacing ~count ~tag =
  List.concat_map
    (fun (i, p) ->
      List.init count (fun k ->
          ( from_time +. (float_of_int k *. spacing) +. (0.19 *. float_of_int i),
            p,
            Printf.sprintf "%s%d.%d" tag p k )))
    (List.mapi (fun i p -> (i, p)) senders)

let partition_at t parts =
  List.map (fun e -> (t, e)) (Fstatus.partition_events ~parts)

let heal_at procs t = List.map (fun e -> (t, e)) (Fstatus.heal_events ~procs)

let mean = function
  | [] -> nan
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let maxf = function [] -> nan | x :: xs -> List.fold_left max x xs

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let row fmt = Printf.printf fmt

(* ------------------------------------------------------------------ *)
(* Minimal JSON emitter for --json (no external dependency). *)

module J = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | Str of string
    | Arr of t list
    | Obj of (string * t) list

  let num f = if Float.is_nan f || Float.is_integer (f /. 0.0) then Null else Float f

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c when Char.code c < 32 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let rec emit buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> Buffer.add_string buf (Printf.sprintf "%.6g" f)
    | Str s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | Arr xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            emit buf (Str k);
            Buffer.add_char buf ':';
            emit buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string t =
    let buf = Buffer.create 1024 in
    emit buf t;
    Buffer.contents buf
end

type section = { id : string; title : string; wall_s : float; rows : J.t list }

let recorded : section list ref = ref []
let only : string list option ref = ref None

(* Each experiment prints its table and returns machine-readable rows;
   [section] times the whole X-section (wall clock, so pool speedups are
   visible in the JSON trajectory). [--only ID,ID,...] skips everything
   else. *)
let section id title f =
  match !only with
  | Some want when not (List.exists (String.equal id) want) -> ()
  | _ ->
      header (id ^ ": " ^ title);
      let t0 = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () in
      let rows = f () in
      let wall_s = (Unix.gettimeofday [@gcs.lint.allow "D2"]) () -. t0 in
      recorded := { id; title; wall_s; rows } :: !recorded

(* ------------------------------------------------------------------ *)
(* X6: view stabilization time after a partition vs the Section 8 bound
   b = 9d + max(pi + (n+3)d, mu). *)

let x6 () =
  row "%4s %6s %12s %12s %12s\n" "n" "|Q|" "measured" "paper b" "impl b";
  let ns = [ 3; 4; 5; 6; 7 ] in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let items = List.concat_map (fun n -> List.map (fun s -> (n, s)) seeds) ns in
  let samples =
    pmap
      (fun (n, seed) ->
        let config = mk_vs_config n in
        let procs = config.Vs_node.procs in
        let q = List.filteri (fun i _ -> i < (n / 2) + 1) procs in
        let rest = List.filter (fun p -> not (List.mem p q)) procs in
        let failures = partition_at 100.0 [ q; rest ] in
        let run =
          Vs_service.run config ~workload:[] ~failures ~until:400.0 ~seed
        in
        ( n,
          Option.map
            (fun t -> t -. 100.0)
            (Vs_service.stabilized_view_time ~q run) ))
      items
  in
  List.map
    (fun n ->
      let config = mk_vs_config n in
      let q =
        List.filteri (fun i _ -> i < (n / 2) + 1) config.Vs_node.procs
      in
      let measured =
        List.filter_map (fun (n', m) -> if n' = n then m else None) samples
      in
      let q_config = { config with Vs_node.procs = q } in
      let m = mean measured in
      let pb = Vs_node.paper_b q_config and ib = Vs_node.impl_b config in
      row "%4d %6d %12.2f %12.2f %12.2f\n" n (List.length q) m pb ib;
      J.Obj
        [
          ("n", J.Int n);
          ("q_size", J.Int (List.length q));
          ("measured_mean", J.num m);
          ("paper_b", J.num pb);
          ("impl_b", J.num ib);
        ])
    ns

(* ------------------------------------------------------------------ *)
(* X7: steady-state safe-delivery latency vs d = 2pi + n*delta. *)

let safe_latencies config run =
  let q = config.Vs_node.procs in
  let nq = List.length q in
  let sends = Hashtbl.create 256 in
  let safes = Hashtbl.create 256 in
  List.iter
    (fun (t, a) ->
      match a with
      | Vs_action.Gpsnd { sender; msg } ->
          if not (Hashtbl.mem sends (sender, msg)) then
            Hashtbl.replace sends (sender, msg) t
      | Vs_action.Safe { src; msg; _ } ->
          let last, count =
            match Hashtbl.find_opt safes (src, msg) with
            | Some (last, count) -> (max last t, count + 1)
            | None -> (t, 1)
          in
          Hashtbl.replace safes (src, msg) (last, count)
      | _ -> ())
    (Timed.actions run.Vs_service.trace);
  (* Sort: the fold visits [sends] in hash order and float summation in
     [mean] is order-sensitive. *)
  List.sort Float.compare
    (Hashtbl.fold
       (fun key t0 acc ->
         match Hashtbl.find_opt safes key with
         | Some (last, count) when count = nq -> (last -. t0) :: acc
         | _ -> acc)
       sends [])

let x7 () =
  row "%4s %6s %10s %10s %10s %10s\n" "n" "pi" "mean" "max" "paper d" "impl d";
  let configs =
    List.map (fun n -> (n, mk_vs_config n)) [ 2; 3; 4; 5; 6 ]
    @ List.map (fun pi -> (5, mk_vs_config ~pi 5)) [ 6.0; 10.0; 14.0; 18.0 ]
  in
  let seeds = [ 1; 2; 3 ] in
  let items =
    List.concat_map
      (fun (i, cfg) -> List.map (fun s -> (i, cfg, s)) seeds)
      (List.mapi (fun i (n, cfg) -> (i, (n, cfg))) configs
      |> List.map (fun (i, (_, cfg)) -> (i, cfg)))
  in
  let lat_samples =
    pmap
      (fun (i, config, seed) ->
        let wl =
          workload ~senders:config.Vs_node.procs ~from_time:5.0 ~spacing:9.0
            ~count:10 ~tag:"m"
        in
        ( i,
          safe_latencies config
            (Vs_service.run config ~workload:wl ~failures:[] ~until:400.0 ~seed)
        ))
      items
  in
  List.mapi
    (fun i (n, config) ->
      let lats =
        List.concat_map
          (fun (i', l) -> if i' = i then l else [])
          lat_samples
      in
      let m = mean lats and mx = maxf lats in
      let pd = Vs_node.paper_d config and id = Vs_node.impl_d config in
      row "%4d %6.1f %10.2f %10.2f %10.2f %10.2f\n" n config.Vs_node.pi m mx pd
        id;
      J.Obj
        [
          ("n", J.Int n);
          ("pi", J.num config.Vs_node.pi);
          ("mean", J.num m);
          ("max", J.num mx);
          ("paper_d", J.num pd);
          ("impl_d", J.num id);
        ])
    configs

(* ------------------------------------------------------------------ *)
(* X8: end-to-end TO delivery latency (Theorem 7.1: TO(b + d, d, Q)). *)

let to_latencies run =
  let sends = Hashtbl.create 256 in
  let last_delivery = Hashtbl.create 256 in
  let counts = Hashtbl.create 256 in
  List.iter
    (fun (t, a) ->
      match a with
      | To_action.Bcast (p, v) ->
          if not (Hashtbl.mem sends (p, v)) then Hashtbl.replace sends (p, v) t
      | To_action.Brcv { src; value; _ } ->
          let key = (src, value) in
          Hashtbl.replace last_delivery key
            (max t
               (Option.value ~default:neg_infinity
                  (Hashtbl.find_opt last_delivery key)));
          Hashtbl.replace counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
      | To_action.To_order _ -> ())
    (Timed.actions (To_service.client_trace run));
  (sends, last_delivery, counts)

let x8 () =
  row "%4s %10s %10s %14s %14s\n" "n" "mean" "max" "bound b'=b+d" "bound d'";
  let ns = [ 3; 4; 5; 6 ] in
  let seeds = [ 1; 2; 3 ] in
  let items = List.concat_map (fun n -> List.map (fun s -> (n, s)) seeds) ns in
  let samples =
    pmap
      (fun (n, seed) ->
        let vs_config = mk_vs_config n in
        let config = To_service.make_config vs_config in
        let procs = vs_config.Vs_node.procs in
        let wl =
          workload ~senders:procs ~from_time:5.0 ~spacing:11.0 ~count:8
            ~tag:"v"
        in
        let run =
          To_service.run config ~workload:wl ~failures:[] ~until:500.0 ~seed
        in
        let sends, last_delivery, counts = to_latencies run in
        ( n,
          (* Sorted for the same reason as [safe_latencies]: determinism
             of the order-sensitive float mean downstream. *)
          List.sort Float.compare
            (Hashtbl.fold
               (fun key t0 acc ->
                 match
                   ( Hashtbl.find_opt last_delivery key,
                     Hashtbl.find_opt counts key )
                 with
                 | Some t1, Some c when c = n -> (t1 -. t0) :: acc
                 | _ -> acc)
               sends []) ))
      items
  in
  List.map
    (fun n ->
      let vs_config = mk_vs_config n in
      let lats =
        List.concat_map (fun (n', l) -> if n' = n then l else []) samples
      in
      let m = mean lats and mx = maxf lats in
      let b' = Vs_node.impl_b vs_config +. Vs_node.impl_d vs_config in
      let d' = Vs_node.impl_d vs_config +. (4.0 *. delta) in
      row "%4d %10.2f %10.2f %14.2f %14.2f\n" n m mx b' d';
      J.Obj
        [
          ("n", J.Int n);
          ("mean", J.num m);
          ("max", J.num mx);
          ("bound_b_plus_d", J.num b');
          ("bound_d", J.num d');
        ])
    ns

(* ------------------------------------------------------------------ *)
(* X9: recovery (state exchange) after a merge: catch-up time of the
   minority as a function of the backlog accumulated by the majority.
   State transfer rides in the summaries, so catch-up should be a few
   token rounds, nearly independent of the backlog. *)

let x9 () =
  row "%10s %12s %14s\n" "backlog" "catch-up" "(deliveries)";
  let n = 5 in
  let vs_config = mk_vs_config n in
  let config = To_service.make_config vs_config in
  let procs = vs_config.Vs_node.procs in
  let majority = [ 0; 1; 2 ] and minority = [ 3; 4 ] in
  let results =
    pmap
      (fun backlog ->
        let heal_time = 100.0 +. (float_of_int backlog *. 1.0) in
        let wl =
          List.init backlog (fun k ->
              ( 60.0 +. (float_of_int k *. 0.7),
                List.nth majority (k mod 3),
                Printf.sprintf "b%d" k ))
        in
        let failures =
          partition_at 40.0 [ majority; minority ] @ heal_at procs heal_time
        in
        let until = heal_time +. 300.0 in
        let run = To_service.run config ~workload:wl ~failures ~until ~seed:5 in
        let last =
          List.fold_left
            (fun acc (t, a) ->
              match a with
              | To_action.Brcv { dst; _ } when List.mem dst minority -> max acc t
              | _ -> acc)
            neg_infinity
            (Timed.actions (To_service.client_trace run))
        in
        let minority_deliveries =
          List.length
            (List.filter
               (fun (_, a) ->
                 match a with
                 | To_action.Brcv { dst; _ } -> List.mem dst minority
                 | _ -> false)
               (Timed.actions (To_service.client_trace run)))
        in
        ( backlog,
          (if last = neg_infinity then nan else last -. heal_time),
          minority_deliveries ))
      [ 10; 50; 100; 200 ]
  in
  List.map
    (fun (backlog, catchup, deliveries) ->
      row "%10d %12.2f %14d\n" backlog catchup deliveries;
      J.Obj
        [
          ("backlog", J.Int backlog);
          ("catchup_time", J.num catchup);
          ("minority_deliveries", J.Int deliveries);
        ])
    results

(* ------------------------------------------------------------------ *)
(* X10: protocol comparison: steady-state latency and availability
   under a partition that isolates the sequencer. *)

let x10 () =
  let n = 4 in
  let vs_config = mk_vs_config ~pi:6.0 ~mu:8.0 n in
  let procs = vs_config.Vs_node.procs in
  let to_config = To_service.make_config vs_config in
  let ss_config =
    To_service.make_config ~stable_storage_latency:3.0 vs_config
  in
  let seq_config = Gcs_baseline.Sequencer.make_config ~procs in
  let wl = workload ~senders:procs ~from_time:5.0 ~spacing:10.0 ~count:8 ~tag:"c" in
  let mean_latency actions =
    let sends = Hashtbl.create 64 in
    let total = ref 0.0 and count = ref 0 in
    List.iter
      (fun (t, a) ->
        match a with
        | To_action.Bcast (p, v) -> Hashtbl.replace sends (p, v) t
        | To_action.Brcv { src; value; _ } -> (
            match Hashtbl.find_opt sends (src, value) with
            | Some t0 ->
                total := !total +. (t -. t0);
                incr count
            | None -> ())
        | To_action.To_order _ -> ())
      actions;
    if !count = 0 then nan else !total /. float_of_int !count
  in
  let vstoto_run = To_service.run to_config ~workload:wl ~failures:[] ~until:400.0 ~seed:3 in
  let ss_run = To_service.run ss_config ~workload:wl ~failures:[] ~until:400.0 ~seed:3 in
  let seq_run =
    Gcs_baseline.Sequencer.run ~delta seq_config ~workload:wl ~failures:[]
      ~until:400.0 ~seed:3
  in
  let lamport_config = { Gcs_baseline.Lamport_to.procs } in
  let lamport_run =
    Gcs_baseline.Lamport_to.run ~delta lamport_config ~workload:wl ~failures:[]
      ~until:400.0 ~seed:3
  in
  let steady =
    [
      ( "fixed sequencer",
        mean_latency (Timed.actions seq_run.Gcs_baseline.Sequencer.trace),
        Gcs_baseline.Sequencer.deliveries seq_run );
      ( "lamport timestamps",
        mean_latency (Timed.actions lamport_run.Gcs_baseline.Lamport_to.trace),
        Gcs_baseline.Lamport_to.deliveries lamport_run );
      ( "VStoTO",
        mean_latency (Timed.actions (To_service.client_trace vstoto_run)),
        To_service.deliveries vstoto_run );
      ( "VStoTO + stable storage",
        mean_latency (Timed.actions (To_service.client_trace ss_run)),
        To_service.deliveries ss_run );
    ]
  in
  row "%-28s %12s %16s\n" "protocol" "latency" "deliveries";
  List.iter
    (fun (name, lat, dels) -> row "%-28s %12.2f %16d\n" name lat dels)
    steady;
  let failures = partition_at 30.0 [ [ 0 ]; [ 1; 2; 3 ] ] in
  let wl2 = workload ~senders:[ 1; 2; 3 ] ~from_time:60.0 ~spacing:9.0 ~count:6 ~tag:"a" in
  let seq_part =
    Gcs_baseline.Sequencer.run ~delta seq_config ~workload:wl2 ~failures
      ~until:500.0 ~seed:4
  in
  let vstoto_part = To_service.run to_config ~workload:wl2 ~failures ~until:500.0 ~seed:4 in
  let lamport_part =
    Gcs_baseline.Lamport_to.run ~delta lamport_config ~workload:wl2 ~failures
      ~until:500.0 ~seed:4
  in
  let partitioned =
    [
      ("fixed sequencer", Gcs_baseline.Sequencer.deliveries seq_part);
      ("lamport timestamps", Gcs_baseline.Lamport_to.deliveries lamport_part);
      ("VStoTO", To_service.deliveries vstoto_part);
    ]
  in
  row "\nwith processor 0 isolated (majority of 3 still connected):\n";
  List.iter
    (fun (name, dels) -> row "%-28s %16d\n" (name ^ " deliveries") dels)
    partitioned;
  List.map
    (fun (name, lat, dels) ->
      J.Obj
        [
          ("phase", J.Str "steady");
          ("protocol", J.Str name);
          ("latency", J.num lat);
          ("deliveries", J.Int dels);
        ])
    steady
  @ List.map
      (fun (name, dels) ->
        J.Obj
          [
            ("phase", J.Str "partitioned");
            ("protocol", J.Str name);
            ("deliveries", J.Int dels);
          ])
      partitioned

(* ------------------------------------------------------------------ *)
(* X11: capricious view changes stop after stabilization (difference 7
   in Section 1). *)

let x11 () =
  let n = 5 in
  let config = mk_vs_config n in
  let procs = config.Vs_node.procs in
  let prng = Gcs_stdx.Prng.create 17 in
  let flaps =
    List.concat
      (List.init 14 (fun i ->
           let t = 20.0 +. (float_of_int i *. 20.0) in
           let p = Gcs_stdx.Prng.pick_exn prng procs in
           let q = Gcs_stdx.Prng.pick_exn prng procs in
           if Proc.equal p q then [ (t, Fstatus.Proc_status (p, Fstatus.Ugly)) ]
           else
             [
               (t, Fstatus.Link_status (p, q, Fstatus.Bad));
               (t +. 10.0, Fstatus.Link_status (p, q, Fstatus.Good));
             ]))
  in
  let failures = flaps @ heal_at procs 320.0 in
  let run = Vs_service.run config ~workload:[] ~failures ~until:700.0 ~seed:17 in
  let cutoff = 320.0 +. Vs_node.impl_b config in
  let before, after =
    List.fold_left
      (fun (b, a) (t, action) ->
        match action with
        | Vs_action.Newview _ -> if t <= cutoff then (b + 1, a) else (b, a + 1)
        | _ -> (b, a))
      (0, 0)
      (Timed.actions run.Vs_service.trace)
  in
  row "newview events during churn (t <= %.1f): %d\n" cutoff before;
  row "newview events after stabilization:      %d   (paper: must be 0)\n" after;
  [
    J.Obj [ ("period", J.Str "churn"); ("newviews", J.Int before) ];
    J.Obj [ ("period", J.Str "stabilized"); ("newviews", J.Int after) ];
  ]

(* ------------------------------------------------------------------ *)
(* X12: the token stays bounded (pruning of the safe prefix) and the
   amortized message cost per delivered value. *)

let x12 () =
  row "%6s %14s %16s %18s\n" "n" "max token" "messages sent" "packets/delivery";
  let results =
    pmap
      (fun n ->
        let config = mk_vs_config n in
        let wl =
          workload ~senders:config.Vs_node.procs ~from_time:5.0 ~spacing:3.0
            ~count:40 ~tag:"t"
        in
        let run =
          Vs_service.run config ~workload:wl ~failures:[] ~until:600.0 ~seed:9
        in
        let max_entries =
          Proc.Map.fold
            (fun _ st acc -> max (Vs_node.max_token_entries st) acc)
            run.Vs_service.final_states 0
        in
        let deliveries =
          List.length
            (List.filter
               (fun (_, a) ->
                 match a with Vs_action.Gprcv _ -> true | _ -> false)
               (Timed.actions run.Vs_service.trace))
        in
        let per_delivery =
          if deliveries = 0 then nan
          else
            float_of_int run.Vs_service.packets_sent /. float_of_int deliveries
        in
        (n, max_entries, run.Vs_service.packets_sent, per_delivery))
      [ 3; 5; 7 ]
  in
  List.map
    (fun (n, max_entries, packets, per_delivery) ->
      row "%6d %14d %16d %18.2f\n" n max_entries packets per_delivery;
      J.Obj
        [
          ("n", J.Int n);
          ("max_token_entries", J.Int max_entries);
          ("packets_sent", J.Int packets);
          ("packets_per_delivery", J.num per_delivery);
        ])
    results

(* X13: jitter ablation — fixed delta delivery vs jittered (delta/2, delta]. *)

let x13 () =
  row "%10s %10s %10s %10s\n" "links" "mean" "max" "paper d";
  let config = mk_vs_config 5 in
  let wl =
    workload ~senders:config.Vs_node.procs ~from_time:5.0 ~spacing:9.0
      ~count:10 ~tag:"j"
  in
  let variants = [ ("fixed", false); ("jittered", true) ] in
  let seeds = [ 1; 2; 3 ] in
  let items =
    List.concat_map
      (fun (label, jitter) ->
        List.map (fun s -> (label, jitter, s)) seeds)
      variants
  in
  let samples =
    pmap
      (fun (label, jitter, seed) ->
        let engine =
          { (Gcs_sim.Engine.default_config ~delta:config.Vs_node.delta) with
            Gcs_sim.Engine.jitter }
        in
        ( label,
          safe_latencies config
            (Vs_service.run ~engine config ~workload:wl ~failures:[]
               ~until:400.0 ~seed) ))
      items
  in
  List.map
    (fun (label, _) ->
      let lats =
        List.concat_map (fun (l, ls) -> if l = label then ls else []) samples
      in
      let m = mean lats and mx = maxf lats in
      row "%10s %10.2f %10.2f %10.2f\n" label m mx (Vs_node.paper_d config);
      J.Obj
        [
          ("links", J.Str label);
          ("mean", J.num m);
          ("max", J.num mx);
          ("paper_d", J.num (Vs_node.paper_d config));
        ])
    variants

(* X14: three-round vs one-round membership (Section 8, footnote 7) —
   the one-round alternative stabilizes less quickly. *)

let x14 () =
  row "%-14s %14s %16s\n" "protocol" "stabilization" "newviews (churn)";
  let n = 5 in
  let config = mk_vs_config n in
  let procs = config.Vs_node.procs in
  let protocols =
    [ ("three-round", Vs_node.Three_round); ("one-round", Vs_node.One_round) ]
  in
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let items =
    List.concat_map
      (fun (label, protocol) -> List.map (fun s -> (label, protocol, s)) seeds)
      protocols
  in
  let samples =
    pmap
      (fun (label, protocol, seed) ->
        let failures =
          partition_at 60.0 [ [ 0; 1; 2 ]; [ 3; 4 ] ] @ heal_at procs 200.0
        in
        let run =
          Vs_service.run ~protocol config ~workload:[] ~failures ~until:900.0
            ~seed
        in
        ( label,
          Option.map
            (fun t -> (t -. 200.0, Vs_service.views_installed_total run))
            (Vs_service.stabilized_view_time ~q:procs run) ))
      items
  in
  List.map
    (fun (label, _) ->
      let s =
        List.filter_map (fun (l, x) -> if l = label then x else None) samples
      in
      let t = mean (List.map fst s) in
      let v = mean (List.map (fun (_, v) -> float_of_int v) s) in
      row "%-14s %14.2f %16.1f\n" label t v;
      J.Obj
        [
          ("protocol", J.Str label);
          ("stabilization", J.num t);
          ("newviews", J.num v);
        ])
    protocols

(* X16: throughput — the token batches, so the ring absorbs offered load
   with nearly flat latency until the token itself becomes the byte
   bottleneck (not modelled: we count entries, not bytes). *)

let x16 () =
  row "%14s %14s %12s\n" "msgs/time-unit" "delivered/unit" "mean lat";
  let n = 5 in
  let config = mk_vs_config n in
  let duration = 300.0 in
  let results =
    pmap
      (fun spacing ->
        let count = int_of_float (duration /. spacing) in
        let wl =
          workload ~senders:config.Vs_node.procs ~from_time:5.0 ~spacing ~count
            ~tag:"l"
        in
        let vs_to_config = To_service.make_config config in
        let run =
          To_service.run vs_to_config ~workload:wl ~failures:[]
            ~until:(duration +. 100.0) ~seed:2
        in
        let actions = Timed.actions (To_service.client_trace run) in
        let deliveries =
          List.length
            (List.filter
               (fun (_, a) -> match a with To_action.Brcv _ -> true | _ -> false)
               actions)
        in
        let sends = Hashtbl.create 256 in
        let lat_total = ref 0.0 and lat_count = ref 0 in
        List.iter
          (fun (t, a) ->
            match a with
            | To_action.Bcast (p, v) -> Hashtbl.replace sends (p, v) t
            | To_action.Brcv { src; value; _ } -> (
                match Hashtbl.find_opt sends (src, value) with
                | Some t0 ->
                    lat_total := !lat_total +. (t -. t0);
                    incr lat_count
                | None -> ())
            | To_action.To_order _ -> ())
          actions;
        let offered = float_of_int (count * n) /. duration in
        ( offered,
          float_of_int deliveries /. float_of_int n /. duration,
          if !lat_count = 0 then nan
          else !lat_total /. float_of_int !lat_count ))
      [ 10.0; 5.0; 2.0; 1.0; 0.5 ]
  in
  List.map
    (fun (offered, delivered, lat) ->
      row "%14.2f %14.2f %12.2f\n" offered delivered lat;
      J.Obj
        [
          ("offered_per_unit", J.num offered);
          ("delivered_per_unit", J.num delivered);
          ("mean_latency", J.num lat);
        ])
    results

(* X17: throughput under faults — the same offered load as X16, but run
   through nemesis schedules. Deliveries per time unit degrade with the
   fraction of the run spent partitioned/crashed, while mean delivery
   latency grows with the reconciliation backlog released at each heal. *)

let x17 () =
  row "%-18s %14s %12s %10s\n" "schedule" "delivered/unit" "mean lat" "dropped";
  let n = 5 in
  let config = mk_vs_config n in
  let procs = config.Vs_node.procs in
  let to_config = To_service.make_config config in
  let spacing = 2.0 in
  let duration = 300.0 in
  let count = int_of_float (duration /. spacing) in
  let wl = workload ~senders:procs ~from_time:5.0 ~spacing ~count ~tag:"f" in
  let schedules =
    (None, "clean")
    :: List.filter_map
         (fun name ->
           Option.map
             (fun s -> (Some s, name))
             (Gcs_nemesis.Scenario.find_builtin ~procs name))
         [ "split-heal"; "quorum-flap"; "churn" ]
    @ List.map
        (fun seed ->
          let s = Gcs_nemesis.Gen.scenario ~procs ~seed () in
          (Some s, s.Gcs_nemesis.Scenario.name))
        [ 7; 21 ]
  in
  let results =
    pmap
      (fun (scenario, name) ->
        let failures, until =
          match scenario with
          | None -> ([], duration +. 100.0)
          | Some s ->
              ( Gcs_nemesis.Scenario.compile ~procs s,
                max (duration +. 100.0)
                  (Gcs_nemesis.Scenario.stabilization_time s +. 150.0) )
        in
        let run = To_service.run to_config ~workload:wl ~failures ~until ~seed:2 in
        let actions = Timed.actions (To_service.client_trace run) in
        let sends = Hashtbl.create 256 in
        let lats = ref [] and deliveries = ref 0 in
        List.iter
          (fun (t, a) ->
            match a with
            | To_action.Bcast (p, v) -> Hashtbl.replace sends (p, v) t
            | To_action.Brcv { src; value; _ } -> (
                incr deliveries;
                match Hashtbl.find_opt sends (src, value) with
                | Some t0 -> lats := (t -. t0) :: !lats
                | None -> ())
            | To_action.To_order _ -> ())
          actions;
        ( name,
          float_of_int !deliveries /. float_of_int n /. duration,
          mean !lats,
          run.To_service.packets_dropped ))
      schedules
  in
  List.map
    (fun (name, delivered, lat, dropped) ->
      row "%-18s %14.2f %12.2f %10d\n" name delivered lat dropped;
      J.Obj
        [
          ("schedule", J.Str name);
          ("delivered_per_unit", J.num delivered);
          ("mean_latency", J.num lat);
          ("dropped", J.Int dropped);
        ])
    results

(* ------------------------------------------------------------------ *)
(* X18: observability — the full metrics registry of one nemesis run
   (the split-heal scenario), embedded in the JSON results so downstream
   tooling reads run metrics and bench rows from one file. *)

let rec j_of_jsonx = function
  | Gcs_stdx.Jsonx.Null -> J.Null
  | Gcs_stdx.Jsonx.Bool b -> J.Bool b
  | Gcs_stdx.Jsonx.Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then J.Int (int_of_float f)
      else J.num f
  | Gcs_stdx.Jsonx.Str s -> J.Str s
  | Gcs_stdx.Jsonx.Arr xs -> J.Arr (List.map j_of_jsonx xs)
  | Gcs_stdx.Jsonx.Obj fields ->
      J.Obj (List.map (fun (k, v) -> (k, j_of_jsonx v)) fields)

let x18 () =
  let n = 5 in
  let vs_config = mk_vs_config n in
  let config = To_service.make_config vs_config in
  let procs = vs_config.Vs_node.procs in
  let scenario =
    Option.get (Gcs_nemesis.Scenario.find_builtin ~procs "split-heal")
  in
  let outcome = Gcs_nemesis.Harness.run ~config ~seed:1 scenario in
  let metrics = outcome.Gcs_nemesis.Harness.metrics in
  Format.printf "%a@." Gcs_stdx.Metrics.pp metrics;
  let metrics_j =
    match Gcs_stdx.Jsonx.of_string (Gcs_stdx.Metrics.to_json metrics) with
    | Ok v -> j_of_jsonx v
    | Error e -> J.Str ("unparseable metrics snapshot: " ^ e)
  in
  [
    J.Obj
      [
        ("scenario", J.Str "split-heal");
        ("seed", J.Int 1);
        ("passed", J.Bool (Gcs_nemesis.Harness.passed outcome));
        ("metrics", metrics_j);
      ];
  ]

(* ------------------------------------------------------------------ *)
(* X19: bus transport throughput — wall-clock msgs/sec through the real
   multi-domain backend (the one number in this file measured in real
   seconds, everything else being simulated time). Two levels: the raw
   transport (a relay flood between two domains keeping a window of
   packets in flight, measuring the serialize → mailbox → deserialize →
   handle path), and the full VStoTO stack over the bus (token-limited
   client throughput, the rate a replicated application actually sees). *)

let wall_now () = (Unix.gettimeofday [@gcs.lint.allow "D2"]) ()

let x19 () =
  row "%12s %4s %10s %10s %10s %14s\n" "mode" "n" "wall s" "packets" "client"
    "msgs/sec";
  let module I = Gcs_transport.Iface in
  let raw ~window ~until =
    let handlers =
      {
        I.on_start =
          (fun me s ->
            if me = 0 then
              (s, List.init window (fun _ -> I.Send { dst = 1; packet = "ping" }))
            else (s, []));
        on_input = (fun _ ~now:_ () s -> (s, []));
        on_packet =
          (fun _me ~now:_ ~src packet s -> (s, [ I.Send { dst = src; packet } ]));
        on_timer = (fun _ ~now:_ ~id:_ s -> (s, []));
      }
    in
    let t0 = wall_now () in
    let result =
      Gcs_transport.Bus.run I.string_codec ~procs:(Proc.all ~n:2) ~handlers
        ~init:(fun _ -> ())
        ~inputs:[] ~failures:[] ~until ~seed:3
    in
    let wall = wall_now () -. t0 in
    let rate = float_of_int result.I.packets_sent /. wall in
    row "%12s %4d %10.2f %10d %10s %14.0f\n" "raw-relay" 2 wall
      result.I.packets_sent "-" rate;
    J.Obj
      [
        ("mode", J.Str "raw-relay");
        ("backend", J.Str "bus");
        ("n", J.Int 2);
        ("window", J.Int window);
        ("wall_s", J.num wall);
        ("packets_sent", J.Int result.I.packets_sent);
        ("msgs_per_s", J.num rate);
      ]
  in
  let stack ~n ~count =
    let procs = Proc.all ~n in
    let config =
      To_service.make_config
        { Vs_node.procs; p0 = procs; pi = 0.15; mu = 1.0e6; delta = 5.0 }
    in
    let wl = List.init count (fun i -> (0.0, i mod n, Printf.sprintf "b%d" i)) in
    let progress = Array.init n (fun _ -> Atomic.make 0) in
    let observe p _pre post =
      let st = To_service.node_app post in
      let r = st.Vstoto.nextreport - 1 in
      Gcs_stdx.Atomicx.store_max progress.(p) r
    in
    let stop ~now:_ ~outputs:_ =
      Array.for_all (fun a -> Atomic.get a >= count) progress
    in
    let t0 = wall_now () in
    let run =
      To_service.run_on ~observe ~stop
        ~backend:(Gcs_transport.Bus.backend ())
        config ~workload:wl ~failures:[] ~until:60.0 ~seed:11
    in
    let wall = wall_now () -. t0 in
    let deliveries = To_service.deliveries run in
    let packet_rate = float_of_int run.To_service.packets_sent /. wall in
    let client_rate = float_of_int deliveries /. wall in
    row "%12s %4d %10.2f %10d %10d %14.0f\n" "vstoto-stack" n wall
      run.To_service.packets_sent deliveries client_rate;
    J.Obj
      [
        ("mode", J.Str "vstoto-stack");
        ("backend", J.Str "bus");
        ("n", J.Int n);
        ("client_msgs", J.Int count);
        ("wall_s", J.num wall);
        ("packets_sent", J.Int run.To_service.packets_sent);
        ("client_deliveries", J.Int deliveries);
        ("packet_msgs_per_s", J.num packet_rate);
        ("client_msgs_per_s", J.num client_rate);
        ("msgs_per_s", J.num client_rate);
      ]
  in
  [ raw ~window:32 ~until:2.0; stack ~n:3 ~count:300 ]

(* X20: batched throughput — the open-loop workload of `gcs load`
   through the full VStoTO stack with the submission batch window on
   and off, on both backends. Values are preloaded at t=0 (open loop:
   the offered load never waits for deliveries); the window coalesces
   everything queued between flushes into one Msg.Batch gpsnd, so the
   ring carries a handful of batch entries instead of one entry per
   client value. The bus rows are real wall-clock rates (the batched
   row is the PR's ≥10x headline over the X19-era unbatched path); the
   sim rows measure the simulation's own compute cost for the same
   offered load, where batching pays by shrinking the event count.
   Rows carry [client_msgs_per_s], which the drift gate checks against
   the committed baseline (a >3x rate drop fails). *)

let x20 () =
  row "%10s %8s %4s %8s %8s %8s %9s %8s %14s\n" "mode" "backend" "n" "window"
    "values" "wall s" "deliv" "batches" "client msg/s";
  let throughput ~backend ~n ~count ~window =
    let procs = Proc.all ~n in
    let vs_config =
      match backend with
      | `Sim -> { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }
      | `Bus -> { Vs_node.procs; p0 = procs; pi = 0.15; mu = 1.0e6; delta = 5.0 }
    in
    let config = To_service.make_config ?batch_window:window vs_config in
    let wl =
      List.concat_map
        (fun p ->
          List.init count (fun k -> (0.0, p, Printf.sprintf "x%d.%d" p k)))
        procs
    in
    let total = n * count in
    let progress = Array.init n (fun _ -> Atomic.make 0) in
    let observe p _pre post =
      let st = To_service.node_app post in
      let r = st.Vstoto.nextreport - 1 in
      Gcs_stdx.Atomicx.store_max progress.(p) r
    in
    let stop ~now:_ ~outputs:_ =
      Array.for_all (fun a -> Atomic.get a >= total) progress
    in
    let backend_impl, backend_name, until =
      match backend with
      | `Sim ->
          ( Gcs_sim.Backend.of_config (Gcs_sim.Engine.default_config ~delta:1.0),
            "sim",
            2000.0 )
      | `Bus -> (Gcs_transport.Bus.backend (), "bus", 60.0)
    in
    let t0 = wall_now () in
    let run =
      To_service.run_on ~observe ~stop ~backend:backend_impl config
        ~workload:wl ~failures:[] ~until ~seed:11
    in
    let wall = wall_now () -. t0 in
    let deliveries = To_service.deliveries run in
    let client_rate = float_of_int deliveries /. wall in
    let batches, batch_mean, batch_max =
      match
        Gcs_stdx.Metrics.histogram run.To_service.metrics "to.batch_size"
      with
      | Some (_, c, sum, max_v) when c > 0 -> (c, sum /. float_of_int c, max_v)
      | _ -> (0, 0.0, 0.0)
    in
    let mode = match window with None -> "unbatched" | Some _ -> "batched" in
    row "%10s %8s %4d %8s %8d %8.2f %9d %8d %14.0f\n" mode backend_name n
      (match window with None -> "off" | Some w -> Printf.sprintf "%g" w)
      total wall deliveries batches client_rate;
    J.Obj
      [
        ("mode", J.Str mode);
        ("backend", J.Str backend_name);
        ("n", J.Int n);
        ( "batch_window",
          match window with None -> J.Null | Some w -> J.num w );
        ("client_msgs", J.Int total);
        ("wall_s", J.num wall);
        ("client_deliveries", J.Int deliveries);
        ("gpsnd_batches", J.Int batches);
        ("batch_mean", J.num batch_mean);
        ("batch_max", J.num batch_max);
        ("client_msgs_per_s", J.num client_rate);
        ("msgs_per_s", J.num client_rate);
      ]
  in
  [
    throughput ~backend:`Sim ~n:3 ~count:200 ~window:None;
    throughput ~backend:`Sim ~n:3 ~count:200 ~window:(Some 2.0);
    throughput ~backend:`Bus ~n:3 ~count:200 ~window:None;
    throughput ~backend:`Bus ~n:3 ~count:5000 ~window:(Some 0.02);
  ]

(* X21: competing total-order backends — VStoTO (the paper's
   partitionable stack), the fixed-sequencer baseline, and the Skeen
   timestamp backend, under the shared To_action trace vocabulary.
   Latency rows run on the simulator and report {e simulated-time}
   delivery latency of a lone probe submitted after stabilization:
   Skeen needs 3δ (propose → proposal → commit), the sequencer 2 hops,
   and VStoTO a token rotation. Throughput rows preload an open-loop
   workload on the real bus and report wall-clock client msgs/sec,
   which the drift gate checks against the committed baseline. The
   matrix is the paper's trade-off made concrete: the cheap baselines
   win clean-network latency, the partitionable stack buys fault
   tolerance with a bounded (Theorem 7.1) latency premium. *)

let x21 () =
  row "%12s %10s %8s %4s %12s %12s %14s\n" "to-backend" "mode" "backend" "n"
    "latency" "deliv" "client msg/s";
  let n = 4 in
  let procs = Proc.all ~n in
  let probe = "probe" in
  let submit_at = 50.0 in
  let brcv_times actions =
    List.filter_map
      (fun (t, a) ->
        match a with
        | To_action.Brcv { value; _ } when String.equal value probe -> Some t
        | _ -> None)
      actions
  in
  let latency_row name actions =
    let times = brcv_times actions in
    let lats = List.map (fun t -> t -. submit_at) times in
    let mean =
      match lats with
      | [] -> nan
      | _ -> List.fold_left ( +. ) 0.0 lats /. float_of_int (List.length lats)
    in
    let worst = List.fold_left Float.max 0.0 lats in
    row "%12s %10s %8s %4d %12.2f %12d %14s\n" name "latency" "sim" n worst
      (List.length times) "-";
    J.Obj
      [
        ("to_backend", J.Str name);
        ("mode", J.Str "latency");
        ("backend", J.Str "sim");
        ("n", J.Int n);
        ("deliveries", J.Int (List.length times));
        ("mean_latency", J.num mean);
        ("max_latency", J.num worst);
      ]
  in
  let vstoto_latency () =
    let config =
      To_service.make_config
        { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }
    in
    let run =
      To_service.run_on
        ~backend:(Gcs_sim.Backend.of_config (Gcs_sim.Engine.default_config ~delta:1.0))
        config
        ~workload:[ (submit_at, 0, probe) ]
        ~failures:[] ~until:200.0 ~seed:7
    in
    latency_row "vstoto"
      (List.filter_map
         (fun (t, o) ->
           match o with To_service.Client a -> Some (t, a) | _ -> None)
         (Timed.actions run.To_service.trace))
  in
  let sequencer_latency () =
    let config = Gcs_baseline.Sequencer.make_config ~procs in
    let run =
      Gcs_baseline.Sequencer.run ~delta:1.0 config
        ~workload:[ (submit_at, 0, probe) ]
        ~failures:[] ~until:200.0 ~seed:7
    in
    latency_row "sequencer" (Timed.actions run.Gcs_baseline.Sequencer.trace)
  in
  let skeen_latency () =
    let config = Gcs_skeen.Skeen.make_config ~procs in
    let run =
      Gcs_skeen.Skeen.run ~delta:1.0 config
        ~workload:[ (submit_at, 0, { Gcs_skeen.Skeen.value = probe; dests = [] }) ]
        ~failures:[] ~until:200.0 ~seed:7
    in
    latency_row "skeen" (Timed.actions run.Gcs_skeen.Skeen.trace)
  in
  let throughput_row name ~total ~deliveries ~packets wall =
    let client_rate = float_of_int deliveries /. wall in
    row "%12s %10s %8s %4d %12s %12d %14.0f\n" name "throughput" "bus" n "-"
      deliveries client_rate;
    J.Obj
      [
        ("to_backend", J.Str name);
        ("mode", J.Str "throughput");
        ("backend", J.Str "bus");
        ("n", J.Int n);
        ("client_msgs", J.Int total);
        ("wall_s", J.num wall);
        ("client_deliveries", J.Int deliveries);
        ("packets_sent", J.Int packets);
        ("client_msgs_per_s", J.num client_rate);
        ("msgs_per_s", J.num client_rate);
      ]
  in
  let count = 120 in
  let total = n * count in
  let values p = List.init count (fun k -> Printf.sprintf "y%d.%d" p k) in
  let vstoto_throughput () =
    let config =
      To_service.make_config ~batch_window:0.02
        { Vs_node.procs; p0 = procs; pi = 0.15; mu = 1.0e6; delta = 5.0 }
    in
    let wl =
      List.concat_map (fun p -> List.map (fun v -> (0.0, p, v)) (values p)) procs
    in
    let progress = Array.init n (fun _ -> Atomic.make 0) in
    let observe p _pre post =
      let st = To_service.node_app post in
      let r = st.Vstoto.nextreport - 1 in
      Gcs_stdx.Atomicx.store_max progress.(p) r
    in
    let stop ~now:_ ~outputs:_ =
      Array.for_all (fun a -> Atomic.get a >= total) progress
    in
    let t0 = wall_now () in
    let run =
      To_service.run_on ~observe ~stop
        ~backend:(Gcs_transport.Bus.backend ())
        config ~workload:wl ~failures:[] ~until:60.0 ~seed:11
    in
    let wall = wall_now () -. t0 in
    throughput_row "vstoto" ~total
      ~deliveries:(To_service.deliveries run)
      ~packets:run.To_service.packets_sent wall
  in
  let sequencer_throughput () =
    let config = Gcs_baseline.Sequencer.make_config ~procs in
    let wl =
      List.concat_map (fun p -> List.map (fun v -> (0.0, p, v)) (values p)) procs
    in
    let stop ~now:_ ~outputs = outputs >= total + (n * total) in
    let t0 = wall_now () in
    let run =
      Gcs_baseline.Sequencer.run_on ~stop
        ~backend:(Gcs_transport.Bus.backend ())
        config ~workload:wl ~failures:[] ~until:60.0 ~seed:11
    in
    let wall = wall_now () -. t0 in
    throughput_row "sequencer" ~total
      ~deliveries:(Gcs_baseline.Sequencer.deliveries run)
      ~packets:run.Gcs_baseline.Sequencer.packets_sent wall
  in
  let skeen_throughput () =
    let config = Gcs_skeen.Skeen.make_config ~procs in
    let wl =
      List.concat_map
        (fun p ->
          List.map
            (fun v -> (0.0, p, { Gcs_skeen.Skeen.value = v; dests = [] }))
            (values p))
        procs
    in
    let stop ~now:_ ~outputs = outputs >= total + (n * total) in
    let t0 = wall_now () in
    let run =
      Gcs_skeen.Skeen.run_on ~stop
        ~backend:(Gcs_transport.Bus.backend ())
        config ~workload:wl ~failures:[] ~until:60.0 ~seed:11
    in
    let wall = wall_now () -. t0 in
    throughput_row "skeen" ~total
      ~deliveries:(Gcs_skeen.Skeen.deliveries run)
      ~packets:run.Gcs_skeen.Skeen.packets_sent wall
  in
  [
    vstoto_latency ();
    sequencer_latency ();
    skeen_latency ();
    vstoto_throughput ();
    sequencer_throughput ();
    skeen_throughput ();
  ]

(* ------------------------------------------------------------------ *)
(* X22: differential fuzzing throughput — executions per second for each
   backend pair (each execution runs the schedule twice and judges
   per-node delivered orders), plus the fuzzy state-hash throughput.
   These rates set the CI budgets for the 2000-exec differential
   smokes. *)

let x22 () =
  row "%18s %8s %10s %12s %10s\n" "pair" "execs" "wall s" "execs/sec"
    "features";
  let n = 4 in
  let procs = Proc.all ~n in
  let config =
    To_service.make_config
      { Vs_node.procs; p0 = procs; pi = 8.0; mu = 10.0; delta = 1.0 }
  in
  let budget = function
    | Gcs_fuzz.Differential.Sim_bus -> 12
    | Gcs_fuzz.Differential.Skeen_bus -> 30
    | Gcs_fuzz.Differential.Vstoto_skeen
    | Gcs_fuzz.Differential.Vstoto_sequencer -> 400
  in
  let pair_rows =
    List.map
      (fun pair ->
        let execs = budget pair in
        let t0 = wall_now () in
        let outcome =
          Gcs_fuzz.Fuzz.run ~pair ~jobs:!jobs ~config ~seed:3 ~execs ()
        in
        let wall = wall_now () -. t0 in
        let name = Gcs_fuzz.Differential.name pair in
        let rate = float_of_int execs /. wall in
        row "%18s %8d %10.2f %12.1f %10d\n" name execs wall rate
          outcome.Gcs_fuzz.Fuzz.stats.Gcs_fuzz.Fuzz.features;
        J.Obj
          [
            ("pair", J.Str name);
            ("execs", J.Int execs);
            ("wall_s", J.num wall);
            ("execs_per_s", J.num rate);
            ("features", J.Int outcome.Gcs_fuzz.Fuzz.stats.Gcs_fuzz.Fuzz.features);
          ])
      Gcs_fuzz.Differential.all
  in
  (* Fuzzy-hash throughput: snapshots per second through the rolling-hash
     chunker, on synthetic node-state strings of realistic size. *)
  let snaps =
    List.init 200 (fun i ->
        String.concat ","
          (List.init 60 (fun k -> Printf.sprintf "field%d=%d" k (i * (k + 3)))))
  in
  let bytes =
    List.fold_left (fun acc s -> acc + String.length s) 0 snaps
  in
  let reps = 50 in
  let t0 = wall_now () in
  for _ = 1 to reps do
    ignore (Gcs_fuzz.Coverage.fuzzy_features ~tag:"bench" snaps)
  done;
  let wall = wall_now () -. t0 in
  let snaps_per_s = float_of_int (List.length snaps * reps) /. wall in
  let mb_per_s = float_of_int (bytes * reps) /. wall /. 1.0e6 in
  row "%18s %8d %10.2f %12.0f %10.1f\n" "fuzzy-hash" (List.length snaps * reps)
    wall snaps_per_s mb_per_s;
  pair_rows
  @ [
      J.Obj
        [
          ("pair", J.Str "fuzzy-hash");
          ("snapshots", J.Int (List.length snaps * reps));
          ("wall_s", J.num wall);
          ("snapshots_per_s", J.num snaps_per_s);
          ("mb_per_s", J.num mb_per_s);
        ];
    ]

(* ------------------------------------------------------------------ *)
(* M: bechamel micro-benchmarks (M1–M7: core machinery; M8: incremental
   checker throughput at growing trace lengths; M9: pool dispatch
   overhead; M10: hot-path accumulation; M11: lock instrumentation
   overhead). *)

let to_trace_of_len ~n k =
  let per = n + 1 in
  List.concat
    (List.init (k / per) (fun i ->
         let v = Printf.sprintf "t%d" i in
         To_action.Bcast (0, v)
         :: List.map
              (fun q -> To_action.Brcv { src = 0; dst = q; value = v })
              (Proc.all ~n)))

let vs_trace_of_len ~n k =
  let per = n + 1 in
  List.concat
    (List.init (k / per) (fun i ->
         let m = Printf.sprintf "w%d" i in
         (Vs_action.Gpsnd { sender = 0; msg = m } : string Vs_action.t)
         :: List.map
              (fun q -> Vs_action.Gprcv { src = 0; dst = q; msg = m })
              (Proc.all ~n)))

let micro () =
  let open Bechamel in
  let to_params = { To_machine.procs = Proc.all ~n:4; equal_value = Value.equal } in
  let to_automaton = To_machine.automaton to_params in
  let to_state =
    let s = To_machine.initial to_params in
    Option.get
      (to_automaton.Gcs_automata.Automaton.transition s (To_action.Bcast (0, "x")))
  in
  let vs_params =
    { Vs_machine.procs = Proc.all ~n:4; p0 = Proc.all ~n:4;
      equal_msg = String.equal; weak = false }
  in
  let vs_automaton = Vs_machine.automaton vs_params in
  let vs_state =
    Option.get
      (vs_automaton.Gcs_automata.Automaton.transition (Vs_machine.initial vs_params)
         (Vs_action.Gpsnd { sender = 0; msg = "m" }))
  in
  let sys_params =
    Vstoto_system.make_params ~procs:(Proc.all ~n:4) ~p0:(Proc.all ~n:4)
      ~quorums:(Quorum.majorities ~n:4) ()
  in
  let sys_automaton = Vstoto_system.automaton sys_params in
  let sys_state =
    Option.get
      (sys_automaton.Gcs_automata.Automaton.transition
         sys_automaton.Gcs_automata.Automaton.initial
         (Sys_action.Bcast (0, "x")))
  in
  let to_trace = to_trace_of_len ~n:4 500 in
  let vs_trace_events = vs_trace_of_len ~n:4 300 in
  let eq_workload =
    List.init 256 (fun i -> (float_of_int (i * 7 mod 97), i))
  in
  let sim_config = mk_vs_config 4 in
  let sim_to_config = To_service.make_config sim_config in
  let sim_wl = workload ~senders:(Proc.all ~n:4) ~from_time:2.0 ~spacing:5.0 ~count:4 ~tag:"b" in
  let m8 =
    List.concat_map
      (fun k ->
        let to_tr = to_trace_of_len ~n:4 k in
        let vs_tr = vs_trace_of_len ~n:4 k in
        [
          Test.make ~name:(Printf.sprintf "M8: TO checker (%dk events)" (k / 1000))
            (Staged.stage (fun () -> To_trace_checker.check to_params to_tr));
          Test.make ~name:(Printf.sprintf "M8: VS checker (%dk events)" (k / 1000))
            (Staged.stage (fun () -> Vs_trace_checker.check vs_params vs_tr));
        ])
      [ 1_000; 10_000; 100_000 ]
  in
  let pool_items = List.init 64 (fun i -> i) in
  let m9 =
    [
      Test.make ~name:"M9: List.map (64 trivial items)"
        (Staged.stage (fun () -> List.map (fun x -> x * 2) pool_items));
      Test.make ~name:"M9: Pool.map jobs=4 (64 trivial items)"
        (Staged.stage (fun () ->
             Gcs_stdx.Pool.map ~jobs:4 (fun x -> x * 2) pool_items));
    ]
  in
  (* M10: the hot-path accumulation the PR replaced. `xs @ [x]` copies
     the whole accumulator per element (quadratic over a burst), which
     is what the outbuf / delay / order fields used to do; Tape.snoc
     appends in place behind a persistent slice (amortized O(1)). *)
  let append_items = List.init 1_000 (fun i -> i) in
  let m10 =
    [
      Test.make ~name:"M10: accumulate 1k via xs @ [x] (quadratic)"
        (Staged.stage (fun () ->
             List.fold_left (fun acc x -> acc @ [ x ]) [] append_items));
      Test.make ~name:"M10: accumulate 1k via Tape.snoc (amortized O(1))"
        (Staged.stage (fun () ->
             List.fold_left Gcs_stdx.Tape.snoc (Gcs_stdx.Tape.empty ())
               append_items));
    ]
  in
  (* M11: what lock instrumentation costs on the bus's hottest path (a
     status-matrix read per packet send). Raw Mutex is the floor; an
     unregistered Lock adds one wrapper call; a registered Lock adds the
     held-set bookkeeping and a registry-table update per acquisition. *)
  let m11 =
    let raw = Mutex.create () in
    let plain = Gcs_stdx.Lock.create "bench.plain" in
    let reg = Gcs_stdx.Lock.registry () in
    let instr = Gcs_stdx.Lock.create ~registry:reg "bench.instr" in
    let counter = ref 0 in
    [
      Test.make ~name:"M11: raw Mutex lock/unlock"
        (Staged.stage (fun () ->
             Mutex.lock raw;
             incr counter;
             Mutex.unlock raw));
      Test.make ~name:"M11: Lock.with_lock (uninstrumented)"
        (Staged.stage (fun () ->
             Gcs_stdx.Lock.with_lock plain (fun () -> incr counter)));
      Test.make ~name:"M11: Lock.with_lock (registry attached)"
        (Staged.stage (fun () ->
             Gcs_stdx.Lock.with_lock instr (fun () -> incr counter)));
    ]
  in
  let tests =
    [
      Test.make ~name:"TO-machine step"
        (Staged.stage (fun () ->
             to_automaton.Gcs_automata.Automaton.transition to_state
               (To_action.To_order ("x", 0))));
      Test.make ~name:"VS-machine step"
        (Staged.stage (fun () ->
             vs_automaton.Gcs_automata.Automaton.transition vs_state
               (Vs_action.Vs_order { msg = "m"; sender = 0; viewid = View_id.g0 })));
      Test.make ~name:"VStoTO-system step"
        (Staged.stage (fun () ->
             sys_automaton.Gcs_automata.Automaton.transition sys_state
               (Sys_action.Label_act (0, "x"))));
      Test.make ~name:"TO trace checker (500 events)"
        (Staged.stage (fun () -> To_trace_checker.check to_params to_trace));
      Test.make ~name:"VS trace checker (300 events)"
        (Staged.stage (fun () -> Vs_trace_checker.check vs_params vs_trace_events));
      Test.make ~name:"event queue add+pop (256)"
        (Staged.stage (fun () ->
             let q =
               List.fold_left
                 (fun q (t, v) -> Gcs_sim.Event_queue.add q ~time:t v)
                 Gcs_sim.Event_queue.empty eq_workload
             in
             let rec drain q =
               match Gcs_sim.Event_queue.pop q with
               | Some (_, _, q) -> drain q
               | None -> ()
             in
             drain q));
      Test.make ~name:"simulated TO service (50 time units)"
        (Staged.stage (fun () ->
             To_service.run sim_to_config ~workload:sim_wl ~failures:[]
               ~until:50.0 ~seed:1));
    ]
    @ m8 @ m9 @ m10 @ m11
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.4) () in
  List.concat_map
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      (* Collect then sort by name: the fold visits results in hash
         order, and both the printed table and the JSON rows should be
         stable across runs. *)
      let entries =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Hashtbl.fold
             (fun name result acc -> (name, result) :: acc)
             analyzed [])
      in
      List.map
        (fun (name, result) ->
          let est =
            match Analyze.OLS.estimates result with
            | Some [ est ] -> Some est
            | _ -> None
          in
          (match est with
          | Some est -> row "%-42s %14.1f ns/run\n" name est
          | None -> row "%-42s %14s\n" name "(no estimate)");
          J.Obj
            [
              ("name", J.Str name);
              ( "ns_per_run",
                match est with Some e -> J.num e | None -> J.Null );
            ])
        entries)
    tests

let () =
  let args = Array.to_list Sys.argv in
  let quick = List.mem "--quick" args in
  let rec opt_of flag = function
    | [] | [ _ ] -> None
    | a :: b :: rest -> if a = flag then Some b else opt_of flag (b :: rest)
  in
  let json_file = opt_of "--json" args in
  let drift_baseline = opt_of "--check-drift" args in
  only :=
    Option.map
      (fun s ->
        List.filter (fun id -> id <> "") (String.split_on_char ',' s))
      (opt_of "--only" args);
  jobs :=
    (match opt_of "--jobs" args with
    | Some s -> (
        match int_of_string_opt s with
        | Some k when k >= 1 -> k
        | _ ->
            Printf.eprintf "error: --jobs expects a positive integer\n";
            exit 2)
    | None -> Gcs_stdx.Pool.default_jobs ());
  Printf.printf
    "Reproduction harness: Fekete, Lynch, Shvartsman -- Specifying and Using \
     a Partitionable Group Communication Service\n";
  if !jobs > 1 then Printf.printf "(sweeps run on %d domains)\n" !jobs;
  section "X6" "view stabilization after partition (measured vs b)" x6;
  section "X7" "safe-delivery latency (measured vs d = 2pi + n*delta)" x7;
  section "X8" "end-to-end TO latency after stabilization (Theorem 7.1)" x8;
  section "X9" "post-merge catch-up time vs backlog size" x9;
  section "X10" "comparison with baselines" x10;
  section "X11" "view churn before vs after stabilization" x11;
  section "X12" "token size and message cost (ablation: pruning works)" x12;
  section "X13" "jitter ablation (safe latency, fixed vs jittered links)" x13;
  section "X14" "membership protocol ablation (stabilization after heal)" x14;
  section "X16" "offered load sweep (n=5)" x16;
  section "X17" "throughput under nemesis schedules (n=5)" x17;
  section "X18" "observability: metrics registry of a nemesis run" x18;
  section "X19" "bus transport throughput (wall-clock msgs/sec)" x19;
  section "X20" "batched throughput (open-loop load, both backends)" x20;
  section "X21" "total-order backends: VStoTO vs sequencer vs Skeen" x21;
  section "X22" "differential fuzzing throughput (execs/sec per pair)" x22;
  if not quick then
    section "M" "micro-benchmarks (bechamel; time per run)" micro;
  (match json_file with
  | None -> ()
  | Some file ->
      let sections = List.rev !recorded in
      let json =
        J.Obj
          [
            ( "harness",
              J.Str "gcs bench/main.exe (Fekete-Lynch-Shvartsman reproduction)"
            );
            ("jobs", J.Int !jobs);
            ("quick", J.Bool quick);
            ( "total_wall_s",
              J.num (List.fold_left (fun a s -> a +. s.wall_s) 0.0 sections) );
            ( "sections",
              J.Arr
                (List.map
                   (fun s ->
                     J.Obj
                       [
                         ("id", J.Str s.id);
                         ("title", J.Str s.title);
                         ("wall_clock_s", J.num s.wall_s);
                         ("rows", J.Arr s.rows);
                       ])
                   sections) );
          ]
      in
      let oc = open_out file in
      output_string oc (J.to_string json);
      output_string oc "\n";
      close_out oc;
      Printf.printf "\nwrote %s\n" file);
  (* --check-drift BASELINE.json: compare each section wall clock with the
     committed baseline; fail on a >3x regression. Very short sections are
     floored at 50ms before comparing — their timings are dominated by
     noise. Sections absent from the baseline (new since it was recorded)
     are reported and skipped. *)
  (match drift_baseline with
  | None -> ()
  | Some file ->
      let contents =
        let ic = open_in file in
        let len = in_channel_length ic in
        let s = really_input_string ic len in
        close_in ic;
        s
      in
      let open Gcs_stdx.Jsonx in
      let baseline_sections =
        match of_string contents with
        | Error e ->
            Printf.eprintf "error: cannot parse %s: %s\n" file e;
            exit 2
        | Ok json ->
            Option.bind (member "sections" json) to_list
            |> Option.value ~default:[]
      in
      let baseline_walls =
        List.filter_map
          (fun s ->
            match
              ( Option.bind (member "id" s) to_string,
                Option.bind (member "wall_clock_s" s) to_float )
            with
            | Some id, Some w -> Some (id, w)
            | _ -> None)
          baseline_sections
      in
      (* Throughput rows are additionally gated on *rate*: any row
         carrying [client_msgs_per_s] (X19's stack row, all of X20) must
         stay within 3x of its baseline rate. Keyed by section id, row
         mode, backend and (for X21's matrix) the total-order backend.
         A wall-clock gate alone would not catch a
         batching regression — a run that delivers a tenth of the
         messages in the same wall time passes the wall gate. *)
      let baseline_rates =
        List.concat_map
          (fun s ->
            match Option.bind (member "id" s) to_string with
            | None -> []
            | Some sid ->
                Option.bind (member "rows" s) to_list
                |> Option.value ~default:[]
                |> List.filter_map (fun r ->
                       match
                         Option.bind (member "client_msgs_per_s" r) to_float
                       with
                       | None -> None
                       | Some rate ->
                           let part k =
                             Option.value ~default:"-"
                               (Option.bind (member k r) to_string)
                           in
                           Some
                             ( sid ^ "/" ^ part "mode" ^ "/" ^ part "backend"
                               ^ "/" ^ part "to_backend",
                               rate )))
          baseline_sections
      in
      let current_rates =
        List.concat_map
          (fun s ->
            List.filter_map
              (fun r ->
                match r with
                | J.Obj fields ->
                    let rate =
                      match List.assoc_opt "client_msgs_per_s" fields with
                      | Some (J.Float f) -> Some f
                      | Some (J.Int i) -> Some (float_of_int i)
                      | _ -> None
                    in
                    Option.map
                      (fun rate ->
                        let part k =
                          match List.assoc_opt k fields with
                          | Some (J.Str v) -> v
                          | _ -> "-"
                        in
                        ( s.id ^ "/" ^ part "mode" ^ "/" ^ part "backend"
                          ^ "/" ^ part "to_backend",
                          rate ))
                      rate
                | _ -> None)
              s.rows)
          (List.rev !recorded)
      in
      let floor_s = 0.05 in
      let regressions = ref 0 in
      Printf.printf "\ndrift check against %s (3x tolerance, %.0fms floor):\n"
        file (floor_s *. 1000.0);
      List.iter
        (fun s ->
          match List.assoc_opt s.id baseline_walls with
          | None ->
              Printf.printf "  %-4s no baseline (new section), skipped\n" s.id
          | Some base ->
              let allowed = 3.0 *. Float.max base floor_s in
              if s.wall_s > allowed then begin
                incr regressions;
                Printf.printf
                  "  %-4s REGRESSED: %.3fs vs baseline %.3fs (allowed %.3fs)\n"
                  s.id s.wall_s base allowed
              end
              else
                Printf.printf "  %-4s ok: %.3fs vs baseline %.3fs\n" s.id
                  s.wall_s base)
        (List.rev !recorded);
      List.iter
        (fun (key, rate) ->
          match List.assoc_opt key baseline_rates with
          | None ->
              Printf.printf "  %-24s no baseline rate (new row), skipped\n" key
          | Some base ->
              if rate < base /. 3.0 then begin
                incr regressions;
                Printf.printf
                  "  %-24s REGRESSED: %.0f msgs/s vs baseline %.0f (floor \
                   %.0f)\n"
                  key rate base (base /. 3.0)
              end
              else
                Printf.printf "  %-24s ok: %.0f msgs/s vs baseline %.0f\n" key
                  rate base)
        current_rates;
      if !regressions > 0 then begin
        Printf.printf "%d section(s) regressed >3x.\n" !regressions;
        exit 1
      end);
  Printf.printf "\ndone.\n"
