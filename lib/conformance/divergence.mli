open Gcs_core

(** Per-node delivered-order comparison — the shared judge behind
    [gcs diff], the differential fuzzing mode and the tests.

    Two executions of the same workload on two backends (or two
    protocols) agree when every node delivered the same messages; for
    same-protocol pairs they must agree on the {e sequence}, for
    cross-protocol pairs (whose tie-breaking legitimately differs) on
    the {e multiset}. Any disagreement is crash-grade: the protocols
    promise total order within each configuration, so two correct
    executions of one schedule cannot tell different stories. *)

type orders = (Proc.t * string list) list
(** Per-node delivered sequences, in delivery order; each element is
    ["src:value"]. *)

val orders :
  procs:Proc.t list -> Value.t To_action.t Timed.t -> orders
(** Fold a client trace's [Brcv] actions into per-node sequences. Every
    processor in [procs] appears, delivering nothing being an
    observation too. *)

type verdict =
  | Agree
  | Diverged of {
      node : Proc.t;  (** first divergent node, in [procs] order *)
      index : int;  (** first divergent delivery position *)
      left : string list;  (** that node's full left sequence *)
      right : string list;  (** … and right sequence (projected) *)
    }

val compare_orders : left:orders -> right:orders -> verdict
(** Exact sequence equality per node — same-protocol pairs (sim vs bus),
    where the anchored workload makes delivered orders identical. *)

val compare_contents : left:orders -> right:orders -> verdict
(** Sorted-multiset equality per node — cross-protocol pairs (VStoTO vs
    Skeen vs sequencer), where each protocol picks its own total order
    but must deliver the same messages to the same members. *)

val incomplete :
  expected:(Proc.t -> int) -> orders -> (Proc.t * int) list
(** Nodes that delivered fewer than [expected] messages, with their
    counts. *)

val describe :
  left_label:string -> right_label:string -> verdict -> string
(** One-line human rendering with an excerpt around the mismatch. *)

val to_json :
  left_label:string -> right_label:string -> verdict -> string
(** [null] for {!Agree}, else an object with node, index and both full
    sequences under the given labels. *)

val json_string : string -> string
(** JSON string literal escaping (shared by the report dumpers). *)
