open Gcs_impl

(** The cross-transport conformance suite.

    One set of fault cases, one set of oracles, N backends. A {!profile}
    pairs a {!Gcs_transport.Iface.backend} with timing suited to its
    notion of time (simulated seconds are free, wall-clock seconds are
    not), and {!check} runs a case and applies the full oracle set the
    repository has:

    - client trace against TO-machine (Theorem 7.1 safety);
    - VS-layer trace against VS-machine;
    - the Theorem 7.2 delivery bound [b' + d'] past stabilization
      (every case ends with the world fully good, so the premise holds);
    - the VStoTO node-state invariants on every final state (the
      fuzzer's exact oracle set, {!Oracle.vstoto_invariants}).

    The point of running this per backend: the oracles quantify over
    {e every} interleaving, so they transfer unchanged from the
    deterministic simulator to the nondeterministic bus — a property
    that holds on the sim but fails on the bus is a transport bug (or a
    hidden timing assumption in the automata), and this suite is where
    it surfaces. *)

type profile = {
  label : string;  (** backend name for reports, ["sim"] / ["bus"] *)
  backend : Gcs_transport.Iface.backend;
  config : To_service.config;
  beat : float;
      (** scenario time unit: fault steps land on multiples of this *)
  workload_spacing : float;  (** gap between client submissions *)
  workload_count : int;  (** submissions per processor *)
  slack : float;  (** horizon past stabilization + b' + d' *)
  use_stop : bool;
      (** end bus runs as soon as the schedule has played and every node
          reports the full workload delivered (the horizon stays the
          failure fallback) *)
}

val sim_profile : ?batch_window:float -> ?n:int -> unit -> profile
(** δ = 1, the repository's standard simulated timing. [batch_window]
    enables submission batching in the service under test (and with it a
    further oracle: every batch seen at the VS layer must be
    view-homogeneous). *)

val bus_profile : ?batch_window:float -> ?n:int -> unit -> profile
(** Wall-clock timing: δ = 0.1 s, fault beats of 0.5 s, early stop on.
    A full fault case converges in a few wall seconds. *)

type case = { name : string; scenario : Gcs_nemesis.Scenario.t }

val cases : profile -> case list
(** Fault schedule per case, scaled by the profile's beat: no faults,
    partition + heal, crash + recover, ugly link, slow processor —
    each ending fully good. *)

type outcome = {
  case : string;
  seed : int;
  failure : (string * string) option;  (** (oracle, detail); [None] = pass *)
  bcasts : int;
  deliveries : int;
  events_processed : int;
}

val check : profile -> seed:int -> case -> outcome
(** Run one case on the profile's backend and judge it. *)

val run_all : profile -> seed:int -> outcome list

val passed : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit
