open Gcs_core
open Gcs_skeen
open Gcs_nemesis

type profile = {
  label : string;
  backend : Gcs_transport.Iface.backend;
  config : Skeen.config;
  beat : float;
  workload_spacing : float;
  workload_count : int;
  slack : float;
  use_stop : bool;
}

let sim_profile ?(n = 4) () =
  {
    label = "sim";
    backend =
      Gcs_sim.Backend.of_config
        { (Gcs_sim.Engine.default_config ~delta:1.0) with Gcs_sim.Engine.fifo = true };
    config = Skeen.make_config ~procs:(Proc.all ~n);
    beat = 10.0;
    workload_spacing = 3.0;
    workload_count = 4;
    slack = 60.0;
    use_stop = false;
  }

let bus_profile ?(n = 4) () =
  {
    label = "bus";
    backend = Gcs_transport.Bus.backend ();
    config = Skeen.make_config ~procs:(Proc.all ~n);
    beat = 0.5;
    workload_spacing = 0.25;
    workload_count = 4;
    slack = 2.0;
    use_stop = true;
  }

type case = { name : string; scenario : Scenario.t }

(* The same five fault shapes as the VStoTO suite, scaled by the
   profile's beat. Skeen has no recovery protocol, so the cases probe
   {e safety} under faults; completeness is asserted on [clean] only. *)
let cases profile =
  let procs = profile.config.Skeen.procs in
  let n = List.length procs in
  let b = profile.beat in
  let hi = List.nth procs (n - 1) in
  let lo =
    match procs with
    | p :: _ -> p
    | [] -> invalid_arg "Skeen_suite.cases: empty processor set"
  in
  let split =
    let rec take k = function
      | x :: rest when k > 0 -> x :: take (k - 1) rest
      | _ -> []
    in
    let maj = take ((n / 2) + 1) procs in
    let min_part = List.filter (fun p -> not (List.mem p maj)) procs in
    [ maj; min_part ]
  in
  let v name steps = { name; scenario = Scenario.v name steps } in
  [
    v "clean" [];
    v "partition-heal"
      [ Scenario.at (2.0 *. b) (Scenario.Partition split);
        Scenario.at (6.0 *. b) Scenario.Heal ];
    v "crash-recover"
      [ Scenario.at (2.0 *. b) (Scenario.Crash hi);
        Scenario.at (6.0 *. b) (Scenario.Recover hi);
        Scenario.at (6.5 *. b) Scenario.Heal ];
    v "ugly-link"
      [ Scenario.at (2.0 *. b) (Scenario.Degrade (lo, hi, Fstatus.Ugly));
        Scenario.at (6.0 *. b) (Scenario.Degrade (lo, hi, Fstatus.Good));
        Scenario.at (6.5 *. b) Scenario.Heal ];
    v "slow-processor"
      [ Scenario.at (2.0 *. b) (Scenario.Slow hi);
        Scenario.at (6.0 *. b) (Scenario.Wake hi);
        Scenario.at (6.5 *. b) Scenario.Heal ];
  ]

(* Mixed addressing: full-group and overlapping-subset submissions,
   deterministic per (origin, index) so every run of a case sees the
   same destination structure. Values are distinct per origin (the
   oracle's precondition). *)
let workload profile =
  let procs = profile.config.Skeen.procs in
  let n = List.length procs in
  let subset p k =
    match (p + k) mod 3 with
    | 0 -> [] (* full group *)
    | 1 -> [ List.nth procs (p mod n); List.nth procs ((p + 1) mod n) ]
    | _ ->
        [
          List.nth procs (k mod n);
          List.nth procs ((k + 1) mod n);
          List.nth procs ((k + 2) mod n);
        ]
  in
  List.concat_map
    (fun p ->
      List.init profile.workload_count (fun k ->
          ( profile.workload_spacing
            *. float_of_int (1 + k + (p * profile.workload_count)),
            p,
            { Skeen.value = Printf.sprintf "c%d.%d" p k; dests = subset p k } )))
    procs

type outcome = {
  case : string;
  seed : int;
  failure : (string * string) option;
  bcasts : int;
  deliveries : int;
  events_processed : int;
}

let check profile ~seed case =
  let config = profile.config in
  let l = Scenario.stabilization_time case.scenario in
  let workload = workload profile in
  let workload_end =
    List.fold_left (fun acc (t, _, _) -> Float.max acc t) 0.0 workload
  in
  let until = Float.max l workload_end +. profile.slack in
  let failures =
    Scenario.compile ~procs:config.Skeen.procs case.scenario
  in
  let clean = case.scenario.Scenario.steps = [] in
  let expected_outputs =
    List.length workload + Skeen.expected_deliveries config workload
  in
  (* Early stop for wall-clock backends, only where completeness is
     guaranteed (the clean case): every submission and every delivery
     has shown up in the trace. Faulty cases run out their horizon. *)
  let stop =
    if profile.use_stop && clean then
      Some (fun ~now:_ ~outputs -> outputs >= expected_outputs)
    else None
  in
  let run =
    Skeen.run_on ?stop ~backend:profile.backend config ~workload ~failures
      ~until ~seed
  in
  let failure =
    match Skeen.check_group_order config ~workload run.Skeen.trace with
    | Error detail -> Some ("skeen-group-order", detail)
    | Ok () -> (
        match Skeen.node_invariant_failure run.Skeen.final_nodes with
        | Some f -> Some f
        | None ->
            if clean then
              match Skeen.check_complete config ~workload run.Skeen.trace with
              | Error detail -> Some ("skeen-completeness", detail)
              | Ok () -> None
            else None)
  in
  let bcasts =
    List.length
      (List.filter
         (fun (_, a) -> match a with To_action.Bcast _ -> true | _ -> false)
         (Timed.actions run.Skeen.trace))
  in
  {
    case = case.name;
    seed;
    failure;
    bcasts;
    deliveries = Skeen.deliveries run;
    events_processed = run.Skeen.events_processed;
  }

let run_all profile ~seed =
  List.map (fun case -> check profile ~seed case) (cases profile)

let passed outcome = Option.is_none outcome.failure

let pp_outcome ppf o =
  match o.failure with
  | None ->
      Format.fprintf ppf "%-16s seed %d: OK (%d bcasts, %d deliveries)" o.case
        o.seed o.bcasts o.deliveries
  | Some (check, detail) ->
      Format.fprintf ppf "%-16s seed %d: FAILED %s: %s" o.case o.seed check
        detail
