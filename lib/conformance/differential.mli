open Gcs_core
open Gcs_impl

(** Differential testing across transports: the simulator as oracle for
    the bus (and vice versa).

    A no-fault workload is fixed so that the TO service's delivered order
    is {e transport-independent}: every client submission is timestamped
    at (or before) zero, so each node's whole batch is handled before the
    first ordering token reaches it — preloaded in the bus's mailboxes,
    ahead of any packet in the simulator's event queue (FIFO at equal
    times). From there the token fixes the total order by ring traversal
    alone, regardless of timing: batches appear in ring order starting at
    the leader's successor, FIFO within each batch. δ is large and μ huge
    so no timeout or probe can fire a spurious view change within the
    run, on either clock.

    Under that anchoring, {e any} difference between the per-node
    delivered sequences of a simulator run and a bus run of the same
    seeded workload is a bug — in the bus, the engine, or a hidden
    timing assumption in the automata. The comparison needs no model of
    what the right order is; the two backends are each other's oracle. *)

type report = {
  seed : int;
  messages : int;  (** workload size (distinct values) *)
  sim_deliveries : int;  (** total brcv events across nodes *)
  bus_deliveries : int;
  incomplete : (string * Proc.t) list;
      (** (backend, node) pairs that missed part of the workload *)
  divergence : (Proc.t * string list * string list) option;
      (** first node whose delivered sequences differ, with both
          sequences rendered ["src:value"] *)
}

val config : ?n:int -> ?batch_window:float -> unit -> To_service.config
(** The timing profile of the argument above: δ = 5 s, π = 0.15 s,
    μ = 10⁶ s (δ large enough that the bus cannot time out between
    wall-clock events; π small so the bus re-circulates the token
    promptly; the simulator is timing-insensitive either way). *)

val workload :
  ?origins:Proc.t list ->
  To_service.config ->
  seed:int ->
  count:int ->
  (float * Proc.t * Value.t) list
(** [count] distinct values at time 0, origins drawn from the seed
    ([origins] restricts the candidate set; default: all processors). *)

val run_pair :
  ?n:int -> ?count:int -> ?batch_window:float -> seed:int -> unit -> report
(** One simulator run and one bus run of the same workload, compared.
    [batch_window] turns submission batching on for both runs; the
    anchored workload keeps the delivered order transport-independent:
    every value stages at t=0, so each origin's whole workload leaves as
    one batch in submission order, and the TO service defers the
    leader's first token launch past the initial flush window
    ([Vs_node]'s [first_launch_delay]), so every batch — the leader's
    included — is sitting in its origin's outbuf before the token first
    passes. All processors, leader included, serve as origins. *)

val passed : report -> bool
(** Complete on both backends and no divergence. *)

val pp_report : Format.formatter -> report -> unit

val dump : report -> string
(** Render a failing report as a diagnostic artifact (one JSON object
    with both per-node orders) for CI upload. *)
