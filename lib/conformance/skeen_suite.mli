open Gcs_core
open Gcs_skeen

(** The conformance suite for the Skeen total-order backend.

    The same five fault shapes as {!Suite} (clean, partition + heal,
    crash + recover, ugly link, slow processor), the same two backends —
    but the oracle set is Skeen's own:

    - the multi-group order oracle ({!Skeen.check_group_order}):
      deliveries only at declared destinations, at most once, causally
      after submission, per-origin FIFO within equal destination sets,
      and pairwise agreement on the order of shared messages;
    - the per-node structural invariants
      ({!Skeen.node_invariant_failure});
    - completeness ({!Skeen.check_complete}) on the {e clean} case only:
      Skeen has no retransmission, so a partition may permanently lose a
      proposal — safety survives every fault, liveness only fault-free
      runs.

    The workload mixes full-group and overlapping-subset addressing, so
    the partial-multicast paths are exercised on both backends. *)

type profile = {
  label : string;  (** backend name for reports, ["sim"] / ["bus"] *)
  backend : Gcs_transport.Iface.backend;
  config : Skeen.config;
  beat : float;
      (** scenario time unit: fault steps land on multiples of this *)
  workload_spacing : float;  (** gap between client submissions *)
  workload_count : int;  (** submissions per processor *)
  slack : float;  (** horizon past the last fault step *)
  use_stop : bool;
      (** end clean bus runs once every submission and delivery is in
          the trace (the horizon stays the failure fallback) *)
}

val sim_profile : ?n:int -> unit -> profile
(** δ = 1 with FIFO links — Skeen's per-origin FIFO guarantee rests on
    them (the bus is FIFO by construction). *)

val bus_profile : ?n:int -> unit -> profile
(** Wall-clock timing with fault beats of 0.5 s. *)

type case = { name : string; scenario : Gcs_nemesis.Scenario.t }

val cases : profile -> case list

val workload : profile -> (float * Proc.t * Skeen.input) list
(** The mixed-addressing workload a case runs, deterministic per
    profile shape. *)

type outcome = {
  case : string;
  seed : int;
  failure : (string * string) option;  (** (oracle, detail); [None] = pass *)
  bcasts : int;
  deliveries : int;
  events_processed : int;
}

val check : profile -> seed:int -> case -> outcome
val run_all : profile -> seed:int -> outcome list
val passed : outcome -> bool
val pp_outcome : Format.formatter -> outcome -> unit
