open Gcs_core

type orders = (Proc.t * string list) list

let orders ~procs trace =
  let rev =
    List.fold_left
      (fun acc (_, action) ->
        match action with
        | To_action.Brcv { src; dst; value } ->
            let prev =
              match Proc.Map.find_opt dst acc with Some l -> l | None -> []
            in
            Proc.Map.add dst (Printf.sprintf "%d:%s" src value :: prev) acc
        | _ -> acc)
      Proc.Map.empty (Timed.actions trace)
  in
  List.map
    (fun p ->
      ( p,
        match Proc.Map.find_opt p rev with
        | Some l -> List.rev l
        | None -> [] ))
    procs

type verdict =
  | Agree
  | Diverged of {
      node : Proc.t;
      index : int;
      left : string list;
      right : string list;
    }

(* First position where two per-node sequences disagree (a missing tail
   counts: prefix agreement with unequal lengths diverges at the shorter
   length). *)
let first_mismatch xs ys =
  let rec go i xs ys =
    match (xs, ys) with
    | [], [] -> None
    | [], _ :: _ | _ :: _, [] -> Some i
    | x :: xs, y :: ys -> if String.equal x y then go (i + 1) xs ys else Some i
  in
  go 0 xs ys

let compare_with project ~left ~right =
  let right_map =
    List.fold_left (fun m (p, l) -> Proc.Map.add p l m) Proc.Map.empty right
  in
  let mismatch =
    List.find_map
      (fun (p, l) ->
        let r =
          match Proc.Map.find_opt p right_map with Some r -> r | None -> []
        in
        let l = project l and r = project r in
        match first_mismatch l r with
        | Some i -> Some (p, i, l, r)
        | None -> None)
      left
  in
  match mismatch with
  | None -> Agree
  | Some (node, index, left, right) -> Diverged { node; index; left; right }

let compare_orders ~left ~right = compare_with (fun l -> l) ~left ~right

let compare_contents ~left ~right =
  compare_with (List.sort String.compare) ~left ~right

let incomplete ~expected orders =
  List.filter_map
    (fun (p, delivered) ->
      let want = expected p in
      let got = List.length delivered in
      if got < want then Some (p, got) else None)
    orders

(* --------------------------- presentation ---------------------------- *)

let excerpt ~around l =
  let len = List.length l in
  let from = max 0 (around - 2) in
  let upto = min len (around + 3) in
  let slice =
    List.filteri (fun i _ -> i >= from && i < upto) l
  in
  Printf.sprintf "[%s%s%s]"
    (if from > 0 then "… " else "")
    (String.concat " " slice)
    (if upto < len then " …" else "")

let describe ~left_label ~right_label = function
  | Agree -> "orders agree"
  | Diverged { node; index; left; right } ->
      Printf.sprintf
        "node %d diverges at delivery %d: %s %s (%d total) vs %s %s (%d total)"
        node index left_label
        (excerpt ~around:index left)
        (List.length left) right_label
        (excerpt ~around:index right)
        (List.length right)

let json_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_json ~left_label ~right_label = function
  | Agree -> "null"
  | Diverged { node; index; left; right } ->
      let seq l = "[" ^ String.concat "," (List.map json_string l) ^ "]" in
      Printf.sprintf "{\"node\":%d,\"index\":%d,%s:%s,%s:%s}" node index
        (json_string left_label) (seq left) (json_string right_label)
        (seq right)
