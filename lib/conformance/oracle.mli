open Gcs_impl

(** Node-local VStoTO state invariants, shared by every judge.

    These used to live inside the fuzzer's runner; they moved here so
    the conformance suite, the CLI and the fuzzer (which now depends on
    this library for the divergence comparator) all apply the exact same
    oracle set without a dependency cycle. *)

val vstoto_invariants :
  Gcs_core.Vstoto.state Gcs_automata.Invariant.t list
(** Counter ordering ([1 <= nextreport <= nextconfirm <= |order|+1]),
    duplicate-free delivery order, reported-prefix content presence. *)

val node_invariant_failure :
  To_service.node Gcs_core.Proc.Map.t -> (string * string) option
(** First {!vstoto_invariants} violation over a fleet's final states, as
    a [(check, detail)] pair with [check = "node-invariant"]. *)
