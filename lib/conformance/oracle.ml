open Gcs_core
open Gcs_impl

let vstoto_invariants : Vstoto.state Gcs_automata.Invariant.t list =
  [
    Gcs_automata.Invariant.make_explained "counters-ordered"
      (fun (st : Vstoto.state) ->
        if
          1 <= st.Vstoto.nextreport
          && st.Vstoto.nextreport <= st.Vstoto.nextconfirm
          && st.Vstoto.nextconfirm <= Gcs_stdx.Tape.length st.Vstoto.order + 1
        then Ok ()
        else
          Error
            (Printf.sprintf "nextreport=%d nextconfirm=%d |order|=%d"
               st.Vstoto.nextreport st.Vstoto.nextconfirm
               (Gcs_stdx.Tape.length st.Vstoto.order)));
    Gcs_automata.Invariant.make_explained "order-duplicate-free"
      (fun (st : Vstoto.state) ->
        let sorted =
          List.sort Label.compare (Gcs_stdx.Tape.to_list st.Vstoto.order)
        in
        let rec dup = function
          | a :: (b :: _ as rest) ->
              if Label.equal a b then Some a else dup rest
          | [] | [ _ ] -> None
        in
        match dup sorted with
        | None -> Ok ()
        | Some l -> Error (Format.asprintf "label %a ordered twice" Label.pp l));
    Gcs_automata.Invariant.make_explained "reported-prefix-content"
      (fun (st : Vstoto.state) ->
        let reported =
          Gcs_stdx.Seqx.take (st.Vstoto.nextreport - 1)
            (Gcs_stdx.Tape.to_list st.Vstoto.order)
        in
        match
          List.find_opt
            (fun l -> not (Label.Map.mem l st.Vstoto.content))
            reported
        with
        | None -> Ok ()
        | Some l ->
            Error
              (Format.asprintf "reported label %a has no content" Label.pp l));
  ]

let node_invariant_failure final_states =
  List.find_map
    (fun (p, node) ->
      match
        Gcs_automata.Invariant.first_failure vstoto_invariants
          (To_service.node_app node)
      with
      | Some (name, detail) ->
          Some
            ( "node-invariant",
              Printf.sprintf "proc %d: %s: %s" p name detail )
      | None -> None)
    (Proc.Map.bindings final_states)
