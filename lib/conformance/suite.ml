open Gcs_core
open Gcs_impl
open Gcs_nemesis

type profile = {
  label : string;
  backend : Gcs_transport.Iface.backend;
  config : To_service.config;
  beat : float;
  workload_spacing : float;
  workload_count : int;
  slack : float;
  use_stop : bool;
}

let mk_config ?batch_window ~n ~delta ~pi ~mu () =
  let procs = Proc.all ~n in
  To_service.make_config ?batch_window
    { Vs_node.procs; p0 = procs; pi; mu; delta }

(* The sim profile uses the repository's standard simulated timing
   (δ = 1, π = 6, μ = 8); the bus profile is the same shape scaled to
   wall seconds by 1/10, so a case converges in a few seconds of real
   time while keeping every π/μ/δ ratio — and hence the protocol's
   timeout structure — intact. *)

let sim_profile ?batch_window ?(n = 3) () =
  {
    label = "sim";
    backend =
      Gcs_sim.Backend.of_config (Gcs_sim.Engine.default_config ~delta:1.0);
    config = mk_config ?batch_window ~n ~delta:1.0 ~pi:6.0 ~mu:8.0 ();
    beat = 10.0;
    workload_spacing = 3.0;
    workload_count = 4;
    slack = 60.0;
    use_stop = false;
  }

let bus_profile ?batch_window ?(n = 3) () =
  {
    label = "bus";
    backend = Gcs_transport.Bus.backend ();
    config = mk_config ?batch_window ~n ~delta:0.1 ~pi:0.6 ~mu:0.8 ();
    beat = 0.5;
    workload_spacing = 0.25;
    workload_count = 4;
    slack = 2.0;
    use_stop = true;
  }

type case = { name : string; scenario : Scenario.t }

let cases profile =
  let procs = profile.config.To_service.vs.Vs_node.procs in
  let n = List.length procs in
  let b = profile.beat in
  let hi = List.nth procs (n - 1) in
  let lo =
    match procs with
    | p :: _ -> p
    | [] -> invalid_arg "Suite.cases: empty processor set"
  in
  let split =
    (* majority part keeps the leader; the rest is isolated *)
    let rec take k = function
      | x :: rest when k > 0 -> x :: take (k - 1) rest
      | _ -> []
    in
    let maj = take ((n / 2) + 1) procs in
    let min_part = List.filter (fun p -> not (List.mem p maj)) procs in
    [ maj; min_part ]
  in
  let v name steps = { name; scenario = Scenario.v name steps } in
  [
    v "clean" [];
    v "partition-heal"
      [ Scenario.at (2.0 *. b) (Scenario.Partition split);
        Scenario.at (6.0 *. b) Scenario.Heal ];
    v "crash-recover"
      [ Scenario.at (2.0 *. b) (Scenario.Crash hi);
        Scenario.at (6.0 *. b) (Scenario.Recover hi);
        Scenario.at (6.5 *. b) Scenario.Heal ];
    v "ugly-link"
      [ Scenario.at (2.0 *. b) (Scenario.Degrade (lo, hi, Fstatus.Ugly));
        Scenario.at (6.0 *. b) (Scenario.Degrade (lo, hi, Fstatus.Good));
        Scenario.at (6.5 *. b) Scenario.Heal ];
    v "slow-processor"
      [ Scenario.at (2.0 *. b) (Scenario.Slow hi);
        Scenario.at (6.0 *. b) (Scenario.Wake hi);
        Scenario.at (6.5 *. b) Scenario.Heal ];
  ]

type outcome = {
  case : string;
  seed : int;
  failure : (string * string) option;
  bcasts : int;
  deliveries : int;
  events_processed : int;
}

(* Workload spread over the fault window: distinct values per origin (the
   TO-property checker requires it), origins interleaved. *)
let workload profile ~stabilization =
  let procs = profile.config.To_service.vs.Vs_node.procs in
  ignore stabilization;
  List.concat_map
    (fun p ->
      List.init profile.workload_count (fun k ->
          ( profile.workload_spacing
            *. float_of_int (1 + k + (p * profile.workload_count)),
            p,
            Printf.sprintf "c%d.%d" p k )))
    procs

(* Batching oracle: a batch is drawn from the buffer of a single view
   (labels are stamped with the view that created them), so every
   [Msg.Batch] seen at the VS layer must be view-homogeneous. A mixed
   batch means a send crossed a view boundary. *)
let batch_boundary_violation run =
  List.find_map
    (fun (_, a) ->
      let msg =
        match a with
        | Vs_action.Gpsnd { msg; _ }
        | Vs_action.Gprcv { msg; _ }
        | Vs_action.Safe { msg; _ } ->
            Some msg
        | Vs_action.Newview _ | Vs_action.Createview _ | Vs_action.Vs_order _
          ->
            None
      in
      match msg with
      | Some (Msg.Batch ((l0, _) :: rest)) ->
          List.find_map
            (fun (l, _) ->
              if View_id.equal l.Label.id l0.Label.id then None
              else
                Some
                  (Format.asprintf
                     "batch mixes labels of views %a and %a" View_id.pp
                     l0.Label.id View_id.pp l.Label.id))
            rest
      | _ -> None)
    (Timed.actions (To_service.vs_trace run))

let check profile ~seed case =
  let config = profile.config in
  let procs = config.To_service.vs.Vs_node.procs in
  let n = List.length procs in
  let l = Scenario.stabilization_time case.scenario in
  let b', d' = Harness.bounds config in
  let until = l +. b' +. d' +. profile.slack in
  let workload = workload profile ~stabilization:l in
  let expected = List.length workload in
  let failures = Scenario.compile ~procs case.scenario in
  (* Early stop for wall-clock backends: every node has confirmed and
     reported the whole workload, and the fault schedule has fully
     played (stopping mid-schedule would make the bound check vacuous). *)
  let progress = Array.init n (fun _ -> Atomic.make 0) in
  let observe p _pre post =
    let st = To_service.node_app post in
    let reported = st.Vstoto.nextreport - 1 in
    Gcs_stdx.Atomicx.store_max progress.(p) reported
  in
  let stop ~now ~outputs:_ =
    now > l
    && Array.for_all (fun a -> Atomic.get a >= expected) progress
  in
  let stop = if profile.use_stop then Some stop else None in
  let run =
    To_service.run_on ~observe ?stop ~backend:profile.backend config ~workload
      ~failures ~until ~seed
  in
  let failure =
    match To_service.to_conforms config run with
    | Error e ->
        Some
          ("to-conformance", Format.asprintf "%a" To_trace_checker.pp_error e)
    | Ok () -> (
        match To_service.vs_conforms config run with
        | Error e ->
            Some
              ( "vs-conformance",
                Format.asprintf "%a" Vs_trace_checker.pp_error e )
        | Ok () ->
            let report =
              To_property.check ~b:b' ~d:d' ~q:procs ~horizon:until
                (To_service.client_trace run)
            in
            if not (To_property.holds report) then
              Some
                ( "delivery-bound",
                  Format.asprintf "%a" To_property.pp_report report )
            else (
              match batch_boundary_violation run with
              | Some detail -> Some ("batch-view-boundary", detail)
              | None ->
                  Oracle.node_invariant_failure run.To_service.final_nodes))
  in
  let bcasts =
    List.length
      (List.filter
         (fun (_, a) -> match a with To_action.Bcast _ -> true | _ -> false)
         (Timed.actions (To_service.client_trace run)))
  in
  {
    case = case.name;
    seed;
    failure;
    bcasts;
    deliveries = To_service.deliveries run;
    events_processed = run.To_service.events_processed;
  }

let run_all profile ~seed =
  List.map (fun case -> check profile ~seed case) (cases profile)

let passed outcome = Option.is_none outcome.failure

let pp_outcome ppf o =
  match o.failure with
  | None ->
      Format.fprintf ppf "%-16s seed %d: OK (%d bcasts, %d deliveries)" o.case
        o.seed o.bcasts o.deliveries
  | Some (check, detail) ->
      Format.fprintf ppf "%-16s seed %d: FAILED %s: %s" o.case o.seed check
        detail
