open Gcs_core
open Gcs_impl

type report = {
  seed : int;
  messages : int;
  sim_deliveries : int;
  bus_deliveries : int;
  incomplete : (string * Proc.t) list;
  divergence : (Proc.t * string list * string list) option;
}

let config ?(n = 3) ?batch_window () =
  let procs = Proc.all ~n in
  To_service.make_config ?batch_window
    { Vs_node.procs; p0 = procs; pi = 0.15; mu = 1.0e6; delta = 5.0 }

let workload ?origins config ~seed ~count =
  let procs =
    match origins with
    | Some procs -> procs
    | None -> config.To_service.vs.Vs_node.procs
  in
  let prng = Gcs_stdx.Prng.create seed in
  List.init count (fun i ->
      let origin = Gcs_stdx.Prng.pick_exn prng procs in
      (0.0, origin, Printf.sprintf "m%d.p%d" i origin))

(* Per-node delivered sequences via the shared comparator. *)
let orders procs run =
  Divergence.orders ~procs (To_service.client_trace run)

(* With [batch_window] set, the anchoring leans on the deferred first
   launch (Vs_node's [first_launch_delay], set by the TO service to
   3×window): every node's initial flush lands at ~window on both
   clocks, strictly before the leader's first token starts collecting,
   so the token picks up the leader's batch first and then the
   followers' in ring order — identically on both backends, FIFO within
   each batch. The leader is an ordinary origin; no exclusion needed. *)
let run_pair ?(n = 3) ?(count = 12) ?batch_window ~seed () =
  let config = config ~n ?batch_window () in
  let procs = config.To_service.vs.Vs_node.procs in
  let workload = workload ~origins:procs config ~seed ~count in
  let sim_run =
    To_service.run_on
      ~backend:
        (Gcs_sim.Backend.of_config (Gcs_sim.Engine.default_config ~delta:5.0))
      config ~workload ~failures:[] ~until:400.0 ~seed
  in
  (* The bus run ends as soon as every node has reported the whole
     workload; the horizon is only the failure fallback. *)
  let progress = Array.init n (fun _ -> Atomic.make 0) in
  let observe p _pre post =
    let st = To_service.node_app post in
    let reported = st.Vstoto.nextreport - 1 in
    Gcs_stdx.Atomicx.store_max progress.(p) reported
  in
  let stop ~now:_ ~outputs:_ =
    Array.for_all (fun a -> Atomic.get a >= count) progress
  in
  let bus_run =
    To_service.run_on ~observe ~stop ~backend:(Gcs_transport.Bus.backend ())
      config ~workload ~failures:[] ~until:30.0 ~seed
  in
  let sim_orders = orders procs sim_run in
  let bus_orders = orders procs bus_run in
  let incomplete =
    List.concat_map
      (fun (label, orders) ->
        List.filter_map
          (fun (p, delivered) ->
            if List.length delivered < count then Some (label, p) else None)
          orders)
      [ ("sim", sim_orders); ("bus", bus_orders) ]
  in
  let divergence =
    match Divergence.compare_orders ~left:sim_orders ~right:bus_orders with
    | Divergence.Agree -> None
    | Divergence.Diverged { node; left; right; _ } -> Some (node, left, right)
  in
  {
    seed;
    messages = count;
    sim_deliveries = To_service.deliveries sim_run;
    bus_deliveries = To_service.deliveries bus_run;
    incomplete;
    divergence;
  }

let passed r = r.incomplete = [] && r.divergence = None

let pp_report ppf r =
  Format.fprintf ppf
    "seed %d: %d messages, sim %d / bus %d deliveries%s%s" r.seed r.messages
    r.sim_deliveries r.bus_deliveries
    (match r.incomplete with
    | [] -> ""
    | l ->
        Printf.sprintf ", incomplete at %s"
          (String.concat ","
             (List.map (fun (b, p) -> Printf.sprintf "%s/%d" b p) l)))
    (match r.divergence with
    | None -> ""
    | Some (p, _, _) -> Printf.sprintf ", DIVERGED at node %d" p)

let json_string = Divergence.json_string

let dump r =
  let seq l = "[" ^ String.concat "," (List.map json_string l) ^ "]" in
  let divergence =
    match r.divergence with
    | None -> "null"
    | Some (p, sim_seq, bus_seq) ->
        Printf.sprintf "{\"node\":%d,\"sim\":%s,\"bus\":%s}" p (seq sim_seq)
          (seq bus_seq)
  in
  let incomplete =
    "["
    ^ String.concat ","
        (List.map
           (fun (b, p) ->
             Printf.sprintf "{\"backend\":%s,\"node\":%d}" (json_string b) p)
           r.incomplete)
    ^ "]"
  in
  Printf.sprintf
    "{\"seed\":%d,\"messages\":%d,\"sim_deliveries\":%d,\"bus_deliveries\":%d,\"incomplete\":%s,\"divergence\":%s}"
    r.seed r.messages r.sim_deliveries r.bus_deliveries incomplete divergence
