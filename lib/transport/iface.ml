open Gcs_core

type ('packet, 'out) effect =
  | Send of { dst : Proc.t; packet : 'packet }
  | Set_timer of { id : int; delay : float }
  | Cancel_timer of { id : int }
  | Output of 'out

type ('state, 'input, 'packet, 'out) handlers = {
  on_start : Proc.t -> 'state -> 'state * ('packet, 'out) effect list;
  on_input :
    Proc.t -> now:float -> 'input -> 'state -> 'state * ('packet, 'out) effect list;
  on_packet :
    Proc.t ->
    now:float ->
    src:Proc.t ->
    'packet ->
    'state ->
    'state * ('packet, 'out) effect list;
  on_timer :
    Proc.t -> now:float -> id:int -> 'state -> 'state * ('packet, 'out) effect list;
}

type ('state, 'out) result = {
  trace : 'out Timed.t;
  final_states : 'state Proc.Map.t;
  events_processed : int;
  packets_sent : int;
  packets_dropped : int;
  statuses_applied : int;
  metrics : Gcs_stdx.Metrics.t;
}

type 'packet codec = {
  enc : 'packet -> string;
  dec : string -> ('packet, string) Stdlib.result;
}

let string_codec = { enc = (fun s -> s); dec = (fun s -> Ok s) }

let roundtrip_exn codec packet =
  match codec.dec (codec.enc packet) with
  | Ok p -> p
  | Error e -> invalid_arg (Printf.sprintf "codec round-trip failed: %s" e)

module type BACKEND = sig
  val name : string

  val run :
    ?metrics:Gcs_stdx.Metrics.t ->
    ?observe:(Proc.t -> 'state -> 'state -> unit) ->
    ?stop:(now:float -> outputs:int -> bool) ->
    'packet codec ->
    procs:Proc.t list ->
    handlers:('state, 'input, 'packet, 'out) handlers ->
    init:(Proc.t -> 'state) ->
    inputs:(float * Proc.t * 'input) list ->
    failures:(float * Fstatus.event) list ->
    until:float ->
    seed:int ->
    ('state, 'out) result
end

type backend = (module BACKEND)
