(** Mutex/condition FIFO mailboxes — the bus's links.

    One mailbox per processor; senders [push] from their own domains and
    the owner drains with [pop_opt] / [wait]. Per-sender FIFO order is
    inherited from the queue: a sender's consecutive pushes are popped in
    push order (the per-directed-link FIFO the bus promises).

    OCaml's [Condition] has no timed wait, and a node must also wake for
    its {e timer} deadlines, not just for traffic — so waiting is bounded
    cooperatively: the bus runs a ticker that calls [tick] on every
    mailbox at a small fixed period, and [wait] returns on the first push
    {e or} tick after it was called. The owner then rechecks its timers,
    its failure status and the horizon. *)

type 'a t

val create : ?registry:Gcs_stdx.Lock.registry -> ?name:string -> unit -> 'a t
(** The mailbox's internal lock is a {!Gcs_stdx.Lock}; pass [registry]
    (and a distinguishing [name]) to enroll it in a lock-order /
    contention observation run ([gcs lockcheck]). *)

val push : 'a t -> 'a -> unit
(** Append and wake the owner. *)

val pop_opt : 'a t -> 'a option
(** The oldest element, if any. Never blocks. *)

val recv : 'a t -> 'a option
(** Blocking receive: the oldest element, waiting for one if the
    mailbox is empty. Returns [None] only once the mailbox is closed
    {e and} drained. A recv blocked (or arriving) while [close] runs
    must return — closed is a state checked under the mailbox lock, so
    the close broadcast cannot slip between the emptiness check and the
    park. *)

val length : 'a t -> int

val wait : 'a t -> unit
(** Block until a [push], [tick] or [close] strictly after this call
    began (immediately if already closed). Returns with no element
    guarantee — callers recheck. *)

val close : 'a t -> unit
(** Make [wait] non-blocking forever after (and [recv] return [None]
    once drained). Shutdown uses this instead
    of a final [tick]: a tick only wakes waiters already parked, so a
    node that checks the stop flag and {e then} parks would sleep through
    it, whereas closing is a state, not an edge. [push]/[pop_opt] still
    work on a closed mailbox (the owner drains nothing after stop anyway
    — it rechecks the stop flag on every wake). *)

val tick : 'a t -> unit
(** Wake the owner without delivering anything (the ticker's heartbeat,
    bounding how long a timer deadline can oversleep). *)
