(** Monotonic wall clock for real transports.

    The repository's determinism discipline (lint rule D2) forbids reading
    the wall clock anywhere: simulated time and seeds are the only
    admissible time sources, so every run is reproducible. A {e real}
    transport is the one place where wall time is the semantics, not an
    escape — this module is the single sanctioned sink (rule D2 exempts
    [lib/transport/clock.ml] exactly as it exempts [lib/stdx/prng.ml] for
    entropy). Everything else on the bus path asks a [Clock.t] for the
    time, so a test can still substitute a fake.

    A clock reads as seconds since its creation and is clamped monotone
    across domains: concurrent readers never observe time going
    backwards, even if the underlying source is adjusted. *)

type t

val create : unit -> t
(** A fresh clock; [now] counts from (approximately) this moment. *)

val now : t -> float
(** Seconds since [create]. Monotone: for any two calls, in any domains,
    the later-returning call yields a value [>=] every earlier one. *)

val sleep : float -> unit
(** Block the calling domain for (at least) the given seconds; negative
    or zero durations return immediately. *)
