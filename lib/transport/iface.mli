open Gcs_core

(** The pluggable transport interface.

    The VS/VStoTO automata in [lib/impl] are deterministic event handlers
    over private state: they consume inputs, packets and timer firings and
    emit effects. {e How} messages move and {e what} time means are the
    transport's business — the service specification abstracts the network
    entirely (the paper's central modularity claim). This module is the
    seam: handlers are written once against these types and run unchanged
    on

    - the deterministic discrete-event simulator ({!Gcs_sim.Engine}, which
      re-exports these types with equality), the test/fuzz backend; and
    - the real multi-domain in-process message bus ({!Bus}), where each
      processor is an OCaml domain, packets are serialized strings in
      mutex/condition mailboxes, and time is the monotonic wall clock.

    A {!BACKEND} packages one such executor behind a common [run]
    signature, so whole-service harnesses, the conformance suite and the
    differential fuzzer can be written once per {e oracle} instead of once
    per {e network}. *)

(** {2 Handler-facing types} *)

type ('packet, 'out) effect =
  | Send of { dst : Proc.t; packet : 'packet }
  | Set_timer of { id : int; delay : float }
      (** (re-)arm timer [id]; any previously armed timer with the same id
          at this processor is superseded *)
  | Cancel_timer of { id : int }
  | Output of 'out  (** record an external event in the timed trace *)

type ('state, 'input, 'packet, 'out) handlers = {
  on_start : Proc.t -> 'state -> 'state * ('packet, 'out) effect list;
  on_input :
    Proc.t -> now:float -> 'input -> 'state -> 'state * ('packet, 'out) effect list;
  on_packet :
    Proc.t ->
    now:float ->
    src:Proc.t ->
    'packet ->
    'state ->
    'state * ('packet, 'out) effect list;
  on_timer :
    Proc.t -> now:float -> id:int -> 'state -> 'state * ('packet, 'out) effect list;
}

type ('state, 'out) result = {
  trace : 'out Timed.t;
  final_states : 'state Proc.Map.t;
  events_processed : int;
  packets_sent : int;
  packets_dropped : int;
  statuses_applied : int;
  metrics : Gcs_stdx.Metrics.t;
}

(** {2 Packet serialization}

    A real transport moves bytes, not OCaml values; a codec makes the
    serialization path explicit in the interface. The simulator ignores
    it (packets travel by value, byte-for-byte the pre-transport
    behavior); the bus encodes every packet at send and decodes at
    delivery, so the same codec path later extends to Unix sockets. *)

type 'packet codec = {
  enc : 'packet -> string;
  dec : string -> ('packet, string) Stdlib.result;
      (** [Error] on malformed bytes — a backend treats it as a transport
          invariant violation and fails the run rather than guessing. *)
}

val string_codec : string codec
(** The identity codec for string packets. *)

val roundtrip_exn : 'packet codec -> 'packet -> 'packet
(** [dec (enc p)], raising [Invalid_argument] on a codec asymmetry.
    Useful for property tests and paranoid backends. *)

(** {2 Backends} *)

module type BACKEND = sig
  val name : string

  val run :
    ?metrics:Gcs_stdx.Metrics.t ->
    ?observe:(Proc.t -> 'state -> 'state -> unit) ->
    ?stop:(now:float -> outputs:int -> bool) ->
    'packet codec ->
    procs:Proc.t list ->
    handlers:('state, 'input, 'packet, 'out) handlers ->
    init:(Proc.t -> 'state) ->
    inputs:(float * Proc.t * 'input) list ->
    failures:(float * Fstatus.event) list ->
    until:float ->
    seed:int ->
    ('state, 'out) result
  (** Run the fleet to the horizon [until] (simulated seconds on the
      simulator, wall-clock seconds on a real transport).

      [observe] is called with the (pre, post) state around every handler
      application. On a concurrent backend the calls are serialized by a
      mutex but arrive in a nondeterministic order; observers must be
      order-insensitive (the fuzzer's coverage set is).

      [stop ~now ~outputs:k] — where [now] is the run clock and [k] the
      number of [Output] actions recorded so far — lets a caller end the
      run early once the workload has visibly drained, instead of
      sleeping out a conservative wall-clock horizon ([now] lets a
      predicate refuse to stop before a fault schedule has fully
      played). The simulator ignores it (virtual time is free). *)
end

type backend = (module BACKEND)
