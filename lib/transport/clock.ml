(* The one sanctioned wall-clock sink (lint rule D2): real transports get
   their time here and nowhere else. *)

type t = { t0 : float; last : float Atomic.t }

let read () = Unix.gettimeofday ()

let create () = { t0 = read (); last = Atomic.make 0.0 }

(* Clamp monotone across domains with a CAS max-loop: a reader never
   returns less than any value already returned by another domain. *)
let now t =
  let raw = read () -. t.t0 in
  let rec clamp () =
    let seen = Atomic.get t.last in
    if raw <= seen then seen
    else if Atomic.compare_and_set t.last seen raw then raw
    else clamp ()
  in
  clamp ()

let sleep s = if s > 0.0 then Unix.sleepf s
