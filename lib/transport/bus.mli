open Gcs_core

(** The real backend: a multi-domain in-process message bus.

    Each processor runs as its own OCaml domain with a mutex/condition
    {!Mailbox}; packets are {!Iface.codec}-serialized strings (the same
    codec path later extends to Unix sockets); time is the monotonic wall
    clock ({!Clock}). A controller loop in the calling domain injects the
    client workload at its scheduled offsets, applies the failure-status
    schedule (crashes hold a processor's events, partitions drop packets
    at send time, ugly links delay or drop — the Section 3.2 fault model
    approximated in wall time), delivers delayed packets, and ticks every
    mailbox each [poll_interval] so timer deadlines never oversleep by
    more than a tick.

    Guarantees (the contract the cross-transport suite checks):
    - {e same automata}: handlers written against {!Iface} run unchanged;
    - {e per-sender FIFO}: packets between a good directed pair are
      handled in send order (mailboxes are FIFO queues);
    - {e live members only}: a [Bad] processor handles nothing while bad
      (its mailbox holds; held events replay on recovery) and packets on a
      [Bad] link are dropped at send time;
    - {e close is close}: once [run] returns, no handler runs and no
      output is recorded — trace timestamps stay below [until] plus one
      handler's residual;
    - {e monotone clock}: trace timestamps are nondecreasing (stamped
      under the trace lock from a monotone clock).

    Unlike the simulator the bus is {e not} deterministic: wall-clock
    interleavings vary run to run. Oracles over bus runs must hold for
    every interleaving (trace conformance, invariants, delivered-order
    agreement), which is exactly what makes a second backend a free
    differential oracle rather than a second source of bugs. *)

type config = {
  poll_interval : float;
      (** controller tick period in seconds (timer wake-up bound) *)
  ugly_drop_prob : float;  (** ugly link: drop probability at send *)
  ugly_delay_max : float;
      (** ugly link/processor: extra delay drawn uniformly below this *)
}

val default_config : config
(** 2 ms ticks, drop probability 0.5, 50 ms maximum ugly delay. *)

val run :
  ?config:config ->
  ?metrics:Gcs_stdx.Metrics.t ->
  ?lock_registry:Gcs_stdx.Lock.registry ->
  ?observe:(Proc.t -> 'state -> 'state -> unit) ->
  ?stop:(now:float -> outputs:int -> bool) ->
  'packet Iface.codec ->
  procs:Proc.t list ->
  handlers:('state, 'input, 'packet, 'out) Iface.handlers ->
  init:(Proc.t -> 'state) ->
  inputs:(float * Proc.t * 'input) list ->
  failures:(float * Fstatus.event) list ->
  until:float ->
  seed:int ->
  ('state, 'out) Iface.result
(** Times ([inputs], [failures], [until]) are wall-clock seconds from the
    run's start. Inputs at time [<= 0] are preloaded into their mailboxes
    before any domain starts, so they are handled before any packet —
    the anchor the differential suite uses to make delivered orders
    comparable across transports. [seed] drives the per-node PRNGs (ugly
    delays and drops); it does not make the bus deterministic.

    The run's [metrics] gains a [bus.*] section: packets sent/dropped,
    events processed, statuses applied, and the wall seconds spent.

    A handler exception (or a codec [Error]) on any node stops the whole
    run and re-raises in the caller.

    [lock_registry] enrolls every bus lock (status matrix, trace, delay
    wheel, observe serializer, one per mailbox) in a
    {!Gcs_stdx.Lock.registry}: acquisition orders, contention counts and
    any observed lock-order cycle are recorded for [gcs lockcheck]. The
    bus's locks are all leaves, so a healthy instrumented run reports an
    edge-free graph. Unset, the locks are plain wrappers with no
    recording. *)

val backend :
  ?config:config -> ?lock_registry:Gcs_stdx.Lock.registry -> unit ->
  Iface.backend
(** The bus packaged as a pluggable {!Iface.BACKEND} (named ["bus"]). *)
