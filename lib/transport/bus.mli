open Gcs_core

(** The real backend: a multi-domain in-process message bus.

    Each processor runs as its own OCaml domain with a mutex/condition
    {!Mailbox}; packets are {!Iface.codec}-serialized strings (the same
    codec path later extends to Unix sockets); time is the monotonic wall
    clock ({!Clock}). A controller loop in the calling domain injects the
    client workload at its scheduled offsets, applies the failure-status
    schedule (crashes hold a processor's events, partitions drop packets
    at send time, ugly links delay or drop — the Section 3.2 fault model
    approximated in wall time), delivers delayed packets, and ticks every
    mailbox each [poll_interval] so timer deadlines never oversleep by
    more than a tick.

    Guarantees (the contract the cross-transport suite checks):
    - {e same automata}: handlers written against {!Iface} run unchanged;
    - {e per-sender FIFO}: packets between a good directed pair are
      handled in send order (mailboxes are FIFO queues);
    - {e live members only}: a [Bad] processor handles nothing while bad
      (its mailbox holds; held events replay on recovery) and packets on a
      [Bad] link are dropped at send time;
    - {e close is close}: once [run] returns, no handler runs and no
      output is recorded — trace timestamps stay below [until] plus one
      handler's residual;
    - {e monotone clock}: trace timestamps are nondecreasing (stamped
      under the trace lock from a monotone clock).

    Unlike the simulator the bus is {e not} deterministic: wall-clock
    interleavings vary run to run. Oracles over bus runs must hold for
    every interleaving (trace conformance, invariants, delivered-order
    agreement), which is exactly what makes a second backend a free
    differential oracle rather than a second source of bugs. *)

type config = {
  poll_interval : float;
      (** controller tick period in seconds (timer wake-up bound) *)
  ugly_drop_prob : float;  (** ugly link: drop probability at send *)
  ugly_delay_max : float;
      (** ugly link/processor: extra delay drawn uniformly below this *)
}

val default_config : config
(** 2 ms ticks, drop probability 0.5, 50 ms maximum ugly delay. *)

type tamper = {
  swap_inputs_at : (Proc.t * int) option;
      (** at (node, k): exchange the payloads of that node's [k]-th and
          [k+1]-th client submissions (0-based), keeping their times *)
}
(** Planted transport fault for the differential fuzzer's mutant
    gauntlet: an input-queue transposition a single execution cannot
    distinguish from legal client-side timing — the run is a valid
    execution of the {e transposed} schedule, so no trace-conformance
    or invariant oracle fires; its {e only} symptom is divergence from
    a reference execution of the real schedule. It never drops or
    duplicates; with fewer than [k+2] submissions at the node it
    degrades to a no-op. *)

val no_tamper : tamper

val run :
  ?config:config ->
  ?tamper:tamper ->
  ?admit:(outputs:int -> index:int -> bool) ->
  ?metrics:Gcs_stdx.Metrics.t ->
  ?lock_registry:Gcs_stdx.Lock.registry ->
  ?observe:(Proc.t -> 'state -> 'state -> unit) ->
  ?stop:(now:float -> outputs:int -> bool) ->
  'packet Iface.codec ->
  procs:Proc.t list ->
  handlers:('state, 'input, 'packet, 'out) Iface.handlers ->
  init:(Proc.t -> 'state) ->
  inputs:(float * Proc.t * 'input) list ->
  failures:(float * Fstatus.event) list ->
  until:float ->
  seed:int ->
  ('state, 'out) Iface.result
(** Times ([inputs], [failures], [until]) are wall-clock seconds from the
    run's start. Inputs at time [<= 0] are preloaded into their mailboxes
    before any domain starts, so they are handled before any packet —
    the anchor the differential suite uses to make delivered orders
    comparable across transports. [seed] drives the per-node PRNGs (ugly
    delays and drops); it does not make the bus deterministic.

    The run's [metrics] gains a [bus.*] section: packets sent/dropped,
    events processed, statuses applied, and the wall seconds spent.

    [admit] adds causal admission control on top of the time schedule:
    a pending input at 0-based schedule position [index] is injected
    only once [admit ~outputs ~index] holds (where [outputs] is the
    number of outputs recorded so far) — or once it has waited a fixed
    grace period past the previous injection, so an instrumented run
    that withholds outputs degrades to time-based pacing instead of
    wedging. The differential fuzzer uses it to keep submissions
    serialized under controller-scheduling jitter: wall-clock spacing
    alone cannot guarantee submission [i+1] lands after submission [i]
    is fully processed, and for a timestamp protocol a collapsed gap
    yields a different (valid) total order than the reference run — a
    false divergence. Inputs preloaded at time [<= 0] bypass admission
    but count toward [index].

    A handler exception (or a codec [Error]) on any node stops the whole
    run and re-raises in the caller.

    [lock_registry] enrolls every bus lock (status matrix, trace, delay
    wheel, observe serializer, one per mailbox) in a
    {!Gcs_stdx.Lock.registry}: acquisition orders, contention counts and
    any observed lock-order cycle are recorded for [gcs lockcheck]. The
    bus's locks are all leaves, so a healthy instrumented run reports an
    edge-free graph. Unset, the locks are plain wrappers with no
    recording. *)

val backend :
  ?config:config ->
  ?tamper:tamper ->
  ?admit:(outputs:int -> index:int -> bool) ->
  ?lock_registry:Gcs_stdx.Lock.registry ->
  unit ->
  Iface.backend
(** The bus packaged as a pluggable {!Iface.BACKEND} (named ["bus"]).
    [tamper] bakes a planted transport fault into the backend — the
    differential fuzzer hands such a backend to the candidate side
    only — and [admit] bakes in the admission predicate (see {!run}). *)
