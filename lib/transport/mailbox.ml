type 'a t = {
  lock : Mutex.t;
  cond : Condition.t;
  mutable front : 'a list;  (* oldest first *)
  mutable back : 'a list;  (* newest first *)
  mutable size : int;
  mutable wakes : int;  (* pushes + ticks; versions the condition *)
  mutable closed : bool;  (* once set, wait never blocks again *)
}

let create () =
  {
    lock = Mutex.create ();
    cond = Condition.create ();
    front = [];
    back = [];
    size = 0;
    wakes = 0;
    closed = false;
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
      Mutex.unlock t.lock;
      v
  | exception e ->
      Mutex.unlock t.lock;
      raise e

let push t x =
  locked t (fun () ->
      t.back <- x :: t.back;
      t.size <- t.size + 1;
      t.wakes <- t.wakes + 1;
      Condition.broadcast t.cond)

let pop_opt t =
  locked t (fun () ->
      match t.front with
      | x :: rest ->
          t.front <- rest;
          t.size <- t.size - 1;
          Some x
      | [] -> (
          match List.rev t.back with
          | [] -> None
          | x :: rest ->
              t.front <- rest;
              t.back <- [];
              t.size <- t.size - 1;
              Some x))

let length t = locked t (fun () -> t.size)

let wait t =
  locked t (fun () ->
      let entry = t.wakes in
      while (not t.closed) && t.wakes = entry && t.size = 0 do
        Condition.wait t.cond t.lock
      done)

let tick t =
  locked t (fun () ->
      t.wakes <- t.wakes + 1;
      Condition.broadcast t.cond)

let close t =
  locked t (fun () ->
      t.closed <- true;
      Condition.broadcast t.cond)
