module Lock = Gcs_stdx.Lock

type 'a t = {
  lock : Lock.t;
  cond : Condition.t;
  mutable front : 'a list;  (* oldest first *)
  mutable back : 'a list;  (* newest first *)
  mutable size : int;
  mutable wakes : int;  (* pushes + ticks; versions the condition *)
  mutable closed : bool;  (* once set, wait/recv never block again *)
}

let create ?registry ?(name = "mailbox") () =
  {
    lock = Lock.create ?registry name;
    cond = Condition.create ();
    front = [];
    back = [];
    size = 0;
    wakes = 0;
    closed = false;
  }

let push t x =
  Lock.with_lock t.lock (fun () ->
      t.back <- x :: t.back;
      t.size <- t.size + 1;
      t.wakes <- t.wakes + 1;
      Condition.broadcast t.cond)

(* Caller holds [t.lock]. *)
let pop_locked t =
  match t.front with
  | x :: rest ->
      t.front <- rest;
      t.size <- t.size - 1;
      Some x
  | [] -> (
      match List.rev t.back with
      | [] -> None
      | x :: rest ->
          t.front <- rest;
          t.back <- [];
          t.size <- t.size - 1;
          Some x)

let pop_opt t = Lock.with_lock t.lock (fun () -> pop_locked t)

let length t = Lock.with_lock t.lock (fun () -> t.size)

let wait t =
  Lock.with_lock t.lock (fun () ->
      let entry = t.wakes in
      while (not t.closed) && t.wakes = entry && t.size = 0 do
        Lock.wait t.cond t.lock
      done)

let recv t =
  Lock.with_lock t.lock (fun () ->
      let rec go () =
        match pop_locked t with
        | Some _ as v -> v
        | None ->
            (* Closed is a *state*, checked under the same lock that
               [close] sets it under: a recv that parks after close
               began cannot miss the broadcast, and one parked before it
               is woken by it — either way it returns, never hangs. *)
            if t.closed then None
            else begin
              Lock.wait t.cond t.lock;
              go ()
            end
      in
      go ())

let tick t =
  Lock.with_lock t.lock (fun () ->
      t.wakes <- t.wakes + 1;
      Condition.broadcast t.cond)

let close t =
  Lock.with_lock t.lock (fun () ->
      t.closed <- true;
      Condition.broadcast t.cond)
