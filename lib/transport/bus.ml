open Gcs_core
module Prng = Gcs_stdx.Prng
module Metrics = Gcs_stdx.Metrics
module Lock = Gcs_stdx.Lock

type config = {
  poll_interval : float;
  ugly_drop_prob : float;
  ugly_delay_max : float;
}

let default_config =
  { poll_interval = 0.002; ugly_drop_prob = 0.5; ugly_delay_max = 0.05 }

type tamper = { swap_inputs_at : (Proc.t * int) option }

let no_tamper = { swap_inputs_at = None }

(* What travels through a mailbox: serialized packets from peers (and
   self), or client inputs injected by the controller. *)
type 'input envelope = Packet of { src : Proc.t; data : string } | Input of 'input

let run (type state input packet out) ?(config = default_config)
    ?(tamper = no_tamper) ?admit ?metrics
    ?lock_registry ?observe ?stop (codec : packet Iface.codec) ~procs
    ~(handlers : (state, input, packet, out) Iface.handlers) ~init ~inputs
    ~failures ~until ~seed =
  let metrics = match metrics with Some m -> m | None -> Metrics.create () in
  let clock = Clock.create () in
  let mailboxes =
    List.fold_left
      (fun m p ->
        Proc.Map.add p
          (Mailbox.create ?registry:lock_registry
             ~name:(Printf.sprintf "bus.mailbox.%d" p)
             ())
          m)
      Proc.Map.empty procs
  in
  let mailbox p = Proc.Map.find p mailboxes in
  (* Failure statuses, read by every sender at send time and by every node
     before handling — exactly the sim's at-send / at-step semantics, but
     the matrix lives behind a lock instead of inside the event loop. All
     bus locks are leaves (never held across another acquisition or a
     blocking call), so an instrumented run observes an edge-free lock
     graph — `gcs lockcheck` fails if that ever regresses. *)
  let status_lock = Lock.create ?registry:lock_registry "bus.status" in
  let tracker = ref Fstatus.initial in
  let with_status f = Lock.with_lock status_lock (fun () -> f !tracker) in
  (* The timed trace. Timestamps are taken *inside* the lock so the trace
     is nondecreasing by construction even under concurrent appends. *)
  let trace_lock = Lock.create ?registry:lock_registry "bus.trace" in
  let trace_rev : out Timed.t ref = ref [] in
  let outputs = Atomic.make 0 in
  let record item =
    Lock.with_lock trace_lock (fun () ->
        let t = Clock.now clock in
        trace_rev := { Timed.time = t; item } :: !trace_rev)
  in
  let record_action out =
    record (Timed.Action out);
    Atomic.incr outputs
  in
  let packets_sent = Atomic.make 0 in
  let packets_dropped = Atomic.make 0 in
  let sent_self = Atomic.make 0 in
  let stopped = Atomic.make false in
  let fail_cell : exn option Atomic.t = Atomic.make None in
  let record_failure e =
    ignore (Atomic.compare_and_set fail_cell None (Some e));
    Atomic.set stopped true
  in
  (* Ugly-link packets in flight: the controller delivers them when due. *)
  let wheel_lock = Lock.create ?registry:lock_registry "bus.wheel" in
  let wheel : (float * Proc.t * input envelope) list ref = ref [] in
  let deliver dst env = Mailbox.push (mailbox dst) env in
  let send ~prng ~me dst packet =
    let data = codec.Iface.enc packet in
    Atomic.incr packets_sent;
    if Proc.equal dst me then begin
      (* Self-sends bypass the link matrix, as in the simulator. *)
      Atomic.incr sent_self;
      deliver dst (Packet { src = me; data })
    end
    else
      match with_status (fun t -> Fstatus.link_status t me dst) with
      | Fstatus.Good -> deliver dst (Packet { src = me; data })
      | Fstatus.Bad -> Atomic.incr packets_dropped
      | Fstatus.Ugly ->
          if Prng.float prng < config.ugly_drop_prob then
            Atomic.incr packets_dropped
          else begin
            let due =
              Clock.now clock
              +. max config.poll_interval
                   (Prng.float prng *. config.ugly_delay_max)
            in
            Lock.with_lock wheel_lock (fun () ->
                wheel := (due, dst, Packet { src = me; data }) :: !wheel)
          end
  in
  let observe =
    match observe with
    | None -> None
    | Some f ->
        let lock = Lock.create ?registry:lock_registry "bus.observe" in
        Some (fun p pre post -> Lock.with_lock lock (fun () -> f p pre post))
  in
  (* One domain per processor: fire due timers, drain the mailbox, park on
     it otherwise. A Bad processor parks without handling (its events are
     held, replayed on recovery); an Ugly one stalls a random beat before
     each step — the paper's "nondeterministic speed". *)
  let node me =
    let prng = Prng.create (seed + (7919 * (me + 1))) in
    let mb = mailbox me in
    let timers : (int, float) Hashtbl.t = Hashtbl.create 8 in
    let state = ref (init me) in
    let events = ref 0 in
    let apply_effect = function
      | Iface.Send { dst; packet } -> send ~prng ~me dst packet
      | Iface.Set_timer { id; delay } ->
          Hashtbl.replace timers id (Clock.now clock +. delay)
      | Iface.Cancel_timer { id } -> Hashtbl.remove timers id
      | Iface.Output out -> record_action out
    in
    let handle f =
      let pre = !state in
      let post, effects = f pre in
      state := post;
      incr events;
      (match observe with Some g -> g me pre post | None -> ());
      List.iter apply_effect effects
    in
    let process_env ~now = function
      | Input input -> handle (fun s -> handlers.Iface.on_input me ~now input s)
      | Packet { src; data } -> (
          match codec.Iface.dec data with
          | Ok packet ->
              handle (fun s -> handlers.Iface.on_packet me ~now ~src packet s)
          | Error e ->
              failwith
                (Printf.sprintf "bus: undecodable packet %d -> %d: %s" src me e)
          )
    in
    (* Lexicographic (deadline, id) minimum: the winner is the same
       whatever order the fold visits entries in. *)
    let due_timer now =
      (Hashtbl.fold
         (fun id deadline acc ->
           if deadline > now then acc
           else
             match acc with
             | Some (best_id, best)
               when best < deadline
                    || (Float.equal best deadline && best_id < id) ->
                 acc
             | _ -> Some (id, deadline))
         timers None)
      [@gcs.lint.allow "D1"]
    in
    (try
       handle (fun s -> handlers.Iface.on_start me s);
       let rec loop () =
         if Atomic.get stopped then ()
         else
           let now = Clock.now clock in
           if now >= until then ()
           else
             match with_status (fun t -> Fstatus.proc_status t me) with
             | Fstatus.Bad ->
                 Mailbox.wait mb;
                 loop ()
             | status -> (
                 if Fstatus.equal status Fstatus.Ugly then
                   Clock.sleep (Prng.float prng *. config.ugly_delay_max);
                 match due_timer now with
                 | Some (id, _) ->
                     Hashtbl.remove timers id;
                     handle (fun s -> handlers.Iface.on_timer me ~now ~id s);
                     loop ()
                 | None -> (
                     match Mailbox.pop_opt mb with
                     | Some env ->
                         process_env ~now env;
                         loop ()
                     | None ->
                         Mailbox.wait mb;
                         loop ()))
       in
       loop ()
     with e -> record_failure e)
    [@gcs.lint.allow "P2" (* captured for re-raise after the joins *)];
    (me, !state, !events)
  in
  (* Inputs at or before time zero are in the mailboxes before any domain
     exists: every node handles its whole initial workload ahead of any
     packet, on either backend. *)
  let inputs =
    List.stable_sort (fun (a, _, _) (b, _, _) -> Float.compare a b) inputs
  in
  (* Input-swap tamper: exchange the payloads of one processor's [k]-th
     and [k+1]-th submissions (0-based, in schedule order), keeping the
     times — the transport pretending to reorder a client's stream. *)
  let inputs =
    match tamper.swap_inputs_at with
    | None -> inputs
    | Some (p, k) ->
        let arr = Array.of_list inputs in
        let mine =
          List.filter_map
            (fun (i, q) -> if Proc.equal q p then Some i else None)
            (List.mapi (fun i (_, q, _) -> (i, q)) inputs)
        in
        (match (List.nth_opt mine k, List.nth_opt mine (k + 1)) with
        | Some i, Some j ->
            let ti, pi, vi = arr.(i) and tj, pj, vj = arr.(j) in
            arr.(i) <- (ti, pi, vj);
            arr.(j) <- (tj, pj, vi)
        | _ -> ());
        Array.to_list arr
  in
  let now_inputs, later_inputs = List.partition (fun (t, _, _) -> t <= 0.0) inputs in
  List.iter (fun (_, p, input) -> deliver p (Input input)) now_inputs;
  let pending_inputs = ref later_inputs in
  (* Causal admission: [admit] can hold an input past its scheduled time
     until the outputs counter shows the previous submissions fully
     processed — wall-clock spacing alone cannot serialize submissions
     when the controller domain is descheduled longer than the gap, and
     a collapsed gap lets a timestamp protocol pick a different (valid)
     total order than the reference run. [admit_grace] bounds the hold:
     an input stalled that long past its last sibling is injected
     anyway, so an instrumented (mutant) run that withholds outputs
     degrades to today's time-based pacing instead of wedging. *)
  let injected = ref (List.length now_inputs) in
  let last_inject = ref 0.0 in
  let admit_grace = 0.05 in
  let pending_failures =
    ref (List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) failures)
  in
  let statuses_applied = ref 0 in
  let domains = List.map (fun p -> Domain.spawn (fun () -> node p)) procs in
  (* The controller runs in the calling domain: schedule keeping, ugly
     deliveries, the ticker heartbeat, and the stop decision. *)
  let rec control () =
    if Atomic.get stopped then ()
    else begin
      let now = Clock.now clock in
      let rec apply_failures () =
        match !pending_failures with
        | (t, event) :: rest when t <= now ->
            Lock.with_lock status_lock (fun () ->
                tracker := Fstatus.apply !tracker event);
            record (Timed.Status event);
            incr statuses_applied;
            pending_failures := rest;
            apply_failures ()
        | _ -> ()
      in
      apply_failures ();
      let admitted () =
        match admit with
        | None -> true
        | Some f ->
            f ~outputs:(Atomic.get outputs) ~index:!injected
            || now -. !last_inject >= admit_grace
      in
      let rec inject () =
        match !pending_inputs with
        | (t, p, input) :: rest when t <= now && admitted () ->
            deliver p (Input input);
            incr injected;
            last_inject := now;
            pending_inputs := rest;
            inject ()
        | _ -> ()
      in
      inject ();
      let due =
        Lock.with_lock wheel_lock (fun () ->
            let due, still =
              List.partition (fun (t, _, _) -> t <= now) !wheel
            in
            wheel := still;
            due)
      in
      List.iter
        (fun (_, dst, env) -> deliver dst env)
        (List.stable_sort (fun (a, _, _) (b, _, _) -> Float.compare a b) due);
      (match stop with
      | Some f when f ~now ~outputs:(Atomic.get outputs) ->
          Atomic.set stopped true
      | _ -> ());
      if now >= until then Atomic.set stopped true;
      if not (Atomic.get stopped) then begin
        Proc.Map.iter (fun _ mb -> Mailbox.tick mb) mailboxes;
        Clock.sleep config.poll_interval;
        control ()
      end
    end
  in
  control ();
  Atomic.set stopped true;
  (* Closing (a state, not an edge) wakes nodes that parked after the stop
     flag was set — a final tick could race and strand them. *)
  Proc.Map.iter (fun _ mb -> Mailbox.close mb) mailboxes;
  let finals = List.map Domain.join domains in
  (match Atomic.get fail_cell with Some e -> raise e | None -> ());
  let final_states =
    List.fold_left (fun m (p, s, _) -> Proc.Map.add p s m) Proc.Map.empty finals
  in
  let events_processed =
    List.fold_left (fun acc (_, _, e) -> acc + e) 0 finals
  in
  let sent = Atomic.get packets_sent in
  let dropped = Atomic.get packets_dropped in
  Metrics.incr ~by:sent metrics "bus.packets_sent";
  Metrics.incr ~by:(Atomic.get sent_self) metrics "bus.packets_sent.self";
  Metrics.incr ~by:dropped metrics "bus.packets_dropped";
  Metrics.incr ~by:events_processed metrics "bus.events_processed";
  Metrics.incr ~by:!statuses_applied metrics "bus.statuses_applied";
  Metrics.set_gauge metrics "bus.wall_s" (Clock.now clock);
  {
    Iface.trace = List.rev !trace_rev;
    final_states;
    events_processed;
    packets_sent = sent;
    packets_dropped = dropped;
    statuses_applied = !statuses_applied;
    metrics;
  }

let backend ?(config = default_config) ?(tamper = no_tamper) ?admit
    ?lock_registry () : Iface.backend =
  (module struct
    let name = "bus"

    let run ?metrics ?observe ?stop codec ~procs ~handlers ~init ~inputs
        ~failures ~until ~seed =
      run ~config ~tamper ?admit ?metrics ?lock_registry ?observe ?stop codec
        ~procs ~handlers ~init ~inputs ~failures ~until ~seed
  end)
