(** Invariant checking over executions.

    The paper proves its invariants "by induction on the length of an
    execution"; here we check them on every state of (many, randomized)
    executions. A violation pinpoints the step index and the action that
    broke the invariant. *)

type 's t = { name : string; check : 's -> (unit, string) result }

val make : string -> ('s -> bool) -> 's t
(** Invariant from a boolean predicate (violation message is generic). *)

val make_explained : string -> ('s -> (unit, string) result) -> 's t

type 'a violation = {
  invariant : string;
  step_index : int;  (** 0 = initial state, k = after the k-th step *)
  culprit : 'a option;  (** action of the step leading to the bad state *)
  detail : string;
}

val first_failure : 's t list -> 's -> (string * string) option
(** Check a single state (no execution context): the first failing
    invariant as [(name, detail)]. Used by harnesses that only see final
    states — e.g. the schedule fuzzer's node-local oracle. *)

val first_violation :
  's t list -> ('s, 'a) Exec.execution -> 'a violation option
(** First violation in the execution (checking the initial state and the
    state after every step), if any. *)

val check_random :
  ('s, 'a) Automaton.t ->
  scheduler:('s, 'a) Exec.scheduler ->
  seeds:int list ->
  steps:int ->
  's t list ->
  ('a violation * int) option
(** Run one execution per seed; return the first violation together with the
    seed that produced it. *)
