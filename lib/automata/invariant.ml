type 's t = { name : string; check : 's -> (unit, string) result }

let make name pred =
  {
    name;
    check = (fun s -> if pred s then Ok () else Error "predicate false");
  }

let make_explained name check = { name; check }

type 'a violation = {
  invariant : string;
  step_index : int;
  culprit : 'a option;
  detail : string;
}

let check_state invariants state step_index culprit =
  let rec go = function
    | [] -> None
    | inv :: rest -> (
        match inv.check state with
        | Ok () -> go rest
        | Error detail ->
            Some { invariant = inv.name; step_index; culprit; detail })
  in
  go invariants

let first_failure invariants state =
  match check_state invariants state 0 None with
  | None -> None
  | Some v -> Some (v.invariant, v.detail)

let first_violation invariants (e : ('s, 'a) Exec.execution) =
  match check_state invariants e.Exec.init 0 None with
  | Some v -> Some v
  | None ->
      let rec go i = function
        | [] -> None
        | step :: rest -> (
            match
              check_state invariants step.Exec.post i (Some step.Exec.action)
            with
            | Some v -> Some v
            | None -> go (i + 1) rest)
      in
      go 1 e.Exec.steps

let check_random automaton ~scheduler ~seeds ~steps invariants =
  let rec go = function
    | [] -> None
    | seed :: rest -> (
        let prng = Gcs_stdx.Prng.create seed in
        let e = Exec.run automaton ~scheduler ~steps ~prng in
        match first_violation invariants e with
        | Some v -> Some (v, seed)
        | None -> go rest)
  in
  go seeds
