open Gcs_core
open Gcs_impl

type outcome = {
  scenario : Scenario.t;
  seed : int;
  until : float;
  stabilization : float;
  to_conformance : (unit, string) result;
  vs_conformance : (unit, string) result;
  bound : To_property.report option;
  bcasts : int;
  deliveries : int;
  packets_sent : int;
  packets_dropped : int;
  events_processed : int;
  metrics : Gcs_stdx.Metrics.t;
}

(* Extra slack past the theoretical horizon [l + b' + d']: leaves room for
   workload submitted shortly before stabilization to drain, so the
   delivery-bound check is not vacuously tight. Shared by the TO and
   bare-ring harnesses. *)
let horizon_slack = 60.0

let bounds (config : To_service.config) =
  let vs = config.To_service.vs in
  let delta = vs.Vs_node.delta in
  let b' = Vs_node.impl_b vs +. Vs_node.impl_d vs in
  let d' = Vs_node.impl_d vs +. (4.0 *. delta) in
  (b', d')

let default_until ~config scenario =
  let b', d' = bounds config in
  Scenario.stabilization_time scenario +. b' +. d' +. horizon_slack

let default_workload ~procs ?(from_time = 10.0) ?(spacing = 15.0) ?(count = 8)
    () =
  List.concat_map
    (fun (i, p) ->
      List.init count (fun k ->
          ( from_time +. (float_of_int k *. spacing) +. (0.17 *. float_of_int i),
            p,
            Printf.sprintf "n%d.%d" p k )))
    (List.mapi (fun i p -> (i, p)) procs)

(* Split the client-trace bcast/delivery counts at the scenario's
   stabilization time l, so a snapshot shows how much of the workload ran
   under faults versus after the final heal. *)
let record_phase_metrics metrics ~stabilization trace =
  let count name = Gcs_stdx.Metrics.incr metrics name in
  List.iter
    (fun (time, action) ->
      let phase = if time <= stabilization then "pre" else "post" in
      match action with
      | To_action.Bcast _ -> count (Printf.sprintf "harness.bcasts.%s_stabilization" phase)
      | To_action.Brcv _ ->
          count (Printf.sprintf "harness.deliveries.%s_stabilization" phase)
      | _ -> ())
    (Timed.actions trace)

let run ?metrics ?engine ?backend ?stop ?workload ~config ?until ~seed scenario
    =
  let metrics =
    match metrics with Some m -> m | None -> Gcs_stdx.Metrics.create ()
  in
  let procs = config.To_service.vs.Vs_node.procs in
  let until =
    match until with Some u -> u | None -> default_until ~config scenario
  in
  let workload =
    match workload with
    | Some w -> w
    | None -> default_workload ~procs ()
  in
  let failures = Scenario.compile ~procs scenario in
  let run =
    match backend with
    | Some backend ->
        To_service.run_on ~metrics ?stop ~backend config ~workload ~failures
          ~until ~seed
    | None ->
        To_service.run ~metrics ?engine config ~workload ~failures ~until ~seed
  in
  record_phase_metrics metrics
    ~stabilization:(Scenario.stabilization_time scenario)
    (To_service.client_trace run);
  let to_conformance =
    Result.map_error
      (Format.asprintf "%a" To_trace_checker.pp_error)
      (To_service.to_conforms config run)
  in
  let vs_conformance =
    Result.map_error
      (Format.asprintf "%a" Vs_trace_checker.pp_error)
      (To_service.vs_conforms config run)
  in
  let bound =
    if Scenario.all_good ~procs (Scenario.final_world ~procs scenario) then
      let b', d' = bounds config in
      Some
        (To_property.check ~b:b' ~d:d' ~q:procs ~horizon:until
           (To_service.client_trace run))
    else None
  in
  let bcasts =
    List.length
      (List.filter
         (fun (_, a) -> match a with To_action.Bcast _ -> true | _ -> false)
         (Timed.actions (To_service.client_trace run)))
  in
  {
    scenario;
    seed;
    until;
    stabilization = Scenario.stabilization_time scenario;
    to_conformance;
    vs_conformance;
    bound;
    bcasts;
    deliveries = To_service.deliveries run;
    packets_sent = run.To_service.packets_sent;
    packets_dropped = run.To_service.packets_dropped;
    events_processed = run.To_service.events_processed;
    metrics;
  }

let run_batch ?jobs ?engine ?workload ~config ?until ?events ~seeds () =
  let procs = config.To_service.vs.Vs_node.procs in
  Gcs_stdx.Pool.map ?jobs
    (fun seed ->
      let scenario = Gen.scenario ~procs ?events ~seed () in
      run ?engine ?workload ~config ?until ~seed scenario)
    seeds

let passed outcome =
  Result.is_ok outcome.to_conformance
  && Result.is_ok outcome.vs_conformance
  && match outcome.bound with
     | None -> true
     | Some report -> To_property.holds report

let pp ppf outcome =
  let conformance = function Ok () -> "OK" | Error e -> "FAILED: " ^ e in
  Format.fprintf ppf
    "@[<v>scenario %s (seed %d)@,\
     simulated until t=%.1f, stabilization l=%.1f@,\
     workload: %d bcasts, %d deliveries@,\
     network: %d packets (%d dropped), %d events@,\
     TO-machine conformance: %s@,\
     VS-machine conformance: %s"
    outcome.scenario.Scenario.name outcome.seed outcome.until
    outcome.stabilization outcome.bcasts outcome.deliveries
    outcome.packets_sent outcome.packets_dropped outcome.events_processed
    (conformance outcome.to_conformance)
    (conformance outcome.vs_conformance);
  (match outcome.bound with
  | None ->
      Format.fprintf ppf "@,delivery bound: n/a (scenario ends degraded)"
  | Some report ->
      if To_property.holds report then
        Format.fprintf ppf
          "@,delivery bound: OK (%d obligations, max latency %.1f)"
          report.To_property.obligations report.To_property.max_latency
      else
        Format.fprintf ppf "@,delivery bound: FAILED %a" To_property.pp_report
          report);
  Format.fprintf ppf "@,verdict: %s@]"
    (if passed outcome then "PASS" else "FAIL")

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json outcome =
  let conformance = function
    | Ok () -> {|"ok"|}
    | Error e -> Printf.sprintf {|"%s"|} (json_escape e)
  in
  let bound =
    match outcome.bound with
    | None -> "null"
    | Some report ->
        Printf.sprintf
          {|{"holds":%b,"stabilization":%.3f,"obligations":%d,"violations":%d,"max_latency":%.3f}|}
          (To_property.holds report)
          report.To_property.stabilization_time report.To_property.obligations
          (List.length report.To_property.violations)
          report.To_property.max_latency
  in
  Printf.sprintf
    {|{"scenario":"%s","seed":%d,"until":%.3f,"stabilization":%.3f,"to_conformance":%s,"vs_conformance":%s,"bound":%s,"bcasts":%d,"deliveries":%d,"packets_sent":%d,"packets_dropped":%d,"events_processed":%d,"passed":%b}|}
    (json_escape outcome.scenario.Scenario.name)
    outcome.seed outcome.until outcome.stabilization
    (conformance outcome.to_conformance)
    (conformance outcome.vs_conformance)
    bound outcome.bcasts outcome.deliveries outcome.packets_sent
    outcome.packets_dropped outcome.events_processed (passed outcome)

let to_json_with_metrics outcome =
  let base = to_json outcome in
  (* [to_json] emits a single flat object; splice the metrics in before
     the closing brace so consumers see one object. *)
  Printf.sprintf "%s,\"metrics\":%s}"
    (String.sub base 0 (String.length base - 1))
    (Gcs_stdx.Metrics.to_json outcome.metrics)

type vs_outcome = {
  vs_ring_conformance : (unit, string) result;
  views_installed : int;
  ring_deliveries : int;
}

let run_vs_ring ?protocol ?workload ~config ?until ~seed scenario =
  let procs = config.Vs_node.procs in
  let until =
    match until with
    | Some u -> u
    | None ->
        Scenario.stabilization_time scenario
        +. Vs_node.impl_b config +. Vs_node.impl_d config +. horizon_slack
  in
  let workload =
    match workload with
    | Some w -> w
    | None ->
        (* Default: the TO harness workload with an "r" prefix so the two
           layers' values cannot be confused in mixed traces. *)
        List.map
          (fun (t, p, v) -> (t, p, Printf.sprintf "r%s" v))
          (default_workload ~procs ())
  in
  let failures = Scenario.compile ~procs scenario in
  let run =
    Vs_service.run ?protocol config ~workload ~failures ~until ~seed
  in
  {
    vs_ring_conformance =
      Result.map_error
        (Format.asprintf "%a" Vs_trace_checker.pp_error)
        (Vs_service.conforms ~equal_msg:String.equal config run);
    views_installed = Vs_service.views_installed_total run;
    ring_deliveries =
      List.length
        (List.filter
           (fun (_, a) ->
             match a with Vs_action.Gprcv _ -> true | _ -> false)
           (Timed.actions run.Vs_service.trace));
  }
