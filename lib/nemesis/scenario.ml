open Gcs_core

type op =
  | Partition of Proc.t list list
  | Heal
  | Crash of Proc.t
  | Recover of Proc.t
  | Degrade of Proc.t * Proc.t * Fstatus.t
  | Slow of Proc.t
  | Wake of Proc.t

type step = { at : float; op : op }

type t = { name : string; steps : step list }

let v name steps =
  { name; steps = List.stable_sort (fun a b -> compare a.at b.at) steps }

let at time op = { at = time; op }

let repeat ~from ~every ~times f =
  List.concat
    (List.init times (fun i ->
         List.map (at (from +. (float_of_int i *. every))) (f i)))

type world = {
  parts : Proc.t list list;
  crashed : Proc.Set.t;
  slow : Proc.Set.t;
  degraded : ((Proc.t * Proc.t) * Fstatus.t) list;
}

let initial_world ~procs =
  { parts = [ procs ]; crashed = Proc.Set.empty; slow = Proc.Set.empty;
    degraded = [] }

let check_proc ~procs p =
  if not (List.mem p procs) then
    invalid_arg (Printf.sprintf "nemesis: unknown processor %d" p)

let normalize_parts ~procs parts =
  let mentioned = List.concat parts in
  List.iter (check_proc ~procs) mentioned;
  let sorted = List.sort Proc.compare mentioned in
  let rec dup = function
    | a :: (b :: _ as rest) -> Proc.equal a b || dup rest
    | [] | [ _ ] -> false
  in
  if dup sorted then invalid_arg "nemesis: overlapping partition parts";
  let missing = List.filter (fun p -> not (List.mem p mentioned)) procs in
  List.filter (fun part -> part <> []) parts
  @ List.map (fun p -> [ p ]) missing

let apply_op ~procs world op =
  match op with
  | Partition parts -> { world with parts = normalize_parts ~procs parts }
  | Heal -> { world with parts = [ procs ]; degraded = [] }
  | Crash p ->
      check_proc ~procs p;
      { world with crashed = Proc.Set.add p world.crashed }
  | Recover p ->
      check_proc ~procs p;
      { world with crashed = Proc.Set.remove p world.crashed }
  | Degrade (p, q, status) ->
      check_proc ~procs p;
      check_proc ~procs q;
      let degraded = List.remove_assoc (p, q) world.degraded in
      let degraded =
        if Fstatus.equal status Fstatus.Good then degraded
        else ((p, q), status) :: degraded
      in
      { world with degraded }
  | Slow p ->
      check_proc ~procs p;
      { world with slow = Proc.Set.add p world.slow }
  | Wake p ->
      check_proc ~procs p;
      { world with slow = Proc.Set.remove p world.slow }

let proc_status world p =
  if Proc.Set.mem p world.crashed then Fstatus.Bad
  else if Proc.Set.mem p world.slow then Fstatus.Ugly
  else Fstatus.Good

let same_part world p q =
  List.exists (fun part -> List.mem p part && List.mem q part) world.parts

let link_status world p q =
  if Proc.Set.mem p world.crashed || Proc.Set.mem q world.crashed then
    Fstatus.Bad
  else if not (same_part world p q) then Fstatus.Bad
  else
    match List.assoc_opt (p, q) world.degraded with
    | Some s -> s
    | None -> Fstatus.Good

let final_world ~procs scenario =
  List.fold_left
    (fun w step -> apply_op ~procs w step.op)
    (initial_world ~procs) scenario.steps

let all_good ~procs world =
  Proc.Set.is_empty world.crashed
  && Proc.Set.is_empty world.slow
  && world.degraded = []
  && (match world.parts with
     | [ part ] -> List.for_all (fun p -> List.mem p part) procs
     | _ -> false)

let stabilize ~procs ?at steps =
  let world =
    List.fold_left (fun w step -> apply_op ~procs w step.op) (initial_world ~procs) steps
  in
  let at =
    match at with
    | Some t -> t
    | None -> List.fold_left (fun acc step -> max acc step.at) 0.0 steps +. 1.0
  in
  steps
  @ List.map (fun p -> { at; op = Wake p }) (Proc.Set.elements world.slow)
  @ List.map (fun p -> { at; op = Recover p }) (Proc.Set.elements world.crashed)
  @ [ { at; op = Heal } ]

let compile ~procs scenario =
  let _, events_rev =
    List.fold_left
      (fun (world, acc) step ->
        let world = apply_op ~procs world step.op in
        let events =
          Fstatus.matrix_events ~procs ~proc_status:(proc_status world)
            ~link_status:(link_status world)
        in
        (world, List.rev_append (List.map (fun e -> (step.at, e)) events) acc))
      (initial_world ~procs, [])
      scenario.steps
  in
  List.rev events_rev

let stabilization_time scenario =
  List.fold_left (fun acc step -> max acc step.at) 0.0 scenario.steps

let pp_op ppf = function
  | Partition parts ->
      Format.fprintf ppf "partition %s"
        (String.concat "/"
           (List.map
              (fun part -> String.concat "," (List.map string_of_int part))
              parts))
  | Heal -> Format.pp_print_string ppf "heal"
  | Crash p -> Format.fprintf ppf "crash %d" p
  | Recover p -> Format.fprintf ppf "recover %d" p
  | Degrade (p, q, s) ->
      Format.fprintf ppf "degrade (%d,%d) %a" p q Fstatus.pp s
  | Slow p -> Format.fprintf ppf "slow %d" p
  | Wake p -> Format.fprintf ppf "wake %d" p

let pp ppf scenario =
  Format.fprintf ppf "@[<v2>scenario %s:" scenario.name;
  List.iter
    (fun step -> Format.fprintf ppf "@,t=%7.1f  %a" step.at pp_op step.op)
    scenario.steps;
  Format.fprintf ppf "@]"

(* ------------------------- built-in scenarios ------------------------- *)

let split ~procs =
  let n = List.length procs in
  let majority = List.filteri (fun i _ -> i < (n / 2) + 1) procs in
  let minority = List.filter (fun p -> not (List.mem p majority)) procs in
  (majority, minority)

let split_heal ~procs =
  let majority, minority = split ~procs in
  v "split-heal"
    [ at 60.0 (Partition [ majority; minority ]); at 300.0 Heal ]

let quorum_flap ~procs =
  (* The quorum moves between sides across successive partitions: each
     flap isolates a different minority, so no side keeps a primary view
     for long. Ends healed. *)
  let n = List.length procs in
  let rotate k =
    List.filteri (fun i _ -> i < n - 2) (List.map (fun p -> (p + k) mod n) procs)
  in
  v "quorum-flap"
    (repeat ~from:60.0 ~every:45.0 ~times:5 (fun i ->
         if i mod 2 = 1 then [ Heal ]
         else [ Partition [ List.sort Proc.compare (rotate i) ] ])
    @ [ at 320.0 Heal ])

let minority_isolation ~procs =
  let rest = List.filteri (fun i _ -> i < List.length procs - 1) procs in
  let last = List.nth procs (List.length procs - 1) in
  v "minority-isolation"
    [ at 60.0 (Partition [ rest; [ last ] ]); at 280.0 Heal ]

let leader ~procs =
  (* The ring leader (smallest id) of the initial primary view. *)
  match procs with
  | [] -> invalid_arg "nemesis: scenario needs at least one processor"
  | p :: _ -> p

let crash_primary ~procs =
  (* Crash the leader mid-run, recover it, and end fully healed. *)
  let leader = leader ~procs in
  v "crash-primary"
    [
      at 80.0 (Crash leader);
      at 240.0 (Recover leader);
      at 260.0 Heal;
    ]

let degrade_links ~procs =
  match procs with
  | p :: q :: r :: _ ->
      v "degrade-links"
        [
          at 50.0 (Degrade (p, q, Fstatus.Ugly));
          at 50.0 (Degrade (q, p, Fstatus.Ugly));
          at 120.0 (Slow r);
          at 200.0 (Wake r);
          at 220.0 (Degrade (p, q, Fstatus.Good));
          at 220.0 (Degrade (q, p, Fstatus.Good));
          at 260.0 Heal;
        ]
  | _ -> v "degrade-links" [ at 260.0 Heal ]

let churn ~procs =
  let majority, minority = split ~procs in
  let leader = leader ~procs in
  v "churn"
    (repeat ~from:50.0 ~every:40.0 ~times:6 (fun i ->
         match i mod 3 with
         | 0 -> [ Partition [ majority; minority ] ]
         | 1 -> [ Heal; Crash leader ]
         | _ -> [ Recover leader; Heal ])
    @ [ at 300.0 (Recover leader); at 300.0 Heal ])

let builtins ~procs =
  List.map
    (fun scenario -> (scenario.name, scenario))
    [
      split_heal ~procs;
      quorum_flap ~procs;
      minority_isolation ~procs;
      crash_primary ~procs;
      degrade_links ~procs;
      churn ~procs;
    ]

let find_builtin ~procs name = List.assoc_opt name (builtins ~procs)
