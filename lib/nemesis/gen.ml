open Gcs_core

(* Track the crashed/slowed sets while generating so recoveries target
   processors that are actually down and the crash count stays below a
   quorum (the run should keep making progress somewhere). *)
type gstate = { crashed : Proc.t list; slow : Proc.t list }

let draw_steps ~procs ~events ~start ~spacing ~prng g0 =
  let n = List.length procs in
  let max_crashed = max 1 ((n - 1) / 2) in
  let statuses = [ Fstatus.Ugly; Fstatus.Bad; Fstatus.Good ] in
  let random_parts () =
    let shuffled = Gcs_stdx.Prng.shuffle prng procs in
    let k = 1 + Gcs_stdx.Prng.int prng (max 1 (n - 1)) in
    [
      Gcs_stdx.Seqx.take k shuffled |> List.sort Proc.compare;
      Gcs_stdx.Seqx.drop k shuffled |> List.sort Proc.compare;
    ]
  in
  let rec draw g =
    match Gcs_stdx.Prng.int prng 8 with
    | 0 | 1 -> (g, Scenario.Partition (random_parts ()))
    | 2 -> (g, Scenario.Heal)
    | 3 when List.length g.crashed < max_crashed ->
        let p = Gcs_stdx.Prng.pick_exn prng procs in
        if List.mem p g.crashed then draw g
        else ({ g with crashed = p :: g.crashed }, Scenario.Crash p)
    | 4 -> (
        match Gcs_stdx.Prng.pick prng g.crashed with
        | Some p ->
            ( { g with crashed = List.filter (fun q -> q <> p) g.crashed },
              Scenario.Recover p )
        | None -> draw g)
    | 5 ->
        let p = Gcs_stdx.Prng.pick_exn prng procs in
        let q = Gcs_stdx.Prng.pick_exn prng procs in
        if Proc.equal p q then draw g
        else
          (g, Scenario.Degrade (p, q, Gcs_stdx.Prng.pick_exn prng statuses))
    | 6 ->
        let p = Gcs_stdx.Prng.pick_exn prng procs in
        if List.mem p g.slow then draw g
        else ({ g with slow = p :: g.slow }, Scenario.Slow p)
    | _ -> (
        match Gcs_stdx.Prng.pick prng g.slow with
        | Some p ->
            ( { g with slow = List.filter (fun q -> q <> p) g.slow },
              Scenario.Wake p )
        | None -> draw g)
  in
  let g, steps_rev =
    List.fold_left
      (fun (g, acc) i ->
        let t =
          start
          +. (float_of_int i *. spacing)
          +. (Gcs_stdx.Prng.float prng *. spacing /. 2.0)
        in
        let g, op = draw g in
        (g, Scenario.at t op :: acc))
      (g0, [])
      (List.init events (fun i -> i))
  in
  (g, List.rev steps_rev)

let steps ~procs ?(events = 12) ?(start = 40.0) ?(spacing = 40.0) ~prng () =
  snd (draw_steps ~procs ~events ~start ~spacing ~prng { crashed = []; slow = [] })

let scenario ~procs ?(events = 12) ?(start = 40.0) ?(spacing = 40.0) ~seed () =
  let prng = Gcs_stdx.Prng.create seed in
  let g, steps =
    draw_steps ~procs ~events ~start ~spacing ~prng { crashed = []; slow = [] }
  in
  let stabilize = start +. (float_of_int (events + 1) *. spacing) in
  let finale =
    List.map (fun p -> Scenario.at stabilize (Scenario.Wake p)) g.slow
    @ List.map (fun p -> Scenario.at stabilize (Scenario.Recover p)) g.crashed
    @ [ Scenario.at stabilize Scenario.Heal ]
  in
  Scenario.v (Printf.sprintf "random-%d" seed) (steps @ finale)
