open Gcs_core

(** Seeded random nemesis: adversarial schedules generated from a
    {!Gcs_stdx.Prng} seed, so every run is reproducible from one printed
    integer. The generated scenario always ends with every processor
    recovered and a final heal, making the post-stabilization delivery
    bound of Theorem 7.2 applicable. *)

val steps :
  procs:Proc.t list ->
  ?events:int ->
  ?start:float ->
  ?spacing:float ->
  prng:Gcs_stdx.Prng.t ->
  unit ->
  Scenario.step list
(** The raw fault draws of {!scenario} — no recovery finale — from a
    caller-owned generator, so the fuzzer can draw fresh schedule material
    (and single-op insertions with [~events:1]) from its own PRNG stream
    and stabilize the result itself ({!Scenario.stabilize}). *)

val scenario :
  procs:Proc.t list ->
  ?events:int ->
  ?start:float ->
  ?spacing:float ->
  seed:int ->
  unit ->
  Scenario.t
(** [scenario ~procs ~seed ()] draws [events] fault injections (default
    12) spaced [spacing] apart (default 40.0) starting at [start]
    (default 40.0), then recovers everything. The scenario is a pure
    function of its arguments. Its name is ["random-<seed>"]. *)
