open Gcs_core
open Gcs_impl

(** Run the end-to-end TO service (VStoTO over the Section 8 VS
    implementation) under a nemesis scenario and check everything the
    paper promises:

    - the client trace conforms to TO-machine ({!To_trace_checker});
    - the VS-layer trace conforms to VS-machine ({!Vs_trace_checker});
    - when the scenario ends with the world fully good, the conditional
      delivery bound of Theorem 7.2 holds: every TO order is delivered
      within [b' + d'] of the final stabilization point (checked with
      this implementation's conservative bounds [Vs_node.impl_b] /
      [Vs_node.impl_d]). *)

type outcome = {
  scenario : Scenario.t;
  seed : int;
  until : float;
  stabilization : float;
  to_conformance : (unit, string) result;
  vs_conformance : (unit, string) result;
  bound : To_property.report option;
      (** [None] when the scenario does not end fully good (the premise
          of TO-property would be vacuous). *)
  bcasts : int;
  deliveries : int;
  packets_sent : int;
  packets_dropped : int;
  events_processed : int;
  metrics : Gcs_stdx.Metrics.t;
      (** full registry of the run ([engine.*], [vs.*], [to.*]) plus the
          harness's own [harness.*] counters: bcast/delivery counts split
          at the scenario stabilization time [l]
          ([harness.bcasts.pre_stabilization] etc.) *)
}

val bounds : To_service.config -> float * float
(** [(b', d')] for the Theorem 7.1 shape: TO stabilizes within
    [b' = impl_b + impl_d] and delivers within [d' = impl_d + 4δ]. *)

val default_until : config:To_service.config -> Scenario.t -> float
(** Stabilization time plus [b' + d'] plus slack — the shortest horizon
    at which the delivery-bound check is not vacuous. *)

val default_workload :
  procs:Proc.t list ->
  ?from_time:float ->
  ?spacing:float ->
  ?count:int ->
  unit ->
  (float * Proc.t * Value.t) list
(** Distinct values per origin (required by {!To_property.check}). *)

val run :
  ?metrics:Gcs_stdx.Metrics.t ->
  ?engine:Gcs_sim.Engine.config ->
  ?backend:Gcs_transport.Iface.backend ->
  ?stop:(now:float -> outputs:int -> bool) ->
  ?workload:(float * Proc.t * Value.t) list ->
  config:To_service.config ->
  ?until:float ->
  seed:int ->
  Scenario.t ->
  outcome
(** On the default simulator path the outcome is a pure function of the
    arguments. [backend] reruns the identical harness — same automata,
    same oracles — on a pluggable transport (e.g. {!Gcs_transport.Bus}),
    where times in the scenario and workload are wall-clock seconds and
    the outcome depends on real scheduling; [engine] is ignored then.
    [stop] is forwarded to the backend so wall-clock runs can end as soon
    as the workload visibly drained. *)

val run_batch :
  ?jobs:int ->
  ?engine:Gcs_sim.Engine.config ->
  ?workload:(float * Proc.t * Value.t) list ->
  config:To_service.config ->
  ?until:float ->
  ?events:int ->
  seeds:int list ->
  unit ->
  outcome list
(** Run one {!Gen.scenario} per seed through {!run} on a
    {!Gcs_stdx.Pool} of [jobs] domains (default: [GCS_JOBS]). Each run
    owns its PRNG, so runs are independent and the outcome list is
    bit-identical to the sequential [List.map] — in seed order — at any
    [jobs]. *)

val passed : outcome -> bool
val pp : Format.formatter -> outcome -> unit

val to_json : outcome -> string
(** One flat JSON object of the checker-facing fields. Deterministic for
    a given (scenario, seed): batch runs compare these strings across job
    counts. *)

val to_json_with_metrics : outcome -> string
(** {!to_json} with a ["metrics"] member appended: the full
    {!Gcs_stdx.Metrics.to_json} snapshot. Used by failure dumps and
    [gcs nemesis --metrics]. *)

(** {2 Impl-layer token ring under a scenario}

    The bare [Vs_node] fleet (no VStoTO on top), with string client
    messages, checked against VS-machine. *)

type vs_outcome = {
  vs_ring_conformance : (unit, string) result;
  views_installed : int;
  ring_deliveries : int;
}

val run_vs_ring :
  ?protocol:Vs_node.protocol ->
  ?workload:(float * Proc.t * string) list ->
  config:Vs_node.config ->
  ?until:float ->
  seed:int ->
  Scenario.t ->
  vs_outcome
(** The workload defaults to {!default_workload} with an ["r"] value
    prefix; a caller-supplied workload is used verbatim. *)
