open Gcs_core

(** Declarative fault-injection scenarios (the nemesis DSL).

    A scenario is a named, timed schedule of operations over the fault
    model of Section 3.2: partitions, heals, crashes, recoveries and
    link degradations. Scenarios are {e stateful} descriptions — each
    operation updates an abstract world (current partition, crashed set,
    slowed set, degraded links) — and compile to the engine's
    failure-status event schedule by emitting the full status matrix of
    the world at every step. The implied statuses therefore never depend
    on the order of earlier low-level events, and the time of the last
    step is the stabilization point [l] used by TO-property(b,d,Q). *)

type op =
  | Partition of Proc.t list list
      (** install a clean partition; processors not mentioned become
          singleton parts. Parts must be disjoint. *)
  | Heal  (** one connected component again; clears degradations *)
  | Crash of Proc.t  (** processor bad, all its links bad *)
  | Recover of Proc.t
  | Degrade of Proc.t * Proc.t * Fstatus.t
      (** override a directed link's status within its part
          ([Degrade (p, q, Good)] removes the override) *)
  | Slow of Proc.t  (** processor ugly (runs at nondeterministic speed) *)
  | Wake of Proc.t  (** processor good again after [Slow] *)

type step = { at : float; op : op }

type t = { name : string; steps : step list }

val v : string -> step list -> t
(** Build a scenario; steps are sorted by time (stable). *)

val at : float -> op -> step

val repeat :
  from:float -> every:float -> times:int -> (int -> op list) -> step list
(** Churn combinator: [repeat ~from ~every ~times f] schedules the
    operations [f i] at time [from +. i *. every] for [i = 0 .. times-1]. *)

(** The abstract world a scenario steps through. *)
type world = {
  parts : Proc.t list list;
  crashed : Proc.Set.t;
  slow : Proc.Set.t;
  degraded : ((Proc.t * Proc.t) * Fstatus.t) list;
}

val initial_world : procs:Proc.t list -> world
val apply_op : procs:Proc.t list -> world -> op -> world
(** Raises [Invalid_argument] on malformed operations (overlapping parts,
    unknown processors). *)

val final_world : procs:Proc.t list -> t -> world
val all_good : procs:Proc.t list -> world -> bool
(** No crashes, no slow processors, one part, no degradations. *)

val stabilize : procs:Proc.t list -> ?at:float -> step list -> step list
(** Append a finale — wake every slowed processor, recover every crashed
    one, then heal — at time [at] (default: last step time + 1.0), so the
    resulting scenario ends with the world fully good and the
    post-stabilization delivery bound applies. Used by the fuzzer, whose
    mutated schedules must stay within the Theorem 7.2 premise. *)

val compile : procs:Proc.t list -> t -> (float * Fstatus.event) list
(** The engine failure schedule: the full status matrix at each step. *)

val stabilization_time : t -> float
(** Time of the last step; 0.0 for the empty scenario. *)

val pp : Format.formatter -> t -> unit

val builtins : procs:Proc.t list -> (string * t) list
(** Named built-in scenarios over a processor set: clean partition+heal,
    quorum flapping, minority isolation, crash/recover of a primary-view
    member, link degradation, periodic churn. All end with the world
    fully good, so the post-stabilization delivery bound applies. *)

val find_builtin : procs:Proc.t list -> string -> t option
