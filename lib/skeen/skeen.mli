open Gcs_core
open Gcs_sim

(** Skeen-style timestamp total-order multicast — the third competing
    total-order backend (after VStoTO and the fixed-sequencer baseline),
    and the only one with {e real multi-group addressing}: every
    submission names a destination subset, only those members take part
    in the timestamp agreement, and only they deliver.

    Protocol (per message): the origin sends [Propose] to the
    destinations; each destination bumps its Lamport-style logical clock,
    buffers the message as {e uncommitted} with the proposed timestamp
    [(clock, me)], and replies [Proposal]. Once the origin holds a
    proposal from every destination it sends [Commit] with the maximum —
    the final timestamp. A destination delivers committed messages in
    final-timestamp order, as soon as a committed timestamp is below
    every uncommitted proposal it holds (a proposal lower-bounds the
    final, and [Commit] raises the clock past every delivered final, so
    nothing can later commit below it). The protocol has no retransmit
    path, so completeness holds only on fault-free runs; the safety
    oracles below apply to every run.

    Runs unchanged on the simulator and the multi-domain bus through the
    {!Gcs_transport.Iface} seam. *)

type config = { procs : Proc.t list }

val make_config : procs:Proc.t list -> config
(** Raises [Invalid_argument] on an empty processor list. *)

(** {2 Timestamps and identifiers} *)

type ts = { clock : int; origin : Proc.t }
(** Lamport pair ordered by clock, then proposer id. *)

val ts_compare : ts -> ts -> int

type mid = { sender : Proc.t; seq : int }
(** Message identifier: origin and per-origin submission counter. *)

val mid_compare : mid -> mid -> int

(** {2 Protocol} *)

type input = { value : Value.t; dests : Proc.t list }
(** A client submission with its destination subset. *)

val full_group : Value.t -> input
(** Address the whole group ([dests = []] normalizes to [config.procs]). *)

val normalize_dests : config -> Proc.t list -> Proc.t list
(** Sorted, deduplicated; the empty list means the whole group. Applied
    identically on submission and in the checkers. *)

type packet =
  | Propose of { mid : mid; value : Value.t; dests : Proc.t list }
  | Proposal of { mid : mid; ts : ts }
  | Commit of { mid : mid; ts : ts }

type node

val initial : Proc.t -> node

val handlers : config -> (node, input, packet, Value.t To_action.t) Engine.handlers
(** Exposed so the fuzzer can wrap packet handlers with planted bugs. *)

(** {2 Node observers} *)

val node_clock : node -> int
val node_delivered : node -> int
(** Deliveries performed at this node. *)

val node_pending : node -> int
(** Buffered messages awaiting commit or delivery. *)

val node_outstanding : node -> int
(** Messages this node originated whose proposal round is incomplete. *)

val snapshot_node : node -> string
(** Deterministic serialization of a node's protocol state (clock,
    delivery count, pending entries with proposed/committed timestamps,
    outstanding coordinations) — the raw material for the fuzzer's
    fuzzy-hashed state coverage. Equal states render to equal bytes. *)

(** {2 Byte codec} *)

val encode_packet : packet -> string
val decode_packet : string -> (packet, string) result
(** Total: any input yields [Ok] or [Error], never an exception. *)

val packet_codec : packet Gcs_transport.Iface.codec
val pp_packet : Format.formatter -> packet -> unit

(** {2 Runs} *)

type run = {
  trace : Value.t To_action.t Timed.t;
  final_nodes : node Proc.Map.t;
  packets_sent : int;
  packets_dropped : int;
  events_processed : int;
}

val run :
  ?engine:Engine.config ->
  ?fifo:bool ->
  delta:float ->
  config ->
  workload:(float * Proc.t * input) list ->
  failures:(float * Fstatus.event) list ->
  until:float ->
  seed:int ->
  run
(** Simulator run. [fifo] defaults to [true]: the per-origin FIFO
    guarantee (and the anchored differential workloads) need FIFO links,
    which the bus provides by construction. *)

val run_on :
  ?metrics:Gcs_stdx.Metrics.t ->
  ?observe:(Proc.t -> node -> node -> unit) ->
  ?stop:(now:float -> outputs:int -> bool) ->
  backend:Gcs_transport.Iface.backend ->
  config ->
  workload:(float * Proc.t * input) list ->
  failures:(float * Fstatus.event) list ->
  until:float ->
  seed:int ->
  run
(** The same handlers on a pluggable transport via {!packet_codec}. *)

val deliveries : run -> int

val orders : Proc.t list -> run -> (Proc.t * string list) list
(** Per-node delivery sequences as ["origin:value"] strings, for
    differential comparison between backends. *)

val to_conforms : config -> run -> (unit, To_trace_checker.error) result
(** Classic TO-machine conformance — meaningful only for {e full-group}
    workloads, where everyone must deliver one shared total order. *)

(** {2 Multi-group oracle}

    Partial multicast breaks the single-total-order oracle: two nodes
    only agree on the {e common subsequence} of what they both receive.
    {!check_group_order} checks exactly the Skeen guarantees: deliveries
    only at declared destinations, at most once, causally after
    submission; per-origin FIFO between messages with equal destination
    sets; and pairwise agreement on the relative order of shared
    messages. Workload values must be distinct per origin (same
    precondition as the TO checkers). *)

val check_group_order :
  config ->
  workload:(float * Proc.t * input) list ->
  Value.t To_action.t Timed.t ->
  (unit, string) result

val check_complete :
  config ->
  workload:(float * Proc.t * input) list ->
  Value.t To_action.t Timed.t ->
  (unit, string) result
(** Every destination of every submission delivered — fault-free runs
    only (Skeen has no retransmission). *)

val expected_deliveries : config -> (float * Proc.t * input) list -> int

val node_invariant_failure : node Proc.Map.t -> (string * string) option
(** First violated per-node structural invariant (check name, detail):
    nonnegative clock and delivery count, and no committed entry below
    this node's own proposal for it. *)
