open Gcs_core
open Gcs_sim

type config = { procs : Proc.t list }

let make_config ~procs =
  match procs with
  | [] -> invalid_arg "Skeen.make_config: empty processor list"
  | _ :: _ -> { procs }

(* ---------------------------- timestamps ----------------------------- *)

type ts = { clock : int; origin : Proc.t }

let ts_compare a b =
  match Int.compare a.clock b.clock with
  | 0 -> Proc.compare a.origin b.origin
  | c -> c

type mid = { sender : Proc.t; seq : int }

let mid_compare a b =
  match Proc.compare a.sender b.sender with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

module Mid_map = Map.Make (struct
  type t = mid

  let compare = mid_compare
end)

(* ------------------------------ protocol ----------------------------- *)

type input = { value : Value.t; dests : Proc.t list }

(* Empty destination lists mean "the whole group"; duplicates collapse.
   The checkers apply the same normalization, so a workload and the
   deliveries it causes agree on who the destinations were. *)
let normalize_dests config dests =
  match List.sort_uniq Proc.compare dests with
  | [] -> config.procs
  | ds -> ds

let full_group value = { value; dests = [] }

type packet =
  | Propose of { mid : mid; value : Value.t; dests : Proc.t list }
  | Proposal of { mid : mid; ts : ts }
  | Commit of { mid : mid; ts : ts }

(* Destination-side bookkeeping for one undelivered message. *)
type entry = { value : Value.t; proposed : ts; final : ts option }

(* Origin-side coordination: outstanding proposals for one message. *)
type coord = { c_value : Value.t; c_dests : Proc.t list; proposals : ts Proc.Map.t }

type node = {
  me : Proc.t;
  clock : int;
  next_seq : int;
  coords : coord Mid_map.t;
  pending : entry Mid_map.t;
  delivered : int;
}

let initial me =
  {
    me;
    clock = 0;
    next_seq = 0;
    coords = Mid_map.empty;
    pending = Mid_map.empty;
    delivered = 0;
  }

let node_clock node = node.clock
let node_delivered node = node.delivered
let node_pending node = Mid_map.cardinal node.pending
let node_outstanding node = Mid_map.cardinal node.coords

(* Deterministic node-state serialization for the fuzzer's fuzzy-hashed
   state coverage: Lamport clock, delivery count, every pending entry
   with its proposed/committed timestamps, every outstanding
   coordination with its proposal count. Map iteration order is the key
   order, so equal states render to equal bytes. *)
let snapshot_node node =
  let buf = Buffer.create 128 in
  let ts (t : ts) = Printf.sprintf "%d.%d" t.clock t.origin in
  Printf.bprintf buf "me=%d clk=%d seq=%d del=%d\n" node.me node.clock
    node.next_seq node.delivered;
  Mid_map.iter
    (fun m e ->
      Printf.bprintf buf "pend %d.%d %s %s %s\n" m.sender m.seq e.value
        (ts e.proposed)
        (match e.final with None -> "-" | Some f -> ts f))
    node.pending;
  Mid_map.iter
    (fun m c ->
      Printf.bprintf buf "coord %d.%d %s %d/%d\n" m.sender m.seq c.c_value
        (Proc.Map.cardinal c.proposals)
        (List.length c.c_dests))
    node.coords;
  Buffer.contents buf

(* A committed message is deliverable once its final timestamp is below
   every uncommitted pending message's proposed timestamp: a proposed
   timestamp lower-bounds the final one (final = max over proposals), and
   any message not yet proposed here will be proposed above the current
   clock, which the Commit already raised past every delivered final. All
   timestamps within one node's pending set are distinct (a proposer's
   clocks strictly increase; [origin] breaks cross-proposer ties), so the
   strict comparison never blocks spuriously. *)
let rec deliver_ready node =
  let min_uncommitted =
    Mid_map.fold
      (fun _ e acc ->
        match (e.final, acc) with
        | Some _, _ -> acc
        | None, None -> Some e.proposed
        | None, Some b ->
            if ts_compare e.proposed b < 0 then Some e.proposed else acc)
      node.pending None
  in
  let best_committed =
    Mid_map.fold
      (fun m e acc ->
        match e.final with
        | None -> acc
        | Some f -> (
            match acc with
            | Some (_, _, bf) when ts_compare bf f <= 0 -> acc
            | _ -> Some (m, e, f)))
      node.pending None
  in
  match best_committed with
  | Some (m, e, f)
    when (match min_uncommitted with
         | None -> true
         | Some bound -> ts_compare f bound < 0) ->
      let node =
        {
          node with
          pending = Mid_map.remove m node.pending;
          delivered = node.delivered + 1;
        }
      in
      let node, rest = deliver_ready node in
      ( node,
        Engine.Output
          (To_action.Brcv { src = m.sender; dst = node.me; value = e.value })
        :: rest )
  | _ -> (node, [])

let handlers config =
  let on_start _me node = (node, []) in
  let on_input me ~now:_ input node =
    let dests = normalize_dests config input.dests in
    let mid = { sender = me; seq = node.next_seq } in
    let node =
      {
        node with
        next_seq = node.next_seq + 1;
        coords =
          Mid_map.add mid
            { c_value = input.value; c_dests = dests; proposals = Proc.Map.empty }
            node.coords;
      }
    in
    ( node,
      Engine.Output (To_action.Bcast (me, input.value))
      :: List.map
           (fun dst ->
             Engine.Send
               { dst; packet = Propose { mid; value = input.value; dests } })
           dests )
  in
  let on_packet me ~now:_ ~src packet node =
    match packet with
    | Propose { mid; value; dests = _ } ->
        if Mid_map.mem mid node.pending then (node, [])
        else
          let clock = node.clock + 1 in
          let proposed = { clock; origin = me } in
          let node =
            {
              node with
              clock;
              pending =
                Mid_map.add mid { value; proposed; final = None } node.pending;
            }
          in
          ( node,
            [
              Engine.Send
                { dst = mid.sender; packet = Proposal { mid; ts = proposed } };
            ] )
    | Proposal { mid; ts } -> (
        match Mid_map.find_opt mid node.coords with
        | None -> (node, [])
        | Some c ->
            let proposals = Proc.Map.add src ts c.proposals in
            if
              not
                (List.for_all (fun d -> Proc.Map.mem d proposals) c.c_dests)
            then
              ( { node with coords = Mid_map.add mid { c with proposals } node.coords },
                [] )
            else
              let final =
                Proc.Map.fold
                  (fun _ t acc ->
                    match acc with
                    | None -> Some t
                    | Some b -> if ts_compare t b > 0 then Some t else acc)
                  proposals None
              in
              (match final with
              | None ->
                  (* Destinations are nonempty by [normalize_dests], so a
                     complete proposal set is nonempty. *)
                  (node, [])
              | Some f ->
                  let node = { node with coords = Mid_map.remove mid node.coords } in
                  ( node,
                    List.map
                      (fun dst ->
                        Engine.Send { dst; packet = Commit { mid; ts = f } })
                      c.c_dests )))
    | Commit { mid; ts } -> (
        match Mid_map.find_opt mid node.pending with
        | None -> (node, [])
        | Some e -> (
            match e.final with
            | Some _ -> (node, [])
            | None ->
                let node =
                  {
                    node with
                    clock = max node.clock ts.clock;
                    pending =
                      Mid_map.add mid { e with final = Some ts } node.pending;
                  }
                in
                deliver_ready node))
  in
  let on_timer _me ~now:_ ~id:_ node = (node, []) in
  { Engine.on_start; on_input; on_packet; on_timer }

(* ----------------------------- byte codec ---------------------------- *)

module W = Gcs_impl.Wire

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let enc_mid (m : mid) =
  W.Framing.encode [ string_of_int m.sender; string_of_int m.seq ]

let dec_mid s =
  let* fs = W.fields_of "mid" s in
  match fs with
  | [ sender; seq ] ->
      let* sender = W.int_of "mid.sender" sender in
      let* seq = W.int_of "mid.seq" seq in
      Ok { sender; seq }
  | _ -> errf "mid: expected 2 fields in %S" s

let enc_ts (t : ts) =
  W.Framing.encode [ string_of_int t.clock; string_of_int t.origin ]

let dec_ts s =
  let* fs = W.fields_of "ts" s in
  match fs with
  | [ clock; origin ] ->
      let* clock = W.int_of "ts.clock" clock in
      let* origin = W.int_of "ts.origin" origin in
      Ok { clock; origin }
  | _ -> errf "ts: expected 2 fields in %S" s

let encode_packet = function
  | Propose { mid; value; dests } ->
      W.Framing.encode
        [ "p"; enc_mid mid; value; W.enc_list string_of_int dests ]
  | Proposal { mid; ts } -> W.Framing.encode [ "q"; enc_mid mid; enc_ts ts ]
  | Commit { mid; ts } -> W.Framing.encode [ "c"; enc_mid mid; enc_ts ts ]

let decode_packet s =
  let* fs = W.fields_of "skeen packet" s in
  match fs with
  | [ "p"; mid; value; dests ] ->
      let* mid = dec_mid mid in
      let* dests = W.dec_list "propose.dests" (W.int_of "propose.dest") dests in
      Ok (Propose { mid; value; dests })
  | [ "q"; mid; ts ] ->
      let* mid = dec_mid mid in
      let* ts = dec_ts ts in
      Ok (Proposal { mid; ts })
  | [ "c"; mid; ts ] ->
      let* mid = dec_mid mid in
      let* ts = dec_ts ts in
      Ok (Commit { mid; ts })
  | _ -> errf "skeen packet: unknown shape %S" s

let packet_codec : packet Gcs_transport.Iface.codec =
  { enc = encode_packet; dec = decode_packet }

let pp_packet ppf = function
  | Propose { mid; value; dests } ->
      Format.fprintf ppf "propose(%d.%d,%s,|%d|)" mid.sender mid.seq value
        (List.length dests)
  | Proposal { mid; ts } ->
      Format.fprintf ppf "proposal(%d.%d,%d.%d)" mid.sender mid.seq ts.clock
        ts.origin
  | Commit { mid; ts } ->
      Format.fprintf ppf "commit(%d.%d,%d.%d)" mid.sender mid.seq ts.clock
        ts.origin

(* ------------------------------- runs -------------------------------- *)

type run = {
  trace : Value.t To_action.t Timed.t;
  final_nodes : node Proc.Map.t;
  packets_sent : int;
  packets_dropped : int;
  events_processed : int;
}

let run ?engine ?(fifo = true) ~delta config ~workload ~failures ~until ~seed =
  let engine_config =
    match engine with
    | Some c -> c
    | None -> { (Engine.default_config ~delta) with Engine.fifo }
  in
  let result =
    Engine.run engine_config ~procs:config.procs ~handlers:(handlers config)
      ~init:initial ~inputs:workload ~failures ~until
      ~prng:(Gcs_stdx.Prng.create seed)
  in
  {
    trace = result.Engine.trace;
    final_nodes = result.Engine.final_states;
    packets_sent = result.Engine.packets_sent;
    packets_dropped = result.Engine.packets_dropped;
    events_processed = result.Engine.events_processed;
  }

let run_on ?metrics ?observe ?stop ~backend config ~workload ~failures ~until
    ~seed =
  let (module B : Gcs_transport.Iface.BACKEND) = backend in
  let result =
    B.run ?metrics ?observe ?stop packet_codec ~procs:config.procs
      ~handlers:(handlers config) ~init:initial ~inputs:workload ~failures
      ~until ~seed
  in
  {
    trace = result.Gcs_transport.Iface.trace;
    final_nodes = result.Gcs_transport.Iface.final_states;
    packets_sent = result.Gcs_transport.Iface.packets_sent;
    packets_dropped = result.Gcs_transport.Iface.packets_dropped;
    events_processed = result.Gcs_transport.Iface.events_processed;
  }

let deliveries r =
  List.length
    (List.filter
       (fun (_, a) -> match a with To_action.Brcv _ -> true | _ -> false)
       (Timed.actions r.trace))

let orders procs r =
  let rev =
    List.fold_left
      (fun acc (_, action) ->
        match action with
        | To_action.Brcv { src; dst; value } ->
            let prev =
              match Proc.Map.find_opt dst acc with Some l -> l | None -> []
            in
            Proc.Map.add dst (Printf.sprintf "%d:%s" src value :: prev) acc
        | _ -> acc)
      Proc.Map.empty (Timed.actions r.trace)
  in
  List.map
    (fun p ->
      ( p,
        match Proc.Map.find_opt p rev with
        | Some l -> List.rev l
        | None -> [] ))
    procs

let to_conforms config r =
  let params = { To_machine.procs = config.procs; equal_value = Value.equal } in
  To_trace_checker.check params (List.map snd (Timed.actions r.trace))

(* ------------------------- multi-group oracle ------------------------ *)

(* The classic TO-machine checker forces one total order delivered by
   everyone — right for full-group workloads, vacuously wrong for partial
   multicast, where two nodes only agree on the {e common} subsequence of
   what they both receive. This oracle checks exactly the Skeen
   guarantees over a multi-group workload:

   - deliveries only at declared destinations, each at most once, and
     causally after the submission;
   - per-origin FIFO between messages with the same destination set
     (links are FIFO, so an origin's proposals — hence finals — rise in
     submission order);
   - pairwise agreement: any two nodes deliver the messages they share
     in the same relative order. *)

type expectation = {
  e_dests : Proc.t list;  (** normalized destination set *)
  e_index : int;  (** submission order (stable by time, then list order) *)
}

let key src value = Printf.sprintf "%d\x00%s" src value

let expectations config workload =
  let sorted =
    List.stable_sort
      (fun (a, _, _) (b, _, _) -> Float.compare a b)
      workload
  in
  let tbl = Hashtbl.create (List.length workload) in
  List.iteri
    (fun i (_, p, (input : input)) ->
      Hashtbl.replace tbl
        (key p input.value)
        { e_dests = normalize_dests config input.dests; e_index = i })
    sorted;
  tbl

let check_group_order config ~workload trace =
  let expected = expectations config workload in
  let submitted = Hashtbl.create 64 in
  let seen = Hashtbl.create 64 in
  let per_node : (Proc.t, (Proc.t * Value.t) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  let node_list p =
    match Hashtbl.find_opt per_node p with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add per_node p r;
        r
  in
  let exception Violation of string in
  try
    List.iter
      (fun (_, action) ->
        match action with
        | To_action.Bcast (p, v) -> Hashtbl.replace submitted (key p v) ()
        | To_action.Brcv { src; dst; value } -> (
            match Hashtbl.find_opt expected (key src value) with
            | None ->
                raise
                  (Violation
                     (Printf.sprintf "node %d delivered unknown message %d:%s"
                        dst src value))
            | Some e ->
                if not (Hashtbl.mem submitted (key src value)) then
                  raise
                    (Violation
                       (Printf.sprintf
                          "node %d delivered %d:%s before its submission" dst
                          src value));
                if not (List.exists (Proc.equal dst) e.e_dests) then
                  raise
                    (Violation
                       (Printf.sprintf
                          "node %d delivered %d:%s addressed to {%s}" dst src
                          value
                          (String.concat ","
                             (List.map string_of_int e.e_dests))));
                let k = Printf.sprintf "%d\x00%s" dst (key src value) in
                if Hashtbl.mem seen k then
                  raise
                    (Violation
                       (Printf.sprintf "node %d delivered %d:%s twice" dst src
                          value));
                Hashtbl.replace seen k ();
                let r = node_list dst in
                r := (src, value) :: !r)
        | To_action.To_order _ -> ())
      (Timed.actions trace);
    let nodes =
      List.sort Proc.compare
        (Hashtbl.fold (fun p _ acc -> p :: acc) per_node [])
    in
    (* Per-origin FIFO within equal destination sets. *)
    List.iter
      (fun dst ->
        let seq = List.rev !(node_list dst) in
        let last : (string, int * string) Hashtbl.t = Hashtbl.create 8 in
        List.iter
          (fun (src, value) ->
            match Hashtbl.find_opt expected (key src value) with
            | None -> ()
            | Some e ->
                let group =
                  Printf.sprintf "%d\x00%s" src
                    (String.concat "," (List.map string_of_int e.e_dests))
                in
                (match Hashtbl.find_opt last group with
                | Some (prev_index, prev_value) when prev_index > e.e_index ->
                    raise
                      (Violation
                         (Printf.sprintf
                            "node %d delivered %d:%s after %d:%s (same \
                             destination set, submitted earlier)"
                            dst src value src prev_value))
                | _ -> ());
                Hashtbl.replace last group (e.e_index, value))
          seq)
      nodes;
    (* Pairwise agreement on common messages. *)
    List.iter
      (fun p ->
        List.iter
          (fun q ->
            if Proc.compare p q < 0 then begin
              let p_seq = List.rev !(node_list p) in
              let q_pos = Hashtbl.create 64 in
              List.iteri
                (fun i (src, value) ->
                  Hashtbl.replace q_pos (key src value) i)
                (List.rev !(node_list q));
              let highest = ref (-1) in
              List.iter
                (fun (src, value) ->
                  match Hashtbl.find_opt q_pos (key src value) with
                  | None -> ()
                  | Some i ->
                      if i < !highest then
                        raise
                          (Violation
                             (Printf.sprintf
                                "nodes %d and %d disagree on the order of \
                                 their common deliveries (at %d:%s)"
                                p q src value))
                      else highest := i)
                p_seq
            end)
          nodes)
      nodes;
    Ok ()
  with Violation detail -> Error detail

let check_complete config ~workload trace =
  let delivered = Hashtbl.create 64 in
  List.iter
    (fun (_, action) ->
      match action with
      | To_action.Brcv { src; dst; value } ->
          Hashtbl.replace delivered (Printf.sprintf "%d\x00%s" dst (key src value)) ()
      | _ -> ())
    (Timed.actions trace);
  let missing =
    List.concat_map
      (fun (_, p, (input : input)) ->
        List.filter_map
          (fun d ->
            if
              Hashtbl.mem delivered
                (Printf.sprintf "%d\x00%s" d (key p input.value))
            then None
            else Some (Printf.sprintf "%d:%s at node %d" p input.value d))
          (normalize_dests config input.dests))
      workload
  in
  match missing with
  | [] -> Ok ()
  | m :: rest ->
      Error
        (Printf.sprintf "%d undelivered (first: %s)" (List.length rest + 1) m)

let expected_deliveries config workload =
  List.fold_left
    (fun acc (_, _, (input : input)) ->
      acc + List.length (normalize_dests config input.dests))
    0 workload

(* --------------------------- node invariants ------------------------- *)

let node_invariant_failure final_nodes =
  List.find_map
    (fun (p, node) ->
      if node.clock < 0 then
        Some
          ( "skeen-node-invariant",
            Printf.sprintf "proc %d: negative clock %d" p node.clock )
      else if node.delivered < 0 then
        Some
          ( "skeen-node-invariant",
            Printf.sprintf "proc %d: negative delivery count" p )
      else
        Mid_map.fold
          (fun m e acc ->
            match (acc, e.final) with
            | Some _, _ | _, None -> acc
            | None, Some f ->
                (* final = max over proposals ≥ this node's own proposal *)
                if ts_compare f e.proposed < 0 then
                  Some
                    ( "skeen-node-invariant",
                      Printf.sprintf
                        "proc %d: message %d.%d committed below its own \
                         proposal (%d.%d < %d.%d)"
                        p m.sender m.seq f.clock f.origin e.proposed.clock
                        e.proposed.origin )
                else None)
          node.pending None)
    (Proc.Map.bindings final_nodes)
