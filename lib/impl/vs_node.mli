open Gcs_core

(** One processor of the Section 8 VS implementation.

    Normal operation: the view is "held together" by a token launched by
    the ring leader (the member with the smallest id) with spacing [pi];
    the token carries the per-view message sequence, per-member delivery
    counts (from which safe notifications are derived) and per-member
    append counts. A missing token (timeout) or contact from a processor
    outside the current membership triggers the membership protocol:
    broadcast [Newgroup] with a fresh identifier, collect [Accept] replies
    for [2δ], announce the membership with [ViewMsg], and let the new
    leader launch a fresh token.

    The node emits the VS external actions ([gpsnd]/[gprcv]/[safe]/
    [newview]) as simulator outputs, so a run's timed trace can be checked
    against VS-machine and VS-property. *)

type config = {
  procs : Proc.t list;
  p0 : Proc.t list;
  pi : float;  (** token creation spacing π (must exceed nδ) *)
  mu : float;  (** discovery-probe spacing μ *)
  delta : float;  (** good-link delay bound δ (for timeouts) *)
}

type protocol =
  | Three_round  (** the Cristian–Schmuck protocol as sketched in §8 *)
  | One_round
      (** the one-round alternative of §8 footnote 7: announce membership
          directly from the local connectivity estimate; stabilizes less
          quickly because inaccurate estimates force extra view changes *)

type 'm state

val initial : config -> Proc.t -> 'm state

val handlers :
  ?metrics:Gcs_stdx.Metrics.t ->
  ?protocol:protocol ->
  ?first_launch_delay:float ->
  config ->
  ('m state, 'm, 'm Wire.packet, 'm Vs_action.t) Gcs_sim.Engine.handlers
(** Inputs are client messages ([gpsnd]); outputs are VS external
    actions. When [metrics] is given, the node counts [vs.*] events
    into it: views installed, tokens launched, leader token round-trips
    and membership rounds initiated.

    [first_launch_delay]: defer the leader's {e first} token launch by
    that long instead of launching at [on_start]. Layers that stage
    client submissions (the TO service's batch window) set it past their
    initial flush, so whether the leader's own first batch boards the
    first rotation no longer depends on the backend's clock; launches
    after view installs and the relaunch spacing are unaffected. *)

val client_send :
  config ->
  Proc.t ->
  'm ->
  'm state ->
  'm state * ('m Wire.packet, 'm Vs_action.t) Gcs_sim.Engine.effect list
(** Hand a client message to the node outside the engine's input path —
    used by layers stacked on top (e.g. the TO service). Equivalent to the
    [on_input] handler. *)

(** Observers used by tests and benchmarks. *)

val ring_successor : View.t -> Proc.t -> Proc.t
(** The next member after [me] on the token ring: the smallest member id
    greater than [me], wrapping to the smallest member overall. Raises
    [Invalid_argument] on an empty view — membership never builds one,
    so an empty member set here is a corrupted view. *)

val current_view : 'm state -> View.t option
val views_installed : 'm state -> int
(** Number of [newview] events at this node (view-churn metric). *)

val stored_token_entries : 'm state -> int option
(** Number of entries in the absorbed token at the leader ([None] at
    non-leaders or while the token circulates). *)

val max_token_entries : 'm state -> int
(** High-water mark of token entries seen by this node — pruning of the
    all-safe prefix keeps it bounded by the in-flight window rather than
    the whole history. *)

val token_timeout : config -> float
(** The timeout after which a missing token triggers a view change. *)

val paper_b : config -> float
(** The Section 8 stabilization bound b = 9δ + max(π + (n+3)δ, μ). *)

val paper_d : config -> float
(** The Section 8 delivery bound d = 2π + nδ. *)

val impl_b : config -> float
(** Conservative stabilization bound for {e this} implementation variant:
    the paper bound plus slack for the Nack-assisted identifier catch-up
    round and the initiation debounce (see DESIGN.md). *)

val impl_d : config -> float
(** Conservative safe-delivery bound for this variant: a message waits up
    to π for a token, a full round delivers it everywhere (earlier ring
    positions see it on the following pass), and safe notifications
    propagate on one more pass — 3(π + nδ) plus two hops of slack. *)
