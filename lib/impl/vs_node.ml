open Gcs_core
open Gcs_sim

type config = {
  procs : Proc.t list;
  p0 : Proc.t list;
  pi : float;
  mu : float;
  delta : float;
}

type protocol = Three_round | One_round

(* Timer identifiers. *)
let timer_token_timeout = 1
let timer_probe = 2
let timer_collect = 3
let timer_launch = 4

type 'm state = {
  me : Proc.t;
  current : View.t option;
  installs : int;
  max_num_seen : int;
  proposed : View_id.t option;
  forming : (View_id.t * Proc.Set.t) option;
  last_initiation : float;
  outbuf : 'm Gcs_stdx.Tape.t;
      (* client messages of the current view, send order; a tape so the
         per-send append and the per-rotation suffix read are O(1) *)
  delivered_count : int;
  safe_count : int;
  stored_token : 'm Wire.token option;
  last_heard : float Proc.Map.t;  (* for the one-round membership estimate *)
  max_token_entries : int;  (* high-water mark, for the pruning ablation *)
  token_outstanding : bool;
      (* the leader launched a token that has not yet returned; guards
         against a stale launch timer forking the per-view order *)
  last_launch : float;
}

let initial config me =
  let in_p0 = List.mem me config.p0 in
  {
    me;
    current = (if in_p0 then Some (View.initial config.p0) else None);
    installs = 0;
    max_num_seen = 0;
    proposed = None;
    forming = None;
    last_initiation = neg_infinity;
    outbuf = Gcs_stdx.Tape.empty ();
    delivered_count = 0;
    safe_count = 0;
    stored_token = None;
    last_heard = Proc.Map.empty;
    max_token_entries = 0;
    token_outstanding = false;
    last_launch = neg_infinity;
  }

let current_view state = state.current
let views_installed state = state.installs

let stored_token_entries state =
  Option.map (fun t -> List.length t.Wire.entries) state.stored_token

let max_token_entries state = state.max_token_entries

let n_of config = List.length config.procs

let token_timeout config =
  config.pi +. (float_of_int (n_of config + 2) *. config.delta)

let paper_b config =
  let n = float_of_int (n_of config) in
  (9.0 *. config.delta)
  +. max (config.pi +. ((n +. 3.0) *. config.delta)) config.mu

let paper_d config =
  config.pi *. 2.0 +. (float_of_int (n_of config) *. config.delta)

let impl_b config = paper_b config +. (8.0 *. config.delta)

let impl_d config =
  (3.0 *. (config.pi +. (float_of_int (n_of config) *. config.delta)))
  +. (2.0 *. config.delta)

let formation_debounce config = 4.0 *. config.delta

let leader_of (view : View.t) = Proc.Set.min_elt view.View.set

let ring_successor (view : View.t) me =
  match Proc.Set.elements view.View.set with
  | [] ->
      (* Views are built from nonempty member sets; an empty one means
         the membership protocol handed us a corrupt view. *)
      invalid_arg
        (Printf.sprintf
           "Vs_node.ring_successor: invariant violation at proc %d: \
            successor requested in an empty view"
           me)
  | smallest :: _ as members ->
      let rec find = function
        | [] -> smallest (* wrap to the smallest *)
        | m :: rest -> if m > me then m else find rest
      in
      find members

let is_member state p =
  match state.current with Some v -> View.mem p v | None -> false

let seen_num state num = { state with max_num_seen = max state.max_num_seen num }

let heard state ~now p =
  { state with last_heard = Proc.Map.add p now state.last_heard }

(* The one-round membership estimate: self plus every processor heard from
   within the last two probe periods. *)
let estimated_members config ~now state =
  state.me
  :: List.filter
       (fun p ->
         (not (Proc.equal p state.me))
         &&
         match Proc.Map.find_opt p state.last_heard with
         | Some t -> now -. t <= 2.0 *. config.mu
         | None -> false)
       config.procs

(* ---------------- metrics ---------------- *)

(* The registry is optional at every layer: a [None] keeps the hot path
   allocation-free, and a [Some m] is the per-run registry the engine was
   given, shared by all processors of the run. *)
let count metrics name =
  match metrics with None -> () | Some m -> Gcs_stdx.Metrics.incr m name

let observe metrics name v =
  match metrics with
  | None -> ()
  | Some m -> Gcs_stdx.Metrics.observe m name v

(* ---------------- membership protocol ---------------- *)

let maybe_initiate ?metrics ?(protocol = Three_round) config ~now state =
  if Option.is_some state.forming then (state, [])
  else if now -. state.last_initiation < formation_debounce config then
    (state, [])
  else
    let () = count metrics "vs.membership_rounds" in
    let num = state.max_num_seen + 1 in
    let viewid = View_id.make ~num ~origin:state.me in
    match protocol with
    | Three_round ->
        let state =
          {
            state with
            max_num_seen = num;
            proposed = Some viewid;
            forming = Some (viewid, Proc.Set.singleton state.me);
            last_initiation = now;
          }
        in
        let calls =
          List.filter_map
            (fun p ->
              if Proc.equal p state.me then None
              else
                Some (Engine.Send { dst = p; packet = Wire.Newgroup { viewid } }))
            config.procs
        in
        ( state,
          calls
          @ [
              Engine.Set_timer { id = timer_collect; delay = 2.0 *. config.delta };
            ] )
    | One_round ->
        (* Footnote 7 of Section 8: announce the membership directly from
           the local connectivity estimate — one round, but inaccurate
           estimates cause extra view changes, so stabilization is
           slower. *)
        let members = estimated_members config ~now state in
        let view = View.make viewid members in
        let state =
          {
            state with
            max_num_seen = num;
            proposed = Some viewid;
            last_initiation = now;
          }
        in
        ( state,
          List.map
            (fun p -> Engine.Send { dst = p; packet = Wire.ViewMsg { view } })
            members )

(* ---------------- token processing ---------------- *)

let map_get_zero m p =
  match Proc.Map.find_opt p m with Some x -> x | None -> 0

let process_token ?metrics config ~now ~launching state (tok : 'm Wire.token) =
  let view =
    match state.current with
    | Some v -> v
    | None ->
        (* Every caller matches on [state.current] first, so a [None] here
           is a protocol-logic bug; report which processor and when
           instead of an anonymous [Option.get] crash. *)
        invalid_arg
          (Printf.sprintf
             "Vs_node: invariant violation at proc %d, t=%.3f: processing \
              token for view %s with no current view"
             state.me now
             (Format.asprintf "%a" View_id.pp tok.Wire.viewid))
  in
  let members = view.View.set in
  (* (1) append my unappended client messages: the suffix of the outbuf
     tape past what previous rotations already appended *)
  let already = map_get_zero tok.Wire.appended state.me in
  let to_append = Gcs_stdx.Tape.drop already state.outbuf in
  let new_entries, next_idx =
    Gcs_stdx.Tape.fold_left
      (fun (acc, idx) msg ->
        ({ Wire.idx; src = state.me; msg } :: acc, idx + 1))
      ([], tok.Wire.next_idx) to_append
  in
  if not (Gcs_stdx.Tape.is_empty to_append) then
    observe metrics "vs.batch_size"
      (float_of_int (Gcs_stdx.Tape.length to_append));
  let entries = tok.Wire.entries @ List.rev new_entries in
  let appended =
    Proc.Map.add state.me (Gcs_stdx.Tape.length state.outbuf) tok.Wire.appended
  in
  (* (2) deliver entries beyond my delivery point *)
  let deliverable =
    List.filter (fun e -> e.Wire.idx > state.delivered_count) entries
  in
  let deliveries =
    List.map
      (fun e ->
        Engine.Output
          (Vs_action.Gprcv { src = e.Wire.src; dst = state.me; msg = e.Wire.msg }))
      deliverable
  in
  let delivered_count =
    List.fold_left (fun acc e -> max acc e.Wire.idx) state.delivered_count
      deliverable
  in
  let delivered = Proc.Map.add state.me delivered_count tok.Wire.delivered in
  (* (3) safe notifications up to the minimum delivery point *)
  let floor =
    Proc.Set.fold (fun r acc -> min acc (map_get_zero delivered r)) members
      max_int
  in
  let newly_safe =
    List.filter
      (fun e -> e.Wire.idx > state.safe_count && e.Wire.idx <= floor)
      entries
  in
  let safes =
    List.map
      (fun e ->
        Engine.Output
          (Vs_action.Safe { src = e.Wire.src; dst = state.me; msg = e.Wire.msg }))
      newly_safe
  in
  let safe_count = max state.safe_count (min floor (next_idx - 1)) in
  let safe_acked = Proc.Map.add state.me safe_count tok.Wire.safe_acked in
  (* (4) prune entries that every member has reported safe *)
  let prune_floor =
    Proc.Set.fold (fun r acc -> min acc (map_get_zero safe_acked r)) members
      max_int
  in
  let entries = List.filter (fun e -> e.Wire.idx > prune_floor) entries in
  let tok =
    { tok with Wire.entries; next_idx; delivered; safe_acked; appended }
  in
  let state =
    {
      state with
      delivered_count;
      safe_count;
      max_token_entries = max state.max_token_entries (List.length entries);
    }
  in
  (* (5) forward, or absorb at the leader *)
  let am_leader = Proc.equal (leader_of view) state.me in
  let rearm =
    Engine.Set_timer { id = timer_token_timeout; delay = token_timeout config }
  in
  if am_leader && not launching then
    (* Absorb; relaunch so that token creations are spaced by pi. *)
    let () = count metrics "vs.token_roundtrips" in
    let delay = max (config.delta /. 100.0) (state.last_launch +. config.pi -. now) in
    ( { state with stored_token = Some tok; token_outstanding = false },
      deliveries @ safes
      @ [ rearm; Engine.Set_timer { id = timer_launch; delay } ] )
  else
    let next = ring_successor view state.me in
    ( state,
      deliveries @ safes
      @ [ rearm; Engine.Send { dst = next; packet = Wire.Token tok } ] )

let launch_token ?metrics config ~now state =
  match state.current with
  | None -> (state, [])
  | Some view ->
      if
        (not (Proc.equal (leader_of view) state.me))
        || state.token_outstanding
      then (state, [])
      else
        let tok =
          match state.stored_token with
          | Some t when View_id.equal t.Wire.viewid view.View.id -> t
          | _ -> Wire.fresh_token view.View.id
        in
        count metrics "vs.tokens_launched";
        let state =
          {
            state with
            stored_token = None;
            token_outstanding = true;
            last_launch = now;
          }
        in
        process_token ?metrics config ~now ~launching:true state tok

(* ---------------- view installation ---------------- *)

let install ?metrics config ~now state (view : View.t) =
  count metrics "vs.views_installed";
  let state =
    {
      state with
      current = Some view;
      installs = state.installs + 1;
      outbuf = Gcs_stdx.Tape.empty ();
      delivered_count = 0;
      safe_count = 0;
      stored_token = None;
      token_outstanding = false;
      forming = None;
    }
  in
  let cancel_launch = Engine.Cancel_timer { id = timer_launch } in
  let announce = Engine.Output (Vs_action.Newview { proc = state.me; view }) in
  let rearm =
    Engine.Set_timer { id = timer_token_timeout; delay = token_timeout config }
  in
  if Proc.equal (leader_of view) state.me then
    let state, launch_effects = launch_token ?metrics config ~now state in
    (state, (cancel_launch :: announce :: rearm :: launch_effects))
  else (state, [ cancel_launch; announce; rearm ])

(* ---------------- handlers ---------------- *)

let probe_targets ?(protocol = Three_round) config state =
  match protocol with
  | One_round ->
      (* Everyone probes everyone, so connectivity estimates converge
         within one probe period. *)
      List.filter (fun p -> not (Proc.equal p state.me)) config.procs
  | Three_round -> (
      match state.current with
      | None -> List.filter (fun p -> not (Proc.equal p state.me)) config.procs
      | Some view ->
          if Proc.equal (leader_of view) state.me then
            List.filter (fun p -> not (View.mem p view)) config.procs
          else [])

let on_start ?metrics ?first_launch_delay config me state =
  ignore me;
  let probe =
    Engine.Set_timer
      {
        id = timer_probe;
        delay = config.mu +. (float_of_int state.me *. config.delta *. 0.01);
      }
  in
  match state.current with
  | None -> (state, [ probe ])
  | Some view ->
      let rearm =
        Engine.Set_timer
          { id = timer_token_timeout; delay = token_timeout config }
      in
      if Proc.equal (leader_of view) state.me then
        match first_launch_delay with
        | Some delay when delay > 0.0 ->
            (* Defer the very first launch (instead of launching inside
               [on_start]): layers that stage client submissions — the TO
               service's batch window — use this so every node's initial
               flush lands in its outbuf before any token can collect it,
               making the first rotation's pickup order clock-independent.
               Subsequent launches (relaunch spacing, view installs) are
               unaffected. *)
            (state, [ probe; rearm; Engine.Set_timer { id = timer_launch; delay } ])
        | _ ->
            let state, effects = launch_token ?metrics config ~now:0.0 state in
            (state, (probe :: rearm :: effects))
      else (state, [ probe; rearm ])

let on_input _config me ~now:_ msg state =
  ignore me;
  let out = Engine.Output (Vs_action.Gpsnd { sender = state.me; msg }) in
  match state.current with
  | None -> (state, [ out ])
  | Some _ -> ({ state with outbuf = Gcs_stdx.Tape.snoc state.outbuf msg }, [ out ])

let on_packet ?metrics ?(protocol = Three_round) config me ~now ~src packet state =
  ignore me;
  let state = heard state ~now src in
  match packet with
  | Wire.Newgroup { viewid } ->
      let state = seen_num state viewid.View_id.num in
      if View_id.lt_opt state.proposed (Some viewid) then
        ( { state with proposed = Some viewid },
          [ Engine.Send { dst = src; packet = Wire.Accept { viewid } } ] )
      else
        let proposed_num =
          match state.proposed with Some g -> g.View_id.num | None -> 0
        in
        ( state,
          [ Engine.Send { dst = src; packet = Wire.Nack { viewid; proposed_num } } ]
        )
  | Wire.Accept { viewid } -> (
      match state.forming with
      | Some (fid, responders) when View_id.equal fid viewid ->
          ({ state with forming = Some (fid, Proc.Set.add src responders) }, [])
      | _ -> (state, []))
  | Wire.Nack { viewid = _; proposed_num } -> (seen_num state proposed_num, [])
  | Wire.ViewMsg { view } ->
      let state = seen_num state view.View.id.View_id.num in
      let current_id =
        match state.current with Some v -> Some v.View.id | None -> None
      in
      if
        View.mem state.me view
        && View_id.lt_opt current_id (Some view.View.id)
        && View_id.le_opt state.proposed (Some view.View.id)
      then install ?metrics config ~now state view
      else (state, [])
  | Wire.Token tok -> (
      let state = seen_num state tok.Wire.viewid.View_id.num in
      match state.current with
      | Some view when View_id.equal view.View.id tok.Wire.viewid ->
          process_token ?metrics config ~now ~launching:false state tok
      | _ -> (state, []))
  | Wire.Probe { viewid_num } ->
      let state = seen_num state viewid_num in
      if is_member state src then (state, [])
      else maybe_initiate ?metrics ~protocol config ~now state

let on_timer ?metrics ?(protocol = Three_round) config me ~now ~id state =
  ignore me;
  if id = timer_token_timeout then
    match state.current with
    | None -> (state, [])
    | Some _ ->
        let state, effects = maybe_initiate ?metrics ~protocol config ~now state in
        ( state,
          effects
          @ [
              Engine.Set_timer
                { id = timer_token_timeout; delay = token_timeout config };
            ] )
  else if id = timer_probe then
    let probes =
      List.map
        (fun p ->
          Engine.Send
            { dst = p; packet = Wire.Probe { viewid_num = state.max_num_seen } })
        (probe_targets ~protocol config state)
    in
    (state, probes @ [ Engine.Set_timer { id = timer_probe; delay = config.mu } ])
  else if id = timer_collect then
    match state.forming with
    | None -> (state, [])
    | Some (viewid, responders) ->
        let view = { View.id = viewid; set = responders } in
        let state = { state with forming = None } in
        let announcements =
          List.map
            (fun p -> Engine.Send { dst = p; packet = Wire.ViewMsg { view } })
            (Proc.Set.elements responders)
        in
        (state, announcements)
  else if id = timer_launch then launch_token ?metrics config ~now state
  else (state, [])

let handlers ?metrics ?(protocol = Three_round) ?first_launch_delay config =
  {
    Engine.on_start = on_start ?metrics ?first_launch_delay config;
    on_input = on_input config;
    on_packet = on_packet ?metrics ~protocol config;
    on_timer = on_timer ?metrics ~protocol config;
  }

let client_send config me msg state = on_input config me ~now:0.0 msg state
