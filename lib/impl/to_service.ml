open Gcs_core
open Gcs_sim

type config = {
  vs : Vs_node.config;
  quorums : Quorum.t;
  stable_storage_latency : float option;
  pipeline : bool;
  batch_window : float option;
}

let make_config ?stable_storage_latency ?quorums ?(pipeline = true)
    ?batch_window vs =
  let quorums =
    match quorums with
    | Some q -> q
    | None -> Quorum.majorities ~n:(List.length vs.Vs_node.procs)
  in
  { vs; quorums; stable_storage_latency; pipeline; batch_window }

type out =
  | Client of Value.t To_action.t
  | Vs_layer of Msg.t Vs_action.t

type node = {
  vs_state : Msg.t Vs_node.state;
  app : Vstoto.state;
  staging : (float * Value.t) Gcs_stdx.Tape.t;
      (* (due time, value): values awaiting the stable-storage write or the
         batching window; a single rolling timer flushes every due value as
         one batch *)
}

type run = {
  trace : out Timed.t;
  final_nodes : node Proc.Map.t;
  packets_sent : int;
  packets_dropped : int;
  events_processed : int;
  metrics : Gcs_stdx.Metrics.t;
}

(* Timer id for the staging flush — stable-storage write completion and/or
   batch-window expiry (Vs_node uses 1-4). *)
let timer_flush = 100

(* Delay between client submission and handing the value to the VStoTO
   automaton: the stable-storage write if configured, else the batching
   window, else none (immediate). *)
let submit_delay config =
  match (config.stable_storage_latency, config.batch_window) with
  | Some l, Some w -> Some (Float.max l w)
  | Some l, None -> Some l
  | None, w -> w

let node_params config me =
  {
    Vstoto.me;
    p0 = config.vs.Vs_node.p0;
    quorums = config.quorums;
    literal_figure_10 = false;
    pipeline = config.pipeline;
  }

let apply_app config me action app =
  let automaton = Vstoto.automaton (node_params config me) in
  match automaton.Gcs_automata.Automaton.transition app action with
  | Some app' -> app'
  | None ->
      invalid_arg
        (Format.asprintf "to_service: VStoTO rejected %a" Sys_action.pp action)

(* Drain the enabled locally controlled actions of the VStoTO automaton,
   translating gpsnd outputs into VS-layer client sends and brcv outputs
   into trace events. Returns the updated node and accumulated effects.
   Uses [next_enabled] so each iteration computes only the first enabled
   action instead of materialising the whole enabled set (which would
   rebuild the batch message at every intermediate state). *)
let drain ?metrics config me node =
  let params = node_params config me in
  let rec go node effects_rev =
    match Vstoto.next_enabled params node.app with
    | None -> (node, List.rev effects_rev)
    | Some action -> (
        let app = apply_app config me action node.app in
        let node = { node with app } in
        match action with
        | Sys_action.Vs (Vs_action.Gpsnd { msg; _ }) ->
            (match metrics with
            | Some m -> (
                match msg with
                | Msg.App _ ->
                    Gcs_stdx.Metrics.observe m "to.batch_size" 1.
                | Msg.Batch entries ->
                    Gcs_stdx.Metrics.observe m "to.batch_size"
                      (float_of_int (List.length entries))
                | Msg.Summary _ -> ())
            | None -> ());
            (* Hand the message to the VS layer as a client send. *)
            let vs_state', vs_effects =
              Vs_node.client_send config.vs me msg node.vs_state
            in
            let effects_rev =
              List.rev_append
                (List.map
                   (function
                     | Engine.Output a -> Engine.Output (Vs_layer a)
                     | Engine.Send s -> Engine.Send s
                     | Engine.Set_timer t -> Engine.Set_timer t
                     | Engine.Cancel_timer c -> Engine.Cancel_timer c)
                   vs_effects)
                effects_rev
            in
            go { node with vs_state = vs_state' } effects_rev
        | Sys_action.Brcv { src; dst; value } ->
            go node
              (Engine.Output (Client (To_action.Brcv { src; dst; value }))
              :: effects_rev)
        | Sys_action.Label_act _ | Sys_action.Confirm _ -> go node effects_rev
        | Sys_action.Bcast _ | Sys_action.Vs _ ->
            invalid_arg "to_service: unexpected locally controlled action")
  in
  go node []

(* Submit values to the VStoTO automaton (after any staging delay): all
   bcasts are applied first, then a single drain labels them and [gpsnd]s
   the whole buffer as one batch. *)
let submit_batch ?metrics config me values node =
  let app =
    List.fold_left
      (fun app value -> apply_app config me (Sys_action.Bcast (me, value)) app)
      node.app values
  in
  drain ?metrics config me { node with app }

(* Route the effects produced by the VS node: VS outputs addressed to this
   processor become VStoTO inputs (then we drain); other effects pass
   through with outputs tagged. *)
let absorb_vs_effects ?metrics config me (node, effects) =
  let rec go node acc_rev = function
    | [] -> (node, List.rev acc_rev)
    | Engine.Output (Vs_action.Newview _ as a) :: rest ->
        let app = apply_app config me (Sys_action.Vs a) node.app in
        let node = { node with app } in
        (* Flush anything still staged into the new view: a value accepted
           before the view change would otherwise sit in [staging] with no
           guarantee its flush timer survives whatever killed the old view
           (a recovering processor re-enters through [Newview], not
           [on_start]). [Bcast] is accepted in every VStoTO status, so
           submitting here is always safe, and the values get labels of
           the new view — batches stay view-homogeneous. *)
        let staged =
          List.map snd (Gcs_stdx.Tape.to_list node.staging)
        in
        let node = { node with staging = Gcs_stdx.Tape.empty () } in
        let cancel =
          match staged with
          | [] -> []
          | _ :: _ -> [ Engine.Cancel_timer { id = timer_flush } ]
        in
        let node, drained =
          match staged with
          | [] -> drain ?metrics config me node
          | values -> submit_batch ?metrics config me values node
        in
        go node
          (List.rev_append drained
             (List.rev_append cancel (Engine.Output (Vs_layer a) :: acc_rev)))
          rest
    | Engine.Output (Vs_action.Gprcv _ as a) :: rest
    | Engine.Output (Vs_action.Safe _ as a) :: rest ->
        let app = apply_app config me (Sys_action.Vs a) node.app in
        let node = { node with app } in
        let node, drained = drain ?metrics config me node in
        go node
          (List.rev_append drained (Engine.Output (Vs_layer a) :: acc_rev))
          rest
    | Engine.Output a :: rest ->
        go node (Engine.Output (Vs_layer a) :: acc_rev) rest
    | Engine.Send s :: rest -> go node (Engine.Send s :: acc_rev) rest
    | Engine.Set_timer t :: rest -> go node (Engine.Set_timer t :: acc_rev) rest
    | Engine.Cancel_timer c :: rest ->
        go node (Engine.Cancel_timer c :: acc_rev) rest
  in
  go node [] effects

let lift_vs ?metrics config me f node =
  let vs_state', effects = f node.vs_state in
  absorb_vs_effects ?metrics config me
    ({ node with vs_state = vs_state' }, effects)

let handlers ?metrics config =
  (* With a batch window, every node's initial flush happens at ~window
     on any clock; pushing the leader's first token launch past it (3x
     margin) makes the first rotation's pickup order — leader's batch,
     then followers' in ring order — backend-independent. See
     [Vs_node.handlers]. *)
  let first_launch_delay =
    Option.map (fun w -> 3.0 *. w) config.batch_window
  in
  let vs_handlers = Vs_node.handlers ?metrics ?first_launch_delay config.vs in
  let on_start me node =
    lift_vs ?metrics config me (vs_handlers.Engine.on_start me) node
  in
  let on_input me ~now value node =
    let record = Engine.Output (Client (To_action.Bcast (me, value))) in
    match submit_delay config with
    | None ->
        let node, effects = submit_batch ?metrics config me [ value ] node in
        (node, record :: effects)
    | Some delay ->
        (* Arm the flush timer only on the empty→nonempty transition: the
           invariant is that the timer is pending iff staging is nonempty,
           and it is always set for the earliest due value. *)
        let arm =
          if Gcs_stdx.Tape.is_empty node.staging then
            [ Engine.Set_timer { id = timer_flush; delay } ]
          else []
        in
        ( {
            node with
            staging = Gcs_stdx.Tape.snoc node.staging (now +. delay, value);
          },
          record :: arm )
  in
  let on_packet me ~now ~src packet node =
    lift_vs ?metrics config me
      (vs_handlers.Engine.on_packet me ~now ~src packet)
      node
  in
  let on_timer me ~now ~id node =
    if id = timer_flush then (
      (* Pure batching: everything staged when the window closes goes out
         as one batch. With a stable-storage latency, a value may only be
         submitted once its write completed, so flush the due prefix (due
         times are nondecreasing: same delay for every arrival). The loop
         drains until no entry is due, so the re-armed delay is strictly
         positive — a due-now head must flush in this step, never re-arm
         a zero-delay timer. *)
      let due_limit = now +. 1e-9 in
      let rec flush_due node effects_rev =
        let n = Gcs_stdx.Tape.length node.staging in
        let k =
          match config.stable_storage_latency with
          | None -> n
          | Some _ ->
              let rec due_count i =
                if i >= n then i
                else
                  let t, _ = Gcs_stdx.Tape.get node.staging i in
                  if t <= due_limit then due_count (i + 1) else i
              in
              due_count 0
        in
        if k = 0 then (node, effects_rev)
        else begin
          let flushed = ref [] in
          for i = k - 1 downto 0 do
            flushed := snd (Gcs_stdx.Tape.get node.staging i) :: !flushed
          done;
          let node =
            { node with staging = Gcs_stdx.Tape.drop k node.staging }
          in
          let node, effects = submit_batch ?metrics config me !flushed node in
          flush_due node (List.rev_append effects effects_rev)
        end
      in
      let node, effects_rev = flush_due node [] in
      let rearm =
        if Gcs_stdx.Tape.is_empty node.staging then []
        else
          let t, _ = Gcs_stdx.Tape.get node.staging 0 in
          (* t > due_limit after the drain above, so the delay is > 0. *)
          [ Engine.Set_timer { id = timer_flush; delay = t -. now } ]
      in
      (node, List.rev effects_rev @ rearm))
    else lift_vs ?metrics config me (vs_handlers.Engine.on_timer me ~now ~id) node
  in
  { Engine.on_start; on_input; on_packet; on_timer }

let initial config me =
  {
    vs_state = Vs_node.initial config.vs me;
    app = Vstoto.initial (node_params config me);
    staging = Gcs_stdx.Tape.empty ();
  }

(* Observers over the per-processor state, for instrumentation layered on
   the handlers (coverage probes, planted-bug wrappers in lib/fuzz). *)

let node_app node = node.app

let node_view node = node.app.Vstoto.current

let node_status node = node.app.Vstoto.status

let node_primary config me node =
  Vstoto.primary (node_params config me) node.app

let node_views_installed node = Vs_node.views_installed node.vs_state

let node_staging node = Gcs_stdx.Tape.to_list node.staging

(* Walk the client trace after the run and fill in the TO-level metrics:
   bcast/brcv counts and the per-delivery bcastâbrcv latency histogram.
   Post-run is simpler than instrumenting the drain path (which has no
   [now] in scope) and equally deterministic: the trace is already in
   time order. *)
let record_to_metrics metrics trace =
  let bcast_time = Hashtbl.create 64 in
  List.iter
    (fun (time, action) ->
      match action with
      | To_action.Bcast (_, value) ->
          Gcs_stdx.Metrics.incr metrics "to.bcasts";
          if not (Hashtbl.mem bcast_time value) then
            Hashtbl.add bcast_time value time
      | To_action.Brcv { value; _ } -> (
          Gcs_stdx.Metrics.incr metrics "to.deliveries";
          match Hashtbl.find_opt bcast_time value with
          | Some t0 ->
              Gcs_stdx.Metrics.observe metrics "to.bcast_brcv_latency"
                (time -. t0)
          | None -> ())
      | _ -> ())
    (Timed.actions trace)

let client_trace_of trace =
  Timed.map (function Client a -> Some a | Vs_layer _ -> None) trace

let run ?metrics ?engine config ~workload ~failures ~until ~seed =
  let metrics =
    match metrics with Some m -> m | None -> Gcs_stdx.Metrics.create ()
  in
  let engine_config =
    match engine with
    | Some c -> c
    | None -> Gcs_sim.Engine.default_config ~delta:config.vs.Vs_node.delta
  in
  let result =
    Engine.run ~metrics engine_config ~procs:config.vs.Vs_node.procs
      ~handlers:(handlers ~metrics config) ~init:(initial config)
      ~inputs:workload ~failures ~until
      ~prng:(Gcs_stdx.Prng.create seed)
  in
  record_to_metrics metrics (client_trace_of result.Engine.trace);
  {
    trace = result.Engine.trace;
    final_nodes = result.Engine.final_states;
    packets_sent = result.Engine.packets_sent;
    packets_dropped = result.Engine.packets_dropped;
    events_processed = result.Engine.events_processed;
    metrics;
  }

let run_on ?metrics ?observe ?stop ~backend config ~workload ~failures ~until
    ~seed =
  let metrics =
    match metrics with Some m -> m | None -> Gcs_stdx.Metrics.create ()
  in
  let (module B : Gcs_transport.Iface.BACKEND) = backend in
  let result =
    B.run ~metrics ?observe ?stop Wire.msg_packet_codec
      ~procs:config.vs.Vs_node.procs ~handlers:(handlers ~metrics config)
      ~init:(initial config) ~inputs:workload ~failures ~until ~seed
  in
  record_to_metrics metrics
    (client_trace_of result.Gcs_transport.Iface.trace);
  {
    trace = result.Gcs_transport.Iface.trace;
    final_nodes = result.Gcs_transport.Iface.final_states;
    packets_sent = result.Gcs_transport.Iface.packets_sent;
    packets_dropped = result.Gcs_transport.Iface.packets_dropped;
    events_processed = result.Gcs_transport.Iface.events_processed;
    metrics;
  }

let client_trace r = client_trace_of r.trace

let vs_trace r =
  Timed.map (function Vs_layer a -> Some a | Client _ -> None) r.trace

let to_conforms config r =
  let params =
    { To_machine.procs = config.vs.Vs_node.procs; equal_value = Value.equal }
  in
  To_trace_checker.check params (List.map snd (Timed.actions (client_trace r)))

let vs_conforms config r =
  let params =
    {
      Vs_machine.procs = config.vs.Vs_node.procs;
      p0 = config.vs.Vs_node.p0;
      equal_msg = Msg.equal;
      weak = false;
    }
  in
  Vs_trace_checker.check params (List.map snd (Timed.actions (vs_trace r)))

let deliveries r =
  List.length
    (List.filter
       (fun (_, a) -> match a with To_action.Brcv _ -> true | _ -> false)
       (Timed.actions (client_trace r)))
