open Gcs_core

(** Wire packets of the Section 8 VS implementation: the three-round
    membership protocol of Cristian and Schmuck, plus the ordering token
    and discovery probes. *)

type 'm token_entry = { idx : int; src : Proc.t; msg : 'm }

type 'm token = {
  viewid : View_id.t;
  entries : 'm token_entry list;  (** ascending [idx]; safe prefix pruned *)
  next_idx : int;  (** next index to assign *)
  delivered : int Proc.Map.t;
      (** per member: entries passed to the client when the token last left
          that member *)
  safe_acked : int Proc.Map.t;
      (** per member: safe notifications already issued — gates pruning *)
  appended : int Proc.Map.t;
      (** per member: how many of its client messages have been appended
          in this view (resend suppression) *)
}

type 'm packet =
  | Newgroup of { viewid : View_id.t }
      (** round 1: call for participation (broadcast) *)
  | Accept of { viewid : View_id.t }  (** round 2: reply to the initiator *)
  | Nack of { viewid : View_id.t; proposed_num : int }
      (** refusal carrying the refuser's highest proposal number, so the
          initiator can catch up its identifier counter *)
  | ViewMsg of { view : View.t }  (** round 3: membership announcement *)
  | Token of 'm token
  | Probe of { viewid_num : int }
      (** discovery contact; carries the prober's id counter *)

val fresh_token : View_id.t -> 'm token
val pp_packet : Format.formatter -> 'm packet -> unit

(** {2 Byte codec}

    Serialization for real transports ({!Gcs_transport.Bus} and, later,
    sockets): every packet constructor round-trips through a flat field
    encoding (['|']-separated, ['%']-escaped, so arbitrary payload bytes
    survive). The simulator moves packets by value and never touches
    this path. Decoding is total — malformed bytes yield [Error], never
    an exception or a guessed packet. *)

val packet_codec :
  enc_msg:('m -> string) ->
  dec_msg:(string -> ('m, string) result) ->
  'm packet Gcs_transport.Iface.codec
(** Codec for packets over any payload type, given a payload codec. *)

val msg_packet_codec : Msg.t packet Gcs_transport.Iface.codec
(** The full VStoTO wire format: packets carrying labelled application
    values and state-exchange summaries ({!Gcs_core.Msg.t}). *)

val string_packet_codec : string packet Gcs_transport.Iface.codec
(** Packets over raw string payloads (tests and simple clients). *)

(** {2 Field framing}

    The framing primitive under every codec in this module, exported so
    sibling wire formats (the Skeen and sequencer backends, application
    codecs) compose with the same escaping discipline instead of
    inventing a second one: fields join with ['|'], escaping ['%'] and
    ['|']; the empty field list gets a marker that escaping can never
    produce. Nested records are just fields, so structures compose by
    re-encoding — the innermost level is escaped the most. *)

module Framing : sig
  val encode : string list -> string

  val decode : string -> string list option
  (** Total: [None] on malformed bytes (stray ['%'], bare ['|'] inside a
      field), never an exception. *)
end

val fields_of : string -> string -> (string list, string) result
(** [fields_of label s] is {!Framing.decode} in the [result] error style
    of the decoders here, with [label] naming the field in the error. *)

val int_of : string -> string -> (int, string) result

val enc_list : ('a -> string) -> 'a list -> string
(** Encode a list as one field (each element [enc]-ed, then framed). *)

val dec_list :
  string -> (string -> ('a, string) result) -> string -> ('a list, string) result
