open Gcs_core

(** End-to-end totally ordered broadcast: the {e same} VStoTO automaton
    that was verified against VS-machine (lib/core), driven by the Section
    8 VS implementation inside the discrete-event simulator.

    Each simulated processor holds a [Vs_node] state and a [Vstoto] state;
    VS outputs ([gprcv]/[safe]/[newview]) are fed synchronously into the
    VStoTO automaton, whose enabled locally controlled actions are drained
    immediately (good processors act without delay). Client deliveries
    ([brcv]) and submissions ([bcast]) appear in the timed trace, so runs
    can be checked against TO-machine and TO-property.

    The [stable_storage_latency] option models the Keidar–Dolev design
    point discussed in Section 1: every submitted value is written to
    stable storage (a fixed latency) before the algorithm processes it.

    Throughput engineering (DESIGN.md):
    {ul
    {- [batch_window]: client submissions are staged for a short window
       and handed to the automaton together, so the whole backlog goes
       out as a single {!Msg.Batch} [gpsnd] — one wire frame and one
       token-ring entry per batch instead of per value. [None] submits
       immediately (one [App] per value), preserving the PR 6
       behaviour.}
    {- [pipeline]: run the VStoTO automata with [Vstoto.params.pipeline],
       overlapping the post-view-change state exchange with labelling and
       delivery.}} *)

type config = {
  vs : Vs_node.config;
  quorums : Quorum.t;
  stable_storage_latency : float option;
  pipeline : bool;
  batch_window : float option;
}

val make_config :
  ?stable_storage_latency:float ->
  ?quorums:Quorum.t ->
  ?pipeline:bool ->
  ?batch_window:float ->
  Vs_node.config ->
  config
(** Quorums default to majorities over the VS configuration's processors.
    [pipeline] defaults to [true] (the refinement is oracle-checked by the
    same conformance suite); [batch_window] defaults to [None]. *)

type out =
  | Client of Value.t To_action.t  (** bcast/brcv at the client interface *)
  | Vs_layer of Msg.t Vs_action.t  (** the underlying VS external actions *)

type node
(** Per-processor state (the VS node plus the VStoTO automaton state). *)

val initial : config -> Proc.t -> node

val handlers :
  ?metrics:Gcs_stdx.Metrics.t ->
  config ->
  (node, Value.t, Msg.t Wire.packet, out) Gcs_sim.Engine.handlers
(** Exposed so layers can stack on top (see [Gcs_apps.Session]). *)

(** {2 Node observers}

    Read-only views of the per-processor state, for instrumentation
    layered on the handlers: the fuzzer's coverage probes (status pairs,
    primary switches, view transitions) and its planted-bug wrappers. *)

val node_app : node -> Vstoto.state
val node_view : node -> View.t option
val node_status : node -> Vstoto.status
val node_primary : config -> Proc.t -> node -> bool
val node_views_installed : node -> int
(** Count of [newview] events at the VS layer of this node. *)

val node_staging : node -> (float * Value.t) list
(** The staged-but-unsubmitted values (due time, value), in arrival
    order. Tests use it to pin the batching invariants: the flush timer
    is pending iff this is nonempty, and a view change leaves it empty
    (staged values are flushed into the new view, never stranded). *)

type run = {
  trace : out Timed.t;
  final_nodes : node Proc.Map.t;
      (** per-processor states at the horizon, for the state-invariant
          oracles (observers above apply) *)
  packets_sent : int;
  packets_dropped : int;
  events_processed : int;
  metrics : Gcs_stdx.Metrics.t;
      (** the registry passed to {!run} (or a fresh one) with [engine.*],
          [vs.*] and [to.*] sections filled in â including the
          per-delivery bcastâbrcv latency histogram
          [to.bcast_brcv_latency] *)
}

val run :
  ?metrics:Gcs_stdx.Metrics.t ->
  ?engine:Gcs_sim.Engine.config ->
  config ->
  workload:(float * Proc.t * Value.t) list ->
  failures:(float * Fstatus.event) list ->
  until:float ->
  seed:int ->
  run

val run_on :
  ?metrics:Gcs_stdx.Metrics.t ->
  ?observe:(Proc.t -> node -> node -> unit) ->
  ?stop:(now:float -> outputs:int -> bool) ->
  backend:Gcs_transport.Iface.backend ->
  config ->
  workload:(float * Proc.t * Value.t) list ->
  failures:(float * Fstatus.event) list ->
  until:float ->
  seed:int ->
  run
(** The same service on a pluggable transport: the handlers are built
    once and handed to [backend] with the {!Wire.msg_packet_codec} — the
    bus actually serializes every packet through it; the simulator
    ignores it. [run] is [run_on] with a simulator backend, kept separate
    only because it predates the seam and accepts a raw engine config. *)

val client_trace : run -> Value.t To_action.t Timed.t
(** The TO-level timed trace (with failure events), for TO-property. *)

val vs_trace : run -> Msg.t Vs_action.t Timed.t

val to_conforms : config -> run -> (unit, To_trace_checker.error) result
(** Check the client trace against TO-machine (Theorem 7.1, safety part). *)

val vs_conforms : config -> run -> (unit, Vs_trace_checker.error) result
(** Check the VS-layer trace against VS-machine. *)

val deliveries : run -> int
