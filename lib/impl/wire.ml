open Gcs_core

type 'm token_entry = { idx : int; src : Proc.t; msg : 'm }

type 'm token = {
  viewid : View_id.t;
  entries : 'm token_entry list;
  next_idx : int;
  delivered : int Proc.Map.t;
  safe_acked : int Proc.Map.t;
  appended : int Proc.Map.t;
}

type 'm packet =
  | Newgroup of { viewid : View_id.t }
  | Accept of { viewid : View_id.t }
  | Nack of { viewid : View_id.t; proposed_num : int }
  | ViewMsg of { view : View.t }
  | Token of 'm token
  | Probe of { viewid_num : int }

let fresh_token viewid =
  {
    viewid;
    entries = [];
    next_idx = 1;
    delivered = Proc.Map.empty;
    safe_acked = Proc.Map.empty;
    appended = Proc.Map.empty;
  }

(* ---- Byte codec -------------------------------------------------------

   Field framing in the style of [Gcs_apps.Codec] (which sits above this
   library in the dependency order and cannot be reused here): fields are
   joined with '|', escaping '%' and '|'; the empty record gets the
   marker "%n", which escaping can never produce. Nested records are just
   fields, so structures compose by re-encoding — the innermost level is
   escaped the most. *)

module F = struct
  let escape field =
    let buf = Buffer.create (String.length field + 4) in
    String.iter
      (fun c ->
        match c with
        | '%' -> Buffer.add_string buf "%p"
        | '|' -> Buffer.add_string buf "%b"
        | c -> Buffer.add_char buf c)
      field;
    Buffer.contents buf

  let unescape field =
    let buf = Buffer.create (String.length field) in
    let n = String.length field in
    let rec go i =
      if i >= n then Some (Buffer.contents buf)
      else
        match field.[i] with
        | '%' ->
            if i + 1 >= n then None
            else (
              match field.[i + 1] with
              | 'p' ->
                  Buffer.add_char buf '%';
                  go (i + 2)
              | 'b' ->
                  Buffer.add_char buf '|';
                  go (i + 2)
              | _ -> None)
        | '|' -> None
        | c ->
            Buffer.add_char buf c;
            go (i + 1)
    in
    go 0

  let empty_marker = "%n"

  let encode fields =
    match fields with
    | [] -> empty_marker
    | _ -> String.concat "|" (List.map escape fields)

  let decode s =
    if String.equal s empty_marker then Some []
    else
      let raw = String.split_on_char '|' s in
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | f :: rest -> (
            match unescape f with Some u -> go (u :: acc) rest | None -> None)
      in
      go [] raw
end

module Framing = struct
  let encode = F.encode
  let decode = F.decode
end

let ( let* ) = Result.bind
let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let fields_of label s =
  match F.decode s with
  | Some fs -> Ok fs
  | None -> errf "%s: bad framing in %S" label s

let int_of label s =
  match int_of_string_opt s with
  | Some i -> Ok i
  | None -> errf "%s: not an integer: %S" label s

let enc_list enc xs = F.encode (List.map enc xs)

let dec_list label dec s =
  let* fs = fields_of label s in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | f :: rest ->
        let* x = dec f in
        go (x :: acc) rest
  in
  go [] fs

let enc_viewid (v : View_id.t) =
  F.encode [ string_of_int v.num; string_of_int v.origin ]

let dec_viewid s =
  let* fs = fields_of "viewid" s in
  match fs with
  | [ num; origin ] ->
      let* num = int_of "viewid.num" num in
      let* origin = int_of "viewid.origin" origin in
      Ok (View_id.make ~num ~origin)
  | _ -> errf "viewid: expected 2 fields in %S" s

let enc_label (l : Label.t) =
  F.encode [ enc_viewid l.id; string_of_int l.seqno; string_of_int l.origin ]

let dec_label s =
  let* fs = fields_of "label" s in
  match fs with
  | [ id; seqno; origin ] ->
      let* id = dec_viewid id in
      let* seqno = int_of "label.seqno" seqno in
      let* origin = int_of "label.origin" origin in
      Ok (Label.make ~id ~seqno ~origin)
  | _ -> errf "label: expected 3 fields in %S" s

let enc_viewid_opt = function
  | None -> F.encode [ "n" ]
  | Some v -> F.encode [ "s"; enc_viewid v ]

let dec_viewid_opt s =
  let* fs = fields_of "viewid?" s in
  match fs with
  | [ "n" ] -> Ok None
  | [ "s"; v ] ->
      let* v = dec_viewid v in
      Ok (Some v)
  | _ -> errf "viewid?: malformed %S" s

let enc_summary (x : Summary.t) =
  F.encode
    [
      enc_list
        (fun (l, v) -> F.encode [ enc_label l; v ])
        (Label.Map.bindings x.con);
      enc_list enc_label x.ord;
      string_of_int x.next;
      enc_viewid_opt x.high;
    ]

let dec_summary s =
  let* fs = fields_of "summary" s in
  match fs with
  | [ con; ord; next; high ] ->
      let* con =
        dec_list "summary.con"
          (fun f ->
            let* fs = fields_of "summary.con entry" f in
            match fs with
            | [ l; v ] ->
                let* l = dec_label l in
                Ok (l, v)
            | _ -> errf "summary.con entry: malformed %S" f)
          con
      in
      let* ord = dec_list "summary.ord" dec_label ord in
      let* next = int_of "summary.next" next in
      let* high = dec_viewid_opt high in
      Ok
        (Summary.make
           ~con:
             (List.fold_left
                (fun m (l, v) -> Label.Map.add l v m)
                Label.Map.empty con)
           ~ord ~next ~high)
  | _ -> errf "summary: expected 4 fields in %S" s

let enc_entry (l, v) = F.encode [ enc_label l; v ]

let dec_entry s =
  let* fs = fields_of "batch.entry" s in
  match fs with
  | [ l; v ] ->
      let* l = dec_label l in
      Ok (l, v)
  | _ -> errf "batch.entry: expected 2 fields in %S" s

let enc_msg = function
  | Msg.App (l, v) -> F.encode [ "a"; enc_label l; v ]
  | Msg.Batch entries -> F.encode [ "b"; enc_list enc_entry entries ]
  | Msg.Summary x -> F.encode [ "s"; enc_summary x ]

let dec_msg s =
  let* fs = fields_of "msg" s in
  match fs with
  | [ "a"; l; v ] ->
      let* l = dec_label l in
      Ok (Msg.App (l, v))
  | [ "b"; entries ] ->
      let* entries = dec_list "batch" dec_entry entries in
      Ok (Msg.Batch entries)
  | [ "s"; x ] ->
      let* x = dec_summary x in
      Ok (Msg.Summary x)
  | _ -> errf "msg: malformed %S" s

let enc_proc_counts m =
  enc_list
    (fun (p, c) -> F.encode [ string_of_int p; string_of_int c ])
    (Proc.Map.bindings m)

let dec_proc_counts label s =
  let* entries =
    dec_list label
      (fun f ->
        let* fs = fields_of label f in
        match fs with
        | [ p; c ] ->
            let* p = int_of label p in
            let* c = int_of label c in
            Ok (p, c)
        | _ -> errf "%s: malformed entry %S" label f)
      s
  in
  Ok (List.fold_left (fun m (p, c) -> Proc.Map.add p c m) Proc.Map.empty entries)

let enc_token enc_m (t : 'm token) =
  F.encode
    [
      enc_viewid t.viewid;
      enc_list
        (fun e ->
          F.encode [ string_of_int e.idx; string_of_int e.src; enc_m e.msg ])
        t.entries;
      string_of_int t.next_idx;
      enc_proc_counts t.delivered;
      enc_proc_counts t.safe_acked;
      enc_proc_counts t.appended;
    ]

let dec_token dec_m s =
  let* fs = fields_of "token" s in
  match fs with
  | [ viewid; entries; next_idx; delivered; safe_acked; appended ] ->
      let* viewid = dec_viewid viewid in
      let* entries =
        dec_list "token.entries"
          (fun f ->
            let* fs = fields_of "token entry" f in
            match fs with
            | [ idx; src; msg ] ->
                let* idx = int_of "token entry.idx" idx in
                let* src = int_of "token entry.src" src in
                let* msg = dec_m msg in
                Ok { idx; src; msg }
            | _ -> errf "token entry: malformed %S" f)
          entries
      in
      let* next_idx = int_of "token.next_idx" next_idx in
      let* delivered = dec_proc_counts "token.delivered" delivered in
      let* safe_acked = dec_proc_counts "token.safe_acked" safe_acked in
      let* appended = dec_proc_counts "token.appended" appended in
      Ok { viewid; entries; next_idx; delivered; safe_acked; appended }
  | _ -> errf "token: expected 6 fields in %S" s

let enc_view (v : View.t) =
  F.encode
    [ enc_viewid v.id; enc_list string_of_int (Proc.Set.elements v.set) ]

let dec_view s =
  let* fs = fields_of "view" s in
  match fs with
  | [ id; set ] ->
      let* id = dec_viewid id in
      let* members = dec_list "view.set" (int_of "view member") set in
      Ok (View.make id members)
  | _ -> errf "view: expected 2 fields in %S" s

let encode_packet enc_m = function
  | Newgroup { viewid } -> F.encode [ "ng"; enc_viewid viewid ]
  | Accept { viewid } -> F.encode [ "ac"; enc_viewid viewid ]
  | Nack { viewid; proposed_num } ->
      F.encode [ "nk"; enc_viewid viewid; string_of_int proposed_num ]
  | ViewMsg { view } -> F.encode [ "vm"; enc_view view ]
  | Token t -> F.encode [ "tk"; enc_token enc_m t ]
  | Probe { viewid_num } -> F.encode [ "pb"; string_of_int viewid_num ]

let decode_packet dec_m s =
  let* fs = fields_of "packet" s in
  match fs with
  | [ "ng"; viewid ] ->
      let* viewid = dec_viewid viewid in
      Ok (Newgroup { viewid })
  | [ "ac"; viewid ] ->
      let* viewid = dec_viewid viewid in
      Ok (Accept { viewid })
  | [ "nk"; viewid; proposed_num ] ->
      let* viewid = dec_viewid viewid in
      let* proposed_num = int_of "nack.proposed_num" proposed_num in
      Ok (Nack { viewid; proposed_num })
  | [ "vm"; view ] ->
      let* view = dec_view view in
      Ok (ViewMsg { view })
  | [ "tk"; token ] ->
      let* token = dec_token dec_m token in
      Ok (Token token)
  | [ "pb"; viewid_num ] ->
      let* viewid_num = int_of "probe.viewid_num" viewid_num in
      Ok (Probe { viewid_num })
  | _ -> errf "packet: unknown shape %S" s

let packet_codec ~enc_msg ~dec_msg : _ Gcs_transport.Iface.codec =
  {
    enc = encode_packet enc_msg;
    dec = decode_packet dec_msg;
  }

let msg_packet_codec : Msg.t packet Gcs_transport.Iface.codec =
  packet_codec ~enc_msg ~dec_msg

let string_packet_codec : string packet Gcs_transport.Iface.codec =
  packet_codec ~enc_msg:(fun s -> s) ~dec_msg:(fun s -> Ok s)

let pp_packet ppf = function
  | Newgroup { viewid } -> Format.fprintf ppf "newgroup(%a)" View_id.pp viewid
  | Accept { viewid } -> Format.fprintf ppf "accept(%a)" View_id.pp viewid
  | Nack { viewid; proposed_num } ->
      Format.fprintf ppf "nack(%a,%d)" View_id.pp viewid proposed_num
  | ViewMsg { view } -> Format.fprintf ppf "viewmsg(%a)" View.pp view
  | Token t ->
      Format.fprintf ppf "token(%a,#%d,|%d|)" View_id.pp t.viewid t.next_idx
        (List.length t.entries)
  | Probe { viewid_num } -> Format.fprintf ppf "probe(%d)" viewid_num
