open Gcs_core

(** Whole-service harness for the Section 8 VS implementation: run a fleet
    of {!Vs_node} processors over the simulated network under a failure
    scenario and a client workload, producing the timed trace of VS
    external actions. *)

type 'm run = {
  trace : 'm Vs_action.t Timed.t;
  final_states : 'm Vs_node.state Proc.Map.t;
  packets_sent : int;
  packets_dropped : int;
  events_processed : int;
  metrics : Gcs_stdx.Metrics.t;
      (** the registry passed to {!run} (or a fresh one) with the
          [engine.*] and [vs.*] sections filled in *)
}

val run :
  ?metrics:Gcs_stdx.Metrics.t ->
  ?engine:Gcs_sim.Engine.config ->
  ?protocol:Vs_node.protocol ->
  Vs_node.config ->
  workload:(float * Proc.t * 'm) list ->
  failures:(float * Fstatus.event) list ->
  until:float ->
  seed:int ->
  'm run
(** The engine defaults to [Engine.default_config ~delta:config.delta]. *)

val untimed_trace : 'm run -> 'm Vs_action.t list

val conforms :
  equal_msg:('m -> 'm -> bool) ->
  Vs_node.config ->
  'm run ->
  (unit, Vs_trace_checker.error) result
(** Check the run's trace against VS-machine (safety conformance). *)

val views_installed_total : 'm run -> int
(** Total view installations across processors (churn metric). *)

val stabilized_view_time : q:Proc.t list -> 'm run -> float option
(** Time of the last [newview] at a member of [q], when afterwards all
    members of [q] share a final view with membership exactly [q];
    [None] when they do not agree. *)
