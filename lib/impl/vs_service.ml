open Gcs_core

type 'm run = {
  trace : 'm Vs_action.t Timed.t;
  final_states : 'm Vs_node.state Proc.Map.t;
  packets_sent : int;
  packets_dropped : int;
  events_processed : int;
  metrics : Gcs_stdx.Metrics.t;
}

let run ?metrics ?engine ?protocol config ~workload ~failures ~until ~seed =
  let metrics =
    match metrics with Some m -> m | None -> Gcs_stdx.Metrics.create ()
  in
  let engine_config =
    match engine with
    | Some c -> c
    | None -> Gcs_sim.Engine.default_config ~delta:config.Vs_node.delta
  in
  let result =
    Gcs_sim.Engine.run ~metrics engine_config ~procs:config.Vs_node.procs
      ~handlers:(Vs_node.handlers ~metrics ?protocol config)
      ~init:(Vs_node.initial config)
      ~inputs:workload ~failures ~until
      ~prng:(Gcs_stdx.Prng.create seed)
  in
  {
    trace = result.Gcs_sim.Engine.trace;
    final_states = result.Gcs_sim.Engine.final_states;
    packets_sent = result.Gcs_sim.Engine.packets_sent;
    packets_dropped = result.Gcs_sim.Engine.packets_dropped;
    events_processed = result.Gcs_sim.Engine.events_processed;
    metrics;
  }

let untimed_trace r = List.map snd (Timed.actions r.trace)

let conforms ~equal_msg config r =
  let params =
    {
      Vs_machine.procs = config.Vs_node.procs;
      p0 = config.Vs_node.p0;
      equal_msg;
      weak = false;
    }
  in
  Vs_trace_checker.check params (untimed_trace r)

let views_installed_total r =
  Proc.Map.fold
    (fun _ s acc -> acc + Vs_node.views_installed s)
    r.final_states 0

let stabilized_view_time ~q r =
  let final_views = Hashtbl.create 16 in
  let last_newview = ref 0.0 in
  List.iter
    (fun (time, a) ->
      match a with
      | Vs_action.Newview { proc; view } when List.mem proc q ->
          last_newview := max !last_newview time;
          Hashtbl.replace final_views proc view
      | _ -> ())
    (Timed.actions r.trace);
  let q_set = Proc.set_of_list q in
  let views = List.filter_map (Hashtbl.find_opt final_views) q in
  match views with
  | [] -> None
  | v :: rest ->
      if
        List.length views = List.length q
        && List.for_all (View.equal v) rest
        && Proc.Set.equal v.View.set q_set
      then Some !last_newview
      else None
