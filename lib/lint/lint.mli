(** Determinism, totality & domain-safety static analysis over one
    OCaml source.

    An AST-level pass built on [compiler-libs.common]: the source is
    parsed with {!Parse.implementation} and walked with
    {!Ast_iterator}. No typing information is used, so every rule is a
    syntactic heuristic — precise enough to ban the hazard classes that
    have actually bitten this repo, and cheap enough to run on every
    build.

    Rules (see DESIGN.md "Static analysis" and "Domain-safety
    analysis" for the rationale):

    - [D1] unordered iteration: [Hashtbl.iter]/[fold]/[to_seq] whose
      result does not flow into an immediately enclosing [List.sort]
      family sink (directly, via [|>] or via [@@]). Hash-order
      iteration is the classic byte-determinism leak.
    - [D2] entropy / wall clock: any [Random.*] outside
      [lib/stdx/prng.ml], plus [Sys.time], [Unix.gettimeofday] and
      [Unix.time] outside [lib/transport/clock.ml]. All nondeterminism
      must flow through the seeded {!Gcs_stdx.Prng}; all wall-clock
      reads through the bus transport's monotonic clock.
    - [D3] (only under [lib/core/] and [lib/impl/]) polymorphic
      structural operations on non-scalar operands: [=] applied to a
      syntactically constructed operand (constructor, tuple, record,
      list, polymorphic variant, array), and bare [compare] /
      [Stdlib.compare] / [Hashtbl.hash] applied to, or passed over,
      anything that is not a scalar literal. Structural compare on
      [Set]/[Map] values compares tree shapes, not contents. Files
      that define their own [compare] are exempt from the bare
      [compare] check (the local definition shadows the polymorphic
      one).
    - [P1] (only under [lib/]) partial stdlib functions: [Option.get],
      [List.hd], [List.tl], [Array.unsafe_*], [String.unsafe_*]. The
      proof-grade checkers must fail with a diagnostic invariant
      error, never an anonymous [Invalid_argument].
    - [P2] exception swallowing: a [try ... with] whose handler has a
      catch-all pattern ([_] or a bare variable), no guard, and no
      re-raise in its body. Such handlers can eat invariant
      violations.

    The concurrency family ([C]) targets multi-domain hazards:

    - [C1] cross-domain closure capture: inside the closure run by
      [Domain.spawn] / [Pool.map] / [Pool.iter] (a literal lambda, a
      named local function, or one trampoline call deep), an in-place
      write ([:=], [incr]/[decr], [<-] field/array/bytes assignment,
      [Hashtbl]/[Queue]/[Stack]/[Buffer] mutators) whose target is not
      bound inside the closure itself and not performed under
      [Lock.with_lock] / [Mutex.protect]. Such a write races with the
      spawning domain. Route the data through {!Gcs_stdx.Mailbox}
      values, [Atomic.t], or a {!Gcs_stdx.Lock}.
    - [C2] exception-unsafe critical sections: a [Mutex.lock m] that is
      not provably paired with [Mutex.unlock m] on every exit path —
      anything that can raise between the two leaves [m] locked
      forever. The scan accepts straight-line harmless code, a
      [match ... with exception] wrapper whose every case unlocks, and
      [try]/handlers that unlock. [lib/stdx/lock.ml] (the sanctioned
      wrapper) is exempt; everyone else uses
      {!Gcs_stdx.Lock.with_lock}.
    - [C3] atomic read-modify-write: [Atomic.get x] feeding an
      [Atomic.set x] (same canonical [x]) — as [set (f (get x))], as
      [let v = get x in ... set x ...], or as
      [if ... get x ... then set x ...]. A concurrent writer between
      the read and the write is silently lost; use
      [Atomic.compare_and_set], [Atomic.fetch_and_add], or
      {!Gcs_stdx.Atomicx.store_max}.
    - [C4] blocking under a lock, and static lock-order cycles: a
      blocking call ([Condition.wait], [Mutex.lock], [Mailbox.wait] /
      [recv], [Domain.join], [Pool.map]/[iter], [Clock.sleep], ...)
      syntactically inside a [Lock.with_lock] / [Mutex.protect] body
      ([Lock.wait c l] on exactly the one held lock [l] is the
      sanctioned exception); and, per file, every nested
      [with_lock]/[protect] pair contributes an edge [outer -> inner]
      to a lock-order graph whose cyclic strongly-connected components
      are reported as deadlock candidates.

    - [A1] suppression audit: a [[@gcs.lint.allow]] attribute naming a
      rule that never fires under it is itself a finding — stale
      suppressions rot into blanket immunity. [A1] is never
      suppressible.

    Any other finding is suppressible in source with
    [[@gcs.lint.allow "RULE"]] on the enclosing expression,
    [[@@gcs.lint.allow "RULE"]] on the enclosing value binding, or
    [[@@@gcs.lint.allow "RULE"]] floating (rest of the file). Several
    rules may be given separated by spaces or commas. Suppressed
    findings are still returned, marked, so they stay auditable.

    The missing-interface rule [M1] needs the file tree, not an AST;
    it lives in {!Driver}. *)

val rules : (string * string) list
(** [(id, one-line description)] for every rule, including [M1] and
    the parse-failure pseudo-rule [E0]. *)

val in_lib : string -> bool
(** The path is under [lib/] — the P1 (and {!Driver}'s M1) scope. *)

val lint_source : path:string -> string -> Finding.t list
(** [lint_source ~path source] parses and checks one [.ml] source.
    [path] must be the repo-relative path with ['/'] separators; it
    scopes the path-dependent rules (D2's prng exemption, D3's
    core/impl scope, P1's lib scope, C2's lock-home exemption). A file
    that does not parse yields a single [E0] finding. Results are
    sorted with {!Finding.compare}. *)

val analyze : path:string -> string -> Finding.t list * (string * string) list
(** Like {!lint_source}, but also returns the file's static lock-order
    edges [(outer, inner)] — one per nested [with_lock]/[protect]
    pair, deduplicated and sorted. {!Driver} aggregates these across
    the repo so [gcs lockcheck] can cross-validate the static graph
    against the dynamically observed one. *)
