(** Determinism & totality static analysis over one OCaml source.

    An AST-level pass built on [compiler-libs.common]: the source is
    parsed with {!Parse.implementation} and walked with
    {!Ast_iterator}. No typing information is used, so every rule is a
    syntactic heuristic — precise enough to ban the hazard classes that
    have actually bitten this repo, and cheap enough to run on every
    build.

    Rules (see DESIGN.md "Static analysis" for the rationale):

    - [D1] unordered iteration: [Hashtbl.iter]/[fold]/[to_seq] whose
      result does not flow into an immediately enclosing [List.sort]
      family sink (directly, via [|>] or via [@@]). Hash-order
      iteration is the classic byte-determinism leak.
    - [D2] entropy / wall clock: any [Random.*] outside
      [lib/stdx/prng.ml], plus [Sys.time], [Unix.gettimeofday] and
      [Unix.time] outside [lib/transport/clock.ml]. All nondeterminism
      must flow through the seeded {!Gcs_stdx.Prng}; all wall-clock
      reads through the bus transport's monotonic clock.
    - [D3] (only under [lib/core/] and [lib/impl/]) polymorphic
      structural operations on non-scalar operands: [=] applied to a
      syntactically constructed operand (constructor, tuple, record,
      list, polymorphic variant, array), and bare [compare] /
      [Stdlib.compare] / [Hashtbl.hash] applied to, or passed over,
      anything that is not a scalar literal. Structural compare on
      [Set]/[Map] values compares tree shapes, not contents. Files
      that define their own [compare] are exempt from the bare
      [compare] check (the local definition shadows the polymorphic
      one).
    - [P1] (only under [lib/]) partial stdlib functions: [Option.get],
      [List.hd], [List.tl], [Array.unsafe_*], [String.unsafe_*]. The
      proof-grade checkers must fail with a diagnostic invariant
      error, never an anonymous [Invalid_argument].
    - [P2] exception swallowing: a [try ... with] whose handler has a
      catch-all pattern ([_] or a bare variable), no guard, and no
      re-raise in its body. Such handlers can eat invariant
      violations.

    Any finding is suppressible in source with
    [[@gcs.lint.allow "RULE"]] on the enclosing expression,
    [[@@gcs.lint.allow "RULE"]] on the enclosing value binding, or
    [[@@@gcs.lint.allow "RULE"]] floating (rest of the file). Several
    rules may be given separated by spaces or commas. Suppressed
    findings are still returned, marked, so they stay auditable.

    The missing-interface rule [M1] needs the file tree, not an AST;
    it lives in {!Driver}. *)

val rules : (string * string) list
(** [(id, one-line description)] for every rule, including [M1] and
    the parse-failure pseudo-rule [E0]. *)

val in_lib : string -> bool
(** The path is under [lib/] — the P1 (and {!Driver}'s M1) scope. *)

val lint_source : path:string -> string -> Finding.t list
(** [lint_source ~path source] parses and checks one [.ml] source.
    [path] must be the repo-relative path with ['/'] separators; it
    scopes the path-dependent rules (D2's prng exemption, D3's
    core/impl scope, P1's lib scope). A file that does not parse
    yields a single [E0] finding. Results are sorted with
    {!Finding.compare}. *)
