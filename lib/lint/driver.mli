(** Repo-tree lint driver: walks [lib/], [bin/], [bench/] and [test/]
    under a root directory, runs {!Lint.lint_source} on every [.ml],
    checks rule [M1] (every [lib/] module has a [.mli]) against the
    file tree, and aggregates a report. *)

type report = {
  findings : Finding.t list;  (** non-suppressed, in {!Finding.compare} order *)
  suppressed : Finding.t list;
      (** findings at [[@gcs.lint.allow]]-attributed sites, same order *)
  files : int;  (** [.ml] files scanned *)
  lock_edges : (string * string * string) list;
      (** static lock-order edges [(file, outer, inner)] from nested
          [Lock.with_lock] / [Mutex.protect] pairs — the static half of
          the [gcs lockcheck] cross-validation *)
}

val roots : string list
(** The scanned top-level directories: [lib bin bench test]. *)

val find_root : ?from:string -> unit -> string option
(** Walk up from [from] (default [Sys.getcwd ()]) to the nearest
    directory containing [dune-project]. *)

val run : root:string -> report
(** Lint the tree under [root]. The scan order (and so the report
    order) is sorted, independent of directory enumeration order.
    Raises [Sys_error] if [root] lacks a [lib/] directory — a wrong
    root must not pass as a clean tree. *)

val clean : report -> bool
(** No non-suppressed findings. *)

val to_json : report -> Gcs_stdx.Jsonx.t

val pp : Format.formatter -> report -> unit
(** Findings one per line ([file:line:col  RULE  message], suppressed
    ones marked [(allowed)]), then a one-line summary. *)
