open Parsetree

let rules =
  [
    ( "D1",
      "Hashtbl.iter/fold/to_seq in hash order without an enclosing \
       List.sort sink" );
    ( "D2",
      "entropy source outside lib/stdx/prng.ml, or wall-clock source \
       outside lib/transport/clock.ml" );
    ( "D3",
      "polymorphic compare/=/Hashtbl.hash on constructed operands in \
       lib/core or lib/impl" );
    ("P1", "partial stdlib function (Option.get, List.hd, ...) in lib/");
    ("P2", "catch-all exception handler that neither matches nor re-raises");
    ( "C1",
      "mutable state captured by a Domain.spawn/Pool closure and written \
       without Mailbox, Atomic or Lock routing" );
    ( "C2",
      "Mutex.lock without a provable matching unlock on every exit path \
       (exception-unsafe critical section); use Gcs_stdx.Lock.with_lock" );
    ( "C3",
      "Atomic.get followed by Atomic.set on the same atomic: a lost-update \
       read-modify-write; use compare_and_set/fetch_and_add" );
    ( "C4",
      "blocking call while a lock is held, or a cycle in the static \
       lock-order graph (Lock.with_lock nesting)" );
    ( "A1",
      "[@gcs.lint.allow] suppression under which nothing fires; delete the \
       stale attribute" );
    ("M1", "lib/ module without an interface (.mli)");
    ("E0", "source file does not parse");
  ]

(* ------------------------- path predicates -------------------------- *)

let under prefix path =
  String.length path >= String.length prefix
  && String.equal (String.sub path 0 (String.length prefix)) prefix

let in_lib path = under "lib/" path
let in_d3_scope path = under "lib/core/" path || under "lib/impl/" path
let is_prng path = String.equal path "lib/stdx/prng.ml"

(* The bus transport's monotonic clock is the one sanctioned wall-clock
   sink: everything else must take time from a backend, so that the same
   automata stay replayable on the simulator. *)
let is_clock path = String.equal path "lib/transport/clock.ml"

(* The instrumented lock wrapper is the one sanctioned home of raw
   [Mutex.lock]/[unlock] (rule C2): it is where exception safety is
   proved once, by review, instead of at every call site. *)
let is_lock_home path = String.equal path "lib/stdx/lock.ml"

(* --------------------------- identifiers ---------------------------- *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (_, l) -> flatten l

(* Match on the last path components so [Stdlib.Hashtbl.fold] and
   [Hashtbl.fold] classify alike. *)
let last2 path =
  match List.rev path with
  | f :: m :: _ -> Some (m, f)
  | [ f ] -> Some ("", f)
  | [] -> None

let unordered_hashtbl path =
  match last2 path with
  | Some ("Hashtbl", ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values" as f)) ->
      Some ("Hashtbl." ^ f)
  | _ -> None

let entropy path =
  match path with
  | "Random" :: rest -> Some (String.concat "." ("Random" :: rest))
  | _ -> None

let wall_clock path =
  match last2 path with
  | Some ("Sys", "time") -> Some "Sys.time"
  | Some ("Unix", "gettimeofday") -> Some "Unix.gettimeofday"
  | Some ("Unix", "time") -> Some "Unix.time"
  | _ -> None

let partial_fn path =
  match last2 path with
  | Some ("Option", "get") -> Some ("Option.get", "None")
  | Some ("List", "hd") -> Some ("List.hd", "the empty list")
  | Some ("List", "tl") -> Some ("List.tl", "the empty list")
  | Some (("Array" | "String") as m, f)
    when under "unsafe_" f ->
      Some (m ^ "." ^ f, "out-of-bounds access")
  | _ -> None

let sort_sink path =
  match last2 path with
  | Some ("List", ("sort" | "stable_sort" | "sort_uniq" | "fast_sort")) ->
      true
  | _ -> false

(* C1: spawn-like functions whose closure argument runs on another
   domain. *)
let spawn_like path =
  match last2 path with
  | Some ("Domain", "spawn") | Some ("Pool", ("map" | "iter")) -> true
  | _ -> false

(* C1: operations that write shared mutable state in place. Returns the
   expression holding the mutated value. *)
let mutation_of_apply path args =
  let first_nolabel () =
    List.find_map
      (function Asttypes.Nolabel, a -> Some a | _ -> None)
      args
  in
  match last2 path with
  | Some ("", ":=") -> (
      match first_nolabel () with Some a -> Some (a, ":=") | None -> None)
  | Some ("", ("incr" | "decr" as f)) | Some ("Ref", ("incr" | "decr" as f))
    -> (
      match first_nolabel () with Some a -> Some (a, f) | None -> None)
  | Some (("Array" | "Bytes") as m, (("set" | "fill" | "blit") as f))
  | Some
      ( ("Hashtbl" as m),
        (( "add" | "replace" | "remove" | "reset" | "clear"
         | "filter_map_inplace" ) as f) )
  | Some (("Queue" | "Stack" | "Buffer") as m, f) -> (
      match first_nolabel () with
      | Some a -> Some (a, m ^ "." ^ f)
      | None -> None)
  | _ -> None

(* C4: calls that can block the domain. *)
let blocking_call path =
  match last2 path with
  | Some ("Condition", "wait") -> Some "Condition.wait"
  | Some ("Mutex", "lock") -> Some "Mutex.lock"
  | Some ("Mailbox", ("wait" | "recv" as f)) -> Some ("Mailbox." ^ f)
  | Some ("Domain", "join") -> Some "Domain.join"
  | Some ("Pool", ("map" | "iter" as f)) -> Some ("Pool." ^ f)
  | Some ("Clock", "sleep") -> Some "Clock.sleep"
  | Some ("Unix", ("sleep" | "sleepf" as f)) -> Some ("Unix." ^ f)
  | Some ("Thread", "delay") -> Some "Thread.delay"
  | _ -> None

(* ------------------------ allow attributes -------------------------- *)

(* One entry per [@gcs.lint.allow] attribute: the rules it names and the
   attribute's own location (A1 reports stale attributes there). *)
let allow_scopes_of_attrs attrs =
  List.filter_map
    (fun (a : attribute) ->
      if String.equal a.attr_name.txt "gcs.lint.allow" then
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
            let rules =
              String.split_on_char ' ' s
              |> List.concat_map (String.split_on_char ',')
              |> List.filter (fun r -> not (String.equal r ""))
            in
            Some (rules, a.attr_loc)
        | _ -> None
      else None)
    attrs

(* ----------------------------- context ------------------------------ *)

type scope = {
  s_rules : string list;
  s_loc : Location.t;
  mutable s_hits : string list;  (* rules that actually suppressed something *)
}

type ctx = {
  path : string;
  mutable scopes : scope list;  (* active allow scopes, innermost first *)
  mutable all_scopes : scope list;  (* every scope ever opened (A1 audit) *)
  mutable sanctioned : expression list;  (* by physical identity *)
  mutable handled_locks : expression list;  (* Mutex.lock already judged (C2) *)
  mutable spawn_frames : (string, unit) Hashtbl.t list;
      (* C1: bound-name sets of enclosing spawn closures, innermost first *)
  mutable held : string list;  (* C4: locks held syntactically, innermost first *)
  mutable lock_edges : (string * string * Location.t * bool) list;
      (* C4: (held, acquired, site, suppressed), in source order *)
  mutable spawn_lambdas : expression list;  (* by physical identity *)
  mutable acc : Finding.t list;
  local_compare : bool;  (* the file defines its own [compare] *)
}

let allowed ctx rule =
  let hit = ref false in
  List.iter
    (fun s ->
      if List.mem rule s.s_rules then begin
        hit := true;
        if not (List.mem rule s.s_hits) then s.s_hits <- rule :: s.s_hits
      end)
    ctx.scopes;
  !hit

let push ctx (rules, loc) =
  let s = { s_rules = rules; s_loc = loc; s_hits = [] } in
  ctx.scopes <- s :: ctx.scopes;
  ctx.all_scopes <- s :: ctx.all_scopes

let pop ctx =
  match ctx.scopes with _ :: rest -> ctx.scopes <- rest | [] -> ()

let report ?suppressed ctx (loc : Location.t) rule fmt =
  Printf.ksprintf
    (fun message ->
      let suppressed =
        match suppressed with Some s -> s | None -> allowed ctx rule
      in
      let p = loc.Location.loc_start in
      ctx.acc <-
        Finding.v ~file:ctx.path ~line:p.Lexing.pos_lnum
          ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
          ~rule ~suppressed message
        :: ctx.acc)
    fmt

(* --------------------------- expression helpers --------------------- *)

let rec head e =
  match e.pexp_desc with Pexp_apply (f, _) -> head f | _ -> e

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flatten txt)
  | _ -> None

let head_path e = ident_path (head e)

let is_sort_sink e =
  match head_path e with Some p -> sort_sink p | None -> false

(* Canonical text of an ident-or-field chain ([l], [t.lock], [a.b.c]);
   [None] for anything else. Used to match lock values across C2/C3/C4
   sites within one file. *)
let rec canonical e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (String.concat "." (flatten txt))
  | Pexp_field (b, { txt; _ }) -> (
      match canonical b with
      | Some base -> Some (base ^ "." ^ String.concat "." (flatten txt))
      | None -> None)
  | _ -> None

(* The base variable of a mutation target: [r] for [r := v], [t] for
   [t.field <- v] and [Hashtbl.replace t k v]. Module-qualified targets
   yield [None]. *)
let rec base_var e =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident v; _ } -> Some v
  | Pexp_field (b, _) -> base_var b
  | Pexp_apply (f, args) -> (
      (* a.(i) parses as Array.get a i: recurse into the collection *)
      match (ident_path f, args) with
      | Some p, (Asttypes.Nolabel, a) :: _
        when match last2 p with
             | Some (("Array" | "Bytes" | "String"), "get") -> true
             | _ -> false ->
          base_var a
      | _ -> None)
  | _ -> None

(* Mark the Hashtbl iteration at the head of [a] (if any) as flowing
   into a sanctioned sink, so the D1 check skips it. *)
let sanction ctx a =
  let h = head a in
  match ident_path h with
  | Some p when Option.is_some (unordered_hashtbl p) ->
      ctx.sanctioned <- h :: ctx.sanctioned
  | _ -> ()

let scalar_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _ | Pconst_string _) ->
      true
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false"); _ }, None)
    ->
      true
  | _ -> false

let constructed e =
  match e.pexp_desc with
  | Pexp_construct _ | Pexp_variant _ | Pexp_tuple _ | Pexp_record _
  | Pexp_array _ ->
      true
  | _ -> false

(* A polymorphic structural primitive, by name. [compare] only counts
   when the file does not shadow it with its own definition. *)
let poly_primitive ctx path =
  match path with
  | [ "compare" ] when not ctx.local_compare -> Some "compare"
  | [ "Stdlib"; "compare" ] -> Some "Stdlib.compare"
  | _ -> (
      match last2 path with
      | Some ("Hashtbl", "hash") -> Some "Hashtbl.hash"
      | _ -> None)

(* Does a handler body re-raise (syntactically contain raise /
   raise_notrace / Printexc.raise_with_backtrace / exit)? *)
let reraises body =
  let found = ref false in
  let expr it e =
    (match ident_path e with
    | Some p -> (
        match List.rev p with
        | ("raise" | "raise_notrace" | "raise_with_backtrace" | "reraise")
          :: _ ->
            found := true
        | _ -> ())
    | None -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  !found

let rec catch_all_pattern p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (q, _) | Ppat_constraint (q, _) -> catch_all_pattern q
  | Ppat_or (a, b) -> catch_all_pattern a || catch_all_pattern b
  | _ -> false

(* Every variable name bound by any pattern inside [e] (function
   parameters, lets, match cases, for indices). Over-approximate on
   purpose: a name bound anywhere inside a spawn closure is treated as
   domain-local (C1 under-reports rather than cries wolf). *)
let bound_names e =
  let tbl = Hashtbl.create 16 in
  let pat it p =
    (match p.ppat_desc with
    | Ppat_var { txt; _ } | Ppat_alias (_, { txt; _ }) ->
        Hashtbl.replace tbl txt ()
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.expr it e;
  tbl

(* Does [e] contain a sub-application [name arg] with canonical [arg]
   equal to [target]? Used for C3 (Atomic.get/set pairing) and C2
   (unlock search). *)
let contains_call ~m ~f ~target e =
  let found = ref false in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply (h, (Asttypes.Nolabel, a) :: _) -> (
        match (ident_path h, canonical a) with
        | Some p, Some c
          when (match last2 p with
               | Some (m', f') -> String.equal m m' && String.equal f f'
               | None -> false)
               && String.equal c target ->
            found := true
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* First [Atomic.set target v] inside [e], for C3's report location.
   [skip_literal] exempts sets of a literal constant: writing [true] /
   [0] under an [Atomic.get] guard is an idempotent latch — the write
   does not depend on the read, so no update can be lost. *)
let first_atomic_set ?(skip_literal = false) ~target e =
  let found = ref None in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply (h, (Asttypes.Nolabel, a) :: rest) -> (
        match (ident_path h, canonical a) with
        | Some p, Some c
          when (match last2 p with
               | Some ("Atomic", "set") -> true
               | _ -> false)
               && String.equal c target
               && not
                    (skip_literal
                    &&
                    match rest with
                    | (_, v) :: _ -> scalar_literal v
                    | [] -> false) ->
            if Option.is_none !found then found := Some e.pexp_loc
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* Canonical names of every [Atomic.get x] inside [e]. *)
let atomic_gets e =
  let acc = ref [] in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply (h, (Asttypes.Nolabel, a) :: _) -> (
        match (ident_path h, canonical a) with
        | Some p, Some c
          when match last2 p with
               | Some ("Atomic", "get") -> true
               | _ -> false ->
            if not (List.mem c !acc) then acc := c :: !acc
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !acc

(* ----------------------------- rule checks -------------------------- *)

let check_d1_ident ctx e path =
  match unordered_hashtbl path with
  | Some name when not (List.memq e ctx.sanctioned) ->
      report ctx e.pexp_loc "D1"
        "%s iterates in unspecified hash order; sort the result \
         (List.sort sink) or allow-attribute an order-insensitive use"
        name
  | _ -> ()

let check_d2_ident ctx e path =
  (match entropy path with
  | Some name when not (is_prng ctx.path) ->
      report ctx e.pexp_loc "D2"
        "%s bypasses the seeded Gcs_stdx.Prng; runs would not be \
         reproducible from a seed"
        name
  | _ -> ());
  match wall_clock path with
  | Some name when not (is_clock ctx.path) ->
      report ctx e.pexp_loc "D2"
        "%s reads the wall clock; take time from the transport backend \
         (Gcs_transport.Clock is the sanctioned sink)"
        name
  | _ -> ()

let check_p1_ident ctx e path =
  if in_lib ctx.path then
    match partial_fn path with
    | Some (name, on) ->
        report ctx e.pexp_loc "P1"
          "partial function %s raises an anonymous error on %s; use a \
           total match raising a diagnostic invariant error"
          name on
    | None -> ()

let check_d3_apply ctx e f args =
  if in_d3_scope ctx.path then begin
    let operands =
      List.filter_map
        (function Asttypes.Nolabel, a -> Some a | _ -> None)
        args
    in
    let no_scalar = not (List.exists scalar_literal operands) in
    (match ident_path f with
    | Some [ ("=" | "<>") ] when no_scalar && List.exists constructed operands
      ->
        report ctx e.pexp_loc "D3"
          "polymorphic =/<> on a constructed operand; use the type's equal \
           (structural equality on sets/maps/floats is not semantic \
           equality)"
    | Some p when no_scalar -> (
        match poly_primitive ctx p with
        | Some name ->
            report ctx e.pexp_loc "D3"
              "polymorphic %s on non-scalar operands; use the type's \
               dedicated comparison"
              name
        | None -> ())
    | _ -> ());
    (* bare [compare] (or friends) passed higher-order, e.g.
       [List.sort compare ...] on constructed elements *)
    List.iter
      (fun (_, a) ->
        match ident_path a with
        | Some p -> (
            match poly_primitive ctx p with
            | Some name ->
                report ctx a.pexp_loc "D3"
                  "polymorphic %s passed to a higher-order function; \
                   pass the type's dedicated comparison"
                  name
            | None -> ())
        | None -> ())
      args
  end

let check_p2_try ctx cases =
  List.iter
    (fun case ->
      if
        catch_all_pattern case.pc_lhs
        && Option.is_none case.pc_guard
        && not (reraises case.pc_rhs)
      then
        report ctx case.pc_lhs.ppat_loc "P2"
          "catch-all exception handler swallows everything (including \
           invariant violations); match specific constructors or \
           re-raise")
    cases

(* --- C1: cross-domain closure writes ------------------------------- *)

let check_c1_mutation ctx e =
  match ctx.spawn_frames with
  | [] -> ()
  | bound :: _ ->
      (* Writes under a held Lock are routed through the sanctioned
         wrapper — exactly the discipline C1 exists to enforce. *)
      if List.is_empty ctx.held then begin
        let site =
          match e.pexp_desc with
          | Pexp_setfield (target, _, _) -> Some (target, "<- field write")
          | Pexp_apply (f, args) -> (
              match ident_path f with
              | Some p -> mutation_of_apply p args
              | None -> None)
          | _ -> None
        in
        match site with
        | Some (target, what) -> (
            match base_var target with
            | Some v when not (Hashtbl.mem bound v) ->
                report ctx e.pexp_loc "C1"
                  "%s writes '%s', captured from outside this \
                   Domain.spawn/Pool closure: a cross-domain data race \
                   unless routed through Mailbox, Atomic or \
                   Gcs_stdx.Lock"
                  what v
            | _ -> ())
        | None -> ()
      end

(* --- C2: exception-unsafe critical sections ------------------------ *)

let is_unlock_of target e =
  match e.pexp_desc with
  | Pexp_apply (h, (Asttypes.Nolabel, a) :: _) -> (
      match (ident_path h, canonical a) with
      | Some p, Some c -> (
          match last2 p with
          | Some ("Mutex", "unlock") -> String.equal c target
          | _ -> false)
      | _ -> false)
  | _ -> false

let contains_unlock_of target e =
  let found = ref false in
  let expr it e =
    if is_unlock_of target e then found := true;
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it e;
  !found

(* Expressions that cannot raise (so are fine to run between lock and
   unlock): variables, constants, ref cell traffic, constructors,
   operators over such, and conditionals/sequences thereof. Any other
   application is assumed able to raise. *)
let rec c2_harmless e =
  match e.pexp_desc with
  | Pexp_ident _ | Pexp_constant _ | Pexp_function _ | Pexp_fun _ -> true
  | Pexp_construct (_, None) -> true
  | Pexp_construct (_, Some a) | Pexp_variant (_, Some a) -> c2_harmless a
  | Pexp_variant (_, None) -> true
  | Pexp_tuple xs | Pexp_array xs -> List.for_all c2_harmless xs
  | Pexp_record (fields, base) ->
      List.for_all (fun (_, v) -> c2_harmless v) fields
      && (match base with Some b -> c2_harmless b | None -> true)
  | Pexp_field (b, _) -> c2_harmless b
  | Pexp_setfield (b, _, v) -> c2_harmless b && c2_harmless v
  | Pexp_sequence (a, b) | Pexp_ifthenelse (a, b, None) ->
      c2_harmless a && c2_harmless b
  | Pexp_ifthenelse (a, b, Some c) ->
      c2_harmless a && c2_harmless b && c2_harmless c
  | Pexp_let (_, vbs, body) ->
      List.for_all (fun vb -> c2_harmless vb.pvb_expr) vbs
      && c2_harmless body
  | Pexp_constraint (a, _) -> c2_harmless a
  | Pexp_apply (f, args) -> (
      match ident_path f with
      | Some p ->
          (match last2 p with
          | Some ("", ("!" | ":=" | "incr" | "decr" | "not" | "ignore"))
          | Some ("Atomic", _) ->
              true
          | Some ("", op)
            when String.length op > 0
                 &&
                 match op.[0] with
                 | 'a' .. 'z' | 'A' .. 'Z' | '_' -> false
                 | _ -> true ->
              true (* infix operators: +, -, *, /, ^, @, comparisons *)
          | _ -> false)
          && List.for_all (fun (_, a) -> c2_harmless a) args
      | None -> false)
  | _ -> false

let is_exception_case case =
  let rec go p =
    match p.ppat_desc with
    | Ppat_exception _ -> true
    | Ppat_or (a, b) -> go a || go b
    | Ppat_alias (q, _) | Ppat_constraint (q, _) -> go q
    | _ -> false
  in
  go case.pc_lhs

(* Walk the continuation after [Mutex.lock target] looking for a
   matching unlock that is reached on every path, including the
   exceptional ones. *)
let rec c2_scan target e =
  if is_unlock_of target e then None
  else
    match e.pexp_desc with
    | Pexp_sequence (a, b) ->
        if is_unlock_of target a then None
        else if c2_harmless a then c2_scan target b
        else if
          (* try f () with e -> unlock; raise e — the handler restores
             the invariant, so the section is exception-safe *)
          match a.pexp_desc with
          | Pexp_try (_, cases) ->
              List.for_all
                (fun c -> contains_unlock_of target c.pc_rhs)
                cases
          | _ -> false
        then c2_scan target b
        else Some a.pexp_loc
    | Pexp_let (_, vbs, body)
      when List.for_all (fun vb -> c2_harmless vb.pvb_expr) vbs ->
        c2_scan target body
    | Pexp_match (_, cases)
      when List.exists is_exception_case cases
           && List.for_all
                (fun c -> contains_unlock_of target c.pc_rhs)
                cases ->
        (* match f () with v -> unlock; ... | exception e -> unlock; ... *)
        None
    | _ -> Some e.pexp_loc

let check_c2_sequence ctx e =
  match e.pexp_desc with
  | Pexp_sequence (a, rest) -> (
      match a.pexp_desc with
      | Pexp_apply (h, (Asttypes.Nolabel, arg) :: _)
        when match ident_path h with
             | Some p -> (
                 match last2 p with
                 | Some ("Mutex", "lock") -> true
                 | _ -> false)
             | None -> false ->
          ctx.handled_locks <- a :: ctx.handled_locks;
          if not (is_lock_home ctx.path) then begin
            match canonical arg with
            | Some target -> (
                match c2_scan target rest with
                | None -> ()
                | Some _ ->
                    report ctx a.pexp_loc "C2"
                      "Mutex.lock %s is followed by code that can raise \
                       before Mutex.unlock: an exception leaves the \
                       mutex locked forever; use Gcs_stdx.Lock.with_lock"
                      target)
            | None ->
                report ctx a.pexp_loc "C2"
                  "Mutex.lock on a computed mutex cannot be matched to \
                   its unlock; use Gcs_stdx.Lock.with_lock"
          end
      | _ -> ())
  | _ -> ()

let check_c2_bare_lock ctx e =
  match e.pexp_desc with
  | Pexp_apply (h, _)
    when (match ident_path h with
         | Some p -> (
             match last2 p with Some ("Mutex", "lock") -> true | _ -> false)
         | None -> false)
         && (not (List.memq e ctx.handled_locks))
         && not (is_lock_home ctx.path) ->
      report ctx e.pexp_loc "C2"
        "Mutex.lock outside a lock; ...; unlock sequence: the unlock \
         cannot be verified on every exit path; use \
         Gcs_stdx.Lock.with_lock"
  | _ -> ()

(* --- C3: atomic read-modify-write ---------------------------------- *)

let report_c3 ctx loc target =
  report ctx loc "C3"
    "Atomic.get %s and Atomic.set %s form a read-modify-write: a \
     concurrent writer between them is silently lost; use \
     Atomic.compare_and_set or Atomic.fetch_and_add"
    target target

let check_c3 ctx e =
  match e.pexp_desc with
  | Pexp_apply (h, (Asttypes.Nolabel, a) :: (_, v) :: _)
    when match ident_path h with
         | Some p -> (
             match last2 p with Some ("Atomic", "set") -> true | _ -> false)
         | None -> false -> (
      (* Atomic.set x (f (Atomic.get x)) *)
      match canonical a with
      | Some target when contains_call ~m:"Atomic" ~f:"get" ~target v ->
          report_c3 ctx e.pexp_loc target
      | _ -> ())
  | Pexp_let (_, vbs, body) ->
      (* let seen = Atomic.get x in ... Atomic.set x ... *)
      List.iter
        (fun vb ->
          match vb.pvb_expr.pexp_desc with
          | Pexp_apply (h, (Asttypes.Nolabel, a) :: _)
            when match ident_path h with
                 | Some p -> (
                     match last2 p with
                     | Some ("Atomic", "get") -> true
                     | _ -> false)
                 | None -> false -> (
              match canonical a with
              | Some target -> (
                  match first_atomic_set ~target body with
                  | Some loc -> report_c3 ctx loc target
                  | None -> ())
              | None -> ())
          | _ -> ())
        vbs
  | Pexp_ifthenelse (cond, bthen, belse) ->
      (* if Atomic.get x ... then Atomic.set x ... (check-then-act) *)
      List.iter
        (fun target ->
          let branch_set b =
            match b with
            | Some b -> first_atomic_set ~skip_literal:true ~target b
            | None -> None
          in
          match branch_set (Some bthen) with
          | Some loc -> report_c3 ctx loc target
          | None -> (
              match branch_set belse with
              | Some loc -> report_c3 ctx loc target
              | None -> ()))
        (atomic_gets cond)
  | _ -> ()

(* --- C4: blocking under a lock ------------------------------------- *)

let check_c4_blocking ctx e =
  match (e.pexp_desc, ctx.held) with
  | _, [] -> ()
  | Pexp_apply (h, args), innermost :: others -> (
      match head_path (head h) with
      | None -> ()
      | Some p -> (
          match last2 p with
          | Some ("Lock", "wait") -> (
              (* Lock.wait cond l releases exactly l while waiting: fine
                 when l is the only lock held. *)
              let lock_arg =
                match
                  List.filter_map
                    (function Asttypes.Nolabel, a -> Some a | _ -> None)
                    args
                with
                | [ _; l ] -> canonical l
                | _ -> None
              in
              match (lock_arg, others) with
              | Some l, [] when String.equal l innermost -> ()
              | _ ->
                  report ctx e.pexp_loc "C4"
                    "Lock.wait while holding another lock: the wait \
                     releases only its own lock, so the outer one is \
                     held across an unbounded block")
          | _ -> (
              match blocking_call p with
              | Some name ->
                  report ctx e.pexp_loc "C4"
                    "%s while holding lock '%s': a blocking call under a \
                     held lock stalls every domain contending for it \
                     (and can deadlock)"
                    name innermost
              | None -> ())))
  | _ -> ()

(* [Lock.with_lock l f] / [Mutex.protect l f]: the canonical lock name
   to hold while visiting the children. *)
let with_lock_target e =
  match e.pexp_desc with
  | Pexp_apply (h, (Asttypes.Nolabel, l) :: _) -> (
      match ident_path h with
      | Some p -> (
          match last2 p with
          | Some ("Lock", "with_lock") | Some ("Mutex", "protect") ->
              canonical l
          | _ -> None)
      | None -> None)
  | _ -> None

let check_expr ctx e =
  (* Sink bookkeeping first: children are visited after this. *)
  (match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      if is_sort_sink f then List.iter (fun (_, a) -> sanction ctx a) args;
      match (ident_path f, args) with
      | Some [ "|>" ], [ (_, lhs); (_, rhs) ] ->
          if is_sort_sink rhs then sanction ctx lhs
      | Some [ "@@" ], [ (_, lhs); (_, rhs) ] ->
          if is_sort_sink lhs then sanction ctx rhs
      | _ -> ())
  | _ -> ());
  check_c2_sequence ctx e;
  check_c3 ctx e;
  check_c1_mutation ctx e;
  check_c4_blocking ctx e;
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
      let path = flatten txt in
      check_d1_ident ctx e path;
      check_d2_ident ctx e path;
      check_p1_ident ctx e path
  | Pexp_apply (f, args) ->
      check_c2_bare_lock ctx e;
      check_d3_apply ctx e f args
  | Pexp_try (_, cases) -> check_p2_try ctx cases
  | _ -> ()

(* ------------------- spawn-closure discovery (C1) ------------------- *)

(* Two passes over the parsetree before the main walk: collect every
   [let]-bound name's expression, then resolve the closure argument of
   each Domain.spawn / Pool.map / Pool.iter site to the function
   expression(s) it runs — a literal lambda, a named local function
   ([Domain.spawn worker]), or one call deep through a trampoline
   ([Domain.spawn (fun () -> node p)] analyzes [node]). Deeper call
   chains are out of the heuristic's reach, by design. *)
let spawn_closures structure =
  let bindings : (string, expression) Hashtbl.t = Hashtbl.create 32 in
  let collect_vb vb =
    match vb.pvb_pat.ppat_desc with
    | Ppat_var { txt; _ } -> Hashtbl.replace bindings txt vb.pvb_expr
    | _ -> ()
  in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) -> List.iter collect_vb vbs
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let structure_item it si =
    (match si.pstr_desc with
    | Pstr_value (_, vbs) -> List.iter collect_vb vbs
    | _ -> ());
    Ast_iterator.default_iterator.structure_item it si
  in
  let it = { Ast_iterator.default_iterator with expr; structure_item } in
  it.structure it structure;
  let marked = ref [] in
  let mark e = if not (List.memq e !marked) then marked := e :: !marked in
  let is_function e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> true
    | _ -> false
  in
  let mark_named name =
    match Hashtbl.find_opt bindings name with
    | Some e when is_function e -> mark e
    | _ -> ()
  in
  let rec body_of e =
    match e.pexp_desc with Pexp_fun (_, _, _, b) -> body_of b | _ -> e
  in
  let mark_target a =
    match a.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> (
        mark a;
        match head_path (head (body_of a)) with
        | Some [ name ] -> mark_named name
        | _ -> ())
    | Pexp_ident { txt = Longident.Lident name; _ } -> mark_named name
    | _ -> ()
  in
  let expr it e =
    (match e.pexp_desc with
    | Pexp_apply (f, args) -> (
        match ident_path f with
        | Some p when spawn_like p -> (
            match
              List.find_map
                (function Asttypes.Nolabel, a -> Some a | _ -> None)
                args
            with
            | Some a -> mark_target a
            | None -> ())
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.structure it structure;
  !marked

(* ------------------------------ the walk ---------------------------- *)

let iterator ctx =
  let expr it e =
    let allows = allow_scopes_of_attrs e.pexp_attributes in
    let allows =
      allows
      @
      match e.pexp_desc with
      | Pexp_let (_, vbs, _) ->
          List.concat_map
            (fun vb -> allow_scopes_of_attrs vb.pvb_attributes)
            vbs
      | _ -> []
    in
    List.iter (push ctx) allows;
    check_expr ctx e;
    let frame = List.memq e ctx.spawn_lambdas in
    if frame then ctx.spawn_frames <- bound_names e :: ctx.spawn_frames;
    let held_lock = with_lock_target e in
    (match held_lock with
    | Some l ->
        let suppressed = allowed ctx "C4" in
        List.iter
          (fun h ->
            ctx.lock_edges <- (h, l, e.pexp_loc, suppressed) :: ctx.lock_edges)
          ctx.held;
        ctx.held <- l :: ctx.held
    | None -> ());
    Ast_iterator.default_iterator.expr it e;
    (match (held_lock, ctx.held) with
    | Some _, _ :: rest -> ctx.held <- rest
    | _ -> ());
    if frame then
      ctx.spawn_frames <-
        (match ctx.spawn_frames with _ :: rest -> rest | [] -> []);
    List.iter (fun _ -> pop ctx) allows
  in
  let structure_item it si =
    match si.pstr_desc with
    | Pstr_attribute a ->
        (* floating [@@@gcs.lint.allow]: rest of the file *)
        List.iter (push ctx) (allow_scopes_of_attrs [ a ])
    | _ ->
        let allows =
          match si.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.concat_map
                (fun vb -> allow_scopes_of_attrs vb.pvb_attributes)
                vbs
          | Pstr_eval (_, attrs) -> allow_scopes_of_attrs attrs
          | _ -> []
        in
        List.iter (push ctx) allows;
        Ast_iterator.default_iterator.structure_item it si;
        List.iter (fun _ -> pop ctx) allows
  in
  { Ast_iterator.default_iterator with expr; structure_item }

let defines_local_compare structure =
  let found = ref false in
  let pat it p =
    (match p.ppat_desc with
    | Ppat_var { txt = "compare"; _ } -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.structure it structure;
  !found

let parse ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error err ->
      Error (Syntaxerr.location_of_error err, "syntax error")
  | exception Lexer.Error (_, loc) -> Error (loc, "lexer error")

(* C4's second half: cycles in the per-file static lock-order graph. *)
let report_lock_cycles ctx =
  let edges = List.rev ctx.lock_edges in
  let sccs =
    Gcs_stdx.Graphx.cyclic_sccs ~compare:String.compare
      ~edges:(List.map (fun (a, b, _, _) -> (a, b)) edges)
  in
  List.iter
    (fun scc ->
      let in_scc n = List.exists (String.equal n) scc in
      let participating =
        List.filter (fun (a, b, _, _) -> in_scc a && in_scc b) edges
      in
      (* An allow on any participating acquisition sanctions the whole
         cycle: the annotated site is the one declaring its order
         intentional, so the finding anchors there. *)
      let chosen =
        match List.find_opt (fun (_, _, _, s) -> s) participating with
        | Some _ as e -> e
        | None -> ( match participating with e :: _ -> Some e | [] -> None)
      in
      match chosen with
      | None -> ()
      | Some (_, _, loc, suppressed) ->
          let cycle =
            match scc with
            | first :: _ -> String.concat " -> " (scc @ [ first ])
            | [] -> ""
          in
          report ~suppressed ctx loc "C4"
            "static lock-order cycle %s: two call paths acquire these \
             locks in conflicting orders — a deadlock under the right \
             interleaving"
            cycle)
    sccs

(* A1: suppressions that suppressed nothing. Reported live always — the
   fix is deleting the attribute, not suppressing the audit. *)
let report_unused_allows ctx =
  List.iter
    (fun s ->
      let unused =
        List.filter (fun r -> not (List.mem r s.s_hits)) s.s_rules
      in
      match unused with
      | [] -> ()
      | _ :: _ ->
          report ~suppressed:false ctx s.s_loc "A1"
            "[@gcs.lint.allow \"%s\"] suppresses nothing in its scope; \
             delete the stale attribute (or narrow its rule list)"
            (String.concat ", " unused))
    ctx.all_scopes

let analyze ~path source =
  match parse ~path source with
  | Error (loc, what) ->
      let p = loc.Location.loc_start in
      ( [
          Finding.v ~file:path ~line:p.Lexing.pos_lnum
            ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
            ~rule:"E0" ~suppressed:false
            (Printf.sprintf "%s: file does not parse" what);
        ],
        [] )
  | Ok structure ->
      let ctx =
        {
          path;
          scopes = [];
          all_scopes = [];
          sanctioned = [];
          handled_locks = [];
          spawn_frames = [];
          held = [];
          lock_edges = [];
          spawn_lambdas = spawn_closures structure;
          acc = [];
          local_compare = defines_local_compare structure;
        }
      in
      let it = iterator ctx in
      it.structure it structure;
      report_lock_cycles ctx;
      report_unused_allows ctx;
      let edges =
        List.rev ctx.lock_edges
        |> List.map (fun (a, b, _, _) -> (a, b))
        |> List.sort_uniq (fun (a, b) (c, d) ->
               match String.compare a c with
               | 0 -> String.compare b d
               | k -> k)
      in
      (List.sort_uniq Finding.compare ctx.acc, edges)

let lint_source ~path source = fst (analyze ~path source)
