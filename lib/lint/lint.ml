open Parsetree

let rules =
  [
    ( "D1",
      "Hashtbl.iter/fold/to_seq in hash order without an enclosing \
       List.sort sink" );
    ( "D2",
      "entropy source outside lib/stdx/prng.ml, or wall-clock source \
       outside lib/transport/clock.ml" );
    ( "D3",
      "polymorphic compare/=/Hashtbl.hash on constructed operands in \
       lib/core or lib/impl" );
    ("P1", "partial stdlib function (Option.get, List.hd, ...) in lib/");
    ("P2", "catch-all exception handler that neither matches nor re-raises");
    ("M1", "lib/ module without an interface (.mli)");
    ("E0", "source file does not parse");
  ]

(* ------------------------- path predicates -------------------------- *)

let under prefix path =
  String.length path >= String.length prefix
  && String.equal (String.sub path 0 (String.length prefix)) prefix

let in_lib path = under "lib/" path
let in_d3_scope path = under "lib/core/" path || under "lib/impl/" path
let is_prng path = String.equal path "lib/stdx/prng.ml"

(* The bus transport's monotonic clock is the one sanctioned wall-clock
   sink: everything else must take time from a backend, so that the same
   automata stay replayable on the simulator. *)
let is_clock path = String.equal path "lib/transport/clock.ml"

(* --------------------------- identifiers ---------------------------- *)

let rec flatten = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> flatten l @ [ s ]
  | Longident.Lapply (_, l) -> flatten l

(* Match on the last path components so [Stdlib.Hashtbl.fold] and
   [Hashtbl.fold] classify alike. *)
let last2 path =
  match List.rev path with
  | f :: m :: _ -> Some (m, f)
  | [ f ] -> Some ("", f)
  | [] -> None

let unordered_hashtbl path =
  match last2 path with
  | Some ("Hashtbl", ("iter" | "fold" | "to_seq" | "to_seq_keys" | "to_seq_values" as f)) ->
      Some ("Hashtbl." ^ f)
  | _ -> None

let entropy path =
  match path with
  | "Random" :: rest -> Some (String.concat "." ("Random" :: rest))
  | _ -> None

let wall_clock path =
  match last2 path with
  | Some ("Sys", "time") -> Some "Sys.time"
  | Some ("Unix", "gettimeofday") -> Some "Unix.gettimeofday"
  | Some ("Unix", "time") -> Some "Unix.time"
  | _ -> None

let partial_fn path =
  match last2 path with
  | Some ("Option", "get") -> Some ("Option.get", "None")
  | Some ("List", "hd") -> Some ("List.hd", "the empty list")
  | Some ("List", "tl") -> Some ("List.tl", "the empty list")
  | Some (("Array" | "String") as m, f)
    when under "unsafe_" f ->
      Some (m ^ "." ^ f, "out-of-bounds access")
  | _ -> None

let sort_sink path =
  match last2 path with
  | Some ("List", ("sort" | "stable_sort" | "sort_uniq" | "fast_sort")) ->
      true
  | _ -> false

(* ------------------------ allow attributes -------------------------- *)

let allow_rules_of_attrs attrs =
  List.concat_map
    (fun (a : attribute) ->
      if String.equal a.attr_name.txt "gcs.lint.allow" then
        match a.attr_payload with
        | PStr
            [
              {
                pstr_desc =
                  Pstr_eval
                    ( { pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ },
                      _ );
                _;
              };
            ] ->
            String.split_on_char ' ' s
            |> List.concat_map (String.split_on_char ',')
            |> List.filter (fun r -> not (String.equal r ""))
        | _ -> []
      else [])
    attrs

(* ----------------------------- context ------------------------------ *)

type ctx = {
  path : string;
  mutable scopes : string list list;  (* active allow scopes *)
  mutable sanctioned : expression list;  (* by physical identity *)
  mutable acc : Finding.t list;
  local_compare : bool;  (* the file defines its own [compare] *)
}

let allowed ctx rule = List.exists (List.mem rule) ctx.scopes

let push ctx allows = ctx.scopes <- allows :: ctx.scopes

let pop ctx =
  match ctx.scopes with _ :: rest -> ctx.scopes <- rest | [] -> ()

let report ctx (loc : Location.t) rule fmt =
  Printf.ksprintf
    (fun message ->
      let p = loc.Location.loc_start in
      ctx.acc <-
        Finding.v ~file:ctx.path ~line:p.Lexing.pos_lnum
          ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
          ~rule ~suppressed:(allowed ctx rule) message
        :: ctx.acc)
    fmt

(* --------------------------- expression helpers --------------------- *)

let rec head e =
  match e.pexp_desc with Pexp_apply (f, _) -> head f | _ -> e

let ident_path e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> Some (flatten txt)
  | _ -> None

let head_path e = ident_path (head e)

let is_sort_sink e =
  match head_path e with Some p -> sort_sink p | None -> false

(* Mark the Hashtbl iteration at the head of [a] (if any) as flowing
   into a sanctioned sink, so the D1 check skips it. *)
let sanction ctx a =
  let h = head a in
  match ident_path h with
  | Some p when Option.is_some (unordered_hashtbl p) ->
      ctx.sanctioned <- h :: ctx.sanctioned
  | _ -> ()

let scalar_literal e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _ | Pconst_string _) ->
      true
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false"); _ }, None)
    ->
      true
  | _ -> false

let constructed e =
  match e.pexp_desc with
  | Pexp_construct _ | Pexp_variant _ | Pexp_tuple _ | Pexp_record _
  | Pexp_array _ ->
      true
  | _ -> false

(* A polymorphic structural primitive, by name. [compare] only counts
   when the file does not shadow it with its own definition. *)
let poly_primitive ctx path =
  match path with
  | [ "compare" ] when not ctx.local_compare -> Some "compare"
  | [ "Stdlib"; "compare" ] -> Some "Stdlib.compare"
  | _ -> (
      match last2 path with
      | Some ("Hashtbl", "hash") -> Some "Hashtbl.hash"
      | _ -> None)

(* Does a handler body re-raise (syntactically contain raise /
   raise_notrace / Printexc.raise_with_backtrace / exit)? *)
let reraises body =
  let found = ref false in
  let expr it e =
    (match ident_path e with
    | Some p -> (
        match List.rev p with
        | ("raise" | "raise_notrace" | "raise_with_backtrace" | "reraise")
          :: _ ->
            found := true
        | _ -> ())
    | None -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  it.expr it body;
  !found

let rec catch_all_pattern p =
  match p.ppat_desc with
  | Ppat_any | Ppat_var _ -> true
  | Ppat_alias (q, _) | Ppat_constraint (q, _) -> catch_all_pattern q
  | Ppat_or (a, b) -> catch_all_pattern a || catch_all_pattern b
  | _ -> false

(* ----------------------------- rule checks -------------------------- *)

let check_d1_ident ctx e path =
  match unordered_hashtbl path with
  | Some name when not (List.memq e ctx.sanctioned) ->
      report ctx e.pexp_loc "D1"
        "%s iterates in unspecified hash order; sort the result \
         (List.sort sink) or allow-attribute an order-insensitive use"
        name
  | _ -> ()

let check_d2_ident ctx e path =
  (match entropy path with
  | Some name when not (is_prng ctx.path) ->
      report ctx e.pexp_loc "D2"
        "%s bypasses the seeded Gcs_stdx.Prng; runs would not be \
         reproducible from a seed"
        name
  | _ -> ());
  match wall_clock path with
  | Some name when not (is_clock ctx.path) ->
      report ctx e.pexp_loc "D2"
        "%s reads the wall clock; take time from the transport backend \
         (Gcs_transport.Clock is the sanctioned sink)"
        name
  | _ -> ()

let check_p1_ident ctx e path =
  if in_lib ctx.path then
    match partial_fn path with
    | Some (name, on) ->
        report ctx e.pexp_loc "P1"
          "partial function %s raises an anonymous error on %s; use a \
           total match raising a diagnostic invariant error"
          name on
    | None -> ()

let check_d3_apply ctx e f args =
  if in_d3_scope ctx.path then begin
    let operands =
      List.filter_map
        (function Asttypes.Nolabel, a -> Some a | _ -> None)
        args
    in
    let no_scalar = not (List.exists scalar_literal operands) in
    (match ident_path f with
    | Some [ ("=" | "<>") ] when no_scalar && List.exists constructed operands
      ->
        report ctx e.pexp_loc "D3"
          "polymorphic =/<> on a constructed operand; use the type's equal \
           (structural equality on sets/maps/floats is not semantic \
           equality)"
    | Some p when no_scalar -> (
        match poly_primitive ctx p with
        | Some name ->
            report ctx e.pexp_loc "D3"
              "polymorphic %s on non-scalar operands; use the type's \
               dedicated comparison"
              name
        | None -> ())
    | _ -> ());
    (* bare [compare] (or friends) passed higher-order, e.g.
       [List.sort compare ...] on constructed elements *)
    List.iter
      (fun (_, a) ->
        match ident_path a with
        | Some p -> (
            match poly_primitive ctx p with
            | Some name ->
                report ctx a.pexp_loc "D3"
                  "polymorphic %s passed to a higher-order function; \
                   pass the type's dedicated comparison"
                  name
            | None -> ())
        | None -> ())
      args
  end

let check_p2_try ctx cases =
  List.iter
    (fun case ->
      if
        catch_all_pattern case.pc_lhs
        && Option.is_none case.pc_guard
        && not (reraises case.pc_rhs)
      then
        report ctx case.pc_lhs.ppat_loc "P2"
          "catch-all exception handler swallows everything (including \
           invariant violations); match specific constructors or \
           re-raise")
    cases

let check_expr ctx e =
  (* Sink bookkeeping first: children are visited after this. *)
  (match e.pexp_desc with
  | Pexp_apply (f, args) -> (
      if is_sort_sink f then List.iter (fun (_, a) -> sanction ctx a) args;
      match (ident_path f, args) with
      | Some [ "|>" ], [ (_, lhs); (_, rhs) ] ->
          if is_sort_sink rhs then sanction ctx lhs
      | Some [ "@@" ], [ (_, lhs); (_, rhs) ] ->
          if is_sort_sink lhs then sanction ctx rhs
      | _ -> ())
  | _ -> ());
  match e.pexp_desc with
  | Pexp_ident { txt; _ } ->
      let path = flatten txt in
      check_d1_ident ctx e path;
      check_d2_ident ctx e path;
      check_p1_ident ctx e path
  | Pexp_apply (f, args) -> check_d3_apply ctx e f args
  | Pexp_try (_, cases) -> check_p2_try ctx cases
  | _ -> ()

(* ------------------------------ the walk ---------------------------- *)

let iterator ctx =
  let expr it e =
    let allows =
      allow_rules_of_attrs e.pexp_attributes
      @
      match e.pexp_desc with
      | Pexp_let (_, vbs, _) ->
          List.concat_map
            (fun vb -> allow_rules_of_attrs vb.pvb_attributes)
            vbs
      | _ -> []
    in
    if not (List.is_empty allows) then push ctx allows;
    check_expr ctx e;
    Ast_iterator.default_iterator.expr it e;
    if not (List.is_empty allows) then pop ctx
  in
  let structure_item it si =
    match si.pstr_desc with
    | Pstr_attribute a ->
        (* floating [@@@gcs.lint.allow]: rest of the file *)
        let allows = allow_rules_of_attrs [ a ] in
        if not (List.is_empty allows) then push ctx allows
    | _ ->
        let allows =
          match si.pstr_desc with
          | Pstr_value (_, vbs) ->
              List.concat_map
                (fun vb -> allow_rules_of_attrs vb.pvb_attributes)
                vbs
          | Pstr_eval (_, attrs) -> allow_rules_of_attrs attrs
          | _ -> []
        in
        if not (List.is_empty allows) then push ctx allows;
        Ast_iterator.default_iterator.structure_item it si;
        if not (List.is_empty allows) then pop ctx
  in
  { Ast_iterator.default_iterator with expr; structure_item }

let defines_local_compare structure =
  let found = ref false in
  let pat it p =
    (match p.ppat_desc with
    | Ppat_var { txt = "compare"; _ } -> found := true
    | _ -> ());
    Ast_iterator.default_iterator.pat it p
  in
  let it = { Ast_iterator.default_iterator with pat } in
  it.structure it structure;
  !found

let parse ~path source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf path;
  match Parse.implementation lexbuf with
  | structure -> Ok structure
  | exception Syntaxerr.Error err ->
      Error (Syntaxerr.location_of_error err, "syntax error")
  | exception Lexer.Error (_, loc) -> Error (loc, "lexer error")

let lint_source ~path source =
  match parse ~path source with
  | Error (loc, what) ->
      let p = loc.Location.loc_start in
      [
        Finding.v ~file:path ~line:p.Lexing.pos_lnum
          ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol)
          ~rule:"E0" ~suppressed:false
          (Printf.sprintf "%s: file does not parse" what);
      ]
  | Ok structure ->
      let ctx =
        {
          path;
          scopes = [];
          sanctioned = [];
          acc = [];
          local_compare = defines_local_compare structure;
        }
      in
      let it = iterator ctx in
      it.structure it structure;
      List.sort Finding.compare ctx.acc
