type report = {
  findings : Finding.t list;
  suppressed : Finding.t list;
  files : int;
  lock_edges : (string * string * string) list;
}

let roots = [ "lib"; "bin"; "bench"; "test" ]

let find_root ?from () =
  let rec up dir =
    if Sys.file_exists (Filename.concat dir "dune-project") then Some dir
    else
      let parent = Filename.dirname dir in
      if String.equal parent dir then None else up parent
  in
  up (match from with Some d -> d | None -> Sys.getcwd ())

(* Sorted, recursive listing of repo-relative paths under [rel];
   sorting makes the report independent of readdir order. *)
let rec walk ~root rel acc =
  let abs = Filename.concat root rel in
  if not (Sys.file_exists abs) then acc
  else if Sys.is_directory abs then
    let entries = Sys.readdir abs in
    Array.sort String.compare entries;
    Array.fold_left
      (fun acc entry -> walk ~root (Filename.concat rel entry) acc)
      acc entries
  else rel :: acc

let read_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let has_suffix suffix s =
  let n = String.length suffix and l = String.length s in
  l >= n && String.equal (String.sub s (l - n) n) suffix

(* M1: every lib/ implementation ships an interface. *)
let check_interfaces files =
  let mlis =
    List.filter_map
      (fun f -> if has_suffix ".mli" f then Some f else None)
      files
  in
  List.filter_map
    (fun f ->
      if
        has_suffix ".ml" f
        && Lint.in_lib f
        && not (List.mem (f ^ "i") mlis)
      then
        Some
          (Finding.v ~file:f ~line:1 ~col:0 ~rule:"M1" ~suppressed:false
             "lib/ module has no interface; add a .mli so the exported \
              surface is reviewed")
      else None)
    files

let run ~root =
  if not (Sys.is_directory (Filename.concat root "lib")) then
    raise
      (Sys_error
         (Printf.sprintf "gcs lint: no lib/ under %s (wrong --root?)" root));
  let files =
    List.concat_map (fun top -> List.rev (walk ~root top [])) roots
    |> List.filter (fun f -> has_suffix ".ml" f || has_suffix ".mli" f)
    |> List.sort String.compare
  in
  let ml_files = List.filter (has_suffix ".ml") files in
  let per_file =
    List.map
      (fun f -> (f, Lint.analyze ~path:f (read_file (Filename.concat root f))))
      ml_files
  in
  let all =
    check_interfaces files
    @ List.concat_map (fun (_, (findings, _)) -> findings) per_file
  in
  let lock_edges =
    List.concat_map
      (fun (f, (_, edges)) -> List.map (fun (a, b) -> (f, a, b)) edges)
      per_file
  in
  let all = List.sort Finding.compare all in
  let suppressed, findings =
    List.partition (fun f -> f.Finding.suppressed) all
  in
  { findings; suppressed; files = List.length ml_files; lock_edges }

let clean report = List.is_empty report.findings

let to_json report =
  Gcs_stdx.Jsonx.Obj
    [
      ("findings", Gcs_stdx.Jsonx.Arr (List.map Finding.to_json report.findings));
      ( "suppressed",
        Gcs_stdx.Jsonx.Arr (List.map Finding.to_json report.suppressed) );
      ("files", Gcs_stdx.Jsonx.Num (float_of_int report.files));
      ( "lock_edges",
        Gcs_stdx.Jsonx.Arr
          (List.map
             (fun (file, a, b) ->
               Gcs_stdx.Jsonx.Obj
                 [
                   ("file", Gcs_stdx.Jsonx.Str file);
                   ("from", Gcs_stdx.Jsonx.Str a);
                   ("to", Gcs_stdx.Jsonx.Str b);
                 ])
             report.lock_edges) );
    ]

let pp ppf report =
  List.iter
    (fun f -> Format.fprintf ppf "%s@." (Finding.to_string f))
    report.findings;
  List.iter
    (fun f -> Format.fprintf ppf "%s@." (Finding.to_string f))
    report.suppressed;
  Format.fprintf ppf
    "gcs lint: %d finding%s, %d allowed suppression%s, %d files@."
    (List.length report.findings)
    (if List.length report.findings = 1 then "" else "s")
    (List.length report.suppressed)
    (if List.length report.suppressed = 1 then "" else "s")
    report.files
