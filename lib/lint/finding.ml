type t = {
  file : string;
  line : int;
  col : int;
  rule : string;
  message : string;
  suppressed : bool;
}

let v ~file ~line ~col ~rule ~suppressed message =
  { file; line; col; rule; message; suppressed }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> (
              match String.compare a.rule b.rule with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let to_string f =
  Printf.sprintf "%s:%d:%d  %s  %s%s" f.file f.line f.col f.rule
    (if f.suppressed then "(allowed) " else "")
    f.message

let to_json f =
  Gcs_stdx.Jsonx.Obj
    [
      ("file", Gcs_stdx.Jsonx.Str f.file);
      ("line", Gcs_stdx.Jsonx.Num (float_of_int f.line));
      ("col", Gcs_stdx.Jsonx.Num (float_of_int f.col));
      ("rule", Gcs_stdx.Jsonx.Str f.rule);
      ("message", Gcs_stdx.Jsonx.Str f.message);
      ("suppressed", Gcs_stdx.Jsonx.Bool f.suppressed);
    ]
