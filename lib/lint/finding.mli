(** A single lint finding: one rule firing at one source location.

    Suppressed findings (sites carrying a [\[@gcs.lint.allow "RULE"\]]
    attribute) are kept and reported separately rather than dropped, so
    the inventory of sanctioned hazards stays visible and cannot rot
    silently. *)

type t = {
  file : string;  (** repo-relative path, ['/'] separators *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, matching compiler diagnostics *)
  rule : string;  (** rule id: D1, D2, D3, P1, P2, M1 or E0 *)
  message : string;
  suppressed : bool;
}

val v :
  file:string ->
  line:int ->
  col:int ->
  rule:string ->
  suppressed:bool ->
  string ->
  t

val compare : t -> t -> int
(** Orders by file, line, column, rule, message — the stable report
    order, independent of rule evaluation order. *)

val to_string : t -> string
(** ["file:line:col  RULE  message"], with suppressed findings marked. *)

val to_json : t -> Gcs_stdx.Jsonx.t
