open Gcs_core
open Gcs_impl

(** Planted bugs, for validating the fuzzer end to end.

    A mutant emulates a protocol-level defect in VStoTO / VS-node
    behaviour by rewriting the effect batches the real handlers produce —
    dropping, duplicating, reordering or misattributing deliveries and
    view events. Each rewrite fires {e once} per run, and only when a
    state-dependent trigger holds (enough views installed, a minority
    view, a multi-delivery batch), so a mutant is only observable on
    schedules that actually reach the triggering region — exactly what
    the fuzzer must be able to find, and what the shrinker must preserve
    while minimizing. Every mutant is constructed so that some run-level
    oracle (TO/VS conformance, the Theorem 7.2 delivery bound, or a
    node-local invariant) flags the rewritten run. *)

type handlers =
  (To_service.node, Value.t, Msg.t Wire.packet, To_service.out)
  Gcs_sim.Engine.handlers

type t = {
  name : string;
  doc : string;  (** the emulated defect, one line *)
  expected_checks : string list;
      (** oracles that may flag it, e.g. [["to-conformance"]] — a dropped
          delivery surfaces as an order gap or as a bound violation
          depending on whether later deliveries follow it *)
  instrument : To_service.config -> handlers -> handlers;
      (** fresh instrumentation per call: the fire-once latch is allocated
          inside, so instrumented runs on a domain pool stay independent *)
}

val rewrite :
  (Proc.t ->
   To_service.node ->
   (Msg.t Wire.packet, To_service.out) Gcs_sim.Engine.effect list ->
   (Msg.t Wire.packet, To_service.out) Gcs_sim.Engine.effect list) ->
  handlers ->
  handlers
(** Route every handler's effect batch through [f me post_state effects]
    — the building block for mutants with richer per-node state than the
    fire-once latch (e.g. {!Diff_mutant}'s delivery-delay rewrite). *)

val all : t list
val find : string -> t option
val names : string list
