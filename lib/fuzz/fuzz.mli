open Gcs_impl

(** The coverage-guided schedule fuzzer (the main loop).

    Greybox fuzzing over simulated executions: a corpus of schedules is
    mutated under a power schedule that favours entries which discovered
    more abstract-state coverage, candidate batches are executed in
    parallel on a {!Gcs_stdx.Pool}, and the first failing execution is
    handed to the {!Shrink} delta-debugger.

    Determinism: candidate generation draws from one master PRNG
    {e sequentially}, batches have a fixed size independent of the job
    count, executions are pure per input, and results are folded back in
    input order — so the corpus, coverage map, found failure and shrunk
    reproducer are byte-identical at any [jobs], and reproducible from
    [seed] alone. *)

type stats = {
  execs : int;  (** executions performed (seed corpus included) *)
  rounds : int;  (** mutation batches executed *)
  corpus_size : int;
  features : int;  (** cardinality of the global coverage map *)
}

type entry = { input : Input.t; novelty : int }
(** A corpus member and the number of features it contributed when
    admitted (its power-schedule energy). *)

type outcome = {
  stats : stats;
  corpus : entry list;  (** in admission order *)
  coverage : Coverage.t;
  failure : (Input.t * Runner.failure) option;
      (** first failing input, pre-shrink *)
  shrunk : Shrink.result option;
}

type service = Vstoto_stack | Skeen_backend
(** Which service an input drives: the VStoTO stack (default) or the
    Skeen total-order backend with its own oracle chain
    ({!Runner.execute_skeen}). *)

val run :
  ?mutant:Mutant.t ->
  ?skeen_mutant:Skeen_mutant.t ->
  ?service:service ->
  ?jobs:int ->
  ?batch:int ->
  ?shrink_budget:int ->
  ?max_events:int ->
  ?progress:(stats -> unit) ->
  config:To_service.config ->
  seed:int ->
  execs:int ->
  unit ->
  outcome
(** [run ~config ~seed ~execs ()] fuzzes until a failure is found or
    [execs] executions are spent. [batch] (default 8) candidates are
    generated per round; [max_events] (default 40) caps mutated schedule
    size; [jobs] defaults to [GCS_JOBS]; [progress] is called after every
    round. [service] selects the system under test; passing
    [skeen_mutant] implies the Skeen service (the Skeen run reuses the
    config's processor set and δ). [mutant] and [skeen_mutant] are
    mutually exclusive in intent — the one matching the active service
    is used, the other ignored. *)

val stats_to_json : outcome -> string
(** Flat deterministic JSON of the run's observable results (stats,
    failure check, event counts before/after shrinking) — the
    across-[jobs] determinism tests compare these bytes. *)

val corpus_strings : outcome -> string list
(** Serialized corpus in admission order ({!Input.to_string}), for
    corpus dumps and byte-level determinism comparison. *)
