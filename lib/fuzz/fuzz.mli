open Gcs_impl

(** The coverage-guided schedule fuzzer (the main loop).

    Greybox fuzzing over simulated executions: a corpus of schedules is
    mutated under a power schedule that favours entries which discovered
    more abstract-state coverage, candidate batches are executed in
    parallel on a {!Gcs_stdx.Pool}, and the first failing execution is
    handed to the {!Shrink} delta-debugger.

    Determinism: candidate generation draws from one master PRNG
    {e sequentially}, batches have a fixed size independent of the job
    count, executions are pure per input, and results are folded back in
    input order — so the corpus, coverage map, found failure and shrunk
    reproducer are byte-identical at any [jobs], and reproducible from
    [seed] alone. *)

type stats = {
  execs : int;  (** executions performed (seed corpus included) *)
  rounds : int;  (** mutation batches executed *)
  corpus_size : int;
  features : int;  (** cardinality of the global coverage map *)
}

type entry = { input : Input.t; novelty : int }
(** A corpus member and the number of features it contributed when
    admitted (its power-schedule energy). *)

type outcome = {
  stats : stats;
  corpus : entry list;  (** in admission order *)
  coverage : Coverage.t;
  failure : (Input.t * Runner.failure) option;
      (** first failing input, pre-shrink *)
  failures : (Input.t * Runner.failure) list;
      (** every failing input in discovery order — more than one only
          when [stop_on_failure] is false (soak mode) *)
  shrunk : Shrink.result option;
}

type service = Vstoto_stack | Skeen_backend
(** Which service an input drives: the VStoTO stack (default) or the
    Skeen total-order backend with its own oracle chain
    ({!Runner.execute_skeen}). *)

val run :
  ?mutant:Mutant.t ->
  ?skeen_mutant:Skeen_mutant.t ->
  ?tamper:Gcs_transport.Bus.tamper ->
  ?pair:Differential.pair ->
  ?service:service ->
  ?seeds:Input.t list ->
  ?jobs:int ->
  ?batch:int ->
  ?shrink_budget:int ->
  ?max_events:int ->
  ?stop_on_failure:bool ->
  ?should_stop:(unit -> bool) ->
  ?progress:(stats -> unit) ->
  config:To_service.config ->
  seed:int ->
  execs:int ->
  unit ->
  outcome
(** [run ~config ~seed ~execs ()] fuzzes until a failure is found or
    [execs] executions are spent. [batch] (default 8) candidates are
    generated per round; [max_events] (default 40) caps mutated schedule
    size; [jobs] defaults to [GCS_JOBS]; [progress] is called after every
    round. [service] selects the system under test; passing
    [skeen_mutant] implies the Skeen service (the Skeen run reuses the
    config's processor set and δ). [mutant] and [skeen_mutant] are
    mutually exclusive in intent — the one matching the active service
    is used, the other ignored.

    [pair] switches the loop to differential mode: every execution is
    {!Differential.execute} on that pair, the seed corpus is
    {!Differential.seed_inputs}, and mutation works the diff genome only
    (sequence order, origins, count, seed — no fault steps). In this
    mode [tamper], [mutant] and [skeen_mutant] are the {!Diff_mutant}
    hooks infecting the candidate side.

    [seeds] are extra schedules replayed after the built-in seed corpus
    — a loaded {!Corpus} — and admitted under the same novelty rule,
    which deterministically minimizes a restored corpus on load.

    [stop_on_failure:false] is soak mode: the loop keeps fuzzing past
    failures (each is recorded in [failures], and its input re-enters
    the corpus with boosted energy); only the first failure is shrunk.
    [should_stop] is polled once per round — the CLI's wall-clock
    budget. Both leave the per-round determinism story intact: a soak
    interrupted at round [r] saw exactly the rounds a longer run sees
    first. *)

val stats_to_json : outcome -> string
(** Flat deterministic JSON of the run's observable results (stats,
    failure check, event counts before/after shrinking) — the
    across-[jobs] determinism tests compare these bytes. *)

val corpus_strings : outcome -> string list
(** Serialized corpus in admission order ({!Input.to_string}), for
    corpus dumps and byte-level determinism comparison. *)
