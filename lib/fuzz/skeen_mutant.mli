open Gcs_core
open Gcs_skeen

(** Planted bugs for the Skeen backend, validating that the fuzzer's
    Skeen oracle set ({!Runner.execute_skeen}) can catch real protocol
    defects: a skewed final timestamp at one destination (order
    disagreement), a lost timestamp proposal (wedged destinations, caught
    by fault-free completeness), and a duplicated client delivery. Same
    contract as {!Mutant}: each rewrite fires once per run behind a
    state-dependent trigger, with the latch allocated per [instrument]
    call so pooled runs stay independent. *)

type handlers =
  (Skeen.node, Skeen.input, Skeen.packet, Value.t To_action.t)
  Gcs_sim.Engine.handlers

type t = {
  name : string;
  doc : string;  (** the emulated defect, one line *)
  expected_checks : string list;
      (** oracles that may flag it, e.g. [["skeen-group-order"]] *)
  instrument : Skeen.config -> handlers -> handlers;
}

val rewrite :
  (Proc.t ->
   Skeen.node ->
   (Skeen.packet, Value.t To_action.t) Gcs_sim.Engine.effect list ->
   (Skeen.packet, Value.t To_action.t) Gcs_sim.Engine.effect list) ->
  handlers ->
  handlers
(** Route every handler's effect batch through [f me post_state effects]
    — the building block for mutants with richer per-node state than the
    fire-once latch (e.g. {!Diff_mutant}'s delivery-delay rewrite). *)

val all : t list
val find : string -> t option
val names : string list
