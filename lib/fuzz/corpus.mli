(** Persistent corpora: schedules on disk, crash-safe.

    A corpus directory holds one {!Input} per file ([000000.sched],
    [000001.sched], …), each the input's text form plus a trailing
    [# end] marker. Writes are atomic ({!Gcs_stdx.Fileio.write_atomic}),
    and the loader treats a missing marker as a torn entry — skipped
    with a warning, never half-parsed — so a corpus restored from a CI
    cache or an interrupted soak run is always usable.

    Loading is deterministic (entries sort by name) and so is
    {!minimize}, so corpus round-trips are byte-for-byte reproducible:
    save → load → minimize yields the same survivors and the same
    coverage on every machine. *)

val entry_name : int -> string
(** [entry_name 7] is ["000007.sched"]. *)

val save : dir:string -> Input.t list -> unit
(** Write the corpus, creating [dir] if needed; entries beyond the list
    (from a previous, larger save) are removed. *)

val load : dir:string -> Input.t list * string list
(** [(inputs, warnings)] — entries in name order; unreadable, truncated
    or unparsable entries are skipped, each contributing a warning. A
    missing directory is an empty corpus. *)

val minimize :
  execute:(Input.t -> Coverage.t) -> Input.t list -> Input.t list * Coverage.t
(** Greedy deterministic set-cover in load order: keep an input iff it
    adds coverage over those kept before it; returns the survivors and
    their union coverage. *)
