(** Abstract-state coverage maps.

    A coverage map is a set of {e features} — short strings naming an
    abstract behaviour an execution exhibited: a VStoTO status-pair
    transition, a primary/non-primary switch, a (bucketed) view-id edge,
    a bucketed packet- or delivery-count. The fuzzer keeps the union over
    all executions and admits an input into the corpus exactly when its
    run contributed a feature the union did not already contain
    (greybox feedback, StateAFL-style but over protocol state instead of
    branch edges). Features are deterministic functions of the run, so
    coverage — like everything else — is reproducible from the seed. *)

type t

val empty : t
val add : t -> string -> t
val of_list : string list -> t
val union : t -> t -> t
val cardinal : t -> int

val novel : base:t -> t -> int
(** Features in the second map that [base] lacks. *)

val to_list : t -> string list
(** Sorted; snapshots of equal maps render to equal bytes. *)

val bucket : int -> int
(** AFL-style count bucketing: exact 0-3, then 4, 8, 16, 32, 128.
    Counters contribute the bucket, not the raw count, so runs differing
    only in uninteresting magnitudes map to the same features. *)

val fuzzy_features : tag:string -> string list -> t
(** Locality-sensitive hash features over serialized node-state
    snapshots (StateAFL-style): each snapshot is cut into
    content-defined chunks by a rolling hash, each chunk contributes a
    12-bit FNV hash, and the run's multiset of chunk hashes enters the
    map as one feature per hash plus one per (hash, bucketed
    multiplicity). A novel protocol state thus earns corpus energy
    without any hand-curated feature — while a state differing only in
    uninteresting magnitudes maps to the features already seen. The
    result is independent of snapshot order. *)
