open Gcs_core
open Gcs_impl
open Gcs_sim

type handlers =
  (To_service.node, Value.t, Msg.t Wire.packet, To_service.out)
  Engine.handlers

type t = {
  name : string;
  doc : string;
  expected_checks : string list;
  instrument : To_service.config -> handlers -> handlers;
}

(* Rewrite every effect batch through [f me post_state effects]. *)
let rewrite f (h : handlers) : handlers =
  {
    Engine.on_start =
      (fun me st ->
        let st', es = h.Engine.on_start me st in
        (st', f me st' es));
    on_input =
      (fun me ~now v st ->
        let st', es = h.Engine.on_input me ~now v st in
        (st', f me st' es));
    on_packet =
      (fun me ~now ~src p st ->
        let st', es = h.Engine.on_packet me ~now ~src p st in
        (st', f me st' es));
    on_timer =
      (fun me ~now ~id st ->
        let st', es = h.Engine.on_timer me ~now ~id st in
        (st', f me st' es));
  }

(* A mutation that fires at most once per run: [f] returns [Some effects']
   when its trigger holds and it rewrote the batch. The latch lives in the
   closure, so each [instrument] call (one per executed run) is
   independent — required for fan-out on a domain pool. *)
let once f h =
  let fired = ref false in
  rewrite
    (fun me st es ->
      if !fired then es
      else
        match f me st es with
        | Some es' ->
            fired := true;
            es'
        | None -> es)
    h

let is_brcv = function
  | Engine.Output (To_service.Client (To_action.Brcv _)) -> true
  | _ -> false

(* Split [es] at the first element satisfying [p]:
   [(before, hit, after)]. *)
let split_at p es =
  let rec go before = function
    | [] -> None
    | e :: rest when p e -> Some (List.rev before, e, rest)
    | e :: rest -> go (e :: before) rest
  in
  go [] es

let dup_delivery =
  {
    name = "dup-delivery";
    doc = "a delivery is handed to the client twice after the third view";
    expected_checks = [ "to-conformance" ];
    instrument =
      (fun _config h ->
        once
          (fun _me st es ->
            if To_service.node_views_installed st < 3 then None
            else
              match split_at is_brcv es with
              | Some (before, hit, after) ->
                  Some (before @ [ hit; hit ] @ after)
              | None -> None)
          h);
  }

let drop_delivery =
  {
    name = "drop-delivery";
    doc = "a delivery is silently lost after the second view";
    expected_checks = [ "to-conformance"; "delivery-bound" ];
    instrument =
      (fun _config h ->
        once
          (fun _me st es ->
            if To_service.node_views_installed st < 2 then None
            else
              match split_at is_brcv es with
              | Some (before, _, after) -> Some (before @ after)
              | None -> None)
          h);
  }

let reorder_deliveries =
  {
    name = "reorder-deliveries";
    doc = "two same-batch deliveries reach the client in swapped order";
    expected_checks = [ "to-conformance" ];
    instrument =
      (fun _config h ->
        once
          (fun _me _st es ->
            match split_at is_brcv es with
            | Some (before, first, rest) -> (
                match split_at is_brcv rest with
                | Some (mid, second, after) ->
                    Some (before @ (second :: mid) @ (first :: after))
                | None -> None)
            | None -> None)
          h);
  }

let is_newview num = function
  | Engine.Output (To_service.Vs_layer (Vs_action.Newview { view; _ })) ->
      view.View.id.View_id.num >= num
  | _ -> false

let skip_newview =
  {
    name = "skip-newview";
    doc = "a newview announcement is swallowed once view numbers reach 2";
    expected_checks = [ "vs-conformance" ];
    instrument =
      (fun _config h ->
        once
          (fun _me _st es ->
            match split_at (is_newview 2) es with
            | Some (before, _, after) -> Some (before @ after)
            | None -> None)
          h);
  }

let gprcv_src = function
  | Engine.Output (To_service.Vs_layer (Vs_action.Gprcv { src; _ })) ->
      Some src
  | _ -> None

let reorder_gprcv =
  {
    name = "reorder-gprcv";
    doc = "two same-sender VS deliveries within a view are swapped";
    expected_checks = [ "vs-conformance" ];
    instrument =
      (fun _config h ->
        once
          (fun _me st es ->
            if To_service.node_views_installed st < 2 then None
            else
              match split_at (fun e -> Option.is_some (gprcv_src e)) es with
              | Some (before, first, rest) -> (
                  let same_src e =
                    match (gprcv_src first, gprcv_src e) with
                    | Some a, Some b -> Proc.equal a b
                    | _ -> false
                  in
                  match split_at same_src rest with
                  | Some (mid, second, after) ->
                      Some (before @ (second :: mid) @ (first :: after))
                  | None -> None)
              | None -> None)
          h);
  }

let misattribute_delivery =
  {
    name = "misattribute-delivery";
    doc = "a delivery made in a minority view reports the wrong sender";
    expected_checks = [ "to-conformance" ];
    instrument =
      (fun config h ->
        let procs = config.To_service.vs.Vs_node.procs in
        let n = List.length procs in
        once
          (fun _me st es ->
            let minority =
              match To_service.node_view st with
              | Some v -> Proc.Set.cardinal v.View.set < n
              | None -> false
            in
            if not minority then None
            else
              match split_at is_brcv es with
              | Some
                  ( before,
                    Engine.Output
                      (To_service.Client (To_action.Brcv { src; dst; value })),
                    after ) ->
                  let src' = (src + 1) mod n in
                  Some
                    (before
                    @ Engine.Output
                        (To_service.Client
                           (To_action.Brcv { src = src'; dst; value }))
                      :: after)
              | Some _ | None -> None)
          h);
  }

let all =
  [
    dup_delivery;
    drop_delivery;
    reorder_deliveries;
    skip_newview;
    reorder_gprcv;
    misattribute_delivery;
  ]

let find name = List.find_opt (fun m -> String.equal m.name name) all
let names = List.map (fun m -> m.name) all
