open Gcs_core
open Gcs_skeen
open Gcs_sim

type handlers =
  (Skeen.node, Skeen.input, Skeen.packet, Value.t To_action.t)
  Engine.handlers

type t = {
  name : string;
  doc : string;
  expected_checks : string list;
  instrument : Skeen.config -> handlers -> handlers;
}

(* Rewrite every effect batch through [f me post_state effects]. *)
let rewrite f (h : handlers) : handlers =
  {
    Engine.on_start =
      (fun me st ->
        let st', es = h.Engine.on_start me st in
        (st', f me st' es));
    on_input =
      (fun me ~now v st ->
        let st', es = h.Engine.on_input me ~now v st in
        (st', f me st' es));
    on_packet =
      (fun me ~now ~src p st ->
        let st', es = h.Engine.on_packet me ~now ~src p st in
        (st', f me st' es));
    on_timer =
      (fun me ~now ~id st ->
        let st', es = h.Engine.on_timer me ~now ~id st in
        (st', f me st' es));
  }

(* Fire-once latch in the closure, fresh per [instrument] call, so
   instrumented runs fanned out on a domain pool stay independent. *)
let once f h =
  let fired = ref false in
  rewrite
    (fun me st es ->
      if !fired then es
      else
        match f me st es with
        | Some es' ->
            fired := true;
            es'
        | None -> es)
    h

let split_at p es =
  let rec go before = function
    | [] -> None
    | e :: rest when p e -> Some (List.rev before, e, rest)
    | e :: rest -> go (e :: before) rest
  in
  go [] es

let is_commit = function
  | Engine.Send { packet = Skeen.Commit _; _ } -> true
  | _ -> false

let commit_skew =
  {
    name = "skeen-commit-skew";
    doc =
      "one destination receives a commit with a lowered final timestamp \
       (the others keep the true maximum)";
    expected_checks = [ "skeen-group-order"; "skeen-node-invariant" ];
    instrument =
      (fun _config h ->
        once
          (fun _me _st es ->
            (* Trigger on a multi-destination commit fan-out whose final
               clock is high enough to lower meaningfully: the skewed
               destination sorts the message earlier than its peers. *)
            if List.length (List.filter is_commit es) < 2 then None
            else
              match split_at is_commit es with
              | Some
                  ( before,
                    Engine.Send
                      { dst; packet = Skeen.Commit { mid; ts } },
                    after )
                when ts.Skeen.clock >= 3 ->
                  Some
                    (before
                    @ Engine.Send
                        {
                          dst;
                          packet =
                            Skeen.Commit
                              { mid; ts = { ts with Skeen.clock = ts.Skeen.clock - 2 } };
                        }
                      :: after)
              | Some _ | None -> None)
          h);
  }

let drop_proposal =
  {
    name = "skeen-drop-proposal";
    doc =
      "a timestamp proposal is silently lost, so the origin never commits \
       and the message wedges its destinations";
    expected_checks = [ "skeen-completeness" ];
    instrument =
      (fun _config h ->
        once
          (fun _me st es ->
            if Skeen.node_clock st < 2 then None
            else
              match
                split_at
                  (function
                    | Engine.Send { packet = Skeen.Proposal _; _ } -> true
                    | _ -> false)
                  es
              with
              | Some (before, _, after) -> Some (before @ after)
              | None -> None)
          h);
  }

let is_brcv = function
  | Engine.Output (To_action.Brcv _) -> true
  | _ -> false

let dup_deliver =
  {
    name = "skeen-dup-deliver";
    doc = "a delivery is handed to the client twice";
    expected_checks = [ "skeen-group-order" ];
    instrument =
      (fun _config h ->
        once
          (fun _me st es ->
            if Skeen.node_delivered st < 2 then None
            else
              match split_at is_brcv es with
              | Some (before, hit, after) -> Some (before @ [ hit; hit ] @ after)
              | None -> None)
          h);
  }

let all = [ commit_skew; drop_proposal; dup_deliver ]
let find name = List.find_opt (fun m -> String.equal m.name name) all
let names = List.map (fun m -> m.name) all
