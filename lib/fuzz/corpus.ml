module Fileio = Gcs_stdx.Fileio

(* One schedule per file, named by position, with an explicit end marker:
   a reader can always tell a complete entry from a torn one, whatever
   filesystem the cache was restored from. (Writes go through
   {!Fileio.write_atomic}, so torn entries only arise from foreign
   tooling — a CI cache restore interrupted mid-file, a manual copy —
   but the loader still refuses to guess.) *)

let entry_ext = ".sched"
let end_marker = "# end"
let entry_name i = Printf.sprintf "%06d%s" i entry_ext

let is_entry name =
  String.length name > String.length entry_ext
  && Filename.check_suffix name entry_ext

let save ~dir inputs =
  Fileio.ensure_dir dir;
  let written = Hashtbl.create 64 in
  List.iteri
    (fun i input ->
      let name = entry_name i in
      Hashtbl.replace written name ();
      Fileio.write_atomic
        ~path:(Filename.concat dir name)
        (Input.to_string input ^ end_marker ^ "\n"))
    inputs;
  (* A shrinking corpus must not leave ghost entries from a previous,
     larger save: stale schedules would be replayed forever. *)
  Array.iter
    (fun name ->
      if is_entry name && not (Hashtbl.mem written name) then
        try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
    (Sys.readdir dir)

let complete contents =
  let lines = String.split_on_char '\n' contents in
  List.exists (fun l -> String.equal (String.trim l) end_marker) lines

let load ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then ([], [])
  else begin
    let names = Array.to_list (Sys.readdir dir) in
    let names = List.sort String.compare (List.filter is_entry names) in
    let inputs, warnings =
      List.fold_left
        (fun (inputs, warnings) name ->
          let path = Filename.concat dir name in
          match Fileio.read_file path with
          | Error e ->
              (inputs, Printf.sprintf "%s: unreadable (%s)" name e :: warnings)
          | Ok contents when not (complete contents) ->
              ( inputs,
                Printf.sprintf "%s: truncated (no end marker), skipped" name
                :: warnings )
          | Ok contents -> (
              match Input.of_string contents with
              | Ok input -> (input :: inputs, warnings)
              | Error e ->
                  (inputs, Printf.sprintf "%s: %s, skipped" name e :: warnings)))
        ([], []) names
    in
    (List.rev inputs, List.rev warnings)
  end

(* Greedy set-cover in file order: an entry is kept iff it still adds a
   feature given everything kept before it. Both the verdict and the
   iteration order are deterministic, so two loads of the same corpus
   minimize to the same byte-identical survivor set — the property the
   round-trip test pins. *)
let minimize ~execute inputs =
  let kept, coverage =
    List.fold_left
      (fun (kept, acc) input ->
        let cov = execute input in
        if Coverage.novel ~base:acc cov > 0 then
          (input :: kept, Coverage.union acc cov)
        else (kept, acc))
      ([], Coverage.empty) inputs
  in
  (List.rev kept, coverage)
