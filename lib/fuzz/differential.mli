open Gcs_impl

(** Differential execution: every backend becomes an oracle.

    One differential execution runs a fuzz input's fault-free workload
    on two backends with the same seed and judges the per-node delivered
    orders with {!Gcs_conformance.Divergence}. Any disagreement —
    missing deliveries or divergent sequences — is crash-grade: the
    protocols promise one story per schedule, so two correct executions
    cannot tell different ones. This catches exactly the bugs a
    single-execution oracle battery cannot: reorderings that are
    internally consistent (each run alone passes every safety check) but
    inconsistent with each other.

    Faults are stripped from differential inputs because cross-backend
    order agreement is only specified fault-free; each pair also owns
    its workload timing (anchored at zero, or serialized), keeping the
    input's contribution to the genome transport-independent: the
    submission sequence, the origins and the seed.

    Planted divergence-only bugs ({!Diff_mutant}) apply to the
    {e candidate} (second) execution only; the reference side stays the
    oracle and supplies the run's coverage (coverage from a wall-clock
    candidate would be nondeterministic). *)

type pair =
  | Sim_bus
      (** VStoTO on the deterministic simulator vs the multi-domain bus,
          under the conformance harness's anchored workload — exact
          per-node order equality. *)
  | Skeen_bus
      (** Skeen on the simulator vs the bus, under a serialized workload
          (each submission commits before the next is born) — exact
          equality. *)
  | Vstoto_skeen
      (** VStoTO vs Skeen, both simulated, full-group addressing —
          per-node content (multiset) equality, since the two protocols
          legitimately pick different total orders. *)
  | Vstoto_sequencer
      (** VStoTO vs the fixed-sequencer baseline, both simulated —
          content equality. *)

val all : pair list
val name : pair -> string
val of_name : string -> pair option
val doc : pair -> string

val strip : Input.t -> Input.t
(** The fault-free projection applied to every differential input. *)

val execute :
  ?tamper:Gcs_transport.Bus.tamper ->
  ?vs_mutant:Mutant.t ->
  ?skeen_mutant:Skeen_mutant.t ->
  config:To_service.config ->
  pair ->
  Input.t ->
  Runner.observation
(** Run both sides and judge. The verdict is [check = "divergence"]
    (same deliveries, different order), [check = "diff-incomplete"]
    (a node missed deliveries on one side) or [check = "crash"];
    the reference side's own oracle battery also applies where it runs
    ({!pair.Skeen_bus} and the cross-protocol pairs reuse the
    single-execution runners). Coverage comes from the reference
    execution — including fuzzy-hashed state snapshots — so the
    coverage-guided loop steers by deterministic features only.
    [tamper], [vs_mutant] and [skeen_mutant] instrument the candidate
    side only. *)

val oracle :
  ?tamper:Gcs_transport.Bus.tamper ->
  ?vs_mutant:Mutant.t ->
  ?skeen_mutant:Skeen_mutant.t ->
  config:To_service.config ->
  check:string ->
  pair ->
  Input.t ->
  Runner.failure option
(** Shrinker test function, same contract as {!Runner.oracle}. *)

val seed_inputs :
  procs:Gcs_core.Proc.t list -> prng:Gcs_stdx.Prng.t -> Input.t list
(** Fault-free seed schedules for the differential mode (round-robin
    burst, single-origin stream, seeded random mix). *)
