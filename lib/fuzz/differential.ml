open Gcs_core
open Gcs_impl
open Gcs_skeen
module Divergence = Gcs_conformance.Divergence

type pair = Sim_bus | Skeen_bus | Vstoto_skeen | Vstoto_sequencer

let all = [ Sim_bus; Skeen_bus; Vstoto_skeen; Vstoto_sequencer ]

let name = function
  | Sim_bus -> "sim-bus"
  | Skeen_bus -> "skeen-bus"
  | Vstoto_skeen -> "vstoto-skeen"
  | Vstoto_sequencer -> "vstoto-sequencer"

let of_name s = List.find_opt (fun p -> String.equal (name p) s) all

let doc = function
  | Sim_bus ->
      "VStoTO: deterministic simulator vs multi-domain bus (anchored \
       workload, exact per-node order equality)"
  | Skeen_bus ->
      "Skeen: simulator vs bus (serialized workload, exact per-node order \
       equality)"
  | Vstoto_skeen ->
      "VStoTO vs Skeen, both simulated (full-group workload, per-node \
       content equality)"
  | Vstoto_sequencer ->
      "VStoTO vs fixed-sequencer baseline, both simulated (per-node \
       content equality)"

(* Cross-backend delivered-order agreement is only specified fault-free
   (retransmission timing and wall-clock fault injection legitimately
   differ between executions), so the differential mode projects every
   input onto its fault-free workload. The projection also reassigns
   workload times per pair: the anchoring that makes a nondeterministic
   backend's delivered order reproducible is a property of *when* the
   submissions land, so the pair — not the mutated input — owns the
   schedule; the input contributes the sequence (origins, values) and
   the seed. *)
let strip input = Input.normalize { input with Input.steps = [] }

let sequence input =
  List.map (fun (_, p, v) -> (p, v)) (strip input).Input.workload

(* ----------------------------- verdicts ------------------------------ *)

let incomplete_failure ~pair ~label ~expected orders =
  match Divergence.incomplete ~expected orders with
  | [] -> None
  | missing ->
      Some
        {
          Runner.check = "diff-incomplete";
          detail =
            Printf.sprintf "%s: %s side incomplete: %s" (name pair) label
              (String.concat ", "
                 (List.map
                    (fun (p, got) ->
                      Printf.sprintf "node %d delivered %d/%d" p got
                        (expected p))
                    missing));
        }

let divergence_failure ~pair ~left_label ~right_label verdict =
  match verdict with
  | Divergence.Agree -> None
  | Divergence.Diverged _ as d ->
      Some
        {
          Runner.check = "divergence";
          detail =
            Printf.sprintf "%s: %s" (name pair)
              (Divergence.describe ~left_label ~right_label d);
        }

(* Incompleteness is judged before ordering so a missing tail reads as
   "node X delivered 3/8", not as a confusing order mismatch at the cut
   point; both are crash-grade in this mode. *)
let judge ~pair ~left_label ~right_label ~compare_fn ~expected left_orders
    right_orders =
  match incomplete_failure ~pair ~label:left_label ~expected left_orders with
  | Some f -> Some f
  | None -> (
      match
        incomplete_failure ~pair ~label:right_label ~expected right_orders
      with
      | Some f -> Some f
      | None ->
          divergence_failure ~pair ~left_label ~right_label
            (compare_fn ~left:left_orders ~right:right_orders))

let count_actions trace =
  List.fold_left
    (fun (b, d) (_, a) ->
      match a with
      | To_action.Bcast _ -> (b + 1, d)
      | To_action.Brcv _ -> (b, d + 1)
      | _ -> (b, d))
    (0, 0) (Timed.actions trace)

(* ------------------------------ sim-bus ------------------------------ *)

(* The workload anchoring (everything at t = 0) and the timing profile
   (δ large, μ huge, π small) come from the conformance differential
   harness: under them the token fixes one transport-independent total
   order, so the bus — for all its wall-clock nondeterminism — must
   reproduce the simulator's delivered sequences byte for byte. *)
let execute_sim_bus ?tamper ?vs_mutant ~n input =
  let seq = sequence input in
  let n_msgs = List.length seq in
  let seed = input.Input.seed in
  let config = Gcs_conformance.Differential.config ~n () in
  let procs = config.To_service.vs.Vs_node.procs in
  let workload = List.map (fun (p, v) -> (0.0, p, v)) seq in
  (* Reference: the deterministic simulator, with the single-execution
     coverage instrumentation (transitions, counters, state hashes). *)
  let cov = ref Coverage.empty in
  let snaps = ref [] in
  let metrics = Gcs_stdx.Metrics.create () in
  let observe me pre post =
    cov := Runner.transition_features config me pre post !cov;
    if
      To_service.node_views_installed post
      > To_service.node_views_installed pre
    then snaps := Runner.snapshot_vstoto post :: !snaps
  in
  let sim_run =
    To_service.run_on ~metrics ~observe
      ~backend:
        (Gcs_sim.Backend.of_config (Gcs_sim.Engine.default_config ~delta:5.0))
      config ~workload ~failures:[] ~until:400.0 ~seed
  in
  let bcasts, deliveries = count_actions (To_service.client_trace sim_run) in
  cov := Runner.counter_features metrics ~bcasts ~deliveries !cov;
  let finals =
    List.map
      (fun (_, node) -> Runner.snapshot_vstoto node)
      (Proc.Map.bindings sim_run.To_service.final_nodes)
  in
  cov :=
    Coverage.union !cov (Coverage.fuzzy_features ~tag:"vs" (finals @ !snaps));
  let sim_orders = Divergence.orders ~procs (To_service.client_trace sim_run) in
  (* Candidate: the bus, stopping as soon as every node has reported the
     whole workload (the horizon is only the failure fallback). A
     planted bug, if any, applies here — a transport tamper baked into
     the backend, or a handler rewrite instrumenting the VStoTO
     automata — while the simulator side stays the oracle. Handlers are
     built by hand (rather than via [To_service.run_on]) precisely so
     the mutant can instrument them. *)
  let progress = Array.init n (fun _ -> Atomic.make 0) in
  let bus_observe p _pre post =
    let st = To_service.node_app post in
    Gcs_stdx.Atomicx.store_max progress.(p) (st.Vstoto.nextreport - 1)
  in
  let stop ~now:_ ~outputs:_ =
    Array.for_all (fun a -> Atomic.get a >= n_msgs) progress
  in
  let bus_metrics = Gcs_stdx.Metrics.create () in
  let handlers = To_service.handlers ~metrics:bus_metrics config in
  let handlers =
    match vs_mutant with
    | Some m -> m.Mutant.instrument config handlers
    | None -> handlers
  in
  let (module B : Gcs_transport.Iface.BACKEND) =
    Gcs_transport.Bus.backend ?tamper ()
  in
  let result =
    B.run ~metrics:bus_metrics ~observe:bus_observe ~stop
      Wire.msg_packet_codec ~procs ~handlers
      ~init:(To_service.initial config)
      ~inputs:workload ~failures:[] ~until:30.0 ~seed
  in
  let bus_run =
    {
      To_service.trace = result.Gcs_sim.Engine.trace;
      final_nodes = result.Gcs_sim.Engine.final_states;
      packets_sent = result.Gcs_sim.Engine.packets_sent;
      packets_dropped = result.Gcs_sim.Engine.packets_dropped;
      events_processed = result.Gcs_sim.Engine.events_processed;
      metrics = bus_metrics;
    }
  in
  let bus_orders = Divergence.orders ~procs (To_service.client_trace bus_run) in
  let verdict =
    judge ~pair:Sim_bus ~left_label:"sim" ~right_label:"bus"
      ~compare_fn:Divergence.compare_orders
      ~expected:(fun _ -> n_msgs)
      sim_orders bus_orders
  in
  {
    Runner.coverage = !cov;
    verdict;
    bcasts;
    deliveries;
    events_processed =
      sim_run.To_service.events_processed + bus_run.To_service.events_processed;
  }

(* ----------------------------- skeen-bus ----------------------------- *)

(* Skeen's total order is decided by timestamp races, so concurrency on
   a wall-clock backend is honest nondeterminism. The anchoring here is
   temporal instead of token-based: submissions are spaced further apart
   than a full propose/proposal/commit round on either clock (3δ in the
   simulator, microseconds in-process on the bus), so each message
   commits before the next is born and the delivered order must equal
   the submission order on both sides. *)
let skeen_spacing = 0.01
let skeen_delta = 0.003

let skeen_project input =
  let seq = sequence input in
  let workload =
    List.mapi
      (fun i (p, v) -> (skeen_spacing *. float_of_int (i + 1), p, v))
      seq
  in
  { Input.seed = input.Input.seed; steps = []; workload }

let execute_skeen_bus ?tamper ?skeen_mutant ~procs input =
  let config = Skeen.make_config ~procs in
  let input = skeen_project input in
  let n_msgs = List.length input.Input.workload in
  (* Reference: the FIFO simulator, with the single-execution Skeen
     oracle battery and coverage instrumentation. *)
  let ref_obs, ref_trace =
    Runner.execute_skeen_full ~delta:skeen_delta ~dests:`Full ~config input
  in
  let ref_orders = Divergence.orders ~procs ref_trace in
  (* Candidate: the same schedule on the bus; a planted mutant (handler
     rewrite or transport tamper) applies to this side only, so the
     reference stays the oracle. The candidate's own single-execution
     verdicts are deliberately ignored (crashes excepted): the planted
     bugs this mode gauges are the ones no single execution can see. *)
  (* Early exit once every submission and delivery is on the trace (one
     Bcast per message, one Brcv per message per member); the wall-clock
     horizon is only the fallback for runs a mutant wedges. *)
  let expected_outputs = n_msgs * (1 + List.length procs) in
  let stop ~now:_ ~outputs = outputs >= expected_outputs in
  (* Causal admission: submission [index] enters the bus only after the
     previous submissions are fully processed (one Bcast plus one Brcv
     per member each). Wall-clock spacing alone breaks under controller
     jitter: a collapsed gap overlaps two proposal rounds and Skeen
     commits a different — valid — total order than the serialized
     reference, a false divergence. *)
  let per_msg = 1 + List.length procs in
  let admit ~outputs ~index = outputs >= index * per_msg in
  let cand_obs, cand_trace =
    Runner.execute_skeen_full ?mutant:skeen_mutant
      ~backend:(Gcs_transport.Bus.backend ?tamper ~admit ())
      ~stop ~delta:skeen_delta ~dests:`Full ~config input
  in
  let cand_orders = Divergence.orders ~procs cand_trace in
  let verdict =
    match ref_obs.Runner.verdict with
    | Some f -> Some f
    | None -> (
        match cand_obs.Runner.verdict with
        | Some ({ Runner.check = "crash"; _ } as f) -> Some f
        | Some _ | None ->
            judge ~pair:Skeen_bus ~left_label:"sim" ~right_label:"bus"
              ~compare_fn:Divergence.compare_orders
              ~expected:(fun _ -> n_msgs)
              ref_orders cand_orders)
  in
  {
    ref_obs with
    Runner.verdict;
    events_processed =
      ref_obs.Runner.events_processed + cand_obs.Runner.events_processed;
  }

(* --------------------------- cross-protocol -------------------------- *)

(* Two protocols pick different total orders, legitimately: the
   comparison is per-node content (same messages to the same members),
   which fault-free executions must agree on however they order. *)
let execute_vstoto_skeen ?skeen_mutant ~config input =
  let procs = config.To_service.vs.Vs_node.procs in
  let input = strip input in
  let n_msgs = List.length input.Input.workload in
  let ref_obs, ref_trace = Runner.execute_full ~config input in
  let ref_orders = Divergence.orders ~procs ref_trace in
  let skeen_config = Skeen.make_config ~procs in
  let cand_obs, cand_trace =
    Runner.execute_skeen_full ?mutant:skeen_mutant
      ~delta:config.To_service.vs.Vs_node.delta ~dests:`Full
      ~config:skeen_config input
  in
  let cand_orders = Divergence.orders ~procs cand_trace in
  let verdict =
    match ref_obs.Runner.verdict with
    | Some f -> Some f
    | None -> (
        match cand_obs.Runner.verdict with
        | Some ({ Runner.check = "crash"; _ } as f) -> Some f
        | Some _ | None ->
            judge ~pair:Vstoto_skeen ~left_label:"vstoto" ~right_label:"skeen"
              ~compare_fn:Divergence.compare_contents
              ~expected:(fun _ -> n_msgs)
              ref_orders cand_orders)
  in
  {
    ref_obs with
    Runner.coverage =
      Coverage.union ref_obs.Runner.coverage cand_obs.Runner.coverage;
    verdict;
    events_processed =
      ref_obs.Runner.events_processed + cand_obs.Runner.events_processed;
  }

let execute_vstoto_sequencer ~config input =
  let procs = config.To_service.vs.Vs_node.procs in
  let delta = config.To_service.vs.Vs_node.delta in
  let input = strip input in
  let n_msgs = List.length input.Input.workload in
  let ref_obs, ref_trace = Runner.execute_full ~config input in
  let ref_orders = Divergence.orders ~procs ref_trace in
  let seq_config = Gcs_baseline.Sequencer.make_config ~procs in
  let workload_end =
    List.fold_left
      (fun acc (t, _, _) -> Float.max acc t)
      0.0 input.Input.workload
  in
  let cand_run =
    Gcs_baseline.Sequencer.run ~delta seq_config ~workload:input.Input.workload
      ~failures:[]
      ~until:(workload_end +. (50.0 *. delta))
      ~seed:input.Input.seed
  in
  let cand_orders =
    Divergence.orders ~procs cand_run.Gcs_baseline.Sequencer.trace
  in
  let verdict =
    match ref_obs.Runner.verdict with
    | Some f -> Some f
    | None ->
        judge ~pair:Vstoto_sequencer ~left_label:"vstoto"
          ~right_label:"sequencer" ~compare_fn:Divergence.compare_contents
          ~expected:(fun _ -> n_msgs)
          ref_orders cand_orders
  in
  { ref_obs with Runner.verdict }

(* ------------------------------ dispatch ----------------------------- *)

let execute ?tamper ?vs_mutant ?skeen_mutant ~config pair input =
  let procs = config.To_service.vs.Vs_node.procs in
  (try
     match pair with
     | Sim_bus ->
         execute_sim_bus ?tamper ?vs_mutant ~n:(List.length procs) input
     | Skeen_bus -> execute_skeen_bus ?tamper ?skeen_mutant ~procs input
     | Vstoto_skeen -> execute_vstoto_skeen ?skeen_mutant ~config input
     | Vstoto_sequencer -> execute_vstoto_sequencer ~config input
   with e ->
     {
       Runner.coverage = Coverage.empty;
       verdict = Some { Runner.check = "crash"; detail = Printexc.to_string e };
       bcasts = 0;
       deliveries = 0;
       events_processed = 0;
     })
  [@gcs.lint.allow "P2" (* crash-as-verdict, same policy as Runner *)]

let oracle ?tamper ?vs_mutant ?skeen_mutant ~config ~check pair input =
  match
    (execute ?tamper ?vs_mutant ?skeen_mutant ~config pair input).Runner.verdict
  with
  | Some f when String.equal f.Runner.check check -> Some f
  | Some _ | None -> None

(* --------------------------- seed schedules -------------------------- *)

(* Fault-free seed corpus for the differential mode: a round-robin burst
   (adjacent submissions from different origins — the profile under
   which a delivery-order tamper is pure divergence), a single-origin
   stream, and a seeded random mix. Times are irrelevant (each pair
   reassigns them); sequence order and origins are the genome. *)
let seed_inputs ~procs ~prng =
  match procs with
  | [] -> []
  | p0 :: _ ->
      let n = List.length procs in
      let round_robin =
        List.init 8 (fun i ->
            (0.0, List.nth procs (i mod n), Printf.sprintf "r%d" i))
      in
      let single = List.init 6 (fun i -> (0.0, p0, Printf.sprintf "s%d" i)) in
      let random =
        List.init 10 (fun i ->
            (0.0, Gcs_stdx.Prng.pick_exn prng procs, Printf.sprintf "x%d" i))
      in
      List.map
        (fun workload ->
          Input.normalize { Input.seed = 1; steps = []; workload })
        [ round_robin; single; random ]
