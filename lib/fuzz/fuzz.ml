open Gcs_core
open Gcs_impl
open Gcs_nemesis
module Prng = Gcs_stdx.Prng
module Seqx = Gcs_stdx.Seqx

type stats = {
  execs : int;
  rounds : int;
  corpus_size : int;
  features : int;
}

type entry = { input : Input.t; novelty : int }

type outcome = {
  stats : stats;
  corpus : entry list;
  coverage : Coverage.t;
  failure : (Input.t * Runner.failure) option;
  failures : (Input.t * Runner.failure) list;
  shrunk : Shrink.result option;
}

(* --------------------------- seed corpus ----------------------------- *)

(* A handful of deterministic starting points spanning the fault model:
   fault-free, clean split+heal, leader crash+recover, and one short
   random schedule drawn from the master PRNG. *)
let seed_inputs ~procs ~prng =
  let n = List.length procs in
  let majority = List.filteri (fun i _ -> i < (n / 2) + 1) procs in
  let minority = List.filteri (fun i _ -> i >= (n / 2) + 1) procs in
  let leader = match procs with p :: _ -> p | [] -> 0 in
  let workload =
    Harness.default_workload ~procs ~from_time:8.0 ~spacing:12.0 ~count:2 ()
  in
  let base = { Input.seed = 1; steps = []; workload } in
  List.map Input.normalize
    [
      base;
      {
        base with
        Input.steps =
          [
            Scenario.at 20.0 (Scenario.Partition [ majority; minority ]);
            Scenario.at 60.0 Scenario.Heal;
          ];
      };
      {
        base with
        Input.steps =
          [
            Scenario.at 20.0 (Scenario.Crash leader);
            Scenario.at 55.0 (Scenario.Recover leader);
          ];
      };
      {
        base with
        Input.steps = Gen.steps ~procs ~events:4 ~start:15.0 ~spacing:12.0 ~prng ();
      };
    ]

(* ----------------------------- mutation ------------------------------ *)

let clamp_time at = Float.max 1.0 (Float.min 120.0 at)

(* Power schedule: energy grows with the coverage an entry discovered at
   admission, with a bonus for small schedules (cheaper to execute,
   easier to shrink). *)
let entry_weight e =
  1 + min e.novelty 16 + (if Input.events e.input <= 12 then 4 else 0)

let pick_entry prng corpus =
  Prng.weighted prng (List.map (fun e -> (entry_weight e, e)) corpus)

let delete_nth k xs = List.filteri (fun i _ -> i <> k) xs

(* The default profile spans the whole fault model; the differential
   profile touches only what that mode's genome reads — the submission
   sequence (order, origins, count) and the seed. Faults would be
   stripped at execution, and workload times are reassigned by the pair,
   so the diff ops work on sequence {e positions}: a swap exchanges the
   (origin, value) payloads of two adjacent slots, a retarget moves one
   submission to another origin, and a time jitter is a position move
   (the workload is kept time-sorted). *)
let default_choices =
  [
    (3, `Perturb_step);
    (2, `Delete_step);
    (3, `Insert_fault);
    (2, `Insert_partition);
    (2, `Perturb_load);
    (2, `Delete_load);
    (3, `Insert_load);
    (2, `Reseed);
    (2, `Splice);
  ]

let diff_choices =
  [
    (3, `Swap_load);
    (2, `Retarget_load);
    (2, `Perturb_load);
    (2, `Delete_load);
    (3, `Insert_load);
    (2, `Reseed);
    (2, `Splice);
  ]

let mutate ~procs ~prng ~fresh ~max_events ~choices corpus =
  let base = pick_entry prng corpus in
  let t = ref base.input in
  (* Mostly single mutations; occasionally a havoc burst of 2-4. *)
  let ops = if Prng.int prng 4 = 0 then 2 + Prng.int prng 3 else 1 in
  for _ = 1 to ops do
    let x = !t in
    let nsteps = List.length x.Input.steps in
    let nload = List.length x.Input.workload in
    let choice = Prng.weighted prng choices in
    t :=
      (match choice with
      | `Perturb_step when nsteps > 0 ->
          let k = Prng.int prng nsteps in
          let jitter = (Prng.float prng -. 0.5) *. 30.0 in
          {
            x with
            Input.steps =
              List.mapi
                (fun i s ->
                  if i = k then
                    { s with Scenario.at = clamp_time (s.Scenario.at +. jitter) }
                  else s)
                x.Input.steps;
          }
      | `Delete_step when nsteps > 0 ->
          { x with Input.steps = delete_nth (Prng.int prng nsteps) x.Input.steps }
      | `Insert_fault ->
          let start = 1.0 +. (Prng.float prng *. 90.0) in
          {
            x with
            Input.steps =
              x.Input.steps
              @ Gen.steps ~procs ~events:1 ~start ~spacing:10.0 ~prng ();
          }
      | `Insert_partition ->
          let shuffled = Prng.shuffle prng procs in
          let k = 1 + Prng.int prng (max 1 (List.length procs - 1)) in
          let a = List.sort Proc.compare (Seqx.take k shuffled) in
          let b = List.sort Proc.compare (Seqx.drop k shuffled) in
          let from = 1.0 +. (Prng.float prng *. 80.0) in
          let until = clamp_time (from +. 10.0 +. (Prng.float prng *. 40.0)) in
          {
            x with
            Input.steps =
              x.Input.steps
              @ [
                  Scenario.at from (Scenario.Partition [ a; b ]);
                  Scenario.at until Scenario.Heal;
                ];
          }
      | `Perturb_load when nload > 0 ->
          let k = Prng.int prng nload in
          let jitter = (Prng.float prng -. 0.5) *. 30.0 in
          {
            x with
            Input.workload =
              List.mapi
                (fun i (at, p, v) ->
                  if i = k then (clamp_time (at +. jitter), p, v) else (at, p, v))
                x.Input.workload;
          }
      | `Delete_load when nload > 0 ->
          {
            x with
            Input.workload = delete_nth (Prng.int prng nload) x.Input.workload;
          }
      | `Insert_load ->
          let p = Prng.pick_exn prng procs in
          let at = 1.0 +. (Prng.float prng *. 100.0) in
          incr fresh;
          {
            x with
            Input.workload =
              x.Input.workload @ [ (at, p, Printf.sprintf "f%d" !fresh) ];
          }
      | `Swap_load when nload > 1 ->
          (* Exchange payloads, keep times: the swap survives
             [Input.normalize]'s stable time sort, so it really
             transposes two adjacent sequence slots. *)
          let k = Prng.int prng (nload - 1) in
          let arr = Array.of_list x.Input.workload in
          let t1, p1, v1 = arr.(k) and t2, p2, v2 = arr.(k + 1) in
          arr.(k) <- (t1, p2, v2);
          arr.(k + 1) <- (t2, p1, v1);
          { x with Input.workload = Array.to_list arr }
      | `Retarget_load when nload > 0 ->
          let k = Prng.int prng nload in
          let p' = Prng.pick_exn prng procs in
          {
            x with
            Input.workload =
              List.mapi
                (fun i (at, p, v) -> if i = k then (at, p', v) else (at, p, v))
                x.Input.workload;
          }
      | `Reseed -> { x with Input.seed = Prng.int prng 1_000_000 }
      | `Splice ->
          let other = (pick_entry prng corpus).input in
          let head xs = Seqx.take ((List.length xs + 1) / 2) xs in
          let tail xs = Seqx.drop (List.length xs / 2) xs in
          {
            x with
            Input.steps = head x.Input.steps @ tail other.Input.steps;
            workload = head x.Input.workload @ tail other.Input.workload;
          }
      | _ -> x)
  done;
  (* Size cap: delete random events until within bounds, so mutation
     cannot snowball schedules past what a round can afford to run. *)
  let rec cap x =
    if Input.events x <= max_events then x
    else
      let nsteps = List.length x.Input.steps in
      let nload = List.length x.Input.workload in
      if nsteps > 0 && (nload = 0 || Prng.bool prng) then
        cap { x with Input.steps = delete_nth (Prng.int prng nsteps) x.Input.steps }
      else if nload > 0 then
        cap
          {
            x with
            Input.workload = delete_nth (Prng.int prng nload) x.Input.workload;
          }
      else x
  in
  Input.normalize (cap !t)

(* ----------------------------- main loop ----------------------------- *)

type service = Vstoto_stack | Skeen_backend

let run ?mutant ?skeen_mutant ?tamper ?pair ?service ?(seeds = []) ?jobs
    ?(batch = 8) ?(shrink_budget = 600) ?(max_events = 40)
    ?(stop_on_failure = true) ?should_stop ?progress ~config ~seed ~execs () =
  let procs = config.To_service.vs.Vs_node.procs in
  (* A Skeen mutant implies the Skeen service: `gcs fuzz --mutant
     skeen-*` needs no extra flag, so the CI canary loop iterates one
     flat mutant list. *)
  let service =
    match service with
    | Some s -> s
    | None ->
        if Option.is_some skeen_mutant then Skeen_backend else Vstoto_stack
  in
  let skeen_config = Gcs_skeen.Skeen.make_config ~procs in
  let delta = config.To_service.vs.Vs_node.delta in
  (* In differential mode [mutant] and [skeen_mutant] instrument the
     candidate side of the pair (they are the planted-bug hooks of
     {!Diff_mutant}); single-execution modes use them as before. *)
  let execute input =
    match pair with
    | Some p ->
        Differential.execute ?tamper ?vs_mutant:mutant ?skeen_mutant ~config p
          input
    | None -> (
        match service with
        | Vstoto_stack -> Runner.execute ?mutant ~config input
        | Skeen_backend ->
            Runner.execute_skeen ?mutant:skeen_mutant ~delta
              ~config:skeen_config input)
  in
  let prng = Prng.create seed in
  let fresh = ref 0 in
  let coverage = ref Coverage.empty in
  let corpus = ref [] in
  let spent = ref 0 in
  let rounds = ref 0 in
  let failures = ref [] in
  let stats () =
    {
      execs = !spent;
      rounds = !rounds;
      corpus_size = List.length !corpus;
      features = Coverage.cardinal !coverage;
    }
  in
  (* Candidates are generated sequentially from the master PRNG and
     executed on the pool; results are folded back in input order, so
     coverage merging, corpus admission and failure selection do not
     depend on domain scheduling. *)
  let run_batch inputs =
    let results = Gcs_stdx.Pool.map ?jobs execute inputs in
    spent := !spent + List.length inputs;
    List.iter2
      (fun input obs ->
        let novelty = Coverage.novel ~base:!coverage obs.Runner.coverage in
        coverage := Coverage.union !coverage obs.Runner.coverage;
        match obs.Runner.verdict with
        | Some f ->
            failures := !failures @ [ (input, f) ];
            (* A soak run keeps going, so the failing input re-enters the
               corpus with boosted energy: its neighbourhood is where
               more divergence lives. *)
            if (not stop_on_failure) && List.length !corpus < 256 then
              corpus := !corpus @ [ { input; novelty = novelty + 32 } ]
        | None ->
            if novelty > 0 && List.length !corpus < 256 then
              corpus := !corpus @ [ { input; novelty } ])
      inputs results;
    match progress with Some f -> f (stats ()) | None -> ()
  in
  let choices =
    match pair with Some _ -> diff_choices | None -> default_choices
  in
  let builtin =
    match pair with
    | Some _ -> Differential.seed_inputs ~procs ~prng
    | None -> seed_inputs ~procs ~prng
  in
  run_batch (Seqx.take (max 1 execs) (builtin @ seeds));
  let halted () =
    match should_stop with Some f -> f () | None -> false
  in
  while
    ((not stop_on_failure) || List.is_empty !failures)
    && !spent < execs
    && (not (List.is_empty !corpus))
    && not (halted ())
  do
    incr rounds;
    let wanted = min batch (execs - !spent) in
    let rec gen k acc =
      if k = 0 then List.rev acc
      else
        gen (k - 1)
          (mutate ~procs ~prng ~fresh ~max_events ~choices !corpus :: acc)
    in
    run_batch (gen wanted [])
  done;
  let failure = match !failures with [] -> None | f :: _ -> Some f in
  let shrunk =
    match failure with
    | None -> None
    | Some (input, f) ->
        let oracle =
          match pair with
          | Some p ->
              fun input ->
                Differential.oracle ?tamper ?vs_mutant:mutant ?skeen_mutant
                  ~config ~check:f.Runner.check p input
          | None -> (
              match service with
              | Vstoto_stack ->
                  fun input ->
                    Runner.oracle ?mutant ~config ~check:f.Runner.check input
              | Skeen_backend ->
                  fun input ->
                    Runner.skeen_oracle ?mutant:skeen_mutant ~delta
                      ~config:skeen_config ~check:f.Runner.check input)
        in
        Some (Shrink.minimize ~budget:shrink_budget ~oracle input f)
  in
  {
    stats = stats ();
    corpus = !corpus;
    coverage = !coverage;
    failure;
    failures = !failures;
    shrunk;
  }

(* ----------------------------- reporting ----------------------------- *)

let stats_to_json outcome =
  let failure_json =
    match (outcome.failure, outcome.shrunk) with
    | Some (input, f), Some s ->
        Printf.sprintf
          {|{"check":"%s","events":%d,"shrunk_events":%d,"shrink_execs":%d}|}
          f.Runner.check (Input.events input)
          (Input.events s.Shrink.input)
          s.Shrink.execs
    | Some (input, f), None ->
        Printf.sprintf {|{"check":"%s","events":%d}|} f.Runner.check
          (Input.events input)
    | None, _ -> "null"
  in
  Printf.sprintf
    {|{"execs":%d,"rounds":%d,"corpus":%d,"features":%d,"failures":%d,"failure":%s}|}
    outcome.stats.execs outcome.stats.rounds outcome.stats.corpus_size
    outcome.stats.features
    (List.length outcome.failures)
    failure_json

let corpus_strings outcome =
  List.map (fun e -> Input.to_string e.input) outcome.corpus
