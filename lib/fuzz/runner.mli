open Gcs_impl

(** Execute one fuzz input and judge it.

    One execution = compile the input's stabilized scenario, run the TO
    service in the simulator with the input's seed and workload, collect
    abstract-state coverage through the engine's [observe] hook, and
    check every oracle the repository has:

    - the client trace against TO-machine;
    - the VS-layer trace against VS-machine;
    - the Theorem 7.2 delivery bound (applicable because fuzz scenarios
      are always stabilized);
    - node-local VStoTO state invariants on every final state
      (counter ordering, duplicate-free order, reported-prefix content).

    The observation is a pure function of (config, mutant, input), so
    executions fan out over a domain pool without coordination. A raised
    exception is itself a verdict ([check = "crash"]), never an escape —
    the fuzzer treats crashes as findings, and a crashing input must not
    abort the batch that contains it. *)

type failure = { check : string; detail : string }

type observation = {
  coverage : Coverage.t;
  verdict : failure option;  (** [None] when every oracle passed *)
  bcasts : int;
  deliveries : int;
  events_processed : int;
}

val vstoto_invariants :
  Gcs_core.Vstoto.state Gcs_automata.Invariant.t list
(** The node-local state invariants (counter ordering, duplicate-free
    order, reported-prefix content), exported so the cross-transport
    conformance suite applies the exact oracle set the fuzzer uses. *)

val node_invariant_failure :
  To_service.node Gcs_core.Proc.Map.t -> failure option
(** First {!vstoto_invariants} violation over a fleet's final states. *)

val execute :
  ?mutant:Mutant.t ->
  ?backend:Gcs_transport.Iface.backend ->
  config:To_service.config ->
  Input.t ->
  observation
(** [backend] runs the input on a pluggable transport instead of the
    simulator (times become wall-clock seconds; coverage over [engine.*]
    counters degenerates to zero buckets, which only matters to the
    coverage-guided loop — the verdict oracles apply unchanged). *)

val execute_full :
  ?mutant:Mutant.t ->
  ?backend:Gcs_transport.Iface.backend ->
  config:To_service.config ->
  Input.t ->
  observation * Gcs_core.Value.t Gcs_core.To_action.t Gcs_core.Timed.t
(** {!execute} returning the client trace too — the differential mode
    extracts per-node delivered orders from it. *)

(** {2 Coverage building blocks}

    Exported for the differential mode, whose reference executions run
    with custom horizons and stop conditions but must produce the same
    deterministic coverage as {!execute}. *)

val transition_features :
  To_service.config ->
  Gcs_core.Proc.t ->
  To_service.node ->
  To_service.node ->
  Coverage.t ->
  Coverage.t
(** Status-pair / primary-switch / view-edge features of one handler
    application. *)

val counter_features :
  Gcs_stdx.Metrics.t -> bcasts:int -> deliveries:int -> Coverage.t ->
  Coverage.t
(** Bucketed run-level counter features. *)

val snapshot_vstoto : To_service.node -> string
(** Deterministic node-state serialization (status, view, counters, the
    delivered order, queue depths) — input to
    {!Coverage.fuzzy_features}. *)

val replay :
  ?mutant:Mutant.t ->
  ?backend:Gcs_transport.Iface.backend ->
  config:To_service.config ->
  Input.t ->
  Gcs_core.Value.t Gcs_core.To_action.t Gcs_core.Timed.t * failure option
(** One execution returning the client trace alongside the verdict — used
    by [gcs fuzz] to dump a shrunk reproducer's trace as a
    {!Gcs_core.Trace_io} artifact (empty on a crashing input). *)

val oracle :
  ?mutant:Mutant.t ->
  ?backend:Gcs_transport.Iface.backend ->
  config:To_service.config ->
  check:string ->
  Input.t ->
  failure option
(** The shrinker's test function: [Some f] iff executing the input fails
    the {e same} check as the failure being minimized (so a reduction
    cannot drift to a different bug). *)

(** {2 The Skeen service}

    The same fuzz inputs driven through the Skeen backend
    ({!Gcs_skeen.Skeen}) instead of the VStoTO stack. Destination
    subsets are derived from a deterministic hash of (origin, value) —
    see {!skeen_dests} — so an input replays to the identical
    multi-group workload everywhere. The oracle chain is Skeen's own:
    the multi-group order oracle and the node invariants on every run,
    completeness on fault-free inputs only (no retransmission), and
    crash-as-verdict. *)

val skeen_dests :
  procs:Gcs_core.Proc.t list -> Gcs_core.Proc.t -> Gcs_core.Value.t ->
  Gcs_core.Proc.t list
(** The derived destination subset (empty = full group after
    normalization). *)

val execute_skeen :
  ?mutant:Skeen_mutant.t ->
  ?backend:Gcs_transport.Iface.backend ->
  ?delta:float ->
  ?dests:[ `Hashed | `Full ] ->
  config:Gcs_skeen.Skeen.config ->
  Input.t ->
  observation
(** [delta] (default 1.0) sets the simulated link bound; the simulator
    runs with FIFO links (Skeen's per-origin FIFO rests on them).
    [dests] (default [`Hashed]) is the dest-subset replay hook:
    [`Full] addresses every message to the whole group, which the
    cross-protocol differential pairs require (VStoTO and the sequencer
    cannot express subsets). *)

val execute_skeen_full :
  ?mutant:Skeen_mutant.t ->
  ?backend:Gcs_transport.Iface.backend ->
  ?stop:(now:float -> outputs:int -> bool) ->
  ?delta:float ->
  ?dests:[ `Hashed | `Full ] ->
  config:Gcs_skeen.Skeen.config ->
  Input.t ->
  observation * Gcs_core.Value.t Gcs_core.To_action.t Gcs_core.Timed.t
(** [stop] is forwarded to a pluggable backend (early exit once the
    expected outputs landed — the wall-clock horizon is only the failure
    fallback); the simulator path ignores it, virtual time being free. *)

val replay_skeen :
  ?mutant:Skeen_mutant.t ->
  ?backend:Gcs_transport.Iface.backend ->
  ?delta:float ->
  ?dests:[ `Hashed | `Full ] ->
  config:Gcs_skeen.Skeen.config ->
  Input.t ->
  Gcs_core.Value.t Gcs_core.To_action.t Gcs_core.Timed.t * failure option

val skeen_oracle :
  ?mutant:Skeen_mutant.t ->
  ?backend:Gcs_transport.Iface.backend ->
  ?delta:float ->
  ?dests:[ `Hashed | `Full ] ->
  config:Gcs_skeen.Skeen.config ->
  check:string ->
  Input.t ->
  failure option
