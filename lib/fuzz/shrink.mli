(** Counterexample minimization (delta debugging).

    Given a failing input and an oracle that re-executes a candidate and
    reports whether it still fails the {e same} check, the shrinker
    produces a locally minimal reproducer:

    - ddmin-style chunked deletion over the fault steps, then over the
      workload (chunk size halving from n/2 down to single events);
    - time compaction: the surviving distinct event times are remapped
      onto a small uniform grid, shortening the simulated horizon;
    - value canonicalization: workload values are renamed to [v0, v1, …]
      preserving their equality structure;
    - engine-seed minimization (try 0, then 1).

    Every reduction is re-verified by the oracle before it is accepted,
    and the phases loop to a fixpoint within the execution budget, so the
    result is guaranteed to still fail — there is no unverified step. *)

type result = {
  input : Input.t;  (** locally minimal, still failing *)
  failure : Runner.failure;  (** the failure of the {e minimized} input *)
  execs : int;  (** oracle executions spent *)
  log : string list;
      (** accepted reductions in order, e.g. ["drop 4 steps (9 events)"] —
          the shrink transcript shown by [gcs fuzz] and EXPERIMENTS.md *)
}

val minimize :
  ?budget:int ->
  oracle:(Input.t -> Runner.failure option) ->
  Input.t ->
  Runner.failure ->
  result
(** [minimize ~oracle input failure] assumes [input] currently fails with
    [failure] (as produced by {!Runner.execute}); [budget] (default 600)
    caps oracle executions — on exhaustion the best verified input so far
    is returned. *)
