open Gcs_nemesis

type result = {
  input : Input.t;
  failure : Runner.failure;
  execs : int;
  log : string list;
}

let minimize ?(budget = 600) ~oracle input failure =
  let execs = ref 0 in
  let log = ref [] in
  let current = ref (Input.normalize input) in
  let current_failure = ref failure in
  (* Re-verify one candidate; accept it as the new current input only if
     the oracle confirms the same failure. *)
  let attempt note candidate =
    if !execs >= budget then false
    else begin
      incr execs;
      match oracle candidate with
      | Some f ->
          current := candidate;
          current_failure := f;
          log :=
            Printf.sprintf "%s (%d events)" note (Input.events candidate)
            :: !log;
          true
      | None -> false
    end
  in
  (* Chunked deletion over one component list ([steps] or [workload]):
     sweep chunks of size [chunk] left to right, retrying in place after a
     successful deletion (the next chunk slid into the gap), then halve
     the chunk size down to single-event deletion. *)
  let shrink_list what get set =
    let changed = ref false in
    let rec go chunk =
      if chunk >= 1 then begin
        let rec sweep start =
          let xs = get !current in
          if start < List.length xs then
            let kept =
              List.filteri (fun i _ -> i < start || i >= start + chunk) xs
            in
            let removed = List.length xs - List.length kept in
            if
              removed > 0
              && attempt
                   (Printf.sprintf "drop %d %s" removed what)
                   (Input.normalize (set !current kept))
            then begin
              changed := true;
              sweep start
            end
            else sweep (start + chunk)
        in
        sweep 0;
        go (chunk / 2)
      end
    in
    go (max 1 (List.length (get !current) / 2));
    !changed
  in
  let shrink_steps () =
    shrink_list "steps"
      (fun t -> t.Input.steps)
      (fun t steps -> { t with Input.steps })
  in
  let shrink_workload () =
    shrink_list "loads"
      (fun t -> t.Input.workload)
      (fun t workload -> { t with Input.workload })
  in
  (* Remap the surviving distinct times onto a 5-unit grid, shortening the
     simulated horizon without reordering anything. *)
  let compact_times () =
    let t = !current in
    let times =
      List.sort_uniq Float.compare
        (List.map (fun s -> s.Scenario.at) t.Input.steps
        @ List.map (fun (at, _, _) -> at) t.Input.workload)
    in
    let remap at =
      let rec idx i = function
        | [] -> i
        | x :: rest -> if Float.equal x at then i else idx (i + 1) rest
      in
      5.0 *. float_of_int (idx 0 times + 1)
    in
    let candidate =
      Input.normalize
        {
          t with
          Input.steps =
            List.map
              (fun s -> { s with Scenario.at = remap s.Scenario.at })
              t.Input.steps;
          workload =
            List.map (fun (at, p, v) -> (remap at, p, v)) t.Input.workload;
        }
    in
    if Input.equal candidate t then false
    else attempt "compact times" candidate
  in
  (* Rename workload values to v0, v1, … preserving equality structure
     (and hence per-origin distinctness). *)
  let rename_values () =
    let t = !current in
    let mapping = ref [] in
    let name v =
      match List.assoc_opt v !mapping with
      | Some n -> n
      | None ->
          let n = Printf.sprintf "v%d" (List.length !mapping) in
          mapping := (v, n) :: !mapping;
          n
    in
    let workload = List.map (fun (at, p, v) -> (at, p, name v)) t.Input.workload in
    let candidate = Input.normalize { t with Input.workload } in
    if Input.equal candidate t then false
    else attempt "canonicalize values" candidate
  in
  (* Strictly decreasing, so fixpoint rounds cannot oscillate between two
     seeds that both reproduce. *)
  let minimize_seed () =
    let t = !current in
    List.exists
      (fun s ->
        t.Input.seed > s
        && attempt (Printf.sprintf "seed %d" s) { t with Input.seed = s })
      [ 0; 1 ]
  in
  let rec fixpoint () =
    let changed = ref false in
    if shrink_steps () then changed := true;
    if shrink_workload () then changed := true;
    if compact_times () then changed := true;
    if rename_values () then changed := true;
    if minimize_seed () then changed := true;
    if !changed && !execs < budget then fixpoint ()
  in
  fixpoint ();
  {
    input = !current;
    failure = !current_failure;
    execs = !execs;
    log = List.rev !log;
  }
