(** Planted divergence-only bugs — reorderings indistinguishable, within
    one execution, from legitimate network or client timing. Every
    single-execution oracle accepts a tampered run; only a second
    execution of the same schedule on the reference backend exposes it.
    They gauge {!Differential} the way {!Mutant} and {!Skeen_mutant}
    gauge the single-execution oracle battery: [gcs fuzz --diff PAIR
    --mutant NAME --expect-failure] must find and shrink each one
    within CI budgets.

    Each mutant infects the {e candidate} side of one pair, either as a
    transport tamper ({!Gcs_transport.Bus.tamper}: a transposed input
    queue) or as a handler rewrite on the candidate's service — VStoTO
    ({!Mutant.t}) or Skeen ({!Skeen_mutant.t}) — that hands a delivery
    to the client one delivery late, FIFO preserved. *)

type t = {
  name : string;
  doc : string;  (** the emulated defect, one line *)
  pair : Differential.pair;  (** the pair whose candidate side it infects *)
  tamper : Gcs_transport.Bus.tamper option;
  vs : Mutant.t option;
  skeen : Skeen_mutant.t option;
}

val all : t list
val find : string -> t option
val names : string list
