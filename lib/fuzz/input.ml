open Gcs_core
open Gcs_nemesis

type t = {
  seed : int;
  steps : Scenario.step list;
  workload : (float * Proc.t * Value.t) list;
}

let events t = List.length t.steps + List.length t.workload

let normalize t =
  let steps =
    List.stable_sort
      (fun a b -> Float.compare a.Scenario.at b.Scenario.at)
      t.steps
  in
  let workload =
    List.stable_sort (fun (a, _, _) (b, _, _) -> Float.compare a b) t.workload
  in
  (* The TO-property checker requires distinct values per origin; keep the
     first occurrence of each (origin, value) pair. *)
  let seen = ref [] in
  let workload =
    List.filter
      (fun (_, p, v) ->
        if List.exists (fun (q, w) -> Proc.equal p q && Value.equal v w) !seen
        then false
        else begin
          seen := (p, v) :: !seen;
          true
        end)
      workload
  in
  { t with steps; workload }

let scenario ~procs t =
  Scenario.v "fuzz" (Scenario.stabilize ~procs t.steps)

(* ------------------------------ printing ------------------------------ *)

let string_of_status = function
  | Fstatus.Good -> "good"
  | Fstatus.Bad -> "bad"
  | Fstatus.Ugly -> "ugly"

let status_of_string = function
  | "good" -> Some Fstatus.Good
  | "bad" -> Some Fstatus.Bad
  | "ugly" -> Some Fstatus.Ugly
  | _ -> None

let string_of_op = function
  | Scenario.Partition parts ->
      Printf.sprintf "partition %s"
        (String.concat "/"
           (List.map
              (fun part -> String.concat "," (List.map string_of_int part))
              parts))
  | Scenario.Heal -> "heal"
  | Scenario.Crash p -> Printf.sprintf "crash %d" p
  | Scenario.Recover p -> Printf.sprintf "recover %d" p
  | Scenario.Degrade (p, q, s) ->
      Printf.sprintf "degrade %d %d %s" p q (string_of_status s)
  | Scenario.Slow p -> Printf.sprintf "slow %d" p
  | Scenario.Wake p -> Printf.sprintf "wake %d" p

let to_string t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "seed %d\n" t.seed);
  List.iter
    (fun step ->
      Buffer.add_string buf
        (Printf.sprintf "step %.6f %s\n" step.Scenario.at
           (string_of_op step.Scenario.op)))
    t.steps;
  List.iter
    (fun (time, p, v) ->
      Buffer.add_string buf
        (Printf.sprintf "load %.6f %d %s\n" time p (Trace_io.escape v)))
    t.workload;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b = String.equal (to_string a) (to_string b)

(* ------------------------------ parsing ------------------------------- *)

let int_opt s = int_of_string_opt s

let parts_of_string s =
  if String.equal s "" then Some []
  else
    let parse_part part =
      if String.equal part "" then Some []
      else
        let ids = String.split_on_char ',' part in
        List.fold_left
          (fun acc id ->
            match (acc, int_opt id) with
            | Some ps, Some p -> Some (p :: ps)
            | _ -> None)
          (Some []) ids
        |> Option.map List.rev
    in
    List.fold_left
      (fun acc part ->
        match (acc, parse_part part) with
        | Some ps, Some p -> Some (p :: ps)
        | _ -> None)
      (Some [])
      (String.split_on_char '/' s)
    |> Option.map List.rev

let op_of_words words =
  match words with
  | [ "partition" ] -> Some (Scenario.Partition [])
  | [ "partition"; parts ] ->
      Option.map (fun p -> Scenario.Partition p) (parts_of_string parts)
  | [ "heal" ] -> Some Scenario.Heal
  | [ "crash"; p ] -> Option.map (fun p -> Scenario.Crash p) (int_opt p)
  | [ "recover"; p ] -> Option.map (fun p -> Scenario.Recover p) (int_opt p)
  | [ "degrade"; p; q; s ] -> (
      match (int_opt p, int_opt q, status_of_string s) with
      | Some p, Some q, Some s -> Some (Scenario.Degrade (p, q, s))
      | _ -> None)
  | [ "slow"; p ] -> Option.map (fun p -> Scenario.Slow p) (int_opt p)
  | [ "wake"; p ] -> Option.map (fun p -> Scenario.Wake p) (int_opt p)
  | _ -> None

let of_string text =
  let err lineno line reason =
    Error (Printf.sprintf "line %d: %s: %s" lineno reason line)
  in
  let parse acc lineno line =
    match acc with
    | Error _ -> acc
    | Ok t -> (
        let trimmed = String.trim line in
        if String.equal trimmed "" || String.length trimmed > 0 && trimmed.[0] = '#'
        then acc
        else
          match String.split_on_char ' ' trimmed with
          | "seed" :: [ n ] -> (
              match int_opt n with
              | Some seed -> Ok { t with seed }
              | None -> err lineno line "bad seed")
          | "step" :: time :: rest -> (
              match (float_of_string_opt time, op_of_words rest) with
              | Some at, Some op ->
                  Ok { t with steps = { Scenario.at; op } :: t.steps }
              | _ -> err lineno line "bad step")
          (* An empty value escapes to the empty string and its field is
             then lost to [trim]; a three-field load line is unambiguously
             an empty value because [Trace_io.escape] encodes spaces. *)
          | "load" :: time :: [ p ] -> (
              match (float_of_string_opt time, int_opt p) with
              | Some at, Some p ->
                  Ok { t with workload = (at, p, "") :: t.workload }
              | _ -> err lineno line "bad load")
          | "load" :: time :: p :: [ value ] -> (
              match
                (float_of_string_opt time, int_opt p, Trace_io.unescape value)
              with
              | Some at, Some p, Some v ->
                  Ok { t with workload = (at, p, v) :: t.workload }
              | _ -> err lineno line "bad load")
          | _ -> err lineno line "unrecognized line")
  in
  let lines = String.split_on_char '\n' text in
  let result, _ =
    List.fold_left
      (fun (acc, lineno) line -> (parse acc lineno line, lineno + 1))
      (Ok { seed = 0; steps = []; workload = [] }, 1)
      lines
  in
  Result.map
    (fun t ->
      normalize { t with steps = List.rev t.steps; workload = List.rev t.workload })
    result
