open Gcs_core
open Gcs_nemesis

(** Fuzz inputs: serialized schedules.

    An input is everything a simulated execution depends on — the engine
    PRNG seed, the nemesis fault steps, and the client workload. The
    fuzzer mutates inputs, the runner executes them, and the shrinker
    deletes from them; all three speak this one type, and its text form
    is the on-disk corpus/repro format (one line per component, values
    %-escaped with {!Gcs_core.Trace_io}, so arbitrary strings
    round-trip). *)

type t = {
  seed : int;  (** engine PRNG seed *)
  steps : Scenario.step list;  (** fault schedule, without the finale *)
  workload : (float * Proc.t * Value.t) list;
}

val events : t -> int
(** Schedule size: fault steps plus workload submissions. The shrinker
    minimizes this count. *)

val normalize : t -> t
(** Canonical form: steps stably sorted by time, workload stably sorted
    by time, and workload deduplicated by (origin, value) — the
    TO-property checker requires distinct values per origin, so a
    degenerate mutation must not read as a spurious violation. *)

val scenario : procs:Proc.t list -> t -> Scenario.t
(** The stabilized scenario: the input's steps plus the
    {!Scenario.stabilize} finale, so every fuzz execution ends fully good
    and the Theorem 7.2 delivery bound is an applicable oracle. *)

val to_string : t -> string
(** Line-oriented text form:
    {v
    seed <n>
    step <time> partition 0,1/2,3
    step <time> heal | crash <p> | recover <p>
    step <time> degrade <p> <q> good|bad|ugly
    step <time> slow <p> | wake <p>
    load <time> <p> <escaped-value>
    v} *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string} (modulo {!normalize}); blank lines and [#]
    comments are skipped. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
