open Gcs_core
open Gcs_impl
open Gcs_nemesis
open Gcs_sim

type failure = { check : string; detail : string }

type observation = {
  coverage : Coverage.t;
  verdict : failure option;
  bcasts : int;
  deliveries : int;
  events_processed : int;
}

(* ------------------------- coverage features ------------------------- *)

let status_name = function
  | Vstoto.Normal -> "normal"
  | Vstoto.Send -> "send"
  | Vstoto.Collect -> "collect"

let view_feature = function
  | None -> "-"
  | Some v ->
      Printf.sprintf "%d.%d" (Coverage.bucket v.View.id.View_id.num)
        (Proc.Set.cardinal v.View.set)

let view_changed pre post =
  match (To_service.node_view pre, To_service.node_view post) with
  | None, None -> false
  | Some a, Some b -> not (View_id.equal a.View.id b.View.id)
  | None, Some _ | Some _, None -> true

(* Deterministic serialization of a node's VStoTO-visible state — the
   raw material for fuzzy-hashed state coverage: status, view, delivery
   counters, the full delivered order, and the sizes of every queue the
   protocol keeps (buffer, delay, pipeline holds, exchange bookkeeping),
   plus the service-level view-install count and staging depth. *)
let snapshot_vstoto node =
  let st = To_service.node_app node in
  let buf = Buffer.create 256 in
  Printf.bprintf buf "status=%s view=%s installed=%d staging=%d\n"
    (match To_service.node_status node with
    | Vstoto.Normal -> "normal"
    | Vstoto.Send -> "send"
    | Vstoto.Collect -> "collect")
    (match To_service.node_view node with
    | None -> "-"
    | Some v ->
        Printf.sprintf "%d/%d" v.View.id.View_id.num
          (Proc.Set.cardinal v.View.set))
    (To_service.node_views_installed node)
    (List.length (To_service.node_staging node));
  Printf.bprintf buf "nr=%d nc=%d seq=%d\n" st.Vstoto.nextreport
    st.Vstoto.nextconfirm st.Vstoto.nextseqno;
  List.iter
    (fun l -> Printf.bprintf buf "o %s\n" (Format.asprintf "%a" Label.pp l))
    (Gcs_stdx.Tape.to_list st.Vstoto.order);
  Printf.bprintf buf "buf=%d delay=%d held=%d hsafe=%d got=%d sx=%d sl=%d\n"
    (Gcs_stdx.Tape.length st.Vstoto.buffer)
    (Gcs_stdx.Tape.length st.Vstoto.delay)
    (Gcs_stdx.Tape.length st.Vstoto.held)
    (Gcs_stdx.Tape.length st.Vstoto.held_safe)
    (Proc.Map.cardinal st.Vstoto.gotstate)
    (Proc.Set.cardinal st.Vstoto.safe_exch)
    (Label.Set.cardinal st.Vstoto.safe_labels);
  Buffer.contents buf

(* Features of one handler application: VStoTO status-pair transitions,
   primary/non-primary switches, and (bucketed view number, membership
   size) edges. Deliberately processor-free: the abstraction should
   identify symmetric schedules, not tell processors apart. *)
let transition_features config me pre post acc =
  let acc =
    let s1 = To_service.node_status pre and s2 = To_service.node_status post in
    if Vstoto.status_equal s1 s2 then acc
    else
      Coverage.add acc
        (Printf.sprintf "st:%s>%s" (status_name s1) (status_name s2))
  in
  let acc =
    let p1 = To_service.node_primary config me pre
    and p2 = To_service.node_primary config me post in
    if Bool.equal p1 p2 then acc
    else Coverage.add acc (Printf.sprintf "pr:%b>%b" p1 p2)
  in
  let v1 = To_service.node_view pre and v2 = To_service.node_view post in
  let changed =
    match (v1, v2) with
    | None, None -> false
    | Some a, Some b -> not (View_id.equal a.View.id b.View.id)
    | None, Some _ | Some _, None -> true
  in
  if changed then
    Coverage.add acc
      (Printf.sprintf "vw:%s>%s" (view_feature v1) (view_feature v2))
  else acc

(* Bucketed run-level counters: packet fates per link status, membership
   and token activity, client-visible throughput. *)
let counter_names =
  [
    "engine.packets_sent.good";
    "engine.packets_sent.self";
    "engine.packets_sent.ugly";
    "engine.packets_dropped.bad";
    "engine.packets_dropped.ugly";
    "engine.events_held.bad";
    "engine.events_delayed.ugly";
    "vs.membership_rounds";
    "vs.token_roundtrips";
    "vs.tokens_launched";
    "vs.views_installed";
  ]

let counter_features metrics ~bcasts ~deliveries acc =
  let acc =
    List.fold_left
      (fun acc name ->
        Coverage.add acc
          (Printf.sprintf "m:%s=%d" name
             (Coverage.bucket (Gcs_stdx.Metrics.counter metrics name))))
      acc counter_names
  in
  let acc =
    Coverage.add acc (Printf.sprintf "m:to.bcasts=%d" (Coverage.bucket bcasts))
  in
  Coverage.add acc
    (Printf.sprintf "m:to.deliveries=%d" (Coverage.bucket deliveries))

(* -------------------------- node invariants -------------------------- *)

(* The invariants themselves live in {!Gcs_conformance.Oracle} (the
   conformance suite needs them, and the fuzzer now depends on the
   conformance library for the divergence comparator, so the dependency
   points that way). *)
let vstoto_invariants = Gcs_conformance.Oracle.vstoto_invariants

let node_invariant_failure final_states =
  match Gcs_conformance.Oracle.node_invariant_failure final_states with
  | Some (check, detail) -> Some { check; detail }
  | None -> None

(* ------------------------------ verdict ------------------------------ *)

let verdict config ~procs ~until run final_states =
  match To_service.to_conforms config run with
  | Error e ->
      Some
        {
          check = "to-conformance";
          detail = Format.asprintf "%a" To_trace_checker.pp_error e;
        }
  | Ok () -> (
      match To_service.vs_conforms config run with
      | Error e ->
          Some
            {
              check = "vs-conformance";
              detail = Format.asprintf "%a" Vs_trace_checker.pp_error e;
            }
      | Ok () ->
          let b', d' = Harness.bounds config in
          let report =
            To_property.check ~b:b' ~d:d' ~q:procs ~horizon:until
              (To_service.client_trace run)
          in
          if not (To_property.holds report) then
            Some
              {
                check = "delivery-bound";
                detail = Format.asprintf "%a" To_property.pp_report report;
              }
          else node_invariant_failure final_states)

(* ------------------------------ execute ------------------------------ *)

let execute_full ?mutant ?backend ~config input =
  let procs = config.To_service.vs.Vs_node.procs in
  let scenario = Input.scenario ~procs input in
  let until = Harness.default_until ~config scenario in
  let cov = ref Coverage.empty in
  (try
     let failures = Scenario.compile ~procs scenario in
     let metrics = Gcs_stdx.Metrics.create () in
     let handlers = To_service.handlers ~metrics config in
     let handlers =
       match mutant with
       | Some m -> m.Mutant.instrument config handlers
       | None -> handlers
     in
     (* State snapshots at quiescent points — every view install is a
        stable cut of the node's state — plus the final states below.
        On the bus, [observe] calls are serialized by the backend, so
        the accumulator needs no extra locking. *)
     let snaps = ref [] in
     let observe me pre post =
       cov := transition_features config me pre post !cov;
       if view_changed pre post then snaps := snapshot_vstoto post :: !snaps
     in
     let result =
       match backend with
       | None ->
           Engine.run ~metrics ~observe
             (Engine.default_config ~delta:config.To_service.vs.Vs_node.delta)
             ~procs ~handlers
             ~init:(To_service.initial config)
             ~inputs:input.Input.workload ~failures ~until
             ~prng:(Gcs_stdx.Prng.create input.Input.seed)
       | Some (module B : Gcs_transport.Iface.BACKEND) ->
           B.run ~metrics ~observe Wire.msg_packet_codec ~procs ~handlers
             ~init:(To_service.initial config)
             ~inputs:input.Input.workload ~failures ~until
             ~seed:input.Input.seed
     in
     let run =
       {
         To_service.trace = result.Engine.trace;
         final_nodes = result.Engine.final_states;
         packets_sent = result.Engine.packets_sent;
         packets_dropped = result.Engine.packets_dropped;
         events_processed = result.Engine.events_processed;
         metrics;
       }
     in
     let bcasts =
       List.length
         (List.filter
            (fun (_, a) ->
              match a with To_action.Bcast _ -> true | _ -> false)
            (Timed.actions (To_service.client_trace run)))
     in
     let deliveries = To_service.deliveries run in
     cov := counter_features metrics ~bcasts ~deliveries !cov;
     let finals =
       List.map
         (fun (_, node) -> snapshot_vstoto node)
         (Proc.Map.bindings result.Engine.final_states)
     in
     cov :=
       Coverage.union !cov
         (Coverage.fuzzy_features ~tag:"vs" (finals @ !snaps));
     ( {
         coverage = !cov;
         verdict = verdict config ~procs ~until run result.Engine.final_states;
         bcasts;
         deliveries;
         events_processed = result.Engine.events_processed;
       },
       To_service.client_trace run )
   with e ->
     (* Any escape from the simulator or a checker is a finding in its own
        right; converting it keeps domain-pool batches alive and lets the
        shrinker minimize crashing schedules like any other failure. *)
     ( {
         coverage = !cov;
         verdict = Some { check = "crash"; detail = Printexc.to_string e };
         bcasts = 0;
         deliveries = 0;
         events_processed = 0;
       },
       [] ))
  [@gcs.lint.allow "P2"]

let execute ?mutant ?backend ~config input =
  fst (execute_full ?mutant ?backend ~config input)

let replay ?mutant ?backend ~config input =
  let obs, trace = execute_full ?mutant ?backend ~config input in
  (trace, obs.verdict)

let oracle ?mutant ?backend ~config ~check input =
  match (execute ?mutant ?backend ~config input).verdict with
  | Some f when String.equal f.check check -> Some f
  | Some _ | None -> None

(* --------------------------- skeen service --------------------------- *)

open Gcs_skeen

(* Destination subsets are derived, not stored: a deterministic hash of
   (origin, value) picks a subset of the group (empty hash picks fall
   back to full-group addressing). The same input therefore always runs
   the same multi-group workload — through the fuzzer, the shrinker and
   a repro replay alike. *)
let skeen_dests ~procs origin value =
  let h =
    String.fold_left
      (fun acc c -> (acc * 131) + Char.code c)
      ((origin * 7) + 13)
      value
  in
  List.filter (fun p -> (h lsr (p mod 12)) land 1 = 1) procs

(* [`Full] is the differential mode's dest-subset replay hook: the
   VStoTO stack and the sequencer always address the whole group, so a
   cross-protocol comparison must force Skeen onto the same footing. *)
let skeen_workload ?(dests = `Hashed) ~procs workload =
  match dests with
  | `Full ->
      List.map (fun (t, p, v) -> (t, p, Skeen.full_group v)) workload
  | `Hashed ->
      List.map
        (fun (t, p, v) ->
          (t, p, { Skeen.value = v; dests = skeen_dests ~procs p v }))
        workload

(* Processor-free abstract-state features: bucketed pending-set size,
   delivery count and logical-clock transitions. *)
let skeen_transition_features pre post acc =
  let edge tag f acc =
    let b1 = Coverage.bucket (f pre) and b2 = Coverage.bucket (f post) in
    if b1 = b2 then acc
    else Coverage.add acc (Printf.sprintf "sk.%s:%d>%d" tag b1 b2)
  in
  acc
  |> edge "pend" Skeen.node_pending
  |> edge "del" Skeen.node_delivered
  |> edge "clk" Skeen.node_clock

let skeen_counter_names =
  [
    "engine.packets_sent.good";
    "engine.packets_sent.self";
    "engine.packets_sent.ugly";
    "engine.packets_dropped.bad";
    "engine.packets_dropped.ugly";
    "engine.events_held.bad";
    "engine.events_delayed.ugly";
  ]

let skeen_counter_features metrics ~bcasts ~deliveries acc =
  let acc =
    List.fold_left
      (fun acc name ->
        Coverage.add acc
          (Printf.sprintf "m:%s=%d" name
             (Coverage.bucket (Gcs_stdx.Metrics.counter metrics name))))
      acc skeen_counter_names
  in
  let acc =
    Coverage.add acc (Printf.sprintf "m:sk.bcasts=%d" (Coverage.bucket bcasts))
  in
  Coverage.add acc
    (Printf.sprintf "m:sk.deliveries=%d" (Coverage.bucket deliveries))

(* Skeen's oracle chain: the multi-group order oracle and the node
   invariants on every run; completeness only on fault-free inputs —
   the protocol has no retransmission, so any fault step may
   legitimately wedge a destination. *)
let skeen_verdict config ~workload ~faulty trace final_nodes =
  match Skeen.check_group_order config ~workload trace with
  | Error detail -> Some { check = "skeen-group-order"; detail }
  | Ok () -> (
      match Skeen.node_invariant_failure final_nodes with
      | Some (check, detail) -> Some { check; detail }
      | None ->
          if faulty then None
          else (
            match Skeen.check_complete config ~workload trace with
            | Error detail -> Some { check = "skeen-completeness"; detail }
            | Ok () -> None))

let execute_skeen_full ?mutant ?backend ?stop ?(delta = 1.0) ?dests ~config
    input =
  let procs = config.Skeen.procs in
  let scenario = Input.scenario ~procs input in
  let workload = skeen_workload ?dests ~procs input.Input.workload in
  let workload_end =
    List.fold_left (fun acc (t, _, _) -> Float.max acc t) 0.0 workload
  in
  let until =
    Float.max (Scenario.stabilization_time scenario) workload_end
    +. (50.0 *. delta)
  in
  let faulty = input.Input.steps <> [] in
  let cov = ref Coverage.empty in
  (try
     let failures = Scenario.compile ~procs scenario in
     let metrics = Gcs_stdx.Metrics.create () in
     let handlers = Skeen.handlers config in
     let handlers =
       match mutant with
       | Some m -> m.Skeen_mutant.instrument config handlers
       | None -> handlers
     in
     let snaps = ref [] in
     let observe _me pre post =
       cov := skeen_transition_features pre post !cov;
       (* Quiescent point: a delivery crossing a count bucket — the
          pending set just drained past a threshold. *)
       if
         Coverage.bucket (Skeen.node_delivered pre)
         <> Coverage.bucket (Skeen.node_delivered post)
       then snaps := Skeen.snapshot_node post :: !snaps
     in
     let trace, final_nodes, events_processed =
       match backend with
       | None ->
           let result =
             Engine.run ~metrics ~observe
               { (Engine.default_config ~delta) with Engine.fifo = true }
               ~procs ~handlers ~init:Skeen.initial ~inputs:workload ~failures
               ~until
               ~prng:(Gcs_stdx.Prng.create input.Input.seed)
           in
           ( result.Engine.trace,
             result.Engine.final_states,
             result.Engine.events_processed )
       | Some (module B : Gcs_transport.Iface.BACKEND) ->
           let result =
             B.run ?stop ~metrics ~observe Skeen.packet_codec ~procs ~handlers
               ~init:Skeen.initial ~inputs:workload ~failures ~until
               ~seed:input.Input.seed
           in
           ( result.Gcs_transport.Iface.trace,
             result.Gcs_transport.Iface.final_states,
             result.Gcs_transport.Iface.events_processed )
     in
     let bcasts =
       List.length
         (List.filter
            (fun (_, a) -> match a with To_action.Bcast _ -> true | _ -> false)
            (Timed.actions trace))
     in
     let deliveries =
       List.length
         (List.filter
            (fun (_, a) -> match a with To_action.Brcv _ -> true | _ -> false)
            (Timed.actions trace))
     in
     cov := skeen_counter_features metrics ~bcasts ~deliveries !cov;
     let final_snaps =
       List.map
         (fun (_, node) -> Skeen.snapshot_node node)
         (Proc.Map.bindings final_nodes)
     in
     cov :=
       Coverage.union !cov
         (Coverage.fuzzy_features ~tag:"sk" (final_snaps @ !snaps));
     ( {
         coverage = !cov;
         verdict = skeen_verdict config ~workload ~faulty trace final_nodes;
         bcasts;
         deliveries;
         events_processed;
       },
       trace )
   with e ->
     ( {
         coverage = !cov;
         verdict = Some { check = "crash"; detail = Printexc.to_string e };
         bcasts = 0;
         deliveries = 0;
         events_processed = 0;
       },
       [] ))
  [@gcs.lint.allow "P2"]

let execute_skeen ?mutant ?backend ?delta ?dests ~config input =
  fst (execute_skeen_full ?mutant ?backend ?delta ?dests ~config input)

let replay_skeen ?mutant ?backend ?delta ?dests ~config input =
  let obs, trace =
    execute_skeen_full ?mutant ?backend ?delta ?dests ~config input
  in
  (trace, obs.verdict)

let skeen_oracle ?mutant ?backend ?delta ?dests ~config ~check input =
  match
    (execute_skeen ?mutant ?backend ?delta ?dests ~config input).verdict
  with
  | Some f when String.equal f.check check -> Some f
  | Some _ | None -> None
