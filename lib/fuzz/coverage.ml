module S = Set.Make (String)

type t = S.t

let empty = S.empty
let add t feature = S.add feature t
let of_list = S.of_list
let union = S.union
let cardinal = S.cardinal
let novel ~base t = S.cardinal (S.diff t base)
let to_list = S.elements

let bucket n =
  if n <= 0 then 0
  else if n <= 3 then n
  else if n < 8 then 4
  else if n < 16 then 8
  else if n < 32 then 16
  else if n < 128 then 32
  else 128
