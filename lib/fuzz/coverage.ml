module S = Set.Make (String)

type t = S.t

let empty = S.empty
let add t feature = S.add feature t
let of_list = S.of_list
let union = S.union
let cardinal = S.cardinal
let novel ~base t = S.cardinal (S.diff t base)
let to_list = S.elements

let bucket n =
  if n <= 0 then 0
  else if n <= 3 then n
  else if n < 8 then 4
  else if n < 16 then 8
  else if n < 32 then 16
  else if n < 128 then 32
  else 128

(* ------------------------ fuzzy state hashing ------------------------ *)

(* Content-defined chunking (ssdeep-lite): a byte-wise rolling value
   marks a chunk boundary whenever its low 5 bits are all set, so
   boundaries stick to content, not offsets — a local edit to the
   serialized state perturbs the chunks around it and leaves the rest
   of the chunk stream intact (locality sensitivity). Each chunk maps
   to a 12-bit FNV-1a hash, bounding the feature universe. *)
let chunk_hashes s acc =
  let fnv_seed = 0x3bf29ce484222325 in
  let fnv_prime = 0x100000001b3 in
  let flush acc h = (h lxor (h lsr 24)) land 0xfff :: acc in
  let acc, h, len =
    String.fold_left
      (fun (acc, h, len) c ->
        let code = Char.code c in
        let h = (h lxor code) * fnv_prime in
        let roll = (h lxor (h lsr 13)) land 0x1f in
        if roll = 0x1f && len >= 4 then (flush acc h, fnv_seed, 0)
        else (acc, h, len + 1))
      (acc, fnv_seed, 0) s
  in
  if len > 0 then flush acc h else acc

let fuzzy_features ~tag snapshots =
  (* AFL-style: the multiset of chunk hashes across all of a run's
     snapshots, each hash contributing itself plus its bucketed
     multiplicity. The multiset view makes the features independent of
     snapshot order, so they stay deterministic even when snapshots are
     collected from concurrently observed nodes. *)
  let counts = Hashtbl.create 64 in
  List.iter
    (fun s ->
      List.iter
        (fun h ->
          let prev =
            match Hashtbl.find_opt counts h with Some n -> n | None -> 0
          in
          Hashtbl.replace counts h (prev + 1))
        (chunk_hashes s []))
    snapshots;
  (Hashtbl.fold
     (fun h n acc ->
       S.add
         (Printf.sprintf "sh:%s:%03x" tag h)
         (S.add (Printf.sprintf "shx:%s:%03x.%d" tag h (bucket n)) acc))
     counts S.empty)
  [@gcs.lint.allow "D1" (* folded into a set: order-independent *)]
