open Gcs_core
open Gcs_impl
open Gcs_sim

(* Planted bugs whose ONLY symptom is cross-backend divergence: each one
   reorders work in a way that is indistinguishable — to every
   single-execution oracle in the repository — from legitimate network
   or client timing. A tampered run, taken alone, is a valid execution
   of *some* schedule; only comparing it against a second execution of
   the *same* schedule exposes the lie. They gauge the differential
   mode the way {!Mutant} and {!Skeen_mutant} gauge the single-execution
   oracle battery. *)

type t = {
  name : string;
  doc : string;
  pair : Differential.pair;  (** the pair whose candidate side it infects *)
  tamper : Gcs_transport.Bus.tamper option;
  vs : Mutant.t option;
  skeen : Skeen_mutant.t option;
}

(* ------------------------- transport tampers ------------------------- *)

(* Swap the payloads of node 0's first two client submissions (times
   kept): the bus runs a transposed schedule, so the token picks the
   values up in transposed order — a valid total order for the wrong
   workload. Deterministic: fires whenever node 0 submits twice. *)
let bus_swap_inputs =
  {
    name = "bus-swap-inputs";
    doc =
      "the bus transposes node 0's first two submissions (an input-queue \
       bug): every single-execution oracle accepts the reordered run";
    pair = Differential.Sim_bus;
    tamper =
      Some { Gcs_transport.Bus.swap_inputs_at = Some (0, 0) };
    vs = None;
    skeen = None;
  }

(* The same input transposition on the Skeen pair: the serialized
   workload makes the divergence deterministic (the bus delivers the
   transposed values in submission-slot order). *)
let skeen_swap_inputs =
  {
    name = "skeen-swap-inputs";
    doc =
      "the Skeen bus transposes node 0's first two submissions — the \
       committed order matches the transposed schedule, not the real one";
    pair = Differential.Skeen_bus;
    tamper =
      Some { Gcs_transport.Bus.swap_inputs_at = Some (0, 0) };
    vs = None;
    skeen = None;
  }

(* ---------------------- delivery-delay rewrites ---------------------- *)

(* Hold each node's 2nd delivery and release it just after the node's
   next delivery from a *different* origin (same-origin pairs are put
   back in place, keeping per-origin FIFO intact). The swap reorders
   only Output effects, so protocol state, timestamps and packets are
   untouched — the single-execution oracles see a node that was merely
   "slow to hand over" one delivery, yet the delivered sequence
   contradicts the reference execution. Applied uniformly at every
   node, so no agreement check between candidate nodes fires either. *)
let delay_k = 2

let delay_deliver_skeen =
  {
    Skeen_mutant.name = "skeen-delay-deliver";
    doc =
      "each node hands its 2nd delivery to the client one delivery late \
       (after the next delivery from another origin) — FIFO-safe, so \
       only cross-backend comparison sees it";
    expected_checks = [ "divergence" ];
    instrument =
      (fun config h ->
        let n =
          1 + List.fold_left (fun acc p -> max acc p) 0 config.Gcs_skeen.Skeen.procs
        in
        (* One slot per node, each touched only by its own domain (the
           bus runs handlers on per-node domains); Atomic keeps the
           slots race-free by construction rather than by argument. *)
        let counts = Array.init n (fun _ -> Atomic.make 0) in
        let stash = Array.init n (fun _ -> Atomic.make None) in
        Skeen_mutant.rewrite
          (fun me _st es ->
            let out = ref [] in
            let emit e = out := e :: !out in
            List.iter
              (fun e ->
                match e with
                | Engine.Output (To_action.Brcv { src; _ }) -> (
                    match Atomic.get stash.(me) with
                    | Some (sorig, held) ->
                        Atomic.set stash.(me) None;
                        if Proc.equal sorig src then begin
                          (* Same origin: restore the original order —
                             swapping here would break FIFO and light up
                             a single-execution oracle. *)
                          emit held;
                          emit e
                        end
                        else begin
                          emit e;
                          emit held
                        end
                    | None ->
                        let c = 1 + Atomic.fetch_and_add counts.(me) 1 in
                        if c = delay_k then
                          Atomic.set stash.(me) (Some (src, e))
                        else emit e)
                | e -> emit e)
              es;
            List.rev !out)
          h);
  }

let skeen_delay_deliver =
  {
    name = "skeen-delay-deliver";
    doc = delay_deliver_skeen.Skeen_mutant.doc;
    pair = Differential.Skeen_bus;
    tamper = None;
    vs = None;
    skeen = Some delay_deliver_skeen;
  }

(* The same delivery-queue bug in the VStoTO service running on the bus.
   Client deliveries are [To_service.Client (Brcv _)] effects inside a
   stream dominated by [Vs_layer] actions, so only a handler-level
   rewrite can target them — a transport-level output index cannot. *)
let delay_deliver_vs =
  {
    Mutant.name = "vs-delay-deliver";
    doc =
      "each VStoTO node hands its 2nd delivery to the client one \
       delivery late (after the next delivery from another origin) — \
       FIFO-safe, so only cross-backend comparison sees it";
    expected_checks = [ "divergence" ];
    instrument =
      (fun config h ->
        let procs = config.To_service.vs.Vs_node.procs in
        let n = 1 + List.fold_left (fun acc p -> max acc p) 0 procs in
        let counts = Array.init n (fun _ -> Atomic.make 0) in
        let stash = Array.init n (fun _ -> Atomic.make None) in
        Mutant.rewrite
          (fun me _st es ->
            let out = ref [] in
            let emit e = out := e :: !out in
            List.iter
              (fun e ->
                match e with
                | Engine.Output
                    (To_service.Client (To_action.Brcv { src; _ })) -> (
                    match Atomic.get stash.(me) with
                    | Some (sorig, held) ->
                        Atomic.set stash.(me) None;
                        if Proc.equal sorig src then begin
                          emit held;
                          emit e
                        end
                        else begin
                          emit e;
                          emit held
                        end
                    | None ->
                        let c = 1 + Atomic.fetch_and_add counts.(me) 1 in
                        if c = delay_k then
                          Atomic.set stash.(me) (Some (src, e))
                        else emit e)
                | e -> emit e)
              es;
            List.rev !out)
          h);
  }

let vs_delay_deliver =
  {
    name = "vs-delay-deliver";
    doc = delay_deliver_vs.Mutant.doc;
    pair = Differential.Sim_bus;
    tamper = None;
    vs = Some delay_deliver_vs;
    skeen = None;
  }

let all =
  [
    bus_swap_inputs;
    vs_delay_deliver;
    skeen_swap_inputs;
    skeen_delay_deliver;
  ]

let find name = List.find_opt (fun m -> String.equal m.name name) all
let names = List.map (fun m -> m.name) all
