type t = Good | Bad | Ugly

type event =
  | Proc_status of Proc.t * t
  | Link_status of Proc.t * Proc.t * t

let equal a b =
  match (a, b) with
  | Good, Good | Bad, Bad | Ugly, Ugly -> true
  | (Good | Bad | Ugly), _ -> false

let pp ppf = function
  | Good -> Format.pp_print_string ppf "good"
  | Bad -> Format.pp_print_string ppf "bad"
  | Ugly -> Format.pp_print_string ppf "ugly"

let pp_event ppf = function
  | Proc_status (p, s) -> Format.fprintf ppf "%a_%a" pp s Proc.pp p
  | Link_status (p, q, s) ->
      Format.fprintf ppf "%a_{%a,%a}" pp s Proc.pp p Proc.pp q

module Link_map = Map.Make (struct
  type t = Proc.t * Proc.t

  let compare (a, b) (c, d) =
    match Proc.compare a c with 0 -> Proc.compare b d | x -> x
end)

type tracker = { procs : t Proc.Map.t; links : t Link_map.t }

let initial = { procs = Proc.Map.empty; links = Link_map.empty }

let apply tracker = function
  | Proc_status (p, s) -> { tracker with procs = Proc.Map.add p s tracker.procs }
  | Link_status (p, q, s) ->
      { tracker with links = Link_map.add (p, q) s tracker.links }

let proc_status tracker p =
  match Proc.Map.find_opt p tracker.procs with Some s -> s | None -> Good

let link_status tracker p q =
  match Link_map.find_opt (p, q) tracker.links with Some s -> s | None -> Good

let matrix_events ~procs ~proc_status ~link_status =
  let proc_events = List.map (fun p -> Proc_status (p, proc_status p)) procs in
  let link_events =
    List.concat_map
      (fun p ->
        List.filter_map
          (fun q ->
            if Proc.equal p q then None
            else Some (Link_status (p, q, link_status p q)))
          procs)
      procs
  in
  proc_events @ link_events

let partition_events ~parts =
  let all = List.concat parts in
  let part_of p = List.find (fun part -> List.mem p part) parts in
  matrix_events ~procs:all
    ~proc_status:(fun _ -> Good)
    ~link_status:(fun p q -> if List.mem q (part_of p) then Good else Bad)

let heal_events ~procs = partition_events ~parts:[ procs ]
