type violation = {
  value : Value.t;
  origin : Proc.t;
  missing_at : Proc.t;
  deadline : float;
  kind : string;
}

type report = {
  premise : (unit, string) result;
  stabilization_time : float;
  obligations : int;
  violations : violation list;
  max_latency : float;
}

let check_premise ~q ~procs trace l =
  let tracker = Timed.tracker_at l trace in
  let in_q p = List.mem p q in
  let bad_pair () =
    List.find_map
      (fun p ->
        List.find_map
          (fun p' ->
            if Proc.equal p p' then None
            else if
              in_q p && in_q p'
              && not (Fstatus.equal (Fstatus.link_status tracker p p') Good)
            then Some (Printf.sprintf "link (%d,%d) within Q not good" p p')
            else if
              in_q p && (not (in_q p'))
              && not (Fstatus.equal (Fstatus.link_status tracker p p') Bad)
            then Some (Printf.sprintf "link (%d,%d) leaving Q not bad" p p')
            else None)
          procs)
      procs
  in
  let bad_proc =
    List.find_map
      (fun p ->
        if in_q p && not (Fstatus.equal (Fstatus.proc_status tracker p) Good)
        then Some (Printf.sprintf "processor %d in Q not good" p)
        else None)
      procs
  in
  match bad_proc with
  | Some msg -> Error msg
  | None -> ( match bad_pair () with Some msg -> Error msg | None -> Ok ())

let check ~b ~d ~q ~horizon trace =
  let actions = Timed.actions trace in
  let procs =
    let mentioned =
      List.concat_map
        (fun (_, a) ->
          match a with
          | To_action.Bcast (p, _) -> [ p ]
          | To_action.Brcv { src; dst; _ } -> [ src; dst ]
          | To_action.To_order (_, p) -> [ p ])
        actions
    in
    Gcs_stdx.Seqx.dedup_sorted ~compare:Proc.compare (q @ mentioned)
  in
  let l = Timed.last_status_time_involving q trace in
  let premise = check_premise ~q ~procs trace l in
  (* Delivery times per (value, origin, destination). *)
  let deliveries = Hashtbl.create 256 in
  List.iter
    (fun (time, a) ->
      match a with
      | To_action.Brcv { src; dst; value } ->
          let key = (value, src, dst) in
          if not (Hashtbl.mem deliveries key) then
            Hashtbl.replace deliveries key time
      | _ -> ())
    actions;
  (* Obligations from clause (b): values sent from Q. *)
  let sends =
    List.filter_map
      (fun (time, a) ->
        match a with
        | To_action.Bcast (p, v) when List.mem p q -> Some (time, p, v)
        | _ -> None)
      actions
  in
  (* Distinct (value, origin) requirement for unambiguous matching. *)
  let dup =
    let seen = Hashtbl.create 64 in
    List.exists
      (fun (_, p, v) ->
        if Hashtbl.mem seen (p, v) then true
        else (
          Hashtbl.replace seen (p, v) ();
          false))
      sends
  in
  let premise =
    match premise with
    | Error _ as e -> e
    | Ok () ->
        if dup then Error "workload has duplicate (origin, value) pairs"
        else Ok ()
  in
  (* Obligations from clause (c): values delivered to some member of Q.
     The fold visits [deliveries] in hash order; sort so the obligation
     scan (and so any reported violations) is deterministic. *)
  let relayed =
    List.sort
      (fun (t1, p1, v1) (t2, p2, v2) ->
        match Float.compare t1 t2 with
        | 0 -> (
            match Proc.compare p1 p2 with
            | 0 -> Value.compare v1 v2
            | c -> c)
        | c -> c)
      (Hashtbl.fold
         (fun (value, src, dst) time acc ->
           if List.mem dst q then (time, src, value) :: acc else acc)
         deliveries [])
  in
  let obligations = ref 0 in
  let violations = ref [] in
  let max_latency = ref 0.0 in
  let enforce kind (t, origin, value) =
    let deadline = max t (l +. b) +. d in
    if deadline <= horizon then
      List.iter
        (fun member ->
          incr obligations;
          match Hashtbl.find_opt deliveries (value, origin, member) with
          | Some dt ->
              if dt > deadline then
                violations :=
                  { value; origin; missing_at = member; deadline; kind }
                  :: !violations
              else if kind = "sent" && t >= l +. b then
                max_latency := max !max_latency (dt -. t)
          | None ->
              violations :=
                { value; origin; missing_at = member; deadline; kind }
                :: !violations)
        q
  in
  List.iter (enforce "sent") sends;
  List.iter (enforce "relayed") relayed;
  {
    premise;
    stabilization_time = l;
    obligations = !obligations;
    violations = List.rev !violations;
    max_latency = !max_latency;
  }

let holds report =
  Result.is_ok report.premise && List.is_empty report.violations

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>premise: %s@ l=%.3f obligations=%d violations=%d max_latency=%.3f@]"
    (match r.premise with Ok () -> "holds" | Error e -> "vacuous: " ^ e)
    r.stabilization_time r.obligations
    (List.length r.violations)
    r.max_latency
