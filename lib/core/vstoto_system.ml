open Gcs_automata
module Pg_map = Vs_machine.Pg_map

type history = {
  established : Proc.Set.t View_id.Map.t;
  buildorder : Label.t list Pg_map.t;
}

type state = {
  vs : Msg.t Vs_machine.state;
  nodes : Vstoto.state Proc.Map.t;
  history : history;
}

type params = {
  procs : Proc.t list;
  p0 : Proc.t list;
  quorums : Quorum.t;
  literal_figure_10 : bool;
  weak_vs : bool;
  pipeline : bool;
}

let make_params ?(literal_figure_10 = false) ?(weak_vs = false)
    ?(pipeline = false) ~procs ~p0 ~quorums () =
  { procs; p0; quorums; literal_figure_10; weak_vs; pipeline }

let vs_params params =
  {
    Vs_machine.procs = params.procs;
    p0 = params.p0;
    equal_msg = Msg.equal;
    weak = params.weak_vs;
  }

let node_params params p =
  {
    Vstoto.me = p;
    p0 = params.p0;
    quorums = params.quorums;
    literal_figure_10 = params.literal_figure_10;
    pipeline = params.pipeline;
  }

let node state p = Proc.Map.find p state.nodes

let established state p g =
  match View_id.Map.find_opt g state.history.established with
  | Some set -> Proc.Set.mem p set
  | None -> false

let buildorder state p g =
  match Pg_map.find_opt (p, g) state.history.buildorder with
  | Some ord -> ord
  | None -> []

let initial params =
  {
    vs = Vs_machine.initial (vs_params params);
    nodes =
      List.fold_left
        (fun acc p ->
          Proc.Map.add p (Vstoto.initial (node_params params p)) acc)
        Proc.Map.empty params.procs;
    history =
      {
        established =
          View_id.Map.singleton View_id.g0 (Proc.set_of_list params.p0);
        buildorder = Pg_map.empty;
      };
  }

(* The (at most one) processor whose VStoTO automaton participates in an
   action. *)
let touched_node action =
  match action with
  | Sys_action.Bcast (p, _)
  | Sys_action.Label_act (p, _)
  | Sys_action.Confirm p ->
      Some p
  | Sys_action.Brcv { dst; _ } -> Some dst
  | Sys_action.Vs (Vs_action.Gpsnd { sender; _ }) -> Some sender
  | Sys_action.Vs (Vs_action.Gprcv { dst; _ })
  | Sys_action.Vs (Vs_action.Safe { dst; _ }) ->
      Some dst
  | Sys_action.Vs (Vs_action.Newview { proc; _ }) -> Some proc
  | Sys_action.Vs (Vs_action.Createview _)
  | Sys_action.Vs (Vs_action.Vs_order _) ->
      None

let update_history params pre_node post_node p history =
  ignore params;
  let history =
    (* established[p, current.id_p] ← true on completion of the state
       exchange (status collect → normal). *)
    match (pre_node.Vstoto.status, post_node.Vstoto.status) with
    | Vstoto.Collect, Vstoto.Normal ->
        let g =
          match post_node.Vstoto.current with
          | Some v -> v.View.id
          | None ->
              (* Collect → normal only happens on [establish], which
                 requires a current view; anything else is a
                 protocol-logic bug worth a named diagnostic. *)
              invalid_arg
                (Printf.sprintf
                   "Vstoto_system.update_history: invariant violation at \
                    proc %d: state exchange completed with no current view"
                   p)
        in
        let set =
          match View_id.Map.find_opt g history.established with
          | Some s -> s
          | None -> Proc.Set.empty
        in
        {
          history with
          established =
            View_id.Map.add g (Proc.Set.add p set) history.established;
        }
    | _ -> history
  in
  (* buildorder[p, current.id_p] ← order after every assignment to order. *)
  let order_changed =
    not
      (Gcs_stdx.Tape.equal Label.equal pre_node.Vstoto.order
         post_node.Vstoto.order)
  in
  let establishment =
    Vstoto.status_equal pre_node.Vstoto.status Vstoto.Collect
    && Vstoto.status_equal post_node.Vstoto.status Vstoto.Normal
  in
  match post_node.Vstoto.current with
  | Some v when order_changed || establishment ->
      {
        history with
        buildorder =
          Pg_map.add (p, v.View.id)
            (Gcs_stdx.Tape.to_list post_node.Vstoto.order)
            history.buildorder;
      }
  | _ -> history

let transition params =
  let vsp = vs_params params in
  let vs_machine = Vs_machine.automaton vsp in
  let node_automata =
    List.fold_left
      (fun acc p -> Proc.Map.add p (Vstoto.automaton (node_params params p)) acc)
      Proc.Map.empty params.procs
  in
  fun state action ->
    let vs_step state =
      match action with
      | Sys_action.Vs va -> (
          match vs_machine.Automaton.transition state.vs va with
          | Some vs' -> Some { state with vs = vs' }
          | None -> None)
      | _ -> Some state
    in
    let node_step state =
      match touched_node action with
      | None -> Some state
      | Some p -> (
          match Proc.Map.find_opt p node_automata with
          | None -> None
          | Some a -> (
              let pre_node = node state p in
              match a.Automaton.transition pre_node action with
              | Some post_node ->
                  Some
                    {
                      state with
                      nodes = Proc.Map.add p post_node state.nodes;
                      history =
                        update_history params pre_node post_node p
                          state.history;
                    }
              | None -> None))
    in
    (* Both participants must accept; for interface actions one side is the
       controller (its precondition gates the action) and the other is
       input-enabled. *)
    match vs_step state with
    | None -> None
    | Some state' -> node_step state'

let enabled params =
  let vsp = vs_params params in
  let vs_machine = Vs_machine.automaton vsp in
  let node_automata =
    List.map (fun p -> (p, Vstoto.automaton (node_params params p))) params.procs
  in
  fun state ->
    let vs_actions =
      List.map
        (fun a -> Sys_action.Vs a)
        (vs_machine.Automaton.enabled state.vs)
    in
    let node_actions =
      List.concat_map
        (fun (p, a) -> a.Automaton.enabled (node state p))
        node_automata
    in
    vs_actions @ node_actions

let automaton params =
  {
    Automaton.name = "VStoTO-system";
    initial = initial params;
    kind = Sys_action.system_kind ~procs:params.procs;
    enabled = enabled params;
    transition = transition params;
  }

let inject params ~values state prng =
  let bcast =
    match (Gcs_stdx.Prng.pick prng params.procs, Gcs_stdx.Prng.pick prng values) with
    | Some p, Some v -> [ Sys_action.Bcast (p, v) ]
    | _ -> []
  in
  let createviews =
    List.map
      (fun a -> Sys_action.Vs a)
      (Vs_machine.inject_createview (vs_params params) state.vs prng)
  in
  bcast @ createviews

(* ------------------------------------------------------------------ *)
(* Derived variables (Section 6).                                      *)

let allstate_entries params state =
  let case1 =
    List.filter_map
      (fun p ->
        let n = node state p in
        match n.Vstoto.current with
        | Some v -> Some (p, v.View.id, Vstoto.summary_of_state n)
        | None -> None)
      params.procs
  in
  let case2 =
    Pg_map.fold
      (fun (p, g) pending acc ->
        List.fold_left
          (fun acc msg ->
            match msg with
            | Msg.Summary x -> (p, g, x) :: acc
            | Msg.App _ | Msg.Batch _ -> acc)
          acc pending)
      state.vs.Vs_machine.pending []
  in
  let case3 =
    View_id.Map.fold
      (fun g entries acc ->
        List.fold_left
          (fun acc (msg, p) ->
            match msg with
            | Msg.Summary x -> (p, g, x) :: acc
            | Msg.App _ | Msg.Batch _ -> acc)
          acc entries)
      state.vs.Vs_machine.queue []
  in
  let case4 =
    List.concat_map
      (fun q ->
        let nq = node state q in
        match nq.Vstoto.current with
        | Some v ->
            Proc.Map.fold
              (fun p x acc -> (p, v.View.id, x) :: acc)
              nq.Vstoto.gotstate []
        | None -> [])
      params.procs
  in
  case1 @ case2 @ case3 @ case4

let allstate params state =
  List.map (fun (_, _, x) -> x) (allstate_entries params state)

let allcontent_pairs params state =
  List.concat_map
    (fun x -> Label.Map.bindings x.Summary.con)
    (allstate params state)

let allcontent params state =
  let rec go acc = function
    | [] -> Some acc
    | (l, v) :: rest -> (
        match Label.Map.find_opt l acc with
        | Some v' -> if Value.equal v v' then go acc rest else None
        | None -> go (Label.Map.add l v acc) rest)
  in
  go Label.Map.empty (allcontent_pairs params state)

let allconfirm params state =
  let confirms = List.map Summary.confirm (allstate params state) in
  Gcs_stdx.Seqx.lub ~equal:Label.equal confirms
