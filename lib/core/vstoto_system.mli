(** VStoTO-system (Section 6): the composition of VS-machine with one
    [VStoTO_p] automaton per processor, the VS interface actions hidden,
    augmented with the paper's history variables [established] and
    [buildorder] and with the derived variables of Section 6
    ([allstate], [allcontent], [allconfirm]). *)

module Pg_map = Vs_machine.Pg_map

type history = {
  established : Proc.Set.t View_id.Map.t;
      (** [established\[p,g\]] represented as the set of [p] per [g] *)
  buildorder : Label.t list Pg_map.t;
      (** last value of [order_p] assigned while in view [g] *)
}

type state = {
  vs : Msg.t Vs_machine.state;
  nodes : Vstoto.state Proc.Map.t;
  history : history;
}

type params = {
  procs : Proc.t list;
  p0 : Proc.t list;
  quorums : Quorum.t;
  literal_figure_10 : bool;
  weak_vs : bool;
      (** compose with WeakVS-machine instead of VS-machine (Section 4.1
          Remark: the two have the same finite traces, so the safety
          results are unaffected) *)
  pipeline : bool;
      (** run every node automaton with [Vstoto.params.pipeline] *)
}

val make_params :
  ?literal_figure_10:bool ->
  ?weak_vs:bool ->
  ?pipeline:bool ->
  procs:Proc.t list ->
  p0:Proc.t list ->
  quorums:Quorum.t ->
  unit ->
  params

val vs_params : params -> Msg.t Vs_machine.params
val node_params : params -> Proc.t -> Vstoto.params
val node : state -> Proc.t -> Vstoto.state
val established : state -> Proc.t -> View_id.t -> bool
val buildorder : state -> Proc.t -> View_id.t -> Label.t list

val automaton : params -> (state, Sys_action.t) Gcs_automata.Automaton.t

val inject :
  params ->
  values:Value.t list ->
  state ->
  Gcs_stdx.Prng.t ->
  Sys_action.t list
(** Candidate environment actions for schedulers: a random [bcast] (drawing
    from [values]) and a fresh random [createview]. *)

(** {2 Derived variables (Section 6)} *)

val allstate_entries : params -> state -> (Proc.t * View_id.t * Summary.t) list
(** All [(p, g, x)] with [x ∈ allstate\[p,g\]] (duplicate summaries are
    retained). *)

val allstate : params -> state -> Summary.t list
val allcontent_pairs : params -> state -> (Label.t * Value.t) list

val allcontent : params -> state -> Value.t Label.Map.t option
(** [None] when [allcontent] is not a function (Lemma 6.5 violated). *)

val allconfirm : params -> state -> Label.t list option
(** [lub] of the [confirm] prefixes; [None] when they are inconsistent
    (Corollary 6.24 violated). *)
