let abstract_params (params : Vstoto_system.params) =
  { To_machine.procs = params.procs; equal_value = Value.equal }

let allcontent_exn params state =
  match Vstoto_system.allcontent params state with
  | Some m -> m
  | None -> invalid_arg "to_simulation: allcontent is not a function"

let allconfirm_exn params state =
  match Vstoto_system.allconfirm params state with
  | Some s -> s
  | None -> invalid_arg "to_simulation: inconsistent confirm prefixes"

let f params state =
  let content = allcontent_exn params state in
  let confirmed = allconfirm_exn params state in
  let value_of l =
    match Label.Map.find_opt l content with
    | Some v -> v
    | None -> invalid_arg "to_simulation: confirmed label without content"
  in
  let queue = List.map (fun l -> (value_of l, l.Label.origin)) confirmed in
  let confirmed_set = Label.Set.of_list confirmed in
  let pending_for p =
    let unconfirmed =
      Label.Map.fold
        (fun l v acc ->
          if Proc.equal l.Label.origin p && not (Label.Set.mem l confirmed_set)
          then (l, v) :: acc
          else acc)
        content []
    in
    let sorted =
      List.sort (fun (l, _) (l', _) -> Label.compare l l') unconfirmed
    in
    List.map snd sorted
    @ Gcs_stdx.Tape.to_list (Vstoto_system.node state p).Vstoto.delay
  in
  let pending =
    List.fold_left
      (fun acc p -> Proc.Map.add p (pending_for p) acc)
      Proc.Map.empty params.procs
  in
  let next =
    List.fold_left
      (fun acc p ->
        Proc.Map.add p (Vstoto_system.node state p).Vstoto.nextreport acc)
      Proc.Map.empty params.procs
  in
  { To_machine.queue; pending; next }

let newly_confirmed params pre post =
  let before = allconfirm_exn params pre in
  let after = allconfirm_exn params post in
  if Gcs_stdx.Seqx.is_prefix ~equal:Label.equal before after then
    Gcs_stdx.Seqx.drop (List.length before) after
  else invalid_arg "to_simulation: allconfirm shrank"

let corresponds params pre action post =
  match action with
  | Sys_action.Bcast (p, a) -> [ To_action.Bcast (p, a) ]
  | Sys_action.Brcv { src; dst; value } ->
      [ To_action.Brcv { src; dst; value } ]
  | Sys_action.Label_act _ | Sys_action.Confirm _ | Sys_action.Vs _ ->
      let content = allcontent_exn params post in
      List.map
        (fun l ->
          match Label.Map.find_opt l content with
          | Some v -> To_action.To_order (v, l.Label.origin)
          | None ->
              invalid_arg "to_simulation: confirmed label without content")
        (newly_confirmed params pre post)

let check_execution params execution =
  let abstract = To_machine.automaton (abstract_params params) in
  let equal_abs = To_machine.equal_state (abstract_params params) in
  match
    Gcs_automata.Simulation.check_execution ~abstract ~f:(f params)
      ~corresponds:(corresponds params) ~equal_abs execution
  with
  | Ok () -> Ok ()
  | Error failure ->
      let action_str =
        match failure.Gcs_automata.Simulation.concrete_action with
        | Some a -> Format.asprintf "%a" Sys_action.pp a
        | None -> "(initial state)"
      in
      Error
        (Printf.sprintf "simulation fails at step %d on %s: %s"
           failure.Gcs_automata.Simulation.step_index action_str
           failure.Gcs_automata.Simulation.reason)
