open Gcs_automata

module Pg_ord = struct
  type t = Proc.t * View_id.t

  let compare (p, g) (q, h) =
    match Proc.compare p q with 0 -> View_id.compare g h | c -> c
end

module Pg_map = Map.Make (Pg_ord)

type 'm state = {
  created : Proc.Set.t View_id.Map.t;
  current_viewid : View_id.t option Proc.Map.t;
  pending : 'm list Pg_map.t;
  queue : ('m * Proc.t) list View_id.Map.t;
  next : int Pg_map.t;
  next_safe : int Pg_map.t;
}

type 'm params = {
  procs : Proc.t list;
  p0 : Proc.t list;
  equal_msg : 'm -> 'm -> bool;
  weak : bool;
}

let current_of state p =
  match Proc.Map.find_opt p state.current_viewid with
  | Some g -> g
  | None -> None

let pending_of state p g =
  match Pg_map.find_opt (p, g) state.pending with Some s -> s | None -> []

let queue_of state g =
  match View_id.Map.find_opt g state.queue with Some s -> s | None -> []

let next_of state p g =
  match Pg_map.find_opt (p, g) state.next with Some n -> n | None -> 1

let next_safe_of state p g =
  match Pg_map.find_opt (p, g) state.next_safe with Some n -> n | None -> 1

let created_viewids state =
  List.map fst (View_id.Map.bindings state.created)

let member_set state g = View_id.Map.find_opt g state.created

let initial params =
  let p0 = Proc.set_of_list params.p0 in
  {
    created = View_id.Map.singleton View_id.g0 p0;
    current_viewid =
      List.fold_left
        (fun acc p ->
          Proc.Map.add p
            (if Proc.Set.mem p p0 then Some View_id.g0 else None)
            acc)
        Proc.Map.empty params.procs;
    pending = Pg_map.empty;
    queue = View_id.Map.empty;
    next = Pg_map.empty;
    next_safe = Pg_map.empty;
  }

(* Precondition of createview: fresh id (weak) or greater than all (strict). *)
let createview_enabled params state (v : View.t) =
  if params.weak then not (View_id.Map.mem v.View.id state.created)
  else
    View_id.Map.for_all
      (fun g _ -> View_id.compare v.View.id g > 0)
      state.created

let transition params state action =
  match action with
  | Vs_action.Createview v ->
      if createview_enabled params state v then
        Some
          { state with created = View_id.Map.add v.View.id v.View.set state.created }
      else None
  | Vs_action.Newview { proc = p; view = v } -> (
      match member_set state v.View.id with
      | Some s
        when Proc.Set.equal s v.View.set
             && View_id.lt_opt (current_of state p) (Some v.View.id) ->
          Some
            {
              state with
              current_viewid =
                Proc.Map.add p (Some v.View.id) state.current_viewid;
            }
      | _ -> None)
  | Vs_action.Gpsnd { sender = p; msg = m } -> (
      (* Input: always enabled; a message sent with current view ⊥ is
         silently dropped. *)
      match current_of state p with
      | None -> Some state
      | Some g ->
          Some
            {
              state with
              pending = Pg_map.add (p, g) (pending_of state p g @ [ m ]) state.pending;
            })
  | Vs_action.Vs_order { msg = m; sender = p; viewid = g } -> (
      match pending_of state p g with
      | head :: rest when params.equal_msg head m ->
          Some
            {
              state with
              pending = Pg_map.add (p, g) rest state.pending;
              queue = View_id.Map.add g (queue_of state g @ [ (m, p) ]) state.queue;
            }
      | _ -> None)
  | Vs_action.Gprcv { src = p; dst = q; msg = m } -> (
      match current_of state q with
      | None -> None
      | Some g -> (
          match Gcs_stdx.Seqx.nth1 (queue_of state g) (next_of state q g) with
          | Some (m', p') when params.equal_msg m' m && Proc.equal p' p ->
              Some
                {
                  state with
                  next = Pg_map.add (q, g) (next_of state q g + 1) state.next;
                }
          | _ -> None))
  | Vs_action.Safe { src = p; dst = q; msg = m } -> (
      match current_of state q with
      | None -> None
      | Some g -> (
          match member_set state g with
          | None -> None
          | Some s -> (
              let idx = next_safe_of state q g in
              match Gcs_stdx.Seqx.nth1 (queue_of state g) idx with
              | Some (m', p')
                when params.equal_msg m' m && Proc.equal p' p
                     && Proc.Set.for_all (fun r -> next_of state r g > idx) s
                ->
                  Some
                    {
                      state with
                      next_safe = Pg_map.add (q, g) (idx + 1) state.next_safe;
                    }
              | _ -> None)))

let enabled params state =
  let newviews =
    View_id.Map.fold
      (fun g s acc ->
        Proc.Set.fold
          (fun p acc ->
            if View_id.lt_opt (current_of state p) (Some g) then
              Vs_action.Newview { proc = p; view = { View.id = g; set = s } }
              :: acc
            else acc)
          s acc)
      state.created []
  in
  let vs_orders =
    Pg_map.fold
      (fun (p, g) pending acc ->
        match pending with
        | m :: _ -> Vs_action.Vs_order { msg = m; sender = p; viewid = g } :: acc
        | [] -> acc)
      state.pending []
  in
  let gprcvs =
    List.filter_map
      (fun q ->
        match current_of state q with
        | None -> None
        | Some g -> (
            match Gcs_stdx.Seqx.nth1 (queue_of state g) (next_of state q g) with
            | Some (m, p) -> Some (Vs_action.Gprcv { src = p; dst = q; msg = m })
            | None -> None))
      params.procs
  in
  let safes =
    List.filter_map
      (fun q ->
        match current_of state q with
        | None -> None
        | Some g -> (
            match member_set state g with
            | None -> None
            | Some s -> (
                let idx = next_safe_of state q g in
                match Gcs_stdx.Seqx.nth1 (queue_of state g) idx with
                | Some (m, p)
                  when Proc.Set.for_all (fun r -> next_of state r g > idx) s ->
                    Some (Vs_action.Safe { src = p; dst = q; msg = m })
                | _ -> None)))
      params.procs
  in
  newviews @ vs_orders @ gprcvs @ safes

let automaton params =
  {
    Automaton.name = (if params.weak then "WeakVS-machine" else "VS-machine");
    initial = initial params;
    kind = Vs_action.kind ~procs:params.procs;
    enabled = enabled params;
    transition = transition params;
  }

(* Lemma 4.1, parts 1-14. Part 1 (unique membership per id) is structural
   in our representation (created is a map), so we check id uniqueness of
   the paper's set-of-pairs reading trivially and focus on the rest. *)
let invariants params =
  let for_all_procs f s = List.for_all (fun p -> f s p) params.procs in
  let created s g = View_id.Map.mem g s.created in
  [
    Invariant.make "L4.1(2): current-viewid[p] ∈ created-viewids" (fun s ->
        for_all_procs
          (fun s p ->
            match current_of s p with
            | None -> true
            | Some g -> created s g)
          s);
    Invariant.make "L4.1(3): p ∈ S for p's current view (g,S)" (fun s ->
        for_all_procs
          (fun s p ->
            match current_of s p with
            | None -> true
            | Some g -> (
                match member_set s g with
                | Some members -> Proc.Set.mem p members
                | None -> false))
          s);
    Invariant.make "L4.1(4): pending[p,g] ≠ λ ⇒ g ∈ created-viewids" (fun s ->
        Pg_map.for_all
          (fun (_, g) pending -> List.is_empty pending || created s g)
          s.pending);
    Invariant.make "L4.1(5): pending[p,g] ≠ λ ⇒ current-viewid[p] ≠ ⊥"
      (fun s ->
        Pg_map.for_all
          (fun (p, _) pending ->
            List.is_empty pending || Option.is_some (current_of s p))
          s.pending);
    Invariant.make "L4.1(6): pending[p,g] ≠ λ ⇒ g ≤ current-viewid[p]"
      (fun s ->
        Pg_map.for_all
          (fun (p, g) pending ->
            List.is_empty pending || View_id.le_opt (Some g) (current_of s p))
          s.pending);
    Invariant.make "L4.1(7): queue[g] ≠ λ ⇒ g ∈ created-viewids" (fun s ->
        View_id.Map.for_all (fun g q -> List.is_empty q || created s g) s.queue);
    Invariant.make "L4.1(8): (m,p) ∈ queue[g] ⇒ current-viewid[p] ≠ ⊥"
      (fun s ->
        View_id.Map.for_all
          (fun _ q ->
            List.for_all (fun (_, p) -> Option.is_some (current_of s p)) q)
          s.queue);
    Invariant.make "L4.1(9): (m,p) ∈ queue[g] ⇒ g ≤ current-viewid[p]"
      (fun s ->
        View_id.Map.for_all
          (fun g q ->
            List.for_all
              (fun (_, p) -> View_id.le_opt (Some g) (current_of s p))
              q)
          s.queue);
    Invariant.make "L4.1(10): next[p,g] ≤ |queue[g]| + 1" (fun s ->
        Pg_map.for_all
          (fun (_, g) n -> n <= List.length (queue_of s g) + 1)
          s.next);
    Invariant.make "L4.1(11): next-safe[p,g] ≤ |queue[g]| + 1" (fun s ->
        Pg_map.for_all
          (fun (_, g) n -> n <= List.length (queue_of s g) + 1)
          s.next_safe);
    Invariant.make "L4.1(12): next-safe[p,g] ≤ next[p,g]" (fun s ->
        Pg_map.for_all
          (fun (p, g) n -> n <= next_of s p g)
          s.next_safe);
    Invariant.make "L4.1(13): next[p,g] ≠ 1 ⇒ p ∈ S for (g,S) ∈ created"
      (fun s ->
        Pg_map.for_all
          (fun (p, g) n ->
            n = 1
            ||
            match member_set s g with
            | Some members -> Proc.Set.mem p members
            | None -> false)
          s.next);
    Invariant.make "L4.1(14): next-safe[p,g] ≠ 1 ⇒ p ∈ S for (g,S) ∈ created"
      (fun s ->
        Pg_map.for_all
          (fun (p, g) n ->
            n = 1
            ||
            match member_set s g with
            | Some members -> Proc.Set.mem p members
            | None -> false)
          s.next_safe);
    Invariant.make "L4.1(1): view identifiers uniquely determine membership"
      (fun s ->
        (* Structural with a map; additionally g0's membership is P0. *)
        match member_set s View_id.g0 with
        | Some members -> Proc.Set.equal members (Proc.set_of_list params.p0)
        | None -> false);
  ]

let inject_createview params state prng =
  let fresh_num =
    1
    + View_id.Map.fold (fun g _ acc -> max g.View_id.num acc) state.created 0
  in
  let origin = Gcs_stdx.Prng.pick_exn prng params.procs in
  let members =
    match Gcs_stdx.Prng.subset prng params.procs with
    | [] -> [ origin ]
    | ms -> ms
  in
  [
    Vs_action.Createview
      (View.make (View_id.make ~num:fresh_num ~origin) members);
  ]
