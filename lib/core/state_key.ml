let buf_add = Buffer.add_string

let view_id (g : View_id.t) = Printf.sprintf "%d.%d" g.View_id.num g.View_id.origin

let view_id_opt = function None -> "_" | Some g -> view_id g

let label (l : Label.t) =
  Printf.sprintf "%s:%d:%d" (view_id l.Label.id) l.Label.seqno l.Label.origin

let labels ls = String.concat "," (List.map label ls)

let proc_set s =
  String.concat "," (List.map string_of_int (Proc.Set.elements s))

let summary (x : Summary.t) =
  let con =
    String.concat ","
      (List.map
         (fun (l, v) -> label l ^ "=" ^ v)
         (Label.Map.bindings x.Summary.con))
  in
  Printf.sprintf "{%s|%s|%d|%s}" con (labels x.Summary.ord) x.Summary.next
    (view_id_opt x.Summary.high)

let msg = function
  | Msg.App (l, v) -> Printf.sprintf "a(%s=%s)" (label l) v
  | Msg.Batch entries ->
      Printf.sprintf "b(%s)"
        (String.concat ","
           (List.map (fun (l, v) -> label l ^ "=" ^ v) entries))
  | Msg.Summary x -> "s" ^ summary x

let vs_state ~msg (s : 'm Vs_machine.state) =
  let b = Buffer.create 256 in
  buf_add b "created:";
  View_id.Map.iter
    (fun g set -> buf_add b (view_id g ^ "=" ^ proc_set set ^ ";"))
    s.Vs_machine.created;
  buf_add b "cur:";
  Proc.Map.iter
    (fun p g -> buf_add b (Printf.sprintf "%d=%s;" p (view_id_opt g)))
    s.Vs_machine.current_viewid;
  buf_add b "pend:";
  Vs_machine.Pg_map.iter
    (fun (p, g) msgs ->
      buf_add b
        (Printf.sprintf "%d@%s=[%s];" p (view_id g)
           (String.concat "," (List.map msg msgs))))
    s.Vs_machine.pending;
  buf_add b "q:";
  View_id.Map.iter
    (fun g entries ->
      buf_add b
        (Printf.sprintf "%s=[%s];" (view_id g)
           (String.concat ","
              (List.map (fun (m, p) -> msg m ^ "@" ^ string_of_int p) entries))))
    s.Vs_machine.queue;
  buf_add b "nx:";
  Vs_machine.Pg_map.iter
    (fun (p, g) n -> buf_add b (Printf.sprintf "%d@%s=%d;" p (view_id g) n))
    s.Vs_machine.next;
  buf_add b "ns:";
  Vs_machine.Pg_map.iter
    (fun (p, g) n -> buf_add b (Printf.sprintf "%d@%s=%d;" p (view_id g) n))
    s.Vs_machine.next_safe;
  Buffer.contents b

let status = function
  | Vstoto.Normal -> "n"
  | Vstoto.Send -> "s"
  | Vstoto.Collect -> "c"

let node_state (s : Vstoto.state) =
  let b = Buffer.create 256 in
  buf_add b
    (Printf.sprintf "v=%s st=%s seq=%d nc=%d nr=%d hp=%s "
       (match s.Vstoto.current with
       | Some v -> view_id v.View.id ^ proc_set v.View.set
       | None -> "_")
       (status s.Vstoto.status) s.Vstoto.nextseqno s.Vstoto.nextconfirm
       s.Vstoto.nextreport
       (view_id_opt s.Vstoto.highprimary));
  buf_add b ("buf=[" ^ labels (Gcs_stdx.Tape.to_list s.Vstoto.buffer) ^ "] ");
  buf_add b ("ord=[" ^ labels (Gcs_stdx.Tape.to_list s.Vstoto.order) ^ "] ");
  buf_add b
    ("del=[" ^ String.concat "," (Gcs_stdx.Tape.to_list s.Vstoto.delay) ^ "] ");
  buf_add b
    ("held=["
    ^ String.concat ","
        (List.map
           (fun (l, v) -> label l ^ "=" ^ v)
           (Gcs_stdx.Tape.to_list s.Vstoto.held))
    ^ "] ");
  buf_add b
    ("heldsf=[" ^ labels (Gcs_stdx.Tape.to_list s.Vstoto.held_safe) ^ "] ");
  buf_add b "con:";
  Label.Map.iter
    (fun l v -> buf_add b (label l ^ "=" ^ v ^ ";"))
    s.Vstoto.content;
  buf_add b "got:";
  Proc.Map.iter
    (fun p x -> buf_add b (Printf.sprintf "%d=%s;" p (summary x)))
    s.Vstoto.gotstate;
  buf_add b ("sx=" ^ proc_set s.Vstoto.safe_exch ^ " ");
  buf_add b
    ("sl=[" ^ labels (Label.Set.elements s.Vstoto.safe_labels) ^ "]");
  Buffer.contents b

let system_state (s : Vstoto_system.state) =
  let b = Buffer.create 1024 in
  buf_add b (vs_state ~msg s.Vstoto_system.vs);
  buf_add b "||";
  Proc.Map.iter
    (fun p n -> buf_add b (Printf.sprintf "[%d:%s]" p (node_state n)))
    s.Vstoto_system.nodes;
  buf_add b "||est:";
  View_id.Map.iter
    (fun g set -> buf_add b (view_id g ^ "=" ^ proc_set set ^ ";"))
    s.Vstoto_system.history.Vstoto_system.established;
  buf_add b "bo:";
  Vstoto_system.Pg_map.iter
    (fun (p, g) ord ->
      buf_add b (Printf.sprintf "%d@%s=[%s];" p (view_id g) (labels ord)))
    s.Vstoto_system.history.Vstoto_system.buildorder;
  Buffer.contents b
