(** Messages exchanged by VStoTO processes through the VS service:
    labelled application values [(L × A)] — singly or coalesced into a
    batch sent as one VS message — or state-exchange [summaries].

    A [Batch] is semantically the sequence of its [(label, value)] pairs
    in order; batching exists so one VS send (and one wire frame, and one
    token entry) carries a whole queue of client values. Batches are
    formed from a processor's own buffer, so all labels of a batch carry
    the same view identifier — a batch never crosses a view boundary. *)

type t =
  | App of Label.t * Value.t
  | Batch of (Label.t * Value.t) list
  | Summary of Summary.t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val is_summary : t -> bool

val app_entries : t -> (Label.t * Value.t) list
(** The labelled values an application message carries: one for [App],
    all of them for [Batch], none for [Summary]. *)
