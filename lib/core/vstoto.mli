(** The VStoTO algorithm (Figures 9 and 10): one automaton per processor,
    implementing totally ordered broadcast on top of a view-synchronous
    group communication service.

    Known correction (documented in DESIGN.md): the [label] action carries
    the additional precondition [status = normal], matching the Section 5
    prose ("normal processing of new client messages is allowed to resume"
    only after the state exchange completes). With the literal Figure 10
    precondition, a value labelled between [newview] and the summary send
    enters the summary's [con] component; [fullorder] then orders it at
    view establishment, and its later VS delivery appends it to [order] a
    second time, which leads to double client delivery. Setting
    [literal_figure_10 = true] in {!type:params} reproduces the literal
    (buggy) behaviour; the test suite demonstrates the resulting violation
    of TO.

    Two throughput extensions, both conservative refinements of the
    figure (DESIGN.md "Throughput engineering"):

    {ul
    {- {b Batching}: when several labelled values are buffered, the
       processor [gpsnd]s them as a single {!Msg.Batch} — semantically
       the sequence of its [App]s, delivered and made safe element-wise
       in order. A batch is drawn from the buffer of one view, so it
       never crosses a view boundary.}
    {- {b Pipelining} ([params.pipeline]): labelling and application
       [gpsnd]/[gprcv] are also allowed during the [collect] phase of a
       state exchange. Sending is safe there because our summary is
       already fixed (the erratum needs a label created {e before} the
       summary send); receiving holds the message back — content is
       merged and the order extended only at [establish], so nothing
       leaks into any summary's [con] and nothing is ordered twice.}} *)

module Tape = Gcs_stdx.Tape

type status = Normal | Send | Collect

val status_equal : status -> status -> bool
(** Total, explicit equality — the polymorphic [=] is banned on
    constructed types in this layer (lint rule D3). *)

type state = {
  current : View.t option;
  status : status;
  content : Value.t Label.Map.t;
  nextseqno : int;
  buffer : Label.t Tape.t;
  order : Label.t Tape.t;
  nextconfirm : int;
  nextreport : int;
  highprimary : View_id.t option;
  delay : Value.t Tape.t;
  gotstate : Summary.t Proc.Map.t;
  safe_exch : Proc.Set.t;
  safe_labels : Label.Set.t;
  held : (Label.t * Value.t) Tape.t;
      (** pipeline: application messages received during a state
          exchange, applied at [establish] *)
  held_safe : Label.t Tape.t;
      (** pipeline: safe notifications received during a state exchange *)
}

type params = {
  me : Proc.t;
  p0 : Proc.t list;
  quorums : Quorum.t;
  literal_figure_10 : bool;
      (** allow [label] in any status, as the figure literally reads *)
  pipeline : bool;
      (** overlap the state exchange with labelling and delivery *)
}

val default_params :
  ?pipeline:bool -> me:Proc.t -> p0:Proc.t list -> quorums:Quorum.t -> unit ->
  params
(** [pipeline] defaults to [false]: the verified base algorithm. *)

val initial : params -> state

val primary : params -> state -> bool
(** The derived variable: [current ≠ ⊥ ∧ ∃Q ∈ Q: Q ⊆ current.set]. *)

val summary_of_state : state -> Summary.t
(** [⟨content, order, nextconfirm, highprimary⟩]. *)

val automaton : params -> (state, Sys_action.t) Gcs_automata.Automaton.t

val next_enabled : params -> state -> Sys_action.t option
(** The first enabled locally controlled action, in the same priority
    order as [automaton.enabled] ([label] before application [gpsnd]
    before summary [gpsnd] before [confirm] before [brcv]) — but computed
    lazily, so a drain loop that applies one action at a time does not
    rebuild the full batch or summary action at every intermediate
    state. *)

val equal_state : state -> state -> bool
val pp_state : Format.formatter -> state -> unit
