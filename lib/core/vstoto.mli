(** The VStoTO algorithm (Figures 9 and 10): one automaton per processor,
    implementing totally ordered broadcast on top of a view-synchronous
    group communication service.

    Known correction (documented in DESIGN.md): the [label] action carries
    the additional precondition [status = normal], matching the Section 5
    prose ("normal processing of new client messages is allowed to resume"
    only after the state exchange completes). With the literal Figure 10
    precondition, a value labelled between [newview] and the summary send
    enters the summary's [con] component; [fullorder] then orders it at
    view establishment, and its later VS delivery appends it to [order] a
    second time, which leads to double client delivery. Setting
    [literal_figure_10 = true] in {!type:params} reproduces the literal
    (buggy) behaviour; the test suite demonstrates the resulting violation
    of TO. *)

type status = Normal | Send | Collect

val status_equal : status -> status -> bool
(** Total, explicit equality — the polymorphic [=] is banned on
    constructed types in this layer (lint rule D3). *)

type state = {
  current : View.t option;
  status : status;
  content : Value.t Label.Map.t;
  nextseqno : int;
  buffer : Label.t list;
  order : Label.t list;
  nextconfirm : int;
  nextreport : int;
  highprimary : View_id.t option;
  delay : Value.t list;
  gotstate : Summary.t Proc.Map.t;
  safe_exch : Proc.Set.t;
  safe_labels : Label.Set.t;
}

type params = {
  me : Proc.t;
  p0 : Proc.t list;
  quorums : Quorum.t;
  literal_figure_10 : bool;
      (** allow [label] in any status, as the figure literally reads *)
}

val default_params : me:Proc.t -> p0:Proc.t list -> quorums:Quorum.t -> params

val initial : params -> state

val primary : params -> state -> bool
(** The derived variable: [current ≠ ⊥ ∧ ∃Q ∈ Q: Q ⊆ current.set]. *)

val summary_of_state : state -> Summary.t
(** [⟨content, order, nextconfirm, highprimary⟩]. *)

val automaton : params -> (state, Sys_action.t) Gcs_automata.Automaton.t

val equal_state : state -> state -> bool
val pp_state : Format.formatter -> state -> unit
