type t =
  | App of Label.t * Value.t
  | Batch of (Label.t * Value.t) list
  | Summary of Summary.t

let equal_entry (l, v) (l', v') = Label.equal l l' && Value.equal v v'

let compare_entry (l, v) (l', v') =
  match Label.compare l l' with 0 -> Value.compare v v' | c -> c

let equal a b =
  match (a, b) with
  | App (l, v), App (l', v') -> Label.equal l l' && Value.equal v v'
  | Batch xs, Batch ys -> List.equal equal_entry xs ys
  | Summary x, Summary y -> Summary.equal x y
  | (App _ | Batch _ | Summary _), _ -> false

let compare a b =
  match (a, b) with
  | App (l, v), App (l', v') -> (
      match Label.compare l l' with 0 -> Value.compare v v' | c -> c)
  | Batch xs, Batch ys -> List.compare compare_entry xs ys
  | Summary x, Summary y -> Summary.compare x y
  | App _, (Batch _ | Summary _) -> -1
  | Batch _, Summary _ -> -1
  | Batch _, App _ -> 1
  | Summary _, (App _ | Batch _) -> 1

let pp ppf = function
  | App (l, v) -> Format.fprintf ppf "app(%a=%a)" Label.pp l Value.pp v
  | Batch entries ->
      Format.fprintf ppf "batch(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
           (fun ppf (l, v) ->
             Format.fprintf ppf "%a=%a" Label.pp l Value.pp v))
        entries
  | Summary x -> Format.fprintf ppf "sum%a" Summary.pp x

let is_summary = function Summary _ -> true | App _ | Batch _ -> false

let app_entries = function
  | App (l, v) -> [ (l, v) ]
  | Batch entries -> entries
  | Summary _ -> []
