type t =
  | Explicit of Proc.Set.t list
  | Majorities of int
  | Weighted of int Proc.Map.t * int  (* weights, total *)

let pairwise_intersecting sets =
  let intersects a b = not (Proc.Set.is_empty (Proc.Set.inter a b)) in
  let rec go = function
    | [] -> true
    | s :: rest -> List.for_all (intersects s) rest && go rest
  in
  go sets

let of_sets sets =
  match sets with
  | [] -> Error "empty quorum system"
  | _ :: _ ->
      if not (pairwise_intersecting sets) then
        Error "quorum sets must pairwise intersect"
      else Ok (Explicit sets)

let majorities ~n =
  assert (n > 0);
  Majorities n

let weighted_majorities ~weights =
  let total = Proc.Map.fold (fun _ w acc -> w + acc) weights 0 in
  Weighted (weights, total)

let is_quorum t s =
  match t with
  | Explicit sets -> List.exists (fun q -> Proc.Set.subset q s) sets
  | Majorities n -> 2 * Proc.Set.cardinal s > n
  | Weighted (weights, total) ->
      let weight_of p =
        match Proc.Map.find_opt p weights with Some w -> w | None -> 0
      in
      let weight = Proc.Set.fold (fun p acc -> weight_of p + acc) s 0 in
      2 * weight > total

let contains_quorum = is_quorum
