open Gcs_automata
module Tape = Gcs_stdx.Tape

type status = Normal | Send | Collect

let status_equal a b =
  match (a, b) with
  | Normal, Normal | Send, Send | Collect, Collect -> true
  | (Normal | Send | Collect), _ -> false

type state = {
  current : View.t option;
  status : status;
  content : Value.t Label.Map.t;
  nextseqno : int;
  buffer : Label.t Tape.t;
  order : Label.t Tape.t;
  nextconfirm : int;
  nextreport : int;
  highprimary : View_id.t option;
  delay : Value.t Tape.t;
  gotstate : Summary.t Proc.Map.t;
  safe_exch : Proc.Set.t;
  safe_labels : Label.Set.t;
  held : (Label.t * Value.t) Tape.t;
  held_safe : Label.t Tape.t;
}

type params = {
  me : Proc.t;
  p0 : Proc.t list;
  quorums : Quorum.t;
  literal_figure_10 : bool;
  pipeline : bool;
}

let default_params ?(pipeline = false) ~me ~p0 ~quorums () =
  { me; p0; quorums; literal_figure_10 = false; pipeline }

let initial params =
  let in_p0 = List.mem params.me params.p0 in
  {
    current = (if in_p0 then Some (View.initial params.p0) else None);
    status = Normal;
    content = Label.Map.empty;
    nextseqno = 1;
    buffer = Tape.empty ();
    order = Tape.empty ();
    nextconfirm = 1;
    nextreport = 1;
    highprimary = (if in_p0 then Some View_id.g0 else None);
    delay = Tape.empty ();
    gotstate = Proc.Map.empty;
    safe_exch = Proc.Set.empty;
    safe_labels = Label.Set.empty;
    held = Tape.empty ();
    held_safe = Tape.empty ();
  }

let primary params state =
  match state.current with
  | None -> false
  | Some v -> Quorum.contains_quorum params.quorums v.View.set

let summary_of_state state =
  Summary.make ~con:state.content ~ord:(Tape.to_list state.order)
    ~next:state.nextconfirm ~high:state.highprimary

(* The corrected precondition of [label] (and, with [pipeline], of the
   application-message [gpsnd]): normal processing — plus, when
   pipelining, the collect phase, where our summary has already been sent
   so newly labelled values can no longer leak into it (the Figure 10
   erratum needs a label created BEFORE the summary send). *)
let may_process params state =
  params.literal_figure_10
  || status_equal state.status Normal
  || (params.pipeline && status_equal state.status Collect)

(* Completion of the state exchange: the processor "establishes" the view
   and resumes normal processing. With [pipeline], application messages
   received during the exchange were held back; their content joins
   [content] only now — never a summary's [con] — and their labels extend
   the recomputed order, in receipt order, which is the same VS total
   order at every member. *)
let establish params state =
  let nextconfirm = Summary.maxnextconfirm state.gotstate in
  let held = Tape.to_list state.held in
  let content =
    List.fold_left
      (fun c (l, a) -> Label.Map.add l a c)
      state.content held
  in
  let state = { state with content } in
  let state =
    if primary params state then
      let current =
        match state.current with
        | Some v -> v
        | None ->
            (* [primary] already demands a current view, so a [None] here
               is a protocol-logic bug; name the processor rather than
               dying with an anonymous [Option.get]. *)
            invalid_arg
              (Printf.sprintf
                 "Vstoto.establish: invariant violation at proc %d: \
                  completing the state exchange with no current view"
                 params.me)
      in
      let order =
        List.fold_left
          (fun t (l, _) -> Tape.snoc t l)
          (Tape.of_list (Summary.fullorder state.gotstate))
          held
      in
      {
        state with
        nextconfirm;
        order;
        safe_labels =
          Tape.fold_left
            (fun s l -> Label.Set.add l s)
            state.safe_labels state.held_safe;
        highprimary = Some current.View.id;
        status = Normal;
      }
    else
      {
        state with
        nextconfirm;
        order = Tape.of_list (Summary.shortorder state.gotstate);
        highprimary = Summary.maxprimary state.gotstate;
        status = Normal;
      }
  in
  { state with held = Tape.empty (); held_safe = Tape.empty () }

(* Receiving an application message: with [pipeline], deliveries during
   the state exchange are held until [establish]; otherwise the content
   joins immediately and a primary extends its order. *)
let receive_app params state entries =
  if params.pipeline && not (status_equal state.status Normal) then
    { state with held = Tape.append state.held entries }
  else
    let content =
      List.fold_left
        (fun c (l, a) -> Label.Map.add l a c)
        state.content entries
    in
    let state = { state with content } in
    if primary params state then
      {
        state with
        order = List.fold_left (fun t (l, _) -> Tape.snoc t l) state.order entries;
      }
    else state

let receive_safe_app params state entries =
  if params.pipeline && not (status_equal state.status Normal) then
    {
      state with
      held_safe = Tape.append state.held_safe (List.map fst entries);
    }
  else if primary params state then
    {
      state with
      safe_labels =
        List.fold_left
          (fun s (l, _) -> Label.Set.add l s)
          state.safe_labels entries;
    }
  else state

(* A batch [gpsnd] carries the whole buffer: every label in order, each
   bound to its content. *)
let batch_matches_buffer state entries =
  let rec go i = function
    | [] -> i = Tape.length state.buffer
    | (l, a) :: rest ->
        i < Tape.length state.buffer
        && Label.equal (Tape.get state.buffer i) l
        && (match Label.Map.find_opt l state.content with
           | Some v -> Value.equal v a
           | None -> false)
        && go (i + 1) rest
  in
  go 0 entries

let transition params state action =
  match action with
  | Sys_action.Bcast (p, a) ->
      assert (Proc.equal p params.me);
      Some { state with delay = Tape.snoc state.delay a }
  | Sys_action.Label_act (p, a) -> (
      if not (Proc.equal p params.me) then None
      else
        match (Tape.first state.delay, state.current) with
        | Some head, Some v when Value.equal head a && may_process params state
          ->
            let l =
              Label.make ~id:v.View.id ~seqno:state.nextseqno ~origin:p
            in
            Some
              {
                state with
                content = Label.Map.add l a state.content;
                buffer = Tape.snoc state.buffer l;
                nextseqno = state.nextseqno + 1;
                delay = Tape.rest state.delay;
              }
        | _ -> None)
  | Sys_action.Vs (Vs_action.Gpsnd { sender; msg }) -> (
      if not (Proc.equal sender params.me) then None
      else
        match msg with
        | Msg.App (l, a) -> (
            match Tape.first state.buffer with
            | Some head
              when (not (status_equal state.status Send))
                   && (params.pipeline || status_equal state.status Normal)
                   && Label.equal head l
                   && (match Label.Map.find_opt l state.content with
                      | Some v -> Value.equal v a
                      | None -> false) ->
                Some { state with buffer = Tape.rest state.buffer }
            | _ -> None)
        | Msg.Batch entries ->
            if
              (not (status_equal state.status Send))
              && (params.pipeline || status_equal state.status Normal)
              && (not (List.is_empty entries))
              && batch_matches_buffer state entries
            then Some { state with buffer = Tape.empty () }
            else None
        | Msg.Summary x ->
            if
              status_equal state.status Send
              && Summary.equal x (summary_of_state state)
            then Some { state with status = Collect }
            else None)
  | Sys_action.Vs (Vs_action.Gprcv { dst; msg; src }) -> (
      if not (Proc.equal dst params.me) then None
      else
        match msg with
        | Msg.App (l, a) -> Some (receive_app params state [ (l, a) ])
        | Msg.Batch entries -> Some (receive_app params state entries)
        | Msg.Summary x ->
            let state =
              {
                state with
                content =
                  Label.Map.union
                    (fun _ v _ -> Some v)
                    state.content x.Summary.con;
                gotstate = Proc.Map.add src x state.gotstate;
              }
            in
            let complete =
              match state.current with
              | Some v ->
                  Proc.Set.equal
                    (Proc.Map.fold
                       (fun q _ acc -> Proc.Set.add q acc)
                       state.gotstate Proc.Set.empty)
                    v.View.set
              | None -> false
            in
            if complete && status_equal state.status Collect then
              Some (establish params state)
            else Some state)
  | Sys_action.Vs (Vs_action.Safe { dst; msg; src }) -> (
      if not (Proc.equal dst params.me) then None
      else
        match msg with
        | Msg.App (l, a) -> Some (receive_safe_app params state [ (l, a) ])
        | Msg.Batch entries -> Some (receive_safe_app params state entries)
        | Msg.Summary _ ->
            let safe_exch = Proc.Set.add src state.safe_exch in
            let state = { state with safe_exch } in
            let all_safe =
              match state.current with
              | Some v -> Proc.Set.equal safe_exch v.View.set
              | None -> false
            in
            if all_safe && primary params state then begin
              assert (not (Proc.Map.is_empty state.gotstate));
              Some
                {
                  state with
                  safe_labels =
                    List.fold_left
                      (fun acc l -> Label.Set.add l acc)
                      state.safe_labels
                      (Summary.fullorder state.gotstate);
                }
            end
            else Some state)
  | Sys_action.Confirm p -> (
      if not (Proc.equal p params.me) then None
      else
        match Tape.nth1 state.order state.nextconfirm with
        | Some l when primary params state && Label.Set.mem l state.safe_labels
          ->
            Some { state with nextconfirm = state.nextconfirm + 1 }
        | _ -> None)
  | Sys_action.Brcv { src; dst; value } -> (
      if not (Proc.equal dst params.me) then None
      else if state.nextreport >= state.nextconfirm then None
      else
        match Tape.nth1 state.order state.nextreport with
        | Some l
          when (match Label.Map.find_opt l state.content with
               | Some v -> Value.equal v value
               | None -> false)
               && Proc.equal l.Label.origin src ->
            Some { state with nextreport = state.nextreport + 1 }
        | _ -> None)
  | Sys_action.Vs (Vs_action.Newview { proc; view }) ->
      if not (Proc.equal proc params.me) then None
      else
        Some
          {
            state with
            current = Some view;
            nextseqno = 1;
            buffer = Tape.empty ();
            gotstate = Proc.Map.empty;
            safe_exch = Proc.Set.empty;
            safe_labels = Label.Set.empty;
            held = Tape.empty ();
            held_safe = Tape.empty ();
            status = Send;
          }
  | Sys_action.Vs (Vs_action.Createview _)
  | Sys_action.Vs (Vs_action.Vs_order _) ->
      None

(* The sections of [enabled], in drain priority order. Each is also
   exposed through [next_enabled], which computes only the first
   non-empty section — the implementation's drain loop applies one action
   at a time, and building the (possibly large) batch or summary action
   for every intermediate state would be quadratic. *)

let enabled_label params state =
  match (Tape.first state.delay, state.current) with
  | Some a, Some _ when may_process params state ->
      [ Sys_action.Label_act (params.me, a) ]
  | _ -> []

let enabled_gpsnd_app params state =
  let can_send =
    (not (status_equal state.status Send))
    && (params.pipeline || status_equal state.status Normal)
  in
  if not can_send then []
  else
    match Tape.length state.buffer with
    | 0 -> []
    | 1 -> (
        let l = Tape.get state.buffer 0 in
        match Label.Map.find_opt l state.content with
        | Some a ->
            [
              Sys_action.Vs
                (Vs_action.Gpsnd { sender = params.me; msg = Msg.App (l, a) });
            ]
        | None -> [])
    | _ ->
        let entries =
          List.rev
            (Tape.fold_left
               (fun acc l ->
                 match Label.Map.find_opt l state.content with
                 | Some a -> (l, a) :: acc
                 | None -> acc)
               [] state.buffer)
        in
        if List.length entries = Tape.length state.buffer then
          [
            Sys_action.Vs
              (Vs_action.Gpsnd { sender = params.me; msg = Msg.Batch entries });
          ]
        else []

let enabled_gpsnd_summary params state =
  if status_equal state.status Send then
    [
      Sys_action.Vs
        (Vs_action.Gpsnd
           { sender = params.me; msg = Msg.Summary (summary_of_state state) });
    ]
  else []

let enabled_confirm params state =
  match Tape.nth1 state.order state.nextconfirm with
  | Some l when primary params state && Label.Set.mem l state.safe_labels ->
      [ Sys_action.Confirm params.me ]
  | _ -> []

let enabled_brcv params state =
  if state.nextreport < state.nextconfirm then
    match Tape.nth1 state.order state.nextreport with
    | Some l -> (
        match Label.Map.find_opt l state.content with
        | Some a ->
            [
              Sys_action.Brcv
                { src = l.Label.origin; dst = params.me; value = a };
            ]
        | None -> [])
    | None -> []
  else []

let enabled params state =
  enabled_label params state
  @ enabled_gpsnd_app params state
  @ enabled_gpsnd_summary params state
  @ enabled_confirm params state
  @ enabled_brcv params state

let next_enabled params state =
  let sections =
    [
      enabled_label;
      enabled_gpsnd_app;
      enabled_gpsnd_summary;
      enabled_confirm;
      enabled_brcv;
    ]
  in
  List.find_map
    (fun section ->
      match section params state with a :: _ -> Some a | [] -> None)
    sections

let automaton params =
  {
    Automaton.name = Printf.sprintf "VStoTO_%d" params.me;
    initial = initial params;
    kind = Sys_action.vstoto_kind ~me:params.me;
    enabled = enabled params;
    transition = transition params;
  }

let equal_state a b =
  (match (a.current, b.current) with
  | None, None -> true
  | Some v, Some w -> View.equal v w
  | _ -> false)
  && status_equal a.status b.status
  && Label.Map.equal Value.equal a.content b.content
  && a.nextseqno = b.nextseqno
  && Tape.equal Label.equal a.buffer b.buffer
  && Tape.equal Label.equal a.order b.order
  && a.nextconfirm = b.nextconfirm
  && a.nextreport = b.nextreport
  && View_id.compare_opt a.highprimary b.highprimary = 0
  && Tape.equal Value.equal a.delay b.delay
  && Proc.Map.equal Summary.equal a.gotstate b.gotstate
  && Proc.Set.equal a.safe_exch b.safe_exch
  && Label.Set.equal a.safe_labels b.safe_labels
  && Tape.equal
       (fun (l, v) (l', v') -> Label.equal l l' && Value.equal v v')
       a.held b.held
  && Tape.equal Label.equal a.held_safe b.held_safe

let pp_status ppf = function
  | Normal -> Format.pp_print_string ppf "normal"
  | Send -> Format.pp_print_string ppf "send"
  | Collect -> Format.pp_print_string ppf "collect"

let pp_state ppf s =
  Format.fprintf ppf
    "@[<v>current=%a status=%a nextconfirm=%d nextreport=%d order=[%a]@]"
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "_|_")
       View.pp)
    s.current pp_status s.status s.nextconfirm s.nextreport
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Label.pp)
    (Tape.to_list s.order)
