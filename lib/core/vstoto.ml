open Gcs_automata

type status = Normal | Send | Collect

let status_equal a b =
  match (a, b) with
  | Normal, Normal | Send, Send | Collect, Collect -> true
  | (Normal | Send | Collect), _ -> false

type state = {
  current : View.t option;
  status : status;
  content : Value.t Label.Map.t;
  nextseqno : int;
  buffer : Label.t list;
  order : Label.t list;
  nextconfirm : int;
  nextreport : int;
  highprimary : View_id.t option;
  delay : Value.t list;
  gotstate : Summary.t Proc.Map.t;
  safe_exch : Proc.Set.t;
  safe_labels : Label.Set.t;
}

type params = {
  me : Proc.t;
  p0 : Proc.t list;
  quorums : Quorum.t;
  literal_figure_10 : bool;
}

let default_params ~me ~p0 ~quorums =
  { me; p0; quorums; literal_figure_10 = false }

let initial params =
  let in_p0 = List.mem params.me params.p0 in
  {
    current = (if in_p0 then Some (View.initial params.p0) else None);
    status = Normal;
    content = Label.Map.empty;
    nextseqno = 1;
    buffer = [];
    order = [];
    nextconfirm = 1;
    nextreport = 1;
    highprimary = (if in_p0 then Some View_id.g0 else None);
    delay = [];
    gotstate = Proc.Map.empty;
    safe_exch = Proc.Set.empty;
    safe_labels = Label.Set.empty;
  }

let primary params state =
  match state.current with
  | None -> false
  | Some v -> Quorum.contains_quorum params.quorums v.View.set

let summary_of_state state =
  Summary.make ~con:state.content ~ord:state.order ~next:state.nextconfirm
    ~high:state.highprimary

(* Completion of the state exchange: the processor "establishes" the view
   and resumes normal processing. *)
let establish params state =
  let nextconfirm = Summary.maxnextconfirm state.gotstate in
  let state =
    if primary params state then
      let current =
        match state.current with
        | Some v -> v
        | None ->
            (* [primary] already demands a current view, so a [None] here
               is a protocol-logic bug; name the processor rather than
               dying with an anonymous [Option.get]. *)
            invalid_arg
              (Printf.sprintf
                 "Vstoto.establish: invariant violation at proc %d: \
                  completing the state exchange with no current view"
                 params.me)
      in
      {
        state with
        nextconfirm;
        order = Summary.fullorder state.gotstate;
        highprimary = Some current.View.id;
        status = Normal;
      }
    else
      {
        state with
        nextconfirm;
        order = Summary.shortorder state.gotstate;
        highprimary = Summary.maxprimary state.gotstate;
        status = Normal;
      }
  in
  state

let transition params state action =
  match action with
  | Sys_action.Bcast (p, a) ->
      assert (Proc.equal p params.me);
      Some { state with delay = state.delay @ [ a ] }
  | Sys_action.Label_act (p, a) -> (
      if not (Proc.equal p params.me) then None
      else
        match (state.delay, state.current) with
        | head :: rest, Some v
          when Value.equal head a
               && (params.literal_figure_10 || status_equal state.status Normal)
          ->
            let l =
              Label.make ~id:v.View.id ~seqno:state.nextseqno ~origin:p
            in
            Some
              {
                state with
                content = Label.Map.add l a state.content;
                buffer = state.buffer @ [ l ];
                nextseqno = state.nextseqno + 1;
                delay = rest;
              }
        | _ -> None)
  | Sys_action.Vs (Vs_action.Gpsnd { sender; msg }) -> (
      if not (Proc.equal sender params.me) then None
      else
        match msg with
        | Msg.App (l, a) -> (
            match state.buffer with
            | head :: rest
              when status_equal state.status Normal
                   && Label.equal head l
                   && (match Label.Map.find_opt l state.content with
                      | Some v -> Value.equal v a
                      | None -> false) ->
                Some { state with buffer = rest }
            | _ -> None)
        | Msg.Summary x ->
            if
              status_equal state.status Send
              && Summary.equal x (summary_of_state state)
            then Some { state with status = Collect }
            else None)
  | Sys_action.Vs (Vs_action.Gprcv { dst; msg; src }) -> (
      if not (Proc.equal dst params.me) then None
      else
        match msg with
        | Msg.App (l, a) ->
            let state =
              { state with content = Label.Map.add l a state.content }
            in
            if primary params state then
              Some { state with order = state.order @ [ l ] }
            else Some state
        | Msg.Summary x ->
            let state =
              {
                state with
                content =
                  Label.Map.union
                    (fun _ v _ -> Some v)
                    state.content x.Summary.con;
                gotstate = Proc.Map.add src x state.gotstate;
              }
            in
            let complete =
              match state.current with
              | Some v ->
                  Proc.Set.equal
                    (Proc.Map.fold
                       (fun q _ acc -> Proc.Set.add q acc)
                       state.gotstate Proc.Set.empty)
                    v.View.set
              | None -> false
            in
            if complete && status_equal state.status Collect then
              Some (establish params state)
            else Some state)
  | Sys_action.Vs (Vs_action.Safe { dst; msg; src }) -> (
      if not (Proc.equal dst params.me) then None
      else
        match msg with
        | Msg.App (l, _) ->
            if primary params state then
              Some
                { state with safe_labels = Label.Set.add l state.safe_labels }
            else Some state
        | Msg.Summary _ ->
            let safe_exch = Proc.Set.add src state.safe_exch in
            let state = { state with safe_exch } in
            let all_safe =
              match state.current with
              | Some v -> Proc.Set.equal safe_exch v.View.set
              | None -> false
            in
            if all_safe && primary params state then begin
              assert (not (Proc.Map.is_empty state.gotstate));
              Some
                {
                  state with
                  safe_labels =
                    List.fold_left
                      (fun acc l -> Label.Set.add l acc)
                      state.safe_labels
                      (Summary.fullorder state.gotstate);
                }
            end
            else Some state)
  | Sys_action.Confirm p -> (
      if not (Proc.equal p params.me) then None
      else
        match Gcs_stdx.Seqx.nth1 state.order state.nextconfirm with
        | Some l when primary params state && Label.Set.mem l state.safe_labels
          ->
            Some { state with nextconfirm = state.nextconfirm + 1 }
        | _ -> None)
  | Sys_action.Brcv { src; dst; value } -> (
      if not (Proc.equal dst params.me) then None
      else if state.nextreport >= state.nextconfirm then None
      else
        match Gcs_stdx.Seqx.nth1 state.order state.nextreport with
        | Some l
          when (match Label.Map.find_opt l state.content with
               | Some v -> Value.equal v value
               | None -> false)
               && Proc.equal l.Label.origin src ->
            Some { state with nextreport = state.nextreport + 1 }
        | _ -> None)
  | Sys_action.Vs (Vs_action.Newview { proc; view }) ->
      if not (Proc.equal proc params.me) then None
      else
        Some
          {
            state with
            current = Some view;
            nextseqno = 1;
            buffer = [];
            gotstate = Proc.Map.empty;
            safe_exch = Proc.Set.empty;
            safe_labels = Label.Set.empty;
            status = Send;
          }
  | Sys_action.Vs (Vs_action.Createview _)
  | Sys_action.Vs (Vs_action.Vs_order _) ->
      None

let enabled params state =
  let me = params.me in
  let labels =
    match (state.delay, state.current) with
    | a :: _, Some _
      when params.literal_figure_10 || status_equal state.status Normal ->
        [ Sys_action.Label_act (me, a) ]
    | _ -> []
  in
  let gpsnd_app =
    match state.buffer with
    | l :: _ when status_equal state.status Normal -> (
        match Label.Map.find_opt l state.content with
        | Some a ->
            [
              Sys_action.Vs
                (Vs_action.Gpsnd { sender = me; msg = Msg.App (l, a) });
            ]
        | None -> [])
    | _ -> []
  in
  let gpsnd_summary =
    if status_equal state.status Send then
      [
        Sys_action.Vs
          (Vs_action.Gpsnd
             { sender = me; msg = Msg.Summary (summary_of_state state) });
      ]
    else []
  in
  let confirms =
    match Gcs_stdx.Seqx.nth1 state.order state.nextconfirm with
    | Some l when primary params state && Label.Set.mem l state.safe_labels ->
        [ Sys_action.Confirm me ]
    | _ -> []
  in
  let brcvs =
    if state.nextreport < state.nextconfirm then
      match Gcs_stdx.Seqx.nth1 state.order state.nextreport with
      | Some l -> (
          match Label.Map.find_opt l state.content with
          | Some a ->
              [
                Sys_action.Brcv
                  { src = l.Label.origin; dst = me; value = a };
              ]
          | None -> [])
      | None -> []
    else []
  in
  labels @ gpsnd_app @ gpsnd_summary @ confirms @ brcvs

let automaton params =
  {
    Automaton.name = Printf.sprintf "VStoTO_%d" params.me;
    initial = initial params;
    kind = Sys_action.vstoto_kind ~me:params.me;
    enabled = enabled params;
    transition = transition params;
  }

let equal_state a b =
  (match (a.current, b.current) with
  | None, None -> true
  | Some v, Some w -> View.equal v w
  | _ -> false)
  && status_equal a.status b.status
  && Label.Map.equal Value.equal a.content b.content
  && a.nextseqno = b.nextseqno
  && List.equal Label.equal a.buffer b.buffer
  && List.equal Label.equal a.order b.order
  && a.nextconfirm = b.nextconfirm
  && a.nextreport = b.nextreport
  && View_id.compare_opt a.highprimary b.highprimary = 0
  && List.equal Value.equal a.delay b.delay
  && Proc.Map.equal Summary.equal a.gotstate b.gotstate
  && Proc.Set.equal a.safe_exch b.safe_exch
  && Label.Set.equal a.safe_labels b.safe_labels

let pp_status ppf = function
  | Normal -> Format.pp_print_string ppf "normal"
  | Send -> Format.pp_print_string ppf "send"
  | Collect -> Format.pp_print_string ppf "collect"

let pp_state ppf s =
  Format.fprintf ppf
    "@[<v>current=%a status=%a nextconfirm=%d nextreport=%d order=[%a]@]"
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "_|_")
       View.pp)
    s.current pp_status s.status s.nextconfirm s.nextreport
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Label.pp)
    s.order
