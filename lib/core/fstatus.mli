(** Failure statuses and failure-status events (Figure 4).

    A {e good} processor takes enabled steps immediately; a {e bad} one is
    stopped; an {e ugly} one runs at nondeterministic speed. A good channel
    delivers within a fixed time δ; a bad channel delivers nothing; an ugly
    channel may or may not deliver, with no timing bound. *)

type t = Good | Bad | Ugly

type event =
  | Proc_status of Proc.t * t  (** [good_p] / [bad_p] / [ugly_p] *)
  | Link_status of Proc.t * Proc.t * t
      (** [good_{p,q}] / [bad_{p,q}] / [ugly_{p,q}] — directed (p → q) *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val pp_event : Format.formatter -> event -> unit

(** Mutable-free tracking of the statuses implied by a sequence of events:
    the status of a location or pair is determined by the last event for it
    (default [Good], as in Section 3.2). *)

type tracker

val initial : tracker
val apply : tracker -> event -> tracker
val proc_status : tracker -> Proc.t -> t
val link_status : tracker -> Proc.t -> Proc.t -> t

val matrix_events :
  procs:Proc.t list ->
  proc_status:(Proc.t -> t) ->
  link_status:(Proc.t -> Proc.t -> t) ->
  event list
(** The complete status assignment over [procs]: one event per processor
    and one per directed link. Scenario compilers emit the full matrix at
    every step so the implied world never depends on earlier events. *)

val partition_events : parts:Proc.t list list -> event list
(** Events establishing a clean partition: links within a part good, links
    across parts bad (both directions), all processors good. *)

val heal_events : procs:Proc.t list -> event list
(** Events making every processor and every link good. *)
