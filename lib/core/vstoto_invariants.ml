open Gcs_automata
module Pg_map = Vs_machine.Pg_map

type ctx = {
  params : Vstoto_system.params;
  state : Vstoto_system.state;
  entries : (Proc.t * View_id.t * Summary.t) list;
      (* (p, g, x) with x ∈ allstate[p,g] *)
}

let ctx_of params state =
  { params; state; entries = Vstoto_system.allstate_entries params state }

let node c p = Vstoto_system.node c.state p
let vs c = c.state.Vstoto_system.vs
let procs c = c.params.Vstoto_system.procs

let current_id c p = (* current.id_p as G⊥ *)
  match (node c p).Vstoto.current with
  | Some v -> Some v.View.id
  | None -> None

let current_set c p =
  match (node c p).Vstoto.current with
  | Some v -> Some v.View.set
  | None -> None

let is_primary c p =
  Vstoto.primary (Vstoto_system.node_params c.params p) (node c p)

let created_views c =
  View_id.Map.bindings (vs c).Vs_machine.created

(* All view identifiers mentioned anywhere, for bounded quantification. *)
let all_viewids c =
  let ids = List.map fst (created_views c) in
  let ids =
    Pg_map.fold (fun (_, g) _ acc -> g :: acc) (vs c).Vs_machine.pending ids
  in
  let ids =
    View_id.Map.fold (fun g _ acc -> g :: acc) (vs c).Vs_machine.queue ids
  in
  Gcs_stdx.Seqx.dedup_sorted ~compare:View_id.compare ids

let allstate c = List.map (fun (_, _, x) -> x) c.entries
let allstate_pg c p g =
  List.filter_map
    (fun (p', g', x) ->
      if Proc.equal p p' && View_id.equal g g' then Some x else None)
    c.entries

let established c p g = Vstoto_system.established c.state p g
let buildorder c p g = Vstoto_system.buildorder c.state p g

let summary_is_own_state c p x =
  Summary.equal x (Vstoto.summary_of_state (node c p))

let label_prefix = Gcs_stdx.Seqx.is_prefix ~equal:Label.equal

let ok = Ok ()
let fail fmt = Format.kasprintf (fun s -> Error s) fmt

let check_all f xs =
  let rec go = function
    | [] -> ok
    | x :: rest -> ( match f x with Ok () -> go rest | e -> e)
  in
  go xs

(* ------------------------------------------------------------------ *)

let l6_1 c =
  check_all
    (fun p ->
      let vs_cur = Vs_machine.current_of (vs c) p in
      let node_cur = (node c p).Vstoto.current in
      match (node_cur, vs_cur) with
      | None, None -> ok
      | Some v, Some g ->
          if not (View_id.equal v.View.id g) then
            fail "p=%d: current.id_p ≠ current-viewid[p]" p
          else (
            match Vs_machine.member_set (vs c) v.View.id with
            | Some s when Proc.Set.equal s v.View.set -> ok
            | _ -> fail "p=%d: current_p not in created" p)
      | _ -> fail "p=%d: ⊥-ness of current_p and current-viewid[p] differ" p)
    (procs c)

let l6_2 c =
  check_all
    (fun p ->
      if
        Option.is_none (node c p).Vstoto.current
        && not (Vstoto.status_equal (node c p).Vstoto.status Vstoto.Normal)
      then fail "p=%d: current = ⊥ but status ≠ normal" p
      else ok)
    (procs c)

let l6_3 c =
  let check_label where p g_expected (l : Label.t) =
    if not (Proc.equal l.Label.origin p) then
      fail "%s: label origin %d ≠ sender %d" where l.Label.origin p
    else
      match g_expected with
      | Some g when View_id.equal l.Label.id g -> ok
      | _ -> fail "%s: label view %a ≠ expected" where View_id.pp l.Label.id
  in
  let buffers =
    check_all
      (fun p ->
        check_all
          (fun l ->
            if Option.is_none (node c p).Vstoto.current then
              fail "p=%d: nonempty buffer with current = ⊥" p
            else check_label "buffer" p (current_id c p) l)
          (Gcs_stdx.Tape.to_list (node c p).Vstoto.buffer))
      (procs c)
  in
  match buffers with
  | Error _ as e -> e
  | Ok () -> (
      let pendings =
        Pg_map.fold
          (fun (p, g) msgs acc ->
            match acc with
            | Error _ -> acc
            | Ok () ->
                check_all
                  (fun m ->
                    match m with
                    | Msg.App _ | Msg.Batch _ ->
                        check_all
                          (fun (l, _) -> check_label "pending" p (Some g) l)
                          (Msg.app_entries m)
                    | Msg.Summary _ -> ok)
                  msgs)
          (vs c).Vs_machine.pending ok
      in
      match pendings with
      | Error _ as e -> e
      | Ok () ->
          View_id.Map.fold
            (fun g entries acc ->
              match acc with
              | Error _ -> acc
              | Ok () ->
                  check_all
                    (fun (m, p) ->
                      match m with
                      | Msg.App _ | Msg.Batch _ ->
                          check_all
                            (fun (l, _) -> check_label "queue" p (Some g) l)
                            (Msg.app_entries m)
                      | Msg.Summary _ -> ok)
                    entries)
            (vs c).Vs_machine.queue ok)

let l6_4 c =
  let pairs = Vstoto_system.allcontent_pairs c.params c.state in
  check_all
    (fun (l, _) ->
      let p = l.Label.origin in
      match current_id c p with
      | None -> fail "label %a exists but origin has current = ⊥" Label.pp l
      | Some g ->
          let bound =
            Label.make ~id:g ~seqno:(node c p).Vstoto.nextseqno ~origin:p
          in
          if Label.compare l bound < 0 then ok
          else
            fail "label %a ≥ (current.id,nextseqno,p) = %a" Label.pp l
              Label.pp bound)
    pairs

let l6_5 c =
  match Vstoto_system.allcontent c.params c.state with
  | Some _ -> ok
  | None -> fail "allcontent is not a function"

let l6_6 c =
  check_all
    (fun p ->
      check_all
        (fun l ->
          if Label.Map.mem l (node c p).Vstoto.content then ok
          else fail "p=%d: buffered label %a not in content" p Label.pp l)
        (Gcs_stdx.Tape.to_list (node c p).Vstoto.buffer))
    (procs c)

let l6_7 c =
  (* For p and g with current_p = ⊥ or current.id_p < g. *)
  let applies p g = View_id.lt_opt (current_id c p) (Some g) in
  let gs = all_viewids c in
  check_all
    (fun p ->
      check_all
        (fun g ->
          if not (applies p g) then ok
          else if not (List.is_empty (Vs_machine.pending_of (vs c) p g)) then
            fail "6.7(1): pending[%d,%a] ≠ λ" p View_id.pp g
          else if
            List.exists
              (fun (_, p') -> Proc.equal p p')
              (Vs_machine.queue_of (vs c) g)
          then fail "6.7(2): message from %d in queue[%a]" p View_id.pp g
          else
            let bad_gotstate =
              List.exists
                (fun q ->
                  match current_id c q with
                  | Some gq when View_id.equal gq g ->
                      Proc.Map.mem p (node c q).Vstoto.gotstate
                  | _ -> false)
                (procs c)
            in
            if bad_gotstate then
              fail "6.7(3): gotstate entry for %d in view %a" p View_id.pp g
            else if not (List.is_empty (allstate_pg c p g)) then
              fail "6.7(4): allstate[%d,%a] ≠ ∅" p View_id.pp g
            else
              let has_label_pair con =
                Label.Map.exists
                  (fun l _ ->
                    View_id.equal l.Label.id g && Proc.equal l.Label.origin p)
                  con
              in
              if List.exists (fun x -> has_label_pair x.Summary.con) (allstate c)
              then fail "6.7(5): ⟨⟨%a,*,%d⟩,*⟩ in some summary" View_id.pp g p
              else if
                List.exists
                  (fun q -> has_label_pair (node c q).Vstoto.content)
                  (procs c)
              then fail "6.7(6): ⟨⟨%a,*,%d⟩,*⟩ in some content" View_id.pp g p
              else ok)
        gs)
    (procs c)

let l6_8 c =
  check_all
    (fun p ->
      match ((node c p).Vstoto.status, current_id c p) with
      | Vstoto.Send, Some g ->
          if not (List.is_empty (Vs_machine.pending_of (vs c) p g)) then
            fail "6.8(1): pending[%d,%a] ≠ λ while send" p View_id.pp g
          else if
            List.exists
              (fun (_, p') -> Proc.equal p p')
              (Vs_machine.queue_of (vs c) g)
          then fail "6.8(2): message from %d in queue[%a] while send" p View_id.pp g
          else
            let bad_gotstate =
              List.exists
                (fun q ->
                  match current_id c q with
                  | Some gq when View_id.equal gq g ->
                      Proc.Map.mem p (node c q).Vstoto.gotstate
                  | _ -> false)
                (procs c)
            in
            if bad_gotstate then
              fail "6.8(3): gotstate entry for %d while send" p
            else
              let has_label_pair con =
                Label.Map.exists
                  (fun l _ ->
                    View_id.equal l.Label.id g && Proc.equal l.Label.origin p)
                  con
              in
              let bad_summary =
                List.exists
                  (fun x ->
                    (not (summary_is_own_state c p x))
                    && has_label_pair x.Summary.con)
                  (allstate c)
              in
              if bad_summary then
                fail "6.8(4): ⟨⟨%a,*,%d⟩,*⟩ in a foreign summary while send"
                  View_id.pp g p
              else
                let bad_content =
                  List.exists
                    (fun q ->
                      (not (Proc.equal q p))
                      && has_label_pair (node c q).Vstoto.content)
                    (procs c)
                in
                if bad_content then
                  fail "6.8(5): ⟨⟨%a,*,%d⟩,*⟩ in content of another node"
                    View_id.pp g p
                else ok
      | _ -> ok)
    (procs c)

let l6_9 c =
  check_all
    (fun p ->
      match ((node c p).Vstoto.status, current_id c p) with
      | Vstoto.Collect, Some g ->
          let n = node c p in
          check_all
            (fun x ->
              if
                not
                  (Label.Map.for_all
                     (fun l v ->
                       match Label.Map.find_opt l n.Vstoto.content with
                       | Some w -> Value.equal w v
                       | None -> false)
                     x.Summary.con)
              then fail "6.9(1): x.con ⊄ content_%d" p
              else if
                not
                  (List.equal Label.equal x.Summary.ord
                     (Gcs_stdx.Tape.to_list n.Vstoto.order))
              then fail "6.9(2): x.ord ≠ order_%d" p
              else if x.Summary.next <> n.Vstoto.nextconfirm then
                fail "6.9(3): x.next ≠ nextconfirm_%d" p
              else if
                View_id.compare_opt x.Summary.high n.Vstoto.highprimary <> 0
              then fail "6.9(4): x.high ≠ highprimary_%d" p
              else ok)
            (allstate_pg c p g)
      | _ -> ok)
    (procs c)

let l6_10 c =
  check_all
    (fun p ->
      let part1 =
        check_all
          (fun (g, _) ->
            if established c p g && not (View_id.le_opt (Some g) (current_id c p))
            then fail "6.10(1): established[%d,%a] but current.id < g" p View_id.pp g
            else ok)
          (created_views c)
      in
      match part1 with
      | Error _ as e -> e
      | Ok () -> (
          match current_id c p with
          | None -> ok
          | Some g ->
              let lhs = established c p g in
              let rhs =
                Vstoto.status_equal (node c p).Vstoto.status Vstoto.Normal
              in
              if lhs = rhs then ok
              else
                fail
                  "6.10(2): established[%d,current]=%b but status-normal=%b" p
                  lhs rhs))
    (procs c)

let l6_11 c =
  let part123 =
    check_all
      (fun p ->
        match current_id c p with
        | None -> ok
        | Some g ->
            let hp = (node c p).Vstoto.highprimary in
            if established c p g then
              if is_primary c p then
                if View_id.compare_opt hp (Some g) = 0 then ok
                else fail "6.11(1): p=%d highprimary ≠ current.id" p
              else if View_id.lt_opt hp (Some g) then ok
              else fail "6.11(2): p=%d highprimary ≥ current.id (non-primary)" p
            else if View_id.lt_opt hp (Some g) then ok
            else fail "6.11(3): p=%d highprimary ≥ current.id (unestablished)" p)
      (procs c)
  in
  match part123 with
  | Error _ as e -> e
  | Ok () -> (
      let part4 =
        check_all
          (fun p ->
            Proc.Map.fold
              (fun _q x acc ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                    if View_id.lt_opt x.Summary.high (current_id c p) then ok
                    else fail "6.11(4): gotstate summary high ≥ current at %d" p)
              (node c p).Vstoto.gotstate ok)
          (procs c)
      in
      match part4 with
      | Error _ as e -> e
      | Ok () ->
          let check_msg g m =
            match m with
            | Msg.Summary x ->
                if View_id.lt_opt x.Summary.high (Some g) then ok
                else fail "6.11(5/6): summary with high ≥ %a in transit" View_id.pp g
            | Msg.App _ | Msg.Batch _ -> ok
          in
          let in_queue =
            View_id.Map.fold
              (fun g entries acc ->
                match acc with
                | Error _ -> acc
                | Ok () -> check_all (fun (m, _) -> check_msg g m) entries)
              (vs c).Vs_machine.queue ok
          in
          (match in_queue with
          | Error _ as e -> e
          | Ok () ->
              Pg_map.fold
                (fun (_, g) msgs acc ->
                  match acc with
                  | Error _ -> acc
                  | Ok () -> check_all (check_msg g) msgs)
                (vs c).Vs_machine.pending ok))

let l6_12 c =
  check_all
    (fun (p, g, x) ->
      if not (View_id.le_opt x.Summary.high (Some g)) then
        fail "6.12(1): x.high > g for x ∈ allstate[%d,%a]" p View_id.pp g
      else if not (View_id.le_opt x.Summary.high (current_id c p)) then
        fail "6.12(2): x.high > current.id_%d" p
      else ok)
    c.entries

let quorum_views c =
  List.filter
    (fun (_, s) -> Quorum.contains_quorum c.params.Vstoto_system.quorums s)
    (created_views c)

let l6_13 c =
  check_all
    (fun (g, _) ->
      check_all
        (fun p ->
          if
            established c p g
            && View_id.lt_opt (Some g) (current_id c p)
            && not (View_id.le_opt (Some g) (node c p).Vstoto.highprimary)
          then fail "6.13: highprimary_%d < established primary %a" p View_id.pp g
          else ok)
        (procs c))
    (quorum_views c)

let l6_14 c =
  check_all
    (fun (g, _) ->
      check_all
        (fun (p, w, x) ->
          if
            established c p g
            && View_id.compare w g > 0
            && not (View_id.le_opt (Some g) x.Summary.high)
          then
            fail "6.14: x ∈ allstate[%d,%a] with x.high < established %a" p
              View_id.pp w View_id.pp g
          else ok)
        c.entries)
    (quorum_views c)

let l6_15 c =
  check_all
    (fun p ->
      match current_id c p with
      | Some g when not (established c p g) ->
          check_all
            (fun x ->
              if View_id.compare_opt x.Summary.high (Some g) = 0 then
                fail "6.15: x.high = %a before establishment at %d" View_id.pp g p
              else ok)
            (allstate_pg c p g)
      | _ -> ok)
    (procs c)

let l6_16 c =
  check_all
    (fun (p, g, x) ->
      match x.Summary.high with
      | None ->
          if List.is_empty x.Summary.ord && x.Summary.next = 1 then ok
          else fail "6.16(⊥): high = ⊥ but ord ≠ λ or next ≠ 1 (at %d)" p
      | Some h -> (
          match Vs_machine.member_set (vs c) h with
          | None -> fail "6.16: x.high = %a not created" View_id.pp h
          | Some members ->
              let witness q =
                Proc.Set.mem q members
                && established c q h
                && List.equal Label.equal x.Summary.ord (buildorder c q h)
                && (View_id.equal h g
                   || View_id.lt_opt (Some h) (current_id c q))
              in
              if List.exists witness (procs c) then ok
              else
                fail "6.16: no witness for summary with high=%a in allstate[%d,%a]"
                  View_id.pp h p View_id.pp g))
    c.entries

let l6_17 c =
  check_all
    (fun (g, members) ->
      check_all
        (fun p ->
          if established c p g then
            check_all
              (fun q ->
                if View_id.le_opt (Some g) (current_id c q) then ok
                else
                  fail "6.17: member %d behind established view %a" q
                    View_id.pp g)
              (Proc.Set.elements members)
          else ok)
        (procs c))
    (created_views c)

let cor6_19 c =
  check_all
    (fun (g, members) ->
      let member_list = Proc.Set.elements members in
      if not (List.for_all (fun p -> established c p g) member_list) then ok
      else
        let sigma =
          match List.map (fun p -> buildorder c p g) member_list with
          | [] -> []
          | first :: rest ->
              List.fold_left
                (Gcs_stdx.Seqx.longest_common_prefix ~equal:Label.equal)
                first rest
        in
        check_all
          (fun x ->
            if View_id.le_opt (Some g) x.Summary.high then
              if label_prefix sigma x.Summary.ord then ok
              else
                fail "6.19: common prefix of primary %a not in x.ord" View_id.pp
                  g
            else ok)
          (allstate c))
    (quorum_views c)

let l6_20 c =
  check_all
    (fun p ->
      let n = node c p in
      if Label.Set.is_empty n.Vstoto.safe_labels then ok
      else if not (is_primary c p) then
        fail "6.20: nonempty safe-labels at non-primary %d" p
      else
        let ord = Gcs_stdx.Tape.to_list n.Vstoto.order in
        check_all
          (fun l ->
            match Gcs_stdx.Seqx.index_of ~equal:Label.equal l ord with
            | None ->
                (* A safe label not (yet) in order: possible only for
                   labels adopted via the safe-summary path; they are in
                   order by construction. Flag it. *)
                fail "6.20: safe label %a not in order_%d" Label.pp l p
            | Some i -> (
                let sigma = Gcs_stdx.Seqx.take i ord in
                (* [is_primary c p] above guarantees a current view; a
                   missing one is a checker-infrastructure bug, reported
                   with the processor in hand instead of crashing in
                   [Option.get]. *)
                match (n.Vstoto.current, current_set c p) with
                | None, _ ->
                    fail
                      "6.20: checker invariant violation: primary %d has \
                       no current view"
                      p
                | _, None ->
                    fail
                      "6.20: checker invariant violation: no member set \
                       for primary %d"
                      p
                | Some current, Some members ->
                    let g = current.View.id in
                    check_all
                      (fun q ->
                        if label_prefix sigma (buildorder c q g) then ok
                        else
                          fail
                            "6.20: prefix to safe %a not in \
                             buildorder[%d,%a]"
                            Label.pp l q View_id.pp g)
                      (Proc.Set.elements members)))
          (Label.Set.elements n.Vstoto.safe_labels))
    (procs c)

let l6_21 c =
  match Vstoto_system.allcontent c.params c.state with
  | None -> fail "allcontent not a function"
  | Some content ->
      check_all
        (fun x ->
          let ord = Array.of_list x.Summary.ord in
          let seen_position = Hashtbl.create 16 in
          Array.iteri (fun i l -> Hashtbl.replace seen_position l i) ord;
          let check_at i' l' =
            (* every smaller same-origin label in allcontent appears
               earlier in x.ord *)
            Label.Map.fold
              (fun l _ acc ->
                match acc with
                | Error _ -> acc
                | Ok () ->
                    if
                      Proc.equal l.Label.origin l'.Label.origin
                      && Label.compare l l' < 0
                    then
                      match Hashtbl.find_opt seen_position l with
                      | Some i when i < i' -> ok
                      | _ ->
                          fail "6.21: %a ordered without earlier %a" Label.pp
                            l' Label.pp l
                    else ok)
              content ok
          in
          let rec go i =
            if i >= Array.length ord then ok
            else
              match check_at i ord.(i) with
              | Ok () -> go (i + 1)
              | e -> e
          in
          go 0)
        (allstate c)

let l6_22 c =
  check_all
    (fun x ->
      let confirm = Summary.confirm x in
      let part2 =
        if x.Summary.next <= List.length x.Summary.ord + 1 then ok
        else fail "6.22(2): x.next > |x.ord| + 1"
      in
      match part2 with
      | Error _ as e -> e
      | Ok () ->
          if List.is_empty confirm then ok
          else
            let witness (g, members) =
              View_id.le_opt (Some g) x.Summary.high
              && Quorum.contains_quorum c.params.Vstoto_system.quorums members
              && Proc.Set.for_all
                   (fun q ->
                     established c q g
                     && label_prefix confirm (buildorder c q g))
                   members
            in
            if List.exists witness (created_views c) then ok
            else fail "6.22(1): no established quorum view covers x.confirm")
    (allstate c)

let cor6_23 c =
  check_all
    (fun x1 ->
      check_all
        (fun x2 ->
          if View_id.le_opt x1.Summary.high x2.Summary.high then
            if label_prefix (Summary.confirm x1) x2.Summary.ord then ok
            else fail "6.23: x1.confirm not a prefix of x2.ord"
          else ok)
        (allstate c))
    (allstate c)

let cor6_24 c =
  match Vstoto_system.allconfirm c.params c.state with
  | Some _ -> ok
  | None -> fail "6.24: confirm prefixes inconsistent"

(* ------------------------------------------------------------------ *)

let all params =
  let with_ctx f state = f (ctx_of params state) in
  [
    Invariant.make_explained "L6.1: node/VS current view agreement" (with_ctx l6_1);
    Invariant.make_explained "L6.2: current=⊥ ⇒ status=normal" (with_ctx l6_2);
    Invariant.make_explained "L6.3: labels carry sender and view" (with_ctx l6_3);
    Invariant.make_explained "L6.4: labels below (current,nextseqno,p)" (with_ctx l6_4);
    Invariant.make_explained "L6.5: allcontent is a function" (with_ctx l6_5);
    Invariant.make_explained "L6.6: buffered labels have content" (with_ctx l6_6);
    Invariant.make_explained "L6.7: no traces ahead of current view" (with_ctx l6_7);
    Invariant.make_explained "L6.8: send status ⇒ nothing sent yet" (with_ctx l6_8);
    Invariant.make_explained "L6.9: collect status summary agreement" (with_ctx l6_9);
    Invariant.make_explained "L6.10: established vs status" (with_ctx l6_10);
    Invariant.make_explained "L6.11: highprimary upper bounds" (with_ctx l6_11);
    Invariant.make_explained "L6.12: x.high ≤ g and ≤ current" (with_ctx l6_12);
    Invariant.make_explained "L6.13: highprimary lower bound (local)" (with_ctx l6_13);
    Invariant.make_explained "L6.14: highprimary lower bound (allstate)" (with_ctx l6_14);
    Invariant.make_explained "L6.15: no self-high before establishment" (with_ctx l6_15);
    Invariant.make_explained "L6.16: summaries have establishment witnesses" (with_ctx l6_16);
    Invariant.make_explained "L6.17: members reach established views" (with_ctx l6_17);
    Invariant.make_explained "C6.19: established primary prefixes persist" (with_ctx cor6_19);
    Invariant.make_explained "L6.20: safe labels shared by members" (with_ctx l6_20);
    Invariant.make_explained "L6.21: ord closed under sent-before" (with_ctx l6_21);
    Invariant.make_explained "L6.22: confirm covered by quorum view" (with_ctx l6_22);
    Invariant.make_explained "C6.23: confirm ≼ higher ord" (with_ctx cor6_23);
    Invariant.make_explained "C6.24: confirm prefixes consistent" (with_ctx cor6_24);
  ]

let names params = List.map (fun i -> i.Invariant.name) (all params)
