type t = {
  con : Value.t Label.Map.t;
  ord : Label.t list;
  next : int;
  high : View_id.t option;
}

let make ~con ~ord ~next ~high = { con; ord; next; high }

let equal a b =
  Label.Map.equal Value.equal a.con b.con
  && List.equal Label.equal a.ord b.ord
  && Int.equal a.next b.next
  && View_id.compare_opt a.high b.high = 0

let compare a b =
  let c = Label.Map.compare Value.compare a.con b.con in
  if c <> 0 then c
  else
    let c = List.compare Label.compare a.ord b.ord in
    if c <> 0 then c
    else
      let c = Int.compare a.next b.next in
      if c <> 0 then c else View_id.compare_opt a.high b.high

let pp ppf x =
  Format.fprintf ppf "@[<h>{con:%d labels; ord:[%a]; next:%d; high:%a}@]"
    (Label.Map.cardinal x.con)
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Label.pp)
    x.ord x.next
    (Format.pp_print_option
       ~none:(fun ppf () -> Format.pp_print_string ppf "_|_")
       View_id.pp)
    x.high

let confirm x = Gcs_stdx.Seqx.take (min (x.next - 1) (List.length x.ord)) x.ord

let knowncontent y =
  Proc.Map.fold
    (fun _ x acc ->
      Label.Map.union (fun _ first _second -> Some first) acc x.con)
    y Label.Map.empty

let maxprimary y =
  Proc.Map.fold
    (fun _ x acc -> if View_id.lt_opt acc x.high then x.high else acc)
    y None

let reps y =
  let top = maxprimary y in
  Proc.Map.fold
    (fun q x acc -> if View_id.compare_opt x.high top = 0 then q :: acc else acc)
    y []

let chosenrep y =
  match reps y with
  | [] -> invalid_arg "Summary.chosenrep: empty gotstate"
  | q :: qs -> List.fold_left max q qs

let shortorder y = (Proc.Map.find (chosenrep y) y).ord

let fullorder y =
  let short = shortorder y in
  let in_short = Label.Set.of_list short in
  let remaining =
    Label.Map.fold
      (fun l _ acc -> if Label.Set.mem l in_short then acc else l :: acc)
      (knowncontent y) []
  in
  short @ List.sort Label.compare remaining

let maxnextconfirm y = Proc.Map.fold (fun _ x acc -> max x.next acc) y 1
