module Pg_map = Vs_machine.Pg_map

(* Incremental representation (see To_trace_checker): per-view forced
   orders are int-indexed persistent queues (O(log k) snoc/probe), the
   per-(sender, view) unordered buffers are persistent FIFOs. Each
   delivery step is O(log k) except [Safe], which additionally scans the
   view's members (O(|view|), as in the paper's definition). *)

type 'm t = {
  params : 'm Vs_machine.params;
  current : View_id.t option Proc.Map.t;
  view_sets : Proc.Set.t View_id.Map.t;
  unordered : ('m * int) Gcs_stdx.Fq.t Pg_map.t;
      (* sent messages (with gpsnd event index) not yet forced into queue *)
  queue : ('m * Proc.t * int) Gcs_stdx.Ixq.t View_id.Map.t;
      (* forced per-view order; entries carry the causing gpsnd index *)
  next : int Pg_map.t;
  next_safe : int Pg_map.t;
  events_seen : int;
  cause_rev : (int * int) list;
}

type error = { index : int; reason : string }

let create params =
  let p0 = Proc.set_of_list params.Vs_machine.p0 in
  {
    params;
    current =
      List.fold_left
        (fun acc p ->
          Proc.Map.add p
            (if Proc.Set.mem p p0 then Some View_id.g0 else None)
            acc)
        Proc.Map.empty params.Vs_machine.procs;
    view_sets = View_id.Map.singleton View_id.g0 p0;
    unordered = Pg_map.empty;
    queue = View_id.Map.empty;
    next = Pg_map.empty;
    next_safe = Pg_map.empty;
    events_seen = 0;
    cause_rev = [];
  }

let current_view t p =
  match Proc.Map.find_opt p t.current with Some g -> g | None -> None

let view_members t g = View_id.Map.find_opt g t.view_sets

let unordered_of t p g =
  match Pg_map.find_opt (p, g) t.unordered with
  | Some s -> s
  | None -> Gcs_stdx.Fq.empty

let raw_queue_of t g =
  match View_id.Map.find_opt g t.queue with
  | Some s -> s
  | None -> Gcs_stdx.Ixq.empty

let queue_of t g =
  List.map (fun (m, p, _) -> (m, p)) (Gcs_stdx.Ixq.to_list (raw_queue_of t g))

let next_of t p g =
  match Pg_map.find_opt (p, g) t.next with Some n -> n | None -> 1

let next_safe_of t p g =
  match Pg_map.find_opt (p, g) t.next_safe with Some n -> n | None -> 1

let received_count t p g = next_of t p g - 1
let cause t = List.rev t.cause_rev

let equal_msg t = t.params.Vs_machine.equal_msg

(* Force queue[g] index i to be (m, src), extending from src's oldest
   unordered message when needed; returns the updated state and the gpsnd
   index of the entry. *)
let force_queue_entry t g i ~src ~msg =
  let q = raw_queue_of t g in
  match Gcs_stdx.Ixq.nth1 q i with
  | Some (m, p, gpsnd_idx) ->
      if equal_msg t m msg && Proc.equal p src then Ok (t, gpsnd_idx)
      else Error "delivery disagrees with the forced per-view order"
  | None -> (
      if i <> Gcs_stdx.Ixq.length q + 1 then
        Error "delivery index beyond the forced per-view order"
      else
        match Gcs_stdx.Fq.pop (unordered_of t src g) with
        | Some ((m, gpsnd_idx), rest) when equal_msg t m msg ->
            let t =
              {
                t with
                unordered = Pg_map.add (src, g) rest t.unordered;
                queue =
                  View_id.Map.add g
                    (Gcs_stdx.Ixq.snoc q (msg, src, gpsnd_idx))
                    t.queue;
              }
            in
            Ok (t, gpsnd_idx)
        | Some (_, _) -> Error "delivery out of per-sender send order"
        | None -> Error "delivery with no corresponding gpsnd in this view")

let step t action =
  let idx = t.events_seen in
  let bump t = { t with events_seen = idx + 1 } in
  match action with
  | Vs_action.Createview _ | Vs_action.Vs_order _ ->
      Error "internal event in external trace"
  | Vs_action.Gpsnd { sender = p; msg = m } -> (
      match current_view t p with
      | None -> Ok (bump t) (* sent before any view: silently dropped *)
      | Some g ->
          Ok
            (bump
               {
                 t with
                 unordered =
                   Pg_map.add (p, g)
                     (Gcs_stdx.Fq.push (unordered_of t p g) (m, idx))
                     t.unordered;
               }))
  | Vs_action.Newview { proc = p; view = v } -> (
      if not (View.mem p v) then Error "newview at a non-member"
      else if not (View_id.lt_opt (current_view t p) (Some v.View.id)) then
        Error "newview violates per-processor view-id monotonicity"
      else
        match view_members t v.View.id with
        | Some s when not (Proc.Set.equal s v.View.set) ->
            Error "two views with the same identifier and different sets"
        | _ ->
            Ok
              (bump
                 {
                   t with
                   current = Proc.Map.add p (Some v.View.id) t.current;
                   view_sets = View_id.Map.add v.View.id v.View.set t.view_sets;
                 }))
  | Vs_action.Gprcv { src; dst; msg } -> (
      match current_view t dst with
      | None -> Error "gprcv at a processor with no view"
      | Some g -> (
          let i = next_of t dst g in
          match force_queue_entry t g i ~src ~msg with
          | Error e -> Error e
          | Ok (t, gpsnd_idx) ->
              Ok
                (bump
                   {
                     t with
                     next = Pg_map.add (dst, g) (i + 1) t.next;
                     cause_rev = (idx, gpsnd_idx) :: t.cause_rev;
                   })))
  | Vs_action.Safe { src; dst; msg } -> (
      match current_view t dst with
      | None -> Error "safe at a processor with no view"
      | Some g -> (
          match view_members t g with
          | None -> Error "safe in an unknown view"
          | Some members -> (
              let j = next_safe_of t dst g in
              match Gcs_stdx.Ixq.nth1 (raw_queue_of t g) j with
              | None -> Error "safe for a message not yet ordered"
              | Some (m, p, gpsnd_idx) ->
                  if not (equal_msg t m msg && Proc.equal p src) then
                    Error "safe disagrees with the forced per-view order"
                  else if
                    not
                      (Proc.Set.for_all
                         (fun r -> next_of t r g > j)
                         members)
                  then
                    Error
                      "safe before delivery at every member of the view"
                  else
                    Ok
                      (bump
                         {
                           t with
                           next_safe = Pg_map.add (dst, g) (j + 1) t.next_safe;
                           cause_rev = (idx, gpsnd_idx) :: t.cause_rev;
                         }))))

let check_full params actions =
  let rec go t i = function
    | [] -> Ok t
    | action :: rest -> (
        match step t action with
        | Ok t' -> go t' (i + 1) rest
        | Error reason -> Error { index = i; reason })
  in
  go (create params) 0 actions

let check params actions = Result.map (fun _ -> ()) (check_full params actions)

let pp_error ppf e = Format.fprintf ppf "event %d: %s" e.index e.reason
