open Gcs_automata

type state = {
  vs : Msg.t Vs_gap_machine.state;
  nodes : Vstoto.state Proc.Map.t;
}

type params = {
  procs : Proc.t list;
  p0 : Proc.t list;
  quorums : Quorum.t;
}

let make_params ~procs ~p0 ~quorums () = { procs; p0; quorums }

let vs_params params =
  { Vs_gap_machine.procs = params.procs; p0 = params.p0; equal_msg = Msg.equal }

let node_params params p =
  {
    Vstoto.me = p;
    p0 = params.p0;
    quorums = params.quorums;
    literal_figure_10 = false;
    pipeline = false;
  }

let node state p = Proc.Map.find p state.nodes

let initial params =
  {
    vs = Vs_gap_machine.initial (vs_params params);
    nodes =
      List.fold_left
        (fun acc p ->
          Proc.Map.add p (Vstoto.initial (node_params params p)) acc)
        Proc.Map.empty params.procs;
  }

let touched_node action =
  match action with
  | Sys_action.Bcast (p, _) | Sys_action.Label_act (p, _) | Sys_action.Confirm p
    ->
      Some p
  | Sys_action.Brcv { dst; _ } -> Some dst
  | Sys_action.Vs (Vs_action.Gpsnd { sender; _ }) -> Some sender
  | Sys_action.Vs (Vs_action.Gprcv { dst; _ })
  | Sys_action.Vs (Vs_action.Safe { dst; _ }) ->
      Some dst
  | Sys_action.Vs (Vs_action.Newview { proc; _ }) -> Some proc
  | Sys_action.Vs (Vs_action.Createview _) | Sys_action.Vs (Vs_action.Vs_order _)
    ->
      None

let transition params =
  let vsp = vs_params params in
  let vs_machine = Vs_gap_machine.automaton vsp in
  let node_automata =
    List.fold_left
      (fun acc p ->
        Proc.Map.add p (Vstoto.automaton (node_params params p)) acc)
      Proc.Map.empty params.procs
  in
  fun state action ->
    let vs_step state =
      match action with
      | Sys_action.Vs va -> (
          match vs_machine.Automaton.transition state.vs va with
          | Some vs' -> Some { state with vs = vs' }
          | None -> None)
      | _ -> Some state
    in
    let node_step state =
      match touched_node action with
      | None -> Some state
      | Some p -> (
          match Proc.Map.find_opt p node_automata with
          | None -> None
          | Some a -> (
              match a.Automaton.transition (node state p) action with
              | Some post -> Some { state with nodes = Proc.Map.add p post state.nodes }
              | None -> None))
    in
    match vs_step state with None -> None | Some state' -> node_step state'

let enabled params =
  let vsp = vs_params params in
  let vs_machine = Vs_gap_machine.automaton vsp in
  let node_automata =
    List.map (fun p -> (p, Vstoto.automaton (node_params params p))) params.procs
  in
  fun state ->
    List.map (fun a -> Sys_action.Vs a) (vs_machine.Automaton.enabled state.vs)
    @ List.concat_map
        (fun (p, a) -> a.Automaton.enabled (node state p))
        node_automata

let automaton params =
  {
    Automaton.name = "VStoTO-over-VSgap";
    initial = initial params;
    kind = Sys_action.system_kind ~procs:params.procs;
    enabled = enabled params;
    transition = transition params;
  }

let inject params ~values state prng =
  let bcast =
    match
      (Gcs_stdx.Prng.pick prng params.procs, Gcs_stdx.Prng.pick prng values)
    with
    | Some p, Some v -> [ Sys_action.Bcast (p, v) ]
    | _ -> []
  in
  bcast
  @ List.map
      (fun a -> Sys_action.Vs a)
      (Vs_gap_machine.inject_createview (vs_params params) state.vs prng)
