(* Incremental representation: the forced total order is an int-indexed
   persistent queue (O(log k) snoc/probe instead of the O(k) list append
   and O(k) nth of the naive representation), and the per-sender
   unordered buffers are persistent FIFOs (O(1) amortized pop, O(1)
   push). Each [step] is therefore O(log k), making whole-trace checks
   O(k log k) instead of O(k^2); the state stays pure, so snapshots
   remain valid across further steps. *)

type 'a t = {
  params : 'a To_machine.params;
  unordered : 'a Gcs_stdx.Fq.t Proc.Map.t;
      (* bcast values not yet forced into queue *)
  queue : ('a * Proc.t) Gcs_stdx.Ixq.t;
  next : int Proc.Map.t;
}

type error = { index : int; reason : string }

let create params =
  {
    params;
    unordered = Proc.Map.empty;
    queue = Gcs_stdx.Ixq.empty;
    next = Proc.Map.empty;
  }

let unordered_of t p =
  match Proc.Map.find_opt p t.unordered with
  | Some s -> s
  | None -> Gcs_stdx.Fq.empty

let next_of t p =
  match Proc.Map.find_opt p t.next with Some n -> n | None -> 1

let step t action =
  match action with
  | To_action.Bcast (p, a) ->
      Ok
        {
          t with
          unordered =
            Proc.Map.add p (Gcs_stdx.Fq.push (unordered_of t p) a) t.unordered;
        }
  | To_action.To_order _ -> Error "internal to-order event in external trace"
  | To_action.Brcv { src; dst; value } -> (
      let i = next_of t dst in
      let deliver t =
        Ok { t with next = Proc.Map.add dst (i + 1) t.next }
      in
      match Gcs_stdx.Ixq.nth1 t.queue i with
      | Some (a, p) ->
          if t.params.To_machine.equal_value a value && Proc.equal p src then
            deliver t
          else Error "brcv disagrees with the forced total order"
      | None -> (
          (* i = |queue| + 1: force a new queue entry from src's oldest
             unordered bcast. *)
          match Gcs_stdx.Fq.pop (unordered_of t src) with
          | Some (head, rest) when t.params.To_machine.equal_value head value ->
              deliver
                {
                  t with
                  unordered = Proc.Map.add src rest t.unordered;
                  queue = Gcs_stdx.Ixq.snoc t.queue (value, src);
                }
          | Some (_, _) -> Error "brcv out of per-sender submission order"
          | None -> Error "brcv with no corresponding bcast"))

let check params actions =
  let rec go t i = function
    | [] -> Ok ()
    | action :: rest -> (
        match step t action with
        | Ok t' -> go t' (i + 1) rest
        | Error reason -> Error { index = i; reason })
  in
  go (create params) 0 actions

let queue t = Gcs_stdx.Ixq.to_list t.queue
let delivered t p = Gcs_stdx.Ixq.prefix (next_of t p - 1) t.queue

let pp_error ppf e =
  Format.fprintf ppf "event %d: %s" e.index e.reason
