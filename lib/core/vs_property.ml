type violation = {
  what : string;
  deadline : float;
  at : Proc.t option;
}

type 'm report = {
  premise : (unit, string) result;
  stabilization_time : float;
  last_newview_time : float;
  final_view : View.t option;
  obligations : int;
  violations : violation list;
  max_safe_latency : float;
}

let check_premise ~q ~procs trace l =
  let tracker = Timed.tracker_at l trace in
  let in_q p = List.mem p q in
  let bad_proc =
    List.find_map
      (fun p ->
        if in_q p && not (Fstatus.equal (Fstatus.proc_status tracker p) Good)
        then Some (Printf.sprintf "processor %d in Q not good" p)
        else None)
      procs
  in
  match bad_proc with
  | Some msg -> Error msg
  | None ->
      let bad_pair =
        List.find_map
          (fun p ->
            List.find_map
              (fun p' ->
                if Proc.equal p p' then None
                else if
                  in_q p && in_q p'
                  && not
                       (Fstatus.equal (Fstatus.link_status tracker p p') Good)
                then Some (Printf.sprintf "link (%d,%d) within Q not good" p p')
                else if
                  in_q p
                  && (not (in_q p'))
                  && not (Fstatus.equal (Fstatus.link_status tracker p p') Bad)
                then Some (Printf.sprintf "link (%d,%d) leaving Q not bad" p p')
                else None)
              procs)
          procs
      in
      (match bad_pair with Some msg -> Error msg | None -> Ok ())

let check ~b ~d ~q ~p0 ~horizon ~equal_msg ~pp_msg trace =
  let v0 = View.initial p0 in
  let actions = Timed.actions trace in
  let procs =
    let mentioned =
      List.concat_map
        (fun (_, a) ->
          match a with
          | Vs_action.Gpsnd { sender; _ } -> [ sender ]
          | Vs_action.Gprcv { src; dst; _ } | Vs_action.Safe { src; dst; _ } ->
              [ src; dst ]
          | Vs_action.Newview { proc; _ } -> [ proc ]
          | Vs_action.Createview _ -> []
          | Vs_action.Vs_order { sender; _ } -> [ sender ])
        actions
    in
    Gcs_stdx.Seqx.dedup_sorted ~compare:Proc.compare (q @ mentioned)
  in
  let l = Timed.last_status_time_involving q trace in
  let premise = check_premise ~q ~procs trace l in
  (* Track each member's current view over time; record last newview times
     and final views of members of Q. *)
  let final_views = Hashtbl.create 16 in
  List.iter
    (fun p -> if List.mem p p0 then Hashtbl.replace final_views p v0)
    q;
  let last_newview = ref 0.0 in
  List.iter
    (fun (time, a) ->
      match a with
      | Vs_action.Newview { proc; view } ->
          if List.mem proc q then begin
            last_newview := max !last_newview time;
            Hashtbl.replace final_views proc view
          end
      | _ -> ())
    actions;
  let q_set = Proc.set_of_list q in
  let final_view, view_violation =
    let views = List.filter_map (Hashtbl.find_opt final_views) q in
    match views with
    | [] -> (None, Some "no member of Q ever installed a view")
    | v :: rest ->
        if
          List.length views = List.length q
          && List.for_all (View.equal v) rest
          && Proc.Set.equal v.View.set q_set
        then (Some v, None)
        else (None, Some "final views of Q disagree or are not exactly Q")
  in
  let violations = ref [] in
  (match view_violation with
  | Some what when Result.is_ok premise ->
      violations := [ { what; deadline = l +. b; at = None } ]
  | _ -> ());
  if Result.is_ok premise && !last_newview > l +. b then
    violations :=
      {
        what =
          Printf.sprintf "a newview at %.3f is later than l+b = %.3f"
            !last_newview (l +. b);
        deadline = l +. b;
        at = None;
      }
      :: !violations;
  (* Clause (d): messages sent from Q in the final view. We reconstruct
     each sender's current view at send time from its newview events. *)
  let obligations = ref 0 in
  let max_safe_latency = ref 0.0 in
  (match final_view with
  | None -> ()
  | Some fv ->
      let current = Hashtbl.create 16 in
      let safes = Hashtbl.create 256 in
      List.iter
        (fun (time, a) ->
          match a with
          | Vs_action.Newview { proc; view } ->
              Hashtbl.replace current proc view
          | Vs_action.Safe { src; dst; msg } ->
              let key = (src, dst, Format.asprintf "%a" pp_msg msg) in
              if not (Hashtbl.mem safes key) then Hashtbl.replace safes key time
          | _ -> ())
        actions;
      let sent_in_final_view =
        List.filter_map
          (fun (time, a) ->
            match a with
            | Vs_action.Gpsnd { sender; msg } when List.mem sender q -> (
                (* recompute the sender's view at this time *)
                let initial =
                  if List.mem sender p0 then Some v0 else None
                in
                let view_at =
                  List.fold_left
                    (fun acc (t', a') ->
                      match a' with
                      | Vs_action.Newview { proc; view }
                        when Proc.equal proc sender && t' <= time ->
                          Some view
                      | _ -> acc)
                    initial actions
                in
                match view_at with
                | Some v when View.equal v fv -> Some (time, sender, msg)
                | _ -> None)
            | _ -> None)
          actions
      in
      (* Uniqueness of (sender, message) among obligations. *)
      let seen = Hashtbl.create 64 in
      let dup =
        List.exists
          (fun (_, p, m) ->
            let key = (p, Format.asprintf "%a" pp_msg m) in
            if Hashtbl.mem seen key then true
            else (
              Hashtbl.replace seen key ();
              false))
          sent_in_final_view
      in
      ignore equal_msg;
      if dup then
        violations :=
          {
            what = "workload repeats a (sender, message) pair in final view";
            deadline = 0.0;
            at = None;
          }
          :: !violations
      else
        List.iter
          (fun (t, sender, msg) ->
            let deadline = max t (l +. b) +. d in
            if deadline <= horizon then begin
              let key_str = Format.asprintf "%a" pp_msg msg in
              let latest = ref 0.0 in
              List.iter
                (fun member ->
                  incr obligations;
                  match Hashtbl.find_opt safes (sender, member, key_str) with
                  | Some ts when ts <= deadline -> latest := max !latest ts
                  | Some _ | None ->
                      violations :=
                        {
                          what =
                            Printf.sprintf "message %s from %d not safe in time"
                              key_str sender;
                          deadline;
                          at = Some member;
                        }
                        :: !violations)
                q;
              if t >= l +. b then
                max_safe_latency := max !max_safe_latency (!latest -. t)
            end)
          sent_in_final_view);
  {
    premise;
    stabilization_time = l;
    last_newview_time = !last_newview;
    final_view;
    obligations = !obligations;
    violations = List.rev !violations;
    max_safe_latency = !max_safe_latency;
  }

let holds report =
  Result.is_ok report.premise && List.is_empty report.violations

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>premise: %s@ l=%.3f last_newview=%.3f final_view=%s obligations=%d \
     violations=%d max_safe_latency=%.3f@]"
    (match r.premise with Ok () -> "holds" | Error e -> "vacuous: " ^ e)
    r.stabilization_time r.last_newview_time
    (match r.final_view with
    | Some v -> Format.asprintf "%a" View.pp v
    | None -> "-")
    r.obligations
    (List.length r.violations)
    r.max_safe_latency
