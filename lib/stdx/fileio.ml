let ensure_dir path =
  if not (Sys.file_exists path) then Sys.mkdir path 0o755

let write_atomic ~path contents =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc contents
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      let contents = In_channel.input_all ic in
      close_in_noerr ic;
      Ok contents
