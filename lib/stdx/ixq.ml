module Imap = Map.Make (Int)

type 'a t = { map : 'a Imap.t; length : int }

let empty = { map = Imap.empty; length = 0 }
let length t = t.length
let is_empty t = t.length = 0

let snoc t x =
  { map = Imap.add (t.length + 1) x t.map; length = t.length + 1 }

let nth1 t i =
  if i < 1 || i > t.length then None else Imap.find_opt i t.map

let last t = nth1 t t.length

let to_list t =
  List.rev (Imap.fold (fun _ x acc -> x :: acc) t.map [])

let prefix n t =
  if n <= 0 then []
  else
    List.rev
      (Imap.fold
         (fun i x acc -> if i <= n then x :: acc else acc)
         t.map [])

let of_list xs = List.fold_left snoc empty xs

let iter f t = Imap.iter (fun _ x -> f x) t.map
let fold f acc t = Imap.fold (fun _ x acc -> f acc x) t.map acc
