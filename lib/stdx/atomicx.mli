(** Small lock-free combinators over [Atomic.t].

    The lint rule C3 bans the open-coded
    [if v > Atomic.get a then Atomic.set a v] shape — a check-then-act
    whose concurrent writer is silently lost. These helpers are the
    sanctioned replacements: each is a [compare_and_set] retry loop,
    linearizable and obstruction-free. *)

val store_max : int Atomic.t -> int -> unit
(** [store_max a v] raises [a] to [v] if [v] is larger; concurrent
    calls agree on the maximum of all stored values. *)

val store_max_float : float Atomic.t -> float -> unit
(** Same, for floats (NaN is never stored over a non-NaN value). *)
