type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of string

let error fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> error "at %d: expected %c, found %c" c.pos ch x
  | None -> error "at %d: expected %c, found end of input" c.pos ch

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else error "at %d: expected %s" c.pos word

let hex_digit ch =
  match ch with
  | '0' .. '9' -> Char.code ch - Char.code '0'
  | 'a' .. 'f' -> Char.code ch - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code ch - Char.code 'A' + 10
  | _ -> error "invalid hex digit %c" ch

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | None -> error "unterminated escape"
        | Some ch ->
            advance c;
            (match ch with
            | '"' -> Buffer.add_char buf '"'
            | '\\' -> Buffer.add_char buf '\\'
            | '/' -> Buffer.add_char buf '/'
            | 'b' -> Buffer.add_char buf '\b'
            | 'f' -> Buffer.add_char buf '\012'
            | 'n' -> Buffer.add_char buf '\n'
            | 'r' -> Buffer.add_char buf '\r'
            | 't' -> Buffer.add_char buf '\t'
            | 'u' ->
                if c.pos + 4 > String.length c.src then
                  error "truncated \\u escape";
                let code =
                  (hex_digit c.src.[c.pos] * 4096)
                  + (hex_digit c.src.[c.pos + 1] * 256)
                  + (hex_digit c.src.[c.pos + 2] * 16)
                  + hex_digit c.src.[c.pos + 3]
                in
                c.pos <- c.pos + 4;
                (* Escaped controls and ASCII decode to one byte; anything
                   higher encodes as UTF-8 so round-trips stay lossless. *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf
                    (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
            | ch -> error "invalid escape \\%c" ch);
            go ())
    | Some ch when Char.code ch < 32 -> error "unescaped control character"
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let s = String.sub c.src start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> error "at %d: invalid number %s" start s

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> error "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else
        let rec members acc =
          skip_ws c;
          let key = parse_string c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              members ((key, v) :: acc)
          | Some '}' ->
              advance c;
              Obj (List.rev ((key, v) :: acc))
          | _ -> error "at %d: expected , or } in object" c.pos
        in
        members []
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        Arr []
      end
      else
        let rec elements acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              elements (v :: acc)
          | Some ']' ->
              advance c;
              Arr (List.rev (v :: acc))
          | _ -> error "at %d: expected , or ] in array" c.pos
        in
        elements []
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> error "at %d: unexpected character %c" c.pos ch

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length s then
        Error (Printf.sprintf "trailing input at %d" c.pos)
      else Ok v
  | exception Parse_error e -> Error e

(* ------------------------------ emission ----------------------------- *)

let escape_to buf s =
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | ch when Char.code ch < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code ch))
      | ch -> Buffer.add_char buf ch)
    s

(* Integral values print without an exponent or fraction; everything
   else prints with enough digits to round-trip through of_string. *)
let number_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> Buffer.add_string buf (number_str f)
  | Str s ->
      Buffer.add_char buf '"';
      escape_to buf s;
      Buffer.add_char buf '"'
  | Arr xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          write buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_to buf k;
          Buffer.add_char buf '"';
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let encode t =
  let buf = Buffer.create 256 in
  write buf t;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None
let to_string = function Str s -> Some s | _ -> None
let to_list = function Arr xs -> Some xs | _ -> None
