(* Invariant: front = [] implies back = []. *)
type 'a t = { front : 'a list; back : 'a list; length : int }

let empty = { front = []; back = []; length = 0 }
let length t = t.length
let is_empty t = t.length = 0

let push t x =
  match t.front with
  | [] -> { front = [ x ]; back = []; length = 1 }
  | _ -> { t with back = x :: t.back; length = t.length + 1 }

let peek t = match t.front with x :: _ -> Some x | [] -> None

let pop t =
  match t.front with
  | [] -> None
  | x :: rest ->
      let t' =
        match rest with
        | [] -> { front = List.rev t.back; back = []; length = t.length - 1 }
        | _ -> { t with front = rest; length = t.length - 1 }
      in
      Some (x, t')

let to_list t = t.front @ List.rev t.back
let of_list xs = { front = xs; back = []; length = List.length xs }
