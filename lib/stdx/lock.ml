(* The sanctioned home of raw Mutex use (lint rule C2): everything else
   takes critical sections through [with_lock], which cannot forget to
   unlock on an exception path. *)

type registry = {
  rid : int;
  reg_lock : Mutex.t;  (* leaf lock: guards the tables, never held while blocking *)
  names : (int, string) Hashtbl.t;
  acquired : (int, int) Hashtbl.t;
  contended : (int, int) Hashtbl.t;
  edges : (int * int, int) Hashtbl.t;  (* held id -> acquired id, count *)
  metrics : Metrics.t option;
}

type t = {
  mutex : Mutex.t;
  id : int;
  lname : string;
  registry : registry option;
}

(* One held-set per domain, shared by every registry: each entry
   remembers which registry its lock reports to. *)
type held_entry = { hrid : int; hid : int; hname : string }

let held_key : held_entry list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let next_rid = Atomic.make 0
let next_id = Atomic.make 0

let registry ?metrics () =
  {
    rid = Atomic.fetch_and_add next_rid 1;
    reg_lock = Mutex.create ();
    names = Hashtbl.create 16;
    acquired = Hashtbl.create 16;
    contended = Hashtbl.create 16;
    edges = Hashtbl.create 16;
    metrics;
  }

let locked r f =
  Mutex.lock r.reg_lock;
  match f () with
  | v ->
      Mutex.unlock r.reg_lock;
      v
  | exception e ->
      Mutex.unlock r.reg_lock;
      raise e

let bump tbl key =
  let n = match Hashtbl.find_opt tbl key with Some n -> n | None -> 0 in
  Hashtbl.replace tbl key (n + 1)

let create ?registry name =
  let id = Atomic.fetch_and_add next_id 1 in
  (match registry with
  | None -> ()
  | Some r -> locked r (fun () -> Hashtbl.replace r.names id name));
  { mutex = Mutex.create (); id; lname = name; registry }

let name t = t.lname

let acquire t =
  (* Order edges are recorded *before* the (possibly blocking) acquire:
     if the interleaving actually deadlocks, the registry still holds the
     evidence. *)
  (match t.registry with
  | None -> ()
  | Some r ->
      let held = Domain.DLS.get held_key in
      let mine = List.filter (fun h -> Int.equal h.hrid r.rid) !held in
      (match mine with
      | [] -> ()
      | _ :: _ ->
          locked r (fun () ->
              List.iter (fun h -> bump r.edges (h.hid, t.id)) mine)));
  let contended = not (Mutex.try_lock t.mutex) in
  if contended then Mutex.lock t.mutex;
  match t.registry with
  | None -> ()
  | Some r ->
      locked r (fun () ->
          bump r.acquired t.id;
          if contended then bump r.contended t.id;
          match r.metrics with
          | None -> ()
          | Some m ->
              (* Serialized under the registry lock: Metrics registries
                 are single-writer structures. *)
              Metrics.incr m ("lock.acquired." ^ t.lname);
              if contended then Metrics.incr m ("lock.contended." ^ t.lname));
      let held = Domain.DLS.get held_key in
      held := { hrid = r.rid; hid = t.id; hname = t.lname } :: !held

let release t =
  (match t.registry with
  | None -> ()
  | Some r ->
      let held = Domain.DLS.get held_key in
      let rec drop = function
        | [] -> []
        | h :: rest when Int.equal h.hrid r.rid && Int.equal h.hid t.id ->
            rest
        | h :: rest -> h :: drop rest
      in
      held := drop !held);
  Mutex.unlock t.mutex

let with_lock t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e

let wait cond t = Condition.wait cond t.mutex

let held () =
  List.map (fun h -> h.hname) !(Domain.DLS.get held_key)

type graph = {
  locks : (string * int * int) list;
  edges : (string * string * int) list;
  cycles : string list list;
}

let graph r =
  let named, raw_edges =
    locked r (fun () ->
        let find0 tbl id =
          match Hashtbl.find_opt tbl id with Some n -> n | None -> 0
        in
        let named =
          List.sort
            (fun (a, _, _, _) (b, _, _, _) -> String.compare a b)
            (Hashtbl.fold
               (fun id name acc ->
                 (name, id, find0 r.acquired id, find0 r.contended id) :: acc)
               r.names [])
        in
        let raw_edges =
          List.sort
            (fun ((a, b), _) ((c, d), _) ->
              match Int.compare a c with 0 -> Int.compare b d | k -> k)
            (Hashtbl.fold (fun k n acc -> (k, n) :: acc) r.edges [])
        in
        (named, raw_edges))
  in
  let lock_name id =
    let rec find = function
      | [] -> Printf.sprintf "lock#%d" id
      | (name, i, _, _) :: rest -> if Int.equal i id then name else find rest
    in
    find named
  in
  let compare_names (a, b) (c, d) =
    match String.compare a c with 0 -> String.compare b d | k -> k
  in
  (* Several lock instances may share a name (e.g. one "bus.status" per
     conformance case recorded into the same registry): the report
     merges them, summing counts — the name is the analysis unit. *)
  let locks =
    List.fold_left
      (fun acc (name, _, acq, cont) ->
        match acc with
        | (name', acq', cont') :: rest when String.equal name name' ->
            (name', acq' + acq, cont' + cont) :: rest
        | _ -> (name, acq, cont) :: acc)
      [] named (* [named] is sorted by name *)
    |> List.rev
  in
  let edges =
    List.map (fun ((a, b), n) -> ((lock_name a, lock_name b), n)) raw_edges
    |> List.sort (fun ((a, b), _) ((c, d), _) ->
           match String.compare a c with 0 -> String.compare b d | k -> k)
    |> List.fold_left
         (fun acc (k, n) ->
           match acc with
           | (k', n') :: rest when compare_names k k' = 0 ->
               (k', n' + n) :: rest
           | _ -> (k, n) :: acc)
         []
    |> List.rev
    |> List.map (fun ((a, b), n) -> (a, b, n))
  in
  (* Cycles over the name-merged edges: instances sharing a name are one
     node, so nesting two "bus.status" instances — or one recursively —
     is a self-cycle either way. *)
  let cycles =
    Graphx.cyclic_sccs ~compare:String.compare
      ~edges:(List.map (fun (a, b, _) -> (a, b)) edges)
    |> List.map (List.sort String.compare)
    |> List.sort_uniq (List.compare String.compare)
  in
  { locks; edges; cycles }

let graph_to_json g =
  Jsonx.Obj
    [
      ( "locks",
        Jsonx.Arr
          (List.map
             (fun (name, acq, cont) ->
               Jsonx.Obj
                 [
                   ("name", Jsonx.Str name);
                   ("acquired", Jsonx.Num (float_of_int acq));
                   ("contended", Jsonx.Num (float_of_int cont));
                 ])
             g.locks) );
      ( "edges",
        Jsonx.Arr
          (List.map
             (fun (a, b, n) ->
               Jsonx.Obj
                 [
                   ("from", Jsonx.Str a);
                   ("to", Jsonx.Str b);
                   ("count", Jsonx.Num (float_of_int n));
                 ])
             g.edges) );
      ( "cycles",
        Jsonx.Arr
          (List.map
             (fun cyc -> Jsonx.Arr (List.map (fun s -> Jsonx.Str s) cyc))
             g.cycles) );
    ]

let pp_graph ppf g =
  List.iter
    (fun (name, acq, cont) ->
      Format.fprintf ppf "lock %-24s acquired %-8d contended %d@." name acq
        cont)
    g.locks;
  List.iter
    (fun (a, b, n) -> Format.fprintf ppf "order %s -> %s (%d)@." a b n)
    g.edges;
  (match g.cycles with
  | [] -> Format.fprintf ppf "no lock-order cycles@."
  | cycles ->
      List.iter
        (fun cyc ->
          Format.fprintf ppf "CYCLE: %s@." (String.concat " <-> " cyc))
        cycles);
  ()
