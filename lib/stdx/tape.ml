(* A persistent append-only vector ("tape"): a slice over a shared
   growable buffer. The common case — extending the newest slice — writes
   in place and is O(1) amortized; extending an older slice copies it
   first, so every previously created value remains valid forever. Slots
   below [committed] are never overwritten, which is what makes sharing
   the buffer between many slices safe. *)

type 'a buf = { mutable data : 'a array; mutable committed : int }
type 'a t = { buf : 'a buf; start : int; stop : int }

let empty () = { buf = { data = [||]; committed = 0 }; start = 0; stop = 0 }

let length t = t.stop - t.start
let is_empty t = t.stop = t.start

let snoc t x =
  let b = t.buf in
  if t.stop = b.committed then begin
    (* Fast path: this slice is the frontier of the buffer. *)
    (if b.committed = Array.length b.data then
       let data = Array.make (max 8 (2 * b.committed)) x in
       Array.blit b.data 0 data 0 b.committed;
       b.data <- data);
    b.data.(b.committed) <- x;
    b.committed <- b.committed + 1;
    { t with stop = t.stop + 1 }
  end
  else begin
    (* Diverging from an older slice: copy it into a fresh buffer. *)
    let n = length t in
    let data = Array.make (max 8 (2 * (n + 1))) x in
    Array.blit t.buf.data t.start data 0 n;
    data.(n) <- x;
    { buf = { data; committed = n + 1 }; start = 0; stop = n + 1 }
  end

let get t i =
  if i < 0 || i >= length t then
    invalid_arg
      (Printf.sprintf "Tape.get: index %d out of bounds [0,%d)" i (length t))
  else t.buf.data.(t.start + i)

let nth1 t i = if i < 1 || i > length t then None else Some (get t (i - 1))

let first t = if is_empty t then None else Some (get t 0)

let rest t =
  if is_empty t then invalid_arg "Tape.rest: empty tape"
  else { t with start = t.start + 1 }

let fold_left f acc t =
  let acc = ref acc in
  for i = t.start to t.stop - 1 do
    acc := f !acc t.buf.data.(i)
  done;
  !acc

let iter f t =
  for i = t.start to t.stop - 1 do
    f t.buf.data.(i)
  done

let to_list t =
  let rec go i acc =
    if i < t.start then acc else go (i - 1) (t.buf.data.(i) :: acc)
  in
  go (t.stop - 1) []

let of_list xs = List.fold_left snoc (empty ()) xs

let append t xs = List.fold_left snoc t xs

let drop n t =
  if n <= 0 then t
  else if n >= length t then { t with start = t.stop }
  else { t with start = t.start + n }

let equal eq a b =
  length a = length b
  &&
  let rec go i = i >= length a || (eq (get a i) (get b i) && go (i + 1)) in
  go 0

let exists pred t =
  let rec go i = i < length t && (pred (get t i) || go (i + 1)) in
  go 0
