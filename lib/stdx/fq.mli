(** Persistent FIFO queue (two-list batched queue): O(1) [push] and
    [peek], O(1) amortized [pop].

    Used for the per-sender unordered buffers of the trace checkers,
    replacing O(k) list appends. The structure is pure, so checker
    snapshots taken by the explorer and the mutation tests remain valid
    after further steps. *)

type 'a t

val empty : 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> 'a t
(** Enqueue at the back. *)

val peek : 'a t -> 'a option
(** Front element, if any. *)

val pop : 'a t -> ('a * 'a t) option
(** Front element and the rest, if any. *)

val to_list : 'a t -> 'a list
(** Front first. *)

val of_list : 'a list -> 'a t
