type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = bits64 t }

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (bits64 t) 1L = 1L

let float t =
  let x = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float x /. 9007199254740992.0 (* 2^53 *)

let pick t = function
  | [] -> None
  | xs -> Some (List.nth xs (int t (List.length xs)))

let pick_exn t xs =
  match pick t xs with
  | Some x -> x
  | None -> invalid_arg "Prng.pick_exn: empty list"

let weighted t choices =
  let total = List.fold_left (fun acc (w, _) -> acc + max 0 w) 0 choices in
  if total <= 0 then invalid_arg "Prng.weighted: no positive weight";
  let rec go k = function
    | [] -> invalid_arg "Prng.weighted: no positive weight"
    | (w, x) :: rest -> if k < max 0 w then x else go (k - max 0 w) rest
  in
  go (int t total) choices

let shuffle t xs =
  let tagged = List.map (fun x -> (bits64 t, x)) xs in
  List.map snd (List.sort (fun (a, _) (b, _) -> Int64.compare a b) tagged)

let subset t xs = List.filter (fun _ -> bool t) xs
