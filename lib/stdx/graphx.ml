let cyclic_sccs (type a) ~(compare : a -> a -> int) ~(edges : (a * a) list) =
  let module M = Map.Make (struct
    type t = a

    let compare = compare
  end) in
  let add_node n m = if M.mem n m then m else M.add n [] m in
  let adj =
    List.fold_left
      (fun m (u, v) ->
        let m = add_node u (add_node v m) in
        M.add u (v :: M.find u m) m)
      M.empty edges
    |> M.map (fun vs -> List.sort_uniq compare vs)
  in
  let succs v = match M.find_opt v adj with Some vs -> vs | None -> [] in
  (* Tarjan. Lock graphs are tiny, so the recursion depth is a non-issue
     and the clarity of the textbook form wins. *)
  let index = ref 0 in
  let indices = ref M.empty in
  let lowlink = ref M.empty in
  let on_stack = ref M.empty in
  let stack = ref [] in
  let sccs = ref [] in
  let low v =
    match M.find_opt v !lowlink with
    | Some i -> i
    | None -> invalid_arg "Graphx: node visited without a lowlink"
  in
  let rec strongconnect v =
    indices := M.add v !index !indices;
    lowlink := M.add v !index !lowlink;
    incr index;
    stack := v :: !stack;
    on_stack := M.add v true !on_stack;
    List.iter
      (fun w ->
        match M.find_opt w !indices with
        | None ->
            strongconnect w;
            lowlink := M.add v (Int.min (low v) (low w)) !lowlink
        | Some wi ->
            let open_scc =
              match M.find_opt w !on_stack with Some b -> b | None -> false
            in
            if open_scc then lowlink := M.add v (Int.min (low v) wi) !lowlink)
      (succs v);
    if Int.equal (low v) (match M.find_opt v !indices with Some i -> i | None -> -1)
    then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            on_stack := M.add w false !on_stack;
            if Int.equal (compare w v) 0 then w :: acc else pop (w :: acc)
      in
      sccs := pop [] :: !sccs
    end
  in
  M.iter (fun v _ -> if not (M.mem v !indices) then strongconnect v) adj;
  let cyclic scc =
    match scc with
    | [] -> false
    | [ v ] -> List.exists (fun w -> Int.equal (compare v w) 0) (succs v)
    | _ :: _ :: _ -> true
  in
  !sccs
  |> List.filter cyclic
  |> List.map (List.sort compare)
  |> List.sort (fun a b ->
         match (a, b) with
         | x :: _, y :: _ -> compare x y
         | [], _ | _, [] -> 0 (* cyclic SCCs are never empty *))

let reachable (type a) ~(compare : a -> a -> int) ~(edges : (a * a) list)
    start =
  let module M = Map.Make (struct
    type t = a

    let compare = compare
  end) in
  let add_node n m = if M.mem n m then m else M.add n [] m in
  let adj =
    List.fold_left
      (fun m (u, v) ->
        let m = add_node u (add_node v m) in
        M.add u (v :: M.find u m) m)
      M.empty edges
    |> M.map (fun vs -> List.sort_uniq compare vs)
  in
  let succs v = match M.find_opt v adj with Some vs -> vs | None -> [] in
  let rec go seen frontier =
    match frontier with
    | [] -> seen
    | v :: rest ->
        if M.mem v seen then go seen rest
        else go (M.add v () seen) (succs v @ rest)
  in
  let seen = go M.empty (succs start) in
  List.map fst (M.bindings seen)
