let rec store_max a v =
  let seen = Atomic.get a in
  if v > seen then
    if not (Atomic.compare_and_set a seen v) then store_max a v

let rec store_max_float a v =
  let seen = Atomic.get a in
  if v > seen then
    if not (Atomic.compare_and_set a seen v) then store_max_float a v
