(** Instrumented mutual exclusion — the sanctioned lock of the repo's
    concurrency lint rules (C1–C4).

    A {!t} wraps a [Mutex.t] behind an exception-safe {!with_lock}; raw
    [Mutex.lock]/[Mutex.unlock] outside this module is what lint rule C2
    exists to flag. Uninstrumented locks ([create] without a registry)
    add nothing but the wrapper call.

    Attaching a {!registry} turns every lock created against it into a
    probe for the dynamic half of the domain-safety analysis:

    - {e acquisition-order recording}: when a domain acquires [b] while
      holding [a] (both in the same registry), the directed edge
      [a -> b] is recorded. The observed lock graph of a correct system
      is acyclic; a cycle means two domains can acquire the same locks
      in opposite orders — a deadlock waiting for the right
      interleaving. [gcs lockcheck] runs the bus conformance workload
      under a registry and fails on any cycle, cross-validating the
      static C4 lock-order graph.
    - {e per-domain held-set}: kept in domain-local storage; {!held}
      exposes the current domain's stack (for tests and debugging).
    - {e contention counters}: acquisitions that failed [Mutex.try_lock]
      and had to block are counted per lock, and mirrored into a
      {!Metrics.t} when the registry carries one
      ([lock.acquired.NAME] / [lock.contended.NAME]). *)

type t
type registry

val registry : ?metrics:Metrics.t -> unit -> registry
(** A fresh, empty observation registry. Thread-safe: locks from any
    number of domains may record into it concurrently (its internal
    bookkeeping lock is a leaf — never held while blocking). *)

val create : ?registry:registry -> string -> t
(** [create ~registry name] makes a named lock. Without [registry] the
    lock is a plain exception-safe mutex wrapper with no recording. *)

val name : t -> string

val with_lock : t -> (unit -> 'a) -> 'a
(** Run the thunk with the lock held. Always releases: a raised
    exception unwinds the held-set and unlocks before re-raising.
    Acquiring a lock the current domain already holds is recorded as a
    self-edge (a guaranteed cycle) before the attempt deadlocks — the
    registry ensures the bug is visible even if the run then hangs. *)

val wait : Condition.t -> t -> unit
(** [wait cond l] is [Condition.wait cond] on [l]'s mutex: the one
    sanctioned way to block while holding a lock (the wait releases
    exactly that lock). Must be called inside [with_lock l]; the
    held-set is unchanged across the wait, mirroring the mutex's
    release-and-reacquire semantics. *)

val held : unit -> string list
(** Names of instrumented locks held by the calling domain, innermost
    (most recently acquired) first. *)

(** {2 Observed graph} *)

type graph = {
  locks : (string * int * int) list;
      (** (name, acquisitions, contended acquisitions), sorted by name *)
  edges : (string * string * int) list;
      (** (held, then-acquired, observations), sorted *)
  cycles : string list list;
      (** cyclic strongly connected components of [edges]; empty on a
          deadlock-order-clean run *)
}

val graph : registry -> graph
(** A deterministic snapshot (sorted by lock name) of everything the
    registry observed so far. *)

val graph_to_json : graph -> Jsonx.t
val pp_graph : Format.formatter -> graph -> unit
