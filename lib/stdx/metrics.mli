(** Per-run metrics registry: counters, gauges and fixed-bucket latency
    histograms.

    A registry is an explicit value threaded through a run — there are no
    globals — so independent seeded runs fanned out over a {!Pool} of
    domains each own their registry and the rendered snapshot of a run is
    a pure function of its inputs (byte-identical at any job count).

    Metrics are registered lazily on first use, keyed by name; snapshots
    ({!pp}, {!to_json}) list them sorted by name. Registering the same
    name as two different kinds raises [Invalid_argument]. *)

type t

val create : unit -> t

(** {2 Counters} *)

val incr : ?by:int -> t -> string -> unit
val counter : t -> string -> int
(** 0 when the counter was never incremented. *)

(** {2 Gauges} *)

val set_gauge : t -> string -> float -> unit
val max_gauge : t -> string -> float -> unit
(** Keep the maximum of the recorded values (high-water mark). *)

val gauge : t -> string -> float option

(** {2 Histograms} *)

val default_buckets : float array
(** [1, 2, 5, 10, 20, 50, 100, 200, 500] — decade steps in simulated time
    units, sized for bcast-to-brcv latencies at δ = 1. *)

val observe : ?buckets:float list -> t -> string -> float -> unit
(** Record one observation. [buckets] (strictly increasing upper bounds)
    is honored on the first observation of the name and ignored after;
    values above the last bound land in an overflow bucket. *)

val histogram : t -> string -> ((float * int) list * int * float * float) option
(** [(bucket upper bound, count) list including the +inf overflow bucket,
    observation count, sum, max)]. *)

(** {2 Snapshots} *)

val pp : Format.formatter -> t -> unit
val to_json : t -> string
(** One JSON object, metrics sorted by name. Deterministic: equal
    recorded values render to equal bytes. *)
