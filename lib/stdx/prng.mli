(** Deterministic pseudo-random number generator (splitmix64).

    All nondeterminism in the executors, schedulers and simulators is
    resolved through values of this type, so every run is reproducible from
    a seed. *)

type t

val create : int -> t
(** Fresh generator from a seed. *)

val copy : t -> t
(** Independent copy (same future stream). *)

val split : t -> t
(** Derive an independent generator; advances the parent. *)

val bits64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive; requires [lo <= hi]. *)

val bool : t -> bool

val float : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a list -> 'a option
(** Uniformly random element; [None] on the empty list. *)

val pick_exn : t -> 'a list -> 'a

val weighted : t -> (int * 'a) list -> 'a
(** [weighted t [(w1, x1); ...]] picks [xi] with probability proportional
    to [max 0 wi]. Raises [Invalid_argument] when no weight is positive
    (including on the empty list). Power schedules use this to spend more
    energy on corpus entries that discovered more coverage. *)

val shuffle : t -> 'a list -> 'a list

val subset : t -> 'a list -> 'a list
(** Each element kept independently with probability 1/2. *)
