(** A persistent append-only vector: a slice over a shared growable
    buffer, replacing [xs @ [x]] accumulation on delivery hot paths.

    [snoc] on the newest slice writes in place (O(1) amortized); [snoc]
    on an older slice copies it first, so every previously created value
    stays valid — tapes behave as immutable values and are safe to keep
    in automaton states that are snapshotted, compared, hashed or
    explored. Reads ([get]/[nth1]) are O(1), and dropping a prefix is a
    cursor move, not a copy.

    Buffers are never shared between tapes built from separate [empty]
    or [of_list] calls, so states created inside different domains do
    not alias each other's storage. *)

type 'a t

val empty : unit -> 'a t
(** A fresh empty tape with its own (empty) buffer. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val snoc : 'a t -> 'a -> 'a t
(** Append one element at the end. *)

val get : 'a t -> int -> 'a
(** 0-indexed read. Raises [Invalid_argument] out of bounds. *)

val nth1 : 'a t -> int -> 'a option
(** 1-indexed lookup, as in the paper's sequence notation. *)

val first : 'a t -> 'a option

val rest : 'a t -> 'a t
(** Drop the first element (cursor move). Raises [Invalid_argument] on an
    empty tape. *)

val drop : int -> 'a t -> 'a t
(** Drop the first [n] elements (all of them if the tape is shorter). *)

val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val iter : ('a -> unit) -> 'a t -> unit
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t

val append : 'a t -> 'a list -> 'a t
(** [snoc] every element of the list in order. *)

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** Element-wise equality of the slices (buffer identity is irrelevant). *)

val exists : ('a -> bool) -> 'a t -> bool
