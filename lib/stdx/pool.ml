let default_jobs () =
  match Sys.getenv_opt "GCS_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> k
      | _ -> 1)
  | None -> 1

type 'b cell =
  | Pending
  | Done of 'b
  | Raised of exn * Printexc.raw_backtrace

let map ?jobs f xs =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let items = Array.of_list xs in
  let n = Array.length items in
  if jobs <= 1 || n <= 1 then List.map f xs
  else begin
    (* One atomic per slot: each index is claimed by exactly one worker,
       so the write never races, but the atomic publishes the cell to the
       joining domain without a lock (and keeps the pool's only shared
       mutable state visibly race-free — lint rule C1). *)
    let results = Array.init n (fun _ -> Atomic.make Pending) in
    let next = Atomic.make 0 in
    let failed = Atomic.make false in
    (* Indices are claimed in ascending order, so when a failure stops the
       pool early, every index below the lowest failing one has already
       been claimed and will be completed before the joins return — which
       makes the propagated exception (lowest failing index) deterministic
       regardless of domain scheduling. *)
    let worker () =
      let rec go () =
        if not (Atomic.get failed) then begin
          let i = Atomic.fetch_and_add next 1 in
          if i < n then begin
            (match f items.(i) with
            | y -> Atomic.set results.(i) (Done y)
            | exception e ->
                Atomic.set results.(i)
                  (Raised (e, Printexc.get_raw_backtrace ()));
                Atomic.set failed true);
            go ()
          end
        end
      in
      go ()
    in
    let spawned =
      List.init (min jobs n - 1) (fun _ -> Domain.spawn worker)
    in
    worker ();
    List.iter Domain.join spawned;
    Array.iteri
      (fun _ cell ->
        match Atomic.get cell with
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Pending | Done _ -> ())
      results;
    Array.to_list
      (Array.map
         (fun cell ->
           match Atomic.get cell with
           | Done y -> y
           | Pending | Raised _ -> assert false (* failed pool raised above *))
         results)
  end

let iter ?jobs f xs = ignore (map ?jobs (fun x -> f x) xs)
