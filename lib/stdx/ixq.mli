(** Int-indexed persistent queue: an append-only sequence with O(log k)
    [snoc] and 1-indexed random access, O(1) [length].

    This is the workhorse of the incremental trace checkers: the forced
    total orders only ever grow at the tail and are probed by index, so an
    int-keyed persistent map replaces the O(k) [queue @ [x]] append and
    the O(k) [List.nth] probe of the naive list representation while
    keeping the structure fully persistent (old snapshots stay valid). *)

type 'a t

val empty : 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val snoc : 'a t -> 'a -> 'a t
(** Append at the tail; the new element has index [length t + 1]. *)

val nth1 : 'a t -> int -> 'a option
(** 1-indexed lookup, mirroring {!Seqx.nth1}: [nth1 t i] is the [i]-th
    element when [1 <= i <= length t]. *)

val last : 'a t -> 'a option

val to_list : 'a t -> 'a list
(** Elements in index order (index 1 first). *)

val prefix : int -> 'a t -> 'a list
(** [prefix n t] is the first [n] elements in index order (all of them if
    [n >= length t]). *)

val of_list : 'a list -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
