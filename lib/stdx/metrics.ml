type histogram = {
  buckets : float array;  (* upper bounds, strictly increasing *)
  counts : int array;  (* length = Array.length buckets + 1 (overflow) *)
  mutable observations : int;
  mutable sum : float;
  mutable max : float;
}

type metric =
  | Counter of int ref
  | Gauge of float ref
  | Histogram of histogram

type t = { table : (string, metric) Hashtbl.t }

let create () = { table = Hashtbl.create 32 }

let default_buckets = [| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0 |]

let wrong_kind name =
  invalid_arg (Printf.sprintf "Metrics: %s already registered as another kind" name)

let counter_ref t name =
  match Hashtbl.find_opt t.table name with
  | Some (Counter r) -> r
  | Some _ -> wrong_kind name
  | None ->
      let r = ref 0 in
      Hashtbl.replace t.table name (Counter r);
      r

let incr ?(by = 1) t name =
  let r = counter_ref t name in
  r := !r + by

let counter t name =
  match Hashtbl.find_opt t.table name with Some (Counter r) -> !r | _ -> 0

let gauge_ref t name =
  match Hashtbl.find_opt t.table name with
  | Some (Gauge r) -> r
  | Some _ -> wrong_kind name
  | None ->
      let r = ref 0.0 in
      Hashtbl.replace t.table name (Gauge r);
      r

let set_gauge t name v = gauge_ref t name := v

let max_gauge t name v =
  let r = gauge_ref t name in
  if v > !r then r := v

let gauge t name =
  match Hashtbl.find_opt t.table name with Some (Gauge r) -> Some !r | _ -> None

let check_buckets buckets =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Metrics: histogram needs at least one bucket";
  for i = 0 to n - 2 do
    if buckets.(i) >= buckets.(i + 1) then
      invalid_arg "Metrics: histogram buckets must be strictly increasing"
  done

let histogram_of t ?buckets name =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) -> h
  | Some _ -> wrong_kind name
  | None ->
      let buckets =
        match buckets with
        | Some bs ->
            let a = Array.of_list bs in
            check_buckets a;
            a
        | None -> Array.copy default_buckets
      in
      let h =
        {
          buckets;
          counts = Array.make (Array.length buckets + 1) 0;
          observations = 0;
          sum = 0.0;
          max = neg_infinity;
        }
      in
      Hashtbl.replace t.table name (Histogram h);
      h

let observe ?buckets t name v =
  let h = histogram_of t ?buckets name in
  let rec slot i =
    if i >= Array.length h.buckets then i
    else if v <= h.buckets.(i) then i
    else slot (i + 1)
  in
  let i = slot 0 in
  h.counts.(i) <- h.counts.(i) + 1;
  h.observations <- h.observations + 1;
  h.sum <- h.sum +. v;
  if v > h.max then h.max <- v

let histogram t name =
  match Hashtbl.find_opt t.table name with
  | Some (Histogram h) ->
      Some
        ( Array.to_list
            (Array.mapi (fun i le -> (le, h.counts.(i))) h.buckets)
          @ [ (infinity, h.counts.(Array.length h.buckets)) ],
          h.observations,
          h.sum,
          h.max )
  | _ -> None

(* Registry snapshots are sorted by name, so rendering is a pure function
   of the recorded values — the determinism tests compare these strings
   byte for byte across job counts. Sanctioned D1 sink: the fold feeds
   List.sort directly. *)
let sorted t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [])

(* %.17g prints the shortest digit string that round-trips a float, so
   snapshots never depend on printf rounding of intermediate widths. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, metric) ->
      if i > 0 then Format.fprintf ppf "@,";
      match metric with
      | Counter r -> Format.fprintf ppf "%-44s %10d" name !r
      | Gauge r -> Format.fprintf ppf "%-44s %10s" name (float_str !r)
      | Histogram h ->
          Format.fprintf ppf "%-44s n=%d sum=%s max=%s" name h.observations
            (float_str h.sum)
            (float_str (if h.observations = 0 then 0.0 else h.max));
          Array.iteri
            (fun i le ->
              Format.fprintf ppf "@,  <= %-8s %10d" (float_str le) h.counts.(i))
            h.buckets;
          Format.fprintf ppf "@,  +inf      %10d" h.counts.(Array.length h.buckets))
    (sorted t);
  Format.fprintf ppf "@]"

let to_json t =
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, metric) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%S:" name);
      match metric with
      | Counter r -> Buffer.add_string buf (string_of_int !r)
      | Gauge r -> Buffer.add_string buf (float_str !r)
      | Histogram h ->
          Buffer.add_string buf
            (Printf.sprintf "{\"n\":%d,\"sum\":%s,\"max\":%s,\"buckets\":["
               h.observations (float_str h.sum)
               (float_str (if h.observations = 0 then 0.0 else h.max)));
          Array.iteri
            (fun i le ->
              if i > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf
                (Printf.sprintf "{\"le\":%s,\"count\":%d}" (float_str le)
                   h.counts.(i)))
            h.buckets;
          Buffer.add_string buf
            (Printf.sprintf ",{\"le\":\"+inf\",\"count\":%d}]}"
               h.counts.(Array.length h.buckets)))
    (sorted t);
  Buffer.add_char buf '}';
  Buffer.contents buf
