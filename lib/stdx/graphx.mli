(** Tiny directed-graph utilities for the lock-order analyses.

    Both the static C4 lint pass (lock names from source text) and the
    dynamic {!Lock} registry (lock ids observed at runtime) need the
    same question answered: does this edge set contain a cycle, and if
    so, which nodes form it? The answer is the list of strongly
    connected components that contain a cycle — an SCC of two or more
    nodes, or a single node with a self-edge.

    Results are deterministic: components and their members come back
    sorted by the supplied comparison, independent of edge order. *)

val cyclic_sccs :
  compare:('a -> 'a -> int) -> edges:('a * 'a) list -> 'a list list
(** [cyclic_sccs ~compare ~edges] returns every strongly connected
    component of the directed graph induced by [edges] that contains at
    least one cycle. Nodes are exactly the endpoints mentioned in
    [edges]; duplicate edges are fine. Each component is sorted with
    [compare], and the component list is sorted by its first element. *)

val reachable :
  compare:('a -> 'a -> int) -> edges:('a * 'a) list -> 'a -> 'a list
(** Nodes reachable from a start node by one or more edge steps (the
    start itself appears only if it lies on a cycle). Sorted. *)
