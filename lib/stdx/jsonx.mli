(** Minimal dependency-free JSON parser.

    Consumes the JSON the harnesses emit ({!Metrics.to_json}, the nemesis
    outcome JSON, [bench --json] files), for the bench drift check and
    for round-trip tests of the emitters' escaping. Numbers parse to
    [float]; [\u]-escaped code points decode to UTF-8. Not a validator:
    it accepts exactly standard JSON but reports errors by position only. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val of_string : string -> (t, string) result
(** Parse one complete JSON value (trailing whitespace allowed). *)

val encode : t -> string
(** Render as compact (single-line) JSON. [of_string (encode v)] is
    [Ok v] up to float formatting; strings escape per RFC 8259. *)

(** {2 Accessors} — [None] on kind mismatch. *)

val member : string -> t -> t option
val to_float : t -> float option
val to_string : t -> string option
val to_list : t -> t list option
