(** Crash-safe file helpers.

    Artifacts the fuzzer must be able to trust across interrupted runs —
    corpus entries, repro schedules, JSON progress snapshots — are
    written with the classic write-then-rename dance: the bytes land in
    a sibling [.tmp] file which is renamed over the target only once
    fully written. A reader therefore sees either the old file or the
    complete new one, never a torn prefix (rename within a directory is
    atomic on POSIX). *)

val ensure_dir : string -> unit
(** Create the directory if it does not exist (single level). *)

val write_atomic : path:string -> string -> unit
(** Write the contents to [path ^ ".tmp"], then rename over [path]. *)

val read_file : string -> (string, string) result
(** Whole-file read; [Error] carries the system message. *)
