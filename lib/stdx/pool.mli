(** Fixed-size domain pool for embarrassingly parallel work.

    [map ~jobs f xs] evaluates [f] over [xs] on up to [jobs] domains (the
    calling domain included) and returns the results in input order, so a
    parallel map is observably identical to [List.map f xs] whenever [f]
    is deterministic per item — each seed-sweep run owns its own
    {!Prng.t}, which is exactly that situation.

    Exception discipline: if any [f x] raises, the pool stops handing out
    new work, joins every domain, and re-raises the exception of the
    {e lowest} input index that failed (with its backtrace). Because
    indices are claimed in ascending order, that choice does not depend on
    domain scheduling, so failures are as reproducible as results. *)

val default_jobs : unit -> int
(** The [GCS_JOBS] environment variable (default 1, minimum 1). All the
    seed sweeps in the repository take their default parallelism from
    this. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ?jobs f xs]: results in input order. [jobs] defaults to
    {!default_jobs}; [jobs <= 1] (or a short list) degrades to
    [List.map] with no domains spawned. *)

val iter : ?jobs:int -> ('a -> unit) -> 'a list -> unit
