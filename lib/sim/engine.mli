open Gcs_core

(** Discrete-event network simulator implementing the paper's timed
    asynchronous model (Section 8's assumptions):

    - while a processor is {e good} it handles events immediately;
    - while {e bad} it takes no steps — events addressed to it are held and
      replayed when it recovers (state is preserved across crashes, as the
      paper assumes);
    - while {e ugly} each event is handled after one extra random delay;
    - a packet sent while the (directed) link is {e good} arrives within
      [delta]; while {e bad} it is dropped; while {e ugly} it is dropped
      with probability [ugly_drop_prob] or delayed by up to
      [ugly_delay_max] — never less than the good-link minimum (δ/2 with
      jitter, δ without), so a degraded link cannot beat a good one.

    Link status is sampled at send time. Self-addressed packets always
    arrive, after a negligible delay.

    Nodes are deterministic event handlers over private state; all
    randomness comes from the engine's PRNG, so runs are reproducible. *)

type config = {
  delta : float;  (** good-link delay bound δ *)
  jitter : bool;  (** deliver in (δ/2, δ] uniformly instead of exactly δ *)
  fifo : bool;
      (** enforce per-directed-link FIFO delivery (off by default: the
          paper's channels only bound delay; protocols that assume FIFO —
          e.g. the Lamport-timestamp baseline — turn this on). In FIFO mode
          the extra handling delay at an {e ugly} processor also preserves
          event arrival order, so per-link order survives degraded
          destinations. *)
  ugly_drop_prob : float;
  ugly_delay_max : float;
}

val default_config : delta:float -> config

(** The handler-facing types below are re-exports (with equations) of
    {!Gcs_transport.Iface}, the pluggable-transport seam: handlers built
    against this module run unchanged on any {!Gcs_transport.Iface.backend}
    — this simulator (packaged as {!Backend}) or the real multi-domain
    bus ({!Gcs_transport.Bus}). *)

type ('packet, 'out) effect = ('packet, 'out) Gcs_transport.Iface.effect =
  | Send of { dst : Proc.t; packet : 'packet }
  | Set_timer of { id : int; delay : float }
      (** (re-)arm timer [id]; any previously armed timer with the same id
          at this processor is superseded *)
  | Cancel_timer of { id : int }
  | Output of 'out  (** record an external event in the timed trace *)

type ('state, 'input, 'packet, 'out) handlers =
      ('state, 'input, 'packet, 'out) Gcs_transport.Iface.handlers = {
  on_start :
    Proc.t -> 'state -> 'state * ('packet, 'out) effect list;
  on_input :
    Proc.t -> now:float -> 'input -> 'state -> 'state * ('packet, 'out) effect list;
  on_packet :
    Proc.t ->
    now:float ->
    src:Proc.t ->
    'packet ->
    'state ->
    'state * ('packet, 'out) effect list;
  on_timer :
    Proc.t -> now:float -> id:int -> 'state -> 'state * ('packet, 'out) effect list;
}

type ('state, 'out) result = ('state, 'out) Gcs_transport.Iface.result = {
  trace : 'out Timed.t;
  final_states : 'state Proc.Map.t;
  events_processed : int;
  packets_sent : int;
  packets_dropped : int;
  statuses_applied : int;
      (** failure-status events applied from the [failures] schedule *)
  metrics : Gcs_stdx.Metrics.t;
      (** the registry passed to {!run} (or a fresh one), with the
          engine's [engine.*] section filled in: events processed,
          packets sent/dropped per link status, events held at bad and
          delayed at ugly processors, and the queue-depth high-water
          mark *)
}

val run :
  ?metrics:Gcs_stdx.Metrics.t ->
  ?observe:(Proc.t -> 'state -> 'state -> unit) ->
  config ->
  procs:Proc.t list ->
  handlers:('state, 'input, 'packet, 'out) handlers ->
  init:(Proc.t -> 'state) ->
  inputs:(float * Proc.t * 'input) list ->
  failures:(float * Fstatus.event) list ->
  until:float ->
  prng:Gcs_stdx.Prng.t ->
  ('state, 'out) result
(** [observe] (when given) is called with the pre- and post-state around
    every handler application, including the start-up calls — a pure
    observation hook (it must not mutate shared state that feeds back into
    the run). The schedule fuzzer uses it to derive abstract-state
    coverage from state transitions without recording state history. *)

