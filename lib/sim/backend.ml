let of_config (config : Engine.config) : Gcs_transport.Iface.backend =
  (module struct
    let name = "sim"

    let run ?metrics ?observe ?stop:_ _codec ~procs ~handlers ~init ~inputs
        ~failures ~until ~seed =
      Engine.run ?metrics ?observe config ~procs ~handlers ~init ~inputs
        ~failures ~until ~prng:(Gcs_stdx.Prng.create seed)
  end)
