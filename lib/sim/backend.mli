(** The simulator packaged as a pluggable transport backend.

    [of_config config] is {!Engine.run} behind the
    {!Gcs_transport.Iface.BACKEND} signature (named ["sim"]): the seed
    becomes the engine PRNG, packets travel by value (the codec is held
    only for the signature — encoding is exercised by the codec's own
    round-trip tests and by the bus), and [stop] is ignored because
    virtual time costs nothing. Byte-for-byte the pre-transport
    behavior: a run through [of_config] and a direct {!Engine.run} with
    [Prng.create seed] produce identical results. *)

val of_config : Engine.config -> Gcs_transport.Iface.backend
