open Gcs_core

type config = {
  delta : float;
  jitter : bool;
  fifo : bool;
  ugly_drop_prob : float;
  ugly_delay_max : float;
}

let default_config ~delta =
  {
    delta;
    jitter = true;
    fifo = false;
    ugly_drop_prob = 0.5;
    ugly_delay_max = delta *. 10.0;
  }

(* The handler-facing types are owned by Gcs_transport.Iface (the
   pluggable-transport seam) and re-exported here with equations, so
   pre-transport code written against Engine keeps compiling unchanged
   and handlers flow between backends without conversion. *)

type ('packet, 'out) effect = ('packet, 'out) Gcs_transport.Iface.effect =
  | Send of { dst : Proc.t; packet : 'packet }
  | Set_timer of { id : int; delay : float }
  | Cancel_timer of { id : int }
  | Output of 'out

type ('state, 'input, 'packet, 'out) handlers =
      ('state, 'input, 'packet, 'out) Gcs_transport.Iface.handlers = {
  on_start :
    Proc.t -> 'state -> 'state * ('packet, 'out) effect list;
  on_input :
    Proc.t -> now:float -> 'input -> 'state -> 'state * ('packet, 'out) effect list;
  on_packet :
    Proc.t ->
    now:float ->
    src:Proc.t ->
    'packet ->
    'state ->
    'state * ('packet, 'out) effect list;
  on_timer :
    Proc.t -> now:float -> id:int -> 'state -> 'state * ('packet, 'out) effect list;
}

type ('state, 'out) result = ('state, 'out) Gcs_transport.Iface.result = {
  trace : 'out Timed.t;
  final_states : 'state Proc.Map.t;
  events_processed : int;
  packets_sent : int;
  packets_dropped : int;
  statuses_applied : int;
  metrics : Gcs_stdx.Metrics.t;
}

type ('input, 'packet) payload =
  | Deliver of { src : Proc.t; packet : 'packet }
  | Timer of { id : int; epoch : int }
  | Input of 'input
  | Status of Fstatus.event

type ('input, 'packet) ev = {
  target : Proc.t option;  (* None for global status events *)
  payload : ('input, 'packet) payload;
  delayed_once : bool;
}

type ('state, 'input, 'packet, 'out) sim = {
  mutable queue : ('input, 'packet) ev Event_queue.t;
  mutable states : 'state Proc.Map.t;
  mutable tracker : Fstatus.tracker;
  mutable held : (('input, 'packet) ev list) Proc.Map.t;
      (* events addressed to a bad processor, newest first *)
  mutable timer_epochs : int Proc.Map.t Proc.Map.t;
      (* proc -> timer id -> epoch; reusing Proc.Map for int keys *)
  mutable last_delivery : float Proc.Map.t Proc.Map.t;
      (* src -> dst -> latest scheduled delivery time (fifo mode) *)
  mutable ugly_floor : float Proc.Map.t;
      (* proc -> latest re-scheduled handling time while ugly (fifo mode) *)
  mutable trace_rev : 'out Timed.event list;
  mutable events_processed : int;
  mutable packets_sent : int;
  mutable packets_dropped : int;
  mutable statuses_applied : int;
  (* Per-status breakdowns for the metrics registry. Kept as plain
     mutable ints — no hashtable lookups on the per-event hot path — and
     published into [metrics] once at the end of the run. *)
  mutable sent_good : int;
  mutable sent_self : int;
  mutable sent_ugly : int;
  mutable dropped_bad : int;
  mutable dropped_ugly : int;
  mutable events_held : int;
  mutable events_delayed_ugly : int;
  mutable max_queue_depth : int;
  config : config;
  prng : Gcs_stdx.Prng.t;
  handlers : ('state, 'input, 'packet, 'out) handlers;
  observe : (Proc.t -> 'state -> 'state -> unit) option;
      (* called with (pre, post) after every handler application; used by
         the fuzzer to derive abstract-state coverage without copying the
         whole state history into the trace *)
}

let timer_epoch sim p id =
  match Proc.Map.find_opt p sim.timer_epochs with
  | None -> 0
  | Some m -> ( match Proc.Map.find_opt id m with Some e -> e | None -> 0)

let bump_timer_epoch sim p id =
  let m =
    match Proc.Map.find_opt p sim.timer_epochs with
    | Some m -> m
    | None -> Proc.Map.empty
  in
  let e = timer_epoch sim p id + 1 in
  sim.timer_epochs <- Proc.Map.add p (Proc.Map.add id e m) sim.timer_epochs;
  e

let self_delay config = config.delta /. 100.0

let link_delay sim =
  if sim.config.jitter then
    (sim.config.delta /. 2.0)
    +. (Gcs_stdx.Prng.float sim.prng *. sim.config.delta /. 2.0)
  else sim.config.delta

(* The fastest a good link can deliver: δ/2 with jitter, exactly δ
   without. Ugly-link delays are floored here — an ugly link may delay or
   drop, but it must never deliver FASTER than a good link, or "degrading"
   a link would improve its latency for small sampled delays. *)
let good_link_min config = if config.jitter then config.delta /. 2.0 else config.delta

let schedule sim ~time ev = sim.queue <- Event_queue.add sim.queue ~time ev

let send_packet sim ~now ~src ~dst packet =
  sim.packets_sent <- sim.packets_sent + 1;
  let deliver delay =
    let time = now +. delay in
    let time =
      if not sim.config.fifo then time
      else begin
        (* FIFO links: never schedule a delivery before an earlier packet
           on the same directed link. *)
        let per_src =
          match Proc.Map.find_opt src sim.last_delivery with
          | Some m -> m
          | None -> Proc.Map.empty
        in
        let floor =
          match Proc.Map.find_opt dst per_src with
          | Some t -> t +. 1e-9
          | None -> 0.0
        in
        let time = max time floor in
        sim.last_delivery <-
          Proc.Map.add src (Proc.Map.add dst time per_src) sim.last_delivery;
        time
      end
    in
    schedule sim ~time
      { target = Some dst; payload = Deliver { src; packet }; delayed_once = false }
  in
  if Proc.equal src dst then begin
    sim.sent_self <- sim.sent_self + 1;
    deliver (self_delay sim.config)
  end
  else
    match Fstatus.link_status sim.tracker src dst with
    | Fstatus.Good ->
        sim.sent_good <- sim.sent_good + 1;
        deliver (link_delay sim)
    | Fstatus.Bad ->
        sim.packets_dropped <- sim.packets_dropped + 1;
        sim.dropped_bad <- sim.dropped_bad + 1
    | Fstatus.Ugly ->
        if Gcs_stdx.Prng.float sim.prng < sim.config.ugly_drop_prob then begin
          sim.packets_dropped <- sim.packets_dropped + 1;
          sim.dropped_ugly <- sim.dropped_ugly + 1
        end
        else begin
          sim.sent_ugly <- sim.sent_ugly + 1;
          deliver
            (max (good_link_min sim.config)
               (Gcs_stdx.Prng.float sim.prng *. sim.config.ugly_delay_max))
        end

let apply_effects sim ~now ~proc effects =
  List.iter
    (fun effect ->
      match effect with
      | Send { dst; packet } -> send_packet sim ~now ~src:proc ~dst packet
      | Set_timer { id; delay } ->
          let epoch = bump_timer_epoch sim proc id in
          schedule sim ~time:(now +. delay)
            { target = Some proc; payload = Timer { id; epoch }; delayed_once = false }
      | Cancel_timer { id } -> ignore (bump_timer_epoch sim proc id)
      | Output out -> sim.trace_rev <- Timed.action now out :: sim.trace_rev)
    effects

let handle sim ~now ~proc payload =
  let state = Proc.Map.find proc sim.states in
  let state', effects =
    match payload with
    | Deliver { src; packet } ->
        sim.handlers.on_packet proc ~now ~src packet state
    | Timer { id; epoch } ->
        if timer_epoch sim proc id = epoch then
          sim.handlers.on_timer proc ~now ~id state
        else (state, [])
    | Input input -> sim.handlers.on_input proc ~now input state
    | Status _ -> (state, [])
  in
  sim.states <- Proc.Map.add proc state' sim.states;
  (match sim.observe with Some f -> f proc state state' | None -> ());
  apply_effects sim ~now ~proc effects

let release_held sim ~now proc =
  match Proc.Map.find_opt proc sim.held with
  | None -> ()
  | Some held ->
      (* Remove the key outright — re-adding an empty list would leak one
         map entry per recovered processor for the rest of the run. *)
      sim.held <- Proc.Map.remove proc sim.held;
      (* Replay in original arrival order. *)
      List.iter (fun ev -> schedule sim ~time:now ev) (List.rev held)

let process_event sim ~now ev =
  sim.events_processed <- sim.events_processed + 1;
  match ev.payload with
  | Status status_event ->
      sim.tracker <- Fstatus.apply sim.tracker status_event;
      sim.statuses_applied <- sim.statuses_applied + 1;
      sim.trace_rev <- Timed.status now status_event :: sim.trace_rev;
      (match status_event with
      | Fstatus.Proc_status (p, (Fstatus.Good | Fstatus.Ugly)) ->
          release_held sim ~now p
      | _ -> ())
  | Deliver _ | Timer _ | Input _ -> (
      let proc =
        match ev.target with
        | Some p -> p
        | None ->
            (* Only Status events carry [target = None]; reaching this with
               a processor event means the scheduler put a mis-addressed
               event in the queue. Name the time and payload kind rather
               than dying with an anonymous [Option.get]. *)
            invalid_arg
              (Printf.sprintf
                 "Engine: invariant violation at t=%.3f: %s event has no \
                  target processor"
                 now
                 (match ev.payload with
                 | Deliver _ -> "deliver"
                 | Timer _ -> "timer"
                 | Input _ -> "input"
                 | Status _ -> "status"))
      in
      match Fstatus.proc_status sim.tracker proc with
      | Fstatus.Bad ->
          let held =
            match Proc.Map.find_opt proc sim.held with
            | Some l -> l
            | None -> []
          in
          sim.events_held <- sim.events_held + 1;
          sim.held <- Proc.Map.add proc (ev :: held) sim.held
      | Fstatus.Ugly when not ev.delayed_once ->
          sim.events_delayed_ugly <- sim.events_delayed_ugly + 1;
          let delay =
            Gcs_stdx.Prng.float sim.prng *. sim.config.ugly_delay_max
          in
          let time = now +. delay in
          let time =
            if not sim.config.fifo then time
            else begin
              (* FIFO mode: the extra handling delay of an ugly processor
                 must not reorder events — re-scheduled events keep their
                 arrival order. *)
              let floor =
                match Proc.Map.find_opt proc sim.ugly_floor with
                | Some t -> t +. 1e-9
                | None -> 0.0
              in
              let time = max time floor in
              sim.ugly_floor <- Proc.Map.add proc time sim.ugly_floor;
              time
            end
          in
          schedule sim ~time { ev with delayed_once = true }
      | Fstatus.Good | Fstatus.Ugly -> handle sim ~now ~proc ev.payload)

let run ?metrics ?observe config ~procs ~handlers ~init ~inputs ~failures
    ~until ~prng =
  let metrics =
    match metrics with Some m -> m | None -> Gcs_stdx.Metrics.create ()
  in
  let sim =
    {
      queue = Event_queue.empty;
      states =
        List.fold_left (fun acc p -> Proc.Map.add p (init p) acc) Proc.Map.empty
          procs;
      tracker = Fstatus.initial;
      held = Proc.Map.empty;
      timer_epochs = Proc.Map.empty;
      last_delivery = Proc.Map.empty;
      ugly_floor = Proc.Map.empty;
      trace_rev = [];
      events_processed = 0;
      packets_sent = 0;
      packets_dropped = 0;
      statuses_applied = 0;
      sent_good = 0;
      sent_self = 0;
      sent_ugly = 0;
      dropped_bad = 0;
      dropped_ugly = 0;
      events_held = 0;
      events_delayed_ugly = 0;
      max_queue_depth = 0;
      config;
      prng;
      handlers;
      observe;
    }
  in
  List.iter
    (fun (time, proc, input) ->
      schedule sim ~time
        { target = Some proc; payload = Input input; delayed_once = false })
    inputs;
  List.iter
    (fun (time, event) ->
      schedule sim ~time { target = None; payload = Status event; delayed_once = false })
    failures;
  (* Start every node at time 0. *)
  List.iter
    (fun proc ->
      let state = Proc.Map.find proc sim.states in
      let state', effects = handlers.on_start proc state in
      sim.states <- Proc.Map.add proc state' sim.states;
      (match observe with Some f -> f proc state state' | None -> ());
      apply_effects sim ~now:0.0 ~proc effects)
    procs;
  let rec loop () =
    let depth = Event_queue.size sim.queue in
    if depth > sim.max_queue_depth then sim.max_queue_depth <- depth;
    match Event_queue.pop sim.queue with
    | None -> ()
    | Some (time, ev, rest) ->
        if time > until then ()
        else begin
          sim.queue <- rest;
          process_event sim ~now:time ev;
          loop ()
        end
  in
  loop ();
  let c name v = Gcs_stdx.Metrics.incr ~by:v metrics name in
  c "engine.events_processed" sim.events_processed;
  c "engine.statuses_applied" sim.statuses_applied;
  c "engine.packets_sent" sim.packets_sent;
  c "engine.packets_dropped" sim.packets_dropped;
  c "engine.packets_sent.good" sim.sent_good;
  c "engine.packets_sent.self" sim.sent_self;
  c "engine.packets_sent.ugly" sim.sent_ugly;
  c "engine.packets_dropped.bad" sim.dropped_bad;
  c "engine.packets_dropped.ugly" sim.dropped_ugly;
  c "engine.events_held.bad" sim.events_held;
  c "engine.events_delayed.ugly" sim.events_delayed_ugly;
  Gcs_stdx.Metrics.max_gauge metrics "engine.queue_depth.max"
    (float_of_int sim.max_queue_depth);
  {
    trace = List.rev sim.trace_rev;
    final_states = sim.states;
    events_processed = sim.events_processed;
    packets_sent = sim.packets_sent;
    packets_dropped = sim.packets_dropped;
    statuses_applied = sim.statuses_applied;
    metrics;
  }
