open Gcs_core

(** Baseline: fixed-sequencer totally ordered broadcast.

    Every submission is forwarded to a distinguished sequencer (processor
    0), which assigns consecutive sequence numbers and broadcasts; each
    node delivers in sequence-number order. In a well-behaved network this
    is the latency floor (2 hops + reorder buffering), but it is not
    partition-tolerant: nodes cut off from the sequencer stall, and there
    is no reconciliation — exactly the design point the paper's
    partitionable service improves on. *)

type config = { procs : Proc.t list; sequencer : Proc.t }

val make_config : procs:Proc.t list -> config
(** Sequencer defaults to the smallest processor id. *)

type run = {
  trace : Value.t To_action.t Timed.t;
  packets_sent : int;
  packets_dropped : int;
}

val run :
  ?engine:Gcs_sim.Engine.config ->
  delta:float ->
  config ->
  workload:(float * Proc.t * Value.t) list ->
  failures:(float * Fstatus.event) list ->
  until:float ->
  seed:int ->
  run

type packet =
  | Request of { origin : Proc.t; value : Value.t }
  | Ordered of { seq : int; origin : Proc.t; value : Value.t }

val encode_packet : packet -> string
val decode_packet : string -> (packet, string) result
val packet_codec : packet Gcs_transport.Iface.codec

val run_on :
  ?metrics:Gcs_stdx.Metrics.t ->
  ?stop:(now:float -> outputs:int -> bool) ->
  backend:Gcs_transport.Iface.backend ->
  config ->
  workload:(float * Proc.t * Value.t) list ->
  failures:(float * Fstatus.event) list ->
  until:float ->
  seed:int ->
  run
(** The baseline on a pluggable transport via {!packet_codec}, for
    wall-clock bench comparisons against the partitionable stacks. *)

val to_conforms : config -> run -> (unit, To_trace_checker.error) result
val deliveries : run -> int
