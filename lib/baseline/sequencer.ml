open Gcs_core
open Gcs_sim

type config = { procs : Proc.t list; sequencer : Proc.t }

let make_config ~procs =
  match procs with
  | [] -> invalid_arg "Sequencer.make_config: empty processor list"
  | p :: rest -> { procs; sequencer = List.fold_left min p rest }

type packet =
  | Request of { origin : Proc.t; value : Value.t }
  | Ordered of { seq : int; origin : Proc.t; value : Value.t }

type node = {
  me : Proc.t;
  next_seq : int;  (* sequencer only: next number to assign *)
  next_deliver : int;  (* next sequence number to deliver *)
  pending : (int * Proc.t * Value.t) list;  (* out-of-order buffer *)
}

type run = {
  trace : Value.t To_action.t Timed.t;
  packets_sent : int;
  packets_dropped : int;
}

let initial me = { me; next_seq = 1; next_deliver = 1; pending = [] }

(* Deliver every buffered message that is next in sequence. *)
let rec drain node =
  match
    List.find_opt (fun (seq, _, _) -> seq = node.next_deliver) node.pending
  with
  | None -> (node, [])
  | Some ((seq, origin, value) as entry) ->
      let node =
        {
          node with
          next_deliver = seq + 1;
          pending = List.filter (fun e -> e <> entry) node.pending;
        }
      in
      let node, rest = drain node in
      ( node,
        Engine.Output (To_action.Brcv { src = origin; dst = node.me; value })
        :: rest )

let handlers config =
  let on_start _me node = (node, []) in
  let on_input me ~now:_ value node =
    let record = Engine.Output (To_action.Bcast (me, value)) in
    ( node,
      [
        record;
        Engine.Send
          {
            dst = config.sequencer;
            packet = Request { origin = me; value };
          };
      ] )
  in
  let on_packet me ~now:_ ~src:_ packet node =
    match packet with
    | Request { origin; value } ->
        if not (Proc.equal me config.sequencer) then (node, [])
        else
          let seq = node.next_seq in
          let node = { node with next_seq = seq + 1 } in
          ( node,
            List.map
              (fun dst ->
                Engine.Send { dst; packet = Ordered { seq; origin; value } })
              config.procs )
    | Ordered { seq; origin; value } ->
        if seq < node.next_deliver then (node, [])
        else
          let node =
            { node with pending = (seq, origin, value) :: node.pending }
          in
          drain node
  in
  let on_timer _me ~now:_ ~id:_ node = (node, []) in
  { Engine.on_start; on_input; on_packet; on_timer }

let run ?engine ~delta config ~workload ~failures ~until ~seed =
  let engine_config =
    match engine with Some c -> c | None -> Engine.default_config ~delta
  in
  let result =
    Engine.run engine_config ~procs:config.procs ~handlers:(handlers config)
      ~init:initial ~inputs:workload ~failures ~until
      ~prng:(Gcs_stdx.Prng.create seed)
  in
  {
    trace = result.Engine.trace;
    packets_sent = result.Engine.packets_sent;
    packets_dropped = result.Engine.packets_dropped;
  }

(* Byte codec over the shared field framing, so the baseline can run on
   the bus for wall-clock comparisons against VStoTO and Skeen. *)

module W = Gcs_impl.Wire

let ( let* ) = Result.bind

let encode_packet = function
  | Request { origin; value } ->
      W.Framing.encode [ "r"; string_of_int origin; value ]
  | Ordered { seq; origin; value } ->
      W.Framing.encode [ "o"; string_of_int seq; string_of_int origin; value ]

let decode_packet s =
  let* fs = W.fields_of "sequencer packet" s in
  match fs with
  | [ "r"; origin; value ] ->
      let* origin = W.int_of "request.origin" origin in
      Ok (Request { origin; value })
  | [ "o"; seq; origin; value ] ->
      let* seq = W.int_of "ordered.seq" seq in
      let* origin = W.int_of "ordered.origin" origin in
      Ok (Ordered { seq; origin; value })
  | _ -> Error (Printf.sprintf "sequencer packet: unknown shape %S" s)

let packet_codec : packet Gcs_transport.Iface.codec =
  { enc = encode_packet; dec = decode_packet }

let run_on ?metrics ?stop ~backend config ~workload ~failures ~until ~seed =
  let (module B : Gcs_transport.Iface.BACKEND) = backend in
  let result =
    B.run ?metrics ?stop packet_codec ~procs:config.procs
      ~handlers:(handlers config) ~init:initial ~inputs:workload ~failures
      ~until ~seed
  in
  {
    trace = result.Gcs_transport.Iface.trace;
    packets_sent = result.Gcs_transport.Iface.packets_sent;
    packets_dropped = result.Gcs_transport.Iface.packets_dropped;
  }

let to_conforms config r =
  let params = { To_machine.procs = config.procs; equal_value = Value.equal } in
  To_trace_checker.check params (List.map snd (Timed.actions r.trace))

let deliveries r =
  List.length
    (List.filter
       (fun (_, a) -> match a with To_action.Brcv _ -> true | _ -> false)
       (Timed.actions r.trace))
