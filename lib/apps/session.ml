open Gcs_core
open Gcs_impl
module Smap = Map.Make (String)

type op = Write of { loc : string; value : string } | Read of { loc : string }

type completion = {
  proc : Proc.t;
  op : op;
  result : string option;
  issued : float;
  completed : float;
}

type run = {
  completions : completion list;
  to_trace : Value.t To_action.t Timed.t;
}

(* Session-level wire encoding: a per-process sequence number makes every
   submitted value unique, so a write completion can be matched
   unambiguously against the local delivery of that exact value. *)
let encode_write ~proc ~seq ~loc ~value =
  Codec.encode [ "sw"; Codec.int_field proc; Codec.int_field seq; loc; value ]

let decode_write v =
  match Codec.decode v with
  | Some [ "sw"; _proc; _seq; loc; value ] -> Some (loc, value)
  | Some _ | None -> None

type node = {
  base : To_service.node;
  script : op list;  (* remaining operations *)
  pending : Value.t option;  (* encoded write awaiting local delivery *)
  replica : string Smap.t;
  next_seq : int;
  issued_at : float;
}

type out = Base of To_service.out | Done of completion

(* Issue operations until the script blocks on a write (or ends). Reads
   complete immediately against the local replica. *)
let rec issue base_handlers config me ~now node acc =
  match node.script with
  | [] -> (node, List.rev acc)
  | Read { loc } :: rest ->
      let completion =
        {
          proc = me;
          op = Read { loc };
          result = Smap.find_opt loc node.replica;
          issued = now;
          completed = now;
        }
      in
      issue base_handlers config me ~now
        { node with script = rest }
        (Gcs_sim.Engine.Output (Done completion) :: acc)
  | Write { loc; value } :: rest ->
      let encoded =
        encode_write ~proc:me ~seq:node.next_seq ~loc ~value
      in
      let base', effects =
        base_handlers.Gcs_sim.Engine.on_input me ~now encoded node.base
      in
      let node =
        {
          node with
          base = base';
          script = rest;
          pending = Some encoded;
          next_seq = node.next_seq + 1;
          issued_at = now;
        }
      in
      (* Keep the base effects; stop issuing until the write completes. *)
      ( node,
        List.rev acc
        @ List.map
            (fun e ->
              match e with
              | Gcs_sim.Engine.Output o -> Gcs_sim.Engine.Output (Base o)
              | Gcs_sim.Engine.Send s -> Gcs_sim.Engine.Send s
              | Gcs_sim.Engine.Set_timer t -> Gcs_sim.Engine.Set_timer t
              | Gcs_sim.Engine.Cancel_timer c -> Gcs_sim.Engine.Cancel_timer c)
            effects )

(* Route effects coming out of the base service: apply local deliveries to
   the replica, detect the pending write's completion, re-tag outputs. *)
let route base_handlers config me ~now (node, effects) =
  let rec go node acc = function
    | [] -> (node, List.rev acc)
    | Gcs_sim.Engine.Output (To_service.Client (To_action.Brcv { src; dst; value }) as o)
      :: rest
      when Proc.equal dst me ->
        let node =
          match decode_write value with
          | Some (loc, v) ->
              { node with replica = Smap.add loc v node.replica }
          | None -> node
        in
        let node, completion_effects =
          match node.pending with
          | Some pending when Proc.equal src me && Value.equal pending value ->
              let completion =
                match decode_write value with
                | Some (loc, v) ->
                    {
                      proc = me;
                      op = Write { loc; value = v };
                      result = None;
                      issued = node.issued_at;
                      completed = now;
                    }
                | None ->
                    invalid_arg "session: undecodable pending write"
              in
              let node = { node with pending = None } in
              let node, issued =
                issue base_handlers config me ~now node []
              in
              (node, Gcs_sim.Engine.Output (Done completion) :: issued)
          | _ -> (node, [])
        in
        go node
          (List.rev_append completion_effects
             (Gcs_sim.Engine.Output (Base o) :: acc))
          rest
    | Gcs_sim.Engine.Output o :: rest ->
        go node (Gcs_sim.Engine.Output (Base o) :: acc) rest
    | Gcs_sim.Engine.Send s :: rest -> go node (Gcs_sim.Engine.Send s :: acc) rest
    | Gcs_sim.Engine.Set_timer t :: rest ->
        go node (Gcs_sim.Engine.Set_timer t :: acc) rest
    | Gcs_sim.Engine.Cancel_timer c :: rest ->
        go node (Gcs_sim.Engine.Cancel_timer c :: acc) rest
  in
  go node [] effects

let handlers config =
  let base = To_service.handlers config in
  let lift me ~now f node =
    let base', effects = f node.base in
    route base config me ~now ({ node with base = base' }, effects)
  in
  let on_start me node =
    lift me ~now:0.0 (base.Gcs_sim.Engine.on_start me) node
  in
  let on_input me ~now script node =
    (* The script arrives as the engine input; start the session. *)
    let node = { node with script = node.script @ script } in
    if node.pending = None then issue base config me ~now node []
    else (node, [])
  in
  let on_packet me ~now ~src packet node =
    lift me ~now (base.Gcs_sim.Engine.on_packet me ~now ~src packet) node
  in
  let on_timer me ~now ~id node =
    lift me ~now (base.Gcs_sim.Engine.on_timer me ~now ~id) node
  in
  { Gcs_sim.Engine.on_start; on_input; on_packet; on_timer }

let initial config me =
  {
    base = To_service.initial config me;
    script = [];
    pending = None;
    replica = Smap.empty;
    next_seq = 1;
    issued_at = 0.0;
  }

let run ?engine config ~scripts ~failures ~until ~seed =
  let engine_config =
    match engine with
    | Some c -> c
    | None ->
        Gcs_sim.Engine.default_config
          ~delta:config.To_service.vs.Vs_node.delta
  in
  let inputs = List.map (fun (p, t0, ops) -> (t0, p, ops)) scripts in
  let result =
    Gcs_sim.Engine.run engine_config ~procs:config.To_service.vs.Vs_node.procs
      ~handlers:(handlers config) ~init:(initial config) ~inputs ~failures
      ~until
      ~prng:(Gcs_stdx.Prng.create seed)
  in
  let completions =
    List.filter_map
      (fun (_, o) -> match o with Done c -> Some c | Base _ -> None)
      (Timed.actions result.Gcs_sim.Engine.trace)
  in
  let to_trace =
    Timed.map
      (function
        | Base (To_service.Client a) -> Some a
        | Base (To_service.Vs_layer _) | Done _ -> None)
      result.Gcs_sim.Engine.trace
  in
  { completions; to_trace }

let history run =
  let by_proc = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let ops =
        Option.value ~default:[] (Hashtbl.find_opt by_proc c.proc)
      in
      Hashtbl.replace by_proc c.proc (ops @ [ c ]))
    run.completions;
  (* Sanctioned D1 sink: the fold's result is piped straight into
     List.sort, so the hash iteration order never escapes. *)
  Hashtbl.fold
    (fun proc cs acc ->
      ( proc,
        List.map
          (fun c ->
            match c.op with
            | Write { loc; value } -> Sc_checker.Write { loc; value }
            | Read { loc } -> Sc_checker.Read { loc; result = c.result })
          cs )
      :: acc)
    by_proc []
  |> List.sort compare
