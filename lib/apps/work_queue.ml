open Gcs_core

type execution = { task : string; executor : Proc.t; time : float }

let task_hash task =
  (* FNV-1a, folded to a non-negative int. *)
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0x3FFFFFFF)
    task;
  !h

let owner (view : View.t) task =
  let members = Proc.Set.elements view.View.set in
  List.nth members (task_hash task mod List.length members)

let executions ~p0 trace =
  let current = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace current p (View.initial p0)) p0;
  List.rev
    (List.fold_left
       (fun acc (time, action) ->
         match action with
         | Vs_action.Newview { proc; view } ->
             Hashtbl.replace current proc view;
             acc
         | Vs_action.Gprcv { dst; msg = task; _ } -> (
             match Hashtbl.find_opt current dst with
             | Some view when Proc.equal (owner view task) dst ->
                 { task; executor = dst; time } :: acc
             | _ -> acc)
         | _ -> acc)
       []
       (Timed.actions trace))

let counts_by_executor executions =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      Hashtbl.replace tbl e.executor
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl e.executor)))
    executions;
  (* Sanctioned D1 sink: the fold feeds List.sort directly, so the hash
     iteration order never escapes. *)
  List.sort compare (Hashtbl.fold (fun p c acc -> (p, c) :: acc) tbl [])

let exactly_once ~tasks executions =
  List.for_all
    (fun task ->
      List.length (List.filter (fun e -> String.equal e.task task) executions)
      = 1)
    tasks
