(* Air traffic control: sector ownership with consistent handoffs, after
   the paper's air-traffic-control motivation (Section 1). Controller
   workstations replicate a registry mapping airspace sectors to the
   controller responsible for them. A handoff is a write through the
   totally ordered broadcast: it takes effect only once confirmed, so two
   controllers can never both believe they own a sector — even across
   partitions, because the minority side cannot confirm anything.

   Run with: dune exec examples/air_traffic.exe *)

open Gcs_core
open Gcs_impl
open Gcs_apps
module Registry = Rsm.Make (Kv_store)

let procs = Proc.all ~n:5
let vs_config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }
let config = To_service.make_config vs_config

let handoff station sector controller time =
  Registry.submit station (Kv_store.Put (sector, controller)) time

let () =
  Format.printf "== Air sector control: consistent handoffs over VStoTO ==@.@.";
  let workload =
    [
      (* Initial assignment. *)
      handoff 0 "sector-N" "alice" 10.0;
      handoff 0 "sector-S" "bob" 12.0;
      handoff 1 "sector-E" "carol" 14.0;
      (* Normal handoff before the partition. *)
      handoff 1 "sector-N" "dave" 40.0;
      (* During the partition (t=80..220): station 4 (minority) attempts a
         handoff of sector-S; it cannot be confirmed and must not take
         effect anywhere until the merge. The majority reassigns
         sector-E meanwhile. *)
      handoff 4 "sector-S" "eve" 120.0;
      handoff 2 "sector-E" "frank" 140.0;
    ]
  in
  let failures =
    List.map
      (fun e -> (80.0, e))
      (Fstatus.partition_events ~parts:[ [ 0; 1; 2 ]; [ 3; 4 ] ])
    @ List.map (fun e -> (220.0, e)) (Fstatus.heal_events ~procs)
  in
  let run = To_service.run config ~workload ~failures ~until:500.0 ~seed:99 in
  let trace = To_service.client_trace run in

  let show label time =
    Format.printf "--- %s (t=%.0f) ---@." label time;
    List.iter
      (fun station ->
        match Registry.state_at station ~time trace with
        | Ok registry ->
            let owner sector =
              match Kv_store.get registry sector with
              | Some c -> c
              | None -> "(unassigned)"
            in
            Format.printf "  station %d: N->%s S->%s E->%s@." station
              (owner "sector-N") (owner "sector-S") (owner "sector-E")
        | Error e -> Format.printf "  station %d: error %s@." station e)
      procs;
    Format.printf "@."
  in
  show "initial assignments" 70.0;
  show "during the partition" 200.0;
  show "after the merge" 480.0;

  (* The invariant that matters to controllers: at no time do two stations
     disagree about a sector's owner in a *confirmed* registry state at
     the same applied-operation count; operationally, the replicas'
     operation sequences are prefixes of one another. *)
  let actions = List.map snd (Timed.actions trace) in
  Format.printf "registry consistency (no dual ownership): %s@."
    (if Registry.consistent procs actions then "OK" else "VIOLATED");
  (* Eve's partitioned handoff exists but only takes effect post-merge. *)
  (match Registry.state_at 0 ~time:210.0 trace with
  | Ok registry ->
      Format.printf "while partitioned, sector-S at station 0 is owned by %s@."
        (Option.value ~default:"(unassigned)" (Kv_store.get registry "sector-S"))
  | Error e -> Format.printf "error: %s@." e);
  match Registry.state_at 0 ~time:480.0 trace with
  | Ok registry ->
      Format.printf "after the merge, sector-S at station 0 is owned by %s@."
        (Option.value ~default:"(unassigned)" (Kv_store.get registry "sector-S"))
  | Error e -> Format.printf "error: %s@." e
