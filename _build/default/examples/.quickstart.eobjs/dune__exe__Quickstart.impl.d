examples/quickstart.ml: Format Fstatus Gcs_apps Gcs_core Gcs_impl Gcs_stdx List Printf Proc String Timed To_action To_property To_service To_trace_checker View Vs_action Vs_node
