examples/replicated_kv.ml: Format Fstatus Gcs_apps Gcs_baseline Gcs_core Gcs_impl List Option Proc Sequencer To_service Vs_node
