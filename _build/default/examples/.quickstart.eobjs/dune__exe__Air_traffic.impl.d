examples/air_traffic.ml: Format Fstatus Gcs_apps Gcs_core Gcs_impl Kv_store List Option Proc Rsm Timed To_service Vs_node
