examples/trading_floor.mli:
