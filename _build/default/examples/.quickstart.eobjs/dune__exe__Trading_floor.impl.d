examples/trading_floor.ml: Format Fstatus Gcs_apps Gcs_core Gcs_impl List Order_book Proc Rsm Timed To_service To_trace_checker Vs_node
