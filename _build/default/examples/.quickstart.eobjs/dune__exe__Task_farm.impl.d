examples/task_farm.ml: Format Fstatus Gcs_apps Gcs_core Gcs_impl List Printf Proc String Vs_node Vs_service Work_queue
