examples/quickstart.mli:
