(* Quickstart: a five-processor group sends messages through the
   partitionable totally ordered broadcast service (VStoTO over the
   Section 8 VS implementation), survives a partition, and reconciles
   after the network heals.

   Run with: dune exec examples/quickstart.exe *)

open Gcs_core
open Gcs_impl

let procs = Proc.all ~n:5
let vs_config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }
let config = To_service.make_config vs_config

let () =
  Format.printf "== Quickstart: partitionable totally ordered broadcast ==@.";
  Format.printf "processors: %d, delta=%.1f pi=%.1f mu=%.1f@.@."
    (List.length procs) vs_config.Vs_node.delta vs_config.Vs_node.pi
    vs_config.Vs_node.mu;

  (* Each processor submits a few values; at t=120 the network splits into
     a majority {0,1,2} and a minority {3,4}; at t=240 it heals. *)
  let workload =
    List.concat_map
      (fun p ->
        List.init 4 (fun k ->
            ( 10.0 +. (float_of_int k *. 55.0) +. float_of_int p,
              p,
              Printf.sprintf "hello-%d.%d" p k )))
      procs
  in
  let failures =
    List.map
      (fun e -> (120.0, e))
      (Fstatus.partition_events ~parts:[ [ 0; 1; 2 ]; [ 3; 4 ] ])
    @ List.map (fun e -> (240.0, e)) (Fstatus.heal_events ~procs)
  in
  let run = To_service.run config ~workload ~failures ~until:500.0 ~seed:2024 in

  (* Views observed over time. *)
  Format.printf "--- view changes ---@.";
  List.iter
    (fun (t, a) ->
      match a with
      | Vs_action.Newview { proc; view } ->
          Format.printf "  t=%6.1f newview %a at processor %a@." t View.pp view
            Proc.pp proc
      | _ -> ())
    (Timed.actions (To_service.vs_trace run));

  (* The per-processor delivered sequences: prefixes of one total order. *)
  Format.printf "@.--- delivered sequences ---@.";
  let deliveries_at p =
    List.filter_map
      (fun (_, a) ->
        match a with
        | To_action.Brcv { dst; value; _ } when Proc.equal dst p -> Some value
        | _ -> None)
      (Timed.actions (To_service.client_trace run))
  in
  List.iter
    (fun p ->
      let seq = deliveries_at p in
      Format.printf "  processor %d delivered %d values: %s ...@." p
        (List.length seq)
        (String.concat " " (Gcs_stdx.Seqx.take 6 seq)))
    procs;

  (* A picture of the run: submissions (s), deliveries (+), views (V),
     network events (!). The partition at t=120 and heal at t=240 are
     clearly visible as view changes and delivery gaps. *)
  Format.printf "@.--- timeline ---@.%s@."
    (Gcs_apps.Timeline.of_to_service_run ~procs ~width:96 ~until:500.0 run);

  (* Safety: the whole client trace is a trace of the TO specification. *)
  (match To_service.to_conforms config run with
  | Ok () -> Format.printf "@.TO-machine conformance: OK@."
  | Error e ->
      Format.printf "@.TO-machine conformance: FAILED (%a)@."
        To_trace_checker.pp_error e);

  (* And timeliness after stabilization (Theorem 7.1 shape). *)
  let b = Vs_node.impl_b vs_config +. Vs_node.impl_d vs_config in
  let d = Vs_node.impl_d vs_config +. 4.0 in
  let report =
    To_property.check ~b ~d ~q:procs ~horizon:500.0
      (To_service.client_trace run)
  in
  Format.printf "TO-property(b=%.1f, d=%.1f, Q=all): %s@." b d
    (if To_property.holds report then "holds" else "violated");
  Format.printf "  (stabilized at t=%.1f, %d delivery obligations checked)@."
    report.To_property.stabilization_time report.To_property.obligations
