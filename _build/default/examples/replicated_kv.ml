(* Replicated key-value store with sequentially consistent reads
   (footnote 3 of the paper): writes travel through the totally ordered
   broadcast, reads are served from the local replica. This example also
   contrasts the partitionable service with the fixed-sequencer baseline.

   Run with: dune exec examples/replicated_kv.exe *)

open Gcs_core
open Gcs_impl
open Gcs_baseline

let procs = Proc.all ~n:4
let vs_config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }
let config = To_service.make_config vs_config

let () =
  Format.printf "== Replicated KV: sequentially consistent memory ==@.@.";
  let workload =
    [
      Gcs_apps.Seq_memory.write_submission 0 ~loc:"x" ~value:"1" 10.0;
      Gcs_apps.Seq_memory.write_submission 1 ~loc:"y" ~value:"2" 20.0;
      Gcs_apps.Seq_memory.write_submission 2 ~loc:"x" ~value:"3" 30.0;
      Gcs_apps.Seq_memory.write_submission 3 ~loc:"y" ~value:"4" 40.0;
      Gcs_apps.Seq_memory.write_submission 0 ~loc:"x" ~value:"5" 50.0;
    ]
  in
  let run = To_service.run config ~workload ~failures:[] ~until:300.0 ~seed:1 in
  let trace = To_service.client_trace run in

  (* Local reads at various points in time: each returns the replica's
     current value; replicas may lag (prefixes), never diverge. *)
  let read_points =
    List.concat_map
      (fun p -> [ (p, 35.0, "x"); (p, 65.0, "x"); (p, 290.0, "x"); (p, 290.0, "y") ])
      procs
  in
  (match Gcs_apps.Seq_memory.perform_reads trace read_points with
  | Error e -> Format.printf "error: %s@." e
  | Ok reads ->
      Format.printf "--- local reads (processor, time, loc -> value) ---@.";
      List.iter
        (fun (r : Gcs_apps.Seq_memory.read_event) ->
          Format.printf "  p%d t=%5.1f %s -> %s@." r.proc r.time r.loc
            (Option.value ~default:"(none)" r.result))
        reads;
      Format.printf "@.read discipline respected: %s@.@."
        (if Gcs_apps.Seq_memory.reads_are_consistent trace reads then "OK"
         else "VIOLATED"));

  (* Availability comparison with the fixed sequencer under a partition
     that isolates the sequencer. *)
  Format.printf "--- availability under partition (sequencer isolated) ---@.";
  let seq_config = Sequencer.make_config ~procs in
  let failures =
    List.map
      (fun e -> (30.0, e))
      (Fstatus.partition_events ~parts:[ [ 0 ]; [ 1; 2; 3 ] ])
  in
  let wl =
    List.init 5 (fun i ->
        Gcs_apps.Seq_memory.write_submission
          (1 + (i mod 3))
          ~loc:"z" ~value:(string_of_int i)
          (60.0 +. (float_of_int i *. 10.0)))
  in
  let seq_run =
    Sequencer.run ~delta:1.0 seq_config ~workload:wl ~failures ~until:400.0
      ~seed:2
  in
  let vstoto_run = To_service.run config ~workload:wl ~failures ~until:400.0 ~seed:2 in
  Format.printf "  fixed sequencer: %d deliveries (stalled — sequencer cut off)@."
    (Sequencer.deliveries seq_run);
  Format.printf "  VStoTO:          %d deliveries (majority formed its own primary view)@."
    (To_service.deliveries vstoto_run)
