(* Trading floor: a replicated limit-order book in the style of the
   paper's stock-exchange motivation (Section 1). Five "floors" each run a
   replica; orders are disseminated through the partitionable totally
   ordered broadcast, so every floor matches the same trades in the same
   order. When the network splits, the majority keeps trading and the
   minority freezes; after the merge, the minority's pending orders are
   reconciled into the shared book.

   Run with: dune exec examples/trading_floor.exe *)

open Gcs_core
open Gcs_impl
open Gcs_apps
module Book_rsm = Rsm.Make (Order_book)

let procs = Proc.all ~n:5
let vs_config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }
let config = To_service.make_config vs_config

let submit floor op time = Book_rsm.submit floor op time

let () =
  Format.printf "== Trading floor: replicated order book over VStoTO ==@.@.";
  let order id side price qty = Order_book.Submit { id; side; price; qty } in
  (* Phase 1 (stable): cross of buys and sells. *)
  let phase1 =
    [
      submit 0 (order 1 Order_book.Buy 100 10) 10.0;
      submit 1 (order 2 Order_book.Sell 101 5) 12.0;
      submit 2 (order 3 Order_book.Sell 100 4) 14.0 (* trades with #1 *);
      submit 3 (order 4 Order_book.Buy 99 8) 16.0;
      submit 4 (order 5 Order_book.Sell 99 6) 18.0 (* trades with #1/#4 *);
    ]
  in
  (* Partition at t=60: floors {0,1,2} (majority) trade on; {3,4} freeze. *)
  let phase2 =
    [
      submit 0 (order 6 Order_book.Buy 102 3) 100.0;
      submit 1 (order 7 Order_book.Sell 98 3) 110.0 (* majority trade *);
      submit 3 (order 8 Order_book.Buy 103 9) 120.0 (* frozen in minority *);
      submit 4 (order 9 Order_book.Sell 97 2) 130.0 (* frozen in minority *);
    ]
  in
  (* Heal at t=200; the minority's orders join the book. *)
  let phase3 = [ submit 2 (order 10 Order_book.Sell 103 1) 300.0 ] in
  let failures =
    List.map
      (fun e -> (60.0, e))
      (Fstatus.partition_events ~parts:[ [ 0; 1; 2 ]; [ 3; 4 ] ])
    @ List.map (fun e -> (200.0, e)) (Fstatus.heal_events ~procs)
  in
  let run =
    To_service.run config
      ~workload:(phase1 @ phase2 @ phase3)
      ~failures ~until:500.0 ~seed:7
  in
  let trace = To_service.client_trace run in

  let report label time =
    Format.printf "--- %s (t=%.0f) ---@." label time;
    List.iter
      (fun p ->
        match Book_rsm.state_at p ~time trace with
        | Ok book ->
            Format.printf
              "  floor %d: best bid %s, best ask %s, %d trades executed@." p
              (match Order_book.best_bid book with
              | Some x -> string_of_int x
              | None -> "-")
              (match Order_book.best_ask book with
              | Some x -> string_of_int x
              | None -> "-")
              (Order_book.trade_count book)
        | Error e -> Format.printf "  floor %d: error %s@." p e)
      procs;
    Format.printf "@."
  in
  report "after the stable phase" 55.0;
  report "during the partition (majority trades, minority frozen)" 180.0;
  report "after the merge (books reconciled)" 480.0;

  let actions = List.map snd (Timed.actions trace) in
  Format.printf "replica consistency (prefix property): %s@."
    (if Book_rsm.consistent procs actions then "OK" else "VIOLATED");
  match To_service.to_conforms config run with
  | Ok () -> Format.printf "TO-machine conformance: OK@."
  | Error e ->
      Format.printf "TO-machine conformance: FAILED (%a)@."
        To_trace_checker.pp_error e
