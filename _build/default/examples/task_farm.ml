(* Task farm: view-aware load balancing directly over the VS service (no
   total order needed) — every member executes the tasks it owns in the
   current view; a view change re-partitions the work automatically.

   Run with: dune exec examples/task_farm.exe *)

open Gcs_core
open Gcs_impl
open Gcs_apps

let procs = Proc.all ~n:5
let config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }

let () =
  Format.printf "== Task farm: load balancing over VS views ==@.@.";
  let tasks phase k0 =
    List.init 15 (fun k -> Printf.sprintf "%s-task-%d" phase (k0 + k))
  in
  let submit t0 tasks =
    List.mapi
      (fun i task -> (t0 +. (float_of_int i *. 2.0), i mod 5, task))
      tasks
  in
  let phase1 = tasks "stable" 0 in
  let phase2 = tasks "split" 100 in
  let workload = submit 10.0 phase1 @ submit 120.0 phase2 in
  let failures =
    List.map
      (fun e -> (80.0, e))
      (Fstatus.partition_events ~parts:[ [ 0; 1; 2 ]; [ 3; 4 ] ])
  in
  let run = Vs_service.run config ~workload ~failures ~until:400.0 ~seed:5 in
  let executions = Work_queue.executions ~p0:procs run.Vs_service.trace in

  Format.printf "--- executions per worker ---@.";
  List.iter
    (fun (p, c) -> Format.printf "  worker %d executed %d tasks@." p c)
    (Work_queue.counts_by_executor executions);

  let executed_once task =
    List.length
      (List.filter (fun e -> String.equal e.Work_queue.task task) executions)
  in
  Format.printf "@.--- per-task execution counts ---@.";
  Format.printf "  stable phase: all exactly once? %b@."
    (Work_queue.exactly_once ~tasks:phase1 executions);
  let split_counts = List.map executed_once phase2 in
  Format.printf
    "  split phase: %d of %d executed (each side runs only the tasks@.   \
     submitted and delivered within its own view; none run twice: %b)@."
    (List.length (List.filter (fun c -> c > 0) split_counts))
    (List.length phase2)
    (List.for_all (fun c -> c <= 1) split_counts)
