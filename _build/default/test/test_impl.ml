(* Tests for the Section 8 VS implementation: conformance of its traces to
   VS-machine, and the conditional VS-property (stabilization and timely
   safe delivery) under partitions and healing. *)

open Gcs_core
open Gcs_impl

let n = 5
let procs = Proc.all ~n
let delta = 1.0

let config =
  { Vs_node.procs; p0 = procs; pi = 8.0; mu = 10.0; delta }

let workload ~senders ~from_time ~spacing ~count =
  List.concat_map
    (fun (i, p) ->
      List.init count (fun k ->
          ( from_time +. (float_of_int k *. spacing) +. (0.1 *. float_of_int i),
            p,
            Printf.sprintf "m%d.%d" p k )))
    (List.mapi (fun i p -> (i, p)) senders)

let check_conforms name run =
  match Vs_service.conforms ~equal_msg:String.equal config run with
  | Ok () -> ()
  | Error err ->
      Alcotest.failf "%s: trace rejected by VS-machine checker: %s" name
        (Format.asprintf "%a" Vs_trace_checker.pp_error err)

let pp_msg ppf (m : string) = Format.pp_print_string ppf m

let test_steady_state_conformance () =
  List.iter
    (fun seed ->
      let run =
        Vs_service.run config
          ~workload:(workload ~senders:procs ~from_time:5.0 ~spacing:7.0 ~count:6)
          ~failures:[] ~until:300.0 ~seed
      in
      check_conforms "steady" run)
    [ 1; 2; 3; 4; 5 ]

let test_steady_state_vs_property () =
  let until = 400.0 in
  let run =
    Vs_service.run config
      ~workload:(workload ~senders:procs ~from_time:5.0 ~spacing:9.0 ~count:8)
      ~failures:[] ~until ~seed:7
  in
  let report =
    Vs_property.check ~b:(Vs_node.impl_b config) ~d:(Vs_node.impl_d config)
      ~q:procs ~p0:procs ~horizon:until ~equal_msg:String.equal ~pp_msg run.Vs_service.trace
  in
  if not (Vs_property.holds report) then
    Alcotest.failf "VS-property fails: %s"
      (Format.asprintf "%a" Vs_property.pp_report report)

let partition_at t parts = List.map (fun e -> (t, e)) (Fstatus.partition_events ~parts)
let heal_at t = List.map (fun e -> (t, e)) (Fstatus.heal_events ~procs)

let test_partition_conformance () =
  List.iter
    (fun seed ->
      let failures =
        partition_at 60.0 [ [ 0; 1; 2 ]; [ 3; 4 ] ] @ heal_at 180.0
      in
      let run =
        Vs_service.run config
          ~workload:(workload ~senders:procs ~from_time:5.0 ~spacing:6.0 ~count:20)
          ~failures ~until:400.0 ~seed
      in
      check_conforms "partition+heal" run)
    [ 11; 12; 13; 14; 15 ]

let test_partition_stabilizes_majority_side () =
  let q = [ 0; 1; 2 ] in
  let until = 400.0 in
  let failures = partition_at 60.0 [ q; [ 3; 4 ] ] in
  let run =
    Vs_service.run config
      ~workload:(workload ~senders:q ~from_time:100.0 ~spacing:9.0 ~count:10)
      ~failures ~until ~seed:21
  in
  check_conforms "partition" run;
  let report =
    Vs_property.check ~b:(Vs_node.impl_b config) ~d:(Vs_node.impl_d config)
      ~q ~p0:procs ~horizon:until ~equal_msg:String.equal ~pp_msg run.Vs_service.trace
  in
  if not (Vs_property.holds report) then
    Alcotest.failf "VS-property fails on majority side: %s"
      (Format.asprintf "%a" Vs_property.pp_report report)

let test_partition_stabilizes_minority_side () =
  let q = [ 3; 4 ] in
  let until = 400.0 in
  let failures = partition_at 60.0 [ [ 0; 1; 2 ]; q ] in
  let run =
    Vs_service.run config
      ~workload:(workload ~senders:q ~from_time:100.0 ~spacing:9.0 ~count:10)
      ~failures ~until ~seed:22
  in
  let report =
    Vs_property.check ~b:(Vs_node.impl_b config) ~d:(Vs_node.impl_d config)
      ~q ~p0:procs ~horizon:until ~equal_msg:String.equal ~pp_msg run.Vs_service.trace
  in
  if not (Vs_property.holds report) then
    Alcotest.failf "VS-property fails on minority side: %s"
      (Format.asprintf "%a" Vs_property.pp_report report)

let test_heal_reunites () =
  let until = 500.0 in
  let failures = partition_at 60.0 [ [ 0; 1; 2 ]; [ 3; 4 ] ] @ heal_at 200.0 in
  let run =
    Vs_service.run config
      ~workload:(workload ~senders:procs ~from_time:260.0 ~spacing:9.0 ~count:6)
      ~failures ~until ~seed:31
  in
  check_conforms "heal" run;
  (match Vs_service.stabilized_view_time ~q:procs run with
  | Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "final all-member view by %.1f (got %.1f)"
           (200.0 +. Vs_node.impl_b config) t)
        true
        (t <= 200.0 +. Vs_node.impl_b config)
  | None -> Alcotest.fail "processors did not reunite into one view");
  let report =
    Vs_property.check ~b:(Vs_node.impl_b config) ~d:(Vs_node.impl_d config)
      ~q:procs ~p0:procs ~horizon:until ~equal_msg:String.equal ~pp_msg run.Vs_service.trace
  in
  if not (Vs_property.holds report) then
    Alcotest.failf "VS-property fails after heal: %s"
      (Format.asprintf "%a" Vs_property.pp_report report)

let test_crash_and_recover () =
  (* Processor 4 crashes (bad) and later recovers; the rest reform and
     continue; after recovery everyone reunites. *)
  let until = 500.0 in
  let failures =
    [ (60.0, Fstatus.Proc_status (4, Fstatus.Bad)) ]
    @ List.map
        (fun p ->
          (60.0, Fstatus.Link_status (p, 4, Fstatus.Bad)))
        [ 0; 1; 2; 3 ]
    @ List.map
        (fun p ->
          (60.0, Fstatus.Link_status (4, p, Fstatus.Bad)))
        [ 0; 1; 2; 3 ]
    @ [ (200.0, Fstatus.Proc_status (4, Fstatus.Good)) ]
    @ List.map
        (fun p -> (200.0, Fstatus.Link_status (p, 4, Fstatus.Good)))
        [ 0; 1; 2; 3 ]
    @ List.map
        (fun p -> (200.0, Fstatus.Link_status (4, p, Fstatus.Good)))
        [ 0; 1; 2; 3 ]
  in
  let run =
    Vs_service.run config
      ~workload:(workload ~senders:[ 0; 1 ] ~from_time:80.0 ~spacing:9.0 ~count:8)
      ~failures ~until ~seed:41
  in
  check_conforms "crash+recover" run;
  match Vs_service.stabilized_view_time ~q:procs run with
  | Some _ -> ()
  | None -> Alcotest.fail "processors did not reunite after recovery"

let test_ugly_links_conformance () =
  (* Lossy, slow links between the halves: safety must still hold (no
     timing guarantees are claimed). *)
  let failures =
    List.concat_map
      (fun p ->
        List.concat_map
          (fun q ->
            if (p < 3) = (q < 3) || p = q then []
            else [ (50.0, Fstatus.Link_status (p, q, Fstatus.Ugly)) ])
          procs)
      procs
  in
  List.iter
    (fun seed ->
      let run =
        Vs_service.run config
          ~workload:(workload ~senders:procs ~from_time:5.0 ~spacing:5.0 ~count:15)
          ~failures ~until:400.0 ~seed
      in
      check_conforms "ugly" run)
    [ 51; 52; 53 ]

let test_churn_stops_after_stabilization () =
  (* "Capricious view changes must stop shortly after stabilization":
     count newview events after l + b. *)
  let until = 600.0 in
  let failures = partition_at 60.0 [ [ 0; 1; 2 ]; [ 3; 4 ] ] @ heal_at 250.0 in
  let run =
    Vs_service.run config ~workload:[] ~failures ~until ~seed:61
  in
  let cutoff = 250.0 +. Vs_node.impl_b config in
  let late_newviews =
    List.filter
      (fun (time, a) ->
        match a with
        | Vs_action.Newview _ -> time > cutoff
        | _ -> false)
      (Timed.actions run.Vs_service.trace)
  in
  Alcotest.(check int) "no newview after stabilization bound" 0
    (List.length late_newviews)

let test_leader_crash_failover () =
  (* Crash the ring leader (processor 0): the token stops, the survivors
     time out, reform without it, and the new leader (1) relaunches the
     token; traffic keeps flowing. *)
  let failures =
    (60.0, Fstatus.Proc_status (0, Fstatus.Bad))
    :: List.concat_map
         (fun p ->
           if p = 0 then []
           else
             [
               (60.0, Fstatus.Link_status (p, 0, Fstatus.Bad));
               (60.0, Fstatus.Link_status (0, p, Fstatus.Bad));
             ])
         procs
  in
  let run =
    Vs_service.run config
      ~workload:(workload ~senders:[ 1; 2 ] ~from_time:100.0 ~spacing:8.0 ~count:6)
      ~failures ~until:400.0 ~seed:81
  in
  check_conforms "leader crash" run;
  (match Vs_service.stabilized_view_time ~q:[ 1; 2; 3; 4 ] run with
  | Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "survivors stabilized (t=%.1f)" t)
        true
        (t <= 60.0 +. Vs_node.impl_b config)
  | None -> Alcotest.fail "survivors did not stabilize without the leader");
  (* Messages sent by the survivors after the reform become safe. *)
  let safes_after_reform =
    List.length
      (List.filter
         (fun (t, a) ->
           match a with Vs_action.Safe _ -> t > 80.0 | _ -> false)
         (Timed.actions run.Vs_service.trace))
  in
  Alcotest.(check bool) "safe notifications resume under the new leader" true
    (safes_after_reform > 0)

(* The one-round membership alternative (Section 8, footnote 7): safety is
   unchanged; only stabilization speed differs. *)
let test_one_round_conformance () =
  List.iter
    (fun seed ->
      let failures =
        partition_at 60.0 [ [ 0; 1; 2 ]; [ 3; 4 ] ] @ heal_at 180.0
      in
      let run =
        Vs_service.run ~protocol:Vs_node.One_round config
          ~workload:(workload ~senders:procs ~from_time:5.0 ~spacing:6.0 ~count:15)
          ~failures ~until:450.0 ~seed
      in
      check_conforms "one-round" run)
    [ 71; 72; 73 ]

let test_one_round_eventually_stabilizes () =
  let failures = partition_at 60.0 [ [ 0; 1; 2 ]; [ 3; 4 ] ] @ heal_at 200.0 in
  let run =
    Vs_service.run ~protocol:Vs_node.One_round config ~workload:[] ~failures
      ~until:800.0 ~seed:74
  in
  match Vs_service.stabilized_view_time ~q:procs run with
  | Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "stabilized eventually (t=%.1f)" t)
        true (t < 800.0)
  | None -> Alcotest.fail "one-round protocol never stabilized"

let prop_one_round_random_failures_safe =
  QCheck.Test.make
    ~name:"one-round protocol: random failure scripts preserve safety"
    ~count:15 QCheck.small_nat
    (fun seed ->
      let prng = Gcs_stdx.Prng.create ((seed * 11) + 5) in
      let failures =
        List.init 10 (fun i ->
            let t = 20.0 +. (float_of_int i *. 30.0) in
            let p = Gcs_stdx.Prng.pick_exn prng procs in
            let q = Gcs_stdx.Prng.pick_exn prng procs in
            let s =
              match Gcs_stdx.Prng.int prng 3 with
              | 0 -> Fstatus.Good
              | 1 -> Fstatus.Bad
              | _ -> Fstatus.Ugly
            in
            if Gcs_stdx.Prng.bool prng || Proc.equal p q then
              (t, Fstatus.Proc_status (p, s))
            else (t, Fstatus.Link_status (p, q, s)))
      in
      let run =
        Vs_service.run ~protocol:Vs_node.One_round config
          ~workload:(workload ~senders:procs ~from_time:5.0 ~spacing:4.0 ~count:15)
          ~failures ~until:400.0 ~seed
      in
      Result.is_ok (Vs_service.conforms ~equal_msg:String.equal config run))

let prop_random_failure_scripts_safe =
  QCheck.Test.make ~name:"random failure scripts preserve VS safety" ~count:25
    QCheck.small_nat
    (fun seed ->
      let prng = Gcs_stdx.Prng.create (seed * 7 + 1) in
      (* Random sequence of status flips. *)
      let failures =
        List.init 12 (fun i ->
            let t = 20.0 +. (float_of_int i *. 25.0) in
            let p = Gcs_stdx.Prng.pick_exn prng procs in
            let q = Gcs_stdx.Prng.pick_exn prng procs in
            let s =
              match Gcs_stdx.Prng.int prng 3 with
              | 0 -> Fstatus.Good
              | 1 -> Fstatus.Bad
              | _ -> Fstatus.Ugly
            in
            if Gcs_stdx.Prng.bool prng || Proc.equal p q then
              (t, Fstatus.Proc_status (p, s))
            else (t, Fstatus.Link_status (p, q, s)))
      in
      let run =
        Vs_service.run config
          ~workload:(workload ~senders:procs ~from_time:5.0 ~spacing:4.0 ~count:20)
          ~failures ~until:400.0 ~seed
      in
      Result.is_ok (Vs_service.conforms ~equal_msg:String.equal config run))

let prop_parameter_space_conformance =
  (* Robustness across the protocol parameter space: random n, delta, pi
     (respecting pi > n*delta), mu — conformance must hold through a
     partition and heal. *)
  QCheck.Test.make ~name:"conformance across protocol parameters" ~count:15
    QCheck.(triple (int_range 2 6) (int_range 1 3) small_nat)
    (fun (n, delta_i, seed) ->
      let delta = float_of_int delta_i /. 2.0 in
      let prng = Gcs_stdx.Prng.create (seed + 7) in
      let pi =
        float_of_int n *. delta
        *. (1.5 +. Gcs_stdx.Prng.float prng)
      in
      let mu = pi *. (1.0 +. Gcs_stdx.Prng.float prng) in
      let procs = Proc.all ~n in
      let cfg = { Vs_node.procs; p0 = procs; pi; mu; delta } in
      let half = List.filteri (fun i _ -> i < (n / 2) + 1) procs in
      let rest = List.filter (fun p -> not (List.mem p half)) procs in
      let failures =
        (if rest = [] then []
         else partition_at (40.0 *. delta) [ half; rest ])
        @ List.map
            (fun e -> (160.0 *. delta, e))
            (Fstatus.heal_events ~procs)
      in
      let wl =
        List.concat_map
          (fun p ->
            List.init 6 (fun k ->
                ( (5.0 +. (float_of_int k *. 9.0)) *. delta
                  +. (0.1 *. float_of_int p),
                  p,
                  Printf.sprintf "q%d.%d" p k )))
          procs
      in
      let run =
        Vs_service.run cfg ~workload:wl ~failures ~until:(400.0 *. delta)
          ~seed
      in
      let params =
        { Vs_machine.procs; p0 = procs; equal_msg = String.equal; weak = false }
      in
      Result.is_ok (Vs_trace_checker.check params (Vs_service.untimed_trace run)))

let () =
  Alcotest.run "impl"
    [
      ( "conformance",
        [
          Alcotest.test_case "steady state" `Quick test_steady_state_conformance;
          Alcotest.test_case "partition + heal" `Quick
            test_partition_conformance;
          Alcotest.test_case "ugly links" `Quick test_ugly_links_conformance;
        ] );
      ( "vs-property",
        [
          Alcotest.test_case "steady state" `Quick test_steady_state_vs_property;
          Alcotest.test_case "majority side stabilizes" `Quick
            test_partition_stabilizes_majority_side;
          Alcotest.test_case "minority side stabilizes" `Quick
            test_partition_stabilizes_minority_side;
          Alcotest.test_case "heal reunites in time" `Quick test_heal_reunites;
          Alcotest.test_case "crash and recover" `Quick test_crash_and_recover;
          Alcotest.test_case "leader crash failover" `Quick
            test_leader_crash_failover;
          Alcotest.test_case "churn stops after stabilization" `Quick
            test_churn_stops_after_stabilization;
        ] );
      ( "one-round variant",
        [
          Alcotest.test_case "conformance" `Quick test_one_round_conformance;
          Alcotest.test_case "eventual stabilization" `Quick
            test_one_round_eventually_stabilizes;
          QCheck_alcotest.to_alcotest prop_one_round_random_failures_safe;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_random_failure_scripts_safe;
          QCheck_alcotest.to_alcotest prop_parameter_space_conformance;
        ] );
    ]
