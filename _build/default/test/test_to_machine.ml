(* Tests for TO-machine (Figure 3) and its trace checker. *)

open Gcs_automata
open Gcs_core

let procs = Proc.all ~n:3
let params = { To_machine.procs; equal_value = Value.equal }
let automaton = To_machine.automaton params

let values = [ "a"; "b"; "c"; "d" ]

let inject _state prng =
  match
    (Gcs_stdx.Prng.pick prng procs, Gcs_stdx.Prng.pick prng values)
  with
  | Some p, Some v -> [ To_action.Bcast (p, v) ]
  | _ -> []

let run ?(steps = 120) seed =
  let scheduler = Scheduler.weighted automaton ~inject ~inject_weight:0.4 in
  Exec.run automaton ~scheduler ~steps ~prng:(Gcs_stdx.Prng.create seed)

let test_manual_sequence () =
  let state = To_machine.initial params in
  let step action state = Automaton.step_exn automaton state action in
  let state = step (To_action.Bcast (0, "x")) state in
  let state = step (To_action.Bcast (1, "y")) state in
  let state = step (To_action.To_order ("x", 0)) state in
  let state = step (To_action.To_order ("y", 1)) state in
  let state = step (To_action.Brcv { src = 0; dst = 2; value = "x" }) state in
  let state = step (To_action.Brcv { src = 1; dst = 2; value = "y" }) state in
  Alcotest.(check int) "queue has both" 2 (List.length state.To_machine.queue);
  (* Delivery out of queue order must be rejected. *)
  Alcotest.(check bool) "wrong order rejected" true
    (automaton.Automaton.transition state
       (To_action.Brcv { src = 1; dst = 0; value = "y" })
    = None)

let test_fifo_per_sender () =
  let state = To_machine.initial params in
  let step action state = Automaton.step_exn automaton state action in
  let state = step (To_action.Bcast (0, "x")) state in
  let state = step (To_action.Bcast (0, "y")) state in
  Alcotest.(check bool) "cannot order y before x" true
    (automaton.Automaton.transition state (To_action.To_order ("y", 0)) = None)

let test_invariants_random () =
  let scheduler = Scheduler.weighted automaton ~inject ~inject_weight:0.4 in
  match
    Invariant.check_random automaton ~scheduler
      ~seeds:(List.init 20 (fun i -> i))
      ~steps:150 (To_machine.invariants params)
  with
  | None -> ()
  | Some (v, seed) ->
      Alcotest.failf "invariant %s violated at step %d (seed %d): %s"
        v.Invariant.invariant v.Invariant.step_index seed v.Invariant.detail

let test_trace_checker_accepts () =
  for seed = 0 to 19 do
    let e = run seed in
    let trace = Exec.trace automaton e in
    match To_trace_checker.check params trace with
    | Ok () -> ()
    | Error err ->
        Alcotest.failf "seed %d rejected: %s" seed
          (Format.asprintf "%a" To_trace_checker.pp_error err)
  done

let test_trace_checker_rejects_unsent () =
  let trace = [ To_action.Brcv { src = 0; dst = 1; value = "ghost" } ] in
  Alcotest.(check bool) "unsent delivery rejected" true
    (Result.is_error (To_trace_checker.check params trace))

let test_trace_checker_rejects_reorder () =
  let trace =
    [
      To_action.Bcast (0, "x");
      To_action.Bcast (0, "y");
      To_action.Brcv { src = 0; dst = 1; value = "y" };
    ]
  in
  Alcotest.(check bool) "per-sender reorder rejected" true
    (Result.is_error (To_trace_checker.check params trace))

let test_trace_checker_rejects_divergent_orders () =
  (* Two receivers observing different total orders. *)
  let trace =
    [
      To_action.Bcast (0, "x");
      To_action.Bcast (1, "y");
      To_action.Brcv { src = 0; dst = 2; value = "x" };
      To_action.Brcv { src = 1; dst = 2; value = "y" };
      To_action.Brcv { src = 1; dst = 0; value = "y" };
      To_action.Brcv { src = 0; dst = 0; value = "x" };
    ]
  in
  Alcotest.(check bool) "divergent orders rejected" true
    (Result.is_error (To_trace_checker.check params trace))

let test_trace_checker_allows_prefix_deliveries () =
  (* A receiver may be behind (prefix), and duplicates of the same value
     from the same sender are distinct messages. *)
  let trace =
    [
      To_action.Bcast (0, "x");
      To_action.Bcast (0, "x");
      To_action.Brcv { src = 0; dst = 1; value = "x" };
      To_action.Brcv { src = 0; dst = 1; value = "x" };
      To_action.Brcv { src = 0; dst = 2; value = "x" };
    ]
  in
  Alcotest.(check bool) "prefix deliveries accepted" true
    (Result.is_ok (To_trace_checker.check params trace))

(* Mutating a valid trace should produce an invalid one; swapping two
   adjacent deliveries at one destination is only *guaranteed* invalid
   when both come from the same sender (it then violates per-sender FIFO —
   across senders the interleaving may be unconstrained if no other
   receiver forced those queue positions). *)
let prop_mutation_detected =
  QCheck.Test.make ~name:"swapping same-sender deliveries at a node is rejected"
    ~count:60 QCheck.small_nat
    (fun seed ->
      let e = run ~steps:200 seed in
      let trace = Exec.trace automaton e in
      let arr = Array.of_list trace in
      let swap_at =
        let rec find i =
          if i + 1 >= Array.length arr then None
          else
            match (arr.(i), arr.(i + 1)) with
            | To_action.Brcv a, To_action.Brcv b
              when Proc.equal a.dst b.dst && Proc.equal a.src b.src
                   && not (Value.equal a.value b.value) ->
                Some i
            | _ -> find (i + 1)
        in
        find 0
      in
      match swap_at with
      | None -> QCheck.assume_fail ()
      | Some i ->
          let tmp = arr.(i) in
          arr.(i) <- arr.(i + 1);
          arr.(i + 1) <- tmp;
          Result.is_error (To_trace_checker.check params (Array.to_list arr)))

let prop_each_dst_receives_prefix =
  QCheck.Test.make ~name:"every destination receives a prefix of the order"
    ~count:60 QCheck.small_nat
    (fun seed ->
      let e = run ~steps:200 seed in
      let state = Exec.final e in
      List.for_all
        (fun q ->
          let n =
            match Proc.Map.find_opt q state.To_machine.next with
            | Some n -> n
            | None -> 1
          in
          n - 1 <= List.length state.To_machine.queue)
        procs)

let () =
  Alcotest.run "to_machine"
    [
      ( "machine",
        [
          Alcotest.test_case "manual sequence" `Quick test_manual_sequence;
          Alcotest.test_case "per-sender FIFO" `Quick test_fifo_per_sender;
          Alcotest.test_case "invariants on random runs" `Quick
            test_invariants_random;
        ] );
      ( "trace checker",
        [
          Alcotest.test_case "accepts machine traces" `Quick
            test_trace_checker_accepts;
          Alcotest.test_case "rejects unsent delivery" `Quick
            test_trace_checker_rejects_unsent;
          Alcotest.test_case "rejects per-sender reorder" `Quick
            test_trace_checker_rejects_reorder;
          Alcotest.test_case "rejects divergent orders" `Quick
            test_trace_checker_rejects_divergent_orders;
          Alcotest.test_case "accepts prefix deliveries" `Quick
            test_trace_checker_allows_prefix_deliveries;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_mutation_detected; prop_each_dst_receives_prefix ] );
    ]
