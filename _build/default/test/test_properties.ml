(* Unit tests for the timed machinery: failure-status tracking, timed
   traces, and the TO-property / VS-property checkers on hand-built
   traces. *)

open Gcs_core

let procs = Proc.all ~n:3

(* ---------------- Fstatus ---------------- *)

let test_fstatus_tracking () =
  let t = Fstatus.initial in
  Alcotest.(check bool) "default good" true
    (Fstatus.equal (Fstatus.proc_status t 0) Fstatus.Good);
  let t = Fstatus.apply t (Fstatus.Proc_status (0, Fstatus.Bad)) in
  let t = Fstatus.apply t (Fstatus.Link_status (0, 1, Fstatus.Ugly)) in
  Alcotest.(check bool) "proc updated" true
    (Fstatus.equal (Fstatus.proc_status t 0) Fstatus.Bad);
  Alcotest.(check bool) "link directed" true
    (Fstatus.equal (Fstatus.link_status t 0 1) Fstatus.Ugly
    && Fstatus.equal (Fstatus.link_status t 1 0) Fstatus.Good);
  let t = Fstatus.apply t (Fstatus.Proc_status (0, Fstatus.Good)) in
  Alcotest.(check bool) "last event wins" true
    (Fstatus.equal (Fstatus.proc_status t 0) Fstatus.Good)

let test_partition_events () =
  let events = Fstatus.partition_events ~parts:[ [ 0; 1 ]; [ 2 ] ] in
  let t = List.fold_left Fstatus.apply Fstatus.initial events in
  Alcotest.(check bool) "within part good" true
    (Fstatus.equal (Fstatus.link_status t 0 1) Fstatus.Good);
  Alcotest.(check bool) "across parts bad, both directions" true
    (Fstatus.equal (Fstatus.link_status t 0 2) Fstatus.Bad
    && Fstatus.equal (Fstatus.link_status t 2 0) Fstatus.Bad);
  let healed =
    List.fold_left Fstatus.apply t (Fstatus.heal_events ~procs:[ 0; 1; 2 ])
  in
  Alcotest.(check bool) "heal restores" true
    (Fstatus.equal (Fstatus.link_status healed 0 2) Fstatus.Good)

(* ---------------- Timed ---------------- *)

let test_timed_utilities () =
  let trace =
    [
      Timed.action 1.0 "a";
      Timed.status 2.0 (Fstatus.Proc_status (1, Fstatus.Bad));
      Timed.action 3.0 "b";
      Timed.status 4.0 (Fstatus.Link_status (0, 2, Fstatus.Bad));
    ]
  in
  Alcotest.(check bool) "time ordered" true (Timed.is_time_ordered trace);
  Alcotest.(check int) "two actions" 2 (List.length (Timed.actions trace));
  Alcotest.(check int) "two statuses" 2 (List.length (Timed.statuses trace));
  Alcotest.(check (float 0.001)) "last status involving {1}" 2.0
    (Timed.last_status_time_involving [ 1 ] trace);
  Alcotest.(check (float 0.001)) "last status involving {0}" 4.0
    (Timed.last_status_time_involving [ 0 ] trace);
  Alcotest.(check (float 0.001)) "nothing involves {3}" 0.0
    (Timed.last_status_time_involving [ 3 ] trace);
  let mapped = Timed.map (fun a -> if a = "a" then Some 1 else None) trace in
  Alcotest.(check int) "map keeps statuses" 3 (List.length mapped)

(* ---------------- TO-property checker ---------------- *)

let bcast t p v = Timed.action t (To_action.Bcast (p, v))
let brcv t src dst v = Timed.action t (To_action.Brcv { src; dst; value = v })

let all_brcv t0 src v =
  List.mapi (fun i q -> brcv (t0 +. (0.1 *. float_of_int i)) src q v) procs

let test_to_property_holds () =
  let trace = (bcast 1.0 0 "x" :: all_brcv 2.0 0 "x") @ [] in
  let r = To_property.check ~b:5.0 ~d:3.0 ~q:procs ~horizon:100.0 trace in
  Alcotest.(check bool) "holds" true (To_property.holds r);
  (* 3 obligations from the send (clause b) + 3 per delivery to a member
     of Q (clause c, three deliveries) = 12. *)
  Alcotest.(check int) "twelve obligations" 12 r.To_property.obligations

let test_to_property_detects_missing_delivery () =
  let trace =
    [ bcast 1.0 0 "x"; brcv 2.0 0 0 "x"; brcv 2.1 0 1 "x" (* 2 missing *) ]
  in
  let r = To_property.check ~b:5.0 ~d:3.0 ~q:procs ~horizon:100.0 trace in
  Alcotest.(check bool) "violated" false (To_property.holds r);
  Alcotest.(check bool) "names the missing member" true
    (List.exists
       (fun v -> v.To_property.missing_at = 2)
       r.To_property.violations)

let test_to_property_detects_late_delivery () =
  let trace = bcast 1.0 0 "x" :: all_brcv 50.0 0 "x" in
  let r = To_property.check ~b:5.0 ~d:3.0 ~q:procs ~horizon:100.0 trace in
  Alcotest.(check bool) "late delivery violates" false (To_property.holds r)

let test_to_property_horizon_guard () =
  (* A deadline beyond the horizon is not enforced (finite prefix). *)
  let trace = [ bcast 99.0 0 "x" ] in
  let r = To_property.check ~b:5.0 ~d:3.0 ~q:procs ~horizon:100.0 trace in
  Alcotest.(check bool) "unenforceable deadline ignored" true
    (To_property.holds r)

let test_to_property_vacuous_premise () =
  (* A bad processor inside Q after the last failure event makes the
     property vacuous, not violated. *)
  let trace =
    [
      Timed.status 0.5 (Fstatus.Proc_status (1, Fstatus.Bad));
      bcast 1.0 0 "x";
    ]
  in
  let r = To_property.check ~b:5.0 ~d:3.0 ~q:procs ~horizon:100.0 trace in
  Alcotest.(check bool) "premise fails" true (Result.is_error r.To_property.premise)

let test_to_property_stabilization_point () =
  (* Failure events move l; pre-stabilization sends get until l+b+d. *)
  let trace =
    [
      bcast 1.0 0 "x";
      Timed.status 10.0 (Fstatus.Proc_status (1, Fstatus.Good));
    ]
    @ all_brcv 14.0 0 "x"
  in
  let r = To_property.check ~b:5.0 ~d:3.0 ~q:procs ~horizon:100.0 trace in
  Alcotest.(check (float 0.001)) "l = last failure event" 10.0
    r.To_property.stabilization_time;
  Alcotest.(check bool) "deliveries by l+b+d accepted" true
    (To_property.holds r)

(* ---------------- VS-property checker ---------------- *)

let pp_msg ppf (m : string) = Format.pp_print_string ppf m

let vs_check ?(q = procs) ?(b = 5.0) ?(d = 3.0) trace =
  Vs_property.check ~b ~d ~q ~p0:procs ~horizon:100.0 ~equal_msg:String.equal
    ~pp_msg trace

let gpsnd t p m = Timed.action t (Vs_action.Gpsnd { sender = p; msg = m })
let safe t src dst m = Timed.action t (Vs_action.Safe { src; dst; msg = m })

let test_vs_property_holds_default_view () =
  (* All of P0 stay silently in v0; a message becomes safe in time. *)
  let trace =
    gpsnd 1.0 0 "m"
    :: List.mapi (fun i q -> safe (2.0 +. (0.1 *. float_of_int i)) 0 q "m") procs
  in
  let r = vs_check trace in
  Alcotest.(check bool) "holds" true (Vs_property.holds r);
  Alcotest.(check bool) "final view is v0" true
    (match r.Vs_property.final_view with
    | Some v -> View.equal v (View.initial procs)
    | None -> false)

let test_vs_property_detects_missing_safe () =
  let trace = [ gpsnd 1.0 0 "m"; safe 2.0 0 0 "m"; safe 2.1 0 1 "m" ] in
  let r = vs_check trace in
  Alcotest.(check bool) "missing safe violates" false (Vs_property.holds r)

let test_vs_property_detects_late_newview () =
  let g1 = View_id.make ~num:1 ~origin:0 in
  let v1 = View.make g1 procs in
  let trace =
    List.map
      (fun p -> Timed.action 50.0 (Vs_action.Newview { proc = p; view = v1 }))
      procs
  in
  let r = vs_check trace in
  (* l = 0, b = 5: a newview at 50 violates clause (b). *)
  Alcotest.(check bool) "late newview violates" false (Vs_property.holds r)

let test_vs_property_view_not_q () =
  let g1 = View_id.make ~num:1 ~origin:0 in
  let v1 = View.make g1 [ 0; 1 ] in
  let trace =
    List.map
      (fun p -> Timed.action 1.0 (Vs_action.Newview { proc = p; view = v1 }))
      [ 0; 1 ]
  in
  let r = vs_check trace in
  Alcotest.(check bool) "final view must equal Q" false (Vs_property.holds r)

let () =
  Alcotest.run "properties"
    [
      ( "fstatus",
        [
          Alcotest.test_case "status tracking" `Quick test_fstatus_tracking;
          Alcotest.test_case "partition/heal events" `Quick
            test_partition_events;
        ] );
      ("timed", [ Alcotest.test_case "utilities" `Quick test_timed_utilities ]);
      ( "to-property",
        [
          Alcotest.test_case "holds" `Quick test_to_property_holds;
          Alcotest.test_case "missing delivery" `Quick
            test_to_property_detects_missing_delivery;
          Alcotest.test_case "late delivery" `Quick
            test_to_property_detects_late_delivery;
          Alcotest.test_case "horizon guard" `Quick
            test_to_property_horizon_guard;
          Alcotest.test_case "vacuous premise" `Quick
            test_to_property_vacuous_premise;
          Alcotest.test_case "stabilization point" `Quick
            test_to_property_stabilization_point;
        ] );
      ( "vs-property",
        [
          Alcotest.test_case "holds in default view" `Quick
            test_vs_property_holds_default_view;
          Alcotest.test_case "missing safe" `Quick
            test_vs_property_detects_missing_safe;
          Alcotest.test_case "late newview" `Quick
            test_vs_property_detects_late_newview;
          Alcotest.test_case "final view must equal Q" `Quick
            test_vs_property_view_not_q;
        ] );
    ]
