test/test_gap_variant.mli:
