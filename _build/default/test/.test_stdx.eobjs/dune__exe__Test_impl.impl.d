test/test_impl.ml: Alcotest Format Fstatus Gcs_core Gcs_impl Gcs_stdx List Printf Proc QCheck QCheck_alcotest Result String Timed Vs_action Vs_machine Vs_node Vs_property Vs_service Vs_trace_checker
