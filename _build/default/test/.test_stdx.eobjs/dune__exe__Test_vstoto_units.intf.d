test/test_vstoto_units.mli:
