test/test_automata.ml: Alcotest Automaton Exec Gcs_automata Gcs_stdx Int Invariant Kind List Printf QCheck QCheck_alcotest Result Scheduler Simulation
