test/test_sim.ml: Alcotest Engine Event_queue Float Fstatus Gcs_core Gcs_sim Gcs_stdx Int List Printf QCheck QCheck_alcotest Timed
