test/test_core_types.ml: Alcotest Format Gcs_core Gcs_stdx Label List Proc QCheck QCheck_alcotest Quorum Summary View_id
