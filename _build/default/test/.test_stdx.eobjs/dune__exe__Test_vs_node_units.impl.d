test/test_vs_node_units.ml: Alcotest Gcs_core Gcs_impl List Printf Proc View View_id Vs_action Vs_node Vs_service Wire
