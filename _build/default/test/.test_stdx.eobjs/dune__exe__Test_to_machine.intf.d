test/test_to_machine.mli:
