test/test_stdx.ml: Alcotest Gcs_stdx Gen Int List Prng QCheck QCheck_alcotest Seqx
