test/test_soak.ml: Alcotest Format Fstatus Gcs_apps Gcs_core Gcs_impl Gcs_stdx List Printf Proc Timed To_action To_property To_service To_trace_checker Vs_node Vs_trace_checker
