test/test_vstoto.mli:
