test/test_baseline.ml: Alcotest Format Fstatus Gcs_baseline Gcs_core Gcs_impl Hashtbl Lamport_to List Printf Proc Sequencer Timed To_action To_service To_trace_checker Vs_node
