test/test_properties.ml: Alcotest Format Fstatus Gcs_core List Proc Result String Timed To_action To_property View View_id Vs_action Vs_property
