test/test_vstoto_units.ml: Alcotest Automaton Gcs_automata Gcs_core Label List Msg Proc Quorum Summary Sys_action View View_id Vs_action Vstoto
