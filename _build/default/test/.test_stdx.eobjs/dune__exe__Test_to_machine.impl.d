test/test_to_machine.ml: Alcotest Array Automaton Exec Format Gcs_automata Gcs_core Gcs_stdx Invariant List Proc QCheck QCheck_alcotest Result Scheduler To_action To_machine To_trace_checker Value
