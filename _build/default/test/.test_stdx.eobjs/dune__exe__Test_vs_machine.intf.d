test/test_vs_machine.mli:
