test/test_vs_node_units.mli:
