test/test_core_types.mli:
