test/test_impl.mli:
