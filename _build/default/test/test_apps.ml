(* Tests for the application layer: codecs, machines, replicated state
   machines over real TO-service runs, and the two memories of footnote 3. *)

open Gcs_core
open Gcs_impl
open Gcs_apps

let procs = Proc.all ~n:4
let vs_config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }
let config = To_service.make_config vs_config

(* ---------------- codec ---------------- *)

let test_codec_roundtrip_basics () =
  List.iter
    (fun fields ->
      Alcotest.(check (option (list string)))
        (String.concat "," fields) (Some fields)
        (Codec.decode (Codec.encode fields)))
    [
      [];
      [ "" ];
      [ "a" ];
      [ "a"; "b"; "c" ];
      [ "with|pipe"; "with%percent" ];
      [ "%|%|"; ""; "x" ];
    ]

let test_codec_rejects_malformed () =
  Alcotest.(check (option (list string))) "dangling escape" None
    (Codec.decode "abc%");
  Alcotest.(check (option (list string))) "unknown escape" None
    (Codec.decode "ab%zc")

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec roundtrip" ~count:300
    QCheck.(list (string_gen_of_size (Gen.return 8) Gen.printable))
    (fun fields -> Codec.decode (Codec.encode fields) = Some fields)

(* ---------------- machines ---------------- *)

let test_kv_machine () =
  let open Kv_store in
  let t = apply (apply (apply initial (Put ("a", "1"))) (Put ("b", "2"))) (Del "a") in
  Alcotest.(check (option string)) "deleted" None (get t "a");
  Alcotest.(check (option string)) "kept" (Some "2") (get t "b");
  Alcotest.(check (option string)) "op roundtrip" (Some "2")
    (match decode_op (encode_op (Put ("b", "2"))) with
    | Some (Put (_, v)) -> Some v
    | _ -> None)

let test_counter_machine () =
  let open Counter in
  let t = apply (apply (apply initial (Add 5)) (Add 7)) Reset in
  Alcotest.(check int) "reset" 0 t;
  Alcotest.(check bool) "decode add" true
    (decode_op (encode_op (Add 42)) = Some (Add 42))

(* ---------------- RSM over a real run ---------------- *)

module Kv_rsm = Rsm.Make (Kv_store)

let kv_workload =
  List.concat
    [
      List.init 10 (fun i ->
          Kv_rsm.submit (i mod 4)
            (Kv_store.Put (Printf.sprintf "k%d" (i mod 3), string_of_int i))
            (10.0 +. (float_of_int i *. 6.0)));
      List.init 3 (fun i ->
          Kv_rsm.submit ((i + 1) mod 4)
            (Kv_store.Del (Printf.sprintf "k%d" i))
            (90.0 +. (float_of_int i *. 7.0)));
    ]

let run_kv ?(failures = []) ?(until = 400.0) seed =
  To_service.run config ~workload:kv_workload ~failures ~until ~seed

let test_rsm_consistency_steady () =
  List.iter
    (fun seed ->
      let run = run_kv seed in
      let actions =
        List.map snd (Timed.actions (To_service.client_trace run))
      in
      Alcotest.(check bool) "replicas consistent" true
        (Kv_rsm.consistent procs actions))
    [ 1; 2; 3 ]

let test_rsm_consistency_partition () =
  let failures =
    List.map
      (fun e -> (50.0, e))
      (Fstatus.partition_events ~parts:[ [ 0; 1; 2 ]; [ 3 ] ])
    @ List.map (fun e -> (150.0, e)) (Fstatus.heal_events ~procs)
  in
  let run = run_kv ~failures ~until:600.0 5 in
  let actions = List.map snd (Timed.actions (To_service.client_trace run)) in
  Alcotest.(check bool) "replicas consistent across partition" true
    (Kv_rsm.consistent procs actions);
  (* After healing and enough time, all replicas applied everything. *)
  match Kv_rsm.replica_states procs actions with
  | Error e -> Alcotest.fail e
  | Ok states ->
      let applied = List.map (fun (_, _, n) -> n) states in
      Alcotest.(check bool)
        (Printf.sprintf "all replicas caught up %s"
           (String.concat "," (List.map string_of_int applied)))
        true
        (List.for_all (fun n -> n = List.length kv_workload) applied)

(* ---------------- sequentially consistent memory ---------------- *)

let test_seq_memory_reads () =
  let writes =
    List.init 8 (fun i ->
        Seq_memory.write_submission (i mod 4) ~loc:"x"
          ~value:(string_of_int i)
          (10.0 +. (float_of_int i *. 8.0)))
  in
  let run =
    To_service.run config ~workload:writes ~failures:[] ~until:300.0 ~seed:9
  in
  let trace = To_service.client_trace run in
  let read_points =
    List.concat_map
      (fun p -> [ (p, 50.0, "x"); (p, 120.0, "x"); (p, 280.0, "x") ])
      procs
  in
  match Seq_memory.perform_reads trace read_points with
  | Error e -> Alcotest.fail e
  | Ok reads ->
      Alcotest.(check bool) "reads follow the local replica" true
        (Seq_memory.reads_are_consistent trace reads);
      (* By the end, everyone reads the last confirmed write. *)
      let finals =
        List.filter_map
          (fun (r : Seq_memory.read_event) ->
            if r.time = 280.0 then Some r.result else None)
          reads
      in
      Alcotest.(check bool) "final reads agree" true
        (match finals with
        | [] -> false
        | v :: rest -> List.for_all (( = ) v) rest)

(* ---------------- atomic memory ---------------- *)

let test_atomic_memory_agreement () =
  let ops =
    [
      Atomic_memory.submission 0 (Atomic_memory.Write { loc = "x"; value = "a" }) 10.0;
      Atomic_memory.submission 1 (Atomic_memory.Read { loc = "x"; id = 1 }) 20.0;
      Atomic_memory.submission 2 (Atomic_memory.Write { loc = "x"; value = "b" }) 30.0;
      Atomic_memory.submission 3 (Atomic_memory.Read { loc = "x"; id = 2 }) 40.0;
      Atomic_memory.submission 1 (Atomic_memory.Read { loc = "y"; id = 3 }) 50.0;
    ]
  in
  let run = To_service.run config ~workload:ops ~failures:[] ~until:300.0 ~seed:4 in
  let actions = List.map snd (Timed.actions (To_service.client_trace run)) in
  Alcotest.(check bool) "replicas agree on every read response" true
    (Atomic_memory.all_responses_agree procs actions);
  match Atomic_memory.responses_at 0 actions with
  | Error e -> Alcotest.fail e
  | Ok responses ->
      Alcotest.(check int) "all three reads answered" 3 (List.length responses);
      let find id =
        List.find_opt (fun r -> r.Atomic_memory.id = id) responses
      in
      (match find 1 with
      | Some { value = Some "a"; _ } -> ()
      | _ -> Alcotest.fail "read 1 should see the first write");
      (match find 3 with
      | Some { value = None; _ } -> ()
      | _ -> Alcotest.fail "read of untouched location should be None")

(* ---------------- sequential consistency, properly ---------------- *)

let test_sc_checker_units () =
  let w loc value = Sc_checker.Write { loc; value } in
  let r loc result = Sc_checker.Read { loc; result } in
  Alcotest.(check bool) "empty history" true
    (Sc_checker.sequentially_consistent []);
  Alcotest.(check bool) "simple sequential" true
    (Sc_checker.sequentially_consistent
       [ (0, [ w "x" "1"; r "x" (Some "1") ]) ]);
  Alcotest.(check bool) "read of initial value" true
    (Sc_checker.sequentially_consistent [ (0, [ r "x" None ]) ]);
  Alcotest.(check bool) "stale read alone is serializable (reordered)" true
    (Sc_checker.sequentially_consistent
       [ (0, [ w "x" "1" ]); (1, [ r "x" None ]) ]);
  (* The store-buffering litmus: both processes write then read the other
     location; both reading the initial value admits no serialization. *)
  Alcotest.(check bool) "store buffering with both stale reads is not SC"
    false
    (Sc_checker.sequentially_consistent
       [
         (0, [ w "x" "1"; r "y" None ]);
         (1, [ w "y" "1"; r "x" None ]);
       ]);
  Alcotest.(check bool) "store buffering with one stale read is SC" true
    (Sc_checker.sequentially_consistent
       [
         (0, [ w "x" "1"; r "y" None ]);
         (1, [ w "y" "1"; r "x" (Some "1") ]);
       ]);
  Alcotest.(check bool) "read from the wrong write is not SC" false
    (Sc_checker.sequentially_consistent
       [
         (0, [ w "x" "1" ]);
         (1, [ w "x" "2" ]);
         (2, [ r "x" (Some "1"); r "x" (Some "2"); r "x" (Some "1") ]);
       ])

(* Execute the store-buffering litmus over the real service, under the two
   disciplines. Footnote 3's discipline (a write returns when the TO
   service delivers it back; later operations of that process wait) yields
   a sequentially consistent history; the naive non-blocking discipline
   (read immediately after submitting the write) does not. *)
let sb_histories () =
  let wl =
    [
      Seq_memory.write_submission 0 ~loc:"x" ~value:"1" 10.0;
      Seq_memory.write_submission 1 ~loc:"y" ~value:"1" 10.0;
    ]
  in
  let run = To_service.run config ~workload:wl ~failures:[] ~until:300.0 ~seed:2 in
  let trace = To_service.client_trace run in
  (* Completion time of each process's write: its local delivery. *)
  let completion p =
    List.fold_left
      (fun acc (t, a) ->
        match a with
        | To_action.Brcv { src; dst; _ }
          when Proc.equal src p && Proc.equal dst p ->
            Some t
        | _ -> acc)
      None (Timed.actions trace)
  in
  let read_at p t loc =
    match Seq_memory.state_at p ~time:t trace with
    | Ok state -> Seq_memory.read state loc
    | Error e -> Alcotest.fail e
  in
  let t0 = Option.get (completion 0) and t1 = Option.get (completion 1) in
  let blocking =
    [
      ( 0,
        [
          Sc_checker.Write { loc = "x"; value = "1" };
          Sc_checker.Read { loc = "y"; result = read_at 0 (t0 +. 0.01) "y" };
        ] );
      ( 1,
        [
          Sc_checker.Write { loc = "y"; value = "1" };
          Sc_checker.Read { loc = "x"; result = read_at 1 (t1 +. 0.01) "x" };
        ] );
    ]
  in
  let non_blocking =
    [
      ( 0,
        [
          Sc_checker.Write { loc = "x"; value = "1" };
          Sc_checker.Read { loc = "y"; result = read_at 0 10.01 "y" };
        ] );
      ( 1,
        [
          Sc_checker.Write { loc = "y"; value = "1" };
          Sc_checker.Read { loc = "x"; result = read_at 1 10.01 "x" };
        ] );
    ]
  in
  (blocking, non_blocking)

let test_footnote3_discipline_is_sc () =
  let blocking, non_blocking = sb_histories () in
  Alcotest.(check bool)
    "blocking-write discipline yields a sequentially consistent history"
    true
    (Sc_checker.sequentially_consistent blocking);
  (* The naive discipline reads before any delivery: both reads are stale,
     which is exactly the store-buffering anomaly. *)
  Alcotest.(check bool)
    "non-blocking discipline exhibits the store-buffering anomaly" false
    (Sc_checker.sequentially_consistent non_blocking)

let prop_random_session_histories_sc =
  (* Random write/read scripts under the blocking discipline (enforced by
     coarse spacing larger than the steady-state delivery latency) always
     produce sequentially consistent histories. *)
  QCheck.Test.make ~name:"blocking sessions are sequentially consistent"
    ~count:12 QCheck.small_nat
    (fun seed ->
      let prng = Gcs_stdx.Prng.create (seed + 100) in
      let locs = [ "x"; "y"; "z" ] in
      let spacing = 60.0 in
      let script p =
        List.init 3 (fun k ->
            let t = 10.0 +. (float_of_int k *. spacing) +. float_of_int p in
            if Gcs_stdx.Prng.bool prng then
              `W (t, Gcs_stdx.Prng.pick_exn prng locs,
                  Printf.sprintf "v%d.%d" p k)
            else `R (t, Gcs_stdx.Prng.pick_exn prng locs))
      in
      let scripts = List.map (fun p -> (p, script p)) procs in
      let wl =
        List.concat_map
          (fun (p, ops) ->
            List.filter_map
              (function
                | `W (t, loc, value) ->
                    Some (Seq_memory.write_submission p ~loc ~value t)
                | `R _ -> None)
              ops)
          scripts
      in
      let run = To_service.run config ~workload:wl ~failures:[] ~until:400.0 ~seed in
      let trace = To_service.client_trace run in
      let history =
        List.map
          (fun (p, ops) ->
            ( p,
              List.map
                (function
                  | `W (_, loc, value) -> Sc_checker.Write { loc; value }
                  | `R (t, loc) ->
                      let result =
                        match Seq_memory.state_at p ~time:(t +. spacing /. 2.0) trace with
                        | Ok s -> Seq_memory.read s loc
                        | Error _ -> None
                      in
                      Sc_checker.Read { loc; result })
                ops ))
          scripts
      in
      Sc_checker.sequentially_consistent history)

(* ---------------- interactive sessions (blocking writes) ----------- *)

let test_session_basic () =
  let scripts =
    [
      ( 0,
        10.0,
        [
          Session.Write { loc = "x"; value = "1" };
          Session.Read { loc = "x" };
          Session.Write { loc = "y"; value = "2" };
        ] );
      (1, 12.0, [ Session.Write { loc = "x"; value = "9" }; Session.Read { loc = "y" } ]);
    ]
  in
  let run = Session.run config ~scripts ~failures:[] ~until:400.0 ~seed:8 in
  Alcotest.(check int) "all five operations completed" 5
    (List.length run.Session.completions);
  (* A session's own read after its own write sees at least that write. *)
  let r0 =
    List.find_opt
      (fun c ->
        c.Session.proc = 0
        && match c.Session.op with Session.Read _ -> true | _ -> false)
      run.Session.completions
  in
  (match r0 with
  | Some c ->
      Alcotest.(check bool) "read-own-write" true
        (c.Session.result = Some "1" || c.Session.result = Some "9")
  | None -> Alcotest.fail "processor 0's read did not complete");
  Alcotest.(check bool) "history is sequentially consistent" true
    (Sc_checker.sequentially_consistent (Session.history run))

let test_session_store_buffering () =
  (* The classic litmus, executed for real: with blocking writes the
     outcome "both reads stale" is impossible. *)
  let scripts =
    [
      (0, 10.0, [ Session.Write { loc = "x"; value = "1" }; Session.Read { loc = "y" } ]);
      (1, 10.0, [ Session.Write { loc = "y"; value = "1" }; Session.Read { loc = "x" } ]);
    ]
  in
  let run = Session.run config ~scripts ~failures:[] ~until:400.0 ~seed:9 in
  Alcotest.(check int) "all four operations completed" 4
    (List.length run.Session.completions);
  Alcotest.(check bool) "history is sequentially consistent" true
    (Sc_checker.sequentially_consistent (Session.history run))

let test_session_blocks_in_minority () =
  (* Sessions on a partitioned minority cannot complete writes (no primary
     view): footnote 3's memory trades availability for consistency. *)
  let failures =
    List.map
      (fun e -> (30.0, e))
      (Fstatus.partition_events ~parts:[ [ 0; 1; 2 ]; [ 3 ] ])
  in
  let scripts =
    [
      (0, 60.0, [ Session.Write { loc = "x"; value = "maj" }; Session.Read { loc = "x" } ]);
      (3, 60.0, [ Session.Write { loc = "x"; value = "min" }; Session.Read { loc = "x" } ]);
    ]
  in
  let run = Session.run config ~scripts ~failures ~until:400.0 ~seed:10 in
  let completed_at p =
    List.length
      (List.filter (fun c -> c.Session.proc = p) run.Session.completions)
  in
  Alcotest.(check int) "majority session finished" 2 (completed_at 0);
  Alcotest.(check int) "minority session blocked" 0 (completed_at 3);
  Alcotest.(check bool) "history (prefixes) still SC" true
    (Sc_checker.sequentially_consistent (Session.history run))

let prop_session_histories_sc =
  QCheck.Test.make ~name:"interactive session histories are SC" ~count:12
    QCheck.small_nat
    (fun seed ->
      let prng = Gcs_stdx.Prng.create (seed + 900) in
      let locs = [ "x"; "y" ] in
      let script p =
        List.init 4 (fun k ->
            if Gcs_stdx.Prng.bool prng then
              Session.Write
                {
                  loc = Gcs_stdx.Prng.pick_exn prng locs;
                  value = Printf.sprintf "p%dk%d" p k;
                }
            else Session.Read { loc = Gcs_stdx.Prng.pick_exn prng locs })
      in
      let scripts =
        List.map (fun p -> (p, 10.0 +. float_of_int p, script p)) procs
      in
      let run = Session.run config ~scripts ~failures:[] ~until:600.0 ~seed in
      Sc_checker.sequentially_consistent (Session.history run))

(* ---------------- timeline rendering ---------------- *)

let test_timeline_render () =
  let marks =
    [
      { Timeline.time = 10.0; proc = 0; symbol = 's' };
      { Timeline.time = 20.0; proc = 1; symbol = '+' };
      { Timeline.time = 20.0; proc = 1; symbol = 'V' };
      { Timeline.time = 99.0; proc = 2; symbol = '+' };
    ]
  in
  let out =
    Timeline.render ~procs:[ 0; 1; 2 ] ~width:50 ~until:100.0 ~marks
      ~net_events:[ 50.0 ]
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check bool) "has a row per processor plus chrome" true
    (List.length lines >= 6);
  Alcotest.(check bool) "V wins collisions" true
    (List.exists
       (fun l -> String.length l > 4 && String.sub l 0 5 = "   p1"
                 && String.contains l 'V' && not (String.contains l '+'))
       lines);
  Alcotest.(check bool) "net row shows the failure" true
    (List.exists (fun l -> String.length l > 4 && String.sub l 0 5 = "  net" && String.contains l '!') lines)

let test_timeline_of_run () =
  let wl = [ Gcs_apps.Seq_memory.write_submission 0 ~loc:"x" ~value:"1" 10.0 ] in
  let run = To_service.run config ~workload:wl ~failures:[] ~until:100.0 ~seed:1 in
  let out = Timeline.of_to_service_run ~procs ~width:40 ~until:100.0 run in
  Alcotest.(check bool) "submission appears" true (String.contains out 's');
  Alcotest.(check bool) "deliveries appear" true (String.contains out '+')

(* ---------------- work queue (load balancing over VS) -------------- *)

let wq_config =
  { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta = 1.0 }

let test_work_queue_owner_deterministic () =
  let view = View.initial procs in
  List.iter
    (fun task ->
      let o1 = Work_queue.owner view task and o2 = Work_queue.owner view task in
      Alcotest.(check int) "stable owner" o1 o2;
      Alcotest.(check bool) "owner is a member" true (View.mem o1 view))
    [ "a"; "b"; "task-42"; "" ]

let test_work_queue_exactly_once_stable () =
  let tasks = List.init 20 (fun k -> Printf.sprintf "job-%d" k) in
  let workload =
    List.mapi (fun i t -> (10.0 +. (2.0 *. float_of_int i), i mod 4, t)) tasks
  in
  let run = Vs_service.run wq_config ~workload ~failures:[] ~until:300.0 ~seed:3 in
  let executions = Work_queue.executions ~p0:procs run.Vs_service.trace in
  Alcotest.(check bool) "every task exactly once" true
    (Work_queue.exactly_once ~tasks executions);
  (* The hash spreads work: nobody runs everything. *)
  let counts = Work_queue.counts_by_executor executions in
  Alcotest.(check bool) "work is spread" true (List.length counts >= 2)

let test_work_queue_partition_at_most_once () =
  let tasks = List.init 12 (fun k -> Printf.sprintf "split-%d" k) in
  let workload =
    List.mapi (fun i t -> (80.0 +. (3.0 *. float_of_int i), i mod 4, t)) tasks
  in
  let failures =
    List.map
      (fun e -> (40.0, e))
      (Fstatus.partition_events ~parts:[ [ 0; 1 ]; [ 2; 3 ] ])
  in
  let run = Vs_service.run wq_config ~workload ~failures ~until:400.0 ~seed:6 in
  let executions = Work_queue.executions ~p0:procs run.Vs_service.trace in
  List.iter
    (fun task ->
      let n =
        List.length
          (List.filter
             (fun e -> String.equal e.Work_queue.task task)
             executions)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s executed at most once (%d)" task n)
        true (n <= 1))
    tasks

let () =
  Alcotest.run "apps"
    [
      ( "codec",
        [
          Alcotest.test_case "roundtrip basics" `Quick test_codec_roundtrip_basics;
          Alcotest.test_case "rejects malformed" `Quick
            test_codec_rejects_malformed;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
        ] );
      ( "machines",
        [
          Alcotest.test_case "kv" `Quick test_kv_machine;
          Alcotest.test_case "counter" `Quick test_counter_machine;
        ] );
      ( "rsm",
        [
          Alcotest.test_case "steady consistency" `Quick
            test_rsm_consistency_steady;
          Alcotest.test_case "partition consistency + catch-up" `Quick
            test_rsm_consistency_partition;
        ] );
      ( "memories",
        [
          Alcotest.test_case "sequentially consistent reads" `Quick
            test_seq_memory_reads;
          Alcotest.test_case "atomic responses agree" `Quick
            test_atomic_memory_agreement;
        ] );
      ( "sequential consistency",
        [
          Alcotest.test_case "SC checker unit tests" `Quick
            test_sc_checker_units;
          Alcotest.test_case "footnote 3 discipline is SC; naive is not"
            `Quick test_footnote3_discipline_is_sc;
          QCheck_alcotest.to_alcotest prop_random_session_histories_sc;
        ] );
      ( "sessions",
        [
          Alcotest.test_case "basic completion + read-own-write" `Quick
            test_session_basic;
          Alcotest.test_case "store-buffering litmus (live)" `Quick
            test_session_store_buffering;
          Alcotest.test_case "minority session blocks" `Quick
            test_session_blocks_in_minority;
          QCheck_alcotest.to_alcotest prop_session_histories_sc;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "render basics" `Quick test_timeline_render;
          Alcotest.test_case "of a real run" `Quick test_timeline_of_run;
        ] );
      ( "work queue",
        [
          Alcotest.test_case "deterministic ownership" `Quick
            test_work_queue_owner_deterministic;
          Alcotest.test_case "exactly once in a stable view" `Quick
            test_work_queue_exactly_once_stable;
          Alcotest.test_case "at most once across a partition" `Quick
            test_work_queue_partition_at_most_once;
        ] );
    ]
