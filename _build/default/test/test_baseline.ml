(* Tests for the fixed-sequencer baseline, including the availability
   contrast with the partitionable VStoTO stack. *)

open Gcs_core
open Gcs_impl
open Gcs_baseline

let procs = Proc.all ~n:4
let delta = 1.0
let config = Sequencer.make_config ~procs

let workload ~senders ~from_time ~spacing ~count =
  List.concat_map
    (fun (i, p) ->
      List.init count (fun k ->
          ( from_time +. (float_of_int k *. spacing) +. (0.17 *. float_of_int i),
            p,
            Printf.sprintf "s%d.%d" p k )))
    (List.mapi (fun i p -> (i, p)) senders)

let test_steady_state () =
  List.iter
    (fun seed ->
      let run =
        Sequencer.run ~delta config
          ~workload:(workload ~senders:procs ~from_time:5.0 ~spacing:5.0 ~count:10)
          ~failures:[] ~until:200.0 ~seed
      in
      (match Sequencer.to_conforms config run with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "sequencer trace rejected: %s"
            (Format.asprintf "%a" To_trace_checker.pp_error e));
      Alcotest.(check int) "everything delivered everywhere"
        (4 * 4 * 10)
        (Sequencer.deliveries run))
    [ 1; 2; 3 ]

let test_partition_stalls_cut_side () =
  (* Cut {2,3} away from the sequencer (0): they deliver nothing sent
     after the cut, while {0,1} keep going. *)
  let failures =
    List.map
      (fun e -> (30.0, e))
      (Fstatus.partition_events ~parts:[ [ 0; 1 ]; [ 2; 3 ] ])
  in
  let run =
    Sequencer.run ~delta config
      ~workload:(workload ~senders:[ 0; 1 ] ~from_time:50.0 ~spacing:5.0 ~count:6)
      ~failures ~until:300.0 ~seed:7
  in
  let deliveries_at p =
    List.length
      (List.filter
         (fun (_, a) ->
           match a with
           | To_action.Brcv { dst; _ } -> Proc.equal dst p
           | _ -> false)
         (Timed.actions run.Sequencer.trace))
  in
  Alcotest.(check bool) "sequencer side progresses" true (deliveries_at 0 > 0);
  Alcotest.(check int) "cut side stalls" 0 (deliveries_at 2 + deliveries_at 3)

let test_latency_comparison_with_vstoto () =
  (* In a well-behaved network the sequencer is faster than the token
     protocol (the price VStoTO pays for partition tolerance). *)
  let wl = workload ~senders:procs ~from_time:5.0 ~spacing:12.0 ~count:6 in
  let seq_run =
    Sequencer.run ~delta config ~workload:wl ~failures:[] ~until:400.0 ~seed:3
  in
  let vs_config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta } in
  let to_config = To_service.make_config vs_config in
  let vstoto_run =
    To_service.run to_config ~workload:wl ~failures:[] ~until:400.0 ~seed:3
  in
  let mean_latency actions =
    let sends = Hashtbl.create 64 in
    let total = ref 0.0 and count = ref 0 in
    List.iter
      (fun (t, a) ->
        match a with
        | To_action.Bcast (p, v) -> Hashtbl.replace sends (p, v) t
        | To_action.Brcv { src; value; _ } -> (
            match Hashtbl.find_opt sends (src, value) with
            | Some t0 ->
                total := !total +. (t -. t0);
                incr count
            | None -> ())
        | To_action.To_order _ -> ())
      actions;
    if !count = 0 then infinity else !total /. float_of_int !count
  in
  let seq_latency = mean_latency (Timed.actions seq_run.Sequencer.trace) in
  let vstoto_latency =
    mean_latency (Timed.actions (To_service.client_trace vstoto_run))
  in
  Alcotest.(check bool)
    (Printf.sprintf "sequencer %.2f < vstoto %.2f" seq_latency vstoto_latency)
    true
    (seq_latency < vstoto_latency)

let test_vstoto_survives_where_sequencer_stalls () =
  (* The flip side: partition the sequencer into the minority; the
     sequencer baseline stalls for the majority, while VStoTO keeps
     confirming there. *)
  let majority = [ 1; 2; 3 ] in
  let failures =
    List.map
      (fun e -> (30.0, e))
      (Fstatus.partition_events ~parts:[ [ 0 ]; majority ])
  in
  let wl = workload ~senders:majority ~from_time:60.0 ~spacing:9.0 ~count:5 in
  let seq_run =
    Sequencer.run ~delta config ~workload:wl ~failures ~until:500.0 ~seed:5
  in
  let vs_config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta } in
  let to_config = To_service.make_config vs_config in
  let vstoto_run =
    To_service.run to_config ~workload:wl ~failures ~until:500.0 ~seed:5
  in
  Alcotest.(check int) "sequencer: majority gets nothing" 0
    (Sequencer.deliveries seq_run);
  Alcotest.(check bool) "vstoto: majority keeps delivering" true
    (To_service.deliveries vstoto_run > 0)

(* ---------------- Lamport-timestamp total order ---------------- *)

let lamport_config = { Lamport_to.procs }

let test_lamport_steady_state () =
  List.iter
    (fun seed ->
      let run =
        Lamport_to.run ~delta lamport_config
          ~workload:(workload ~senders:procs ~from_time:5.0 ~spacing:5.0 ~count:8)
          ~failures:[] ~until:300.0 ~seed
      in
      (match Lamport_to.to_conforms lamport_config run with
      | Ok () -> ()
      | Error e ->
          Alcotest.failf "lamport trace rejected (seed %d): %s" seed
            (Format.asprintf "%a" To_trace_checker.pp_error e));
      Alcotest.(check int) "everything delivered everywhere"
        (4 * 4 * 8)
        (Lamport_to.deliveries run))
    [ 1; 2; 3 ]

let test_lamport_stalls_on_any_crash () =
  (* The all-to-all stability rule means a single unreachable processor
     freezes deliveries for everyone — the paper's motivation for
     partitionable services in one test. *)
  let failures =
    (30.0, Fstatus.Proc_status (3, Fstatus.Bad))
    :: List.concat_map
         (fun p ->
           if p = 3 then []
           else
             [
               (30.0, Fstatus.Link_status (p, 3, Fstatus.Bad));
               (30.0, Fstatus.Link_status (3, p, Fstatus.Bad));
             ])
         procs
  in
  let run =
    Lamport_to.run ~delta lamport_config
      ~workload:(workload ~senders:[ 0; 1 ] ~from_time:50.0 ~spacing:5.0 ~count:5)
      ~failures ~until:300.0 ~seed:7
  in
  (match Lamport_to.to_conforms lamport_config run with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "lamport trace rejected: %s"
        (Format.asprintf "%a" To_trace_checker.pp_error e));
  Alcotest.(check int) "everyone stalls after one crash" 0
    (Lamport_to.deliveries run)

let test_lamport_faster_than_token () =
  let wl = workload ~senders:procs ~from_time:5.0 ~spacing:12.0 ~count:6 in
  let lamport_run =
    Lamport_to.run ~delta lamport_config ~workload:wl ~failures:[] ~until:400.0
      ~seed:3
  in
  let vs_config = { Vs_node.procs; p0 = procs; pi = 6.0; mu = 8.0; delta } in
  let to_config = To_service.make_config vs_config in
  let vstoto_run =
    To_service.run to_config ~workload:wl ~failures:[] ~until:400.0 ~seed:3
  in
  let mean_latency actions =
    let sends = Hashtbl.create 64 in
    let total = ref 0.0 and count = ref 0 in
    List.iter
      (fun (t, a) ->
        match a with
        | To_action.Bcast (p, v) -> Hashtbl.replace sends (p, v) t
        | To_action.Brcv { src; value; _ } -> (
            match Hashtbl.find_opt sends (src, value) with
            | Some t0 ->
                total := !total +. (t -. t0);
                incr count
            | None -> ())
        | To_action.To_order _ -> ())
      actions;
    if !count = 0 then infinity else !total /. float_of_int !count
  in
  let lamport_latency = mean_latency (Timed.actions lamport_run.Lamport_to.trace) in
  let vstoto_latency =
    mean_latency (Timed.actions (To_service.client_trace vstoto_run))
  in
  Alcotest.(check bool)
    (Printf.sprintf "lamport %.2f < vstoto %.2f" lamport_latency vstoto_latency)
    true
    (lamport_latency < vstoto_latency)

let () =
  Alcotest.run "baseline"
    [
      ( "sequencer",
        [
          Alcotest.test_case "steady state" `Quick test_steady_state;
          Alcotest.test_case "partition stalls cut side" `Quick
            test_partition_stalls_cut_side;
        ] );
      ( "comparison",
        [
          Alcotest.test_case "sequencer faster when stable" `Quick
            test_latency_comparison_with_vstoto;
          Alcotest.test_case "vstoto survives sequencer partition" `Quick
            test_vstoto_survives_where_sequencer_stalls;
        ] );
      ( "lamport",
        [
          Alcotest.test_case "steady state" `Quick test_lamport_steady_state;
          Alcotest.test_case "stalls on any crash" `Quick
            test_lamport_stalls_on_any_crash;
          Alcotest.test_case "faster than the token when stable" `Quick
            test_lamport_faster_than_token;
        ] );
    ]
