(* Tests for the I/O automaton framework: composition semantics, executor,
   schedulers, invariant checking and forward-simulation checking, on small
   purpose-built automata. *)

open Gcs_automata

(* A producer emits Emit k for k = 0, 1, 2, ...; a consumer inputs Emit and
   sums what it received. Tick is internal to the producer. *)
type action = Tick | Emit of int

let producer : (int * bool, action) Automaton.t =
  {
    Automaton.name = "producer";
    initial = (0, false) (* next value, ticked flag *);
    kind =
      (function Tick -> Some Kind.Internal | Emit _ -> Some Kind.Output);
    enabled =
      (fun (k, ticked) -> if ticked then [ Emit k ] else [ Tick ]);
    transition =
      (fun (k, ticked) action ->
        match action with
        | Tick -> if ticked then None else Some (k, true)
        | Emit v -> if ticked && v = k then Some (k + 1, false) else None);
  }

let consumer : (int list, action) Automaton.t =
  {
    Automaton.name = "consumer";
    initial = [];
    kind = (function Emit _ -> Some Kind.Input | Tick -> None);
    enabled = (fun _ -> []);
    transition =
      (fun received action ->
        match action with
        | Emit v -> Some (received @ [ v ])
        | Tick -> None);
  }

let system = Automaton.compose ~name:"system" producer consumer

let run_system steps seed =
  Exec.run system
    ~scheduler:(Scheduler.enabled_only system)
    ~steps
    ~prng:(Gcs_stdx.Prng.create seed)

let test_composition_sync () =
  let e = run_system 10 1 in
  let _, received = Exec.final e in
  Alcotest.(check (list int)) "consumer got 0..4 in order" [ 0; 1; 2; 3; 4 ]
    received

let test_kind_of_composition () =
  Alcotest.(check bool) "Emit is output of composition" true
    (system.Automaton.kind (Emit 0) = Some Kind.Output);
  Alcotest.(check bool) "Tick is internal" true
    (system.Automaton.kind Tick = Some Kind.Internal)

let test_hide () =
  let hidden = Automaton.hide system (function Emit _ -> true | _ -> false) in
  Alcotest.(check bool) "Emit hidden" true
    (hidden.Automaton.kind (Emit 0) = Some Kind.Internal);
  let e =
    Exec.run hidden
      ~scheduler:(Scheduler.enabled_only hidden)
      ~steps:10
      ~prng:(Gcs_stdx.Prng.create 1)
  in
  Alcotest.(check (list string)) "trace empty when everything hidden" []
    (List.map (fun _ -> "x") (Exec.trace hidden e))

let test_trace_externals_only () =
  let e = run_system 10 1 in
  let trace = Exec.trace system e in
  Alcotest.(check int) "five external events" 5 (List.length trace);
  Alcotest.(check bool) "no Tick in trace" true
    (List.for_all (function Tick -> false | Emit _ -> true) trace)

let test_compatible () =
  Alcotest.(check bool) "producer/consumer compatible" true
    (Automaton.compatible producer consumer ~actions:[ Tick; Emit 0; Emit 1 ]);
  Alcotest.(check bool) "producer incompatible with itself (shared output)"
    false
    (Automaton.compatible producer producer ~actions:[ Emit 0 ])

let test_with_history () =
  let counted =
    Automaton.with_history system ~init:0 ~update:(fun _ a _ h ->
        match a with Emit _ -> h + 1 | Tick -> h)
  in
  let e =
    Exec.run counted
      ~scheduler:(Scheduler.enabled_only counted)
      ~steps:10
      ~prng:(Gcs_stdx.Prng.create 3)
  in
  let _, h = Exec.final e in
  Alcotest.(check int) "history counted the emits" 5 h

let test_invariant_checker () =
  let ok = Invariant.make "received sorted" (fun (_, received) ->
      Gcs_stdx.Seqx.is_strictly_sorted ~compare:Int.compare received)
  in
  let bad = Invariant.make "never receives three" (fun (_, received) ->
      List.length received < 3)
  in
  let e = run_system 10 5 in
  Alcotest.(check bool) "good invariant passes" true
    (Invariant.first_violation [ ok ] e = None);
  match Invariant.first_violation [ bad ] e with
  | Some v ->
      Alcotest.(check string) "violation names invariant" "never receives three"
        v.Invariant.invariant;
      Alcotest.(check bool) "violation has culprit" true
        (v.Invariant.culprit <> None)
  | None -> Alcotest.fail "expected violation"

let test_check_random () =
  let bad =
    Invariant.make "fewer than 2 emitted" (fun ((k, _), _) -> k < 2)
  in
  match
    Invariant.check_random system
      ~scheduler:(Scheduler.enabled_only system)
      ~seeds:[ 1; 2; 3 ] ~steps:10 [ bad ]
  with
  | Some (_, seed) -> Alcotest.(check int) "first seed trips it" 1 seed
  | None -> Alcotest.fail "expected a violation"

let test_scheduler_stop_when () =
  let scheduler =
    Scheduler.stop_when
      (fun ((k, _), _) -> k >= 2)
      (Scheduler.enabled_only system)
  in
  let e = Exec.run system ~scheduler ~steps:100 ~prng:(Gcs_stdx.Prng.create 1) in
  let (k, _), _ = Exec.final e in
  Alcotest.(check int) "stopped at 2" 2 k

let test_scheduler_injection () =
  (* The consumer alone has no enabled actions; injection drives it. *)
  let scheduler =
    Scheduler.with_injected consumer ~inject:(fun received _ ->
        [ Emit (List.length received) ])
  in
  let e =
    Exec.run consumer ~scheduler ~steps:4 ~prng:(Gcs_stdx.Prng.create 1)
  in
  Alcotest.(check (list int)) "injected inputs applied" [ 0; 1; 2; 3 ]
    (Exec.final e)

(* Forward simulation: the system simulates a simple abstract counter whose
   single action appends the emitted value. *)
let abstract_counter : (int list, action) Automaton.t =
  {
    Automaton.name = "abstract";
    initial = [];
    kind = (function Emit _ -> Some Kind.Output | Tick -> None);
    enabled = (fun xs -> [ Emit (List.length xs) ]);
    transition =
      (fun xs action ->
        match action with
        | Emit v -> if v = List.length xs then Some (xs @ [ v ]) else None
        | Tick -> None);
  }

let test_simulation_ok () =
  let e = run_system 20 7 in
  let result =
    Simulation.check_execution ~abstract:abstract_counter
      ~f:(fun (_, received) -> received)
      ~corresponds:(fun _ a _ ->
        match a with Emit v -> [ Emit v ] | Tick -> [])
      ~equal_abs:(List.equal Int.equal)
      e
  in
  Alcotest.(check bool) "simulation holds" true (Result.is_ok result)

let test_simulation_detects_bad_correspondence () =
  let e = run_system 20 7 in
  let result =
    Simulation.check_execution ~abstract:abstract_counter
      ~f:(fun (_, received) -> received)
      ~corresponds:(fun _ _ _ -> []) (* forgets the emits *)
      ~equal_abs:(List.equal Int.equal)
      e
  in
  match result with
  | Error failure ->
      Alcotest.(check bool) "failure carries the step" true
        (failure.Simulation.step_index >= 1)
  | Ok () -> Alcotest.fail "expected simulation failure"

let test_simulation_detects_bad_abstraction () =
  let e = run_system 20 7 in
  let result =
    Simulation.check_execution ~abstract:abstract_counter
      ~f:(fun ((k, _), _) -> List.init (k * 2) (fun i -> i)) (* wrong f *)
      ~corresponds:(fun _ a _ ->
        match a with Emit v -> [ Emit v ] | Tick -> [])
      ~equal_abs:(List.equal Int.equal)
      e
  in
  Alcotest.(check bool) "wrong abstraction caught" true (Result.is_error result)

(* compose_list: a relay chain. Stage i inputs Emit i and outputs
   Emit (i+1); the composition relays a token down the chain. *)
let relay i : (int, action) Automaton.t =
  {
    Automaton.name = Printf.sprintf "relay%d" i;
    initial = 0;
    kind =
      (function
      | Emit v ->
          if v = i then Some Kind.Input
          else if v = i + 1 then Some Kind.Output
          else None
      | Tick -> None);
    enabled = (fun pending -> if pending > 0 then [ Emit (i + 1) ] else []);
    transition =
      (fun pending action ->
        match action with
        | Emit v when v = i -> Some (pending + 1)
        | Emit v when v = i + 1 && pending > 0 -> Some (pending - 1)
        | _ -> None);
  }

let test_compose_list_relay () =
  let chain = Automaton.compose_list ~name:"chain" [ relay 0; relay 1; relay 2 ] in
  (* Inject Emit 0 (an input to the whole chain), then let it propagate. *)
  let s = Automaton.step_exn chain chain.Automaton.initial (Emit 0) in
  let s = Automaton.step_exn chain s (Emit 1) in
  let s = Automaton.step_exn chain s (Emit 2) in
  let s = Automaton.step_exn chain s (Emit 3) in
  Alcotest.(check (list int)) "token drained through the chain" [ 0; 0; 0 ] s;
  Alcotest.(check bool) "Emit 1 is an output of the chain" true
    (chain.Automaton.kind (Emit 1) = Some Kind.Output);
  Alcotest.(check bool) "Emit 0 is a pure input" true
    (chain.Automaton.kind (Emit 0) = Some Kind.Input);
  (* Relaying without a pending token is not enabled. *)
  Alcotest.(check bool) "no spontaneous relay" true
    (chain.Automaton.transition s (Emit 2) = None)

let test_embed () =
  (* Embed the producer into a larger action type with a foreign action. *)
  let lifted =
    Automaton.embed producer
      ~inj:(fun a -> `P a)
      ~proj:(function `P a -> Some a | `Other -> None)
  in
  Alcotest.(check bool) "foreign action outside signature" true
    (lifted.Automaton.kind `Other = None);
  Alcotest.(check bool) "foreign action has no transition" true
    (lifted.Automaton.transition lifted.Automaton.initial `Other = None);
  let s = Automaton.step_exn lifted lifted.Automaton.initial (`P Tick) in
  let s = Automaton.step_exn lifted s (`P (Emit 0)) in
  Alcotest.(check bool) "embedded transitions advance" true (fst s = 1)

let prop_executor_deterministic =
  QCheck.Test.make ~name:"executor deterministic per seed" ~count:50
    QCheck.small_nat
    (fun seed ->
      let t1 = Exec.trace system (run_system 15 seed) in
      let t2 = Exec.trace system (run_system 15 seed) in
      t1 = t2)

let () =
  Alcotest.run "automata"
    [
      ( "composition",
        [
          Alcotest.test_case "output/input sync" `Quick test_composition_sync;
          Alcotest.test_case "composed kinds" `Quick test_kind_of_composition;
          Alcotest.test_case "hide" `Quick test_hide;
          Alcotest.test_case "trace keeps externals" `Quick
            test_trace_externals_only;
          Alcotest.test_case "compatibility check" `Quick test_compatible;
          Alcotest.test_case "history variables" `Quick test_with_history;
          Alcotest.test_case "compose_list relay chain" `Quick
            test_compose_list_relay;
          Alcotest.test_case "embed into larger action type" `Quick
            test_embed;
        ] );
      ( "checkers",
        [
          Alcotest.test_case "invariant checker" `Quick test_invariant_checker;
          Alcotest.test_case "check_random reports seed" `Quick
            test_check_random;
          Alcotest.test_case "simulation holds" `Quick test_simulation_ok;
          Alcotest.test_case "simulation catches bad correspondence" `Quick
            test_simulation_detects_bad_correspondence;
          Alcotest.test_case "simulation catches bad abstraction" `Quick
            test_simulation_detects_bad_abstraction;
        ] );
      ( "schedulers",
        [
          Alcotest.test_case "stop_when" `Quick test_scheduler_stop_when;
          Alcotest.test_case "injection" `Quick test_scheduler_injection;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_executor_deterministic ] );
    ]
