(* Tests for VS-machine (Figure 6): Lemma 4.1 invariants on random
   executions, the trace checker, and the Lemma 4.2 cause-function
   properties. *)

open Gcs_automata
open Gcs_core

let procs = Proc.all ~n:4
let p0 = [ 0; 1; 2 ]

let params =
  { Vs_machine.procs; p0; equal_msg = String.equal; weak = false }

let automaton = Vs_machine.automaton params
let messages = [ "m1"; "m2"; "m3" ]

let inject state prng =
  let gpsnd =
    match
      (Gcs_stdx.Prng.pick prng procs, Gcs_stdx.Prng.pick prng messages)
    with
    | Some p, Some m -> [ Vs_action.Gpsnd { sender = p; msg = m } ]
    | _ -> []
  in
  gpsnd @ Vs_machine.inject_createview params state prng

let run ?(steps = 250) seed =
  let scheduler = Scheduler.weighted automaton ~inject ~inject_weight:0.35 in
  Exec.run automaton ~scheduler ~steps ~prng:(Gcs_stdx.Prng.create seed)

let test_lemma_4_1_invariants () =
  let scheduler = Scheduler.weighted automaton ~inject ~inject_weight:0.35 in
  match
    Invariant.check_random automaton ~scheduler
      ~seeds:(List.init 25 (fun i -> i))
      ~steps:250 (Vs_machine.invariants params)
  with
  | None -> ()
  | Some (v, seed) ->
      Alcotest.failf "%s violated at step %d (seed %d): %s"
        v.Invariant.invariant v.Invariant.step_index seed v.Invariant.detail

let test_initial_views () =
  let s = Vs_machine.initial params in
  List.iter
    (fun p ->
      let expected = if List.mem p p0 then Some View_id.g0 else None in
      Alcotest.(check bool)
        (Printf.sprintf "initial view of %d" p)
        true
        (View_id.compare_opt (Vs_machine.current_of s p) expected = 0))
    procs

let test_send_before_view_is_dropped () =
  (* Processor 3 is outside P0; its messages must vanish. *)
  let s = Vs_machine.initial params in
  let s =
    Automaton.step_exn automaton s (Vs_action.Gpsnd { sender = 3; msg = "x" })
  in
  Alcotest.(check bool) "no pending anywhere for p3" true
    (List.for_all
       (fun g -> Vs_machine.pending_of s 3 g = [])
       (Vs_machine.created_viewids s))

let test_newview_monotone () =
  let g1 = View_id.make ~num:1 ~origin:0 in
  let v1 = View.make g1 [ 0; 1 ] in
  let s = Vs_machine.initial params in
  let s = Automaton.step_exn automaton s (Vs_action.Createview v1) in
  let s =
    Automaton.step_exn automaton s (Vs_action.Newview { proc = 0; view = v1 })
  in
  (* Going back to g0 must be impossible. *)
  Alcotest.(check bool) "newview to older view rejected" true
    (automaton.Automaton.transition s
       (Vs_action.Newview { proc = 0; view = View.initial p0 })
    = None)

let test_createview_increasing_strict () =
  let g2 = View_id.make ~num:2 ~origin:0 in
  let g1 = View_id.make ~num:1 ~origin:0 in
  let s = Vs_machine.initial params in
  let s = Automaton.step_exn automaton s (Vs_action.Createview (View.make g2 [ 0 ])) in
  Alcotest.(check bool) "strict machine refuses out-of-order create" true
    (automaton.Automaton.transition s (Vs_action.Createview (View.make g1 [ 0 ]))
    = None);
  (* The weak machine accepts it. *)
  let weak = Vs_machine.automaton { params with weak = true } in
  let sw = Automaton.step_exn weak (Vs_machine.initial params)
      (Vs_action.Createview (View.make g2 [ 0 ])) in
  Alcotest.(check bool) "weak machine accepts out-of-order create" true
    (weak.Automaton.transition sw (Vs_action.Createview (View.make g1 [ 0 ]))
    <> None);
  Alcotest.(check bool) "weak machine still refuses duplicate id" true
    (weak.Automaton.transition sw (Vs_action.Createview (View.make g2 [ 1 ]))
    = None)

let test_safe_requires_all_members () =
  (* In the initial view {0,1,2}: 0 sends, it gets ordered, 0 and 1 receive
     it, but 2 does not; safe must not be enabled. *)
  let step a s = Automaton.step_exn automaton s a in
  let s = Vs_machine.initial params in
  let s = step (Vs_action.Gpsnd { sender = 0; msg = "m" }) s in
  let s = step (Vs_action.Vs_order { msg = "m"; sender = 0; viewid = View_id.g0 }) s in
  let s = step (Vs_action.Gprcv { src = 0; dst = 0; msg = "m" }) s in
  let s = step (Vs_action.Gprcv { src = 0; dst = 1; msg = "m" }) s in
  Alcotest.(check bool) "safe not yet enabled" true
    (automaton.Automaton.transition s
       (Vs_action.Safe { src = 0; dst = 0; msg = "m" })
    = None);
  let s = step (Vs_action.Gprcv { src = 0; dst = 2; msg = "m" }) s in
  Alcotest.(check bool) "safe enabled after all members receive" true
    (automaton.Automaton.transition s
       (Vs_action.Safe { src = 0; dst = 0; msg = "m" })
    <> None)

let test_trace_checker_accepts () =
  for seed = 0 to 24 do
    let e = run seed in
    let trace = Exec.trace automaton e in
    match Vs_trace_checker.check params trace with
    | Ok () -> ()
    | Error err ->
        Alcotest.failf "seed %d rejected: %s" seed
          (Format.asprintf "%a" Vs_trace_checker.pp_error err)
  done

let test_trace_checker_accepts_weak_machine () =
  let weak_params = { params with weak = true } in
  let weak = Vs_machine.automaton weak_params in
  let inject_weak state prng =
    let gpsnd =
      match
        (Gcs_stdx.Prng.pick prng procs, Gcs_stdx.Prng.pick prng messages)
      with
      | Some p, Some m -> [ Vs_action.Gpsnd { sender = p; msg = m } ]
      | _ -> []
    in
    (* Propose ids out of order on purpose: random number in 1..10. *)
    let num = Gcs_stdx.Prng.int_in prng 1 10 in
    let origin = Gcs_stdx.Prng.pick_exn prng procs in
    let members =
      match Gcs_stdx.Prng.subset prng procs with [] -> [ origin ] | l -> l
    in
    ignore state;
    gpsnd
    @ [ Vs_action.Createview (View.make (View_id.make ~num ~origin) members) ]
  in
  for seed = 0 to 24 do
    let scheduler = Scheduler.weighted weak ~inject:inject_weak ~inject_weight:0.35 in
    let e = Exec.run weak ~scheduler ~steps:250 ~prng:(Gcs_stdx.Prng.create seed) in
    let trace = Exec.trace weak e in
    match Vs_trace_checker.check params trace with
    | Ok () -> ()
    | Error err ->
        Alcotest.failf "weak trace %d rejected: %s" seed
          (Format.asprintf "%a" Vs_trace_checker.pp_error err)
  done

let test_trace_checker_rejections () =
  let g1 = View_id.make ~num:1 ~origin:0 in
  let v1 = View.make g1 [ 0; 1 ] in
  let reject name trace =
    Alcotest.(check bool) name true
      (Result.is_error (Vs_trace_checker.check params trace))
  in
  reject "delivery without send"
    [ Vs_action.Gprcv { src = 0; dst = 1; msg = "ghost" } ];
  reject "newview at non-member is outside the signature, hence invalid input"
    [ Vs_action.Newview { proc = 3; view = v1 } ];
  reject "view id going backwards"
    [
      Vs_action.Newview { proc = 0; view = v1 };
      Vs_action.Newview { proc = 0; view = View.initial p0 };
    ];
  reject "same id different membership"
    [
      Vs_action.Newview { proc = 0; view = v1 };
      Vs_action.Newview { proc = 1; view = View.make g1 [ 1; 2 ] };
    ];
  reject "cross-view delivery"
    [
      Vs_action.Gpsnd { sender = 0; msg = "m" };
      Vs_action.Newview { proc = 1; view = View.make g1 [ 0; 1 ] };
      Vs_action.Gprcv { src = 0; dst = 1; msg = "m" };
    ];
  reject "safe before all members deliver"
    [
      Vs_action.Gpsnd { sender = 0; msg = "m" };
      Vs_action.Gprcv { src = 0; dst = 0; msg = "m" };
      Vs_action.Gprcv { src = 0; dst = 1; msg = "m" };
      Vs_action.Safe { src = 0; dst = 0; msg = "m" };
    ];
  reject "duplicate delivery at one destination"
    [
      Vs_action.Gpsnd { sender = 0; msg = "m" };
      Vs_action.Gprcv { src = 0; dst = 1; msg = "m" };
      Vs_action.Gprcv { src = 0; dst = 1; msg = "m" };
    ];
  reject "two destinations observe different per-view orders"
    [
      Vs_action.Gpsnd { sender = 0; msg = "a" };
      Vs_action.Gpsnd { sender = 1; msg = "b" };
      Vs_action.Gprcv { src = 0; dst = 2; msg = "a" };
      Vs_action.Gprcv { src = 1; dst = 2; msg = "b" };
      Vs_action.Gprcv { src = 1; dst = 0; msg = "b" };
      Vs_action.Gprcv { src = 0; dst = 0; msg = "a" };
    ];
  reject "gap in delivery (second message without the first)"
    [
      Vs_action.Gpsnd { sender = 0; msg = "a" };
      Vs_action.Gpsnd { sender = 0; msg = "b" };
      Vs_action.Gprcv { src = 0; dst = 1; msg = "a" };
      Vs_action.Gprcv { src = 0; dst = 1; msg = "b" };
      Vs_action.Gprcv { src = 0; dst = 2; msg = "b" };
    ];
  reject "safe out of per-view order"
    [
      Vs_action.Gpsnd { sender = 0; msg = "a" };
      Vs_action.Gpsnd { sender = 0; msg = "b" };
      Vs_action.Gprcv { src = 0; dst = 0; msg = "a" };
      Vs_action.Gprcv { src = 0; dst = 0; msg = "b" };
      Vs_action.Gprcv { src = 0; dst = 1; msg = "a" };
      Vs_action.Gprcv { src = 0; dst = 1; msg = "b" };
      Vs_action.Gprcv { src = 0; dst = 2; msg = "a" };
      Vs_action.Gprcv { src = 0; dst = 2; msg = "b" };
      Vs_action.Safe { src = 0; dst = 0; msg = "b" };
    ];
  (* A sender outside any view: its messages are dropped, so a later
     delivery of them is invalid even within the sender's first view. *)
  reject "pre-view send is never deliverable"
    [
      Vs_action.Gpsnd { sender = 3; msg = "ghost" };
      Vs_action.Newview { proc = 3; view = View.make g1 [ 0; 3 ] };
      Vs_action.Newview { proc = 0; view = View.make g1 [ 0; 3 ] };
      Vs_action.Gprcv { src = 3; dst = 0; msg = "ghost" };
    ]

(* Lemma 4.2: properties of the cause function on accepted traces. *)
let check_cause_properties seed =
  let e = run ~steps:300 seed in
  let trace = Exec.trace automaton e in
  match Vs_trace_checker.check_full params trace with
  | Error err ->
      Alcotest.failf "seed %d rejected: %s" seed
        (Format.asprintf "%a" Vs_trace_checker.pp_error err)
  | Ok checker ->
      let arr = Array.of_list trace in
      let cause = Vs_trace_checker.cause checker in
      (* Integrity: cause precedes, same message, matching source. *)
      List.iter
        (fun (event_idx, cause_idx) ->
          Alcotest.(check bool) "cause precedes" true (cause_idx < event_idx);
          match (arr.(event_idx), arr.(cause_idx)) with
          | ( (Vs_action.Gprcv { src; msg; _ } | Vs_action.Safe { src; msg; _ }),
              Vs_action.Gpsnd { sender; msg = m' } ) ->
              Alcotest.(check string) "same message" m' msg;
              Alcotest.(check int) "matching source" sender src
          | _ -> Alcotest.fail "cause maps to a non-gpsnd event")
        cause;
      (* No duplication: per destination, cause is injective over gprcv
         events, and over safe events. *)
      let seen = Hashtbl.create 64 in
      List.iter
        (fun (event_idx, cause_idx) ->
          let kind, dst =
            match arr.(event_idx) with
            | Vs_action.Gprcv { dst; _ } -> ("gprcv", dst)
            | Vs_action.Safe { dst; _ } -> ("safe", dst)
            | _ -> assert false
          in
          let key = (kind, dst, cause_idx) in
          Alcotest.(check bool)
            (Printf.sprintf "no duplicate %s at %d" kind dst)
            false (Hashtbl.mem seen key);
          Hashtbl.replace seen key ())
        cause;
      (* No reordering: for fixed (src, dst), cause indices of gprcv events
         increase (per-sender FIFO makes this global across views too,
         since views are entered monotonically). *)
      let last_cause = Hashtbl.create 64 in
      List.iter
        (fun (event_idx, cause_idx) ->
          match arr.(event_idx) with
          | Vs_action.Gprcv { src; dst; _ } ->
              let key = (src, dst) in
              (match Hashtbl.find_opt last_cause key with
              | Some prev ->
                  Alcotest.(check bool) "monotone cause" true (prev < cause_idx)
              | None -> ());
              Hashtbl.replace last_cause key cause_idx
          | _ -> ())
        cause

let test_cause_properties () =
  List.iter check_cause_properties [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let prop_trace_accepted =
  QCheck.Test.make ~name:"random VS-machine traces accepted" ~count:40
    QCheck.small_nat
    (fun seed -> Result.is_ok (Vs_trace_checker.check params
                                 (Exec.trace automaton (run seed))))

let () =
  Alcotest.run "vs_machine"
    [
      ( "machine",
        [
          Alcotest.test_case "Lemma 4.1 invariants" `Quick
            test_lemma_4_1_invariants;
          Alcotest.test_case "initial views" `Quick test_initial_views;
          Alcotest.test_case "pre-view sends dropped" `Quick
            test_send_before_view_is_dropped;
          Alcotest.test_case "newview monotone" `Quick test_newview_monotone;
          Alcotest.test_case "createview orders (strict vs weak)" `Quick
            test_createview_increasing_strict;
          Alcotest.test_case "safe requires all members" `Quick
            test_safe_requires_all_members;
        ] );
      ( "trace checker",
        [
          Alcotest.test_case "accepts machine traces" `Quick
            test_trace_checker_accepts;
          Alcotest.test_case "accepts WeakVS-machine traces" `Quick
            test_trace_checker_accepts_weak_machine;
          Alcotest.test_case "rejects violations" `Quick
            test_trace_checker_rejections;
          Alcotest.test_case "Lemma 4.2 cause properties" `Quick
            test_cause_properties;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_trace_accepted ]);
    ]
