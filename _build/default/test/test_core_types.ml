(* Property tests for the core data types: view-id and label orders,
   quorum systems, and the Figure 8 summary operations. *)

open Gcs_core

let view_id_gen =
  QCheck.Gen.(
    map2 (fun num origin -> View_id.make ~num ~origin) (int_bound 20)
      (int_bound 7))

let view_id_arb = QCheck.make ~print:(Format.asprintf "%a" View_id.pp) view_id_gen

let label_gen =
  QCheck.Gen.(
    map3
      (fun id seqno origin -> Label.make ~id ~seqno:(seqno + 1) ~origin)
      view_id_gen (int_bound 10) (int_bound 7))

let label_arb = QCheck.make ~print:(Format.asprintf "%a" Label.pp) label_gen

(* ---------------- orders ---------------- *)

let prop_view_id_total_order =
  QCheck.Test.make ~name:"view-id order is a total order" ~count:300
    QCheck.(triple view_id_arb view_id_arb view_id_arb)
    (fun (a, b, c) ->
      let ( <= ) x y = View_id.compare x y <= 0 in
      (a <= b || b <= a)
      && ((not (a <= b && b <= a)) || View_id.equal a b)
      && ((not (a <= b && b <= c)) || a <= c))

let prop_view_id_lexicographic =
  QCheck.Test.make ~name:"view-id order is lexicographic (num, origin)"
    ~count:300
    QCheck.(pair view_id_arb view_id_arb)
    (fun (a, b) ->
      let expected =
        if a.View_id.num <> b.View_id.num then compare a.View_id.num b.View_id.num
        else compare a.View_id.origin b.View_id.origin
      in
      compare (View_id.compare a b) 0 = compare expected 0)

let prop_bottom_below_everything =
  QCheck.Test.make ~name:"⊥ is below every view id" ~count:100 view_id_arb
    (fun g -> View_id.lt_opt None (Some g))

let prop_label_order_respects_view =
  QCheck.Test.make ~name:"labels sort first by view id" ~count:300
    QCheck.(pair label_arb label_arb)
    (fun (a, b) ->
      View_id.compare a.Label.id b.Label.id >= 0 || Label.compare a b < 0)

let prop_label_seqno_order =
  QCheck.Test.make ~name:"same view, same origin: seqno orders labels"
    ~count:300
    QCheck.(triple view_id_arb (pair small_nat small_nat) (int_bound 7))
    (fun (id, (s1, s2), origin) ->
      let a = Label.make ~id ~seqno:(s1 + 1) ~origin in
      let b = Label.make ~id ~seqno:(s2 + 1) ~origin in
      compare (Label.compare a b) 0 = compare (compare s1 s2) 0)

(* ---------------- quorums ---------------- *)

let prop_majorities_intersect =
  QCheck.Test.make ~name:"majority quorums pairwise intersect" ~count:200
    QCheck.(pair (int_range 1 9) (pair (list small_nat) (list small_nat)))
    (fun (n, (sa, sb)) ->
      let quorums = Quorum.majorities ~n in
      let mk = List.filter (fun p -> p < n) in
      let a = Proc.set_of_list (mk sa) and b = Proc.set_of_list (mk sb) in
      (not (Quorum.is_quorum quorums a && Quorum.is_quorum quorums b))
      || not (Proc.Set.is_empty (Proc.Set.inter a b)))

let test_explicit_quorums () =
  let s = Proc.set_of_list in
  (match Quorum.of_sets [ s [ 0; 1 ]; s [ 1; 2 ]; s [ 0; 2 ] ] with
  | Ok q ->
      Alcotest.(check bool) "superset is quorum" true
        (Quorum.is_quorum q (s [ 0; 1; 2 ]));
      Alcotest.(check bool) "exact set is quorum" true
        (Quorum.is_quorum q (s [ 1; 2 ]));
      Alcotest.(check bool) "non-superset is not" false
        (Quorum.is_quorum q (s [ 0 ]))
  | Error e -> Alcotest.fail e);
  (match Quorum.of_sets [ s [ 0 ]; s [ 1 ] ] with
  | Ok _ -> Alcotest.fail "disjoint sets accepted"
  | Error _ -> ());
  match Quorum.of_sets [] with
  | Ok _ -> Alcotest.fail "empty system accepted"
  | Error _ -> ()

let test_weighted_quorums () =
  let weights =
    Proc.Map.of_seq (List.to_seq [ (0, 3); (1, 1); (2, 1) ])
  in
  let q = Quorum.weighted_majorities ~weights in
  Alcotest.(check bool) "heavy node alone is a quorum" true
    (Quorum.is_quorum q (Proc.set_of_list [ 0 ]));
  Alcotest.(check bool) "two light nodes are not" false
    (Quorum.is_quorum q (Proc.set_of_list [ 1; 2 ]))

(* ---------------- summaries (Figure 8) ---------------- *)

let mk_summary ~ord ~next ~high ~con_labels =
  let con =
    List.fold_left
      (fun acc l -> Label.Map.add l (Format.asprintf "%a" Label.pp l) acc)
      Label.Map.empty con_labels
  in
  Summary.make ~con ~ord ~next ~high

let l1 = Label.make ~id:View_id.g0 ~seqno:1 ~origin:0
let l2 = Label.make ~id:View_id.g0 ~seqno:1 ~origin:1
let l3 = Label.make ~id:View_id.g0 ~seqno:2 ~origin:0
let g1 = View_id.make ~num:1 ~origin:0

let test_confirm_prefix () =
  let x = mk_summary ~ord:[ l1; l2; l3 ] ~next:3 ~high:None ~con_labels:[] in
  Alcotest.(check int) "confirm has next-1 elements" 2
    (List.length (Summary.confirm x));
  let y = mk_summary ~ord:[ l1 ] ~next:5 ~high:None ~con_labels:[] in
  Alcotest.(check int) "confirm clipped to ord length" 1
    (List.length (Summary.confirm y))

let test_figure8_operations () =
  let xa =
    mk_summary ~ord:[ l1 ] ~next:2 ~high:(Some View_id.g0)
      ~con_labels:[ l1; l2 ]
  in
  let xb =
    mk_summary ~ord:[ l1; l2 ] ~next:2 ~high:(Some g1) ~con_labels:[ l1; l2; l3 ]
  in
  let y = Proc.Map.of_seq (List.to_seq [ (0, xa); (1, xb) ]) in
  Alcotest.(check bool) "maxprimary picks the greatest high" true
    (View_id.compare_opt (Summary.maxprimary y) (Some g1) = 0);
  Alcotest.(check (list int)) "reps are the holders of maxprimary" [ 1 ]
    (Summary.reps y);
  Alcotest.(check int) "chosenrep deterministic" 1 (Summary.chosenrep y);
  Alcotest.(check bool) "shortorder is the rep's order" true
    (List.equal Label.equal (Summary.shortorder y) [ l1; l2 ]);
  let full = Summary.fullorder y in
  Alcotest.(check bool) "fullorder starts with shortorder" true
    (Gcs_stdx.Seqx.is_prefix ~equal:Label.equal [ l1; l2 ] full);
  Alcotest.(check bool) "fullorder contains every known label" true
    (List.for_all (fun l -> List.exists (Label.equal l) full) [ l1; l2; l3 ]);
  Alcotest.(check int) "fullorder has no duplicates" (List.length full)
    (List.length (Gcs_stdx.Seqx.dedup_sorted ~compare:Label.compare full));
  Alcotest.(check int) "maxnextconfirm" 2 (Summary.maxnextconfirm y)

let test_knowncontent_union () =
  let xa = mk_summary ~ord:[] ~next:1 ~high:None ~con_labels:[ l1 ] in
  let xb = mk_summary ~ord:[] ~next:1 ~high:None ~con_labels:[ l2; l3 ] in
  let y = Proc.Map.of_seq (List.to_seq [ (0, xa); (1, xb) ]) in
  Alcotest.(check int) "knowncontent unions the contents" 3
    (Label.Map.cardinal (Summary.knowncontent y))

let prop_fullorder_complete =
  (* fullorder(Y) is shortorder(Y) followed by the remaining labels of
     dom(knowncontent Y), in label order, without duplicates. *)
  QCheck.Test.make ~name:"fullorder = shortorder ++ sorted remainder"
    ~count:200
    QCheck.(pair (list label_arb) (list label_arb))
    (fun (ord_labels, extra_labels) ->
      let ord = Gcs_stdx.Seqx.dedup_sorted ~compare:Label.compare ord_labels in
      let xa =
        mk_summary ~ord ~next:1 ~high:(Some g1)
          ~con_labels:(ord @ extra_labels)
      in
      let y = Proc.Map.singleton 0 xa in
      let full = Summary.fullorder y in
      Gcs_stdx.Seqx.is_prefix ~equal:Label.equal ord full
      && List.length full
         = List.length
             (Gcs_stdx.Seqx.dedup_sorted ~compare:Label.compare
                (ord @ extra_labels))
      &&
      let remainder = Gcs_stdx.Seqx.drop (List.length ord) full in
      Gcs_stdx.Seqx.is_strictly_sorted ~compare:Label.compare remainder)

let () =
  Alcotest.run "core_types"
    [
      ( "orders",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_view_id_total_order;
            prop_view_id_lexicographic;
            prop_bottom_below_everything;
            prop_label_order_respects_view;
            prop_label_seqno_order;
          ] );
      ( "quorums",
        [
          Alcotest.test_case "explicit systems" `Quick test_explicit_quorums;
          Alcotest.test_case "weighted majorities" `Quick test_weighted_quorums;
          QCheck_alcotest.to_alcotest prop_majorities_intersect;
        ] );
      ( "summaries",
        [
          Alcotest.test_case "confirm prefix" `Quick test_confirm_prefix;
          Alcotest.test_case "Figure 8 operations" `Quick
            test_figure8_operations;
          Alcotest.test_case "knowncontent union" `Quick
            test_knowncontent_union;
          QCheck_alcotest.to_alcotest prop_fullorder_complete;
        ] );
    ]
