(* Footnote 5: the weaker VS variant allowing delivery gaps above the safe
   frontier still supports VStoTO — the client traces satisfy TO-machine,
   because the stable order advances only on safe, and safe implies
   prefix-complete delivery at every member. *)

open Gcs_automata
open Gcs_core

let procs = Proc.all ~n:4
let p0 = procs
let quorums = Quorum.majorities ~n:4

let gap_params = Vstoto_gap_system.make_params ~procs ~p0 ~quorums ()
let gap_automaton = Vstoto_gap_system.automaton gap_params
let values = [ "a"; "b"; "c"; "d" ]

let run ?(steps = 400) seed =
  let scheduler =
    Scheduler.weighted gap_automaton
      ~inject:(Vstoto_gap_system.inject gap_params ~values)
      ~inject_weight:0.3
  in
  Exec.run gap_automaton ~scheduler ~steps ~prng:(Gcs_stdx.Prng.create seed)

let client_trace execution =
  List.filter_map
    (fun action ->
      match action with
      | Sys_action.Bcast (p, a) -> Some (To_action.Bcast (p, a))
      | Sys_action.Brcv { src; dst; value } ->
          Some (To_action.Brcv { src; dst; value })
      | _ -> None)
    (Exec.actions execution)

let to_params = { To_machine.procs; equal_value = Value.equal }

let test_gap_machine_invariants () =
  let vsp = { Vs_gap_machine.procs; p0; equal_msg = String.equal } in
  let machine = Vs_gap_machine.automaton vsp in
  let inject state prng =
    let gpsnd =
      match
        (Gcs_stdx.Prng.pick prng procs, Gcs_stdx.Prng.pick prng values)
      with
      | Some p, Some m -> [ Vs_action.Gpsnd { sender = p; msg = m } ]
      | _ -> []
    in
    gpsnd @ Vs_gap_machine.inject_createview vsp state prng
  in
  let scheduler = Scheduler.weighted machine ~inject ~inject_weight:0.35 in
  match
    Invariant.check_random machine ~scheduler
      ~seeds:(List.init 20 (fun i -> i))
      ~steps:250
      (Vs_gap_machine.invariants vsp)
  with
  | None -> ()
  | Some (v, seed) ->
      Alcotest.failf "%s violated (seed %d, step %d): %s" v.Invariant.invariant
        seed v.Invariant.step_index v.Invariant.detail

let test_gaps_actually_occur () =
  (* Sanity: the executions genuinely exercise gap deliveries, i.e. some
     processor's delivered set is non-prefix at some point. *)
  let saw_gap = ref false in
  List.iter
    (fun seed ->
      let e = run seed in
      List.iter
        (fun state ->
          let vs = state.Vstoto_gap_system.vs in
          Vs_gap_machine.Pg_map.iter
            (fun _ dset ->
              let pp = Vs_gap_machine.prefix_point dset in
              match Vs_gap_machine.Int_set.max_elt_opt dset with
              | Some m when m > pp -> saw_gap := true
              | _ -> ())
            vs.Vs_gap_machine.delivered)
        (Exec.states e))
    [ 0; 1; 2 ];
  Alcotest.(check bool) "gap deliveries occurred" true !saw_gap

let test_to_holds_over_gap_variant () =
  List.iter
    (fun seed ->
      match To_trace_checker.check to_params (client_trace (run seed)) with
      | Ok () -> ()
      | Error err ->
          Alcotest.failf "seed %d: %s" seed
            (Format.asprintf "%a" To_trace_checker.pp_error err))
    (List.init 12 (fun i -> i))

let test_progress_over_gap_variant () =
  let total =
    List.fold_left
      (fun acc seed ->
        acc
        + List.length
            (List.filter
               (function To_action.Brcv _ -> true | _ -> false)
               (client_trace (run seed))))
      0
      (List.init 12 (fun i -> i))
  in
  Alcotest.(check bool) "deliveries happen despite gaps" true (total > 0)

let prop_gap_variant_to_safe =
  QCheck.Test.make ~name:"TO holds over the gap variant (random)" ~count:15
    QCheck.small_nat
    (fun seed ->
      Result.is_ok
        (To_trace_checker.check to_params (client_trace (run (seed + 50)))))

let () =
  Alcotest.run "gap_variant"
    [
      ( "footnote 5",
        [
          Alcotest.test_case "gap machine invariants" `Quick
            test_gap_machine_invariants;
          Alcotest.test_case "gaps actually occur" `Quick
            test_gaps_actually_occur;
          Alcotest.test_case "TO holds over the gap variant" `Quick
            test_to_holds_over_gap_variant;
          Alcotest.test_case "progress despite gaps" `Quick
            test_progress_over_gap_variant;
          QCheck_alcotest.to_alcotest prop_gap_variant_to_safe;
        ] );
    ]
