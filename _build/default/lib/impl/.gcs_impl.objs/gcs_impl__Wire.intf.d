lib/impl/wire.mli: Format Gcs_core Proc View View_id
