lib/impl/vs_service.mli: Fstatus Gcs_core Gcs_sim Proc Timed Vs_action Vs_node Vs_trace_checker
