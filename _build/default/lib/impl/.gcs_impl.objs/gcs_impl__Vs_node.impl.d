lib/impl/vs_node.ml: Engine Gcs_core Gcs_sim Gcs_stdx List Option Proc View View_id Vs_action Wire
