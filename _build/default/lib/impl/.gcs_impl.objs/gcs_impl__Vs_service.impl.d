lib/impl/vs_service.ml: Gcs_core Gcs_sim Gcs_stdx Hashtbl List Proc Timed View Vs_action Vs_machine Vs_node Vs_trace_checker
