lib/impl/wire.ml: Format Gcs_core List Proc View View_id
