lib/impl/vs_node.mli: Gcs_core Gcs_sim Proc View Vs_action Wire
