lib/impl/to_service.mli: Fstatus Gcs_core Gcs_sim Msg Proc Quorum Timed To_action To_trace_checker Value Vs_action Vs_node Vs_trace_checker Wire
