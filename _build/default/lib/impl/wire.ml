open Gcs_core

type 'm token_entry = { idx : int; src : Proc.t; msg : 'm }

type 'm token = {
  viewid : View_id.t;
  entries : 'm token_entry list;
  next_idx : int;
  delivered : int Proc.Map.t;
  safe_acked : int Proc.Map.t;
  appended : int Proc.Map.t;
}

type 'm packet =
  | Newgroup of { viewid : View_id.t }
  | Accept of { viewid : View_id.t }
  | Nack of { viewid : View_id.t; proposed_num : int }
  | ViewMsg of { view : View.t }
  | Token of 'm token
  | Probe of { viewid_num : int }

let fresh_token viewid =
  {
    viewid;
    entries = [];
    next_idx = 1;
    delivered = Proc.Map.empty;
    safe_acked = Proc.Map.empty;
    appended = Proc.Map.empty;
  }

let pp_packet ppf = function
  | Newgroup { viewid } -> Format.fprintf ppf "newgroup(%a)" View_id.pp viewid
  | Accept { viewid } -> Format.fprintf ppf "accept(%a)" View_id.pp viewid
  | Nack { viewid; proposed_num } ->
      Format.fprintf ppf "nack(%a,%d)" View_id.pp viewid proposed_num
  | ViewMsg { view } -> Format.fprintf ppf "viewmsg(%a)" View.pp view
  | Token t ->
      Format.fprintf ppf "token(%a,#%d,|%d|)" View_id.pp t.viewid t.next_idx
        (List.length t.entries)
  | Probe { viewid_num } -> Format.fprintf ppf "probe(%d)" viewid_num
