let rec is_prefix ~equal s t =
  match (s, t) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: s', y :: t' -> equal x y && is_prefix ~equal s' t'

let consistent ~equal s t = is_prefix ~equal s t || is_prefix ~equal t s

let lub ~equal ss =
  let longer acc s = if List.length s > List.length acc then s else acc in
  let candidate = List.fold_left longer [] ss in
  if List.for_all (fun s -> is_prefix ~equal s candidate) ss then
    Some candidate
  else None

let nth1 s i = if i < 1 then None else List.nth_opt s (i - 1)

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let rec drop n = function
  | [] -> []
  | _ :: rest as s -> if n <= 0 then s else drop (n - 1) rest

let applyall f s =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | x :: rest -> (
        match f x with None -> None | Some y -> go (y :: acc) rest)
  in
  go [] s

let index_of ~equal x s =
  let rec go i = function
    | [] -> None
    | y :: rest -> if equal x y then Some i else go (i + 1) rest
  in
  go 1 s

let rec last = function
  | [] -> None
  | [ x ] -> Some x
  | _ :: rest -> last rest

let rec longest_common_prefix ~equal s t =
  match (s, t) with
  | x :: s', y :: t' when equal x y -> x :: longest_common_prefix ~equal s' t'
  | _ -> []

let rec is_strictly_sorted ~compare = function
  | [] | [ _ ] -> true
  | x :: (y :: _ as rest) -> compare x y < 0 && is_strictly_sorted ~compare rest

let dedup_sorted ~compare s =
  let sorted = List.sort compare s in
  let rec go = function
    | [] -> []
    | [ x ] -> [ x ]
    | x :: (y :: _ as rest) ->
        if compare x y = 0 then go rest else x :: go rest
  in
  go sorted
