(** Finite-sequence operations used throughout the paper's formal material
    (Section 2: prefixes, consistency, least upper bounds, [applyall]).

    Sequences are represented as OCaml lists, head = first element. *)

val is_prefix : equal:('a -> 'a -> bool) -> 'a list -> 'a list -> bool
(** [is_prefix ~equal s t] is true iff [s <= t], i.e. there is [s'] with
    [s @ s' = t]. *)

val consistent : equal:('a -> 'a -> bool) -> 'a list -> 'a list -> bool
(** [consistent ~equal s t] holds iff [s <= t] or [t <= s]. *)

val lub : equal:('a -> 'a -> bool) -> 'a list list -> 'a list option
(** [lub ~equal ss] is the minimum sequence [t] such that every [s] in [ss]
    is a prefix of [t], when the collection is consistent; [None] if the
    collection is inconsistent. The lub of the empty collection is the empty
    sequence. *)

val nth1 : 'a list -> int -> 'a option
(** 1-indexed lookup, as in the paper: [nth1 s i = Some (s i)] when
    [1 <= i <= length s]. *)

val take : int -> 'a list -> 'a list
(** First [n] elements (all of them if the list is shorter). *)

val drop : int -> 'a list -> 'a list
(** All but the first [n] elements. *)

val applyall : ('a -> 'b option) -> 'a list -> 'b list option
(** [applyall f s] applies the partial function [f] pointwise; [None] if
    some element is outside the domain of [f]. *)

val index_of : equal:('a -> 'a -> bool) -> 'a -> 'a list -> int option
(** 1-indexed position of the first occurrence. *)

val last : 'a list -> 'a option

val longest_common_prefix :
  equal:('a -> 'a -> bool) -> 'a list -> 'a list -> 'a list

val is_strictly_sorted : compare:('a -> 'a -> int) -> 'a list -> bool
(** True iff every element is strictly less than its successor. *)

val dedup_sorted : compare:('a -> 'a -> int) -> 'a list -> 'a list
(** Sort by [compare] then remove duplicates. *)
