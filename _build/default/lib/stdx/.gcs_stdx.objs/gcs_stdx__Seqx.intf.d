lib/stdx/seqx.mli:
