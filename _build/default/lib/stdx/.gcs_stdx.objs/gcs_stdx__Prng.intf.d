lib/stdx/prng.mli:
