lib/stdx/seqx.ml: List
