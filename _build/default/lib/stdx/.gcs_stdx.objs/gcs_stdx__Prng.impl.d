lib/stdx/prng.ml: Int64 List
