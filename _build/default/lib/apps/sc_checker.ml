type op =
  | Write of { loc : string; value : string }
  | Read of { loc : string; result : string option }

type history = (Gcs_core.Proc.t * op list) list

module Smap = Map.Make (String)

(* Backtracking search over interleavings: at each step pick a process
   whose next operation is legal in the current store. Memoization on
   (per-process positions, relevant store) keeps common cases fast. *)
let sequentially_consistent history =
  let processes = Array.of_list (List.map snd history) in
  let ops = Array.map Array.of_list processes in
  let n = Array.length ops in
  let total = Array.fold_left (fun acc a -> acc + Array.length a) 0 ops in
  let seen = Hashtbl.create 1024 in
  let key positions store =
    ( Array.to_list (Array.copy positions),
      Smap.bindings store )
  in
  let rec go positions store remaining =
    if remaining = 0 then true
    else
      let k = key positions store in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        let try_process i =
          let pos = positions.(i) in
          if pos >= Array.length ops.(i) then false
          else
            match ops.(i).(pos) with
            | Write { loc; value } ->
                positions.(i) <- pos + 1;
                let ok =
                  go positions (Smap.add loc value store) (remaining - 1)
                in
                positions.(i) <- pos;
                ok
            | Read { loc; result } ->
                if Option.equal String.equal (Smap.find_opt loc store) result
                then begin
                  positions.(i) <- pos + 1;
                  let ok = go positions store (remaining - 1) in
                  positions.(i) <- pos;
                  ok
                end
                else false
        in
        let rec any i = i < n && (try_process i || any (i + 1)) in
        any 0
      end
  in
  go (Array.make n 0) Smap.empty total

let pp_op ppf = function
  | Write { loc; value } -> Format.fprintf ppf "W(%s:=%s)" loc value
  | Read { loc; result } ->
      Format.fprintf ppf "R(%s)=%s" loc
        (Option.value ~default:"init" result)
