open Gcs_core

module Make (M : Machine.S) = struct
  let delivered_ops proc actions =
    List.filter_map
      (fun a ->
        match a with
        | To_action.Brcv { dst; value; _ } when Proc.equal dst proc ->
            Some value
        | _ -> None)
      actions

  let replay proc actions =
    let rec go state applied = function
      | [] -> Ok (state, applied)
      | value :: rest -> (
          match M.decode_op value with
          | Some op -> go (M.apply state op) (applied + 1) rest
          | None -> Error (Printf.sprintf "undecodable operation %S" value))
    in
    go M.initial 0 (delivered_ops proc actions)

  let state_at proc ~time trace =
    let actions =
      List.filter_map
        (fun (t, a) -> if t <= time then Some a else None)
        (Timed.actions trace)
    in
    Result.map fst (replay proc actions)

  let replica_states procs actions =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | p :: rest -> (
          match replay p actions with
          | Ok (state, applied) -> go ((p, state, applied) :: acc) rest
          | Error e -> Error e)
    in
    go [] procs

  let consistent procs actions =
    let sequences = List.map (fun p -> delivered_ops p actions) procs in
    let pairwise_prefix =
      List.for_all
        (fun s ->
          List.for_all
            (fun t -> Gcs_stdx.Seqx.consistent ~equal:Value.equal s t)
            sequences)
        sequences
    in
    pairwise_prefix
    &&
    match replica_states procs actions with
    | Error _ -> false
    | Ok states ->
        List.for_all
          (fun (_, s1, n1) ->
            List.for_all
              (fun (_, s2, n2) -> n1 <> n2 || M.equal s1 s2)
              states)
          states

  let submit proc op time = (time, proc, M.encode_op op)
end
