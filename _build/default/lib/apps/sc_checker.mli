open Gcs_core

(** A decision procedure for sequential consistency of small read/write
    histories.

    Footnote 3 of the paper claims the write-through-TO / read-local
    memory is sequentially consistent. The claim depends on the write's
    {e return} happening when the totally ordered broadcast delivers the
    write back to the submitter (so a process's later operations follow
    its own writes). This checker makes the claim testable: given each
    process's operation sequence (in program order, with the values reads
    returned), it searches for a single interleaving that respects every
    program order and in which each read returns the latest preceding
    write to its location ([None] = initial value).

    The search is exponential in the worst case; intended for histories of
    a few dozen operations, as produced by the tests. *)

type op =
  | Write of { loc : string; value : string }
  | Read of { loc : string; result : string option }

type history = (Proc.t * op list) list
(** One entry per process: its operations in program order. *)

val sequentially_consistent : history -> bool

val pp_op : Format.formatter -> op -> unit
