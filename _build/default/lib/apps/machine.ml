module type S = sig
  type t
  type op

  val initial : t
  val apply : t -> op -> t
  val encode_op : op -> Gcs_core.Value.t
  val decode_op : Gcs_core.Value.t -> op option
  val equal : t -> t -> bool
  val pp : Format.formatter -> t -> unit
end
