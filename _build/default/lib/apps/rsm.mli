open Gcs_core

(** Replicated state machines over a totally ordered broadcast trace.

    Replication is an {e interpretation} of a TO client trace: the replica
    state at processor [q] is the fold of the operations delivered at [q].
    Because TO delivers a prefix of one total order to every processor,
    replicas are prefix-consistent — which [consistent] checks directly. *)

module Make (M : Machine.S) : sig
  val replay :
    Proc.t -> Value.t To_action.t list -> (M.t * int, string) result
  (** Replica state and number of applied operations at a processor after
      the whole trace; [Error] on an undecodable operation. *)

  val state_at :
    Proc.t -> time:float -> Value.t To_action.t Timed.t -> (M.t, string) result
  (** Replica state at a processor at a given time. *)

  val replica_states :
    Proc.t list -> Value.t To_action.t list -> ((Proc.t * M.t * int) list, string) result

  val consistent : Proc.t list -> Value.t To_action.t list -> bool
  (** Replicas that applied the same number of operations are in the same
      state, and the per-replica operation sequences are prefixes of a
      common sequence. *)

  val submit : Proc.t -> M.op -> float -> float * Proc.t * Value.t
  (** Workload helper: an encoded submission for the simulator. *)
end
