open Gcs_core
open Gcs_impl

type mark = { time : float; proc : Proc.t; symbol : char }

let render ~procs ~width ~until ~marks ~net_events =
  let cell time =
    let c = int_of_float (time /. until *. float_of_int width) in
    max 0 (min (width - 1) c)
  in
  let rows =
    List.map (fun p -> (p, Bytes.make width '.')) procs
  in
  List.iter
    (fun m ->
      match List.assoc_opt m.proc rows with
      | None -> ()
      | Some row ->
          let i = cell m.time in
          if Bytes.get row i <> 'V' then Bytes.set row i m.symbol)
    (List.sort (fun a b -> compare a.time b.time) marks);
  let net_row = Bytes.make width ' ' in
  List.iter (fun t -> Bytes.set net_row (cell t) '!') net_events;
  let buf = Buffer.create ((List.length procs + 3) * (width + 8)) in
  Buffer.add_string buf
    (Printf.sprintf "%5s %s\n" "net" (Bytes.to_string net_row));
  List.iter
    (fun (p, row) ->
      Buffer.add_string buf
        (Printf.sprintf "%5s %s\n" (Printf.sprintf "p%d" p)
           (Bytes.to_string row)))
    rows;
  (* Time scale. *)
  let scale = Bytes.make width '-' in
  Buffer.add_string buf (Printf.sprintf "%5s %s\n" "" (Bytes.to_string scale));
  Buffer.add_string buf
    (Printf.sprintf "%5s 0%s%.0f\n" ""
       (String.make (max 1 (width - 1 - String.length (Printf.sprintf "%.0f" until))) ' ')
       until);
  Buffer.contents buf

let of_to_service_run ~procs ~width ~until run =
  let marks = ref [] in
  let net = ref [] in
  List.iter
    (fun (event : To_service.out Timed.event) ->
      match event.Timed.item with
      | Timed.Status _ -> net := event.Timed.time :: !net
      | Timed.Action (To_service.Client (To_action.Bcast (p, _))) ->
          marks := { time = event.Timed.time; proc = p; symbol = 's' } :: !marks
      | Timed.Action (To_service.Client (To_action.Brcv { dst; _ })) ->
          marks := { time = event.Timed.time; proc = dst; symbol = '+' } :: !marks
      | Timed.Action (To_service.Vs_layer (Vs_action.Newview { proc; _ })) ->
          marks := { time = event.Timed.time; proc; symbol = 'V' } :: !marks
      | Timed.Action _ -> ())
    run.To_service.trace;
  render ~procs ~width ~until ~marks:!marks ~net_events:!net
