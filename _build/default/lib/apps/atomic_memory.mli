open Gcs_core

(** Atomic (linearizable) shared memory over totally ordered broadcast:
    {e all} operations, including reads, go through the TO service
    (footnote 3's alternative). A read is answered when its operation is
    delivered back at the submitting replica, with the value at that point
    of the total order — so every replica agrees on every response. *)

type op = Write of { loc : string; value : string } | Read of { loc : string; id : int }

val encode_op : op -> Value.t
val decode_op : Value.t -> op option

val submission : Proc.t -> op -> float -> float * Proc.t * Value.t

type response = { id : int; value : string option }

val responses_at :
  Proc.t -> Value.t To_action.t list -> (response list, string) result
(** Responses to the reads submitted by the given processor, computed from
    its delivered prefix. *)

val all_responses_agree :
  Proc.t list -> Value.t To_action.t list -> bool
(** Every replica computes the same response for every read it has seen —
    the operational content of atomicity here. *)
