open Gcs_core
open Gcs_impl

(** Interactive client sessions over the TO service, with the operation
    discipline of footnote 3:

    - a {e write} is submitted through the TO service and {e completes}
      when the service delivers it back at the submitting processor (the
      "return value" point of footnote 3) — the session's next operation
      is issued only then;
    - a {e read} is served immediately from the local replica and
      completes at once.

    Each processor runs one scripted session; the run yields per-process
    operation histories (with the values reads returned) ready for the
    sequential-consistency decision procedure ({!Sc_checker}). *)

type op = Write of { loc : string; value : string } | Read of { loc : string }

type completion = {
  proc : Proc.t;
  op : op;
  result : string option;  (** reads: the value returned *)
  issued : float;
  completed : float;
}

type run = {
  completions : completion list;  (** in completion-time order *)
  to_trace : Value.t To_action.t Timed.t;
}

val run :
  ?engine:Gcs_sim.Engine.config ->
  To_service.config ->
  scripts:(Proc.t * float * op list) list ->
  failures:(float * Fstatus.event) list ->
  until:float ->
  seed:int ->
  run
(** [scripts] gives, per processor, the session start time and its
    operations in program order. *)

val history : run -> Sc_checker.history
(** Completed operations per process, in program order, as an SC-checkable
    history. Sessions cut off mid-run contribute their completed prefix. *)
