(** A string key-value store machine. *)

type op = Put of string * string | Del of string

include Machine.S with type op := op and type t = string Map.Make(String).t

val get : t -> string -> string option
val bindings : t -> (string * string) list
