open Gcs_core
module R = Rsm.Make (Kv_store)

type t = Kv_store.t

let write_submission proc ~loc ~value time =
  R.submit proc (Kv_store.Put (loc, value)) time

let state_at = R.state_at
let read = Kv_store.get

type read_event = {
  proc : Proc.t;
  time : float;
  loc : string;
  result : string option;
}

let perform_reads trace points =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | (proc, time, loc) :: rest -> (
        match state_at proc ~time trace with
        | Ok state -> go ({ proc; time; loc; result = read state loc } :: acc) rest
        | Error e -> Error e)
  in
  go [] points

let reads_are_consistent trace reads =
  let last_write_before proc time loc =
    List.fold_left
      (fun acc (t, a) ->
        match a with
        | To_action.Brcv { dst; value; _ }
          when Proc.equal dst proc && t <= time -> (
            match Kv_store.decode_op value with
            | Some (Kv_store.Put (l, v)) when String.equal l loc -> Some v
            | Some (Kv_store.Del l) when String.equal l loc -> None
            | _ -> acc)
        | _ -> acc)
      None (Timed.actions trace)
  in
  List.for_all
    (fun r ->
      match (r.result, last_write_before r.proc r.time r.loc) with
      | None, None -> true
      | Some a, Some b -> String.equal a b
      | _ -> false)
    reads
