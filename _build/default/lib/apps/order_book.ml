type side = Buy | Sell
type order = { id : int; side : side; price : int; qty : int }
type trade = { taker : int; maker : int; price : int; qty : int }

type t = { bids : order list; asks : order list; trades : trade list }

type op = Submit of order | Cancel of int

let initial = { bids = []; asks = []; trades = [] }

(* Insert preserving price priority (bids descending, asks ascending) with
   FIFO among equal prices. *)
let rec insert_bid (o : order) = function
  | [] -> [ o ]
  | (head : order) :: rest as book ->
      if o.price > head.price then o :: book else head :: insert_bid o rest

let rec insert_ask (o : order) = function
  | [] -> [ o ]
  | (head : order) :: rest as book ->
      if o.price < head.price then o :: book else head :: insert_ask o rest

let rec match_buy t (o : order) =
  match t.asks with
  | best :: rest when best.price <= o.price && o.qty > 0 ->
      let qty = min o.qty best.qty in
      let trade = { taker = o.id; maker = best.id; price = best.price; qty } in
      let t = { t with trades = trade :: t.trades } in
      let remaining_maker = { best with qty = best.qty - qty } in
      let t =
        if remaining_maker.qty > 0 then { t with asks = remaining_maker :: rest }
        else { t with asks = rest }
      in
      match_buy t { o with qty = o.qty - qty }
  | _ ->
      if o.qty > 0 then { t with bids = insert_bid o t.bids } else t

let rec match_sell t (o : order) =
  match t.bids with
  | best :: rest when best.price >= o.price && o.qty > 0 ->
      let qty = min o.qty best.qty in
      let trade = { taker = o.id; maker = best.id; price = best.price; qty } in
      let t = { t with trades = trade :: t.trades } in
      let remaining_maker = { best with qty = best.qty - qty } in
      let t =
        if remaining_maker.qty > 0 then { t with bids = remaining_maker :: rest }
        else { t with bids = rest }
      in
      match_sell t { o with qty = o.qty - qty }
  | _ ->
      if o.qty > 0 then { t with asks = insert_ask o t.asks } else t

let apply t = function
  | Submit o -> (
      match o.side with Buy -> match_buy t o | Sell -> match_sell t o)
  | Cancel id ->
      {
        t with
        bids = List.filter (fun o -> o.id <> id) t.bids;
        asks = List.filter (fun o -> o.id <> id) t.asks;
      }

let encode_op = function
  | Submit o ->
      Codec.encode
        [
          "o";
          (match o.side with Buy -> "b" | Sell -> "s");
          Codec.int_field o.id;
          Codec.int_field o.price;
          Codec.int_field o.qty;
        ]
  | Cancel id -> Codec.encode [ "c"; Codec.int_field id ]

let decode_op v =
  match Codec.decode v with
  | Some [ "o"; side; id; price; qty ] -> (
      match
        ( side,
          Codec.int_of_field id,
          Codec.int_of_field price,
          Codec.int_of_field qty )
      with
      | "b", Some id, Some price, Some qty ->
          Some (Submit { id; side = Buy; price; qty })
      | "s", Some id, Some price, Some qty ->
          Some (Submit { id; side = Sell; price; qty })
      | _ -> None)
  | Some [ "c"; id ] -> Option.map (fun id -> Cancel id) (Codec.int_of_field id)
  | Some _ | None -> None

let equal_order (a : order) (b : order) = a = b
let equal_trade (a : trade) (b : trade) = a = b

let equal a b =
  List.equal equal_order a.bids b.bids
  && List.equal equal_order a.asks b.asks
  && List.equal equal_trade a.trades b.trades

let pp_order ppf o =
  Format.fprintf ppf "#%d %s %d@%d" o.id
    (match o.side with Buy -> "buy" | Sell -> "sell")
    o.qty o.price

let pp ppf t =
  Format.fprintf ppf "@[<v>bids: %a@ asks: %a@ trades: %d@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_order)
    t.bids
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       pp_order)
    t.asks (List.length t.trades)

let best_bid t = match t.bids with [] -> None | o :: _ -> Some o.price
let best_ask t = match t.asks with [] -> None | o :: _ -> Some o.price
let trade_count t = List.length t.trades
