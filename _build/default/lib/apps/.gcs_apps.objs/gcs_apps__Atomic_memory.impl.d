lib/apps/atomic_memory.ml: Codec Gcs_core Hashtbl List Map Option Printf Proc String To_action
