lib/apps/rsm.mli: Gcs_core Machine Proc Timed To_action Value
