lib/apps/session.mli: Fstatus Gcs_core Gcs_impl Gcs_sim Proc Sc_checker Timed To_action To_service Value
