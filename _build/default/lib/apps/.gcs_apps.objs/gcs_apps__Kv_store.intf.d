lib/apps/kv_store.mli: Machine Map String
