lib/apps/machine.ml: Format Gcs_core
