lib/apps/atomic_memory.mli: Gcs_core Proc To_action Value
