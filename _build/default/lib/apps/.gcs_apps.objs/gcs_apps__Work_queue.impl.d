lib/apps/work_queue.ml: Char Gcs_core Hashtbl List Option Proc String Timed View Vs_action
