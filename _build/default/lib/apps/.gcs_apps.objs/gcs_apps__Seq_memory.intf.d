lib/apps/seq_memory.mli: Gcs_core Proc Timed To_action Value
