lib/apps/counter.mli: Machine
