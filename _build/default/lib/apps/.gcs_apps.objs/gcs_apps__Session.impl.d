lib/apps/session.ml: Codec Gcs_core Gcs_impl Gcs_sim Gcs_stdx Hashtbl List Map Option Proc Sc_checker String Timed To_action To_service Value Vs_node
