lib/apps/rsm.ml: Gcs_core Gcs_stdx List Machine Printf Proc Result Timed To_action Value
