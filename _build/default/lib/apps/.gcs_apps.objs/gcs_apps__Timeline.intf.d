lib/apps/timeline.mli: Gcs_core Gcs_impl Proc To_service
