lib/apps/seq_memory.ml: Gcs_core Kv_store List Proc Rsm String Timed To_action
