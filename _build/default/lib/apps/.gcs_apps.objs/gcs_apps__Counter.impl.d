lib/apps/counter.ml: Codec Format Int Option
