lib/apps/timeline.ml: Buffer Bytes Gcs_core Gcs_impl List Printf Proc String Timed To_action To_service Vs_action
