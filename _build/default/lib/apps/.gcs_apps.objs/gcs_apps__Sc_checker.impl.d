lib/apps/sc_checker.ml: Array Format Gcs_core Hashtbl List Map Option String
