lib/apps/work_queue.mli: Gcs_core Proc Timed View Vs_action
