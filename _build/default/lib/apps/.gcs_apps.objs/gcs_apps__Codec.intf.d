lib/apps/codec.mli:
