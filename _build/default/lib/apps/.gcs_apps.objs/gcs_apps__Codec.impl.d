lib/apps/codec.ml: Buffer List String
