lib/apps/kv_store.ml: Codec Format Map String
