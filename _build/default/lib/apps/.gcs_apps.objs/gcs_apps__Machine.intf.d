lib/apps/machine.mli: Format Gcs_core
