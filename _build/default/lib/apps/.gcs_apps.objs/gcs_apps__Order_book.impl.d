lib/apps/order_book.ml: Codec Format List Option
