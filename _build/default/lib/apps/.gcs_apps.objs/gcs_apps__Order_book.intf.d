lib/apps/order_book.mli: Machine
