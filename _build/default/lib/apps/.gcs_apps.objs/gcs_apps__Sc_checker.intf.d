lib/apps/sc_checker.mli: Format Gcs_core Proc
