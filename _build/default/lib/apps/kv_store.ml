module Smap = Map.Make (String)

type t = string Smap.t
type op = Put of string * string | Del of string

let initial = Smap.empty

let apply t = function
  | Put (k, v) -> Smap.add k v t
  | Del k -> Smap.remove k t

let encode_op = function
  | Put (k, v) -> Codec.encode [ "put"; k; v ]
  | Del k -> Codec.encode [ "del"; k ]

let decode_op value =
  match Codec.decode value with
  | Some [ "put"; k; v ] -> Some (Put (k, v))
  | Some [ "del"; k ] -> Some (Del k)
  | Some _ | None -> None

let equal = Smap.equal String.equal

let pp ppf t =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       (fun ppf (k, v) -> Format.fprintf ppf "%s=%s" k v))
    (Smap.bindings t)

let get t k = Smap.find_opt k t
let bindings = Smap.bindings
