let escape field =
  let buf = Buffer.create (String.length field + 4) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string buf "%p"
      | '|' -> Buffer.add_string buf "%b"
      | c -> Buffer.add_char buf c)
    field;
  Buffer.contents buf

let unescape field =
  let buf = Buffer.create (String.length field) in
  let n = String.length field in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else
      match field.[i] with
      | '%' ->
          if i + 1 >= n then None
          else (
            (match field.[i + 1] with
            | 'p' -> Buffer.add_char buf '%'
            | 'b' -> Buffer.add_char buf '|'
            | _ -> Buffer.add_char buf '\000');
            match field.[i + 1] with
            | 'p' | 'b' -> go (i + 2)
            | _ -> None)
      | '|' -> None
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0

(* The empty record needs a marker distinct from the singleton empty
   field: [encode [""] = ""] but [encode [] = "%n"] ("%n" cannot be
   produced by escaping). *)
let empty_marker = "%n"

let encode fields =
  if fields = [] then empty_marker
  else String.concat "|" (List.map escape fields)

let decode s =
  if String.equal s empty_marker then Some []
  else
  let raw = String.split_on_char '|' s in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | f :: rest -> (
        match unescape f with Some u -> go (u :: acc) rest | None -> None)
  in
  go [] raw

let int_field = string_of_int
let int_of_field = int_of_string_opt
