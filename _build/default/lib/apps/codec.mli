(** Tiny field codec: applications encode their operations into the opaque
    data values ([A = string]) carried by the broadcast services.

    A record is a list of fields; fields may contain arbitrary bytes. The
    encoding separates fields with ['|'] and escapes ['%'] and ['|']. *)

val encode : string list -> string
val decode : string -> string list option
(** [decode (encode fields) = Some fields]; [None] on malformed input. *)

val int_field : int -> string
val int_of_field : string -> int option
