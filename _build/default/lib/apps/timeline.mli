open Gcs_core
open Gcs_impl

(** ASCII timelines of simulated runs: one row per processor, time on the
    horizontal axis — a quick visual of views, traffic and failures for
    the examples and the CLI.

    Symbols: [s] submission (bcast), [+] client delivery (brcv),
    [V] view installation, [!] a failure-status change (drawn on the
    [net] row), [.] nothing. When several events fall into one cell, [V]
    wins, then the latest event. *)

type mark = { time : float; proc : Proc.t; symbol : char }

val render :
  procs:Proc.t list ->
  width:int ->
  until:float ->
  marks:mark list ->
  net_events:float list ->
  string

val of_to_service_run :
  procs:Proc.t list -> width:int -> until:float -> To_service.run -> string
(** Timeline of an end-to-end run: submissions, deliveries, view changes
    and failure events. *)
