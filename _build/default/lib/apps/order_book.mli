(** A deterministic limit-order book — the replicated state machine behind
    the trading-floor example (the paper's NYSE/stock-exchange
    motivation). Orders are matched price-time priority; determinism makes
    every replica compute the same book and the same trades from the same
    operation prefix. *)

type side = Buy | Sell

type order = { id : int; side : side; price : int; qty : int }

type trade = { taker : int; maker : int; price : int; qty : int }

type t = {
  bids : order list;  (** descending price, then FIFO *)
  asks : order list;  (** ascending price, then FIFO *)
  trades : trade list;  (** most recent first *)
}

type op = Submit of order | Cancel of int

include Machine.S with type op := op and type t := t

val best_bid : t -> int option
val best_ask : t -> int option
val trade_count : t -> int
