open Gcs_core

type op =
  | Write of { loc : string; value : string }
  | Read of { loc : string; id : int }

let encode_op = function
  | Write { loc; value } -> Codec.encode [ "w"; loc; value ]
  | Read { loc; id } -> Codec.encode [ "r"; loc; Codec.int_field id ]

let decode_op v =
  match Codec.decode v with
  | Some [ "w"; loc; value ] -> Some (Write { loc; value })
  | Some [ "r"; loc; id ] ->
      Option.map (fun id -> Read { loc; id }) (Codec.int_of_field id)
  | Some _ | None -> None

let submission proc op time = (time, proc, encode_op op)

type response = { id : int; value : string option }

module Smap = Map.Make (String)

(* Replay the delivered prefix at [proc], collecting responses for every
   read operation (regardless of submitter — agreement is checked across
   replicas). *)
let responses_of_prefix values =
  let rec go store acc = function
    | [] -> Ok (List.rev acc)
    | v :: rest -> (
        match decode_op v with
        | Some (Write { loc; value }) -> go (Smap.add loc value store) acc rest
        | Some (Read { loc; id }) ->
            go store ({ id; value = Smap.find_opt loc store } :: acc) rest
        | None -> Error (Printf.sprintf "undecodable operation %S" v))
  in
  go Smap.empty [] values

let delivered proc actions =
  List.filter_map
    (fun a ->
      match a with
      | To_action.Brcv { dst; value; _ } when Proc.equal dst proc -> Some value
      | _ -> None)
    actions

let responses_at proc actions = responses_of_prefix (delivered proc actions)

let all_responses_agree procs actions =
  let tables =
    List.filter_map
      (fun p ->
        match responses_at p actions with
        | Ok rs -> Some rs
        | Error _ -> None)
      procs
  in
  List.length tables = List.length procs
  &&
  let by_id = Hashtbl.create 64 in
  List.for_all
    (fun rs ->
      List.for_all
        (fun r ->
          match Hashtbl.find_opt by_id r.id with
          | Some v -> Option.equal String.equal v r.value
          | None ->
              Hashtbl.replace by_id r.id r.value;
              true)
        rs)
    tables
