(** A counter machine (simplest replicated state machine). *)

type op = Add of int | Reset

include Machine.S with type op := op and type t = int
