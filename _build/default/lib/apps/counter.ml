type t = int
type op = Add of int | Reset

let initial = 0
let apply t = function Add n -> t + n | Reset -> 0

let encode_op = function
  | Add n -> Codec.encode [ "add"; Codec.int_field n ]
  | Reset -> Codec.encode [ "reset" ]

let decode_op value =
  match Codec.decode value with
  | Some [ "add"; n ] -> Option.map (fun n -> Add n) (Codec.int_of_field n)
  | Some [ "reset" ] -> Some Reset
  | Some _ | None -> None

let equal = Int.equal
let pp = Format.pp_print_int
