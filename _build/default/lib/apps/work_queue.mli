open Gcs_core

(** View-aware load balancing over the VS service directly (in the spirit
    of the load-balancing services built on this specification — the
    papers cited as [24] and [27] in the reproduction target).

    Tasks are multicast through VS. Within a view, the member that owns a
    task is determined by rank: the view's members are sorted and the task
    hashes onto one of them. Because all members agree on the view and on
    the per-view delivery order, ownership needs no coordination, and a
    view change automatically re-partitions the work among the survivors.

    Semantics (checked in the tests): a member executes a task when VS
    delivers it and the member owns it in its current view — so within a
    single stable view every delivered task is executed exactly once, and
    across a partition each side executes exactly the tasks delivered in
    its own views. Tasks that die with a view (sent but never ordered) are
    not executed at all: the service is at-most-once by design, and
    clients that need more layer retries on top. *)

type execution = { task : string; executor : Proc.t; time : float }

val owner : View.t -> string -> Proc.t
(** The member of the view that owns a task (rank by sorted member list,
    selected by a deterministic hash of the task). *)

val task_hash : string -> int

val executions :
  p0:Proc.t list -> string Vs_action.t Timed.t -> execution list
(** Interpret a VS timed trace: each delivery of a task at its owner (in
    the receiving processor's view at that moment) is an execution. *)

val counts_by_executor : execution list -> (Proc.t * int) list

val exactly_once :
  tasks:string list -> execution list -> bool
(** Every listed task was executed exactly once. *)
