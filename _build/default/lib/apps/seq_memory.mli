open Gcs_core

(** Sequentially consistent shared memory over totally ordered broadcast
    (footnote 3 of the paper): writes are sent through the TO service and
    applied on delivery at every replica; reads are served immediately
    from the local replica. *)

type t
(** A replica's view of the memory: locations to values. *)

val write_submission :
  Proc.t -> loc:string -> value:string -> float -> float * Proc.t * Value.t
(** A timed write submission for the simulator workload. *)

val state_at :
  Proc.t -> time:float -> Value.t To_action.t Timed.t -> (t, string) result

val read : t -> string -> string option
(** A local read (performed on the replica state, as footnote 3
    prescribes). *)

type read_event = {
  proc : Proc.t;
  time : float;
  loc : string;
  result : string option;
}

val perform_reads :
  Value.t To_action.t Timed.t ->
  (Proc.t * float * string) list ->
  (read_event list, string) result
(** Execute local reads at given (processor, time, location) points. *)

val reads_are_consistent :
  Value.t To_action.t Timed.t -> read_event list -> bool
(** Every read returns the value of the last write to its location
    delivered at its processor before the read — the definition of the
    read-local discipline; combined with the TO total order on writes this
    yields sequential consistency. *)
