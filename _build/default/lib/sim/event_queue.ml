type 'a node =
  | Leaf
  | Node of {
      rank : int;
      time : float;
      seq : int;
      value : 'a;
      left : 'a node;
      right : 'a node;
    }

type 'a t = { heap : 'a node; next_seq : int; size : int }

let empty = { heap = Leaf; next_seq = 0; size = 0 }
let is_empty t = t.heap = Leaf
let size t = t.size

let rank = function Leaf -> 0 | Node { rank; _ } -> rank

let node time seq value left right =
  if rank left >= rank right then
    Node { rank = rank right + 1; time; seq; value; left; right }
  else Node { rank = rank left + 1; time; seq; value; left = right; right = left }

let before t1 s1 t2 s2 = t1 < t2 || (t1 = t2 && s1 < s2)

let rec merge a b =
  match (a, b) with
  | Leaf, h | h, Leaf -> h
  | Node na, Node nb ->
      if before na.time na.seq nb.time nb.seq then
        node na.time na.seq na.value na.left (merge na.right b)
      else node nb.time nb.seq nb.value nb.left (merge a nb.right)

let add t ~time value =
  let singleton =
    Node { rank = 1; time; seq = t.next_seq; value; left = Leaf; right = Leaf }
  in
  { heap = merge t.heap singleton; next_seq = t.next_seq + 1; size = t.size + 1 }

let pop t =
  match t.heap with
  | Leaf -> None
  | Node { time; value; left; right; _ } ->
      Some
        ( time,
          value,
          { heap = merge left right; next_seq = t.next_seq; size = t.size - 1 }
        )

let peek_time t =
  match t.heap with Leaf -> None | Node { time; _ } -> Some time
