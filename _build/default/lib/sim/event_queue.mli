(** Purely functional priority queue of timed events (leftist heap).

    Events are ordered by time; ties break by insertion sequence number, so
    simultaneous events are processed in FIFO order and runs are
    deterministic. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val add : 'a t -> time:float -> 'a -> 'a t
(** Insert an event at an absolute time. *)

val pop : 'a t -> (float * 'a * 'a t) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option
