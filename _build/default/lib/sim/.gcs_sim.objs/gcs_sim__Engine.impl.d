lib/sim/engine.ml: Event_queue Fstatus Gcs_core Gcs_stdx List Option Proc Timed
