lib/sim/engine.mli: Fstatus Gcs_core Gcs_stdx Proc Timed
