(** Summaries and the operations of Figure 8.

    A summary is the state-exchange record
    [⟨con, ord, next, high⟩ : P(L×A) × L* × N⁺ × G⊥]. *)

type t = {
  con : Value.t Label.Map.t;  (** content: a partial function [L → A] *)
  ord : Label.t list;  (** tentative total order of labels *)
  next : int;  (** index of the next label to confirm (1-based) *)
  high : View_id.t option;  (** highest established primary, or ⊥ *)
}

val make :
  con:Value.t Label.Map.t ->
  ord:Label.t list ->
  next:int ->
  high:View_id.t option ->
  t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val confirm : t -> Label.t list
(** [x.confirm]: the prefix of [x.ord] of length
    [min (x.next - 1) (length x.ord)]. *)

(** The following operate on [Y], a partial function from processor ids to
    summaries (the [gotstate] component), represented as a map. They are
    only meaningful when [Y] is non-empty. *)

val knowncontent : t Proc.Map.t -> Value.t Label.Map.t
(** Union of the [con] components. When two summaries disagree on a label's
    value the first binding wins — invariants guarantee this never happens
    in reachable states. *)

val maxprimary : t Proc.Map.t -> View_id.t option
(** Greatest [high] component. *)

val reps : t Proc.Map.t -> Proc.t list
(** Members whose [high] equals [maxprimary]. *)

val chosenrep : t Proc.Map.t -> Proc.t
(** A consistently chosen representative: the one with the greatest
    processor id (any deterministic rule works, per the paper). *)

val shortorder : t Proc.Map.t -> Label.t list
(** The [ord] of the chosen representative. *)

val fullorder : t Proc.Map.t -> Label.t list
(** [shortorder Y] followed by the remaining labels of
    [dom (knowncontent Y)] in label order. *)

val maxnextconfirm : t Proc.Map.t -> int
(** Greatest reported [next]. *)
