open Gcs_automata
module Pg_map = Vs_machine.Pg_map
module Int_set = Set.Make (Int)

type 'm state = {
  created : Proc.Set.t View_id.Map.t;
  current_viewid : View_id.t option Proc.Map.t;
  pending : 'm list Pg_map.t;
  queue : ('m * Proc.t) list View_id.Map.t;
  delivered : Int_set.t Pg_map.t;
  next_safe : int Pg_map.t;
}

type 'm params = {
  procs : Proc.t list;
  p0 : Proc.t list;
  equal_msg : 'm -> 'm -> bool;
}

let current_of state p =
  match Proc.Map.find_opt p state.current_viewid with
  | Some g -> g
  | None -> None

let pending_of state p g =
  match Pg_map.find_opt (p, g) state.pending with Some s -> s | None -> []

let queue_of state g =
  match View_id.Map.find_opt g state.queue with Some s -> s | None -> []

let delivered_of state p g =
  match Pg_map.find_opt (p, g) state.delivered with
  | Some s -> s
  | None -> Int_set.empty

let next_safe_of state p g =
  match Pg_map.find_opt (p, g) state.next_safe with Some n -> n | None -> 1

let member_set state g = View_id.Map.find_opt g state.created

let prefix_point set =
  let rec go k = if Int_set.mem (k + 1) set then go (k + 1) else k in
  go 0

let max_position set =
  match Int_set.max_elt_opt set with Some m -> m | None -> 0

let initial params =
  let p0 = Proc.set_of_list params.p0 in
  {
    created = View_id.Map.singleton View_id.g0 p0;
    current_viewid =
      List.fold_left
        (fun acc p ->
          Proc.Map.add p
            (if Proc.Set.mem p p0 then Some View_id.g0 else None)
            acc)
        Proc.Map.empty params.procs;
    pending = Pg_map.empty;
    queue = View_id.Map.empty;
    delivered = Pg_map.empty;
    next_safe = Pg_map.empty;
  }

let transition params state action =
  match action with
  | Vs_action.Createview v ->
      if
        View_id.Map.for_all
          (fun g _ -> View_id.compare v.View.id g > 0)
          state.created
      then
        Some
          {
            state with
            created = View_id.Map.add v.View.id v.View.set state.created;
          }
      else None
  | Vs_action.Newview { proc = p; view = v } -> (
      match member_set state v.View.id with
      | Some s
        when Proc.Set.equal s v.View.set
             && View_id.lt_opt (current_of state p) (Some v.View.id) ->
          Some
            {
              state with
              current_viewid =
                Proc.Map.add p (Some v.View.id) state.current_viewid;
            }
      | _ -> None)
  | Vs_action.Gpsnd { sender = p; msg = m } -> (
      match current_of state p with
      | None -> Some state
      | Some g ->
          Some
            {
              state with
              pending =
                Pg_map.add (p, g) (pending_of state p g @ [ m ]) state.pending;
            })
  | Vs_action.Vs_order { msg = m; sender = p; viewid = g } -> (
      match pending_of state p g with
      | head :: rest when params.equal_msg head m ->
          Some
            {
              state with
              pending = Pg_map.add (p, g) rest state.pending;
              queue =
                View_id.Map.add g (queue_of state g @ [ (m, p) ]) state.queue;
            }
      | _ -> None)
  | Vs_action.Gprcv { src = p; dst = q; msg = m } -> (
      match current_of state q with
      | None -> None
      | Some g ->
          (* Deliver any position beyond the last delivered one whose entry
             matches — positions increase monotonically but may skip. *)
          let dset = delivered_of state q g in
          let from = max_position dset in
          let entries = queue_of state g in
          let rec find i = function
            | [] -> None
            | (m', p') :: rest ->
                if i > from && params.equal_msg m' m && Proc.equal p' p then
                  Some i
                else find (i + 1) rest
          in
          (match find 1 entries with
          | Some i ->
              Some
                {
                  state with
                  delivered = Pg_map.add (q, g) (Int_set.add i dset) state.delivered;
                }
          | None -> None))
  | Vs_action.Safe { src = p; dst = q; msg = m } -> (
      match current_of state q with
      | None -> None
      | Some g -> (
          match member_set state g with
          | None -> None
          | Some s -> (
              let j = next_safe_of state q g in
              match Gcs_stdx.Seqx.nth1 (queue_of state g) j with
              | Some (m', p')
                when params.equal_msg m' m && Proc.equal p' p
                     && Proc.Set.for_all
                          (fun r -> prefix_point (delivered_of state r g) >= j)
                          s ->
                  Some
                    {
                      state with
                      next_safe = Pg_map.add (q, g) (j + 1) state.next_safe;
                    }
              | _ -> None)))

let enabled params state =
  let newviews =
    View_id.Map.fold
      (fun g s acc ->
        Proc.Set.fold
          (fun p acc ->
            if View_id.lt_opt (current_of state p) (Some g) then
              Vs_action.Newview { proc = p; view = { View.id = g; set = s } }
              :: acc
            else acc)
          s acc)
      state.created []
  in
  let vs_orders =
    Pg_map.fold
      (fun (p, g) pending acc ->
        match pending with
        | m :: _ ->
            Vs_action.Vs_order { msg = m; sender = p; viewid = g } :: acc
        | [] -> acc)
      state.pending []
  in
  let gprcvs =
    List.concat_map
      (fun q ->
        match current_of state q with
        | None -> []
        | Some g ->
            let from = max_position (delivered_of state q g) in
            let entries = queue_of state g in
            List.filteri (fun i _ -> i + 1 > from) entries
            |> List.map (fun (m, p) ->
                   Vs_action.Gprcv { src = p; dst = q; msg = m }))
      params.procs
  in
  let safes =
    List.filter_map
      (fun q ->
        match current_of state q with
        | None -> None
        | Some g -> (
            match member_set state g with
            | None -> None
            | Some s -> (
                let j = next_safe_of state q g in
                match Gcs_stdx.Seqx.nth1 (queue_of state g) j with
                | Some (m, p)
                  when Proc.Set.for_all
                         (fun r -> prefix_point (delivered_of state r g) >= j)
                         s ->
                    Some (Vs_action.Safe { src = p; dst = q; msg = m })
                | _ -> None)))
      params.procs
  in
  newviews @ vs_orders @ gprcvs @ safes

let automaton params =
  {
    Automaton.name = "VSgap-machine";
    initial = initial params;
    kind = Vs_action.kind ~procs:params.procs;
    enabled = enabled params;
    transition = transition params;
  }

let inject_createview params state prng =
  let fresh_num =
    1 + View_id.Map.fold (fun g _ acc -> max g.View_id.num acc) state.created 0
  in
  let origin = Gcs_stdx.Prng.pick_exn prng params.procs in
  let members =
    match Gcs_stdx.Prng.subset prng params.procs with
    | [] -> [ origin ]
    | ms -> ms
  in
  [
    Vs_action.Createview
      (View.make (View_id.make ~num:fresh_num ~origin) members);
  ]

let invariants params =
  [
    Invariant.make "gap: delivered positions within the queue" (fun s ->
        Pg_map.for_all
          (fun (_, g) dset ->
            max_position dset <= List.length (queue_of s g))
          s.delivered);
    Invariant.make "gap: safe frontier under every member's prefix point"
      (fun s ->
        Pg_map.for_all
          (fun (q, g) j ->
            ignore q;
            match member_set s g with
            | None -> j = 1
            | Some members ->
                Proc.Set.for_all
                  (fun r -> prefix_point (delivered_of s r g) >= j - 1)
                  members)
          s.next_safe);
    Invariant.make "gap: current views are created" (fun s ->
        List.for_all
          (fun p ->
            match current_of s p with
            | None -> true
            | Some g -> View_id.Map.mem g s.created)
          params.procs);
    Invariant.make "gap: delivery only in views the processor reached"
      (fun s ->
        Pg_map.for_all
          (fun (q, g) dset ->
            Int_set.is_empty dset
            || View_id.le_opt (Some g) (current_of s q))
          s.delivered);
  ]
