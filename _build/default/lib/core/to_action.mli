(** Actions of the totally ordered broadcast specification TO-machine
    (Figure 3), parametric in the data-value type. *)

type 'a t =
  | Bcast of Proc.t * 'a  (** [bcast(a)_p]: client submission at [p] *)
  | Brcv of { src : Proc.t; dst : Proc.t; value : 'a }
      (** [brcv(a)_{p,q}]: delivery at [dst] of a value sent at [src] *)
  | To_order of 'a * Proc.t  (** internal placement into the total order *)

val kind : procs:Proc.t list -> 'a t -> Gcs_automata.Kind.t option
(** Signature of TO-machine over processor set [procs]; [None] for actions
    mentioning processors outside [procs]. *)

val is_external : procs:Proc.t list -> 'a t -> bool
val equal : equal_value:('a -> 'a -> bool) -> 'a t -> 'a t -> bool

val pp :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a t -> unit
