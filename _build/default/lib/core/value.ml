type t = string

let compare = String.compare
let equal = String.equal
let pp ppf v = Format.fprintf ppf "%S" v
