(** VStoTO composed with the footnote-5 gap-delivery VS variant
    ({!Vs_gap_machine}).

    Footnote 5 claims the weaker service suffices for the total order
    application because VStoTO updates its stable order only after a
    message becomes safe, and safety implies prefix-complete delivery.
    This module provides the composition so the tests can check that the
    client traces still satisfy TO-machine. *)

type state = {
  vs : Msg.t Vs_gap_machine.state;
  nodes : Vstoto.state Proc.Map.t;
}

type params = {
  procs : Proc.t list;
  p0 : Proc.t list;
  quorums : Quorum.t;
}

val make_params :
  procs:Proc.t list -> p0:Proc.t list -> quorums:Quorum.t -> unit -> params

val node : state -> Proc.t -> Vstoto.state
val automaton : params -> (state, Sys_action.t) Gcs_automata.Automaton.t

val inject :
  params ->
  values:Value.t list ->
  state ->
  Gcs_stdx.Prng.t ->
  Sys_action.t list
