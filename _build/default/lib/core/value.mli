(** Client data values — the set [A] of the paper.

    Applications encode their operations into strings (see [Gcs_apps] for
    codecs); the group-communication layers never inspect values. *)

type t = string

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
