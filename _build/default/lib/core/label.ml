type t = { id : View_id.t; seqno : int; origin : Proc.t }

let make ~id ~seqno ~origin = { id; seqno; origin }

let compare a b =
  match View_id.compare a.id b.id with
  | 0 -> (
      match Int.compare a.seqno b.seqno with
      | 0 -> Proc.compare a.origin b.origin
      | c -> c)
  | c -> c

let equal a b = compare a b = 0

let pp ppf l =
  Format.fprintf ppf "<%a:%d:%a>" View_id.pp l.id l.seqno Proc.pp l.origin

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
