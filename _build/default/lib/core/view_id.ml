type t = { num : int; origin : Proc.t }

let g0 = { num = 0; origin = 0 }
let make ~num ~origin = { num; origin }

let compare a b =
  match Int.compare a.num b.num with
  | 0 -> Proc.compare a.origin b.origin
  | c -> c

let equal a b = compare a b = 0
let pp ppf g = Format.fprintf ppf "g%d.%d" g.num g.origin

let compare_opt a b =
  match (a, b) with
  | None, None -> 0
  | None, Some _ -> -1
  | Some _, None -> 1
  | Some a, Some b -> compare a b

let lt_opt a b = compare_opt a b < 0
let le_opt a b = compare_opt a b <= 0

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)
