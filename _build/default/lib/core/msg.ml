type t = App of Label.t * Value.t | Summary of Summary.t

let equal a b =
  match (a, b) with
  | App (l, v), App (l', v') -> Label.equal l l' && Value.equal v v'
  | Summary x, Summary y -> Summary.equal x y
  | (App _ | Summary _), _ -> false

let compare a b =
  match (a, b) with
  | App (l, v), App (l', v') -> (
      match Label.compare l l' with 0 -> Value.compare v v' | c -> c)
  | Summary x, Summary y -> Summary.compare x y
  | App _, Summary _ -> -1
  | Summary _, App _ -> 1

let pp ppf = function
  | App (l, v) -> Format.fprintf ppf "app(%a=%a)" Label.pp l Value.pp v
  | Summary x -> Format.fprintf ppf "sum%a" Summary.pp x

let is_summary = function Summary _ -> true | App _ -> false
