(** Plain-text serialization of timed traces, so runs can be dumped to a
    file and conformance-checked later (or produced by an external system
    and validated against the specifications).

    Format: one event per line,
    [<time> <event>], where [<event>] is one of

    {v
    status proc <p> good|bad|ugly
    status link <p> <q> good|bad|ugly
    bcast <p> <value>
    brcv <src> <dst> <value>
    gpsnd <p> <value>
    gprcv <src> <dst> <value>
    safe <src> <dst> <value>
    newview <p> <num>.<origin> <m1,m2,...>
    v}

    Values are %-escaped (space, newline, percent), so arbitrary strings
    round-trip. The VS form carries string messages (applications decide
    their own encoding inside the message). *)

val escape : string -> string
val unescape : string -> string option

(** {2 TO-level traces} *)

val to_to_string : Value.t To_action.t Timed.t -> string
val to_of_string : string -> (Value.t To_action.t Timed.t, string) result

(** {2 VS-level traces (string messages)} *)

val vs_to_string : string Vs_action.t Timed.t -> string
val vs_of_string : string -> (string Vs_action.t Timed.t, string) result
