type t = int

let compare = Int.compare
let equal = Int.equal
let pp = Format.pp_print_int
let all ~n = List.init n (fun p -> p)

module Set = Set.Make (Int)
module Map = Map.Make (Int)

let set_of_list ps = Set.of_list ps

let pp_set ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       pp)
    (Set.elements s)
