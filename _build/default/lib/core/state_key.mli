(** Canonical string serializations of states, for the exhaustive explorer
    ({!Gcs_automata.Explore}).

    Keys are built from [Map.bindings]/[Set.elements], which are sorted,
    so two structurally equal states always produce the same key (OCaml's
    polymorphic comparison and marshalling are not canonical for
    balanced-tree maps). *)

val view_id : View_id.t -> string
val label : Label.t -> string
val summary : Summary.t -> string
val msg : Msg.t -> string
val vs_state : msg:('m -> string) -> 'm Vs_machine.state -> string
val node_state : Vstoto.state -> string
val system_state : Vstoto_system.state -> string
