let escape s =
  let buf = Buffer.create (String.length s + 4) in
  String.iter
    (fun c ->
      match c with
      | ' ' -> Buffer.add_string buf "%s"
      | '\n' -> Buffer.add_string buf "%n"
      | '%' -> Buffer.add_string buf "%p"
      | ',' -> Buffer.add_string buf "%c"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let unescape s =
  let buf = Buffer.create (String.length s) in
  let n = String.length s in
  let rec go i =
    if i >= n then Some (Buffer.contents buf)
    else
      match s.[i] with
      | '%' ->
          if i + 1 >= n then None
          else (
            (match s.[i + 1] with
            | 's' -> Buffer.add_char buf ' '
            | 'n' -> Buffer.add_char buf '\n'
            | 'p' -> Buffer.add_char buf '%'
            | 'c' -> Buffer.add_char buf ','
            | _ -> ());
            match s.[i + 1] with
            | 's' | 'n' | 'p' | 'c' -> go (i + 2)
            | _ -> None)
      | ' ' | '\n' -> None
      | c ->
          Buffer.add_char buf c;
          go (i + 1)
  in
  go 0

let status_to_string = function
  | Fstatus.Good -> "good"
  | Fstatus.Bad -> "bad"
  | Fstatus.Ugly -> "ugly"

let status_of_string = function
  | "good" -> Some Fstatus.Good
  | "bad" -> Some Fstatus.Bad
  | "ugly" -> Some Fstatus.Ugly
  | _ -> None

let event_to_string item =
  match item with
  | Timed.Status (Fstatus.Proc_status (p, s)) ->
      Printf.sprintf "status proc %d %s" p (status_to_string s)
  | Timed.Status (Fstatus.Link_status (p, q, s)) ->
      Printf.sprintf "status link %d %d %s" p q (status_to_string s)
  | Timed.Action _ -> assert false (* handled by the callers *)

let line time body = Printf.sprintf "%.6f %s" time body

let to_to_string trace =
  String.concat "\n"
    (List.map
       (fun (e : _ Timed.event) ->
         match e.Timed.item with
         | Timed.Status _ -> line e.Timed.time (event_to_string e.Timed.item)
         | Timed.Action (To_action.Bcast (p, v)) ->
             line e.Timed.time (Printf.sprintf "bcast %d %s" p (escape v))
         | Timed.Action (To_action.Brcv { src; dst; value }) ->
             line e.Timed.time
               (Printf.sprintf "brcv %d %d %s" src dst (escape value))
         | Timed.Action (To_action.To_order (v, p)) ->
             line e.Timed.time (Printf.sprintf "toorder %d %s" p (escape v)))
       trace)

let vs_to_string trace =
  String.concat "\n"
    (List.map
       (fun (e : _ Timed.event) ->
         match e.Timed.item with
         | Timed.Status _ -> line e.Timed.time (event_to_string e.Timed.item)
         | Timed.Action (Vs_action.Gpsnd { sender; msg }) ->
             line e.Timed.time
               (Printf.sprintf "gpsnd %d %s" sender (escape msg))
         | Timed.Action (Vs_action.Gprcv { src; dst; msg }) ->
             line e.Timed.time
               (Printf.sprintf "gprcv %d %d %s" src dst (escape msg))
         | Timed.Action (Vs_action.Safe { src; dst; msg }) ->
             line e.Timed.time
               (Printf.sprintf "safe %d %d %s" src dst (escape msg))
         | Timed.Action (Vs_action.Newview { proc; view }) ->
             line e.Timed.time
               (Printf.sprintf "newview %d %d.%d %s" proc view.View.id.View_id.num
                  view.View.id.View_id.origin
                  (String.concat ","
                     (List.map string_of_int (Proc.Set.elements view.View.set))))
         | Timed.Action (Vs_action.Createview view) ->
             line e.Timed.time
               (Printf.sprintf "createview %d.%d %s" view.View.id.View_id.num
                  view.View.id.View_id.origin
                  (String.concat ","
                     (List.map string_of_int (Proc.Set.elements view.View.set))))
         | Timed.Action (Vs_action.Vs_order { msg; sender; viewid }) ->
             line e.Timed.time
               (Printf.sprintf "vsorder %d %d.%d %s" sender viewid.View_id.num
                  viewid.View_id.origin (escape msg)))
       trace)

(* ---------------- parsing ---------------- *)

let parse_int s = int_of_string_opt s
let parse_float s = float_of_string_opt s

let parse_view_id s =
  match String.split_on_char '.' s with
  | [ num; origin ] -> (
      match (parse_int num, parse_int origin) with
      | Some num, Some origin -> Some (View_id.make ~num ~origin)
      | _ -> None)
  | _ -> None

let parse_members s =
  let parts = if s = "" then [] else String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | x :: rest -> (
        match parse_int x with Some p -> go (p :: acc) rest | None -> None)
  in
  go [] parts

let parse_status_line time words =
  match words with
  | [ "proc"; p; s ] -> (
      match (parse_int p, status_of_string s) with
      | Some p, Some s -> Ok (Timed.status time (Fstatus.Proc_status (p, s)))
      | _ -> Error "malformed proc status")
  | [ "link"; p; q; s ] -> (
      match (parse_int p, parse_int q, status_of_string s) with
      | Some p, Some q, Some s ->
          Ok (Timed.status time (Fstatus.Link_status (p, q, s)))
      | _ -> Error "malformed link status")
  | _ -> Error "malformed status line"

let parse_lines parse_action text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let rec go acc i = function
    | [] -> Ok (List.rev acc)
    | l :: rest -> (
        match String.split_on_char ' ' l with
        | time :: "status" :: words -> (
            match parse_float time with
            | None -> Error (Printf.sprintf "line %d: bad time" i)
            | Some t -> (
                match parse_status_line t words with
                | Ok e -> go (e :: acc) (i + 1) rest
                | Error msg -> Error (Printf.sprintf "line %d: %s" i msg)))
        | time :: words -> (
            match parse_float time with
            | None -> Error (Printf.sprintf "line %d: bad time" i)
            | Some t -> (
                match parse_action t words with
                | Ok e -> go (e :: acc) (i + 1) rest
                | Error msg -> Error (Printf.sprintf "line %d: %s" i msg)))
        | [] -> go acc (i + 1) rest)
  in
  go [] 1 lines

let to_of_string text =
  parse_lines
    (fun t words ->
      match words with
      | [ "bcast"; p; v ] -> (
          match (parse_int p, unescape v) with
          | Some p, Some v -> Ok (Timed.action t (To_action.Bcast (p, v)))
          | _ -> Error "malformed bcast")
      | [ "brcv"; src; dst; v ] -> (
          match (parse_int src, parse_int dst, unescape v) with
          | Some src, Some dst, Some value ->
              Ok (Timed.action t (To_action.Brcv { src; dst; value }))
          | _ -> Error "malformed brcv")
      | [ "toorder"; p; v ] -> (
          match (parse_int p, unescape v) with
          | Some p, Some v -> Ok (Timed.action t (To_action.To_order (v, p)))
          | _ -> Error "malformed toorder")
      | _ -> Error "unknown TO event")
    text

let vs_of_string text =
  parse_lines
    (fun t words ->
      match words with
      | [ "gpsnd"; p; m ] -> (
          match (parse_int p, unescape m) with
          | Some sender, Some msg ->
              Ok (Timed.action t (Vs_action.Gpsnd { sender; msg }))
          | _ -> Error "malformed gpsnd")
      | [ "gprcv"; src; dst; m ] -> (
          match (parse_int src, parse_int dst, unescape m) with
          | Some src, Some dst, Some msg ->
              Ok (Timed.action t (Vs_action.Gprcv { src; dst; msg }))
          | _ -> Error "malformed gprcv")
      | [ "safe"; src; dst; m ] -> (
          match (parse_int src, parse_int dst, unescape m) with
          | Some src, Some dst, Some msg ->
              Ok (Timed.action t (Vs_action.Safe { src; dst; msg }))
          | _ -> Error "malformed safe")
      | [ "newview"; p; id; members ] -> (
          match (parse_int p, parse_view_id id, parse_members members) with
          | Some proc, Some id, Some members ->
              Ok
                (Timed.action t
                   (Vs_action.Newview { proc; view = View.make id members }))
          | _ -> Error "malformed newview")
      | [ "createview"; id; members ] -> (
          match (parse_view_id id, parse_members members) with
          | Some id, Some members ->
              Ok (Timed.action t (Vs_action.Createview (View.make id members)))
          | _ -> Error "malformed createview")
      | [ "vsorder"; p; id; m ] -> (
          match (parse_int p, parse_view_id id, unescape m) with
          | Some sender, Some viewid, Some msg ->
              Ok (Timed.action t (Vs_action.Vs_order { msg; sender; viewid }))
          | _ -> Error "malformed vsorder")
      | _ -> Error "unknown VS event")
    text
