(** Messages exchanged by VStoTO processes through the VS service:
    labelled application values [(L × A)] or state-exchange [summaries]. *)

type t = App of Label.t * Value.t | Summary of Summary.t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val is_summary : t -> bool
