(** Processor identifiers — the totally ordered finite set [P] of the paper.

    Processors are numbered [0 .. n-1]. *)

type t = int

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val all : n:int -> t list
(** The processor set [P] for a system of [n] processors: [0 .. n-1]. *)

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
val pp_set : Format.formatter -> Set.t -> unit
