(** Actions of the composed VStoTO-system: the client interface
    ([bcast]/[brcv]), the internal actions of the VStoTO processes
    ([label]/[confirm]) and the actions of the underlying VS service. *)

type t =
  | Bcast of Proc.t * Value.t  (** client submission at a processor *)
  | Brcv of { src : Proc.t; dst : Proc.t; value : Value.t }
      (** client delivery at [dst] of a value originating at [src] *)
  | Label_act of Proc.t * Value.t  (** [label(a)_p] *)
  | Confirm of Proc.t  (** [confirm_p] *)
  | Vs of Msg.t Vs_action.t  (** VS-layer action *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val vstoto_kind : me:Proc.t -> t -> Gcs_automata.Kind.t option
(** Signature of the automaton [VStoTO_p] for [p = me] (Figure 9). *)

val system_kind : procs:Proc.t list -> t -> Gcs_automata.Kind.t option
(** Signature of the composed VStoTO-system with the VS-layer interface
    actions hidden: [bcast] input, [brcv] output, everything else
    internal. *)
