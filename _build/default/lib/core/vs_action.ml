type 'm t =
  | Gpsnd of { sender : Proc.t; msg : 'm }
  | Gprcv of { src : Proc.t; dst : Proc.t; msg : 'm }
  | Safe of { src : Proc.t; dst : Proc.t; msg : 'm }
  | Newview of { proc : Proc.t; view : View.t }
  | Createview of View.t
  | Vs_order of { msg : 'm; sender : Proc.t; viewid : View_id.t }

let kind ~procs action =
  let known p = List.mem p procs in
  match action with
  | Gpsnd { sender; _ } ->
      if known sender then Some Gcs_automata.Kind.Input else None
  | Gprcv { src; dst; _ } | Safe { src; dst; _ } ->
      if known src && known dst then Some Gcs_automata.Kind.Output else None
  | Newview { proc; view } ->
      if known proc && View.mem proc view then Some Gcs_automata.Kind.Output
      else None
  | Createview view ->
      if Proc.Set.for_all known view.View.set then
        Some Gcs_automata.Kind.Internal
      else None
  | Vs_order { sender; _ } ->
      if known sender then Some Gcs_automata.Kind.Internal else None

let is_external ~procs action =
  match kind ~procs action with
  | Some k -> Gcs_automata.Kind.is_external k
  | None -> false

let equal ~equal_msg a b =
  match (a, b) with
  | Gpsnd a, Gpsnd b -> Proc.equal a.sender b.sender && equal_msg a.msg b.msg
  | Gprcv a, Gprcv b ->
      Proc.equal a.src b.src && Proc.equal a.dst b.dst
      && equal_msg a.msg b.msg
  | Safe a, Safe b ->
      Proc.equal a.src b.src && Proc.equal a.dst b.dst
      && equal_msg a.msg b.msg
  | Newview a, Newview b ->
      Proc.equal a.proc b.proc && View.equal a.view b.view
  | Createview a, Createview b -> View.equal a b
  | Vs_order a, Vs_order b ->
      equal_msg a.msg b.msg && Proc.equal a.sender b.sender
      && View_id.equal a.viewid b.viewid
  | (Gpsnd _ | Gprcv _ | Safe _ | Newview _ | Createview _ | Vs_order _), _ ->
      false

let pp pp_msg ppf = function
  | Gpsnd { sender; msg } ->
      Format.fprintf ppf "gpsnd(%a)_%a" pp_msg msg Proc.pp sender
  | Gprcv { src; dst; msg } ->
      Format.fprintf ppf "gprcv(%a)_{%a,%a}" pp_msg msg Proc.pp src Proc.pp dst
  | Safe { src; dst; msg } ->
      Format.fprintf ppf "safe(%a)_{%a,%a}" pp_msg msg Proc.pp src Proc.pp dst
  | Newview { proc; view } ->
      Format.fprintf ppf "newview(%a)_%a" View.pp view Proc.pp proc
  | Createview view -> Format.fprintf ppf "createview(%a)" View.pp view
  | Vs_order { msg; sender; viewid } ->
      Format.fprintf ppf "vs-order(%a,%a,%a)" pp_msg msg Proc.pp sender
        View_id.pp viewid
