(** Labels — the set [L = G × N⁺ × P] of Figure 8, ordered
    lexicographically by (view id, sequence number, origin). *)

type t = { id : View_id.t; seqno : int; origin : Proc.t }

val make : id:View_id.t -> seqno:int -> origin:Proc.t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
