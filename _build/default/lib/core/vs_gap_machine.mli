(** The footnote-5 variant of the VS specification: per-view total order
    with {e gaps} allowed in delivery.

    Footnote 5 observes that the prefix-delivery property of VS-machine is
    stronger than what common group communication systems provide, and
    that VStoTO only needs the weaker guarantee: messages are totally
    ordered within each view, deliveries at each processor follow that
    order but may skip messages, and a [safe] notification for a message
    implies that every member has delivered the {e entire prefix} up to
    that message. Because VStoTO advances its stable order only on [safe],
    this suffices for TO (checked in the tests).

    Differences from {!Vs_machine}:
    - [gprcv] may deliver any not-yet-passed queue position (monotonically
      increasing positions per processor and view, gaps allowed);
    - [safe] at [q] for position [j] requires every member to have
      delivered all of positions [1..j]. *)

module Pg_map = Vs_machine.Pg_map
module Int_set : Set.S with type elt = int

type 'm state = {
  created : Proc.Set.t View_id.Map.t;
  current_viewid : View_id.t option Proc.Map.t;
  pending : 'm list Pg_map.t;
  queue : ('m * Proc.t) list View_id.Map.t;
  delivered : Int_set.t Pg_map.t;  (** positions delivered, per (q, g) *)
  next_safe : int Pg_map.t;
}

type 'm params = {
  procs : Proc.t list;
  p0 : Proc.t list;
  equal_msg : 'm -> 'm -> bool;
}

val current_of : 'm state -> Proc.t -> View_id.t option
val queue_of : 'm state -> View_id.t -> ('m * Proc.t) list
val delivered_of : 'm state -> Proc.t -> View_id.t -> Int_set.t

val prefix_point : Int_set.t -> int
(** Largest [k] such that positions [1..k] are all in the set. *)

val initial : 'm params -> 'm state

val automaton :
  'm params -> ('m state, 'm Vs_action.t) Gcs_automata.Automaton.t

val inject_createview :
  'm params -> 'm state -> Gcs_stdx.Prng.t -> 'm Vs_action.t list

val invariants : 'm params -> 'm state Gcs_automata.Invariant.t list
(** Gap-variant analogues of the Lemma 4.1 structure: safe frontier below
    every member's prefix point, delivered positions within the queue,
    monotone view ids. *)
