(** The invariants of Section 6.1 (Lemmas 6.1 through 6.24 and the
    corollaries), each as a checkable predicate on VStoTO-system states.

    Two refinements relative to the paper's statements, documented in
    DESIGN.md:
    - Lemma 6.16 and 6.22(1) are stated for summaries whose [high]
      component is a view identifier; summaries with [high = ⊥] (from
      processors outside [P0] that have not adopted any primary
      information) are covered by the auxiliary fact
      [high = ⊥ ⇒ ord = λ ∧ next = 1].
    - Corollary 6.19 is checked at its strongest instantiation: [σ] is
      taken to be the longest common prefix of the members'
      [buildorder]s. *)

val all :
  Vstoto_system.params ->
  Vstoto_system.state Gcs_automata.Invariant.t list

val names : Vstoto_system.params -> string list
