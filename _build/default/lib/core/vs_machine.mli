(** VS-machine (Figure 6): the abstract state machine for partitionable
    view-synchronous group communication, and the WeakVS-machine variant
    (Section 4.1, Remark). *)

module Pg_map : Map.S with type key = Proc.t * View_id.t

type 'm state = {
  created : Proc.Set.t View_id.Map.t;
      (** the set [created ⊆ views], keyed by view identifier (identifiers
          are unique in reachable states of both variants) *)
  current_viewid : View_id.t option Proc.Map.t;  (** [G⊥] per processor *)
  pending : 'm list Pg_map.t;  (** per (sender, view id) *)
  queue : ('m * Proc.t) list View_id.Map.t;  (** per view id *)
  next : int Pg_map.t;  (** 1-based delivery index per (dest, view id) *)
  next_safe : int Pg_map.t;  (** 1-based safe index per (dest, view id) *)
}

type 'm params = {
  procs : Proc.t list;
  p0 : Proc.t list;  (** membership of the initial view [v0 = (g0, P0)] *)
  equal_msg : 'm -> 'm -> bool;
  weak : bool;
      (** when true, [createview] only requires a fresh identifier
          (WeakVS-machine); when false it requires a greater-than-all
          identifier (VS-machine) *)
}

(** Accessors with the spec's default values for missing keys. *)

val current_of : 'm state -> Proc.t -> View_id.t option
val pending_of : 'm state -> Proc.t -> View_id.t -> 'm list
val queue_of : 'm state -> View_id.t -> ('m * Proc.t) list
val next_of : 'm state -> Proc.t -> View_id.t -> int
val next_safe_of : 'm state -> Proc.t -> View_id.t -> int
val created_viewids : 'm state -> View_id.t list
val member_set : 'm state -> View_id.t -> Proc.Set.t option

val initial : 'm params -> 'm state

val automaton :
  'm params -> ('m state, 'm Vs_action.t) Gcs_automata.Automaton.t

val invariants :
  'm params -> 'm state Gcs_automata.Invariant.t list
(** The fourteen invariants of Lemma 4.1, each as a named checkable
    predicate. *)

val inject_createview :
  'm params ->
  'm state ->
  Gcs_stdx.Prng.t ->
  'm Vs_action.t list
(** Propose a random [createview] with a fresh identifier greater than all
    created ones and a random non-empty membership — for use in scheduler
    injection. *)
