(** View identifiers — the totally ordered set [G] with initial element
    [g0].

    An identifier is a pair (number, origin), ordered lexicographically.
    The initial identifier [g0] is [(0, 0)]; identifiers generated at
    runtime carry the proposing processor as their origin and a number
    [>= 1], which makes them unique and larger than [g0] — exactly the
    "stable sequence number, processor id" scheme of Section 8. *)

type t = { num : int; origin : Proc.t }

val g0 : t
val make : num:int -> origin:Proc.t -> t
val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val compare_opt : t option -> t option -> int
(** Order on [G⊥]: [None] (⊥) is less than every identifier. *)

val lt_opt : t option -> t option -> bool
val le_opt : t option -> t option -> bool

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
