type t =
  | Bcast of Proc.t * Value.t
  | Brcv of { src : Proc.t; dst : Proc.t; value : Value.t }
  | Label_act of Proc.t * Value.t
  | Confirm of Proc.t
  | Vs of Msg.t Vs_action.t

let equal a b =
  match (a, b) with
  | Bcast (p, x), Bcast (q, y) -> Proc.equal p q && Value.equal x y
  | Brcv a, Brcv b ->
      Proc.equal a.src b.src && Proc.equal a.dst b.dst
      && Value.equal a.value b.value
  | Label_act (p, x), Label_act (q, y) -> Proc.equal p q && Value.equal x y
  | Confirm p, Confirm q -> Proc.equal p q
  | Vs a, Vs b -> Vs_action.equal ~equal_msg:Msg.equal a b
  | (Bcast _ | Brcv _ | Label_act _ | Confirm _ | Vs _), _ -> false

let pp ppf = function
  | Bcast (p, a) -> Format.fprintf ppf "bcast(%a)_%a" Value.pp a Proc.pp p
  | Brcv { src; dst; value } ->
      Format.fprintf ppf "brcv(%a)_{%a,%a}" Value.pp value Proc.pp src Proc.pp
        dst
  | Label_act (p, a) -> Format.fprintf ppf "label(%a)_%a" Value.pp a Proc.pp p
  | Confirm p -> Format.fprintf ppf "confirm_%a" Proc.pp p
  | Vs a -> Vs_action.pp Msg.pp ppf a

let vstoto_kind ~me action =
  let open Gcs_automata.Kind in
  match action with
  | Bcast (p, _) -> if Proc.equal p me then Some Input else None
  | Brcv { dst; _ } -> if Proc.equal dst me then Some Output else None
  | Label_act (p, _) -> if Proc.equal p me then Some Internal else None
  | Confirm p -> if Proc.equal p me then Some Internal else None
  | Vs (Vs_action.Gpsnd { sender; _ }) ->
      if Proc.equal sender me then Some Output else None
  | Vs (Vs_action.Gprcv { dst; _ }) | Vs (Vs_action.Safe { dst; _ }) ->
      if Proc.equal dst me then Some Input else None
  | Vs (Vs_action.Newview { proc; view }) ->
      if Proc.equal proc me && View.mem proc view then Some Input else None
  | Vs (Vs_action.Createview _) | Vs (Vs_action.Vs_order _) -> None

let system_kind ~procs action =
  let open Gcs_automata.Kind in
  let known p = List.mem p procs in
  match action with
  | Bcast (p, _) -> if known p then Some Input else None
  | Brcv { src; dst; _ } ->
      if known src && known dst then Some Output else None
  | Label_act (p, _) | Confirm p -> if known p then Some Internal else None
  | Vs a -> (
      match Vs_action.kind ~procs a with
      | Some _ -> Some Internal (* the VS interface is hidden *)
      | None -> None)
