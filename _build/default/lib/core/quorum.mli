(** Quorum systems — the set [Q] of Section 5.

    Every pair of quorums intersects; a view is {e primary} when its
    membership contains a quorum. *)

type t

val of_sets : Proc.Set.t list -> (t, string) result
(** Build a quorum system from explicit sets; [Error] if some pair of sets
    fails to intersect or the list is empty. *)

val majorities : n:int -> t
(** The majority quorum system over processors [0..n-1]: a set is a quorum
    iff it contains strictly more than [n/2] processors. *)

val weighted_majorities : weights:int Proc.Map.t -> t
(** Quorums are the sets holding a strict majority of the total weight. *)

val is_quorum : t -> Proc.Set.t -> bool
(** Does the set contain a quorum? (For the intensional systems this tests
    the defining predicate; for explicit systems, superset of some set.) *)

val contains_quorum : t -> Proc.Set.t -> bool
(** Alias of {!is_quorum}, matching the paper's phrase "contains a
    quorum". *)

val pairwise_intersecting : Proc.Set.t list -> bool
