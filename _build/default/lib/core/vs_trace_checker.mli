(** Trace checker for VS-machine.

    Decides whether a sequence of external actions
    ([gpsnd]/[gprcv]/[safe]/[newview]) is a trace of VS-machine. As for TO,
    the per-view queues are forced greedily, which is sound and complete
    (the [i]-th entry of [queue\[g\]] is determined by the first receiver to
    consume index [i], and per-sender FIFO determines the message).

    Because WeakVS-machine and VS-machine have the same finite traces
    (Section 4.1, Remark), the checker does not constrain the global order
    in which view identifiers first appear — only per-processor
    monotonicity and the functionality of the [created] set.

    The checker also constructs the [cause] function of Lemma 4.2: each
    accepted [gprcv]/[safe] event is mapped to the index of the [gpsnd]
    event that caused it, enabling direct tests of message integrity,
    no-duplication, no-reordering and the prefix (no-losses) property. *)

type 'm t

type error = { index : int; reason : string }

val create : 'm Vs_machine.params -> 'm t

val step : 'm t -> 'm Vs_action.t -> ('m t, string) result
(** Process one external event; internal events are rejected. *)

val check :
  'm Vs_machine.params -> 'm Vs_action.t list -> (unit, error) result

val check_full :
  'm Vs_machine.params -> 'm Vs_action.t list -> ('m t, error) result
(** Like {!check} but returns the final checker state on success. *)

val cause : 'm t -> (int * int) list
(** Pairs [(event_index, cause_index)]: each accepted [gprcv] or [safe]
    event paired with the index of its causing [gpsnd], in event order.
    Indices are 0-based positions in the processed trace. *)

val current_view : 'm t -> Proc.t -> View_id.t option
val view_members : 'm t -> View_id.t -> Proc.Set.t option

val queue_of : 'm t -> View_id.t -> ('m * Proc.t) list
(** The forced per-view total order. *)

val received_count : 'm t -> Proc.t -> View_id.t -> int
(** Number of [gprcv] events at a processor within a view. *)

val pp_error : Format.formatter -> error -> unit
