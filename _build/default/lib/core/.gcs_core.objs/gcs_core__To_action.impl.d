lib/core/to_action.ml: Format Gcs_automata List Proc
