lib/core/sys_action.mli: Format Gcs_automata Msg Proc Value Vs_action
