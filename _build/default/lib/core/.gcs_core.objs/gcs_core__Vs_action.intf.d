lib/core/vs_action.mli: Format Gcs_automata Proc View View_id
