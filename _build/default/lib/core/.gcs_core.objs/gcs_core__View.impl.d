lib/core/view.ml: Format Proc View_id
