lib/core/to_trace_checker.mli: Format Proc To_action To_machine
