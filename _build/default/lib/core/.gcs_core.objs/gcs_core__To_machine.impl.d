lib/core/to_machine.ml: Automaton Format Gcs_automata Gcs_stdx Invariant List Proc To_action
