lib/core/to_action.mli: Format Gcs_automata Proc
