lib/core/trace_io.ml: Buffer Fstatus List Printf Proc String Timed To_action View View_id Vs_action
