lib/core/state_key.ml: Buffer Label List Msg Printf Proc String Summary View View_id Vs_machine Vstoto Vstoto_system
