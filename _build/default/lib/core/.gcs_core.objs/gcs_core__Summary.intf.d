lib/core/summary.mli: Format Label Proc Value View_id
