lib/core/fstatus.ml: Format List Map Proc
