lib/core/to_property.mli: Format Proc Timed To_action Value
