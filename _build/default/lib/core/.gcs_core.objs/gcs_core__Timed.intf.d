lib/core/timed.mli: Fstatus Proc
