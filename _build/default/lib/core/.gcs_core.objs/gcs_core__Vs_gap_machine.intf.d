lib/core/vs_gap_machine.mli: Gcs_automata Gcs_stdx Proc Set View_id Vs_action Vs_machine
