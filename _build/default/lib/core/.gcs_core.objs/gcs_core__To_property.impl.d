lib/core/to_property.ml: Format Fstatus Gcs_stdx Hashtbl List Printf Proc Result Timed To_action Value
