lib/core/vs_machine.ml: Automaton Gcs_automata Gcs_stdx Invariant List Map Proc View View_id Vs_action
