lib/core/view.mli: Format Proc View_id
