lib/core/vstoto_invariants.mli: Gcs_automata Vstoto_system
