lib/core/proc.ml: Format Int List Map Set
