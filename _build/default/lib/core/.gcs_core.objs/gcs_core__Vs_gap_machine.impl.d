lib/core/vs_gap_machine.ml: Automaton Gcs_automata Gcs_stdx Int Invariant List Proc Set View View_id Vs_action Vs_machine
