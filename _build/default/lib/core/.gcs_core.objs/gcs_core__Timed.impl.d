lib/core/timed.ml: Fstatus List
