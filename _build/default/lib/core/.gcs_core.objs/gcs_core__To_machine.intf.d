lib/core/to_machine.mli: Format Gcs_automata Proc To_action
