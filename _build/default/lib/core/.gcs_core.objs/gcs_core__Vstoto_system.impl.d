lib/core/vstoto_system.ml: Automaton Gcs_automata Gcs_stdx Label List Msg Option Proc Quorum Summary Sys_action Value View View_id Vs_action Vs_machine Vstoto
