lib/core/to_simulation.ml: Format Gcs_automata Gcs_stdx Label List Printf Proc Sys_action To_action To_machine Value Vstoto Vstoto_system
