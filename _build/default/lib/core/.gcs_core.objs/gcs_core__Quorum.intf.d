lib/core/quorum.mli: Proc
