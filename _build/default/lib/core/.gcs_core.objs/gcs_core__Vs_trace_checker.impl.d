lib/core/vs_trace_checker.ml: Format Gcs_stdx List Proc Result View View_id Vs_action Vs_machine
