lib/core/vstoto_invariants.ml: Array Format Gcs_automata Gcs_stdx Hashtbl Invariant Label List Msg Option Proc Quorum Summary View View_id Vs_machine Vstoto Vstoto_system
