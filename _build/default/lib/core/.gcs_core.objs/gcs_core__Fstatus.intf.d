lib/core/fstatus.mli: Format Proc
