lib/core/to_trace_checker.ml: Format Gcs_stdx Proc To_action To_machine
