lib/core/vstoto_gap_system.mli: Gcs_automata Gcs_stdx Msg Proc Quorum Sys_action Value Vs_gap_machine Vstoto
