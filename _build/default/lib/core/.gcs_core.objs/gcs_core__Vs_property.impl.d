lib/core/vs_property.ml: Format Fstatus Gcs_stdx Hashtbl List Printf Proc Result Timed View Vs_action
