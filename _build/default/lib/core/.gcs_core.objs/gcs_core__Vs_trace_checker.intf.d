lib/core/vs_trace_checker.mli: Format Proc View_id Vs_action Vs_machine
