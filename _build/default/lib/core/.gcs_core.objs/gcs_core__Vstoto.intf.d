lib/core/vstoto.mli: Format Gcs_automata Label Proc Quorum Summary Sys_action Value View View_id
