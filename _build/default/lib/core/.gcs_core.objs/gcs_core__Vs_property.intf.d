lib/core/vs_property.mli: Format Proc Timed View Vs_action
