lib/core/quorum.ml: List Proc
