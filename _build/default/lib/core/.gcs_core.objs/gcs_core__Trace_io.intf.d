lib/core/trace_io.mli: Timed To_action Value Vs_action
