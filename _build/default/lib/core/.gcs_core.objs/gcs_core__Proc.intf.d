lib/core/proc.mli: Format Map Set
