lib/core/vstoto_system.mli: Gcs_automata Gcs_stdx Label Msg Proc Quorum Summary Sys_action Value View_id Vs_machine Vstoto
