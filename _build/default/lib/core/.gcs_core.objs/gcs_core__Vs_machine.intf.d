lib/core/vs_machine.mli: Gcs_automata Gcs_stdx Map Proc View_id Vs_action
