lib/core/summary.ml: Format Gcs_stdx Int Label List Proc Value View_id
