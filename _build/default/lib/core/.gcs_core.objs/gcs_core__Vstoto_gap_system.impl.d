lib/core/vstoto_gap_system.ml: Automaton Gcs_automata Gcs_stdx List Msg Proc Quorum Sys_action Vs_action Vs_gap_machine Vstoto
