lib/core/view_id.mli: Format Map Proc Set
