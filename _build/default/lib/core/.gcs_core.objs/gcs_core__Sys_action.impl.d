lib/core/sys_action.ml: Format Gcs_automata List Msg Proc Value View Vs_action
