lib/core/state_key.mli: Label Msg Summary View_id Vs_machine Vstoto Vstoto_system
