lib/core/value.ml: Format String
