lib/core/label.ml: Format Int Map Proc Set View_id
