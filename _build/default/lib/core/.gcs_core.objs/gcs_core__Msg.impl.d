lib/core/msg.ml: Format Label Summary Value
