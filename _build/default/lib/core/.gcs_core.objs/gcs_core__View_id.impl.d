lib/core/view_id.ml: Format Int Map Proc Set
