lib/core/to_simulation.mli: Gcs_automata Sys_action To_action To_machine Value Vstoto_system
