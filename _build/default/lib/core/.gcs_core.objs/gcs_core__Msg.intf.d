lib/core/msg.mli: Format Label Summary Value
