lib/core/vs_action.ml: Format Gcs_automata List Proc View View_id
