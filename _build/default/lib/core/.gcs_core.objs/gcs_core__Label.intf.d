lib/core/label.mli: Format Map Proc Set View_id
