lib/core/vstoto.ml: Automaton Format Gcs_automata Gcs_stdx Label List Msg Option Printf Proc Quorum Summary Sys_action Value View View_id Vs_action
