(** The forward simulation [f] from VStoTO-system to TO-machine
    (Section 6.2, Lemma 6.25), made executable.

    [f] maps a reachable system state to a TO-machine state through the
    derived variables [allcontent] and [allconfirm]; [corresponds] maps each
    concrete step to the abstract action sequence used in the paper's
    case analysis ([bcast ↦ bcast], [brcv ↦ brcv], [confirm] extending
    [allconfirm] ↦ [to-order], everything else ↦ ε). *)

val abstract_params : Vstoto_system.params -> Value.t To_machine.params

val f :
  Vstoto_system.params -> Vstoto_system.state -> Value.t To_machine.state
(** Raises [Invalid_argument] if [allcontent] is not a function or the
    confirm prefixes are inconsistent — both are invariants of reachable
    states, so this only happens on unreachable (or bug-revealing)
    states. *)

val corresponds :
  Vstoto_system.params ->
  Vstoto_system.state ->
  Sys_action.t ->
  Vstoto_system.state ->
  Value.t To_action.t list

val check_execution :
  Vstoto_system.params ->
  (Vstoto_system.state, Sys_action.t) Gcs_automata.Exec.execution ->
  (unit, string) result
(** Check the simulation step-by-step along a concrete execution
    (operational Lemma 6.25 / Theorem 6.26). *)
