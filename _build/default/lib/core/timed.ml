type 'a item = Action of 'a | Status of Fstatus.event
type 'a event = { time : float; item : 'a item }
type 'a t = 'a event list

let action time a = { time; item = Action a }
let status time s = { time; item = Status s }

let actions t =
  List.filter_map
    (fun e -> match e.item with Action a -> Some (e.time, a) | Status _ -> None)
    t

let statuses t =
  List.filter_map
    (fun e -> match e.item with Status s -> Some (e.time, s) | Action _ -> None)
    t

let is_time_ordered t =
  let rec go last = function
    | [] -> true
    | e :: rest -> e.time >= last && go e.time rest
  in
  go neg_infinity t

let involves locations = function
  | Fstatus.Proc_status (p, _) -> List.mem p locations
  | Fstatus.Link_status (p, q, _) -> List.mem p locations || List.mem q locations

let last_status_time_involving locations t =
  List.fold_left
    (fun acc (time, s) -> if involves locations s then max acc time else acc)
    0.0 (statuses t)

let tracker_at time t =
  List.fold_left
    (fun acc (when_, s) -> if when_ <= time then Fstatus.apply acc s else acc)
    Fstatus.initial (statuses t)

let map f t =
  List.filter_map
    (fun e ->
      match e.item with
      | Action a -> (
          match f a with
          | Some b -> Some { time = e.time; item = Action b }
          | None -> None)
      | Status s -> Some { time = e.time; item = Status s })
    t
