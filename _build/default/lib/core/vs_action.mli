(** Actions of the view-synchronous group communication specification
    VS-machine (Figure 6), parametric in the message type [M]. *)

type 'm t =
  | Gpsnd of { sender : Proc.t; msg : 'm }  (** [gpsnd(m)_p] *)
  | Gprcv of { src : Proc.t; dst : Proc.t; msg : 'm }  (** [gprcv(m)_{p,q}] *)
  | Safe of { src : Proc.t; dst : Proc.t; msg : 'm }  (** [safe(m)_{p,q}] *)
  | Newview of { proc : Proc.t; view : View.t }  (** [newview(v)_p] *)
  | Createview of View.t  (** internal view creation *)
  | Vs_order of { msg : 'm; sender : Proc.t; viewid : View_id.t }
      (** internal per-view ordering *)

val kind : procs:Proc.t list -> 'm t -> Gcs_automata.Kind.t option
(** The signature constraint [p ∈ v.set] for [newview(v)_p] is enforced
    here: a [Newview] whose processor is not a member is outside the
    signature. *)

val is_external : procs:Proc.t list -> 'm t -> bool
val equal : equal_msg:('m -> 'm -> bool) -> 'm t -> 'm t -> bool

val pp :
  (Format.formatter -> 'm -> unit) -> Format.formatter -> 'm t -> unit
