(** Checker for TO-property(b, d, Q) (Figure 5).

    Given a finite timed trace (an observation window of an admissible
    execution) with failure-status events, the checker:
    - determines the stabilization point [l]: the time of the last failure
      event involving [Q];
    - verifies the premise: after [l], every location in [Q] and every pair
      within [Q] is good, and every pair leaving [Q] is bad;
    - enforces the conclusion with [l' = b] (the weakest admissible choice):
      every value sent from [Q] at time [t] must be delivered at all members
      of [Q] by [max t (l + b) + d], and every value delivered to a member
      of [Q] at [t] likewise.

    Deadlines beyond [horizon] (the end of the observation window) are not
    enforced — the trace is a finite prefix. Values are matched to their
    deliveries by (value, origin); the workload must use distinct values
    per origin (checked). *)

type violation = {
  value : Value.t;
  origin : Proc.t;
  missing_at : Proc.t;
  deadline : float;
  kind : string;  (** "sent" (clause b) or "relayed" (clause c) *)
}

type report = {
  premise : (unit, string) result;
      (** [Error] explains why the stabilization premise does not hold
          (the property is then vacuous). *)
  stabilization_time : float;  (** the point [l] *)
  obligations : int;  (** (value, member) pairs with enforceable deadlines *)
  violations : violation list;
  max_latency : float;
      (** worst send-to-last-member-delivery latency among values sent
          after [l + b]; [0.0] if none *)
}

val check :
  b:float ->
  d:float ->
  q:Proc.t list ->
  horizon:float ->
  Value.t To_action.t Timed.t ->
  report

val holds : report -> bool
(** Premise holds and there are no violations. *)

val pp_report : Format.formatter -> report -> unit
