(** TO-machine (Figure 3): the abstract state machine for totally ordered
    broadcast. *)

type 'a state = {
  queue : ('a * Proc.t) list;
      (** the global total order of ⟨value, origin⟩ pairs *)
  pending : 'a list Proc.Map.t;
      (** per-origin values submitted but not yet ordered *)
  next : int Proc.Map.t;  (** 1-based delivery index per destination *)
}

type 'a params = { procs : Proc.t list; equal_value : 'a -> 'a -> bool }

val initial : 'a params -> 'a state

val automaton :
  'a params -> ('a state, 'a To_action.t) Gcs_automata.Automaton.t

val equal_state : 'a params -> 'a state -> 'a state -> bool

val pp_state :
  (Format.formatter -> 'a -> unit) -> Format.formatter -> 'a state -> unit

val invariants :
  'a params -> 'a state Gcs_automata.Invariant.t list
(** Structural well-formedness facts of TO-machine (next pointers bounded
    by the queue, domains within [procs]). *)
