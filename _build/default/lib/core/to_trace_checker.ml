type 'a t = {
  params : 'a To_machine.params;
  unordered : 'a list Proc.Map.t;  (* bcast values not yet forced into queue *)
  queue : ('a * Proc.t) list;
  next : int Proc.Map.t;
}

type error = { index : int; reason : string }

let create params =
  { params; unordered = Proc.Map.empty; queue = []; next = Proc.Map.empty }

let unordered_of t p =
  match Proc.Map.find_opt p t.unordered with Some s -> s | None -> []

let next_of t p =
  match Proc.Map.find_opt p t.next with Some n -> n | None -> 1

let step t action =
  match action with
  | To_action.Bcast (p, a) ->
      Ok
        {
          t with
          unordered = Proc.Map.add p (unordered_of t p @ [ a ]) t.unordered;
        }
  | To_action.To_order _ -> Error "internal to-order event in external trace"
  | To_action.Brcv { src; dst; value } -> (
      let i = next_of t dst in
      let deliver t =
        Ok { t with next = Proc.Map.add dst (i + 1) t.next }
      in
      match Gcs_stdx.Seqx.nth1 t.queue i with
      | Some (a, p) ->
          if t.params.To_machine.equal_value a value && Proc.equal p src then
            deliver t
          else Error "brcv disagrees with the forced total order"
      | None -> (
          (* i = |queue| + 1: force a new queue entry from src's oldest
             unordered bcast. *)
          match unordered_of t src with
          | head :: rest when t.params.To_machine.equal_value head value ->
              deliver
                {
                  t with
                  unordered = Proc.Map.add src rest t.unordered;
                  queue = t.queue @ [ (value, src) ];
                }
          | head :: _ when not (t.params.To_machine.equal_value head value) ->
              Error "brcv out of per-sender submission order"
          | _ -> Error "brcv with no corresponding bcast"))

let check params actions =
  let rec go t i = function
    | [] -> Ok ()
    | action :: rest -> (
        match step t action with
        | Ok t' -> go t' (i + 1) rest
        | Error reason -> Error { index = i; reason })
  in
  go (create params) 0 actions

let queue t = t.queue
let delivered t p = Gcs_stdx.Seqx.take (next_of t p - 1) t.queue

let pp_error ppf e =
  Format.fprintf ppf "event %d: %s" e.index e.reason
