type t = { id : View_id.t; set : Proc.Set.t }

let make id members = { id; set = Proc.set_of_list members }
let initial p0 = make View_id.g0 p0

let compare a b =
  match View_id.compare a.id b.id with
  | 0 -> Proc.Set.compare a.set b.set
  | c -> c

let equal a b = compare a b = 0
let mem p v = Proc.Set.mem p v.set
let pp ppf v = Format.fprintf ppf "%a%a" View_id.pp v.id Proc.pp_set v.set
