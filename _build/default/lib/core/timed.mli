(** Timed traces: sequences of timestamped actions interleaved with
    failure-status events, as consumed by the conditional performance and
    fault-tolerance properties (Sections 3.2 and 4.2). *)

type 'a item = Action of 'a | Status of Fstatus.event

type 'a event = { time : float; item : 'a item }

type 'a t = 'a event list
(** Events in nondecreasing time order. *)

val action : float -> 'a -> 'a event
val status : float -> Fstatus.event -> 'a event
val actions : 'a t -> (float * 'a) list
val statuses : 'a t -> (float * Fstatus.event) list
val is_time_ordered : 'a t -> bool

val last_status_time_involving : Proc.t list -> 'a t -> float
(** Time of the last failure-status event for a location in the set or a
    pair including one; 0.0 if there is none. *)

val tracker_at : float -> 'a t -> Fstatus.tracker
(** Failure statuses implied by all status events at or before a time. *)

val map : ('a -> 'b option) -> 'a t -> 'b t
(** Filter-map over actions, keeping status events. *)
