(** Views — pairs of a view identifier and a membership set
    ([views = G × P(P)] in the paper). *)

type t = { id : View_id.t; set : Proc.Set.t }

val make : View_id.t -> Proc.t list -> t
val initial : Proc.t list -> t
(** [initial p0] is the distinguished initial view [v0 = (g0, P0)]. *)

val compare : t -> t -> int
val equal : t -> t -> bool
val mem : Proc.t -> t -> bool
val pp : Format.formatter -> t -> unit
