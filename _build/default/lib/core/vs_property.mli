(** Checker for VS-property(b, d, Q) (Figure 7).

    Given a finite timed trace of VS external actions with failure-status
    events:
    - [l] is the time of the last failure event involving [Q]; the premise
      requires that after [l] all of [Q] (and pairs within [Q]) are good
      and pairs leaving [Q] are bad;
    - clause (a)/(b): the last [newview] at a member of [Q] must occur by
      [l + b];
    - clause (c): the latest views of all members of [Q] must agree and
      have membership exactly [Q] (members of [P0] that never installed a
      view count as holding the default initial view [v0]);
    - clause (d): every message sent from a member of [Q] while in that
      final view at time [t] must have [safe] events at all members of [Q]
      by [max t (l + b) + d].

    Messages are matched by (sender, message); the workload must not send
    the same message twice from one sender (checked). Deadlines beyond
    [horizon] are not enforced. *)

type violation = {
  what : string;
  deadline : float;
  at : Proc.t option;
}

type 'm report = {
  premise : (unit, string) result;
  stabilization_time : float;  (** l *)
  last_newview_time : float;  (** among members of Q *)
  final_view : View.t option;  (** the agreed view, when clause (c) holds *)
  obligations : int;
  violations : violation list;
  max_safe_latency : float;
      (** worst send-to-last-safe latency for messages sent after [l+b] *)
}

val check :
  b:float ->
  d:float ->
  q:Proc.t list ->
  p0:Proc.t list ->
  horizon:float ->
  equal_msg:('m -> 'm -> bool) ->
  pp_msg:(Format.formatter -> 'm -> unit) ->
  'm Vs_action.t Timed.t ->
  'm report

val holds : 'm report -> bool
val pp_report : Format.formatter -> 'm report -> unit
