type 'a t =
  | Bcast of Proc.t * 'a
  | Brcv of { src : Proc.t; dst : Proc.t; value : 'a }
  | To_order of 'a * Proc.t

let kind ~procs action =
  let known p = List.mem p procs in
  match action with
  | Bcast (p, _) -> if known p then Some Gcs_automata.Kind.Input else None
  | Brcv { src; dst; _ } ->
      if known src && known dst then Some Gcs_automata.Kind.Output else None
  | To_order (_, p) ->
      if known p then Some Gcs_automata.Kind.Internal else None

let is_external ~procs action =
  match kind ~procs action with
  | Some k -> Gcs_automata.Kind.is_external k
  | None -> false

let equal ~equal_value a b =
  match (a, b) with
  | Bcast (p, x), Bcast (q, y) -> Proc.equal p q && equal_value x y
  | Brcv a, Brcv b ->
      Proc.equal a.src b.src && Proc.equal a.dst b.dst
      && equal_value a.value b.value
  | To_order (x, p), To_order (y, q) -> equal_value x y && Proc.equal p q
  | (Bcast _ | Brcv _ | To_order _), _ -> false

let pp pp_value ppf = function
  | Bcast (p, a) -> Format.fprintf ppf "bcast(%a)_%a" pp_value a Proc.pp p
  | Brcv { src; dst; value } ->
      Format.fprintf ppf "brcv(%a)_{%a,%a}" pp_value value Proc.pp src Proc.pp
        dst
  | To_order (a, p) ->
      Format.fprintf ppf "to-order(%a,%a)" pp_value a Proc.pp p
