(** Trace checker for TO-machine.

    Decides whether a sequence of external actions ([bcast]/[brcv]) is a
    trace of TO-machine. The check is greedy and deterministic: the [i]-th
    element of the abstract [queue] is forced by whichever [brcv] first
    consumes index [i], and the per-sender FIFO discipline of [pending]
    forces which value that must be. Greedy checking is therefore sound and
    complete. *)

type 'a t

type error = { index : int; reason : string }
(** [index] is the 0-based position of the offending event. *)

val create : 'a To_machine.params -> 'a t

val step : 'a t -> 'a To_action.t -> ('a t, string) result
(** Process one external event. Internal [To_order] events are rejected:
    traces contain external actions only. *)

val check : 'a To_machine.params -> 'a To_action.t list -> (unit, error) result

val queue : 'a t -> ('a * Proc.t) list
(** The total order forced by the events seen so far. *)

val delivered : 'a t -> Proc.t -> ('a * Proc.t) list
(** Prefix of {!queue} delivered at a destination so far. *)

val pp_error : Format.formatter -> error -> unit
