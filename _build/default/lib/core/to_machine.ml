open Gcs_automata

type 'a state = {
  queue : ('a * Proc.t) list;
  pending : 'a list Proc.Map.t;
  next : int Proc.Map.t;
}

type 'a params = { procs : Proc.t list; equal_value : 'a -> 'a -> bool }

let pending_of state p =
  match Proc.Map.find_opt p state.pending with Some q -> q | None -> []

let next_of state p =
  match Proc.Map.find_opt p state.next with Some n -> n | None -> 1

let initial (_ : 'a params) =
  { queue = []; pending = Proc.Map.empty; next = Proc.Map.empty }

let transition params state action =
  match action with
  | To_action.Bcast (p, a) ->
      let pending =
        Proc.Map.add p (pending_of state p @ [ a ]) state.pending
      in
      Some { state with pending }
  | To_action.To_order (a, p) -> (
      match pending_of state p with
      | head :: rest when params.equal_value head a ->
          Some
            {
              state with
              pending = Proc.Map.add p rest state.pending;
              queue = state.queue @ [ (a, p) ];
            }
      | _ -> None)
  | To_action.Brcv { src; dst; value } -> (
      match Gcs_stdx.Seqx.nth1 state.queue (next_of state dst) with
      | Some (a, p) when params.equal_value a value && Proc.equal p src ->
          Some { state with next = Proc.Map.add dst (next_of state dst + 1) state.next }
      | _ -> None)

let enabled params state =
  let to_orders =
    List.filter_map
      (fun p ->
        match pending_of state p with
        | a :: _ -> Some (To_action.To_order (a, p))
        | [] -> None)
      params.procs
  in
  let brcvs =
    List.filter_map
      (fun q ->
        match Gcs_stdx.Seqx.nth1 state.queue (next_of state q) with
        | Some (a, p) -> Some (To_action.Brcv { src = p; dst = q; value = a })
        | None -> None)
      params.procs
  in
  to_orders @ brcvs

let automaton params =
  {
    Automaton.name = "TO-machine";
    initial = initial params;
    kind = To_action.kind ~procs:params.procs;
    enabled = enabled params;
    transition = transition params;
  }

let equal_state params a b =
  let equal_entry (x, p) (y, q) = params.equal_value x y && Proc.equal p q in
  List.equal equal_entry a.queue b.queue
  && List.for_all
       (fun p ->
         List.equal params.equal_value (pending_of a p) (pending_of b p)
         && next_of a p = next_of b p)
       params.procs

let pp_state pp_value ppf state =
  let pp_entry ppf (a, p) =
    Format.fprintf ppf "(%a,%a)" pp_value a Proc.pp p
  in
  Format.fprintf ppf "@[<v>queue: [%a]@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
       pp_entry)
    state.queue

let invariants params =
  [
    Invariant.make "TO: next pointers within queue bounds" (fun s ->
        List.for_all
          (fun p -> next_of s p >= 1 && next_of s p <= List.length s.queue + 1)
          params.procs);
    Invariant.make "TO: pending and next domains within P" (fun s ->
        Proc.Map.for_all (fun p _ -> List.mem p params.procs) s.pending
        && Proc.Map.for_all (fun p _ -> List.mem p params.procs) s.next);
    Invariant.make "TO: queue origins within P" (fun s ->
        List.for_all (fun (_, p) -> List.mem p params.procs) s.queue);
  ]
