type ('state, 'action) t = {
  name : string;
  initial : 'state;
  kind : 'action -> Kind.t option;
  enabled : 'state -> 'action list;
  transition : 'state -> 'action -> 'state option;
}

let step_exn t state action =
  match t.transition state action with
  | Some state' -> state'
  | None -> invalid_arg (Printf.sprintf "%s: action not enabled" t.name)

let is_enabled t state action =
  match t.transition state action with Some _ -> true | None -> false

(* The composed kind of an action performed by several components. *)
let joint_kind k1 k2 =
  match (k1, k2) with
  | None, k | k, None -> k
  | Some Kind.Output, _ | _, Some Kind.Output -> Some Kind.Output
  | Some Kind.Input, _ | _, Some Kind.Input -> Some Kind.Input
  | Some Kind.Internal, Some Kind.Internal -> Some Kind.Internal

(* Transition of one participant: if the action is in its signature it must
   accept it (components are input-enabled), otherwise its state is kept. *)
let participate name kind transition state action =
  match kind action with
  | None -> Some state
  | Some _ -> (
      match transition state action with
      | Some state' -> Some state'
      | None -> (
          match kind action with
          | Some Kind.Input ->
              invalid_arg
                (Printf.sprintf "%s: input action rejected (not input-enabled)"
                   name)
          | _ -> None))

let compose ~name a b =
  let kind action = joint_kind (a.kind action) (b.kind action) in
  let enabled (sa, sb) = a.enabled sa @ b.enabled sb in
  let transition (sa, sb) action =
    if kind action = None then None
    else
      (* The action must be locally controlled and enabled in at least one
         component that controls it, or be an input to the composition. *)
      let controls c = function
        | Some Kind.Output | Some Kind.Internal -> c
        | _ -> false
      in
      let a_controls = controls true (a.kind action)
      and b_controls = controls true (b.kind action) in
      let locally_ok =
        (a_controls && is_enabled a sa action)
        || (b_controls && is_enabled b sb action)
        || ((not a_controls) && not b_controls)
        (* pure input to the composition *)
      in
      if not locally_ok then None
      else
        match
          ( participate a.name a.kind a.transition sa action,
            participate b.name b.kind b.transition sb action )
        with
        | Some sa', Some sb' -> Some (sa', sb')
        | _ -> None
  in
  { name; initial = (a.initial, b.initial); kind; enabled; transition }

let compose_list ~name components =
  let kind action =
    List.fold_left
      (fun acc c -> joint_kind acc (c.kind action))
      None components
  in
  let enabled states =
    List.concat (List.map2 (fun c s -> c.enabled s) components states)
  in
  let transition states action =
    if kind action = None then None
    else
      let controls c =
        match c.kind action with
        | Some Kind.Output | Some Kind.Internal -> true
        | _ -> false
      in
      let locally_ok =
        List.exists2 (fun c s -> controls c && is_enabled c s action)
          components states
        || not (List.exists (fun c -> controls c) components)
      in
      if not locally_ok then None
      else
        let rec go acc cs ss =
          match (cs, ss) with
          | [], [] -> Some (List.rev acc)
          | c :: cs', s :: ss' -> (
              match participate c.name c.kind c.transition s action with
              | Some s' -> go (s' :: acc) cs' ss'
              | None -> None)
          | _ -> invalid_arg "compose_list: state/component mismatch"
        in
        go [] components states
  in
  {
    name;
    initial = List.map (fun c -> c.initial) components;
    kind;
    enabled;
    transition;
  }

let compatible a b ~actions =
  let ok action =
    match (a.kind action, b.kind action) with
    | Some Kind.Output, Some Kind.Output -> false
    | Some Kind.Internal, Some _ | Some _, Some Kind.Internal -> false
    | _ -> true
  in
  List.for_all ok actions

let hide t pred =
  let kind action =
    match t.kind action with
    | Some Kind.Output when pred action -> Some Kind.Internal
    | k -> k
  in
  { t with kind }

let embed t ~inj ~proj =
  {
    name = t.name;
    initial = t.initial;
    kind = (fun a -> Option.bind (proj a) t.kind);
    enabled = (fun s -> List.map inj (t.enabled s));
    transition =
      (fun s a ->
        match proj a with None -> None | Some b -> t.transition s b);
  }

let with_history t ~init ~update =
  let kind = t.kind in
  let enabled (s, _) = t.enabled s in
  let transition (s, h) action =
    match t.transition s action with
    | None -> None
    | Some s' -> Some (s', update s action s' h)
  in
  { name = t.name; initial = (t.initial, init); kind; enabled; transition }
