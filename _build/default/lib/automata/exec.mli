(** Execution engine for I/O automata.

    Executions are alternating sequences of states and actions; we store
    them as an initial state plus a list of steps. Nondeterminism (choice
    among enabled actions, and parameters of injected actions) is resolved
    by a {!type:scheduler} driven by a deterministic PRNG. *)

type ('s, 'a) step = { pre : 's; action : 'a; post : 's }

type ('s, 'a) execution = { init : 's; steps : ('s, 'a) step list }
(** Steps in chronological order. *)

type ('s, 'a) scheduler = 's -> Gcs_stdx.Prng.t -> 'a option
(** Pick the next action to attempt in a state; [None] stops the run. *)

val final : ('s, 'a) execution -> 's
(** Last state of the execution (the initial state if there are no steps). *)

val run :
  ('s, 'a) Automaton.t ->
  scheduler:('s, 'a) scheduler ->
  steps:int ->
  prng:Gcs_stdx.Prng.t ->
  ('s, 'a) execution
(** Run up to [steps] transitions. A scheduled action that is not enabled is
    skipped (it costs one scheduling round but adds no step). *)

val actions : ('s, 'a) execution -> 'a list

val trace : ('s, 'a) Automaton.t -> ('s, 'a) execution -> 'a list
(** External actions only, in order (the trace of the execution). *)

val states : ('s, 'a) execution -> 's list
(** All states, starting with the initial one. *)
