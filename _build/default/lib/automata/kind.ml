type t = Input | Output | Internal

let is_external = function Input | Output -> true | Internal -> false

let is_locally_controlled = function
  | Output | Internal -> true
  | Input -> false

let pp ppf = function
  | Input -> Format.pp_print_string ppf "input"
  | Output -> Format.pp_print_string ppf "output"
  | Internal -> Format.pp_print_string ppf "internal"
