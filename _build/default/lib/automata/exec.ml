type ('s, 'a) step = { pre : 's; action : 'a; post : 's }
type ('s, 'a) execution = { init : 's; steps : ('s, 'a) step list }
type ('s, 'a) scheduler = 's -> Gcs_stdx.Prng.t -> 'a option

let final e =
  match List.rev e.steps with [] -> e.init | last :: _ -> last.post

let run automaton ~scheduler ~steps ~prng =
  let rec go state acc budget =
    if budget <= 0 then List.rev acc
    else
      match scheduler state prng with
      | None -> List.rev acc
      | Some action -> (
          match automaton.Automaton.transition state action with
          | None -> go state acc (budget - 1)
          | Some state' ->
              go state' ({ pre = state; action; post = state' } :: acc)
                (budget - 1))
  in
  { init = automaton.Automaton.initial; steps = go automaton.Automaton.initial [] steps }

let actions e = List.map (fun s -> s.action) e.steps

let trace automaton e =
  List.filter
    (fun a ->
      match automaton.Automaton.kind a with
      | Some k -> Kind.is_external k
      | None -> false)
    (actions e)

let states e = e.init :: List.map (fun s -> s.post) e.steps
