lib/automata/kind.ml: Format
