lib/automata/kind.mli: Format
