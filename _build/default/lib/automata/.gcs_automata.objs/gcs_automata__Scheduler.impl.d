lib/automata/scheduler.ml: Automaton Exec Gcs_stdx
