lib/automata/explore.mli: Automaton Invariant
