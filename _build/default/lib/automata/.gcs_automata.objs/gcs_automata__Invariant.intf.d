lib/automata/invariant.mli: Automaton Exec
