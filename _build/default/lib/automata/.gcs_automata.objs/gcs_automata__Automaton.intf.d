lib/automata/automaton.mli: Kind
