lib/automata/simulation.ml: Automaton Exec
