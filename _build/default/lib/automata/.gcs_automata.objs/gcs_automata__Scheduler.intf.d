lib/automata/scheduler.mli: Automaton Exec Gcs_stdx
