lib/automata/simulation.mli: Automaton Exec
