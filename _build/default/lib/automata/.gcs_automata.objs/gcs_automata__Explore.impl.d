lib/automata/explore.ml: Automaton Hashtbl Invariant List Queue
