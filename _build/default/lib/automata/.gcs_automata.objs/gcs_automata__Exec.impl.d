lib/automata/exec.ml: Automaton Gcs_stdx Kind List
