lib/automata/exec.mli: Automaton Gcs_stdx
