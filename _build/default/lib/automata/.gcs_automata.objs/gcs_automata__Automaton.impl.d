lib/automata/automaton.ml: Kind List Option Printf
