lib/automata/invariant.ml: Exec Gcs_stdx
