type 'ca failure = {
  step_index : int;
  concrete_action : 'ca option;
  reason : string;
}

let run_abstract abstract start actions =
  let rec go state = function
    | [] -> Ok state
    | a :: rest -> (
        match abstract.Automaton.transition state a with
        | Some state' -> go state' rest
        | None -> Error "abstract action not enabled")
  in
  go start actions

let check_execution ~abstract ~f ~corresponds ~equal_abs
    (e : ('cs, 'ca) Exec.execution) =
  if not (equal_abs (f e.Exec.init) abstract.Automaton.initial) then
    Error
      {
        step_index = 0;
        concrete_action = None;
        reason = "f(initial) differs from abstract initial state";
      }
  else
    let rec go i = function
      | [] -> Ok ()
      | step :: rest -> (
          let abs_actions =
            corresponds step.Exec.pre step.Exec.action step.Exec.post
          in
          match run_abstract abstract (f step.Exec.pre) abs_actions with
          | Error reason ->
              Error
                {
                  step_index = i;
                  concrete_action = Some step.Exec.action;
                  reason;
                }
          | Ok abs_final ->
              if equal_abs abs_final (f step.Exec.post) then go (i + 1) rest
              else
                Error
                  {
                    step_index = i;
                    concrete_action = Some step.Exec.action;
                    reason = "abstract state mismatch after emulation";
                  })
    in
    go 1 e.Exec.steps
