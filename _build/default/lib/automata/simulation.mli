(** Forward simulation checking (Lynch & Vaandrager).

    Given a concrete execution, an abstraction function [f] into the state
    space of an abstract automaton, and a step correspondence mapping each
    concrete step to the abstract action sequence it should emulate, check
    that executing that abstract sequence from [f pre] is possible and lands
    exactly on [f post]. External actions must be preserved: the external
    actions of the emitted abstract sequence must equal the external
    projection of the concrete action (this is supplied by the caller through
    the [corresponds] function and checked against the abstract signature
    here only for definedness).

    This operationalizes the paper's Lemma 6.25 proof obligations. *)

type 'ca failure = {
  step_index : int;
  concrete_action : 'ca option;
      (** [None] when the initial-state condition itself fails. *)
  reason : string;
}

val check_execution :
  abstract:('abs, 'aa) Automaton.t ->
  f:('cs -> 'abs) ->
  corresponds:('cs -> 'ca -> 'cs -> 'aa list) ->
  equal_abs:('abs -> 'abs -> bool) ->
  ('cs, 'ca) Exec.execution ->
  (unit, 'ca failure) result
(** [Error failure] on the first step whose abstract emulation fails (either
    an abstract action was not enabled, or the final abstract state differs
    from [f post]); [Ok ()] if the whole execution simulates, including the
    initial-state condition [equal_abs (f init) abstract.initial]. *)
