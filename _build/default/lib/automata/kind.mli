(** Classification of actions in an I/O automaton signature
    (Lynch & Tuttle; Chapter 8 of Lynch, {e Distributed Algorithms}). *)

type t = Input | Output | Internal

val is_external : t -> bool
(** Input and output actions are external; internal actions are not. *)

val is_locally_controlled : t -> bool
(** Output and internal actions are locally controlled. *)

val pp : Format.formatter -> t -> unit
