(** Scheduler combinators.

    A scheduler resolves the nondeterminism of an execution: which enabled
    locally controlled action fires next, and which input (or
    parameter-rich internal) actions the environment injects. *)

type ('s, 'a) t = ('s, 'a) Exec.scheduler

val enabled_only : ('s, 'a) Automaton.t -> ('s, 'a) t
(** Uniformly random choice among the enabled locally controlled actions. *)

val with_injected :
  ('s, 'a) Automaton.t ->
  inject:('s -> Gcs_stdx.Prng.t -> 'a list) ->
  ('s, 'a) t
(** Mix the enabled locally controlled actions with candidate actions
    proposed by [inject] (environment inputs, or internal actions whose
    parameters are drawn at random, e.g. [createview]); choose uniformly
    among the union. Injected candidates that turn out not to be enabled
    are skipped by the executor. *)

val weighted :
  ('s, 'a) Automaton.t ->
  inject:('s -> Gcs_stdx.Prng.t -> 'a list) ->
  inject_weight:float ->
  ('s, 'a) t
(** Like {!with_injected} but picks an injected candidate with probability
    [inject_weight] (when any exists), an enabled action otherwise. *)

val stop_when : ('s -> bool) -> ('s, 'a) t -> ('s, 'a) t
(** Stop the run as soon as the predicate holds. *)
