type ('s, 'a) t = ('s, 'a) Exec.scheduler

let enabled_only automaton state prng =
  Gcs_stdx.Prng.pick prng (automaton.Automaton.enabled state)

let with_injected automaton ~inject state prng =
  let candidates = automaton.Automaton.enabled state @ inject state prng in
  Gcs_stdx.Prng.pick prng candidates

let weighted automaton ~inject ~inject_weight state prng =
  let injected = inject state prng in
  let enabled = automaton.Automaton.enabled state in
  let from_injected =
    injected <> []
    && (enabled = [] || Gcs_stdx.Prng.float prng < inject_weight)
  in
  if from_injected then Gcs_stdx.Prng.pick prng injected
  else Gcs_stdx.Prng.pick prng enabled

let stop_when pred scheduler state prng =
  if pred state then None else scheduler state prng
