(** Bounded exhaustive state-space exploration (BFS).

    Complements randomized execution ({!Exec}/{!Invariant.check_random})
    with exhaustive checking for small instances: every state reachable
    under the automaton's enabled actions plus a finite set of injected
    actions is visited (up to [max_states]) and checked against the
    invariants. A violation comes with the action path from the initial
    state.

    States are deduplicated through a caller-supplied canonical [key]
    (typically a deterministic serialization — OCaml's polymorphic
    equality and marshalling are not canonical for balanced-tree maps). *)

type 'a outcome =
  | Exhausted of { states : int }
      (** the reachable space was fully explored *)
  | Bound_reached of { states : int }
      (** [max_states] was hit with frontier remaining; all visited states
          passed *)
  | Violation of {
      states : int;
      invariant : string;
      detail : string;
      path : 'a list;  (** actions from the initial state *)
    }

val bfs :
  ('s, 'a) Automaton.t ->
  inject:('s -> 'a list) ->
  key:('s -> string) ->
  max_states:int ->
  invariants:'s Invariant.t list ->
  'a outcome
(** [inject] supplies input (or parameter-rich internal) candidate actions
    per state; it must be deterministic and finite. *)

val bfs_with_edges :
  ('s, 'a) Automaton.t ->
  inject:('s -> 'a list) ->
  key:('s -> string) ->
  max_states:int ->
  invariants:'s Invariant.t list ->
  on_edge:('s -> 'a -> 's -> (unit, string) result) ->
  'a outcome
(** Like {!bfs} but also runs [on_edge] on every explored transition (e.g.
    a per-step simulation check); an [Error] is reported as a violation. *)
