(** Untimed I/O automata, represented as first-class values.

    An automaton is a record with a single start state, a signature
    classifying actions, a finite enumeration of the locally controlled
    actions enabled in a state, and a (partial) transition function.

    The action type is shared across all automata of a composed system: a
    system is modelled by one variant type of actions, and each component
    declares via [kind] which of those actions belong to its signature. *)

type ('state, 'action) t = {
  name : string;
  initial : 'state;
  kind : 'action -> Kind.t option;
      (** [None] when the action is not in this automaton's signature. *)
  enabled : 'state -> 'action list;
      (** Locally controlled actions enabled in the state. Actions whose
          parameters range over infinite sets (e.g. [createview]) are not
          enumerated here; schedulers inject them (see {!Scheduler}). *)
  transition : 'state -> 'action -> 'state option;
      (** [None] when the action is not enabled in the state. Input actions
          must always be enabled (input-enabledness). *)
}

val step_exn : ('s, 'a) t -> 's -> 'a -> 's
(** Apply a transition, raising [Invalid_argument] when not enabled. *)

val is_enabled : ('s, 'a) t -> 's -> 'a -> bool

val compose : name:string -> ('s1, 'a) t -> ('s2, 'a) t -> ('s1 * 's2, 'a) t
(** Binary parallel composition. An action in the signature of both
    components is performed jointly; one in the signature of a single
    component leaves the other's state unchanged. The composed kind is
    [Output] if either component outputs the action, otherwise [Input] if
    either inputs it, otherwise [Internal].

    Precondition (checked by {!compatible}): the components share no output
    actions, and internal actions of one are not in the signature of the
    other. Joint transitions where one participant rejects an input action
    raise [Invalid_argument] — that is a modelling error, since I/O automata
    are input-enabled. *)

val compose_list : name:string -> ('s, 'a) t list -> ('s list, 'a) t
(** N-ary composition of same-state-type components (e.g. one automaton per
    processor). Same conventions as {!compose}. *)

val compatible : ('s1, 'a) t -> ('s2, 'a) t -> actions:'a list -> bool
(** Check composition compatibility over a sample universe of actions. *)

val hide : ('s, 'a) t -> ('a -> bool) -> ('s, 'a) t
(** Reclassify matching output actions as internal. *)

val embed :
  ('s, 'b) t ->
  inj:('b -> 'a) ->
  proj:('a -> 'b option) ->
  ('s, 'a) t
(** Reindex an automaton's actions into a larger action type: [inj] maps
    its actions into the system type, [proj] recognizes them back ([None]
    for foreign actions, which fall outside the embedded automaton's
    signature). [proj (inj b) = Some b] is required. *)

val with_history :
  ('s, 'a) t ->
  init:'h ->
  update:('s -> 'a -> 's -> 'h -> 'h) ->
  ('s * 'h, 'a) t
(** Attach a history variable: [update pre action post h] computes the new
    history value after each transition. History variables never affect
    enabling or transitions (they are write-only observers), exactly as in
    the paper's Section 6. *)
