type 'a outcome =
  | Exhausted of { states : int }
  | Bound_reached of { states : int }
  | Violation of {
      states : int;
      invariant : string;
      detail : string;
      path : 'a list;
    }

let check_invariants invariants state =
  let rec go = function
    | [] -> Ok ()
    | inv :: rest -> (
        match inv.Invariant.check state with
        | Ok () -> go rest
        | Error detail -> Error (inv.Invariant.name, detail))
  in
  go invariants

let bfs_with_edges automaton ~inject ~key ~max_states ~invariants ~on_edge =
  let visited = Hashtbl.create 4096 in
  let queue = Queue.create () in
  let initial = automaton.Automaton.initial in
  let count = ref 0 in
  let push state path =
    let k = key state in
    if not (Hashtbl.mem visited k) then begin
      Hashtbl.replace visited k ();
      incr count;
      Queue.add (state, path) queue
    end
  in
  match check_invariants invariants initial with
  | Error (invariant, detail) ->
      Violation { states = 1; invariant; detail; path = [] }
  | Ok () -> (
      push initial [];
      let result = ref None in
      (try
         while !result = None && not (Queue.is_empty queue) do
           let state, path = Queue.pop queue in
           let candidates =
             automaton.Automaton.enabled state @ inject state
           in
           List.iter
             (fun action ->
               if !result = None then
                 match automaton.Automaton.transition state action with
                 | None -> ()
                 | Some state' -> (
                     match on_edge state action state' with
                     | Error detail ->
                         result :=
                           Some
                             (Violation
                                {
                                  states = !count;
                                  invariant = "edge check";
                                  detail;
                                  path = List.rev (action :: path);
                                })
                     | Ok () -> (
                         match check_invariants invariants state' with
                         | Error (invariant, detail) ->
                             result :=
                               Some
                                 (Violation
                                    {
                                      states = !count;
                                      invariant;
                                      detail;
                                      path = List.rev (action :: path);
                                    })
                         | Ok () ->
                             if !count < max_states then
                               push state' (action :: path)
                             else if not (Hashtbl.mem visited (key state'))
                             then result := Some (Bound_reached { states = !count })
                         )))
             candidates
         done
       with Queue.Empty -> ());
      match !result with
      | Some outcome -> outcome
      | None -> Exhausted { states = !count })

let bfs automaton ~inject ~key ~max_states ~invariants =
  bfs_with_edges automaton ~inject ~key ~max_states ~invariants
    ~on_edge:(fun _ _ _ -> Ok ())
