open Gcs_core
open Gcs_sim

type config = { procs : Proc.t list }

type ts = { clock : int; origin : Proc.t }

let ts_compare a b =
  match Int.compare a.clock b.clock with
  | 0 -> Proc.compare a.origin b.origin
  | c -> c

type packet =
  | Data of { ts : ts; origin : Proc.t; value : Value.t }
  | Ack of { clock : int }

type node = {
  me : Proc.t;
  clock : int;
  buffered : (ts * Proc.t * Value.t) list;  (* sorted by timestamp *)
  heard : int Proc.Map.t;  (* highest clock heard from each processor *)
}

type run = {
  trace : Value.t To_action.t Timed.t;
  packets_sent : int;
  packets_dropped : int;
}

let initial me =
  { me; clock = 0; buffered = []; heard = Proc.Map.empty }

let heard_of node p =
  match Proc.Map.find_opt p node.heard with Some c -> c | None -> -1

let rec insert entry = function
  | [] -> [ entry ]
  | ((ts', _, _) as head) :: rest ->
      let ts, _, _ = entry in
      if ts_compare ts ts' < 0 then entry :: head :: rest
      else head :: insert entry rest

(* Deliver buffered messages while the head is stable: every other
   processor has been heard from beyond its timestamp. *)
let rec drain config node =
  match node.buffered with
  | (ts, origin, value) :: rest
    when List.for_all
           (fun p -> Proc.equal p node.me || heard_of node p > ts.clock)
           config.procs ->
      let node = { node with buffered = rest } in
      let node, effects = drain config node in
      ( node,
        Engine.Output (To_action.Brcv { src = origin; dst = node.me; value })
        :: effects )
  | _ -> (node, [])

let broadcast config packet =
  List.map (fun dst -> Engine.Send { dst; packet }) config.procs

let handlers config =
  let on_start _me node = (node, []) in
  let on_input me ~now:_ value node =
    let clock = node.clock + 1 in
    let ts = { clock; origin = me } in
    let node = { node with clock } in
    ( node,
      Engine.Output (To_action.Bcast (me, value))
      :: broadcast config (Data { ts; origin = me; value }) )
  in
  let on_packet me ~now:_ ~src packet node =
    match packet with
    | Data { ts; origin; value } ->
        let clock = max node.clock ts.clock + 1 in
        let node =
          {
            node with
            clock;
            buffered = insert (ts, origin, value) node.buffered;
            heard = Proc.Map.add src (max (heard_of node src) ts.clock) node.heard;
          }
        in
        ignore me;
        let node, delivered = drain config node in
        (* Everyone (including the origin, on its self-delivery) announces
           its advanced clock, which is what lets others deliver. *)
        (node, broadcast config (Ack { clock }) @ delivered)
    | Ack { clock } ->
        let node =
          {
            node with
            clock = max node.clock clock;
            heard = Proc.Map.add src (max (heard_of node src) clock) node.heard;
          }
        in
        drain config node
  in
  let on_timer _me ~now:_ ~id:_ node = (node, []) in
  { Engine.on_start; on_input; on_packet; on_timer }

let run ?engine ~delta config ~workload ~failures ~until ~seed =
  let engine_config =
    match engine with
    | Some c -> c
    | None -> { (Engine.default_config ~delta) with Engine.fifo = true }
  in
  let result =
    Engine.run engine_config ~procs:config.procs ~handlers:(handlers config)
      ~init:initial ~inputs:workload ~failures ~until
      ~prng:(Gcs_stdx.Prng.create seed)
  in
  {
    trace = result.Engine.trace;
    packets_sent = result.Engine.packets_sent;
    packets_dropped = result.Engine.packets_dropped;
  }

let to_conforms config r =
  let params = { To_machine.procs = config.procs; equal_value = Value.equal } in
  To_trace_checker.check params (List.map snd (Timed.actions r.trace))

let deliveries r =
  List.length
    (List.filter
       (fun (_, a) -> match a with To_action.Brcv _ -> true | _ -> false)
       (Timed.actions r.trace))
