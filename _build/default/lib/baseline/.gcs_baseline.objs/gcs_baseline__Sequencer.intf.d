lib/baseline/sequencer.mli: Fstatus Gcs_core Gcs_sim Proc Timed To_action To_trace_checker Value
