lib/baseline/sequencer.ml: Engine Gcs_core Gcs_sim Gcs_stdx List Proc Timed To_action To_machine To_trace_checker Value
