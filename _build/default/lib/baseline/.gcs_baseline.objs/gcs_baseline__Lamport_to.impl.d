lib/baseline/lamport_to.ml: Engine Gcs_core Gcs_sim Gcs_stdx Int List Proc Timed To_action To_machine To_trace_checker Value
