open Gcs_core

(** Baseline: decentralized total order by Lamport timestamps with
    all-to-all acknowledgements (the classic ABCAST-style construction in
    the Isis lineage the paper departs from).

    Every submission is broadcast with a (Lamport clock, origin) timestamp;
    receivers acknowledge with their own clock; a buffered message is
    delivered once it has the smallest timestamp and every {e other}
    processor has been heard from with a larger clock. Latency is ~2δ —
    better than the token ring — but the protocol requires hearing from
    {e all} processors, so a single crash or partition stalls every
    delivery everywhere: the opposite end of the availability spectrum
    from the paper's partitionable service.

    The algorithm assumes FIFO channels (a later acknowledgement must not
    overtake an earlier data message); the default engine configuration
    here turns the simulator's FIFO-links option on. *)

type config = { procs : Proc.t list }

type run = {
  trace : Value.t To_action.t Timed.t;
  packets_sent : int;
  packets_dropped : int;
}

val run :
  ?engine:Gcs_sim.Engine.config ->
  delta:float ->
  config ->
  workload:(float * Proc.t * Value.t) list ->
  failures:(float * Fstatus.event) list ->
  until:float ->
  seed:int ->
  run

val to_conforms : config -> run -> (unit, To_trace_checker.error) result
val deliveries : run -> int
