(* Unit tests for the shared per-node delivered-order comparator behind
   gcs diff and the differential fuzzing mode: hand-built client traces
   with known divergences must be classified exactly — agreement, first
   divergent (node, index), content vs order comparison, incompleteness
   and the JSON rendering. *)

open Gcs_core
module Divergence = Gcs_conformance.Divergence

let procs = [ 0; 1; 2 ]

let brcv ~at ~src ~dst value =
  Timed.action at (To_action.Brcv { src; dst; value })

(* Every node delivers a@0 then b@1, with a bcast mixed in (ignored by
   the comparator). *)
let trace_ab =
  Timed.action 0.0 (To_action.Bcast (0, "a"))
  :: List.concat_map
       (fun dst ->
         [ brcv ~at:1.0 ~src:0 ~dst "a"; brcv ~at:2.0 ~src:1 ~dst "b" ])
       procs

(* Node 2 delivers b before a; others agree with [trace_ab]. *)
let trace_ab_swapped_at_2 =
  List.concat_map
    (fun dst ->
      if dst = 2 then
        [ brcv ~at:1.0 ~src:1 ~dst "b"; brcv ~at:2.0 ~src:0 ~dst "a" ]
      else [ brcv ~at:1.0 ~src:0 ~dst "a"; brcv ~at:2.0 ~src:1 ~dst "b" ])
    procs

(* Same as [trace_ab] but node 1 received b from a different origin. *)
let trace_ab_wrong_src =
  List.concat_map
    (fun dst ->
      [
        brcv ~at:1.0 ~src:0 ~dst "a";
        brcv ~at:2.0 ~src:(if dst = 1 then 2 else 1) ~dst "b";
      ])
    procs

let orders t = Divergence.orders ~procs t

let test_agree () =
  match Divergence.compare_orders ~left:(orders trace_ab) ~right:(orders trace_ab) with
  | Divergence.Agree -> ()
  | Divergence.Diverged _ -> Alcotest.fail "identical traces diverged"

let test_empty_nodes_present () =
  let o = orders [] in
  Alcotest.(check int) "every proc listed" (List.length procs) (List.length o);
  List.iter
    (fun (_, seq) -> Alcotest.(check (list string)) "empty" [] seq)
    o

let test_order_divergence_located () =
  match
    Divergence.compare_orders ~left:(orders trace_ab)
      ~right:(orders trace_ab_swapped_at_2)
  with
  | Divergence.Agree -> Alcotest.fail "reordered trace not flagged"
  | Divergence.Diverged { node; index; left; right } ->
      Alcotest.(check int) "first divergent node" 2 node;
      Alcotest.(check int) "first divergent index" 0 index;
      Alcotest.(check (list string)) "left sequence" [ "0:a"; "1:b" ] left;
      Alcotest.(check (list string)) "right sequence" [ "1:b"; "0:a" ] right

(* A pure reordering passes the content comparison — that is exactly why
   same-protocol pairs must use compare_orders. *)
let test_contents_ignore_order () =
  (match
     Divergence.compare_contents ~left:(orders trace_ab)
       ~right:(orders trace_ab_swapped_at_2)
   with
  | Divergence.Agree -> ()
  | Divergence.Diverged _ -> Alcotest.fail "reordering flagged by contents");
  match
    Divergence.compare_contents ~left:(orders trace_ab)
      ~right:(orders trace_ab_wrong_src)
  with
  | Divergence.Agree -> Alcotest.fail "misattributed src not flagged"
  | Divergence.Diverged { node; _ } ->
      Alcotest.(check int) "misattribution located" 1 node

let test_incomplete () =
  let short =
    List.filter
      (fun e ->
        match e.Timed.item with
        | Timed.Action (To_action.Brcv { dst = 1; value = "b"; _ }) -> false
        | _ -> true)
      trace_ab
  in
  match Divergence.incomplete ~expected:(fun _ -> 2) (orders short) with
  | [ (1, 1) ] -> ()
  | missing ->
      Alcotest.failf "expected node 1 at 1/2, got %s"
        (String.concat ", "
           (List.map (fun (p, k) -> Printf.sprintf "(%d,%d)" p k) missing))

let contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_json () =
  Alcotest.(check string)
    "agree renders null" "null"
    (Divergence.to_json ~left_label:"sim" ~right_label:"bus" Divergence.Agree);
  let v =
    Divergence.compare_orders ~left:(orders trace_ab)
      ~right:(orders trace_ab_swapped_at_2)
  in
  let json = Divergence.to_json ~left_label:"sim" ~right_label:"bus" v in
  List.iter
    (fun needle ->
      if not (contains json needle) then
        Alcotest.failf "json %s lacks %s" json needle)
    [ {|"node":2|}; {|"index":0|}; {|"sim"|}; {|"bus"|} ]

let test_describe_mentions_labels () =
  let v =
    Divergence.compare_orders ~left:(orders trace_ab)
      ~right:(orders trace_ab_swapped_at_2)
  in
  let s =
    Divergence.describe ~left_label:"reference" ~right_label:"candidate" v
  in
  if not (contains s "reference" && contains s "candidate") then
    Alcotest.failf "describe lacks labels: %s" s

let () =
  Alcotest.run "divergence"
    [
      ( "comparator",
        [
          Alcotest.test_case "identical traces agree" `Quick test_agree;
          Alcotest.test_case "silent nodes observed" `Quick
            test_empty_nodes_present;
          Alcotest.test_case "first divergence located" `Quick
            test_order_divergence_located;
          Alcotest.test_case "contents ignore order, catch src" `Quick
            test_contents_ignore_order;
          Alcotest.test_case "incompleteness counted" `Quick test_incomplete;
          Alcotest.test_case "json rendering" `Quick test_json;
          Alcotest.test_case "describe carries labels" `Quick
            test_describe_mentions_labels;
        ] );
    ]
